package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/hmp"
	"repro/internal/scenario"
)

// FleetSweep runs multi-node scheduling scenarios on the parallel
// experiments engine: placement policies × fleet sizes over heterogeneous
// node mixes (stock, little-heavy, and tiny boards), with a staggered
// arrival wave that overflows the smaller nodes — so admission queueing and
// saturation migration actually fire. The report records where apps landed,
// how long the queue got, how often the fleet moved an app, and the
// per-fleet HPS/energy rollup; the digests pin the multi-node reaction
// paths the way the scenario sweep pins the single-machine ones.
func FleetSweep(e *Env) *Report {
	rep := &Report{Title: "Fleet sweep: placement policies × node counts (admission, queueing, migration, rollups)"}
	rep.Table.Header = []string{
		"policy", "nodes", "admitted", "queued", "dropped", "moves",
		"beats", "energy (J)", "overhead", "digest",
	}

	littleHeavy := func() *hmp.Platform {
		p := hmp.Default()
		p.Clusters[hmp.Big].Cores = 2
		p.Clusters[hmp.Little].Cores = 6
		return p
	}
	tiny := func() *hmp.Platform {
		p := hmp.Default()
		p.Clusters[hmp.Big].Cores = 1
		p.Clusters[hmp.Little].Cores = 1
		return p
	}
	mkNodes := func(n int) []scenario.NodeSpec {
		specs := []scenario.NodeSpec{
			{Name: "n0", Platform: tiny()},
			{Name: "n1", Platform: littleHeavy()},
			{Name: "n2"},
		}
		return specs[:n]
	}
	// Five staggered arrivals over boards totalling at most 18 cores: the
	// tiny node saturates instantly and the 1-node fleet queues hard.
	apps := []scenario.AppSpec{
		{Name: "sw0", Bench: "SW", Threads: 4, InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
			Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
		{Name: "fe0", Bench: "FE", Threads: 4, StartMS: 500, InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
			Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
		{Name: "bo0", Bench: "BO", Threads: 4, StartMS: 1000, StopMS: 6000, InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
			Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
		{Name: "fl0", Bench: "FL", Threads: 4, StartMS: 1500, InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
			Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
		{Name: "fa0", Bench: "FA", Threads: 4, StartMS: 2000, InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
			Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
	}

	type row struct {
		policy string
		nNodes int
		res    *scenario.Result
		err    error
	}
	var rows []row
	for _, policy := range fleet.PolicyNames() {
		for _, n := range []int{1, 2, 3} {
			rows = append(rows, row{policy: policy, nNodes: n})
		}
	}
	parallelFor(len(rows), func(i int) {
		r := &rows[i]
		sc := &scenario.Scenario{
			Name:       fmt.Sprintf("fleet-%s-%d", r.policy, r.nNodes),
			Manager:    scenario.ManagerMPHARSI,
			DurationMS: 10000,
			AdaptEvery: 2,
			Placement:  r.policy,
			Nodes:      mkNodes(r.nNodes),
			Apps:       apps,
		}
		r.res, r.err = scenario.Run(sc, scenario.Options{Strict: true})
	})
	for _, r := range rows {
		if r.err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s/%d nodes: %v", r.policy, r.nNodes, r.err))
			continue
		}
		beats := int64(0)
		admitted := 0
		for _, a := range r.res.Apps {
			beats += a.Beats
			if a.Arrived && !a.Skipped {
				admitted++
			}
		}
		rep.Table.AddRow(
			r.policy, fmt.Sprint(r.nNodes),
			fmt.Sprint(admitted),
			fmt.Sprint(r.res.QueuedArrivals),
			fmt.Sprint(r.res.DroppedArrivals),
			fmt.Sprint(r.res.NodeMigrations),
			fmt.Sprint(beats),
			fmt.Sprintf("%.1f", r.res.EnergyJ),
			fmt.Sprintf("%d µs", r.res.OverheadUS),
			fmt.Sprintf("%016x", r.res.TraceDigest),
		)
	}
	rep.Notes = append(rep.Notes,
		"node mixes grow tiny (1+1) → little-heavy (2+6) → stock (4+4); unreachable targets keep every partition saturated",
		"queued counts arrivals that waited for a free partition; dropped ones never got in before the run ended",
		"digests are FNV-64a over the full node-tagged trace; identical runs ⇒ identical digests")
	return rep
}
