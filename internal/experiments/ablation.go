package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Ablations quantifies the paper's §3.1.4 discussion items, each on the
// benchmark whose weakness motivated it:
//
//   - Kalman-filter workload prediction on bodytrack (varying per-frame
//     work): smoother rate predictions against the naive last-period model;
//   - online big/little ratio learning on blackscholes (true r = 1.0 against
//     the assumed 1.5): the headline wrong-r0 case of §5.1.2;
//   - thread-hierarchy-aware scheduling on ferret (asymmetric pipeline):
//     against chunk-based and plain interleaving;
//   - Tabu search on swaptions (stable workload, where the paper expects
//     local-optimum escape to pay off) under the incremental d = 1 regime.
//
// Every variant reports absolute normalized-perf-per-watt plus the value
// relative to the paper's default configuration of that row group.
func Ablations(e *Env) *Report {
	rep := &Report{Title: "Ablations: the §3.1.4 design extensions, one benchmark each"}
	rep.Table.Header = []string{"study", "bench", "variant", "norm perf", "power (W)", "perf/watt", "vs default"}

	type variant struct {
		study, bench, name string
		frac               float64
		cfg                core.Config
	}
	chunk := core.Chunk
	inter := core.Interleaved
	hier := core.Hierarchy
	// The prediction study runs at the default 50% target (bodytrack's
	// variation crosses the band there); the others run at the tight 75%
	// target where misestimation has no slack to hide in (cf. Figure 5.2).
	variants := []variant{
		{"workload-prediction", "BO", "last-value (paper)", 0.50, core.Config{Version: core.HARSE}},
		{"workload-prediction", "BO", "kalman", 0.50, core.Config{Version: core.HARSE, Predictor: &core.KalmanPredictor{}}},

		{"ratio-learning", "BL", "fixed r0=1.5 (paper)", 0.75, core.Config{Version: core.HARSE}},
		{"ratio-learning", "BL", "online ratio", 0.75, core.Config{Version: core.HARSE, LearnRatio: true}},

		{"scheduler", "FE", "chunk (paper HARS-E)", 0.75, core.Config{Version: core.HARSE, Scheduler: &chunk}},
		{"scheduler", "FE", "interleaved (paper HARS-EI)", 0.75, core.Config{Version: core.HARSE, Scheduler: &inter}},
		{"scheduler", "FE", "hierarchy-aware", 0.75, core.Config{Version: core.HARSE, Scheduler: &hier}},

		// Tabu only matters while adaptation keeps firing; bodytrack's
		// varying frames provide that, where stable benchmarks park in the
		// band and never search again (the flip side the paper predicts).
		{"search", "BO", "incremental (paper HARS-I)", 0.75, core.Config{Version: core.HARSI}},
		{"search", "BO", "tabu", 0.75,
			core.Config{Version: core.HARSI, Params: core.SearchParams{M: 1, N: 1, D: 1}, SearchFn: core.NewTabuSearch(8)}},
	}

	results := make([]RunResult, len(variants))
	parallelFor(len(variants), func(i int) {
		v := variants[i]
		b, ok := workload.ByShort(v.bench)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown benchmark %q", v.bench))
		}
		tgt := e.Target(b, v.frac)
		results[i] = e.RunHARS(b, tgt, v.cfg)
	})

	defaults := map[string]float64{}
	for i, v := range variants {
		if _, ok := defaults[v.study]; !ok {
			defaults[v.study] = results[i].PP
		}
	}
	for i, v := range variants {
		rel := 0.0
		if d := defaults[v.study]; d > 0 {
			rel = results[i].PP / d
		}
		rep.Table.AddRow(v.study, v.bench, v.name,
			stats.F(results[i].NormPerf, 2),
			stats.F(results[i].PowerW, 2),
			stats.F(results[i].PP, 4),
			stats.F(rel, 2))
	}
	rep.Notes = append(rep.Notes,
		"'vs default' normalizes each study to its first (paper-default) variant")
	return rep
}
