package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/hmp"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Manager kinds accepted by Scenario.Manager.
const (
	ManagerNone    = "none"
	ManagerGTS     = "gts"
	ManagerHARSI   = "hars-i"
	ManagerHARSE   = "hars-e"
	ManagerHARSEI  = "hars-ei"
	ManagerMPHARSI = "mphars-i"
	ManagerMPHARSE = "mphars-e"
)

// Event kinds accepted by Event.Kind.
const (
	KindHotplug = "hotplug"
	KindDVFSCap = "dvfs_cap"
	KindTarget  = "target"
	KindPhase   = "phase"
)

// TargetSpec is an explicit heartbeat-rate band.
type TargetSpec struct {
	Min float64 `json:"min"`
	Avg float64 `json:"avg"`
	Max float64 `json:"max"`
}

// SLOSpec is an application's service-level objective: the heartbeat rate
// it must sustain and the extra placement latency (queueing plus migration
// freeze) its owner tolerates. SLO-aware placement scores nodes against
// it, and the engine counts a miss for every trace sample at which the
// application delivers less than target_hps (a queued or frozen app
// delivers nothing and always misses).
type SLOSpec struct {
	TargetHPS float64 `json:"target_hps"`
	SlackMS   int64   `json:"slack_ms,omitempty"`
}

// CheckpointSpec configures the work-conserving migration cost model: a
// moved application is frozen for freeze_us plus per_mb_us × size_mb and
// resumes on the destination only once that delay has elapsed on the
// shared clock. The zero value (or a missing block) is a free move —
// state transfers within the migrate tick and the trace is bit-for-bit
// the free-move trace.
type CheckpointSpec struct {
	FreezeUS int64   `json:"freeze_us,omitempty"`
	PerMBUS  int64   `json:"per_mb_us,omitempty"`
	SizeMB   float64 `json:"size_mb,omitempty"`
}

// Cost converts the spec to the simulator's cost model (nil = free).
func (c *CheckpointSpec) Cost() sim.CheckpointCost {
	if c == nil {
		return sim.CheckpointCost{}
	}
	return sim.CheckpointCost{
		Freeze: sim.Time(c.FreezeUS) * sim.Microsecond,
		PerMB:  sim.Time(c.PerMBUS) * sim.Microsecond,
		SizeMB: c.SizeMB,
	}
}

// AppSpec describes one application of a scenario.
type AppSpec struct {
	Name       string      `json:"name"`
	Bench      string      `json:"bench"`                 // workload two-letter tag (BL, BO, FA, FE, FL, SW)
	Threads    int         `json:"threads,omitempty"`     // default 8
	StartMS    int64       `json:"start_ms,omitempty"`    // arrival time
	StopMS     int64       `json:"stop_ms,omitempty"`     // departure time; 0 = end of run
	TargetFrac float64     `json:"target_frac,omitempty"` // fraction of max rate; default 0.5
	Target     *TargetSpec `json:"target,omitempty"`      // explicit band (overrides frac)
	HBWindow   int         `json:"hb_window,omitempty"`   // heartbeat window; default 10
	// InitBig and InitLittle are the MP-HARS initial core allocation.
	// Pointers so an explicit 0 ("no big cores, please") is distinguishable
	// from unset (default 1+1).
	InitBig    *int `json:"init_big,omitempty"`
	InitLittle *int `json:"init_little,omitempty"`

	// Node pins the application to one named node of a multi-node
	// scenario: it is admitted there or queues there, and it never
	// migrates. Empty = placed by the fleet's placement policy.
	Node string `json:"node,omitempty"`

	// Affinity pins the application's threads to an explicit CPU set for
	// its whole life — the per-app affinity mask, enforced by the placer
	// on every placement and hotplug re-placement. Only unmanaged
	// scenarios ("none", "gts") accept it: the HARS and MP-HARS managers
	// own their applications' affinity masks.
	Affinity []int `json:"affinity,omitempty"`

	// SLO is the application's service-level objective (optional): the
	// slo-aware placement policy scores against it, and the result
	// reports per-sample misses.
	SLO *SLOSpec `json:"slo,omitempty"`
}

// NodeSpec describes one machine of a multi-node (fleet) scenario.
type NodeSpec struct {
	// Name is the node's fleet-unique name; events and app pins address it.
	Name string `json:"name"`

	// Platform is the node's board description, the same JSON
	// hmp.ReadPlatform accepts, embedded inline. Nil selects the default
	// ODROID-XU3-like platform — so a heterogeneous fleet mixes custom
	// and stock boards freely.
	Platform *hmp.Platform `json:"platform,omitempty"`

	// Manager is the node's runtime manager kind; empty inherits the
	// scenario's manager.
	Manager string `json:"manager,omitempty"`

	// AdaptEvery and OverheadCPU override the scenario-level manager
	// settings for this node (0 inherits).
	AdaptEvery  int64 `json:"adapt_every,omitempty"`
	OverheadCPU int   `json:"overhead_cpu,omitempty"`

	// Thermal is the node's closed-loop thermal block; nil inherits the
	// scenario-level block (which in a multi-node scenario acts as the
	// fleet-wide default).
	Thermal *thermal.Spec `json:"thermal,omitempty"`
}

// maxOccurrences bounds the total number of event firings a scenario may
// expand to through every_ms repetition, so a pathological period cannot
// blow up validation or the engine's action timeline.
const maxOccurrences = 100_000

// Event is one timed dynamic event.
type Event struct {
	AtMS int64  `json:"at_ms"`
	Kind string `json:"kind"`

	// EveryMS, when positive, repeats the event every EveryMS milliseconds
	// starting at AtMS, until the run ends or Repeat firings have happened
	// (Repeat 0 = until the end). Thermal stress tests use this to pulse
	// load without hand-unrolled event lists.
	EveryMS int64 `json:"every_ms,omitempty"`
	Repeat  int   `json:"repeat,omitempty"`

	// Node addresses the event to one named node of a multi-node scenario.
	// Required for hotplug and dvfs_cap when the scenario declares nodes;
	// app events (target, phase) address the app instead and must leave it
	// empty.
	Node string `json:"node,omitempty"`

	// hotplug
	CPU    int   `json:"cpu,omitempty"`
	Online *bool `json:"online,omitempty"`

	// dvfs_cap
	Cluster  string `json:"cluster,omitempty"` // "big" or "little"
	MaxLevel int    `json:"max_level,omitempty"`

	// target / phase
	App    string      `json:"app,omitempty"`
	Frac   float64     `json:"frac,omitempty"`
	Target *TargetSpec `json:"target,omitempty"`
	Scale  float64     `json:"scale,omitempty"`
}

// Scenario is one declarative dynamic-event run.
type Scenario struct {
	Name          string    `json:"name"`
	Seed          int64     `json:"seed,omitempty"` // generator seed, informational
	Manager       string    `json:"manager"`
	DurationMS    int64     `json:"duration_ms"`
	SampleEveryMS int64     `json:"sample_every_ms,omitempty"` // trace cadence, default 100
	AdaptEvery    int64     `json:"adapt_every,omitempty"`     // manager adaptation period (beats)
	OverheadCPU   int       `json:"overhead_cpu,omitempty"`    // CPU charged with manager overhead
	Apps          []AppSpec `json:"apps"`
	Events        []Event   `json:"events,omitempty"`

	// Thermal, when present and enabled, closes the thermal loop: a per-run
	// RC temperature model plus governor daemon derives the DVFS ceilings
	// from simulated heat (see package thermal). Enabled thermal excludes
	// scripted dvfs_cap events — the governor owns the ceilings. In a
	// multi-node scenario this block is the fleet-wide default; nodes
	// override it with their own.
	Thermal *thermal.Spec `json:"thermal,omitempty"`

	// Nodes turns the scenario into a multi-node (fleet) run: every entry
	// is one machine with its own platform, manager, and thermal loop, all
	// advancing on one deterministic clock. Arrivals are admitted to a
	// node by the Placement policy (or their pin), queue fleet-wide when
	// no node has a free partition, and may migrate off saturated nodes.
	// An empty list is the classic single-machine scenario.
	Nodes []NodeSpec `json:"nodes,omitempty"`

	// Placement names the fleet placement policy: "least-loaded"
	// (default), "big-first" (most free big-core capacity), or "coolest"
	// (lowest modeled temperature).
	Placement string `json:"placement,omitempty"`

	// MigrateEveryMS is the period of the fleet scheduler's saturation
	// check (0 = the 250 ms default, negative disables migration).
	MigrateEveryMS int64 `json:"migrate_every_ms,omitempty"`

	// Checkpoint is the work-conserving migration cost model (fleet
	// scenarios only); nil or all-zero means free moves.
	Checkpoint *CheckpointSpec `json:"checkpoint,omitempty"`

	// Arrivals are declarative per-node traffic traces: each stream
	// expands — deterministically from its seed — into a sequence of
	// application arrivals whose rate follows the stream's piecewise-
	// constant profile. Expansion happens at validation/run time; the
	// scenario document itself is untouched, so replays stay
	// byte-identical.
	Arrivals []ArrivalStream `json:"arrivals,omitempty"`

	// Faults, when present, arms the fault-injection and recovery layer
	// (fleet scenarios only): scripted and seeded-random node crashes,
	// permanent core failures, and transient checkpoint-transfer failures,
	// all expanded deterministically on the shared clock — plus the
	// recovery machinery (heartbeat-timeout failure detection, periodic
	// background checkpoints, snapshot re-placement with capped
	// exponential retry backoff). Absent, nothing fault-related runs and
	// traces are bit-identical to pre-fault ones.
	Faults *fault.Spec `json:"faults,omitempty"`

	// Decisions, when present and enabled, opts the run into decision
	// tracing: every fleet scheduler decision — admission picks,
	// migrate-pass picks including gated no-ops, crash re-placements — is
	// recorded with its full scored candidate set, emitted as gated "d"
	// trace lines, and retained on Result.DecisionRecords. Absent (or
	// disabled), no decision line is written and traces are bit-identical
	// to pre-decision ones; the always-on Result.Decisions rollup is
	// maintained regardless.
	Decisions *DecisionSpec `json:"decisions,omitempty"`
}

// DecisionSpec is the scenario's decision-tracing block.
type DecisionSpec struct {
	// Enabled turns decision tracing on (a present-but-disabled block is
	// inert, mirroring the thermal block).
	Enabled bool `json:"enabled"`
	// Keep bounds the decision records retained on Result.DecisionRecords;
	// beyond it, records still reach the trace but are dropped from the
	// in-memory log and counted on Result.DecisionsDropped. 0 keeps
	// 100,000.
	Keep int `json:"keep,omitempty"`
}

// Decode parses and validates a scenario document. Unknown fields are
// rejected so typos surface instead of silently doing nothing.
func Decode(r io.Reader) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	// The decoder consumes exactly one JSON value; anything non-whitespace
	// after it means the document is malformed (a truncated edit, two specs
	// concatenated), not a scenario followed by noise — reject it instead
	// of silently running the first value.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("scenario: decode: trailing data after the scenario document")
	}
	// The optional list fields carry omitempty, so an explicitly-empty
	// list in the input ("events": []) would be dropped by Encode and
	// re-decode as nil; normalize to nil up front so Decode∘Encode∘Decode
	// is the identity (the fuzz target checks exactly that).
	if len(sc.Events) == 0 {
		sc.Events = nil
	}
	if len(sc.Nodes) == 0 {
		sc.Nodes = nil
	}
	if len(sc.Arrivals) == 0 {
		sc.Arrivals = nil
	}
	for i := range sc.Apps {
		if len(sc.Apps[i].Affinity) == 0 {
			sc.Apps[i].Affinity = nil
		}
	}
	if sc.Faults != nil {
		if len(sc.Faults.Crashes) == 0 {
			sc.Faults.Crashes = nil
		}
		if len(sc.Faults.CoreFailures) == 0 {
			sc.Faults.CoreFailures = nil
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Encode writes the scenario as indented JSON.
func (sc *Scenario) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sc); err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	return nil
}

// validManagers lists the accepted manager kinds.
var validManagers = map[string]bool{
	ManagerNone: true, ManagerGTS: true,
	ManagerHARSI: true, ManagerHARSE: true, ManagerHARSEI: true,
	ManagerMPHARSI: true, ManagerMPHARSE: true,
}

// resolvedNode is one machine of the run after default resolution: the
// single legacy node of a classic scenario, or one entry of the nodes list.
// Validation and the engine share it so they cannot drift.
type resolvedNode struct {
	idx         int
	name        string // "" for the legacy single node
	plat        *hmp.Platform
	manager     string
	adaptEvery  int64
	overheadCPU int
	thermal     *thermal.Spec // nil or disabled ⇒ no governor
}

func (rn *resolvedNode) thermalOn() bool {
	return rn.thermal != nil && rn.thermal.Enabled
}

// resolveNodes expands the scenario's node list against defaults: a
// scenario without nodes becomes one legacy node on plat (or the default
// platform), a multi-node scenario resolves each entry's platform, manager,
// and thermal block. Per-node validity (platform description, manager kind,
// thermal spec against the node's grid) is checked here.
func (sc *Scenario) resolveNodes(plat *hmp.Platform) ([]resolvedNode, error) {
	if len(sc.Nodes) == 0 {
		if plat == nil {
			plat = hmp.Default()
		}
		if err := validateThermal(sc.Thermal, plat, ""); err != nil {
			return nil, err
		}
		return []resolvedNode{{
			idx: 0, plat: plat, manager: sc.Manager,
			adaptEvery: sc.AdaptEvery, overheadCPU: sc.OverheadCPU,
			thermal: sc.Thermal,
		}}, nil
	}
	out := make([]resolvedNode, 0, len(sc.Nodes))
	seen := make(map[string]bool, len(sc.Nodes))
	// Nodes without their own platform share one default instance, so
	// platform-keyed caches (the engine's max-rate calibration) dedupe
	// across them.
	var sharedDefault *hmp.Platform
	for i := range sc.Nodes {
		ns := &sc.Nodes[i]
		if ns.Name == "" {
			return nil, fmt.Errorf("scenario: node %d has no name", i)
		}
		if seen[ns.Name] {
			return nil, fmt.Errorf("scenario: duplicate node name %q", ns.Name)
		}
		seen[ns.Name] = true
		nplat := ns.Platform
		if nplat == nil {
			if sharedDefault == nil {
				sharedDefault = hmp.Default()
			}
			nplat = sharedDefault
		} else {
			if err := nplat.Validate(); err != nil {
				return nil, fmt.Errorf("scenario: node %q: %w", ns.Name, err)
			}
			nplat.Normalize()
		}
		mgr := ns.Manager
		if mgr == "" {
			mgr = sc.Manager
		}
		if !validManagers[mgr] {
			return nil, fmt.Errorf("scenario: node %q: unknown manager %q", ns.Name, mgr)
		}
		adapt := ns.AdaptEvery
		if adapt == 0 {
			adapt = sc.AdaptEvery
		}
		if adapt < 0 || ns.AdaptEvery < 0 {
			return nil, fmt.Errorf("scenario: node %q: negative adapt_every", ns.Name)
		}
		ohCPU := ns.OverheadCPU
		if ohCPU == 0 {
			ohCPU = sc.OverheadCPU
		}
		th := ns.Thermal
		if th == nil {
			th = sc.Thermal
		}
		if err := validateThermal(th, nplat, ns.Name); err != nil {
			return nil, err
		}
		out = append(out, resolvedNode{
			idx: i, name: ns.Name, plat: nplat, manager: mgr,
			adaptEvery: adapt, overheadCPU: ohCPU, thermal: th,
		})
	}
	return out, nil
}

// validateThermal checks a (possibly nil) thermal block against one node's
// platform grid. node is the node name for error context ("" legacy).
func validateThermal(th *thermal.Spec, plat *hmp.Platform, node string) error {
	if th == nil {
		return nil
	}
	ctx := "scenario"
	if node != "" {
		ctx = fmt.Sprintf("scenario: node %q", node)
	}
	if err := th.Validate(); err != nil {
		return fmt.Errorf("%s: %w", ctx, err)
	}
	r := th.WithDefaults()
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		if r.MinLevel > plat.Clusters[k].MaxLevel() {
			return fmt.Errorf("%s: thermal min_level %d outside the %s grid", ctx, r.MinLevel, k)
		}
	}
	return nil
}

// nodeByName finds a resolved node, or nil.
func nodeByName(nodes []resolvedNode, name string) *resolvedNode {
	for i := range nodes {
		if nodes[i].name == name {
			return &nodes[i]
		}
	}
	return nil
}

// unmanaged reports whether a manager kind leaves thread placement to the
// OS scheduler model (no HARS/MP-HARS manager owning affinity masks).
func unmanaged(mgr string) bool { return mgr == ManagerNone || mgr == ManagerGTS }

// Validate checks the scenario against the default platform: well-formed
// specs, known references, and a hotplug sequence that never takes the last
// core offline.
func (sc *Scenario) Validate() error { return sc.ValidateOn(hmp.Default()) }

// ValidateOn validates against an explicit platform description (used for
// the legacy single node only: a scenario declaring nodes owns its
// platforms and ignores plat).
func (sc *Scenario) ValidateOn(plat *hmp.Platform) error {
	_, _, err := sc.resolveAndValidate(plat)
	return err
}

// resolveAndValidate is the shared entry of ValidateOn and the engine: it
// resolves the node list and the full application list (declared apps plus
// arrival-stream expansions) once and validates the whole scenario against
// them, returning both so Run does not repeat the work.
func (sc *Scenario) resolveAndValidate(plat *hmp.Platform) ([]resolvedNode, []AppSpec, error) {
	if sc.DurationMS <= 0 {
		return nil, nil, fmt.Errorf("scenario: duration_ms must be positive, got %d", sc.DurationMS)
	}
	if !validManagers[sc.Manager] {
		return nil, nil, fmt.Errorf("scenario: unknown manager %q", sc.Manager)
	}
	if sc.SampleEveryMS < 0 || sc.AdaptEvery < 0 {
		return nil, nil, fmt.Errorf("scenario: negative sample_every_ms or adapt_every")
	}
	if _, err := fleet.PolicyByName(sc.Placement, sim.CheckpointCost{}); err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	if len(sc.Nodes) == 0 {
		if sc.Placement != "" {
			return nil, nil, fmt.Errorf("scenario: placement %q needs a nodes list", sc.Placement)
		}
		if sc.MigrateEveryMS != 0 {
			return nil, nil, fmt.Errorf("scenario: migrate_every_ms needs a nodes list")
		}
		if sc.Checkpoint != nil {
			return nil, nil, fmt.Errorf("scenario: checkpoint needs a nodes list")
		}
	}
	if c := sc.Checkpoint; c != nil && (c.FreezeUS < 0 || c.PerMBUS < 0 || c.SizeMB < 0) {
		return nil, nil, fmt.Errorf("scenario: negative checkpoint cost")
	}
	if sc.Faults != nil && len(sc.Nodes) == 0 {
		return nil, nil, fmt.Errorf("scenario: faults needs a nodes list")
	}
	if sc.Decisions != nil && sc.Decisions.Keep < 0 {
		return nil, nil, fmt.Errorf("scenario: decisions: negative keep")
	}
	apps, err := sc.expandApps()
	if err != nil {
		return nil, nil, err
	}
	if len(apps) == 0 {
		return nil, nil, fmt.Errorf("scenario: no apps")
	}
	nodes, err := sc.resolveNodes(plat)
	if err != nil {
		return nil, nil, err
	}
	fleetMode := len(sc.Nodes) > 0

	names := make(map[string]bool, len(apps))
	for i := range apps {
		a := &apps[i]
		if a.Name == "" {
			return nil, nil, fmt.Errorf("scenario: app %d has no name", i)
		}
		if names[a.Name] {
			return nil, nil, fmt.Errorf("scenario: duplicate app name %q", a.Name)
		}
		names[a.Name] = true
		if _, ok := workload.ByShort(a.Bench); !ok {
			return nil, nil, fmt.Errorf("scenario: app %q: unknown bench %q", a.Name, a.Bench)
		}
		if a.Threads < 0 {
			return nil, nil, fmt.Errorf("scenario: app %q: negative threads", a.Name)
		}
		if a.StartMS < 0 || a.StartMS >= sc.DurationMS {
			return nil, nil, fmt.Errorf("scenario: app %q: start_ms %d outside [0, %d)", a.Name, a.StartMS, sc.DurationMS)
		}
		if a.StopMS != 0 && (a.StopMS <= a.StartMS || a.StopMS > sc.DurationMS) {
			return nil, nil, fmt.Errorf("scenario: app %q: stop_ms %d outside (start, duration]", a.Name, a.StopMS)
		}
		if a.SLO != nil && (a.SLO.TargetHPS <= 0 || a.SLO.SlackMS < 0) {
			return nil, nil, fmt.Errorf("scenario: app %q: slo needs a positive target_hps and non-negative slack_ms", a.Name)
		}
		if a.Target != nil {
			if !(a.Target.Min > 0 && a.Target.Min <= a.Target.Avg && a.Target.Avg <= a.Target.Max) {
				return nil, nil, fmt.Errorf("scenario: app %q: malformed target band", a.Name)
			}
		} else if a.TargetFrac < 0 || a.TargetFrac > 1 {
			return nil, nil, fmt.Errorf("scenario: app %q: target_frac %v outside [0, 1]", a.Name, a.TargetFrac)
		}

		// The candidate nodes the app may land on: its pin, or all of them.
		candidates := nodes
		if a.Node != "" {
			if !fleetMode {
				return nil, nil, fmt.Errorf("scenario: app %q: node pin needs a nodes list", a.Name)
			}
			rn := nodeByName(nodes, a.Node)
			if rn == nil {
				return nil, nil, fmt.Errorf("scenario: app %q: unknown node %q", a.Name, a.Node)
			}
			candidates = nodes[rn.idx : rn.idx+1]
		}
		initB := intOr(a.InitBig, 1)
		initL := intOr(a.InitLittle, 1)
		if initB < 0 || initL < 0 {
			return nil, nil, fmt.Errorf("scenario: app %q: negative initial allocation", a.Name)
		}
		if initB+initL == 0 {
			return nil, nil, fmt.Errorf("scenario: app %q: initial allocation is empty", a.Name)
		}
		fits := false
		for _, rn := range candidates {
			if initB <= rn.plat.Clusters[hmp.Big].Cores && initL <= rn.plat.Clusters[hmp.Little].Cores {
				fits = true
				break
			}
		}
		if !fits {
			return nil, nil, fmt.Errorf("scenario: app %q: initial allocation outside every candidate node's platform", a.Name)
		}
		if len(a.Affinity) > 0 {
			seen := make(map[int]bool, len(a.Affinity))
			for _, cpu := range a.Affinity {
				if seen[cpu] {
					return nil, nil, fmt.Errorf("scenario: app %q: duplicate affinity cpu %d", a.Name, cpu)
				}
				seen[cpu] = true
			}
			for _, rn := range candidates {
				if !unmanaged(rn.manager) {
					return nil, nil, fmt.Errorf("scenario: app %q: affinity needs an unmanaged node (%q runs %q)",
						a.Name, rn.name, rn.manager)
				}
				for _, cpu := range a.Affinity {
					if cpu < 0 || cpu >= rn.plat.TotalCores() {
						return nil, nil, fmt.Errorf("scenario: app %q: affinity cpu %d outside candidate node platforms", a.Name, cpu)
					}
				}
			}
		}
	}

	occurrences := int64(0)
	for i := range sc.Events {
		ev := &sc.Events[i]
		if ev.AtMS < 0 || ev.AtMS > sc.DurationMS {
			return nil, nil, fmt.Errorf("scenario: event %d: at_ms %d outside [0, %d]", i, ev.AtMS, sc.DurationMS)
		}
		if ev.EveryMS < 0 {
			return nil, nil, fmt.Errorf("scenario: event %d: negative every_ms %d", i, ev.EveryMS)
		}
		if ev.Repeat < 0 {
			return nil, nil, fmt.Errorf("scenario: event %d: negative repeat %d", i, ev.Repeat)
		}
		if ev.Repeat > 0 && ev.EveryMS == 0 {
			return nil, nil, fmt.Errorf("scenario: event %d: repeat without every_ms", i)
		}
		occurrences += ev.occurrenceCount(sc.DurationMS)
		if occurrences > maxOccurrences {
			return nil, nil, fmt.Errorf("scenario: events expand to more than %d occurrences", maxOccurrences)
		}
		// Platform events address a node; app events address an app.
		var target *resolvedNode
		switch ev.Kind {
		case KindHotplug, KindDVFSCap:
			if fleetMode {
				if ev.Node == "" {
					return nil, nil, fmt.Errorf("scenario: event %d: %s needs a node in a multi-node scenario", i, ev.Kind)
				}
				if target = nodeByName(nodes, ev.Node); target == nil {
					return nil, nil, fmt.Errorf("scenario: event %d: unknown node %q", i, ev.Node)
				}
			} else {
				if ev.Node != "" {
					return nil, nil, fmt.Errorf("scenario: event %d: node %q needs a nodes list", i, ev.Node)
				}
				target = &nodes[0]
			}
		default:
			if ev.Node != "" {
				return nil, nil, fmt.Errorf("scenario: event %d: %s events address an app, not a node", i, ev.Kind)
			}
		}
		switch ev.Kind {
		case KindHotplug:
			if ev.CPU < 0 || ev.CPU >= target.plat.TotalCores() {
				return nil, nil, fmt.Errorf("scenario: event %d: cpu %d outside the platform", i, ev.CPU)
			}
			if ev.Online == nil {
				return nil, nil, fmt.Errorf("scenario: event %d: hotplug needs explicit \"online\"", i)
			}
		case KindDVFSCap:
			if target.thermalOn() {
				return nil, nil, fmt.Errorf("scenario: event %d: dvfs_cap conflicts with the enabled thermal governor (it owns the ceilings)", i)
			}
			k, err := parseCluster(ev.Cluster)
			if err != nil {
				return nil, nil, fmt.Errorf("scenario: event %d: %w", i, err)
			}
			if ev.MaxLevel < 0 || ev.MaxLevel > target.plat.Clusters[k].MaxLevel() {
				return nil, nil, fmt.Errorf("scenario: event %d: max_level %d outside the %s grid", i, ev.MaxLevel, ev.Cluster)
			}
		case KindTarget:
			if !names[ev.App] {
				return nil, nil, fmt.Errorf("scenario: event %d: unknown app %q", i, ev.App)
			}
			if ev.Target != nil {
				if !(ev.Target.Min > 0 && ev.Target.Min <= ev.Target.Avg && ev.Target.Avg <= ev.Target.Max) {
					return nil, nil, fmt.Errorf("scenario: event %d: malformed target band", i)
				}
			} else if ev.Frac <= 0 || ev.Frac > 1 {
				return nil, nil, fmt.Errorf("scenario: event %d: frac %v outside (0, 1]", i, ev.Frac)
			}
		case KindPhase:
			if !names[ev.App] {
				return nil, nil, fmt.Errorf("scenario: event %d: unknown app %q", i, ev.App)
			}
			if ev.Scale <= 0 {
				return nil, nil, fmt.Errorf("scenario: event %d: scale %v must be positive", i, ev.Scale)
			}
		default:
			return nil, nil, fmt.Errorf("scenario: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	if fs := sc.Faults; fs != nil {
		if err := fs.Validate(sc.DurationMS); err != nil {
			return nil, nil, fmt.Errorf("scenario: %w", err)
		}
		for i, c := range fs.Crashes {
			if nodeByName(nodes, c.Node) == nil {
				return nil, nil, fmt.Errorf("scenario: faults: crash %d: unknown node %q", i, c.Node)
			}
		}
		for i, cf := range fs.CoreFailures {
			rn := nodeByName(nodes, cf.Node)
			if rn == nil {
				return nil, nil, fmt.Errorf("scenario: faults: core failure %d: unknown node %q", i, cf.Node)
			}
			if cf.CPU >= rn.plat.TotalCores() {
				return nil, nil, fmt.Errorf("scenario: faults: core failure %d: cpu %d outside node %q's platform",
					i, cf.CPU, cf.Node)
			}
		}
	}
	return nodes, apps, sc.checkHotplug(nodes)
}

// occurrenceCount returns how many times the event fires within a run of
// durationMS milliseconds (validation has already established AtMS ≤
// durationMS and EveryMS ≥ 0). Counts beyond maxOccurrences saturate at
// maxOccurrences+1 — enough for validation to reject — so an extreme
// duration/period pair cannot overflow int64.
func (ev *Event) occurrenceCount(durationMS int64) int64 {
	if ev.EveryMS <= 0 {
		return 1
	}
	extra := (durationMS - ev.AtMS) / ev.EveryMS // firings after the first
	if ev.Repeat > 0 && int64(ev.Repeat) <= extra {
		return int64(ev.Repeat)
	}
	if extra >= maxOccurrences {
		return maxOccurrences + 1
	}
	return extra + 1
}

// Occurrences lists the times (in ms, ascending) the event fires within a
// run of durationMS milliseconds: AtMS alone for one-shot events, or every
// EveryMS from AtMS for repeating ones.
func (ev *Event) Occurrences(durationMS int64) []int64 {
	n := ev.occurrenceCount(durationMS)
	out := make([]int64, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, ev.AtMS+i*ev.EveryMS)
	}
	return out
}

// checkHotplug replays every node's hotplug sequence in application order
// and rejects a scenario that ever takes a node's last core offline — or
// every core of some app's affinity mask, which would starve the pinned app
// silently (its threads would intersect no online core until the platform
// grows back). Both checks keep the package promise that a validated
// scenario can always make progress.
func (sc *Scenario) checkHotplug(nodes []resolvedNode) error {
	type hp struct {
		at  int64
		seq int
		cpu int
		on  bool
	}
	for i := range nodes {
		rn := &nodes[i]
		// Affinity masks of apps that may run on this node: the pinned
		// ones, and every unpinned one (the policy may place it here).
		type pin struct {
			name string
			mask hmp.CPUMask
		}
		var pins []pin
		for j := range sc.Apps {
			a := &sc.Apps[j]
			if len(a.Affinity) == 0 || (a.Node != "" && a.Node != rn.name) {
				continue
			}
			pins = append(pins, pin{name: a.Name, mask: hmp.MaskOf(a.Affinity...)})
		}
		var seq []hp
		for j := range sc.Events {
			ev := &sc.Events[j]
			if ev.Kind != KindHotplug || ev.Node != rn.name {
				continue
			}
			for _, at := range ev.Occurrences(sc.DurationMS) {
				seq = append(seq, hp{at: at, seq: j, cpu: ev.CPU, on: *ev.Online})
			}
		}
		if sc.Faults != nil {
			// Scripted core failures participate in the same replay: they
			// act as hotplug-offs (ordered after same-time events, as the
			// engine orders them), so a fault plan may not kill a node's
			// last core or starve a pinned app either.
			for j, cf := range sc.Faults.CoreFailures {
				if cf.Node != rn.name {
					continue
				}
				seq = append(seq, hp{at: cf.AtMS, seq: len(sc.Events) + j, cpu: cf.CPU, on: false})
			}
		}
		sort.Slice(seq, func(i, j int) bool {
			if seq[i].at != seq[j].at {
				return seq[i].at < seq[j].at
			}
			return seq[i].seq < seq[j].seq
		})
		online := hmp.AllCPUs(rn.plat)
		for _, h := range seq {
			if h.on {
				online = online.Set(h.cpu)
			} else {
				online = online.Clear(h.cpu)
			}
			if online == 0 {
				return fmt.Errorf("scenario: hotplug at t=%dms takes node %q's last core offline", h.at, rn.name)
			}
			for _, p := range pins {
				if online.Intersect(p.mask) == 0 {
					return fmt.Errorf("scenario: hotplug at t=%dms takes every affinity cpu of app %q offline on node %q",
						h.at, p.name, rn.name)
				}
			}
		}
	}
	return nil
}

// IntPtr returns a pointer to v, for building AppSpec literals.
func IntPtr(v int) *int { return &v }

// intOr dereferences an optional int field, substituting def when unset.
func intOr(p *int, def int) int {
	if p == nil {
		return def
	}
	return *p
}

func parseCluster(s string) (hmp.ClusterKind, error) {
	switch s {
	case "big":
		return hmp.Big, nil
	case "little":
		return hmp.Little, nil
	}
	return 0, fmt.Errorf("unknown cluster %q", s)
}
