package power

import (
	"fmt"

	"repro/internal/hmp"
	"repro/internal/linreg"
	"repro/internal/sim"
)

// Microbench is the paper's profiling microbenchmark: it "stresses the cores
// and memory with running tasks" and "can configure the number of cores,
// frequency level, and CPU utilization". Each thread is duty-cycled: it
// burns CPU for util×period then sleeps for the rest of the period.
type Microbench struct {
	Threads int
	Util    float64  // duty cycle in (0, 1]
	Period  sim.Time // duty-cycle period
	Speed   float64  // units/s the pinned core retires (freq scale)

	deadline []sim.Time // next cycle start per thread
}

// Name implements sim.Program.
func (b *Microbench) Name() string { return "microbench" }

// NumThreads implements sim.Program.
func (b *Microbench) NumThreads() int { return b.Threads }

func (b *Microbench) burst() float64 {
	return b.Speed * b.Util * sim.Seconds(b.Period)
}

// Start implements sim.Program.
func (b *Microbench) Start(p *sim.Process) {
	b.deadline = make([]sim.Time, b.Threads)
	for i := 0; i < b.Threads; i++ {
		b.deadline[i] = p.Now() + b.Period
		p.SetWork(i, b.burst())
	}
}

// UnitDone implements sim.Program. Each cycle starts on a fixed deadline
// grid so the achieved utilization matches Util exactly regardless of tick
// quantization.
func (b *Microbench) UnitDone(p *sim.Process, local int) {
	if b.Util >= 1 {
		p.SetWork(local, b.burst())
		return
	}
	next := b.deadline[local]
	b.deadline[local] = next + b.Period
	if next <= p.Now() {
		p.SetWork(local, b.burst())
		return
	}
	p.WakeAt(local, next, b.burst())
}

// SpeedFactor implements sim.Program: the microbenchmark is pure integer
// work, equally fast per clock on both clusters.
func (b *Microbench) SpeedFactor(local int, k hmp.ClusterKind) float64 { return 1 }

// ProfilePoint is one profiled configuration and its measured power.
type ProfilePoint struct {
	Cluster hmp.ClusterKind
	Level   int
	Cores   int
	Util    float64
	Watts   float64 // sensor-measured cluster power
}

// ProfileConfig controls the profiling sweep.
type ProfileConfig struct {
	Utils      []float64 // utilization grid, default {0.25, 0.5, 0.75, 1.0}
	RunPer     sim.Time  // measurement time per configuration, default 1.6 s
	DutyPeriod sim.Time  // microbenchmark duty-cycle period, default 10 ms
}

func (c *ProfileConfig) withDefaults() ProfileConfig {
	out := *c
	if len(out.Utils) == 0 {
		out.Utils = []float64{0.25, 0.5, 0.75, 1.0}
	}
	if out.RunPer <= 0 {
		out.RunPer = 1600 * sim.Millisecond
	}
	if out.DutyPeriod <= 0 {
		out.DutyPeriod = 10 * sim.Millisecond
	}
	return out
}

// RunProfile sweeps (cores × frequency level × utilization) for each cluster,
// measuring cluster power with the sampled sensor, and returns the profile
// data the linear models are fitted from. The ground truth gt plays the part
// of the physical board.
func RunProfile(plat *hmp.Platform, gt *GroundTruth, cfg ProfileConfig) []ProfilePoint {
	cfg = cfg.withDefaults()
	var out []ProfilePoint
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		spec := &plat.Clusters[k]
		for lv := 0; lv <= spec.MaxLevel(); lv++ {
			for cores := 1; cores <= spec.Cores; cores++ {
				for _, u := range cfg.Utils {
					w := measurePoint(plat, gt, cfg, k, lv, cores, u)
					out = append(out, ProfilePoint{
						Cluster: k, Level: lv, Cores: cores, Util: u, Watts: w,
					})
				}
			}
		}
	}
	return out
}

func measurePoint(plat *hmp.Platform, gt *GroundTruth, cfg ProfileConfig, k hmp.ClusterKind, lv, cores int, util float64) float64 {
	m := sim.New(plat, sim.Config{Power: gt})
	m.SetLevel(k, lv)
	m.SetLevel(k.Other(), 0) // keep the other cluster quiet at its floor
	bench := &Microbench{
		Threads: cores,
		Util:    util,
		Period:  cfg.DutyPeriod,
		Speed:   plat.FreqScale(k, lv),
	}
	p := m.Spawn("microbench", bench, 4)
	for i := 0; i < cores; i++ {
		p.SetAffinity(i, hmp.MaskOf(plat.CPU(k, i)))
	}
	sensor := &Sensor{Period: SensorPeriod}
	m.AddDaemon(sensor)
	m.Run(cfg.RunPer)
	if len(sensor.Samples()) == 0 {
		// Run too short for a full sensor window; fall back to the energy
		// counter so callers always get a measurement.
		return m.ClusterEnergyJ(k) / sim.Seconds(m.Now())
	}
	return sensor.MeanWatts(k)
}

// FitLinearModel fits the paper's per-cluster, per-level linear models
// P = α·(C_U·U_U) + β from profile data.
func FitLinearModel(plat *hmp.Platform, points []ProfilePoint) (*LinearModel, error) {
	lm := &LinearModel{}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		levels := plat.Clusters[k].Levels()
		lm.Alpha[k] = make([]float64, levels)
		lm.Beta[k] = make([]float64, levels)
		lm.R2[k] = make([]float64, levels)
		for lv := 0; lv < levels; lv++ {
			var xs, ys []float64
			for _, pt := range points {
				if pt.Cluster != k || pt.Level != lv {
					continue
				}
				xs = append(xs, float64(pt.Cores)*pt.Util)
				ys = append(ys, pt.Watts)
			}
			if len(xs) == 0 {
				return nil, fmt.Errorf("power: no profile points for %s level %d", k, lv)
			}
			a, b, err := linreg.Fit1D(xs, ys)
			if err != nil {
				return nil, fmt.Errorf("power: fit %s level %d: %w", k, lv, err)
			}
			lm.Alpha[k][lv] = a
			lm.Beta[k][lv] = b
			yhat := make([]float64, len(xs))
			for i, x := range xs {
				yhat[i] = a*x + b
			}
			lm.R2[k][lv] = linreg.RSquared(ys, yhat)
		}
	}
	return lm, nil
}

// ProfileAndFit runs the full profiling sweep and fits the linear model in
// one call — the offline calibration pass of the paper's methodology.
func ProfileAndFit(plat *hmp.Platform, gt *GroundTruth, cfg ProfileConfig) (*LinearModel, error) {
	return FitLinearModel(plat, RunProfile(plat, gt, cfg))
}
