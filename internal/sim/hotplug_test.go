package sim_test

import (
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// hotspin keeps n threads permanently busy.
type hotspin struct{ n int }

func (s *hotspin) Name() string    { return "spin" }
func (s *hotspin) NumThreads() int { return s.n }
func (s *hotspin) Start(p *sim.Process) {
	for i := 0; i < s.n; i++ {
		p.SetWork(i, 0.05)
	}
}
func (s *hotspin) UnitDone(p *sim.Process, local int)       { p.SetWork(local, 0.05) }
func (s *hotspin) SpeedFactor(int, hmp.ClusterKind) float64 { return 1 }

func TestSetCoreOnlineEvictsAndReplaces(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	p := m.Spawn("spin", &hotspin{n: 8}, 4)
	m.Run(100 * sim.Millisecond)

	victim := -1
	for _, th := range p.Threads {
		if th.Core() == 3 {
			victim = th.Local
		}
	}
	if victim < 0 {
		t.Fatal("no thread on cpu 3 after balancing 8 threads over 8 cores")
	}
	m.SetCoreOnline(3, false)
	if m.CoreOnline(3) || m.OnlineMask().Has(3) {
		t.Fatal("cpu 3 still reads online")
	}
	if m.OnlineCount(hmp.Little) != 3 || m.OnlineCount(hmp.Big) != 4 {
		t.Fatalf("online counts = %d/%d, want 3/4",
			m.OnlineCount(hmp.Little), m.OnlineCount(hmp.Big))
	}
	// Eviction is immediate: the victim is unplaced, the queue is empty.
	if c := p.Threads[victim].Core(); c != -1 {
		t.Fatalf("evicted thread still on core %d", c)
	}
	if m.RunQueueLen(3) != 0 {
		t.Fatal("offline core still has a run queue")
	}
	// One tick later the balancer has re-placed it on an online core.
	m.Run(sim.Millisecond)
	if c := p.Threads[victim].Core(); c < 0 || c == 3 {
		t.Fatalf("evicted thread not re-placed (core %d)", c)
	}
	busy := m.BusyTime(3)
	m.Run(500 * sim.Millisecond)
	if m.BusyTime(3) != busy {
		t.Fatal("offline core accumulated busy time")
	}
	for _, th := range p.Threads {
		if th.Core() == 3 {
			t.Fatal("thread placed on offline core")
		}
	}

	// Coming back online: the balancer spreads back out to one per core.
	m.SetCoreOnline(3, true)
	m.Run(100 * sim.Millisecond)
	if m.RunQueueLen(3) != 1 {
		t.Fatalf("cpu 3 run queue after return = %d, want 1", m.RunQueueLen(3))
	}
}

func TestOfflineAffinityStrandsUntilReturn(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	p := m.Spawn("spin", &hotspin{n: 1}, 4)
	p.SetAffinity(0, hmp.MaskOf(2))
	m.Run(10 * sim.Millisecond)
	if p.Threads[0].Core() != 2 {
		t.Fatal("pinned thread not on cpu 2")
	}
	m.SetCoreOnline(2, false)
	m.Run(100 * sim.Millisecond)
	// Whole affinity mask offline: the thread is runnable but unplaced and
	// makes no progress.
	if c := p.Threads[0].Core(); c != -1 {
		t.Fatalf("stranded thread on core %d, want -1", c)
	}
	work := p.WorkDone()
	m.Run(100 * sim.Millisecond)
	if p.WorkDone() != work {
		t.Fatal("stranded thread made progress")
	}
	m.SetCoreOnline(2, true)
	m.Run(10 * sim.Millisecond)
	if p.Threads[0].Core() != 2 {
		t.Fatal("thread not re-placed after its core returned")
	}
	if p.WorkDone() == work {
		t.Fatal("thread made no progress after its core returned")
	}
}

func TestSetLevelCapClamps(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	max := plat.Clusters[hmp.Big].MaxLevel()
	if m.LevelCap(hmp.Big) != max || m.Level(hmp.Big) != max {
		t.Fatal("machine does not start uncapped at max level")
	}
	m.SetLevelCap(hmp.Big, 4)
	if m.Level(hmp.Big) != 4 {
		t.Fatalf("level after capping = %d, want 4 (lowered immediately)", m.Level(hmp.Big))
	}
	m.SetLevel(hmp.Big, max) // actuation above the ceiling clamps
	if m.Level(hmp.Big) != 4 {
		t.Fatalf("SetLevel above cap yielded %d, want 4", m.Level(hmp.Big))
	}
	m.SetLevel(hmp.Big, 2) // below the ceiling passes through
	if m.Level(hmp.Big) != 2 {
		t.Fatalf("SetLevel below cap yielded %d, want 2", m.Level(hmp.Big))
	}
	m.SetLevelCap(hmp.Big, max) // restoring the cap does not move the level
	if m.Level(hmp.Big) != 2 || m.LevelCap(hmp.Big) != max {
		t.Fatalf("after uncapping: level %d cap %d, want 2 %d",
			m.Level(hmp.Big), m.LevelCap(hmp.Big), max)
	}
	m.SetLevelCap(hmp.Big, -5) // clamped to the grid
	if m.LevelCap(hmp.Big) != 0 || m.Level(hmp.Big) != 0 {
		t.Fatal("negative cap should clamp to level 0")
	}
}

func TestKillParksProcessForever(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	p := m.Spawn("spin", &hotspin{n: 4}, 4)
	p.WakeAt(0, 2*sim.Second, 1.0) // pending timer outlives the kill
	m.Run(500 * sim.Millisecond)
	if p.WorkDone() == 0 {
		t.Fatal("no progress before kill")
	}
	m.Kill(p)
	if !p.Exited() {
		t.Fatal("Exited() false after Kill")
	}
	work := p.WorkDone()
	m.Run(3 * sim.Second) // runs past the pending timer
	if p.WorkDone() != work {
		t.Fatal("killed process made progress")
	}
	for _, th := range p.Threads {
		if th.Runnable() {
			t.Fatalf("thread %d runnable after kill", th.Local)
		}
	}
	p.SetWork(0, 1.0) // late callbacks are dropped
	if p.Threads[0].Runnable() {
		t.Fatal("SetWork revived a killed process")
	}
	m.Kill(p) // idempotent
}

func TestMigrateToOfflinePanics(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	p := m.Spawn("spin", &hotspin{n: 1}, 4)
	m.Run(10 * sim.Millisecond)
	m.SetCoreOnline(7, false)
	defer func() {
		if recover() == nil {
			t.Error("Migrate to an offline core should panic")
		}
	}()
	m.Migrate(p.Threads[0], 7)
}

func TestChargeOverheadRedirectsFromOfflineCore(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	m.SetCoreOnline(0, false)
	m.ChargeOverhead(0, 100*sim.Microsecond)
	if m.Overhead() != 100*sim.Microsecond {
		t.Fatal("overhead lost")
	}
	m.Run(10 * sim.Millisecond)
	if m.BusyTime(0) != 0 {
		t.Fatal("offline core burned the charged overhead")
	}
	if m.BusyTime(1) == 0 {
		t.Fatal("overhead not redirected to the first online core")
	}
}

// TestHotplugTraceEvents checks the tracer records hotplug and cap events.
func TestHotplugTraceEvents(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	tr := &sim.Tracer{}
	m.SetTracer(tr)
	m.SetCoreOnline(5, false)
	m.SetLevelCap(hmp.Big, 3)
	m.SetCoreOnline(5, true)
	var hot, cap, dvfs int
	for _, e := range tr.Events() {
		switch e.Kind {
		case sim.EvHotplug:
			hot++
		case sim.EvCap:
			cap++
		case sim.EvDVFS:
			dvfs++
		}
	}
	if hot != 2 || cap != 1 || dvfs != 1 {
		t.Fatalf("hotplug/cap/dvfs events = %d/%d/%d, want 2/1/1", hot, cap, dvfs)
	}
}
