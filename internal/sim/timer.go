package sim

import "container/heap"

// timerEntry is a scheduled wakeup: at time `at`, thread (proc, local)
// receives `units` of work.
type timerEntry struct {
	at    Time
	proc  *Process
	local int
	units float64
	seq   int64 // tie-break for determinism
}

type timerHeap struct {
	entries []timerEntry
	nextSeq int64
}

func (h *timerHeap) Len() int { return len(h.entries) }
func (h *timerHeap) Less(i, j int) bool {
	if h.entries[i].at != h.entries[j].at {
		return h.entries[i].at < h.entries[j].at
	}
	return h.entries[i].seq < h.entries[j].seq
}
func (h *timerHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *timerHeap) Push(x any)    { h.entries = append(h.entries, x.(timerEntry)) }
func (h *timerHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}

func (h *timerHeap) push(e timerEntry) {
	e.seq = h.nextSeq
	h.nextSeq++
	heap.Push(h, e)
}

// fireTimers delivers every wakeup due at or before the current tick start.
func (m *Machine) fireTimers() {
	for m.timers.Len() > 0 && m.timers.entries[0].at <= m.now {
		e := heap.Pop(&m.timers).(timerEntry)
		e.proc.SetWork(e.local, e.units)
	}
}
