package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
)

// CheckpointCost models what a work-conserving process move costs: the
// application is frozen for a fixed freeze-and-thaw time plus a transfer
// delay proportional to its checkpoint image, and resumes only once the
// whole delay has elapsed on the shared clock. The zero value is a free
// move — capture and restore within one tick, the application runnable
// again on the next.
type CheckpointCost struct {
	// Freeze is the fixed stop/copy/thaw time charged per move.
	Freeze Time
	// PerMB is the transfer delay charged per MB of checkpoint image.
	PerMB Time
	// SizeMB is the checkpoint image size in MB. Zero with a non-zero
	// PerMB means no transfer charge (nothing to move).
	SizeMB float64
}

// Delay returns the total stall a move charges on the clock.
func (c CheckpointCost) Delay() Time {
	d := c.Freeze
	if c.PerMB > 0 && c.SizeMB > 0 {
		d += Time(float64(c.PerMB) * c.SizeMB)
	}
	return d
}

// ThreadSnapshot is one thread's captured run state.
type ThreadSnapshot struct {
	// Remaining is the work left in the unit the thread was executing
	// (zero for a blocked thread).
	Remaining float64
	// WorkDone is the thread's cumulative retired work.
	WorkDone float64
	// Migrations is the thread's cumulative core-migration count.
	Migrations int
	// Blocked records whether the thread was parked waiting for work.
	Blocked bool
}

// WakeupSnapshot is one pending timer wakeup of the captured process.
type WakeupSnapshot struct {
	Local int
	At    Time
	Units float64
}

// ProcSnapshot is a process's complete checkpointable identity: the program
// object (whose internal barrier/queue state rides along), the heartbeat
// monitor (history and target intact), per-thread progress, and the pending
// wakeups — everything Restore needs to continue the application on another
// machine as if it had never stopped. Snapshots are produced by
// Machine.Checkpoint and consumed exactly once by Machine.Restore.
type ProcSnapshot struct {
	Name    string
	Prog    Program
	HB      *heartbeat.Monitor
	Threads []ThreadSnapshot
	Wakeups []WakeupSnapshot

	// TakenAt is the capture time; the fleet layer uses it to charge the
	// checkpoint delay from the moment the application stopped running.
	TakenAt Time
}

// Cloneable is the optional Program extension background (non-destructive)
// checkpoints require: CloneProgram returns an independent deep copy of the
// program's run state, leaving the live program untouched. Both workload
// templates implement it.
type Cloneable interface {
	CloneProgram() Program
}

// Clone returns an independent deep copy of the snapshot, or ok=false when
// the program does not implement Cloneable. Crash recovery clones before
// restoring so the retained snapshot stays valid if the same incarnation
// crashes again before the next background checkpoint.
func (s *ProcSnapshot) Clone() (*ProcSnapshot, bool) {
	cl, ok := s.Prog.(Cloneable)
	if !ok {
		return nil, false
	}
	c := &ProcSnapshot{
		Name:    s.Name,
		Prog:    cl.CloneProgram(),
		HB:      s.HB.Clone(),
		Threads: append([]ThreadSnapshot(nil), s.Threads...),
		Wakeups: append([]WakeupSnapshot(nil), s.Wakeups...),
		TakenAt: s.TakenAt,
	}
	return c, true
}

// Beats returns the snapshot's cumulative heartbeat count.
func (s *ProcSnapshot) Beats() int64 { return s.HB.Count() }

// WorkDone returns the snapshot's cumulative retired work.
func (s *ProcSnapshot) WorkDone() float64 {
	var sum float64
	for _, t := range s.Threads {
		sum += t.WorkDone
	}
	return sum
}

// Migrations returns the snapshot's cumulative thread-migration count.
func (s *ProcSnapshot) Migrations() int {
	sum := 0
	for _, t := range s.Threads {
		sum += t.Migrations
	}
	return sum
}

// Checkpoint captures a live process's run state and terminates the local
// incarnation: thread progress, workload-internal state (the Program object
// itself moves with the snapshot), heartbeat history, and pending wakeups
// are packaged for Restore on another machine; the local process is then
// killed exactly as a departure would be, so the machine's own digests and
// statistics for the executed portion stay valid. Must not be called from
// mid-execute program callbacks.
func (m *Machine) Checkpoint(p *Process) *ProcSnapshot {
	if m.inExec {
		panic("sim: Checkpoint called during execute")
	}
	if p.exited {
		panic(fmt.Sprintf("sim: Checkpoint of exited process %q", p.Name))
	}
	snap := &ProcSnapshot{
		Name:    p.Name,
		Prog:    p.prog,
		HB:      p.HB,
		Threads: make([]ThreadSnapshot, len(p.Threads)),
		TakenAt: m.now,
	}
	for i, t := range p.Threads {
		snap.Threads[i] = ThreadSnapshot{
			Remaining:  t.remaining,
			WorkDone:   t.workDone,
			Migrations: t.migrations,
			Blocked:    t.blocked,
		}
	}
	// Extract the process's pending wakeups from the timer heap: they must
	// fire on the destination, not linger here as dead deliveries. Sorting
	// by (at, seq) reproduces the firing order the source would have used,
	// so re-pushing them on the destination preserves delivery order.
	var mine []timerEntry
	kept := m.timers.entries[:0]
	for _, e := range m.timers.entries {
		if e.proc == p {
			mine = append(mine, e)
		} else {
			kept = append(kept, e)
		}
	}
	if len(mine) > 0 {
		m.timers.entries = kept
		heap.Init(&m.timers)
		sort.Slice(mine, func(i, j int) bool {
			if mine[i].at != mine[j].at {
				return mine[i].at < mine[j].at
			}
			return mine[i].seq < mine[j].seq
		})
		for _, e := range mine {
			snap.Wakeups = append(snap.Wakeups, WakeupSnapshot{Local: e.local, At: e.at, Units: e.units})
		}
	}
	if m.tracer != nil {
		m.emit(Event{T: m.now, Kind: EvMigrateOut, Proc: p.Name})
	}
	m.Kill(p)
	return snap
}

// Snapshot captures a live process's run state WITHOUT disturbing it: the
// program and heartbeat monitor are deep-copied, thread progress is copied,
// and pending wakeups are read out of the timer heap but left in place. The
// process keeps running; the snapshot is a consistent restore point frozen
// at the capture instant. Returns ok=false when the program does not
// implement Cloneable (periodic background checkpoints then skip the app).
// Must not be called from mid-execute program callbacks.
func (m *Machine) Snapshot(p *Process) (*ProcSnapshot, bool) {
	if m.inExec {
		panic("sim: Snapshot called during execute")
	}
	if p.exited {
		panic(fmt.Sprintf("sim: Snapshot of exited process %q", p.Name))
	}
	cl, ok := p.prog.(Cloneable)
	if !ok {
		return nil, false
	}
	snap := &ProcSnapshot{
		Name:    p.Name,
		Prog:    cl.CloneProgram(),
		HB:      p.HB.Clone(),
		Threads: make([]ThreadSnapshot, len(p.Threads)),
		TakenAt: m.now,
	}
	for i, t := range p.Threads {
		snap.Threads[i] = ThreadSnapshot{
			Remaining:  t.remaining,
			WorkDone:   t.workDone,
			Migrations: t.migrations,
			Blocked:    t.blocked,
		}
	}
	// Copy (don't extract) the process's pending wakeups, in the (at, seq)
	// order the source would fire them.
	var mine []timerEntry
	for _, e := range m.timers.entries {
		if e.proc == p {
			mine = append(mine, e)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].at != mine[j].at {
			return mine[i].at < mine[j].at
		}
		return mine[i].seq < mine[j].seq
	})
	for _, e := range mine {
		snap.Wakeups = append(snap.Wakeups, WakeupSnapshot{Local: e.local, At: e.at, Units: e.units})
	}
	return snap, true
}

// Restore continues a checkpointed process on this machine: a new Process
// (fresh ID, fresh threads, all-CPU affinity, no placement) resumes the
// snapshot's program with its heartbeat monitor, per-thread progress, and
// pending wakeups intact — statistics are continuous across the move. The
// application stays frozen until resumeAt (clamped to now): runnable
// threads and wakeups due earlier are delivered at resumeAt, later wakeups
// fire on time. The program's Start hook is NOT invoked — the snapshot
// already holds the started state.
func (m *Machine) Restore(snap *ProcSnapshot, resumeAt Time) *Process {
	return m.restore(snap, resumeAt, EvMigrateIn)
}

// Recover is Restore for crash recovery: identical semantics, but the trace
// records an EvRecover event so replays distinguish a fault-driven
// re-placement from an ordinary work-conserving move.
func (m *Machine) Recover(snap *ProcSnapshot, resumeAt Time) *Process {
	return m.restore(snap, resumeAt, EvRecover)
}

func (m *Machine) restore(snap *ProcSnapshot, resumeAt Time, kind EventKind) *Process {
	if m.inExec {
		panic("sim: Restore called during execute")
	}
	if n := snap.Prog.NumThreads(); n != len(snap.Threads) {
		panic(fmt.Sprintf("sim: Restore %q: program declares %d threads, snapshot has %d",
			snap.Name, n, len(snap.Threads)))
	}
	if resumeAt < m.now {
		resumeAt = m.now
	}
	p := &Process{
		ID:   len(m.procs),
		Name: snap.Name,
		m:    m,
		prog: snap.Prog,
		HB:   snap.HB,
	}
	if cs, ok := snap.Prog.(CacheSensitive); ok {
		p.cacheBonus = cs.CacheBonus()
	}
	all := hmp.AllCPUs(m.plat)
	for i, ts := range snap.Threads {
		t := &Thread{
			Global:     len(m.threads),
			Local:      i,
			Proc:       p,
			affinity:   all,
			core:       -1,
			blocked:    true,
			lastRan:    -1,
			workDone:   ts.WorkDone,
			migrations: ts.Migrations,
		}
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			t.speedFactor[k] = snap.Prog.SpeedFactor(i, k)
		}
		p.Threads = append(p.Threads, t)
		m.threads = append(m.threads, t)
	}
	for i, t := range p.Threads {
		if i > 0 {
			t.sibPrev = p.Threads[i-1]
		}
		if i+1 < len(p.Threads) {
			t.sibNext = p.Threads[i+1]
		}
	}
	m.procs = append(m.procs, p)
	for i, ts := range snap.Threads {
		if ts.Blocked || ts.Remaining <= 0 {
			continue
		}
		if resumeAt <= m.now {
			t := p.Threads[i]
			t.remaining = ts.Remaining
			m.makeRunnable(t)
		} else {
			m.timers.push(timerEntry{at: resumeAt, proc: p, local: i, units: ts.Remaining})
		}
	}
	for _, w := range snap.Wakeups {
		at := w.At
		if at < resumeAt {
			at = resumeAt
		}
		m.timers.push(timerEntry{at: at, proc: p, local: w.Local, units: w.Units})
	}
	if m.tracer != nil {
		m.emit(Event{T: m.now, Kind: kind, Proc: p.Name, Until: resumeAt})
	}
	return p
}
