package sim_test

import (
	"math"
	"testing"

	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// TestJumpCacheBitExact is the memoization-correctness property: a machine
// advanced through RunUntilCached — where a cache hit copies another
// bit-identical machine's replayed energy instead of re-running the per-tick
// additions — must land bit-for-bit where the uncached walk lands, with the
// cache shared across many machines and across repeated jumps of different
// lengths. The cache key is the exact bit pattern of the energy registers
// plus the step count, so a hit can only ever substitute a computation for
// itself.
func TestJumpCacheBitExact(t *testing.T) {
	build := func() *sim.Machine {
		plat := hmp.Default()
		m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		return m
	}

	// A fleet-shaped population: many idle machines sharing one cache, one
	// desynchronized by a different warm-up so its registers differ.
	const n = 8
	jc := sim.NewJumpCache()
	cached := make([]*sim.Machine, n)
	plain := make([]*sim.Machine, n)
	for i := range cached {
		cached[i], plain[i] = build(), build()
	}
	// Desynchronize the last pair: extra stepped ticks shift its energy
	// registers, so cache entries from the idle majority must not apply.
	for i := 0; i < 7; i++ {
		cached[n-1].Step()
		plain[n-1].Step()
	}

	// Jump in irregular segments so the cache sees repeated hits, varying
	// step counts, and interleaved machines.
	segments := []sim.Time{
		137 * sim.Millisecond,
		400 * sim.Millisecond,
		1 * sim.Second,
		2500 * sim.Millisecond,
	}
	for _, end := range segments {
		for i := range cached {
			cached[i].RunUntilCached(end, jc)
			plain[i].RunUntil(end)
		}
	}

	for i := range cached {
		if cached[i].Now() != plain[i].Now() {
			t.Fatalf("machine %d: clocks diverged: %d != %d", i, cached[i].Now(), plain[i].Now())
		}
		cb, pb := math.Float64bits(cached[i].EnergyJ()), math.Float64bits(plain[i].EnergyJ())
		if cb != pb {
			t.Fatalf("machine %d: energy diverged: %x != %x (%v vs %v)",
				i, cb, pb, cached[i].EnergyJ(), plain[i].EnergyJ())
		}
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			if cached[i].ClusterEnergyJ(k) != plain[i].ClusterEnergyJ(k) {
				t.Fatalf("machine %d cluster %v: energy diverged: %v != %v",
					i, k, cached[i].ClusterEnergyJ(k), plain[i].ClusterEnergyJ(k))
			}
		}
	}
}
