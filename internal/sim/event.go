package sim

import "repro/internal/hmp"

// Event-driven advancement: a Machine that provably has nothing to do can
// jump its clock to the next event instead of stepping tick by tick. The
// fast path is an execution strategy, not a semantic change — every state a
// later observer can see (clock, tick counters, energy accumulators, run
// queues, timers, trace bytes) is bit-for-bit what the equivalent sequence
// of Step calls would have produced. fleet.Fleet and the scenario engine
// build on this to jump whole quiescent fleets.

// Sleeper is the opt-in contract that lets a Daemon participate in
// event-driven advancement. NextWake returns the earliest future tick at
// which the daemon's Tick call is anything but a no-op; returning a time at
// or before m.Now() means "run me every tick" and disables the fast path.
//
// The contract is strict: if NextWake(m) returns w > m.Now(), then every
// skipped Tick invocation in (now, w) must have been a no-op — no machine
// mutation, no internal phase advance (a daemon that counts its own Tick
// calls must not implement Sleeper), no trace emission. NextWake itself
// must be pure. Daemons that do not implement Sleeper force full lockstep
// stepping of their machine, which is always correct.
type Sleeper interface {
	NextWake(m *Machine) Time
}

// QuiescentPlacer is the analogous opt-in for a Placer: Quiescent reports
// whether the next Place call is certain to be a pure no-op (no migrations,
// no internal phase advance, no trace events). Placers that keep per-call
// state (e.g. gts.Scheduler, whose migration pass fires on a count of Place
// invocations) must not implement it.
type QuiescentPlacer interface {
	Placer
	Quiescent(m *Machine) bool
}

// InertUntil returns the latest time ≤ limit up to which the machine can be
// fast-forwarded without any observable difference from per-tick stepping.
// A return of m.Now() means the machine is not inert and the next tick must
// run through Step. The bound is conservative: every "maybe" is a "no".
//
// A machine is inert when each per-tick phase is a certified no-op:
//
//   - fireTimers: no timer due (the first pending timer bounds the jump);
//   - Place: no runnable or misplaced threads, and the placer is a
//     QuiescentPlacer reporting quiescence (or nil);
//   - execute: nothing runnable and no stolen manager overhead, so the only
//     effect is execTick++ (replayed by FastForward);
//   - integratePower: the memo is warm and keyed exactly as integratePower
//     would key it (levels, online-core counts, all-zero tick utilisation),
//     so the tick adds the memoized lastE — replayed by FastForward;
//   - daemons: every daemon is a Sleeper whose wake time bounds the jump.
func (m *Machine) InertUntil(limit Time) Time {
	if limit <= m.now {
		return m.now
	}
	if len(m.runnable) != 0 || m.misplaced != 0 {
		return m.now
	}
	for i := range m.cores {
		if m.cores[i].stolen > 0 {
			return m.now
		}
	}
	if m.placer != nil {
		qp, ok := m.placer.(QuiescentPlacer)
		if !ok || !qp.Quiescent(m) {
			return m.now
		}
	}
	if m.cfg.Power != nil && !m.failed {
		// The energy memo must be warm and its key unchanged, mirroring
		// integratePower's `changed` computation: same level, same online
		// count, and a tick utilisation of zero everywhere (true on an idle
		// machine, where execute zeroes tickUse and nothing runs).
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			if !m.powerValid[k] || m.levels[k] != m.lastLevel[k] {
				return m.now
			}
			online := m.plat.Clusters[k].Cores
			if m.opm != nil && m.online != m.allMask {
				online = m.OnlineCount(k)
			}
			if online != m.lastOnline[k] {
				return m.now
			}
			for _, tu := range m.lastTickUse[k] {
				if tu != 0 {
					return m.now
				}
			}
		}
	}
	until := limit
	if m.timers.Len() > 0 {
		at := m.timers.entries[0].at
		if at <= m.now {
			return m.now
		}
		if at < until {
			until = at
		}
	}
	for _, d := range m.daemons {
		s, ok := d.(Sleeper)
		if !ok {
			return m.now
		}
		w := s.NextWake(m)
		if w <= m.now {
			return m.now
		}
		if w < until {
			until = w
		}
	}
	return until
}

// FastForward replays the per-tick bookkeeping of an inert machine up to
// (exactly) until: the memoized per-cluster energy is accumulated in the
// same order and with the same float additions Step would have performed
// (no closed-form shortcut — repeated IEEE addition is not multiplication),
// and the clock, tick and execute counters advance tick by tick. The caller
// must have established inertness via InertUntil; FastForward itself does
// not re-check.
func (m *Machine) FastForward(until Time) {
	d := until - m.now
	if d <= 0 {
		return
	}
	steps := int64((d + m.cfg.TickLen - 1) / m.cfg.TickLen) // ceil: RunUntil overshoots to the tick grid
	if m.cfg.Power != nil && !m.failed {
		// The float additions replay in registers, in exactly Step's order
		// (per tick, clusters ascending, cluster accumulator then total);
		// only the loop bookkeeping is hoisted.
		e := m.lastE
		c := m.clusterEnergyJ
		tot := m.energyJ
		for i := int64(0); i < steps; i++ {
			for k := 0; k < int(hmp.NumClusters); k++ {
				c[k] += e[k]
				tot += e[k]
			}
		}
		m.clusterEnergyJ = c
		m.energyJ = tot
	}
	m.execTick += steps
	m.ticks += steps
	m.now += Time(steps) * m.cfg.TickLen
}
