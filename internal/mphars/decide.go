package mphars

import (
	"fmt"

	"repro/internal/heartbeat"
)

// StateDecision is the interference-aware adaptation's verdict on a shared
// cluster's frequency: increase, keep, or decrease (Table 4.3).
type StateDecision int

// The three state decisions.
const (
	KeepState StateDecision = iota
	IncState
	DecState
)

// String renders the decision as in Table 4.3.
func (d StateDecision) String() string {
	switch d {
	case KeepState:
		return "KEEP"
	case IncState:
		return "INC"
	case DecState:
		return "DEC"
	}
	return fmt.Sprintf("StateDecision(%d)", int(d))
}

// FreezeDecision is the verdict on a cluster's frozen state (Table 4.3).
type FreezeDecision int

// The three freeze decisions.
const (
	KeepFreeze FreezeDecision = iota
	Freeze
	Unfreeze
)

// String renders the decision as in Table 4.3.
func (d FreezeDecision) String() string {
	switch d {
	case KeepFreeze:
		return "KEEP"
	case Freeze:
		return "FREEZE"
	case Unfreeze:
		return "UNFREEZE"
	}
	return fmt.Sprintf("FreezeDecision(%d)", int(d))
}

// Decide implements the paper's State & Freeze decision table (Table 4.3),
// row for row. app is the satisfaction state of the application currently in
// its adaptation period; others is the aggregated state of the other
// applications sharing the cluster; frozen is the cluster's frozen state.
//
// The table encodes the interference-aware policy: an underperforming
// application may always raise the shared frequency (and unfreezes the
// cluster, since "if the system performance needs to be increased" is an
// unfreeze condition); a satisfied application leaves shared state alone;
// an overperforming application may lower the shared frequency only when
// every other application also overperforms and the cluster is not frozen —
// and doing so freezes the cluster until everyone has collected reliable
// data at the new operating point.
func Decide(app, others heartbeat.Satisfaction, frozen bool) (StateDecision, FreezeDecision) {
	switch app {
	case heartbeat.Underperf:
		if frozen {
			return IncState, Unfreeze
		}
		return IncState, KeepFreeze
	case heartbeat.Achieve:
		return KeepState, KeepFreeze
	default: // Overperf
		if frozen {
			// As given in Table 4.3: while frozen, the only movement open to
			// an overperforming application is upward (helping the others).
			return IncState, KeepFreeze
		}
		if others == heartbeat.Overperf {
			return DecState, Freeze
		}
		return KeepState, KeepFreeze
	}
}

// AggregateOthers folds the satisfaction states of the other applications
// into the single "TheOthers" column of Table 4.3: any underperformer
// dominates, then any achiever; only if all overperform is the aggregate
// Overperf. With no other applications the aggregate is Overperf (nothing
// restricts a decrease).
func AggregateOthers(states []heartbeat.Satisfaction) heartbeat.Satisfaction {
	agg := heartbeat.Overperf
	for _, s := range states {
		if s == heartbeat.Underperf {
			return heartbeat.Underperf
		}
		if s == heartbeat.Achieve {
			agg = heartbeat.Achieve
		}
	}
	return agg
}
