package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

// migrateScenario is the forced-migration fixture of TestFleetMigration: a
// lone app lands on the saturated tiny node and the saturation check moves
// it to the empty default node.
func migrateScenario() *Scenario {
	return &Scenario{
		Name:       "wc-migrate",
		Manager:    ManagerMPHARSI,
		DurationMS: 6000,
		Nodes: []NodeSpec{
			{Name: "tiny", Platform: tinyPlatform()},
			{Name: "dflt"},
		},
		Apps: []AppSpec{{Name: "sw", Bench: "SW", Threads: 4, TargetFrac: 0.4}},
	}
}

// TestWorkConservingMigration is the tentpole property test: a fleet
// migration moves the application's run state, so its cumulative heartbeat
// and work statistics are continuous across the move — the destination
// incarnation carries the source's heartbeat monitor and work, nothing is
// banked or reset, and the free move charges no delay.
func TestWorkConservingMigration(t *testing.T) {
	res, err := Run(migrateScenario(), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Apps[0]
	if res.NodeMigrations != 1 || a.NodeMigrations != 1 {
		t.Fatalf("node migrations = %d (app %d), want 1", res.NodeMigrations, a.NodeMigrations)
	}
	var dead, live *sim.Process
	for _, p := range res.Nodes[0].Machine.Procs() {
		if p.Name == "sw" && p.Exited() {
			dead = p
		}
	}
	for _, p := range res.Nodes[1].Machine.Procs() {
		if p.Name == "sw" && !p.Exited() {
			live = p
		}
	}
	if dead == nil || live == nil {
		t.Fatalf("incarnations: source dead %v, destination live %v", dead != nil, live != nil)
	}
	// The heartbeat monitor moved: one continuous history, not two halves.
	if live.HB != dead.HB {
		t.Fatal("heartbeat monitor was not moved across nodes")
	}
	if a.Beats != live.HB.Count() {
		t.Fatalf("reported beats %d != monitor count %d (double counting?)", a.Beats, live.HB.Count())
	}
	// The destination's threads carry the source's retired work: the live
	// incarnation alone accounts for the app's whole total.
	if a.Work != live.WorkDone() {
		t.Fatalf("reported work %v != live incarnation's %v", a.Work, live.WorkDone())
	}
	if live.WorkDone() <= dead.WorkDone() {
		t.Fatalf("work not carried: live %v <= dead %v", live.WorkDone(), dead.WorkDone())
	}
	if a.MigrationDelayUS != 0 {
		t.Fatalf("free move charged %d µs", a.MigrationDelayUS)
	}
	// Node-level energy statistics stay per-machine and positive on both.
	if res.Nodes[0].EnergyJ <= 0 || res.Nodes[1].EnergyJ <= 0 {
		t.Fatalf("node energies %v/%v", res.Nodes[0].EnergyJ, res.Nodes[1].EnergyJ)
	}
}

// TestCheckpointCostCharged pins the cost model end to end: an explicit
// all-zero checkpoint block is bit-for-bit the absent block (trace digests
// equal), while a real cost charges exactly freeze+transfer per move in
// MigrationDelayUS and costs the app progress.
func TestCheckpointCostCharged(t *testing.T) {
	base, err := Run(migrateScenario(), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}

	zero := migrateScenario()
	zero.Checkpoint = &CheckpointSpec{}
	zres, err := Run(zero, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if zres.TraceDigest != base.TraceDigest {
		t.Fatalf("zero-cost checkpoint block changed the trace: %016x != %016x",
			zres.TraceDigest, base.TraceDigest)
	}

	costly := migrateScenario()
	costly.Checkpoint = &CheckpointSpec{FreezeUS: 200_000, PerMBUS: 10_000, SizeMB: 30}
	cres, err := Run(costly, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	wantDelay := sim.Time(200_000 + 10_000*30)
	if cres.NodeMigrations != 1 || cres.Apps[0].MigrationDelayUS != wantDelay {
		t.Fatalf("charged delay = %d µs over %d moves, want %d over 1",
			cres.Apps[0].MigrationDelayUS, cres.NodeMigrations, wantDelay)
	}
	if cres.MigrationDelayUS != wantDelay {
		t.Fatalf("fleet delay total %d != %d", cres.MigrationDelayUS, wantDelay)
	}
	// Half a second frozen costs real progress vs the free move.
	if cres.Apps[0].Work >= base.Apps[0].Work {
		t.Fatalf("frozen run out-worked the free move: %v >= %v",
			cres.Apps[0].Work, base.Apps[0].Work)
	}
}

// TestArrivalStreams pins the traffic-trace plumbing: a seeded stream
// expands deterministically (byte-identical replays, identical app sets),
// honours its rate profile window and lifetime, and the scenario document
// itself is left untouched by expansion.
func TestArrivalStreams(t *testing.T) {
	mk := func() *Scenario {
		return &Scenario{
			Name:       "streams",
			Manager:    ManagerMPHARSI,
			DurationMS: 8000,
			Nodes:      []NodeSpec{{Name: "n0"}, {Name: "n1"}},
			Apps:       []AppSpec{{Name: "base", Bench: "SW", Threads: 4, TargetFrac: 0.4}},
			Arrivals: []ArrivalStream{{
				Name: "web", Node: "n1", Bench: "FE", Threads: 4, Seed: 11,
				TargetFrac: 0.4, LifetimeMS: 2500,
				Rate: []RateStep{
					{UntilMS: 1000, PerS: 0},
					{UntilMS: 4000, PerS: 1.5},
					{PerS: 0.2},
				},
			}},
		}
	}
	sc := mk()
	apps, err := sc.expandApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) <= 1 {
		t.Fatalf("stream expanded to %d arrivals", len(apps)-1)
	}
	if len(sc.Apps) != 1 {
		t.Fatal("expansion mutated the scenario document")
	}
	prev := int64(0)
	for i, a := range apps[1:] {
		if !strings.HasPrefix(a.Name, "web-") || a.Node != "n1" || a.Bench != "FE" {
			t.Fatalf("arrival %d: %+v", i, a)
		}
		if a.StartMS < 1000 || a.StartMS >= 8000 || a.StartMS < prev {
			t.Fatalf("arrival %d at %d ms out of order or outside the profile", i, a.StartMS)
		}
		if a.StopMS != 0 && a.StopMS != a.StartMS+2500 {
			t.Fatalf("arrival %d lifetime: start %d stop %d", i, a.StartMS, a.StopMS)
		}
		prev = a.StartMS
	}

	r1, err := Run(mk(), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(mk(), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TraceDigest != r2.TraceDigest || len(r1.Apps) != len(r2.Apps) {
		t.Fatalf("stream replay diverged: %016x/%d vs %016x/%d",
			r1.TraceDigest, len(r1.Apps), r2.TraceDigest, len(r2.Apps))
	}
	ran := 0
	for _, a := range r1.Apps {
		if a.Work > 0 {
			ran++
		}
	}
	if ran < 2 {
		t.Fatalf("only %d of %d apps ever ran", ran, len(r1.Apps))
	}

	// A different seed draws a different arrival pattern.
	other := mk()
	other.Arrivals[0].Seed = 12
	oapps, err := other.expandApps()
	if err != nil {
		t.Fatal(err)
	}
	same := len(oapps) == len(apps)
	if same {
		for i := range apps {
			if apps[i].StartMS != oapps[i].StartMS {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds drew identical arrival patterns")
	}

	// max_apps caps the expansion.
	capped := mk()
	capped.Arrivals[0].MaxApps = 2
	capps, err := capped.expandApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(capps) != 3 { // base + 2
		t.Fatalf("max_apps 2 expanded to %d arrivals", len(capps)-1)
	}
}

// TestArrivalStreamValidation covers the stream error paths.
func TestArrivalStreamValidation(t *testing.T) {
	base := func() *Scenario {
		sc := &Scenario{
			Name: "sv", Manager: ManagerMPHARSI, DurationMS: 4000,
			Nodes: []NodeSpec{{Name: "n0"}},
			Apps:  []AppSpec{{Name: "a", Bench: "SW"}},
			Arrivals: []ArrivalStream{{
				Name: "s", Bench: "SW", Rate: []RateStep{{PerS: 1}},
			}},
		}
		return sc
	}
	cases := []struct {
		name string
		mod  func(*Scenario)
		want string
	}{
		{"no name", func(sc *Scenario) { sc.Arrivals[0].Name = "" }, "has no name"},
		{"bad bench", func(sc *Scenario) { sc.Arrivals[0].Bench = "XX" }, "unknown bench"},
		{"no profile", func(sc *Scenario) { sc.Arrivals[0].Rate = nil }, "no rate profile"},
		{"negative rate", func(sc *Scenario) { sc.Arrivals[0].Rate[0].PerS = -1 }, "negative rate"},
		{"mid-zero until", func(sc *Scenario) {
			sc.Arrivals[0].Rate = []RateStep{{UntilMS: 0, PerS: 1}, {UntilMS: 2000, PerS: 2}}
		}, "only on the last step"},
		{"descending until", func(sc *Scenario) {
			sc.Arrivals[0].Rate = []RateStep{{UntilMS: 2000, PerS: 1}, {UntilMS: 1000, PerS: 2}}
		}, "outside"},
		{"until past end", func(sc *Scenario) { sc.Arrivals[0].Rate[0].UntilMS = 9000 }, "outside"},
		{"negative lifetime", func(sc *Scenario) { sc.Arrivals[0].LifetimeMS = -1 }, "negative field"},
		{"max_apps above cap", func(sc *Scenario) { sc.Arrivals[0].MaxApps = 2_000_000 }, "above the"},
		{"streams expand too far", func(sc *Scenario) {
			for i := 0; i < 11; i++ {
				st := sc.Arrivals[0]
				st.Name = fmt.Sprintf("s%d", i)
				st.MaxApps = 1000
				sc.Arrivals = append(sc.Arrivals, st)
			}
		}, "expand to more than"},
		{"name collision", func(sc *Scenario) {
			sc.Apps = append(sc.Apps, AppSpec{Name: "s-0", Bench: "SW"})
		}, "duplicate app name"},
		{"unknown node", func(sc *Scenario) { sc.Arrivals[0].Node = "n9" }, "unknown node"},
		{"bad slo", func(sc *Scenario) { sc.Arrivals[0].SLO = &SLOSpec{TargetHPS: -1} }, "slo needs"},
		{"checkpoint without nodes", func(sc *Scenario) {
			sc.Nodes = nil
			sc.Arrivals = nil
			sc.Checkpoint = &CheckpointSpec{FreezeUS: 1}
		}, "needs a nodes list"},
		{"negative checkpoint", func(sc *Scenario) { sc.Checkpoint = &CheckpointSpec{FreezeUS: -1} }, "negative checkpoint"},
	}
	for _, tc := range cases {
		sc := base()
		tc.mod(sc)
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestSLOAccounting pins the per-sample SLO scoring: an unreachable target
// misses every scored sample, an easy one settles to mostly hits, and apps
// without an SLO block are never scored.
func TestSLOAccounting(t *testing.T) {
	sc := &Scenario{
		Name:       "slo",
		Manager:    ManagerMPHARSI,
		DurationMS: 10000,
		Nodes:      []NodeSpec{{Name: "n0"}},
		Placement:  "slo-aware",
		Apps: []AppSpec{
			{Name: "greedy", Bench: "SW", Threads: 4, TargetFrac: 0.4,
				SLO: &SLOSpec{TargetHPS: 1e6, SlackMS: 100}},
			{Name: "easy", Bench: "FE", Threads: 4, TargetFrac: 0.4,
				SLO: &SLOSpec{TargetHPS: 0.5, SlackMS: 100}},
			{Name: "unscored", Bench: "BO", Threads: 4, TargetFrac: 0.4},
		},
	}
	res, err := Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	greedy, easy, un := res.Apps[0], res.Apps[1], res.Apps[2]
	if greedy.SLOSamples == 0 || greedy.SLOMisses != greedy.SLOSamples {
		t.Fatalf("unreachable SLO: %d misses of %d samples", greedy.SLOMisses, greedy.SLOSamples)
	}
	if easy.SLOSamples == 0 || easy.SLOMisses >= easy.SLOSamples/2 {
		t.Fatalf("easy SLO: %d misses of %d samples", easy.SLOMisses, easy.SLOSamples)
	}
	if un.SLOSamples != 0 || un.SLOMisses != 0 {
		t.Fatalf("SLO-less app scored: %d/%d", un.SLOMisses, un.SLOSamples)
	}
	if res.SLOSamples != greedy.SLOSamples+easy.SLOSamples || res.SLOMisses != greedy.SLOMisses+easy.SLOMisses {
		t.Fatalf("fleet SLO rollup %d/%d", res.SLOMisses, res.SLOSamples)
	}
}

// TestSLOPlacementEndToEnd pins the slo-aware policy through the scenario
// layer: the arrival lands on the node with the most predicted capacity
// for its target, where least-loaded would tie-break to the weak first
// node.
func TestSLOPlacementEndToEnd(t *testing.T) {
	mk := func(placement string) *Scenario {
		return &Scenario{
			Name:       "slo-place",
			Manager:    ManagerMPHARSI,
			DurationMS: 3000,
			Placement:  placement,
			// This test pins the arrival decision; keep the saturation
			// check from moving the app off the weak node afterwards.
			MigrateEveryMS: -1,
			Nodes: []NodeSpec{
				{Name: "weak", Platform: tinyPlatform()},
				{Name: "strong"},
			},
			Apps: []AppSpec{{Name: "a", Bench: "SW", Threads: 4, TargetFrac: 0.4,
				SLO: &SLOSpec{TargetHPS: 10, SlackMS: 100}}},
		}
	}
	res, err := Run(mk("slo-aware"), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Node != "strong" {
		t.Fatalf("slo-aware placed on %q", res.Apps[0].Node)
	}
	res, err = Run(mk("least-loaded"), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Node != "weak" {
		t.Fatalf("least-loaded tie-break placed on %q, want the weak first node", res.Apps[0].Node)
	}
}
