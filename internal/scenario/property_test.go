package scenario

import (
	"fmt"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// machineInvariants is the per-tick property checked on every seeded random
// scenario: no runnable thread placed on an offline core, cluster levels
// never above the active ceiling, and energy and busy time monotonically
// non-decreasing.
type machineInvariants struct {
	lastEnergy float64
	lastBusy   sim.Time
	err        error
}

func (c *machineInvariants) tick(m *sim.Machine) {
	if c.err != nil {
		return
	}
	for _, t := range m.Threads() {
		if t.Runnable() && t.Core() >= 0 && !m.CoreOnline(t.Core()) {
			c.err = fmt.Errorf("t=%d: runnable %s/%d on offline cpu %d", m.Now(), t.Proc.Name, t.Local, t.Core())
			return
		}
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		if m.Level(k) > m.LevelCap(k) {
			c.err = fmt.Errorf("t=%d: %s level %d above cap %d", m.Now(), k, m.Level(k), m.LevelCap(k))
			return
		}
	}
	if e := m.EnergyJ(); e < c.lastEnergy {
		c.err = fmt.Errorf("t=%d: energy decreased %v -> %v", m.Now(), c.lastEnergy, e)
		return
	} else {
		c.lastEnergy = e
	}
	busy := sim.Time(0)
	for cpu := 0; cpu < m.Platform().TotalCores(); cpu++ {
		busy += m.BusyTime(cpu)
	}
	if busy < c.lastBusy {
		c.err = fmt.Errorf("t=%d: busy time decreased %d -> %d", m.Now(), c.lastBusy, busy)
		return
	}
	c.lastBusy = busy
}

// runSeeds drives seeded random scenarios through one manager kind with the
// per-tick machine invariants and the engine's strict checks (which add the
// MP-HARS partitioning invariants after every action and sample).
func runSeeds(t *testing.T, manager string, seeds int) {
	t.Helper()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		sc := Generate(seed, GenConfig{Manager: manager, DurationMS: 12000, Events: 8})
		chk := &machineInvariants{}
		res, err := Run(sc, Options{Strict: true, PerTick: chk.tick})
		if err != nil {
			t.Fatalf("%s seed %d: %v", manager, seed, err)
		}
		if chk.err != nil {
			t.Fatalf("%s seed %d: %v", manager, seed, chk.err)
		}
		// Admission accounting: only queued arrivals can be dropped, and a
		// skipped (never-admitted) app must have queued first.
		if res.DroppedArrivals > res.QueuedArrivals {
			t.Fatalf("%s seed %d: dropped %d > queued %d",
				manager, seed, res.DroppedArrivals, res.QueuedArrivals)
		}
		// Post-run consistency: departed apps are dead with no runnable
		// threads; apps that arrived (and were not skipped) made progress.
		for i, a := range res.Apps {
			proc := procByName(res, a.Name)
			if a.Skipped {
				if proc != nil {
					t.Fatalf("%s seed %d: skipped app %s was spawned", manager, seed, a.Name)
				}
				if !a.Queued {
					t.Fatalf("%s seed %d: app %s skipped without queueing", manager, seed, a.Name)
				}
				continue
			}
			if !a.Arrived || proc == nil {
				t.Fatalf("%s seed %d: app %d never arrived", manager, seed, i)
			}
			if a.Departed {
				if !proc.Exited() {
					t.Fatalf("%s seed %d: departed app %s still alive", manager, seed, a.Name)
				}
				for _, th := range proc.Threads {
					if th.Runnable() {
						t.Fatalf("%s seed %d: departed app %s has runnable thread %d",
							manager, seed, a.Name, th.Local)
					}
				}
			}
		}
		// Manager-specific consistency after all departures and hotplug.
		if res.MP != nil {
			if err := res.MP.CheckInvariants(); err != nil {
				t.Fatalf("%s seed %d: %v", manager, seed, err)
			}
		}
		departed := make(map[string]bool)
		for _, a := range res.Apps {
			departed[a.Name] = a.Departed
		}
		for name, mgr := range res.Managers {
			st := mgr.State()
			if st.TotalCores() > 0 && !st.Valid(res.Machine.Platform()) {
				t.Fatalf("%s seed %d: app %s settled in invalid state %v", manager, seed, name, st)
			}
			// A departed app's manager is detached and freezes its last
			// state, so only live managers must track the online platform.
			if departed[name] {
				continue
			}
			if st.BigCores > res.Machine.OnlineCount(hmp.Big) ||
				st.LittleCores > res.Machine.OnlineCount(hmp.Little) {
				t.Fatalf("%s seed %d: app %s state %v exceeds the online platform",
					manager, seed, name, st)
			}
		}
	}
}

func procByName(res *Result, name string) *sim.Process {
	for _, p := range res.Machine.Procs() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

func TestPropertyHARSI(t *testing.T)  { runSeeds(t, ManagerHARSI, 8) }
func TestPropertyHARSE(t *testing.T)  { runSeeds(t, ManagerHARSE, 8) }
func TestPropertyMPHARS(t *testing.T) { runSeeds(t, ManagerMPHARSI, 8) }
func TestPropertyMPHARSE(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runSeeds(t, ManagerMPHARSE, 6)
}
func TestPropertyUnmanaged(t *testing.T) { runSeeds(t, ManagerGTS, 6) }
