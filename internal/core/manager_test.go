package core

import (
	"testing"

	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newWorkload(threads int) *workload.DataParallel {
	return &workload.DataParallel{
		AppName:   "steady",
		Threads:   threads,
		BigFactor: 1.5,
		Unit:      workload.ConstUnit(0.5),
	}
}

// measureBaseline runs the workload under GTS at the max state and returns
// its heartbeat rate and average power (the calibration run).
func measureBaseline(t *testing.T, gt *power.GroundTruth) (rate, watts float64) {
	t.Helper()
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: gt})
	m.SetPlacer(gts.New(plat))
	p := m.Spawn("steady", newWorkload(8), 10)
	m.Run(30 * sim.Second)
	return p.HB.RateOver(5*sim.Second, m.Now()), m.AvgPowerW()
}

func TestManagerReachesTargetAndSavesPower(t *testing.T) {
	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	maxRate, basePower := measureBaseline(t, gt)
	if maxRate <= 0 {
		t.Fatal("baseline produced no heartbeats")
	}
	tgt := heartbeat.TargetAround(maxRate, 0.5, 0.05)

	for _, v := range []Version{HARSI, HARSE, HARSEI} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			m := sim.New(plat, sim.Config{Power: gt})
			p := m.Spawn("steady", newWorkload(8), 10)
			mgr := NewManager(m, p, testModel(plat), tgt, Config{Version: v})
			m.AddDaemon(mgr)
			m.Run(120 * sim.Second)

			// The settled rate must track the target band (generous slack
			// for discretization: one DVFS step moves the rate ~8%).
			rate := p.HB.RateOver(60*sim.Second, m.Now())
			if rate < tgt.Min*0.8 {
				t.Errorf("settled rate %v far below target min %v", rate, tgt.Min)
			}
			if rate > tgt.Max*1.35 {
				t.Errorf("settled rate %v far above target max %v", rate, tgt.Max)
			}
			// Running at ~half speed must use much less power than baseline.
			if pw := m.AvgPowerW(); pw >= basePower*0.85 {
				t.Errorf("power %v W not clearly below baseline %v W", pw, basePower)
			}
			if mgr.Searches() == 0 {
				t.Error("manager never searched despite overperforming start")
			}
			if len(mgr.Decisions()) != mgr.Searches() {
				t.Error("decision trace length mismatch")
			}
			if mgr.State().TotalCores() < 1 {
				t.Error("manager settled on empty state")
			}
		})
	}
}

func TestManagerChargesOverhead(t *testing.T) {
	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	maxRate, _ := measureBaseline(t, gt)
	tgt := heartbeat.TargetAround(maxRate, 0.5, 0.05)

	m := sim.New(plat, sim.Config{Power: gt})
	p := m.Spawn("steady", newWorkload(8), 10)
	mgr := NewManager(m, p, testModel(plat), tgt, Config{Version: HARSEI})
	m.AddDaemon(mgr)
	m.Run(30 * sim.Second)
	if m.Overhead() == 0 {
		t.Fatal("manager charged no overhead")
	}
	if u := m.OverheadUtil(); u <= 0 || u > 0.2 {
		t.Fatalf("overhead utilization = %v, want small but positive", u)
	}
}

func TestManagerObservesDecisions(t *testing.T) {
	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	maxRate, _ := measureBaseline(t, gt)
	tgt := heartbeat.TargetAround(maxRate, 0.5, 0.05)

	m := sim.New(plat, sim.Config{Power: gt})
	p := m.Spawn("steady", newWorkload(8), 10)
	var seen int
	mgr := NewManager(m, p, testModel(plat), tgt, Config{Version: HARSE})
	mgr.OnDecision = func(d Decision) {
		seen++
		if d.Time < 0 || d.To.TotalCores() < 1 {
			t.Errorf("bad decision %+v", d)
		}
	}
	m.AddDaemon(mgr)
	m.Run(60 * sim.Second)
	if seen == 0 {
		t.Fatal("OnDecision never fired")
	}
	if seen != len(mgr.Decisions()) {
		t.Errorf("OnDecision count %d != decisions %d", seen, len(mgr.Decisions()))
	}
}

func TestManagerInitStateOverride(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	p := m.Spawn("steady", newWorkload(8), 10)
	init := hmp.State{BigCores: 1, LittleCores: 1, BigLevel: 0, LittleLevel: 0}
	mgr := NewManager(m, p, testModel(plat), heartbeat.Target{Min: 1, Avg: 2, Max: 3},
		Config{Version: HARSE, InitState: &init})
	if mgr.State() != init {
		t.Fatalf("State = %+v, want init override", mgr.State())
	}
	if m.Level(hmp.Big) != 0 || m.Level(hmp.Little) != 0 {
		t.Error("init state DVFS not applied")
	}
	if mgr.Target() != (heartbeat.Target{Min: 1, Avg: 2, Max: 3}) {
		t.Error("Target accessor wrong")
	}
}

func TestVersionString(t *testing.T) {
	if HARSI.String() != "HARS-I" || HARSE.String() != "HARS-E" || HARSEI.String() != "HARS-EI" {
		t.Error("version strings wrong")
	}
	if Version(9).String() != "HARS-?" {
		t.Error("unknown version string wrong")
	}
}

func TestConfigParams(t *testing.T) {
	c := Config{Version: HARSI}
	if p := c.params(true); p != (SearchParams{M: 1, N: 0, D: 1}) {
		t.Errorf("HARS-I overperf params = %+v", p)
	}
	if p := c.params(false); p != (SearchParams{M: 0, N: 1, D: 1}) {
		t.Errorf("HARS-I underperf params = %+v", p)
	}
	c = Config{Version: HARSE}
	if p := c.params(true); p != (SearchParams{M: 4, N: 4, D: 7}) {
		t.Errorf("HARS-E params = %+v", p)
	}
	c = Config{Version: HARSEI, Params: SearchParams{M: 4, N: 4, D: 3}}
	if p := c.params(false); p.D != 3 {
		t.Errorf("override params = %+v", p)
	}
	if c.scheduler() != Interleaved {
		t.Error("HARS-EI must default to the interleaving scheduler")
	}
	chunk := Chunk
	c.Scheduler = &chunk
	if c.scheduler() != Chunk {
		t.Error("scheduler override ignored")
	}
	if (Config{Version: HARSE}).scheduler() != Chunk {
		t.Error("HARS-E must default to the chunk scheduler")
	}
}

// TestReconcileReappliesWhenAllocatedCoreDies pins the hotplug reaction
// path: when the specific core the schedule is affine to goes offline while
// enough sibling cores stay online (so the state's *counts* remain legal),
// the manager must still re-apply onto surviving cores instead of leaving
// the threads stranded on a dead affinity mask.
func TestReconcileReappliesWhenAllocatedCoreDies(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	b, _ := workload.ByShort("SW")
	p := m.Spawn("sw", b.New(2), 10)
	init := hmp.State{BigCores: 1, LittleCores: 0,
		BigLevel: plat.Clusters[hmp.Big].MaxLevel(), LittleLevel: 0}
	mgr := NewManager(m, p, testModel(plat), heartbeat.Target{Min: 1, Avg: 2, Max: 3},
		Config{Version: HARSE, InitState: &init})
	m.AddDaemon(mgr)
	m.Run(100 * sim.Millisecond)
	first := plat.FirstCPU(hmp.Big)
	for _, th := range p.Threads {
		if c := th.Core(); c != first {
			t.Fatalf("thread %d on core %d, want %d (B1 allocation)", th.Local, c, first)
		}
	}
	work := p.WorkDone()
	m.SetCoreOnline(first, false) // the one allocated big core dies
	m.Run(200 * sim.Millisecond)
	for _, th := range p.Threads {
		c := th.Core()
		if c < 0 || !m.CoreOnline(c) {
			t.Fatalf("thread %d stranded on core %d after hotplug", th.Local, c)
		}
	}
	if p.WorkDone() == work {
		t.Fatal("application made no progress after its allocated core died")
	}
	if st := mgr.State(); st.BigCores != 1 {
		t.Fatalf("state = %v, want B1 preserved (3 big cores still online)", st)
	}
}
