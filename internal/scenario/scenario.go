package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/hmp"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Manager kinds accepted by Scenario.Manager.
const (
	ManagerNone    = "none"
	ManagerGTS     = "gts"
	ManagerHARSI   = "hars-i"
	ManagerHARSE   = "hars-e"
	ManagerHARSEI  = "hars-ei"
	ManagerMPHARSI = "mphars-i"
	ManagerMPHARSE = "mphars-e"
)

// Event kinds accepted by Event.Kind.
const (
	KindHotplug = "hotplug"
	KindDVFSCap = "dvfs_cap"
	KindTarget  = "target"
	KindPhase   = "phase"
)

// TargetSpec is an explicit heartbeat-rate band.
type TargetSpec struct {
	Min float64 `json:"min"`
	Avg float64 `json:"avg"`
	Max float64 `json:"max"`
}

// AppSpec describes one application of a scenario.
type AppSpec struct {
	Name       string      `json:"name"`
	Bench      string      `json:"bench"`                 // workload two-letter tag (BL, BO, FA, FE, FL, SW)
	Threads    int         `json:"threads,omitempty"`     // default 8
	StartMS    int64       `json:"start_ms,omitempty"`    // arrival time
	StopMS     int64       `json:"stop_ms,omitempty"`     // departure time; 0 = end of run
	TargetFrac float64     `json:"target_frac,omitempty"` // fraction of max rate; default 0.5
	Target     *TargetSpec `json:"target,omitempty"`      // explicit band (overrides frac)
	HBWindow   int         `json:"hb_window,omitempty"`   // heartbeat window; default 10
	// InitBig and InitLittle are the MP-HARS initial core allocation.
	// Pointers so an explicit 0 ("no big cores, please") is distinguishable
	// from unset (default 1+1).
	InitBig    *int `json:"init_big,omitempty"`
	InitLittle *int `json:"init_little,omitempty"`
}

// maxOccurrences bounds the total number of event firings a scenario may
// expand to through every_ms repetition, so a pathological period cannot
// blow up validation or the engine's action timeline.
const maxOccurrences = 100_000

// Event is one timed dynamic event.
type Event struct {
	AtMS int64  `json:"at_ms"`
	Kind string `json:"kind"`

	// EveryMS, when positive, repeats the event every EveryMS milliseconds
	// starting at AtMS, until the run ends or Repeat firings have happened
	// (Repeat 0 = until the end). Thermal stress tests use this to pulse
	// load without hand-unrolled event lists.
	EveryMS int64 `json:"every_ms,omitempty"`
	Repeat  int   `json:"repeat,omitempty"`

	// hotplug
	CPU    int   `json:"cpu,omitempty"`
	Online *bool `json:"online,omitempty"`

	// dvfs_cap
	Cluster  string `json:"cluster,omitempty"` // "big" or "little"
	MaxLevel int    `json:"max_level,omitempty"`

	// target / phase
	App    string      `json:"app,omitempty"`
	Frac   float64     `json:"frac,omitempty"`
	Target *TargetSpec `json:"target,omitempty"`
	Scale  float64     `json:"scale,omitempty"`
}

// Scenario is one declarative dynamic-event run.
type Scenario struct {
	Name          string    `json:"name"`
	Seed          int64     `json:"seed,omitempty"` // generator seed, informational
	Manager       string    `json:"manager"`
	DurationMS    int64     `json:"duration_ms"`
	SampleEveryMS int64     `json:"sample_every_ms,omitempty"` // trace cadence, default 100
	AdaptEvery    int64     `json:"adapt_every,omitempty"`     // manager adaptation period (beats)
	OverheadCPU   int       `json:"overhead_cpu,omitempty"`    // CPU charged with manager overhead
	Apps          []AppSpec `json:"apps"`
	Events        []Event   `json:"events,omitempty"`

	// Thermal, when present and enabled, closes the thermal loop: a per-run
	// RC temperature model plus governor daemon derives the DVFS ceilings
	// from simulated heat (see package thermal). Enabled thermal excludes
	// scripted dvfs_cap events — the governor owns the ceilings.
	Thermal *thermal.Spec `json:"thermal,omitempty"`
}

// Decode parses and validates a scenario document. Unknown fields are
// rejected so typos surface instead of silently doing nothing.
func Decode(r io.Reader) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Encode writes the scenario as indented JSON.
func (sc *Scenario) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sc); err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	return nil
}

// validManagers lists the accepted manager kinds.
var validManagers = map[string]bool{
	ManagerNone: true, ManagerGTS: true,
	ManagerHARSI: true, ManagerHARSE: true, ManagerHARSEI: true,
	ManagerMPHARSI: true, ManagerMPHARSE: true,
}

// Validate checks the scenario against the default platform: well-formed
// specs, known references, and a hotplug sequence that never takes the last
// core offline.
func (sc *Scenario) Validate() error { return sc.ValidateOn(hmp.Default()) }

// ValidateOn validates against an explicit platform description.
func (sc *Scenario) ValidateOn(plat *hmp.Platform) error {
	if sc.DurationMS <= 0 {
		return fmt.Errorf("scenario: duration_ms must be positive, got %d", sc.DurationMS)
	}
	if !validManagers[sc.Manager] {
		return fmt.Errorf("scenario: unknown manager %q", sc.Manager)
	}
	if sc.SampleEveryMS < 0 || sc.AdaptEvery < 0 {
		return fmt.Errorf("scenario: negative sample_every_ms or adapt_every")
	}
	if len(sc.Apps) == 0 {
		return fmt.Errorf("scenario: no apps")
	}
	names := make(map[string]bool, len(sc.Apps))
	for i := range sc.Apps {
		a := &sc.Apps[i]
		if a.Name == "" {
			return fmt.Errorf("scenario: app %d has no name", i)
		}
		if names[a.Name] {
			return fmt.Errorf("scenario: duplicate app name %q", a.Name)
		}
		names[a.Name] = true
		if _, ok := workload.ByShort(a.Bench); !ok {
			return fmt.Errorf("scenario: app %q: unknown bench %q", a.Name, a.Bench)
		}
		if a.Threads < 0 {
			return fmt.Errorf("scenario: app %q: negative threads", a.Name)
		}
		if a.StartMS < 0 || a.StartMS >= sc.DurationMS {
			return fmt.Errorf("scenario: app %q: start_ms %d outside [0, %d)", a.Name, a.StartMS, sc.DurationMS)
		}
		if a.StopMS != 0 && (a.StopMS <= a.StartMS || a.StopMS > sc.DurationMS) {
			return fmt.Errorf("scenario: app %q: stop_ms %d outside (start, duration]", a.Name, a.StopMS)
		}
		if a.Target != nil {
			if !(a.Target.Min > 0 && a.Target.Min <= a.Target.Avg && a.Target.Avg <= a.Target.Max) {
				return fmt.Errorf("scenario: app %q: malformed target band", a.Name)
			}
		} else if a.TargetFrac < 0 || a.TargetFrac > 1 {
			return fmt.Errorf("scenario: app %q: target_frac %v outside [0, 1]", a.Name, a.TargetFrac)
		}
		initB := intOr(a.InitBig, 1)
		initL := intOr(a.InitLittle, 1)
		if initB < 0 || initB > plat.Clusters[hmp.Big].Cores ||
			initL < 0 || initL > plat.Clusters[hmp.Little].Cores {
			return fmt.Errorf("scenario: app %q: initial allocation outside the platform", a.Name)
		}
		if initB+initL == 0 {
			return fmt.Errorf("scenario: app %q: initial allocation is empty", a.Name)
		}
	}
	thermalOn := sc.Thermal != nil && sc.Thermal.Enabled
	if sc.Thermal != nil {
		if err := sc.Thermal.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		r := sc.Thermal.WithDefaults()
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			if r.MinLevel > plat.Clusters[k].MaxLevel() {
				return fmt.Errorf("scenario: thermal min_level %d outside the %s grid", r.MinLevel, k)
			}
		}
	}
	total := plat.TotalCores()
	occurrences := int64(0)
	for i := range sc.Events {
		ev := &sc.Events[i]
		if ev.AtMS < 0 || ev.AtMS > sc.DurationMS {
			return fmt.Errorf("scenario: event %d: at_ms %d outside [0, %d]", i, ev.AtMS, sc.DurationMS)
		}
		if ev.EveryMS < 0 {
			return fmt.Errorf("scenario: event %d: negative every_ms %d", i, ev.EveryMS)
		}
		if ev.Repeat < 0 {
			return fmt.Errorf("scenario: event %d: negative repeat %d", i, ev.Repeat)
		}
		if ev.Repeat > 0 && ev.EveryMS == 0 {
			return fmt.Errorf("scenario: event %d: repeat without every_ms", i)
		}
		occurrences += ev.occurrenceCount(sc.DurationMS)
		if occurrences > maxOccurrences {
			return fmt.Errorf("scenario: events expand to more than %d occurrences", maxOccurrences)
		}
		switch ev.Kind {
		case KindHotplug:
			if ev.CPU < 0 || ev.CPU >= total {
				return fmt.Errorf("scenario: event %d: cpu %d outside the platform", i, ev.CPU)
			}
			if ev.Online == nil {
				return fmt.Errorf("scenario: event %d: hotplug needs explicit \"online\"", i)
			}
		case KindDVFSCap:
			if thermalOn {
				return fmt.Errorf("scenario: event %d: dvfs_cap conflicts with the enabled thermal governor (it owns the ceilings)", i)
			}
			k, err := parseCluster(ev.Cluster)
			if err != nil {
				return fmt.Errorf("scenario: event %d: %w", i, err)
			}
			if ev.MaxLevel < 0 || ev.MaxLevel > plat.Clusters[k].MaxLevel() {
				return fmt.Errorf("scenario: event %d: max_level %d outside the %s grid", i, ev.MaxLevel, ev.Cluster)
			}
		case KindTarget:
			if !names[ev.App] {
				return fmt.Errorf("scenario: event %d: unknown app %q", i, ev.App)
			}
			if ev.Target != nil {
				if !(ev.Target.Min > 0 && ev.Target.Min <= ev.Target.Avg && ev.Target.Avg <= ev.Target.Max) {
					return fmt.Errorf("scenario: event %d: malformed target band", i)
				}
			} else if ev.Frac <= 0 || ev.Frac > 1 {
				return fmt.Errorf("scenario: event %d: frac %v outside (0, 1]", i, ev.Frac)
			}
		case KindPhase:
			if !names[ev.App] {
				return fmt.Errorf("scenario: event %d: unknown app %q", i, ev.App)
			}
			if ev.Scale <= 0 {
				return fmt.Errorf("scenario: event %d: scale %v must be positive", i, ev.Scale)
			}
		default:
			return fmt.Errorf("scenario: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return sc.checkHotplug(plat)
}

// occurrenceCount returns how many times the event fires within a run of
// durationMS milliseconds (validation has already established AtMS ≤
// durationMS and EveryMS ≥ 0). Counts beyond maxOccurrences saturate at
// maxOccurrences+1 — enough for validation to reject — so an extreme
// duration/period pair cannot overflow int64.
func (ev *Event) occurrenceCount(durationMS int64) int64 {
	if ev.EveryMS <= 0 {
		return 1
	}
	extra := (durationMS - ev.AtMS) / ev.EveryMS // firings after the first
	if ev.Repeat > 0 && int64(ev.Repeat) <= extra {
		return int64(ev.Repeat)
	}
	if extra >= maxOccurrences {
		return maxOccurrences + 1
	}
	return extra + 1
}

// Occurrences lists the times (in ms, ascending) the event fires within a
// run of durationMS milliseconds: AtMS alone for one-shot events, or every
// EveryMS from AtMS for repeating ones.
func (ev *Event) Occurrences(durationMS int64) []int64 {
	n := ev.occurrenceCount(durationMS)
	out := make([]int64, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, ev.AtMS+i*ev.EveryMS)
	}
	return out
}

// checkHotplug replays the hotplug sequence in application order and
// rejects a scenario that ever takes the last core offline.
func (sc *Scenario) checkHotplug(plat *hmp.Platform) error {
	type hp struct {
		at  int64
		seq int
		cpu int
		on  bool
	}
	var seq []hp
	for i := range sc.Events {
		ev := &sc.Events[i]
		if ev.Kind == KindHotplug {
			for _, at := range ev.Occurrences(sc.DurationMS) {
				seq = append(seq, hp{at: at, seq: i, cpu: ev.CPU, on: *ev.Online})
			}
		}
	}
	sort.Slice(seq, func(i, j int) bool {
		if seq[i].at != seq[j].at {
			return seq[i].at < seq[j].at
		}
		return seq[i].seq < seq[j].seq
	})
	online := hmp.AllCPUs(plat)
	for _, h := range seq {
		if h.on {
			online = online.Set(h.cpu)
		} else {
			online = online.Clear(h.cpu)
		}
		if online == 0 {
			return fmt.Errorf("scenario: hotplug at t=%dms takes the last core offline", h.at)
		}
	}
	return nil
}

// IntPtr returns a pointer to v, for building AppSpec literals.
func IntPtr(v int) *int { return &v }

// intOr dereferences an optional int field, substituting def when unset.
func intOr(p *int, def int) int {
	if p == nil {
		return def
	}
	return *p
}

func parseCluster(s string) (hmp.ClusterKind, error) {
	switch s {
	case "big":
		return hmp.Big, nil
	case "little":
		return hmp.Little, nil
	}
	return 0, fmt.Errorf("unknown cluster %q", s)
}
