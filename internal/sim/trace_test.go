package sim_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
)

func TestTracerRecordsEvents(t *testing.T) {
	m := sim.New(hmp.Default(), sim.Config{})
	tr := &sim.Tracer{}
	m.SetTracer(tr)
	if m.Tracer() != tr {
		t.Fatal("Tracer accessor wrong")
	}
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.2, beats: true}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	m.Run(1 * sim.Second)
	m.SetLevel(hmp.Big, 2)
	m.SetLevel(hmp.Big, 2) // no change: must not trace
	p.SetAffinity(0, hmp.MaskOf(5))
	m.Run(1 * sim.Second)

	var migs, dvfs, beats int
	for _, e := range tr.Events() {
		switch e.Kind {
		case sim.EvMigrate:
			migs++
			if e.Proc != "s" {
				t.Errorf("migrate event proc = %q", e.Proc)
			}
		case sim.EvDVFS:
			dvfs++
			if e.Cluster != hmp.Big || e.KHz != 1_000_000 {
				t.Errorf("dvfs event = %+v", e)
			}
		case sim.EvBeat:
			beats++
		}
	}
	if migs < 2 { // initial placement + cross-cluster move
		t.Errorf("migrations traced = %d, want ≥ 2", migs)
	}
	if dvfs != 1 {
		t.Errorf("dvfs traced = %d, want exactly 1 (no-op changes skipped)", dvfs)
	}
	if beats == 0 {
		t.Error("no beats traced")
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped = %d", tr.Dropped())
	}
}

func TestTracerCap(t *testing.T) {
	m := sim.New(hmp.Default(), sim.Config{})
	tr := &sim.Tracer{Max: 5}
	m.SetTracer(tr)
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.01, beats: true}, 4)
	p.SetAffinity(0, hmp.MaskOf(4))
	m.Run(2 * sim.Second)
	if len(tr.Events()) != 5 {
		t.Fatalf("retained = %d, want 5", len(tr.Events()))
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops beyond the cap")
	}
}

func TestTraceCSV(t *testing.T) {
	m := sim.New(hmp.Default(), sim.Config{})
	tr := &sim.Tracer{}
	m.SetTracer(tr)
	p := m.Spawn("app", &spinner{threads: 1, unit: 0.3, beats: true}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	m.Run(2 * sim.Second)
	m.SetLevel(hmp.Little, 0)

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_us,kind,") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, want := range []string{"beat,app", "migrate,app", "dvfs"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q", want)
		}
	}
}

func TestTraceChromeFormat(t *testing.T) {
	m := sim.New(hmp.Default(), sim.Config{})
	tr := &sim.Tracer{}
	m.SetTracer(tr)
	p := m.Spawn("app", &spinner{threads: 1, unit: 0.3, beats: true}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	m.Run(2 * sim.Second)
	m.SetLevel(hmp.Little, 1)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		phases[e["ph"].(string)] = true
	}
	if !phases["i"] || !phases["C"] {
		t.Errorf("expected instant and counter events, got %v", phases)
	}
}

func TestEventKindString(t *testing.T) {
	if sim.EvMigrate.String() != "migrate" || sim.EvDVFS.String() != "dvfs" || sim.EvBeat.String() != "beat" {
		t.Error("event kind strings wrong")
	}
	if sim.EventKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}
