// Package fleet scales the HARS reproduction from one machine to many: a
// set of heterogeneous nodes — each its own sim.Machine with its own
// platform description, power model, thermal governor, and runtime manager
// — advancing in lockstep on one deterministic clock, with a fleet
// scheduler admitting arriving applications to a node through pluggable
// placement policies, queueing them when no node has capacity, and
// migrating them off saturated nodes.
//
// The paper evaluates HARS on a single ODROID-XU3 board; MARS (Mück et al.)
// shows the same resource-management ideas composing hierarchically — per-
// node controllers under a reflective coordinator — and that is the shape
// of this package: the per-node HARS / MP-HARS managers keep running
// unmodified as machine daemons, while the fleet layer only decides *which*
// node an application lands on and when it should move.
//
// # Event-driven advancement
//
// The reference semantics are lockstep: every Step advances each node one
// tick in index order, then runs the fleet-wide hooks. RunUntil, however,
// is discrete-event: it asks every hook implementing Sleeper for its next
// wake time, takes the minimum as a barrier, advances each node to the
// barrier independently (machines jump their own provably-inert stretches
// via sim.Machine.InertUntil/FastForward, and node advancement can be
// sharded across workers — see SetWorkers), and runs the hooks once at the
// barrier. The skipped hook invocations are certified no-ops by the
// Sleeper contract, so the walk visits exactly the states lockstep would:
// every digest, counter, and trace byte is bit-for-bit identical. A hook
// that does not implement Sleeper (or one that wants to run now) drops the
// fleet back to per-tick lockstep, which is always correct. SetLockstep
// forces the reference path outright.
//
// # Determinism
//
// Everything is deterministic: nodes step in index order within one shared
// tick, scheduler decisions happen at tick boundaries with fixed
// tie-breaking (policy score, then node index), and the queue drains FIFO.
// Replaying the same node set and arrival sequence produces bit-identical
// machines — whatever the advancement strategy or worker count, because
// nodes evolve independently between hook barriers and results merge in
// index order (the width-independence discipline the experiments engine
// pins with TestEngineDeterminism). A fleet of one node is bit-for-bit the
// bare machine run — the Node wrapper adds no behaviour — which is what
// lets the scenario engine route every run, single- or multi-node, through
// this layer.
package fleet

import (
	"fmt"
	"sync"

	"repro/internal/hmp"
	"repro/internal/mphars"
	"repro/internal/sim"
	"repro/internal/thermal"
)

// Node is one machine of a fleet: the sim.Node identity plus the typed
// handles the placement policies and the scheduler consult — the MP-HARS
// manager when the node partitions cores, and the thermal governor when the
// node models heat. Both may be nil; the daemons themselves are registered
// on the embedded machine as usual.
type Node struct {
	*sim.Node

	// MP is the node's MP-HARS manager, nil when the node runs
	// single-application managers or no manager at all. A node with an MP
	// manager has partitioned admission capacity (FreeCores); other nodes
	// time-share and always admit.
	MP *mphars.Manager

	// Gov is the node's closed-loop thermal governor, nil when the node
	// does not model heat. Heat-aware placement reads temperatures from it;
	// governor-less nodes are assumed to sit at ambient.
	Gov *thermal.Governor

	// down marks a node the failure detector currently declares failed:
	// placement skips it until it proves alive again. Maintained by the
	// fault-aware scheduler; distinct from Machine.Failed (the ground
	// truth), which the detector only learns after the heartbeat timeout.
	down bool
}

// SetDown records the failure detector's verdict for the node.
func (n *Node) SetDown(down bool) { n.down = down }

// Down reports whether the failure detector currently declares the node
// failed. Always false without fault-aware scheduling.
func (n *Node) Down() bool { return n.down }

// FreeCores returns how many cores of cluster k are admissible capacity:
// the MP-HARS free pool on partitioned nodes, the online core count on
// time-shared nodes.
func (n *Node) FreeCores(k hmp.ClusterKind) int {
	if n.MP != nil {
		return n.MP.FreeCores(k)
	}
	return n.OnlineCount(k)
}

// CanAdmit reports whether the node can accept one more application right
// now. Partitioned nodes need at least one free core (the admission rule
// MP-HARS applies at Register); time-shared nodes always admit. The check
// is pure — call Reconcile first when hotplug or capping may have moved
// under the partition tables (the scheduler does, once per decision point).
func (n *Node) CanAdmit() bool {
	if n.down {
		return false
	}
	if n.MP == nil {
		return true
	}
	return n.MP.FreeCores(hmp.Big)+n.MP.FreeCores(hmp.Little) > 0
}

// Reconcile folds the machine's hotplug and DVFS-cap state into the node's
// partition tables (a no-op for time-shared nodes), exactly as a direct
// registration would before consulting the free pool.
func (n *Node) Reconcile() {
	if n.MP != nil {
		n.MP.ReconcilePlatform(n.Machine)
	}
}

// Load returns the node's instantaneous load: how many threads are
// runnable machine-wide.
func (n *Node) Load() int { return n.RunnableCount() }

// CapacityScore estimates the node's spare heartbeat-throughput capacity:
// free cores weighted by each cluster's nominal speed (IPC × frequency
// scale) at the active DVFS ceiling. A thermally throttled or capped node
// therefore predicts less deliverable performance than a cold one with the
// same free cores. The scale is dimensionless — comparable across nodes
// within one decision, which is all a placement policy needs.
func (n *Node) CapacityScore() float64 {
	plat := n.Platform()
	var s float64
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		s += float64(n.FreeCores(k)) * plat.NominalSpeed(k, n.LevelCap(k))
	}
	if n.MP == nil {
		// Time-shared nodes always admit and FreeCores reports the full
		// online count; discount by the instantaneous load so a busy
		// time-shared node stops outscoring an idle one. Partitioned nodes
		// need no discount — their free pool already reflects occupancy.
		s /= float64(1 + n.Load())
	}
	return s
}

// MaxTempC returns the hotter cluster's modeled temperature, or the thermal
// default ambient for nodes without a governor (an unmodeled node is
// assumed cold — it has nothing to throttle).
func (n *Node) MaxTempC() float64 {
	if n.Gov == nil {
		return thermal.DefaultAmbientC
	}
	b, l := n.Gov.TempC(hmp.Big), n.Gov.TempC(hmp.Little)
	if b > l {
		return b
	}
	return l
}

// Hook is a per-tick fleet-wide observer: it runs after every node has
// advanced one tick, with a consistent cross-node view. The scheduler's
// admission and migration passes are hooks.
type Hook interface {
	Tick(f *Fleet)
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(f *Fleet)

// Tick implements Hook.
func (fn HookFunc) Tick(f *Fleet) { fn(f) }

// Sleeper is the opt-in contract that lets a Hook participate in
// event-driven advancement (the fleet-level analogue of sim.Sleeper).
// NextWake returns the earliest future clock time at which the hook's Tick
// is anything but a no-op; a return at or before f.Now() means "run me
// every tick". The contract mirrors sim.Sleeper exactly: skipped Tick
// invocations strictly before the returned time must be pure no-ops, and
// NextWake itself must not mutate anything. Hooks that do not implement
// Sleeper force per-tick lockstep, which is always correct.
type Sleeper interface {
	NextWake(f *Fleet) sim.Time
}

// Fleet advances a set of nodes on one deterministic clock: every Step
// ticks each node once, in index order, then runs the fleet-wide hooks.
// RunUntil additionally jumps stretches no hook or node cares about (see
// the package comment).
type Fleet struct {
	nodes []*Node
	tick  sim.Time
	hooks []Hook

	lockstep bool
	workers  int
}

// New builds a fleet over the given nodes. All nodes must share one tick
// length and one current time (normally zero: assemble the fleet before
// running anything), and node IDs must match their index.
func New(nodes ...*Node) (*Fleet, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: no nodes")
	}
	tick := nodes[0].TickLen()
	now := nodes[0].Now()
	for i, n := range nodes {
		if n.ID != i {
			return nil, fmt.Errorf("fleet: node %q has ID %d at index %d", n.Name, n.ID, i)
		}
		if n.TickLen() != tick {
			return nil, fmt.Errorf("fleet: node %q tick %d differs from node %q tick %d",
				n.Name, n.TickLen(), nodes[0].Name, tick)
		}
		if n.Now() != now {
			return nil, fmt.Errorf("fleet: node %q clock %d differs from node %q clock %d",
				n.Name, n.Now(), nodes[0].Name, now)
		}
	}
	return &Fleet{nodes: nodes, tick: tick}, nil
}

// Nodes returns the fleet's nodes in index order.
func (f *Fleet) Nodes() []*Node { return f.nodes }

// Node returns the node at index i.
func (f *Fleet) Node(i int) *Node { return f.nodes[i] }

// Now returns the shared clock (every node agrees with it).
func (f *Fleet) Now() sim.Time { return f.nodes[0].Now() }

// TickLen returns the shared tick length.
func (f *Fleet) TickLen() sim.Time { return f.tick }

// AddHook registers a fleet-wide per-tick hook. Hooks run in registration
// order after all nodes have stepped.
func (f *Fleet) AddHook(h Hook) { f.hooks = append(f.hooks, h) }

// SetLockstep forces the reference per-tick advancement strategy: RunUntil
// degenerates to Step in a loop. The result is always bit-for-bit what the
// event-driven walk produces; the switch exists for benchmarking and for
// the equivalence suite that proves exactly that.
func (f *Fleet) SetLockstep(on bool) { f.lockstep = on }

// SetWorkers shards node advancement between hook barriers across w
// goroutines (strided by node index). Nodes evolve independently between
// barriers, so any width — including 1, the default — produces identical
// results; the merge back to fleet order is by node index. Ignored while a
// tracer is shared between nodes (byte order across nodes must then follow
// the global tick order) and in lockstep mode.
func (f *Fleet) SetWorkers(w int) { f.workers = w }

// Step advances every node by one tick (index order), then runs the hooks.
func (f *Fleet) Step() {
	for _, n := range f.nodes {
		n.Step()
	}
	for _, h := range f.hooks {
		h.Tick(f)
	}
}

// RunUntil advances the shared clock until it reaches t: the event-driven
// core. Each iteration computes the barrier — the earliest time ≤ t any
// hook wants to run — advances every node there, and runs the hooks once.
// Hook invocations skipped in between are no-ops by the Sleeper contract;
// a non-Sleeper hook (or one due now) falls back to one lockstep Step.
func (f *Fleet) RunUntil(t sim.Time) {
	for f.Now() < t {
		if f.lockstep {
			f.Step()
			continue
		}
		now, barrier, wakeNow := f.Now(), t, false
		for _, h := range f.hooks {
			s, ok := h.(Sleeper)
			if !ok {
				wakeNow = true
				break
			}
			w := s.NextWake(f)
			if w <= now {
				wakeNow = true
				break
			}
			if w < barrier {
				barrier = w
			}
		}
		if wakeNow {
			f.Step()
			continue
		}
		f.advanceTo(barrier)
		for _, h := range f.hooks {
			h.Tick(f)
		}
	}
}

// advanceTo brings every node to the barrier. Nodes are independent between
// hook barriers, so each machine can run ahead on its own (jumping its
// inert stretches), sequentially or sharded across workers — except when a
// tracer is shared between nodes: trace bytes must then interleave in
// global tick order, so the fleet steps (and collectively fast-forwards)
// all nodes together.
func (f *Fleet) advanceTo(to sim.Time) {
	if f.sharedTracer() {
		f.advanceInterleaved(to)
		return
	}
	w := f.workers
	if w > len(f.nodes) {
		w = len(f.nodes)
	}
	if w <= 1 {
		for _, n := range f.nodes {
			n.RunUntil(to)
		}
		return
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(f.nodes); i += w {
				f.nodes[i].RunUntil(to)
			}
		}(g)
	}
	wg.Wait()
}

// advanceInterleaved advances all nodes to the barrier in global tick
// order: one tick each in index order, with a collective jump whenever
// every node is provably inert (the jump preserves byte order because an
// inert machine emits nothing).
func (f *Fleet) advanceInterleaved(to sim.Time) {
	for f.Now() < to {
		min := to
		for _, n := range f.nodes {
			if u := n.InertUntil(to); u < min {
				min = u
			}
		}
		if min > f.Now() {
			for _, n := range f.nodes {
				n.FastForward(min)
			}
			continue
		}
		for _, n := range f.nodes {
			n.Step()
		}
	}
}

// sharedTracer reports whether any sim.Tracer is attached to two or more
// nodes.
func (f *Fleet) sharedTracer() bool {
	var seen *sim.Tracer
	for _, n := range f.nodes {
		tr := n.Tracer()
		if tr == nil {
			continue
		}
		if seen == tr {
			return true
		}
		if seen != nil {
			// Two distinct tracers so far; compare every pair the slow way.
			return f.sharedTracerSlow()
		}
		seen = tr
	}
	return false
}

func (f *Fleet) sharedTracerSlow() bool {
	seen := make(map[*sim.Tracer]bool, len(f.nodes))
	for _, n := range f.nodes {
		tr := n.Tracer()
		if tr == nil {
			continue
		}
		if seen[tr] {
			return true
		}
		seen[tr] = true
	}
	return false
}

// EnergyJ returns the fleet-wide energy rollup: the sum over nodes.
func (f *Fleet) EnergyJ() float64 {
	var sum float64
	for _, n := range f.nodes {
		sum += n.EnergyJ()
	}
	return sum
}

// Overhead returns the fleet-wide runtime-manager CPU time rollup.
func (f *Fleet) Overhead() sim.Time {
	var sum sim.Time
	for _, n := range f.nodes {
		sum += n.Overhead()
	}
	return sum
}

// HPS returns the fleet-wide heartbeat-rate rollup: the sum of the latest
// window rates of every live (non-exited) process across all nodes.
func (f *Fleet) HPS() float64 {
	var sum float64
	for _, n := range f.nodes {
		for _, p := range n.Procs() {
			if p.Exited() {
				continue
			}
			if rec, ok := p.HB.Latest(); ok {
				sum += rec.WindowRate
			}
		}
	}
	return sum
}
