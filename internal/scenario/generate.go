package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/hmp"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// GenConfig tunes the random-scenario generator. The zero value selects an
// MP-HARS-I scenario with up to 3 applications, 20 s of simulated time, and
// 6 dynamic events.
type GenConfig struct {
	Manager    string // default "mphars-i"
	MaxApps    int    // default 3 (at least 1)
	DurationMS int64  // default 20000
	Events     int    // dynamic events besides arrivals/departures; default 6

	// Thermal closes the thermal loop with the default governor spec.
	// Scripted dvfs_cap events are excluded (the governor owns the
	// ceilings); their slots become workload phase pulses, the load shape
	// that heats and cools the clusters.
	Thermal bool
	// Periodic lets target and phase events repeat via every_ms, producing
	// pulsing load without hand-unrolled event lists.
	Periodic bool

	// Nodes > 0 generates a multi-node (fleet) scenario: Nodes machines of
	// alternating big-heavy / little-heavy platforms, a placement policy
	// drawn from the seed (or Placement when set), some apps pinned to a
	// node, and platform events addressed per node.
	Nodes int
	// Placement fixes the fleet placement policy; empty draws one from the
	// seed. Ignored without Nodes.
	Placement string

	// Faults adds a seeded faults block to a fleet scenario (ignored without
	// Nodes): scripted crashes, sometimes a random crash process, and a
	// transfer-failure probability. The extra draws happen strictly after
	// everything else, so seeds generate the same base scenario with the
	// flag on or off.
	Faults bool

	// Decisions adds an enabled decisions block (decision tracing). It
	// consumes no RNG draws at all, so seeds generate the same base
	// scenario with the flag on or off — the decision stream rides along
	// without perturbing anything the seed already determined.
	Decisions bool
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Manager == "" {
		c.Manager = ManagerMPHARSI
	}
	if c.MaxApps <= 0 {
		c.MaxApps = 3
	}
	if c.DurationMS <= 0 {
		c.DurationMS = 20000
	}
	if c.Events < 0 {
		c.Events = 0
	} else if c.Events == 0 {
		c.Events = 6
	}
	return c
}

// Generate builds a pseudo-random but fully deterministic scenario from a
// seed: the same seed and config always produce the same scenario, and the
// result always passes Validate. Property tests sweep seeds through it.
func Generate(seed int64, cfg GenConfig) *Scenario {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	plat := hmp.Default()
	shorts := workload.Shorts()

	sc := &Scenario{
		Name:          fmt.Sprintf("gen-%d", seed),
		Seed:          seed,
		Manager:       cfg.Manager,
		DurationMS:    cfg.DurationMS,
		SampleEveryMS: 250,
	}
	if cfg.Thermal {
		sc.Thermal = &thermal.Spec{Enabled: true}
	}
	if cfg.Nodes > 0 {
		sc.Placement = cfg.Placement
		if sc.Placement == "" {
			sc.Placement = []string{"least-loaded", "big-first", "coolest"}[rng.Intn(3)]
		}
		for i := 0; i < cfg.Nodes; i++ {
			ns := NodeSpec{Name: fmt.Sprintf("node%d", i)}
			if i%2 == 1 {
				// Alternate in a little-heavy board so the fleet is
				// genuinely heterogeneous.
				p := hmp.Default()
				p.Clusters[hmp.Big].Cores = 2
				p.Clusters[hmp.Little].Cores = 6
				ns.Platform = p
			}
			sc.Nodes = append(sc.Nodes, ns)
		}
	}

	nApps := 1 + rng.Intn(cfg.MaxApps)
	for i := 0; i < nApps; i++ {
		a := AppSpec{
			Name:       fmt.Sprintf("app%d", i),
			Bench:      shorts[rng.Intn(len(shorts))],
			Threads:    4 + 4*rng.Intn(2), // 4 or 8
			TargetFrac: 0.3 + 0.5*rng.Float64(),
			InitBig:    IntPtr(1),
			InitLittle: IntPtr(1),
		}
		if cfg.Nodes > 0 && rng.Intn(3) == 0 {
			a.Node = sc.Nodes[rng.Intn(len(sc.Nodes))].Name
		}
		if i > 0 {
			a.StartMS = rng.Int63n(cfg.DurationMS / 2)
		}
		// Half the later apps depart before the end.
		if i > 0 && rng.Intn(2) == 0 {
			lo := a.StartMS + cfg.DurationMS/4
			if lo < cfg.DurationMS {
				a.StopMS = lo + rng.Int63n(cfg.DurationMS-lo)
				if a.StopMS <= a.StartMS {
					a.StopMS = 0
				}
			}
		}
		sc.Apps = append(sc.Apps, a)
	}

	// Platform events address one node each in a fleet scenario; the
	// per-node platform and online set drive the choices below.
	type platTarget struct {
		name   string
		plat   *hmp.Platform
		online hmp.CPUMask
	}
	targets := []*platTarget{{plat: plat, online: hmp.AllCPUs(plat)}}
	if cfg.Nodes > 0 {
		targets = targets[:0]
		for i := range sc.Nodes {
			p := sc.Nodes[i].Platform
			if p == nil {
				p = plat
			}
			targets = append(targets, &platTarget{
				name: sc.Nodes[i].Name, plat: p, online: hmp.AllCPUs(p),
			})
		}
	}

	// Event times first (sorted), then kinds chosen chronologically while
	// tracking each node's online set so hotplug never strands a machine.
	times := make([]int64, cfg.Events)
	for i := range times {
		times[i] = 1 + rng.Int63n(cfg.DurationMS-1)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, at := range times {
		ev := Event{AtMS: at}
		// Single-target (legacy) generation must not consume an extra RNG
		// draw: seeded scenarios stay stable across versions.
		tgt := targets[0]
		if len(targets) > 1 {
			tgt = targets[rng.Intn(len(targets))]
		}
		switch rng.Intn(4) {
		case 0: // hotplug: prefer taking a core down, bring one back when thin
			cpu := rng.Intn(tgt.plat.TotalCores())
			if tgt.online.Has(cpu) && tgt.online.Count() > 2 {
				on := false
				ev.Kind, ev.CPU, ev.Online, ev.Node = KindHotplug, cpu, &on, tgt.name
				tgt.online = tgt.online.Clear(cpu)
			} else if !tgt.online.Has(cpu) {
				on := true
				ev.Kind, ev.CPU, ev.Online, ev.Node = KindHotplug, cpu, &on, tgt.name
				tgt.online = tgt.online.Set(cpu)
			} else {
				// Too few cores to take another down: cap (or pulse) instead.
				ev = capEvent(rng, tgt.plat, tgt.name, cfg, sc, at)
			}
		case 1:
			ev = capEvent(rng, tgt.plat, tgt.name, cfg, sc, at)
		case 2:
			a := &sc.Apps[rng.Intn(len(sc.Apps))]
			ev.Kind, ev.App = KindTarget, a.Name
			ev.Frac = 0.3 + 0.5*rng.Float64()
		default:
			a := &sc.Apps[rng.Intn(len(sc.Apps))]
			ev.Kind, ev.App = KindPhase, a.Name
			ev.Scale = 0.5 + 1.5*rng.Float64()
		}
		if cfg.Periodic && (ev.Kind == KindTarget || ev.Kind == KindPhase) && rng.Intn(3) == 0 {
			ev.EveryMS = 200 + 100*rng.Int63n(8)
			ev.Repeat = 2 + rng.Intn(8)
		}
		sc.Events = append(sc.Events, ev)
	}
	if cfg.Faults && cfg.Nodes > 0 {
		sc.Faults = genFaults(rng, sc, cfg)
	}
	if cfg.Decisions {
		sc.Decisions = &DecisionSpec{Enabled: true}
	}
	return sc
}

// genFaults draws a faults block: one or two scripted crashes (occasionally
// permanent), sometimes a seeded random crash process, and a transfer-failure
// probability. Every down_ms clears the detectability floor (down longer than
// the heartbeat timeout) by construction.
func genFaults(rng *rand.Rand, sc *Scenario, cfg GenConfig) *fault.Spec {
	fs := &fault.Spec{
		Seed:              rng.Int63(),
		CheckpointEveryMS: 500 + 250*rng.Int63n(5),
		TransferFailProb:  0.2 * rng.Float64(),
	}
	half := cfg.DurationMS / 2
	if half < 1 {
		half = 1
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		down := fault.DefaultHeartbeatTimeoutMS + 200 + 100*rng.Int63n(20)
		if rng.Intn(4) == 0 {
			down = 0 // never recovers
		}
		fs.Crashes = append(fs.Crashes, fault.Crash{
			Node:   sc.Nodes[rng.Intn(len(sc.Nodes))].Name,
			AtMS:   1 + rng.Int63n(half),
			DownMS: down,
		})
	}
	if rng.Intn(2) == 0 {
		fs.Random = &fault.RandomCrashes{
			RatePerMin: 2 + 4*rng.Float64(),
			DownMS:     1000 + 500*rng.Int63n(4),
		}
	}
	return fs
}

func capEvent(rng *rand.Rand, plat *hmp.Platform, node string, cfg GenConfig, sc *Scenario, at int64) Event {
	if cfg.Thermal {
		// The governor owns the ceilings: generate a workload phase pulse
		// instead, the load shape that actually exercises the thermal loop.
		a := &sc.Apps[rng.Intn(len(sc.Apps))]
		return Event{AtMS: at, Kind: KindPhase, App: a.Name, Scale: 0.5 + 1.5*rng.Float64()}
	}
	k := hmp.ClusterKind(rng.Intn(int(hmp.NumClusters)))
	name := "little"
	if k == hmp.Big {
		name = "big"
	}
	max := plat.Clusters[k].MaxLevel()
	lvl := 1 + rng.Intn(max) // [1, max]: sometimes a real cap, sometimes a restore
	return Event{AtMS: at, Kind: KindDVFSCap, Cluster: name, MaxLevel: lvl, Node: node}
}
