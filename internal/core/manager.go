package core

import (
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// Version selects one of the paper's HARS variants.
type Version int

// The evaluated HARS versions.
const (
	// HARSI is the incremental search version: m = 1, n = 0, d = 1 when the
	// application overperforms, m = 0, n = 1, d = 1 when it underperforms.
	HARSI Version = iota
	// HARSE is the exhaustive search version (m = n = 4, d = 7) with the
	// chunk-based scheduler.
	HARSE
	// HARSEI is HARS-E with the interleaving scheduler.
	HARSEI
)

// String names the version as in the paper's figures.
func (v Version) String() string {
	switch v {
	case HARSI:
		return "HARS-I"
	case HARSE:
		return "HARS-E"
	case HARSEI:
		return "HARS-EI"
	}
	return "HARS-?"
}

// Config tunes the runtime manager.
type Config struct {
	Version Version

	// AdaptEvery is the adaptation period in heartbeats (isAdaptPeriod of
	// Algorithm 1). Default 10.
	AdaptEvery int64

	// Params overrides the search parameters; zero means "use the
	// version's defaults". Figure 5.3 sweeps D with M = N = 4.
	Params SearchParams

	// Scheduler overrides the version's thread scheduler when non-nil.
	Scheduler *SchedulerKind

	// InitState is the state the manager starts from; zero means the
	// platform maximum (the baseline state).
	InitState *hmp.State

	// Overhead model: the CPU time the user-level runtime burns, charged
	// against OverheadCPU. PerCandidate is per explored state in a search,
	// PerSearch per search invocation, PollPerTick per simulator tick for
	// the heartbeat-polling loop.
	PerCandidate sim.Time
	PerSearch    sim.Time
	PollPerTick  sim.Time
	OverheadCPU  int

	// The §3.1.4 extensions, all disabled by default (paper behaviour):

	// Predictor replaces the naive "same workload as last period" model
	// with a smarter workload predictor (e.g. &KalmanPredictor{}).
	Predictor WorkloadPredictor

	// LearnRatio enables online estimation of the application's true
	// big/little performance ratio, replacing the fixed r0.
	LearnRatio bool

	// SearchFn replaces Algorithm 2 with an alternative search (e.g.
	// NewTabuSearch(8)); nil keeps the paper's Search.
	SearchFn SearchFunc
}

func (c Config) withDefaults() Config {
	if c.AdaptEvery <= 0 {
		c.AdaptEvery = 10
	}
	if c.PerCandidate <= 0 {
		c.PerCandidate = 150 * sim.Microsecond
	}
	if c.PerSearch <= 0 {
		c.PerSearch = 500 * sim.Microsecond
	}
	if c.PollPerTick <= 0 {
		c.PollPerTick = 2 * sim.Microsecond
	}
	return c
}

// params returns the search parameters for this adaptation, following the
// paper's per-version rules.
func (c Config) params(overperforming bool) SearchParams {
	if c.Params != (SearchParams{}) {
		return c.Params
	}
	switch c.Version {
	case HARSI:
		if overperforming {
			return SearchParams{M: 1, N: 0, D: 1}
		}
		return SearchParams{M: 0, N: 1, D: 1}
	default: // HARSE, HARSEI
		return SearchParams{M: 4, N: 4, D: 7}
	}
}

// scheduler returns the thread scheduler for the configured version.
func (c Config) scheduler() SchedulerKind {
	if c.Scheduler != nil {
		return *c.Scheduler
	}
	if c.Version == HARSEI {
		return Interleaved
	}
	return Chunk
}

// Decision records one adaptation for tracing (behaviour graphs).
type Decision struct {
	Time     sim.Time
	HBIndex  int64
	Rate     float64
	From, To hmp.State
	Explored int
}

// Manager is HARS's runtime manager (Algorithm 1), run as a machine daemon.
// It owns the whole machine: single-application HARS assumes the target
// self-adaptive application is the only managed workload.
type Manager struct {
	cfg     Config
	proc    *sim.Process
	est     Estimators
	target  heartbeat.Target
	state   hmp.State
	applied Assignment // the thread assignment currently in force
	learner *RatioLearner

	lastSeen      int64
	lastAdapt     int64
	decisions     []Decision
	exploredTotal int
	searches      int

	// OnDecision, when set, observes every adaptation (for behaviour
	// graphs).
	OnDecision func(Decision)
}

// NewManager attaches a HARS runtime manager to a process: it applies the
// initial system state and thread schedule immediately (Algorithm 1 lines
// 2–3) and adapts on heartbeats once registered as a daemon.
func NewManager(m *sim.Machine, proc *sim.Process, model *power.LinearModel, target heartbeat.Target, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	mgr := &Manager{
		cfg:    cfg,
		proc:   proc,
		est:    NewEstimators(m.Platform(), len(proc.Threads), model),
		target: target,
	}
	if cfg.LearnRatio {
		mgr.learner = NewRatioLearner(m.Platform(), len(proc.Threads))
	}
	st := hmp.MaxState(m.Platform())
	if cfg.InitState != nil {
		st = *cfg.InitState
	}
	mgr.state = st
	mgr.apply(m, st)
	proc.HB.SetTarget(target)
	return mgr
}

// State returns the manager's current system state.
func (mgr *Manager) State() hmp.State { return mgr.state }

// Target returns the manager's performance target.
func (mgr *Manager) Target() heartbeat.Target { return mgr.target }

// Decisions returns the adaptation trace.
func (mgr *Manager) Decisions() []Decision { return mgr.decisions }

// Searches returns how many times the search function ran.
func (mgr *Manager) Searches() int { return mgr.searches }

// ExploredTotal returns the total number of candidate states evaluated.
func (mgr *Manager) ExploredTotal() int { return mgr.exploredTotal }

// LearnedRatio returns the online big/little ratio estimate (0 when ratio
// learning is disabled).
func (mgr *Manager) LearnedRatio() float64 {
	if mgr.learner == nil {
		return 0
	}
	return mgr.learner.Ratio()
}

// Tick implements sim.Daemon: the main function of Algorithm 1.
func (mgr *Manager) Tick(m *sim.Machine) {
	m.ChargeOverhead(mgr.cfg.OverheadCPU, mgr.cfg.PollPerTick)
	count := mgr.proc.HB.Count()
	if count == mgr.lastSeen {
		return
	}
	mgr.lastSeen = count
	rec, ok := mgr.proc.HB.Latest()
	if !ok {
		return
	}
	rate := rec.WindowRate
	// Online extensions observe every heartbeat (no-ops in the paper's
	// default configuration).
	if mgr.learner != nil {
		mgr.learner.Observe(mgr.state, mgr.applied, rate)
		mgr.est.Perf.R0 = mgr.learner.Ratio()
	}
	baseRate := rate
	if mgr.cfg.Predictor != nil {
		if tput := mgr.est.Perf.EvaluateCached(mgr.state).Throughput; tput > 0 && rate > 0 {
			mgr.cfg.Predictor.Observe(tput / rate)
			if w := mgr.cfg.Predictor.Predict(); w > 0 {
				baseRate = tput / w
			}
		}
	}
	// isAdaptPeriod: one adaptation opportunity every AdaptEvery beats.
	if rec.Index < mgr.lastAdapt+mgr.cfg.AdaptEvery {
		return
	}
	if !heartbeat.OutsideBand(mgr.target, rate) {
		return
	}
	mgr.lastAdapt = rec.Index
	over := rate > mgr.target.Avg
	prm := mgr.cfg.params(over)
	searchFn := mgr.cfg.SearchFn
	if searchFn == nil {
		searchFn = Search
	}
	res := searchFn(mgr.est, mgr.state, baseRate, mgr.target, prm, Unbounded(m.Platform()))
	mgr.searches++
	mgr.exploredTotal += res.Explored
	m.ChargeOverhead(mgr.cfg.OverheadCPU,
		mgr.cfg.PerSearch+sim.Time(res.Explored)*mgr.cfg.PerCandidate)

	d := Decision{
		Time:     m.Now(),
		HBIndex:  rec.Index,
		Rate:     rate,
		From:     mgr.state,
		To:       res.State,
		Explored: res.Explored,
	}
	mgr.decisions = append(mgr.decisions, d)
	if mgr.OnDecision != nil {
		mgr.OnDecision(d)
	}
	if res.State != mgr.state {
		mgr.state = res.State
		mgr.apply(m, res.State)
	}
}

// apply is setSysStateAndScheduleThreads: DVFS plus thread scheduling.
func (mgr *Manager) apply(m *sim.Machine, st hmp.State) {
	m.SetLevel(hmp.Big, st.BigLevel)
	m.SetLevel(hmp.Little, st.LittleLevel)
	ev := mgr.est.Perf.EvaluateCached(st)
	mgr.applied = ev.Assignment
	plat := m.Platform()
	ApplySchedule(mgr.proc, ev.Assignment, mgr.cfg.scheduler(),
		DefaultCores(plat, hmp.Big, st.BigCores),
		DefaultCores(plat, hmp.Little, st.LittleCores))
}
