package fault

import (
	"strings"
	"testing"
)

// TestValidateDetectabilityBoundary pins the detectability floor exactly:
// down_ms equal to the heartbeat timeout is rejected (silence for precisely
// the timeout never declares the node down — Observe requires now-lastBeat
// strictly above it), one tick (1 ms) longer is accepted. The event-driven
// scheduler turns these deadlines into wake times, so an off-by-one here
// would silently skip or delay detection; the table keeps the boundary from
// regressing in either direction.
func TestValidateDetectabilityBoundary(t *testing.T) {
	cases := []struct {
		name      string
		timeoutMS int64 // 0 = default (DefaultHeartbeatTimeoutMS)
		downMS    int64
		ok        bool
	}{
		{"default timeout, down == timeout", 0, DefaultHeartbeatTimeoutMS, false},
		{"default timeout, down one tick above", 0, DefaultHeartbeatTimeoutMS + 1, true},
		{"default timeout, down one tick below", 0, DefaultHeartbeatTimeoutMS - 1, false},
		{"explicit timeout, down == timeout", 200, 200, false},
		{"explicit timeout, down one tick above", 200, 201, true},
		{"explicit timeout, down one tick below", 200, 199, false},
		{"down forever always detectable", 200, 0, true},
	}
	for _, tc := range cases {
		crash := Spec{
			HeartbeatTimeoutMS: tc.timeoutMS,
			Crashes:            []Crash{{Node: "n", AtMS: 1, DownMS: tc.downMS}},
		}
		random := Spec{
			HeartbeatTimeoutMS: tc.timeoutMS,
			Random:             &RandomCrashes{RatePerMin: 1, DownMS: tc.downMS},
		}
		for kind, spec := range map[string]Spec{"crash": crash, "random": random} {
			if kind == "random" && tc.downMS == 0 {
				// Random down_ms 0 resolves to the (detectable) default
				// instead of meaning "forever"; not a boundary case.
				continue
			}
			err := spec.Validate(10000)
			if tc.ok && err != nil {
				t.Errorf("%s (%s): unexpected error %v", tc.name, kind, err)
			}
			if !tc.ok {
				if err == nil {
					t.Errorf("%s (%s): undetectable blip accepted", tc.name, kind)
				} else if !strings.Contains(err.Error(), "undetectable") {
					t.Errorf("%s (%s): wrong error %v", tc.name, kind, err)
				}
			}
		}
	}
}

// TestDetectorDeadlineExact pins Deadline against Observe's strict
// comparison: silence at exactly lastBeat+timeout is still tolerated, one
// tick past it declares the node down — so Deadline(i)+1 is precisely the
// first tick an event-driven detection pass must run on a silent node.
func TestDetectorDeadlineExact(t *testing.T) {
	const timeout = 300
	d := NewDetector(1, timeout, 0)
	if got := d.Deadline(0); got != timeout {
		t.Fatalf("Deadline = %d, want %d", got, timeout)
	}
	if failed, _ := d.Observe(0, false, d.Deadline(0)); failed || d.Down(0) {
		t.Fatal("declared down at exactly the deadline")
	}
	if failed, _ := d.Observe(0, false, d.Deadline(0)+1); !failed || !d.Down(0) {
		t.Fatal("not declared down one tick past the deadline")
	}
	// A fresh beat moves the deadline with it.
	d2 := NewDetector(1, timeout, 0)
	d2.Observe(0, true, 42)
	if got := d2.Deadline(0); got != 42+timeout {
		t.Fatalf("refreshed Deadline = %d, want %d", got, 42+timeout)
	}
}
