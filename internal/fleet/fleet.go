// Package fleet scales the HARS reproduction from one machine to many: a
// set of heterogeneous nodes — each its own sim.Machine with its own
// platform description, power model, thermal governor, and runtime manager
// — advancing in lockstep on one deterministic clock, with a fleet
// scheduler admitting arriving applications to a node through pluggable
// placement policies, queueing them when no node has capacity, and
// migrating them off saturated nodes.
//
// The paper evaluates HARS on a single ODROID-XU3 board; MARS (Mück et al.)
// shows the same resource-management ideas composing hierarchically — per-
// node controllers under a reflective coordinator — and that is the shape
// of this package: the per-node HARS / MP-HARS managers keep running
// unmodified as machine daemons, while the fleet layer only decides *which*
// node an application lands on and when it should move.
//
// # Event-driven advancement
//
// The reference semantics are lockstep: every Step advances each node one
// tick in index order, then runs the fleet-wide hooks. RunUntil, however,
// is discrete-event: it asks every hook implementing Sleeper for its next
// wake time, takes the minimum as a barrier, advances each node to the
// barrier independently (machines jump their own provably-inert stretches
// via sim.Machine.InertUntil/FastForward, and node advancement can be
// sharded across workers — see SetWorkers), and runs the hooks once at the
// barrier. The skipped hook invocations are certified no-ops by the
// Sleeper contract, so the walk visits exactly the states lockstep would:
// every digest, counter, and trace byte is bit-for-bit identical. A hook
// that does not implement Sleeper (or one that wants to run now) drops the
// fleet back to per-tick lockstep, which is always correct. SetLockstep
// forces the reference path outright.
//
// # Wake index
//
// Barrier cost is proportional to activity, not fleet size. The scheduler
// derives its NextWake from an incremental wake index instead of scanning
// every node: detector deadlines enter a min-ordered index when a machine
// crashes (sim.Machine failure listeners notify the scheduler at the
// transition) and leave it on detection or heal, declared-down nodes sit in
// a short list consulted for pending heals, and the migrate/checkpoint
// cadences are scalars — so a barrier on a thousand-node fleet costs
// O(active), where active counts crashed-undetected and down nodes, not
// O(nodes). The historical full-scan NextWake survives as the bit-exactness
// reference (Scheduler.SetWakeScan), and Scheduler.SetWakeVerify runs both
// per barrier and records the first divergence — the equivalence suite
// replays generated fault scenarios with it on. Node advancement between
// barriers reuses a persistent worker pool (no per-barrier goroutine spawn)
// fed by a chunked atomic counter, and machines route their inert jumps
// through per-worker sim.JumpCaches, so a barrier over a mostly-idle fleet
// replays the energy accumulation of each distinct machine state once
// instead of once per node.
//
// # Determinism
//
// Everything is deterministic: nodes step in index order within one shared
// tick, scheduler decisions happen at tick boundaries with fixed
// tie-breaking (policy score, then node index), and the queue drains FIFO.
// Replaying the same node set and arrival sequence produces bit-identical
// machines — whatever the advancement strategy or worker count, because
// nodes evolve independently between hook barriers and results merge in
// index order (the width-independence discipline the experiments engine
// pins with TestEngineDeterminism). A fleet of one node is bit-for-bit the
// bare machine run — the Node wrapper adds no behaviour — which is what
// lets the scenario engine route every run, single- or multi-node, through
// this layer.
package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hmp"
	"repro/internal/mphars"
	"repro/internal/sim"
	"repro/internal/thermal"
)

// Node is one machine of a fleet: the sim.Node identity plus the typed
// handles the placement policies and the scheduler consult — the MP-HARS
// manager when the node partitions cores, and the thermal governor when the
// node models heat. Both may be nil; the daemons themselves are registered
// on the embedded machine as usual.
type Node struct {
	*sim.Node

	// MP is the node's MP-HARS manager, nil when the node runs
	// single-application managers or no manager at all. A node with an MP
	// manager has partitioned admission capacity (FreeCores); other nodes
	// time-share and always admit.
	MP *mphars.Manager

	// Gov is the node's closed-loop thermal governor, nil when the node
	// does not model heat. Heat-aware placement reads temperatures from it;
	// governor-less nodes are assumed to sit at ambient.
	Gov *thermal.Governor

	// down marks a node the failure detector currently declares failed:
	// placement skips it until it proves alive again. Maintained by the
	// fault-aware scheduler; distinct from Machine.Failed (the ground
	// truth), which the detector only learns after the heartbeat timeout.
	down bool
}

// SetDown records the failure detector's verdict for the node.
func (n *Node) SetDown(down bool) { n.down = down }

// Down reports whether the failure detector currently declares the node
// failed. Always false without fault-aware scheduling.
func (n *Node) Down() bool { return n.down }

// FreeCores returns how many cores of cluster k are admissible capacity:
// the MP-HARS free pool on partitioned nodes, the online core count on
// time-shared nodes.
func (n *Node) FreeCores(k hmp.ClusterKind) int {
	if n.MP != nil {
		return n.MP.FreeCores(k)
	}
	return n.OnlineCount(k)
}

// CanAdmit reports whether the node can accept one more application right
// now. Partitioned nodes need at least one free core (the admission rule
// MP-HARS applies at Register); time-shared nodes always admit. The check
// is pure — call Reconcile first when hotplug or capping may have moved
// under the partition tables (the scheduler does, once per decision point).
func (n *Node) CanAdmit() bool {
	if n.down {
		return false
	}
	if n.MP == nil {
		return true
	}
	return n.MP.FreeCores(hmp.Big)+n.MP.FreeCores(hmp.Little) > 0
}

// Reconcile folds the machine's hotplug and DVFS-cap state into the node's
// partition tables (a no-op for time-shared nodes), exactly as a direct
// registration would before consulting the free pool.
func (n *Node) Reconcile() {
	if n.MP != nil {
		n.MP.ReconcilePlatform(n.Machine)
	}
}

// Load returns the node's instantaneous load: how many threads are
// runnable machine-wide.
func (n *Node) Load() int { return n.RunnableCount() }

// CapacityScore estimates the node's spare heartbeat-throughput capacity:
// free cores weighted by each cluster's nominal speed (IPC × frequency
// scale) at the active DVFS ceiling. A thermally throttled or capped node
// therefore predicts less deliverable performance than a cold one with the
// same free cores. The scale is dimensionless — comparable across nodes
// within one decision, which is all a placement policy needs.
func (n *Node) CapacityScore() float64 {
	plat := n.Platform()
	var s float64
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		s += float64(n.FreeCores(k)) * plat.NominalSpeed(k, n.LevelCap(k))
	}
	if n.MP == nil {
		// Time-shared nodes always admit and FreeCores reports the full
		// online count; discount by the instantaneous load so a busy
		// time-shared node stops outscoring an idle one. Partitioned nodes
		// need no discount — their free pool already reflects occupancy.
		s /= float64(1 + n.Load())
	}
	return s
}

// MaxTempC returns the hotter cluster's modeled temperature, or the thermal
// default ambient for nodes without a governor (an unmodeled node is
// assumed cold — it has nothing to throttle).
func (n *Node) MaxTempC() float64 {
	if n.Gov == nil {
		return thermal.DefaultAmbientC
	}
	b, l := n.Gov.TempC(hmp.Big), n.Gov.TempC(hmp.Little)
	if b > l {
		return b
	}
	return l
}

// Hook is a per-tick fleet-wide observer: it runs after every node has
// advanced one tick, with a consistent cross-node view. The scheduler's
// admission and migration passes are hooks.
type Hook interface {
	Tick(f *Fleet)
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(f *Fleet)

// Tick implements Hook.
func (fn HookFunc) Tick(f *Fleet) { fn(f) }

// Sleeper is the opt-in contract that lets a Hook participate in
// event-driven advancement (the fleet-level analogue of sim.Sleeper).
// NextWake returns the earliest future clock time at which the hook's Tick
// is anything but a no-op; a return at or before f.Now() means "run me
// every tick". The contract mirrors sim.Sleeper exactly: skipped Tick
// invocations strictly before the returned time must be pure no-ops, and
// NextWake itself must not mutate anything. Hooks that do not implement
// Sleeper force per-tick lockstep, which is always correct.
type Sleeper interface {
	NextWake(f *Fleet) sim.Time
}

// Fleet advances a set of nodes on one deterministic clock: every Step
// ticks each node once, in index order, then runs the fleet-wide hooks.
// RunUntil additionally jumps stretches no hook or node cares about (see
// the package comment).
type Fleet struct {
	nodes []*Node
	tick  sim.Time
	hooks []Hook

	// sleepers caches the Sleeper assertion per hook (nil = the hook does
	// not implement it and forces lockstep), so the barrier loop does not
	// re-assert every hook every iteration.
	sleepers    []Sleeper
	allSleepers bool

	lockstep bool
	workers  int

	// shared memoizes the sharedTracer verdict; tracer-attach listeners on
	// every node invalidate it (sharedValid=false), so the per-barrier check
	// is one bool read instead of an O(nodes) walk.
	shared      bool
	sharedValid bool

	// jump is the inert-stretch replay memo for sequential and interleaved
	// advancement; pool workers carry their own.
	jump *sim.JumpCache

	pool *advancePool
}

// New builds a fleet over the given nodes. All nodes must share one tick
// length and one current time (normally zero: assemble the fleet before
// running anything), and node IDs must match their index.
func New(nodes ...*Node) (*Fleet, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: no nodes")
	}
	tick := nodes[0].TickLen()
	now := nodes[0].Now()
	for i, n := range nodes {
		if n.ID != i {
			return nil, fmt.Errorf("fleet: node %q has ID %d at index %d", n.Name, n.ID, i)
		}
		if n.TickLen() != tick {
			return nil, fmt.Errorf("fleet: node %q tick %d differs from node %q tick %d",
				n.Name, n.TickLen(), nodes[0].Name, tick)
		}
		if n.Now() != now {
			return nil, fmt.Errorf("fleet: node %q clock %d differs from node %q clock %d",
				n.Name, n.Now(), nodes[0].Name, now)
		}
	}
	f := &Fleet{nodes: nodes, tick: tick, allSleepers: true}
	invalidate := func() { f.sharedValid = false }
	for _, n := range nodes {
		n.Machine.OnTracerChange(invalidate)
	}
	return f, nil
}

// Nodes returns the fleet's nodes in index order.
func (f *Fleet) Nodes() []*Node { return f.nodes }

// Node returns the node at index i.
func (f *Fleet) Node(i int) *Node { return f.nodes[i] }

// Now returns the shared clock (every node agrees with it).
func (f *Fleet) Now() sim.Time { return f.nodes[0].Now() }

// TickLen returns the shared tick length.
func (f *Fleet) TickLen() sim.Time { return f.tick }

// AddHook registers a fleet-wide per-tick hook. Hooks run in registration
// order after all nodes have stepped.
func (f *Fleet) AddHook(h Hook) {
	f.hooks = append(f.hooks, h)
	s, ok := h.(Sleeper)
	f.sleepers = append(f.sleepers, s)
	if !ok {
		f.allSleepers = false
	}
}

// SetLockstep forces the reference per-tick advancement strategy: RunUntil
// degenerates to Step in a loop. The result is always bit-for-bit what the
// event-driven walk produces; the switch exists for benchmarking and for
// the equivalence suite that proves exactly that.
func (f *Fleet) SetLockstep(on bool) { f.lockstep = on }

// SetSteady toggles the steady-phase turbo path on every node's machine
// (sim.Machine.SetSteady). On by default; the switch exists for the
// equivalence suite that pins the turbo path against the general loop and
// for benchmarking the general loop on busy fleets. Applies to the nodes
// present now — add nodes before calling, or call again after.
func (f *Fleet) SetSteady(on bool) {
	for _, n := range f.nodes {
		n.Machine.SetSteady(on)
	}
}

// SetWorkers shards node advancement between hook barriers across a
// persistent pool of w goroutines fed through a chunked work cursor. Nodes
// evolve independently between barriers, so any width — including 1, the
// default — produces identical results; the merge back to fleet order is
// by node index. Ignored while a tracer is shared between nodes (byte
// order across nodes must then follow the global tick order) and in
// lockstep mode.
func (f *Fleet) SetWorkers(w int) { f.workers = w }

// Step advances every node by one tick (index order), then runs the hooks.
func (f *Fleet) Step() {
	for _, n := range f.nodes {
		n.Step()
	}
	for _, h := range f.hooks {
		h.Tick(f)
	}
}

// RunUntil advances the shared clock until it reaches t: the event-driven
// core. Each iteration computes the barrier — the earliest time ≤ t any
// hook wants to run — advances every node there, and runs the hooks once.
// Hook invocations skipped in between are no-ops by the Sleeper contract;
// a non-Sleeper hook (or one due now) falls back to one lockstep Step.
func (f *Fleet) RunUntil(t sim.Time) {
	for f.Now() < t {
		if f.lockstep || !f.allSleepers {
			f.Step()
			continue
		}
		now, barrier, wakeNow := f.Now(), t, false
		for _, s := range f.sleepers {
			w := s.NextWake(f)
			if w <= now {
				wakeNow = true
				break
			}
			if w < barrier {
				barrier = w
			}
		}
		if wakeNow {
			f.Step()
			continue
		}
		f.advanceTo(barrier)
		for _, h := range f.hooks {
			h.Tick(f)
		}
	}
}

// advanceTo brings every node to the barrier. Nodes are independent between
// hook barriers, so each machine can run ahead on its own (jumping its
// inert stretches), sequentially or sharded across the persistent worker
// pool — except when a tracer is shared between nodes: trace bytes must
// then interleave in global tick order, so the fleet steps (and
// collectively fast-forwards) all nodes together.
func (f *Fleet) advanceTo(to sim.Time) {
	if f.sharedTracer() {
		f.advanceInterleaved(to)
		return
	}
	w := f.workers
	if w > len(f.nodes) {
		w = len(f.nodes)
	}
	if w <= 1 {
		if f.jump == nil {
			f.jump = sim.NewJumpCache()
		}
		for _, n := range f.nodes {
			n.RunUntilCached(to, f.jump)
		}
		return
	}
	if f.pool == nil || f.pool.width != w {
		if f.pool != nil {
			f.pool.stop()
		}
		f.pool = newAdvancePool(f.nodes, w)
		// The workers reference only the pool, never the Fleet, so an
		// abandoned fleet stays collectable; its finalizer releases them.
		runtime.SetFinalizer(f, func(f *Fleet) { f.pool.stop() })
	}
	f.pool.advance(to)
}

// advancePool is the fleet's persistent node-advancement crew: width
// long-lived goroutines fed per barrier through a chunked atomic cursor
// (dynamic feeding — a worker stuck on the one busy node does not strand
// the idle tail behind a static stride) instead of spawning goroutines
// every barrier. Nodes mutate only themselves and the cursor hand-off
// happens-before each chunk, so any width and any chunk interleaving
// produce identical machines; each worker keeps a private sim.JumpCache,
// which affects wall-clock only.
type advancePool struct {
	width int
	chunk int
	nodes []*Node
	next  atomic.Int64
	wg    sync.WaitGroup
	work  chan sim.Time
}

func newAdvancePool(nodes []*Node, width int) *advancePool {
	p := &advancePool{width: width, nodes: nodes, work: make(chan sim.Time)}
	// ~4 chunks per worker: coarse enough that the cursor is not contended,
	// fine enough that one busy node cannot serialize a whole stride.
	p.chunk = len(nodes) / (width * 4)
	if p.chunk < 1 {
		p.chunk = 1
	}
	for g := 0; g < width; g++ {
		go p.worker()
	}
	return p
}

func (p *advancePool) worker() {
	jc := sim.NewJumpCache()
	for to := range p.work {
		for {
			lo := int(p.next.Add(int64(p.chunk))) - p.chunk
			if lo >= len(p.nodes) {
				break
			}
			hi := lo + p.chunk
			if hi > len(p.nodes) {
				hi = len(p.nodes)
			}
			for _, n := range p.nodes[lo:hi] {
				n.RunUntilCached(to, jc)
			}
		}
		p.wg.Done()
	}
}

// advance brings every node to the barrier using the pool and returns when
// all have arrived. Allocation-free: the barrier hand-off is one channel
// send per worker.
func (p *advancePool) advance(to sim.Time) {
	p.next.Store(0)
	p.wg.Add(p.width)
	for g := 0; g < p.width; g++ {
		p.work <- to
	}
	p.wg.Wait()
}

// stop releases the pool's goroutines. Idempotence is not needed: the fleet
// replaces the pool pointer whenever it stops one.
func (p *advancePool) stop() { close(p.work) }

// advanceInterleaved advances all nodes to the barrier in global tick
// order: one tick each in index order, with a collective jump whenever
// every node is provably inert (the jump preserves byte order because an
// inert machine emits nothing).
func (f *Fleet) advanceInterleaved(to sim.Time) {
	if f.jump == nil {
		f.jump = sim.NewJumpCache()
	}
	for f.Now() < to {
		min := to
		for _, n := range f.nodes {
			if u := n.InertUntil(to); u < min {
				min = u
			}
		}
		if min > f.Now() {
			for _, n := range f.nodes {
				n.FastForwardCached(min, f.jump)
			}
			continue
		}
		for _, n := range f.nodes {
			n.Step()
		}
	}
}

// sharedTracer reports whether any sim.Tracer is attached to two or more
// nodes. The verdict is memoized — every node's machine invalidates it
// through its tracer-attach listener — so the per-barrier cost is one bool
// read, not an O(nodes) walk.
func (f *Fleet) sharedTracer() bool {
	if !f.sharedValid {
		f.shared = f.computeSharedTracer()
		f.sharedValid = true
	}
	return f.shared
}

func (f *Fleet) computeSharedTracer() bool {
	var seen *sim.Tracer
	for _, n := range f.nodes {
		tr := n.Tracer()
		if tr == nil {
			continue
		}
		if seen == tr {
			return true
		}
		if seen != nil {
			// Two distinct tracers so far; compare every pair the slow way.
			return f.sharedTracerSlow()
		}
		seen = tr
	}
	return false
}

func (f *Fleet) sharedTracerSlow() bool {
	seen := make(map[*sim.Tracer]bool, len(f.nodes))
	for _, n := range f.nodes {
		tr := n.Tracer()
		if tr == nil {
			continue
		}
		if seen[tr] {
			return true
		}
		seen[tr] = true
	}
	return false
}

// EnergyJ returns the fleet-wide energy rollup: the sum over nodes.
func (f *Fleet) EnergyJ() float64 {
	var sum float64
	for _, n := range f.nodes {
		sum += n.EnergyJ()
	}
	return sum
}

// Overhead returns the fleet-wide runtime-manager CPU time rollup.
func (f *Fleet) Overhead() sim.Time {
	var sum sim.Time
	for _, n := range f.nodes {
		sum += n.Overhead()
	}
	return sum
}

// HPS returns the fleet-wide heartbeat-rate rollup: the sum of the latest
// window rates of every live (non-exited) process across all nodes.
func (f *Fleet) HPS() float64 {
	var sum float64
	for _, n := range f.nodes {
		if n.NumProcs() == 0 {
			continue // never hosted anything: nothing to sum
		}
		for _, p := range n.Procs() {
			if p.Exited() {
				continue
			}
			if rec, ok := p.HB.Latest(); ok {
				sum += rec.WindowRate
			}
		}
	}
	return sum
}
