package core

import "testing"

func countBig(plan []bool) int {
	n := 0
	for _, b := range plan {
		if b {
			n++
		}
	}
	return n
}

// TestThreadClustersHierarchyEmpty covers the degenerate group lists: no
// groups at all, and groups that are all zero-sized.
func TestThreadClustersHierarchyEmpty(t *testing.T) {
	if plan := ThreadClustersHierarchy(nil, 3); plan != nil {
		t.Errorf("nil groups: plan = %v, want nil", plan)
	}
	if plan := ThreadClustersHierarchy([]int{}, 0); plan != nil {
		t.Errorf("empty groups: plan = %v, want nil", plan)
	}
	if plan := ThreadClustersHierarchy([]int{0, 0, 0}, 2); plan != nil {
		t.Errorf("all-zero groups: plan = %v, want nil", plan)
	}
}

// TestThreadClustersHierarchyZeroSizeGroupsMixed checks that zero-sized
// groups inside a hierarchy neither receive slots nor emit plan entries.
func TestThreadClustersHierarchyZeroSizeGroupsMixed(t *testing.T) {
	plan := ThreadClustersHierarchy([]int{2, 0, 2}, 2)
	if len(plan) != 4 {
		t.Fatalf("plan length = %d, want 4", len(plan))
	}
	if got := countBig(plan); got != 2 {
		t.Errorf("big slots = %d, want 2", got)
	}
}

// TestThreadClustersHierarchyTBOverflow: tb larger than the total thread
// count must clamp to "everything big", and negative tb to "everything
// little".
func TestThreadClustersHierarchyTBOverflow(t *testing.T) {
	plan := ThreadClustersHierarchy([]int{3, 2}, 99)
	if len(plan) != 5 {
		t.Fatalf("plan length = %d, want 5", len(plan))
	}
	if got := countBig(plan); got != 5 {
		t.Errorf("tb>t: big slots = %d, want all 5", got)
	}
	plan = ThreadClustersHierarchy([]int{3, 2}, -4)
	if got := countBig(plan); got != 0 {
		t.Errorf("tb<0: big slots = %d, want 0", got)
	}
}

// TestThreadClustersHierarchySingleThreadGroups: with every group of size
// one, exactly tb groups get a big slot and quotas never exceed group size.
func TestThreadClustersHierarchySingleThreadGroups(t *testing.T) {
	groups := []int{1, 1, 1, 1, 1, 1}
	for tb := 0; tb <= 6; tb++ {
		plan := ThreadClustersHierarchy(groups, tb)
		if len(plan) != 6 {
			t.Fatalf("tb=%d: plan length = %d, want 6", tb, len(plan))
		}
		if got := countBig(plan); got != tb {
			t.Errorf("tb=%d: big slots = %d", tb, got)
		}
	}
}

// TestThreadClustersHierarchyExactQuota sweeps mixed hierarchies and checks
// the largest-remainder distribution hands out exactly tb slots whenever
// tb ≤ t, never more than a group's size, and proportionally at the exact
// split points.
func TestThreadClustersHierarchyExactQuota(t *testing.T) {
	cases := [][]int{{4, 4}, {1, 7}, {2, 3, 3}, {5, 1, 1, 1}, {1, 2, 1, 2, 1, 2}}
	for _, groups := range cases {
		total := 0
		for _, g := range groups {
			total += g
		}
		for tb := 0; tb <= total; tb++ {
			plan := ThreadClustersHierarchy(groups, tb)
			if len(plan) != total {
				t.Fatalf("groups %v tb=%d: plan length = %d, want %d", groups, tb, len(plan), total)
			}
			if got := countBig(plan); got != tb {
				t.Errorf("groups %v tb=%d: big slots = %d", groups, tb, got)
			}
			// Per-group quota must never exceed the group size.
			off := 0
			for gi, g := range groups {
				if got := countBig(plan[off : off+g]); got > g {
					t.Errorf("groups %v tb=%d: group %d quota %d > size %d", groups, tb, gi, got, g)
				}
				off += g
			}
		}
	}
	// Exact proportional split: equal halves at tb=4 get two slots each.
	plan := ThreadClustersHierarchy([]int{4, 4}, 4)
	if a, b := countBig(plan[:4]), countBig(plan[4:]); a != 2 || b != 2 {
		t.Errorf("equal halves: quotas %d/%d, want 2/2", a, b)
	}
}
