package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/workload"
)

// ScenarioSweep runs a bank of seeded random dynamic-event scenarios — apps
// arriving and departing, cores hotplugging, clusters getting thermally
// capped, targets and workload phases shifting — through the HARS and
// MP-HARS managers on the parallel experiments engine, reporting each run's
// outcome and determinism digest. The digests make regressions in the
// dynamic reaction paths visible as a diff, the way the golden digests pin
// the static path.
func ScenarioSweep(e *Env) *Report {
	rep := &Report{Title: "Scenario sweep: seeded dynamic-event runs (arrival/departure, hotplug, DVFS caps, target & phase shifts)"}
	rep.Table.Header = []string{"scenario", "manager", "apps", "events", "beats", "energy (J)", "overhead", "digest"}

	type row struct {
		sc  *scenario.Scenario
		res *scenario.Result
		err error
	}
	managers := []string{
		scenario.ManagerHARSI, scenario.ManagerHARSE,
		scenario.ManagerMPHARSI, scenario.ManagerMPHARSE,
	}
	rows := make([]row, 0, 2*len(managers))
	for i, mgr := range managers {
		for _, seed := range []int64{int64(i) + 1, int64(i) + 101} {
			rows = append(rows, row{sc: scenario.Generate(seed, scenario.GenConfig{
				Manager:    mgr,
				DurationMS: 10000,
				Events:     6,
			})})
		}
	}
	parallelFor(len(rows), func(i int) {
		rows[i].res, rows[i].err = scenario.Run(rows[i].sc, scenario.Options{
			Strict: true,
			MaxRate: func(short string, threads int) float64 {
				// Reuse the environment's synchronized calibration cache
				// (keyed per benchmark at the scale's thread count).
				b, _ := workload.ByShort(short)
				return e.MaxRate(b)
			},
		})
	})
	for _, r := range rows {
		if r.err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s (%s): %v", r.sc.Name, r.sc.Manager, r.err))
			continue
		}
		beats := int64(0)
		for _, a := range r.res.Apps {
			beats += a.Beats
		}
		rep.Table.AddRow(
			r.sc.Name, r.sc.Manager,
			fmt.Sprint(len(r.sc.Apps)), fmt.Sprint(len(r.sc.Events)),
			fmt.Sprint(beats),
			fmt.Sprintf("%.1f", r.res.EnergyJ),
			fmt.Sprintf("%.2f%%", 100*r.res.Machine.OverheadUtil()),
			fmt.Sprintf("%016x", r.res.TraceDigest),
		)
	}
	rep.Notes = append(rep.Notes,
		"digests are FNV-64a over the full per-sample trace; identical runs ⇒ identical digests")
	return rep
}
