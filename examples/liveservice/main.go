// Live service control: the HARS control loop on a *real* Go worker pool,
// no simulator involved. A two-tier image-thumbnail service has heavyweight
// workers (full-quality pipeline) and lightweight workers (fast pipeline);
// the live controller holds a jobs-per-second target while minimizing a
// per-worker cost, actuating pool sizes and per-tier throttles exactly the
// way HARS actuates cores and DVFS.
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/live"
	"repro/internal/power"
)

// pool is a resizable two-tier worker pool. Each worker "processes a job"
// (a sleep whose length depends on tier and throttle) and beats.
type pool struct {
	ctrl   *live.Controller
	mu     sync.Mutex
	cancel []context.CancelFunc // one per running worker
	jobs   atomic.Int64
}

// apply resizes the pool to match the configuration: BigCores heavy
// workers at BigLevel throttle, LittleCores light workers at LittleLevel.
func (p *pool) apply(space *hmp.Platform, st hmp.State) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.cancel {
		c()
	}
	p.cancel = nil
	start := func(jobTime time.Duration) {
		ctx, cancel := context.WithCancel(context.Background())
		p.cancel = append(p.cancel, cancel)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(jobTime):
					p.jobs.Add(1)
					p.ctrl.Beat()
				}
			}
		}()
	}
	// Heavy workers are 1.5× faster per throttle step; throttle scales the
	// per-job time as frequency scales core speed.
	for i := 0; i < st.BigCores; i++ {
		base := 12 * time.Millisecond
		start(time.Duration(float64(base) / (1.5 * space.FreqScale(hmp.Big, st.BigLevel))))
	}
	for i := 0; i < st.LittleCores; i++ {
		base := 12 * time.Millisecond
		start(time.Duration(float64(base) / space.FreqScale(hmp.Little, st.LittleLevel)))
	}
}

func main() {
	space := hmp.Default() // 4 heavy + 4 light worker slots, throttle grids

	// Hand-written cost model: a heavy worker costs 4× a light one, and
	// cost grows quadratically with throttle (like dynamic power).
	cost := &power.LinearModel{}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		n := space.Clusters[k].Levels()
		cost.Alpha[k] = make([]float64, n)
		cost.Beta[k] = make([]float64, n)
		cost.R2[k] = make([]float64, n)
		tier := 1.0
		if k == hmp.Big {
			tier = 4.0
		}
		for lv := 0; lv < n; lv++ {
			s := space.FreqScale(k, lv)
			cost.Alpha[k][lv] = tier * s * s
			cost.Beta[k][lv] = 0.1 * tier
		}
	}

	p := &pool{}
	target := heartbeat.Target{Min: 320, Avg: 350, Max: 380} // jobs/s
	ctrl, err := live.NewController(live.Config{
		Space:      space,
		Cost:       cost,
		Target:     target,
		Units:      8,
		AdaptEvery: 150,
		Window:     200,
	}, live.ActuatorFunc(func(st hmp.State) { p.apply(space, st) }))
	if err != nil {
		panic(err)
	}
	p.ctrl = ctrl
	ctrl.OnDecision = func(from, to hmp.State, rate float64) {
		fmt.Printf("  adapt: %s -> %s (measured %.0f jobs/s)\n", from, to, rate)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Run(ctx, 50*time.Millisecond)

	fmt.Printf("target: %.0f jobs/s (band %.0f..%.0f); starting at max configuration\n",
		target.Avg, target.Min, target.Max)
	for i := 0; i < 6; i++ {
		time.Sleep(1 * time.Second)
		st := ctrl.State()
		fmt.Printf("t=%ds rate=%4.0f jobs/s config=%d heavy@L%d + %d light@L%d\n",
			i+1, ctrl.Rate(), st.BigCores, st.BigLevel, st.LittleCores, st.LittleLevel)
	}
	fmt.Printf("\nprocessed %d jobs; %d adaptation searches\n", p.jobs.Load(), ctrl.Searches())
	p.apply(space, hmp.State{}) // stop workers
}
