// Package heartbeat implements the Application Heartbeats framework of
// Hoffmann et al. [4], the observation channel of HARS's self-adaptive loop.
//
// A self-adaptive application emits a heartbeat each time it finishes a unit
// of work. The monitor records each beat with its index and timestamp and
// derives three rates: the instantaneous rate between consecutive beats, a
// windowed rate over the last W beats (what the HARS runtime manager
// compares against the target), and the global rate since the first beat.
// The application (or an external manager) registers a performance target as
// a (min, avg, max) band; HARS adapts whenever |rate − avg| > (max − min)/2.
package heartbeat

import (
	"fmt"
	"math"
	"sync"
)

// Time is a timestamp in microseconds, matching the simulator's clock.
type Time = int64

// Second is one second in heartbeat timestamps.
const Second Time = 1_000_000

// Target is a user-specified performance goal in heartbeats per second.
// HARS's evaluation sets Avg to a fraction of the maximum achievable rate
// and Min/Max to ±5% of that maximum around it.
type Target struct {
	Min float64 // minimum acceptable rate (t.min)
	Avg float64 // desired rate (t.avg)
	Max float64 // maximum useful rate (t.max)
}

// Band returns the half-width (max−min)/2 of the target band, the adaptation
// trigger threshold of the paper's Algorithm 1.
func (t Target) Band() float64 { return (t.Max - t.Min) / 2 }

// TargetAround builds the paper's ±band target around a desired rate:
// Avg = frac·max, Min/Max = (frac∓band)·max.
func TargetAround(maxRate, frac, band float64) Target {
	return Target{
		Min: (frac - band) * maxRate,
		Avg: frac * maxRate,
		Max: (frac + band) * maxRate,
	}
}

// Valid reports whether the target is a well-formed band.
func (t Target) Valid() bool {
	return t.Min > 0 && t.Min <= t.Avg && t.Avg <= t.Max
}

// Record is one logged heartbeat.
type Record struct {
	Index       int64   // 0-based heartbeat index
	Time        Time    // emission timestamp (µs)
	InstantRate float64 // rate vs. the previous beat (beats/s)
	WindowRate  float64 // rate over the trailing window (beats/s)
	GlobalRate  float64 // rate since the first beat (beats/s)
}

// Monitor is the heartbeat registry for one application.
//
// Monitor is safe for concurrent use; within the simulator all calls happen
// from the single simulation goroutine, but library users embedding a live
// actuator may beat from many goroutines.
type Monitor struct {
	mu     sync.Mutex
	name   string
	window int
	target Target

	// times holds the timestamps of all beats. Experiments are bounded
	// (minutes of simulated time at a few beats per second), so an append-only
	// log is fine and keeps the whole history inspectable.
	times   []Time
	records []Record
}

// NewMonitor creates a monitor using a trailing window of `window` beats for
// the windowed rate. Window must be ≥ 2; smaller values are raised to 2.
func NewMonitor(name string, window int) *Monitor {
	if window < 2 {
		window = 2
	}
	return &Monitor{name: name, window: window}
}

// Clone returns an independent deep copy of the monitor: same name, window,
// target, and beat history, sharing no mutable state with the original.
// Checkpoint snapshots use it so a restored incarnation's rate history
// diverges from the donor's from the snapshot point on.
func (m *Monitor) Clone() *Monitor {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &Monitor{name: m.name, window: m.window, target: m.target}
	c.times = append(c.times, m.times...)
	c.records = append(c.records, m.records...)
	return c
}

// Name returns the application name the monitor was registered with.
func (m *Monitor) Name() string { return m.name }

// Window returns the window length in beats.
func (m *Monitor) Window() int { return m.window }

// SetTarget registers the application's performance target.
func (m *Monitor) SetTarget(t Target) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.target = t
}

// Target returns the registered performance target.
func (m *Monitor) Target() Target {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.target
}

// Beat registers a heartbeat at the given timestamp and returns its record.
func (m *Monitor) Beat(now Time) Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := int64(len(m.times))
	m.times = append(m.times, now)
	r := Record{Index: idx, Time: now}
	if idx > 0 {
		r.InstantRate = rateBetween(m.times[idx-1], now, 1)
		first := m.times[0]
		r.GlobalRate = rateBetween(first, now, idx)
		w := int64(m.window)
		if idx >= w {
			r.WindowRate = rateBetween(m.times[idx-w], now, w)
		} else {
			r.WindowRate = r.GlobalRate
		}
	}
	m.records = append(m.records, r)
	return r
}

func rateBetween(t0, t1 Time, beats int64) float64 {
	dt := t1 - t0
	if dt <= 0 {
		return math.Inf(1)
	}
	return float64(beats) * float64(Second) / float64(dt)
}

// Count returns the number of beats recorded so far.
func (m *Monitor) Count() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.times))
}

// Latest returns the most recent record, or ok=false if none exists.
func (m *Monitor) Latest() (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.records) == 0 {
		return Record{}, false
	}
	return m.records[len(m.records)-1], true
}

// At returns the record at the given beat index.
func (m *Monitor) At(index int64) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if index < 0 || index >= int64(len(m.records)) {
		return Record{}, false
	}
	return m.records[index], true
}

// Records returns a copy of all records.
func (m *Monitor) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record(nil), m.records...)
}

// RateOver returns the average rate (beats/s) over the time span
// [from, to): the number of beats with from ≤ t < to divided by the span.
func (m *Monitor) RateOver(from, to Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if to <= from {
		return 0
	}
	n := 0
	for _, t := range m.times {
		if t >= from && t < to {
			n++
		}
	}
	return float64(n) * float64(Second) / float64(to-from)
}

// NormalizedPerf returns the paper's normalized performance min(g, h)/g for
// observed rate h against target average g: overperformance earns no credit.
func NormalizedPerf(target Target, rate float64) float64 {
	if target.Avg <= 0 {
		return 0
	}
	// Branch instead of math.Min: this sits inside the search function's
	// per-candidate scoring loop, and the operands are never NaN.
	if rate < target.Avg {
		return rate / target.Avg
	}
	return 1
}

// Satisfaction classifies a rate against a target band, the three-way state
// MP-HARS's decision table (Table 4.3) operates on.
type Satisfaction int

// The three performance-satisfaction states.
const (
	Underperf Satisfaction = iota // rate < Min
	Achieve                       // Min ≤ rate ≤ Max
	Overperf                      // rate > Max
)

// String renders the satisfaction state like the paper's Table 4.3.
func (s Satisfaction) String() string {
	switch s {
	case Underperf:
		return "Underperf"
	case Achieve:
		return "Achieve"
	case Overperf:
		return "Overperf"
	}
	return fmt.Sprintf("Satisfaction(%d)", int(s))
}

// Classify returns the satisfaction state of rate against the target band.
func Classify(target Target, rate float64) Satisfaction {
	switch {
	case rate < target.Min:
		return Underperf
	case rate > target.Max:
		return Overperf
	default:
		return Achieve
	}
}

// OutsideBand reports whether the adaptation trigger of Algorithm 1 fires:
// |rate − t.avg| > (t.max − t.min)/2.
func OutsideBand(target Target, rate float64) bool {
	return math.Abs(rate-target.Avg) > target.Band()
}
