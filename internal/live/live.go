// Package live runs the HARS control loop for real Go applications on wall
// -clock time, generalizing the paper's runtime beyond the simulator.
//
// The Go runtime hides OS threads, so the paper's literal knobs
// (sched_setaffinity, cpufreq) are not actuatable from process level.
// What a Go service does have is an equivalent two-tier resource space:
// heavyweight and lightweight workers (precise vs. approximate pipelines,
// large vs. small batch sizes, remote vs. local models, ...) with a
// throttle per tier. The live controller maps that space onto the paper's
// abstractions —
//
//	"big cores"      ↦ heavyweight worker slots
//	"little cores"   ↦ lightweight worker slots
//	"cluster DVFS"   ↦ per-tier throttle levels
//	"power"          ↦ any scalar cost (CPU-seconds, dollars, watts)
//
// — and reuses HARS verbatim: the application emits a heartbeat per unit of
// work, registers a target rate band, and the controller searches the
// neighbouring configurations for the best normalized-performance-per-cost,
// applying the winner through a caller-provided actuator.
//
// The clock is injectable, so the control loop is fully deterministic in
// tests; production callers use Run with a real ticker.
package live

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
)

// Clock abstracts wall-clock time for deterministic testing.
type Clock interface {
	Now() time.Time
}

// SystemClock is the production clock.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// Actuator applies a configuration to the application: resize worker pools,
// adjust throttles. It is called from the controller's Poll goroutine.
type Actuator interface {
	Apply(st hmp.State)
}

// ActuatorFunc adapts a function to the Actuator interface.
type ActuatorFunc func(st hmp.State)

// Apply implements Actuator.
func (f ActuatorFunc) Apply(st hmp.State) { f(st) }

// Config describes the application's knob space and control policy.
type Config struct {
	// Space describes the configuration space: cluster "cores" are worker
	// slots per tier and OPP grids are throttle levels. hmp.Default()
	// works for a generic 4+4-slot service; most callers define their own.
	Space *hmp.Platform

	// Cost is the per-tier, per-level cost model (the "power estimator"):
	// cost = α·(slots·utilization) + β. Build one by profiling, by
	// ReadModel, or by hand.
	Cost *power.LinearModel

	// Target is the heartbeat-rate band to hold.
	Target heartbeat.Target

	// Units is how many parallel units the application splits work into
	// (the paper's thread count T, driving the Table 3.1 split).
	Units int

	// Version selects the search flavour; HARS-EI is the default.
	Version core.Version

	// AdaptEvery is the adaptation period in heartbeats (default 10);
	// Window the rate window in beats (default 10).
	AdaptEvery int64
	Window     int

	// Clock defaults to the system clock.
	Clock Clock

	// InitState overrides the starting configuration (default: maximum).
	InitState *hmp.State
}

// Controller is the live HARS runtime manager.
type Controller struct {
	cfg   Config
	mon   *heartbeat.Monitor
	est   core.Estimators
	act   Actuator
	epoch time.Time

	mu        sync.Mutex
	state     hmp.State
	lastAdapt int64
	searches  int

	// OnDecision observes adaptations (called under the controller lock;
	// keep it fast).
	OnDecision func(from, to hmp.State, rate float64)
}

// NewController validates the configuration, applies the initial state
// through the actuator, and returns a ready controller.
func NewController(cfg Config, act Actuator) (*Controller, error) {
	if cfg.Space == nil {
		return nil, errors.New("live: Config.Space is required")
	}
	if err := cfg.Space.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cost == nil {
		return nil, errors.New("live: Config.Cost is required")
	}
	if !cfg.Target.Valid() {
		return nil, errors.New("live: Config.Target is not a valid band")
	}
	if cfg.Units <= 0 {
		return nil, errors.New("live: Config.Units must be positive")
	}
	if act == nil {
		return nil, errors.New("live: actuator is required")
	}
	if cfg.AdaptEvery <= 0 {
		cfg.AdaptEvery = 10
	}
	if cfg.Window <= 0 {
		cfg.Window = 10
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock{}
	}
	c := &Controller{
		cfg:   cfg,
		mon:   heartbeat.NewMonitor("live", cfg.Window),
		est:   core.NewEstimators(cfg.Space, cfg.Units, cfg.Cost),
		act:   act,
		epoch: cfg.Clock.Now(),
	}
	c.mon.SetTarget(cfg.Target)
	st := hmp.MaxState(cfg.Space)
	if cfg.InitState != nil {
		st = *cfg.InitState
	}
	c.state = st
	act.Apply(st)
	return c, nil
}

// Beat registers one completed unit of work. Safe for concurrent use from
// any goroutine.
func (c *Controller) Beat() {
	c.mon.Beat(c.cfg.Clock.Now().Sub(c.epoch).Microseconds())
}

// Rate returns the current window heartbeat rate (beats/second).
func (c *Controller) Rate() float64 {
	rec, ok := c.mon.Latest()
	if !ok {
		return 0
	}
	return rec.WindowRate
}

// State returns the configuration currently applied.
func (c *Controller) State() hmp.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Searches returns how many adaptation searches have run.
func (c *Controller) Searches() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.searches
}

// Poll runs one iteration of Algorithm 1: if the adaptation period has
// arrived and the window rate is outside the band, search the neighbourhood
// and actuate the winner. It reports whether the configuration changed.
func (c *Controller) Poll() bool {
	rec, ok := c.mon.Latest()
	if !ok {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec.Index < c.lastAdapt+c.cfg.AdaptEvery {
		return false
	}
	rate := rec.WindowRate
	if !heartbeat.OutsideBand(c.cfg.Target, rate) {
		return false
	}
	c.lastAdapt = rec.Index
	prm := versionParams(c.cfg.Version, rate > c.cfg.Target.Avg)
	res := core.Search(c.est, c.state, rate, c.cfg.Target, prm, core.Unbounded(c.cfg.Space))
	c.searches++
	if res.State == c.state {
		return false
	}
	from := c.state
	c.state = res.State
	if c.OnDecision != nil {
		c.OnDecision(from, res.State, rate)
	}
	c.act.Apply(res.State)
	return true
}

func versionParams(v core.Version, over bool) core.SearchParams {
	if v == core.HARSI {
		if over {
			return core.SearchParams{M: 1, N: 0, D: 1}
		}
		return core.SearchParams{M: 0, N: 1, D: 1}
	}
	return core.SearchParams{M: 4, N: 4, D: 7}
}

// Run polls on the given interval until the context is cancelled —
// the production control loop.
func (c *Controller) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Poll()
		}
	}
}
