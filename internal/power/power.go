// Package power provides the power side of the HARS reproduction:
//
//   - GroundTruth: a CMOS-style per-cluster power model (dynamic power
//     ∝ C·V²·f·utilization, plus voltage-dependent leakage and an uncore
//     term) that stands in for the physical Exynos 5422. It implements
//     sim.PowerModel and is deliberately *richer* than what HARS assumes, so
//     that fitting the paper's linear model is a genuine approximation step,
//     exactly as on the real board.
//   - Sensor: a sampled power meter with the ODROID-XU3's 263,808 µs
//     sampling period.
//   - Microbench: the paper's profiling microbenchmark — a configurable
//     duty-cycled load over (cores × frequency × utilization).
//   - LinearModel: the paper's estimator form P = α·(C_U·U_U) + β per
//     cluster and frequency level, fitted from profiled sensor data with
//     least squares (Equations 3.1 and 3.2).
package power

import (
	"fmt"
	"sync"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// SensorPeriod is the power-sensor sampling period of the ODROID-XU3 board
// used in the paper (263,808 µs).
const SensorPeriod sim.Time = 263_808

// ClusterParams are the ground-truth power parameters of one cluster.
type ClusterParams struct {
	// DynCoeff is dynamic power in W per V² per GHz for one fully busy core.
	DynCoeff float64
	// LeakPerVolt is leakage in W per volt for one powered core.
	LeakPerVolt float64
	// Uncore is the cluster-shared power (interconnect, L2) drawn while the
	// cluster has any busy core; an idle cluster draws UncoreIdleFrac of it.
	Uncore         float64
	UncoreIdleFrac float64
}

// GroundTruth is the "real hardware" power model of the simulated board.
type GroundTruth struct {
	Plat   *hmp.Platform
	Params [hmp.NumClusters]ClusterParams

	// Per-level constants hoisted out of the per-tick ClusterPower call,
	// built once on first use (tablesOnce makes the build safe under the
	// concurrent sharing oracle.FindStatic's parallel sweep does):
	// dynCoef[k][lv] = DynCoeff·V²·f_GHz (the multiplier of effUtil per
	// busy core) and leakW[k][lv] = LeakPerVolt·V·cores. Plat and Params
	// must not be mutated after the first ClusterPower call.
	tablesOnce sync.Once
	dynCoef    [hmp.NumClusters][]float64
	leakW      [hmp.NumClusters][]float64
}

// buildTables precomputes the per-level constants, preserving the exact
// multiplication order of the historical per-call computation so energy
// accounting stays bit-for-bit identical.
func (g *GroundTruth) buildTables() {
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		c := &g.Plat.Clusters[k]
		prm := &g.Params[k]
		n := c.Levels()
		g.dynCoef[k] = make([]float64, n)
		g.leakW[k] = make([]float64, n)
		for lv := 0; lv < n; lv++ {
			v := float64(c.MilliVolt(lv)) / 1000
			fGHz := float64(c.KHz(lv)) / 1e6
			g.dynCoef[k][lv] = prm.DynCoeff * v * v * fGHz
			g.leakW[k][lv] = prm.LeakPerVolt * v * float64(c.Cores)
		}
	}
}

// DefaultGroundTruth returns Exynos-5422-flavoured parameters: a big cluster
// drawing ≈6–7 W fully loaded at 1.6 GHz and a little cluster drawing
// ≈1.5 W at 1.3 GHz. The per-level tables are built eagerly (the parameters
// are fixed here, so the "no mutation after first use" rule is trivially
// met): construction pays the allocations, and the first tick of a run —
// possibly deep inside a fleet's timed hot loop, once per node — does not.
func DefaultGroundTruth(p *hmp.Platform) *GroundTruth {
	g := &GroundTruth{
		Plat: p,
		Params: [hmp.NumClusters]ClusterParams{
			hmp.Little: {DynCoeff: 0.20, LeakPerVolt: 0.030, Uncore: 0.10, UncoreIdleFrac: 0.25},
			hmp.Big:    {DynCoeff: 0.85, LeakPerVolt: 0.180, Uncore: 0.35, UncoreIdleFrac: 0.25},
		},
	}
	g.tablesOnce.Do(g.buildTables)
	return g
}

// effUtil is the mild non-linearity of dynamic power in utilization
// (pipeline and memory effects); it keeps the paper's linear model an
// approximation rather than an identity.
func effUtil(u float64) float64 { return 0.85*u + 0.15*u*u }

// clusterPowerWithLeak is the dynamic + uncore computation shared by both
// entry points; the caller supplies the leakage watts so the operation order
// — and therefore the bit pattern — is identical whichever path runs.
func (g *GroundTruth) clusterPowerWithLeak(k hmp.ClusterKind, level int, coreBusy []float64, leak float64) float64 {
	coef := g.dynCoef[k][level]
	prm := &g.Params[k]
	dyn := 0.0
	anyBusy := false
	for _, u := range coreBusy {
		if u > 0 {
			anyBusy = true
		}
		dyn += coef * effUtil(u)
	}
	uncore := prm.Uncore * prm.UncoreIdleFrac
	if anyBusy {
		uncore = prm.Uncore
	}
	return dyn + leak + uncore
}

// ClusterPower implements sim.PowerModel.
func (g *GroundTruth) ClusterPower(k hmp.ClusterKind, level int, coreBusy []float64) float64 {
	g.tablesOnce.Do(g.buildTables)
	level = g.Plat.Clusters[k].ClampLevel(level)
	return g.clusterPowerWithLeak(k, level, coreBusy, g.leakW[k][level])
}

// ClusterPowerOnline implements sim.OnlinePowerModel: a hotplugged-off core
// is power-gated, so it stops contributing leakage to its cluster. Dynamic
// power needs no adjustment — an offline core executes nothing, so its busy
// fraction is zero — and the uncore term is cluster-shared, drawn as long as
// the cluster domain itself is powered. With every core online the result is
// bit-for-bit ClusterPower's (the leakage expression repeats the table
// build's exact operation order).
func (g *GroundTruth) ClusterPowerOnline(k hmp.ClusterKind, level int, coreBusy []float64, onlineCores int) float64 {
	g.tablesOnce.Do(g.buildTables)
	c := &g.Plat.Clusters[k]
	level = c.ClampLevel(level)
	if onlineCores < 0 {
		onlineCores = 0
	} else if onlineCores > c.Cores {
		onlineCores = c.Cores
	}
	v := float64(c.MilliVolt(level)) / 1000
	leak := g.Params[k].LeakPerVolt * v * float64(onlineCores)
	return g.clusterPowerWithLeak(k, level, coreBusy, leak)
}

// Sample is one power-sensor reading: average cluster watts over one
// sampling window ending at T.
type Sample struct {
	T       sim.Time
	WattsBy [hmp.NumClusters]float64
}

// TotalWatts returns the sum over clusters.
func (s Sample) TotalWatts() float64 {
	t := 0.0
	for _, w := range s.WattsBy {
		t += w
	}
	return t
}

// Sensor periodically samples per-cluster average power from the machine's
// energy counters, as the board's INA231 sensors do. It is a sim.Daemon.
type Sensor struct {
	Period sim.Time

	samples    []Sample
	lastEnergy [hmp.NumClusters]float64
	lastT      sim.Time
	started    bool
}

// NewSensor returns a sensor with the board's sampling period.
func NewSensor() *Sensor { return &Sensor{Period: SensorPeriod} }

// Tick implements sim.Daemon.
func (s *Sensor) Tick(m *sim.Machine) {
	now := m.Now()
	if !s.started {
		s.started = true
		s.lastT = now
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			s.lastEnergy[k] = m.ClusterEnergyJ(k)
		}
		return
	}
	if now-s.lastT < s.Period {
		return
	}
	dt := sim.Seconds(now - s.lastT)
	var smp Sample
	smp.T = now
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		e := m.ClusterEnergyJ(k)
		smp.WattsBy[k] = (e - s.lastEnergy[k]) / dt
		s.lastEnergy[k] = e
	}
	s.lastT = now
	s.samples = append(s.samples, smp)
}

// Samples returns the collected readings.
func (s *Sensor) Samples() []Sample { return s.samples }

// MeanWatts averages the collected readings for cluster k.
func (s *Sensor) MeanWatts(k hmp.ClusterKind) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	t := 0.0
	for _, smp := range s.samples {
		t += smp.WattsBy[k]
	}
	return t / float64(len(s.samples))
}

// LinearModel is the paper's power-estimator form, one (α, β) pair per
// cluster per frequency level:
//
//	P_k = α_{k,f} · C_U · U_U + β_{k,f}            (Equations 3.1, 3.2)
type LinearModel struct {
	Alpha [hmp.NumClusters][]float64
	Beta  [hmp.NumClusters][]float64
	// R2 is the per-cluster, per-level goodness of fit of the regression.
	R2 [hmp.NumClusters][]float64
}

// SyntheticLinearModel returns the repository's standard hand-written model
// fixture: α = 0.5·f/f₀ and β = 0.2 at every level of both clusters. The
// golden-digest equivalence tests, the tracked search benchmarks, and the
// scenario engine's default estimator model all share this one definition,
// so they are guaranteed to score candidates identically.
func SyntheticLinearModel(plat *hmp.Platform) *LinearModel {
	lm := &LinearModel{}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		n := plat.Clusters[k].Levels()
		lm.Alpha[k] = make([]float64, n)
		lm.Beta[k] = make([]float64, n)
		for lv := 0; lv < n; lv++ {
			lm.Alpha[k][lv] = 0.5 * plat.FreqScale(k, lv)
			lm.Beta[k][lv] = 0.2
		}
	}
	return lm
}

// Estimate returns the estimated cluster power for coresUsed cores at
// average utilization util. Zero used cores estimate zero watts: the
// estimator treats an unused cluster as power-gated, matching the paper's
// application-attributed accounting.
func (lm *LinearModel) Estimate(k hmp.ClusterKind, level int, coresUsed int, util float64) float64 {
	if coresUsed <= 0 {
		return 0
	}
	if level < 0 {
		level = 0
	}
	if level >= len(lm.Alpha[k]) {
		level = len(lm.Alpha[k]) - 1
	}
	p := lm.Alpha[k][level]*float64(coresUsed)*util + lm.Beta[k][level]
	if p < 0 {
		return 0
	}
	return p
}

// EstimateState sums the two cluster estimates for a full system state with
// the given used core counts and utilizations.
func (lm *LinearModel) EstimateState(st hmp.State, bigUsed, littleUsed int, bigUtil, littleUtil float64) float64 {
	return lm.Estimate(hmp.Big, st.BigLevel, bigUsed, bigUtil) +
		lm.Estimate(hmp.Little, st.LittleLevel, littleUsed, littleUtil)
}

// String summarizes the model.
func (lm *LinearModel) String() string {
	return fmt.Sprintf("power.LinearModel{big levels: %d, little levels: %d}",
		len(lm.Alpha[hmp.Big]), len(lm.Alpha[hmp.Little]))
}
