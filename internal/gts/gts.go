// Package gts models the Linux HMP Global Task Scheduling (GTS) scheduler,
// the kernel scheduler of the paper's evaluation platform (Linux 3.10.51)
// and the scheduler underneath the baseline, static-optimal, and CONS-I
// versions.
//
// GTS tracks a decayed per-thread load average and migrates threads between
// clusters with two thresholds: a thread on the little cluster whose load
// exceeds the up-migration threshold moves to the big cluster, and a thread
// on the big cluster whose load falls below the down-migration threshold
// moves to the little cluster. Within a cluster, runnable threads are
// balanced across cores.
//
// The model reproduces the behaviour the paper leans on: CPU-intensive
// multithreaded applications saturate their load averages, so GTS piles
// every thread onto the big cluster and leaves the little cores idle even
// when the big cluster is over-committed ("the Linux HMP scheduler does not
// schedule like that", §4.1.1).
package gts

import (
	"math"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// LoadScale is the fixed-point load unit of the load tracker (a fully busy
// thread converges to a load of 1024, as in the kernel).
const LoadScale = 1024.0

// Scheduler is the GTS placement policy. It implements sim.Placer.
type Scheduler struct {
	// Up and Down are the up/down migration thresholds on the 0..1024 load
	// scale. Kernel defaults for big.LITTLE MP were ~700 and ~256.
	Up, Down float64

	// PeriodTicks is how many ticks pass between migration passes.
	PeriodTicks int

	// Decay is the per-tick geometric decay of the load average; the
	// default corresponds to a ~32 ms half-life at 1 ms ticks.
	Decay float64

	// Allowed is the global cpuset: cores outside it are invisible to GTS.
	// The static-optimal and CONS-I versions restrict it to the allocated
	// cores of the chosen system state.
	Allowed hmp.CPUMask

	// UpQueueLimit gates up-migration: a hot little thread moves to the big
	// cluster only while the destination queue stays within this limit.
	// The default (2) lets CPU-bound threads pile two-deep onto big cores
	// while the little cores idle — the big-cluster bias of §4.1.1.
	UpQueueLimit int

	// PullThresholdLittle and PullThresholdBig gate idle balancing: an idle
	// core pulls from a run queue at least this long. Little cores are
	// reluctant (default 3: spill only under heavy overcommit, as GTS's
	// restricted down-balancing was); big cores pull normally (default 2).
	PullThresholdLittle int
	PullThresholdBig    int

	plat   *hmp.Platform
	loads  []float64
	ticks  int
	counts []int
	online hmp.CPUMask // machine hotplug state, refreshed every Place
}

// New returns a GTS scheduler with kernel-flavoured defaults, allowed to use
// every core of the platform.
func New(plat *hmp.Platform) *Scheduler {
	return &Scheduler{
		Up:                  700,
		Down:                256,
		PeriodTicks:         4,
		Decay:               math.Pow(0.5, 1.0/32),
		Allowed:             hmp.AllCPUs(plat),
		UpQueueLimit:        2,
		PullThresholdLittle: 3,
		PullThresholdBig:    2,
		plat:                plat,
		online:              hmp.AllCPUs(plat),
	}
}

// SetAllowed restricts GTS to the given cpuset. An empty mask panics: the
// machine would be unschedulable.
func (g *Scheduler) SetAllowed(mask hmp.CPUMask) {
	if mask == 0 {
		panic("gts: empty allowed cpuset")
	}
	g.Allowed = mask
}

// Load returns the current load average of a thread (0..1024). New threads
// start fully loaded, as freshly woken tasks do in the kernel.
func (g *Scheduler) Load(t *sim.Thread) float64 {
	if t.Global >= len(g.loads) {
		return LoadScale
	}
	return g.loads[t.Global]
}

// Place implements sim.Placer. It deliberately does NOT implement
// sim.QuiescentPlacer: the migration pass fires on a count of Place
// invocations (g.ticks below), so even a Place call that moves nothing
// advances internal phase — skipping it would shift every later migration
// pass. Machines driven by the GTS model therefore always step in lockstep.
func (g *Scheduler) Place(m *sim.Machine) {
	g.online = m.OnlineMask()
	threads := m.Threads()
	for len(g.loads) < len(threads) {
		g.loads = append(g.loads, LoadScale)
	}
	// Update load averages.
	for _, t := range threads {
		target := 0.0
		if t.RanLastTick() {
			target = LoadScale
		}
		g.loads[t.Global] = g.loads[t.Global]*g.Decay + target*(1-g.Decay)
	}

	nc := m.Platform().TotalCores()
	if cap(g.counts) < nc {
		g.counts = make([]int, nc)
	}
	counts := g.counts[:nc]
	for i := range counts {
		counts[i] = 0
	}
	for _, t := range threads {
		if t.Runnable() && t.Core() >= 0 && g.permitted(t, t.Core()) {
			counts[t.Core()]++
		}
	}

	// Repair threads placed outside their permitted set.
	for _, t := range threads {
		if !t.Runnable() {
			continue
		}
		if t.Core() >= 0 && g.permitted(t, t.Core()) {
			continue
		}
		if cpu := g.leastLoaded(m, t, counts, hmp.CPUMask(math.MaxUint64)); cpu >= 0 {
			m.Migrate(t, cpu)
			counts[cpu]++
		}
	}

	g.ticks++
	if g.ticks%g.PeriodTicks == 0 {
		g.migrationPass(m, threads, counts)
	}
	g.balanceClusters(m, threads, counts)
}

func (g *Scheduler) permitted(t *sim.Thread, cpu int) bool {
	return t.Affinity().Has(cpu) && g.Allowed.Has(cpu) && g.online.Has(cpu)
}

// leastLoaded returns the permitted CPU (further restricted by `within`)
// with the fewest runnable threads, or -1.
func (g *Scheduler) leastLoaded(m *sim.Machine, t *sim.Thread, counts []int, within hmp.CPUMask) int {
	best := -1
	for cpu := 0; cpu < len(counts); cpu++ {
		if !g.permitted(t, cpu) || !within.Has(cpu) {
			continue
		}
		if best < 0 || counts[cpu] < counts[best] {
			best = cpu
		}
	}
	return best
}

// migrationPass applies the up/down threshold rules, then one idle-balance
// sweep. Hot little threads migrate up eagerly (piling two-deep onto the
// big cores while the little cores idle — the paper's §4.1.1 observation),
// but not past UpQueueLimit, which prevents ping-pong against the reluctant
// little-ward idle balance under heavy overcommit.
func (g *Scheduler) migrationPass(m *sim.Machine, threads []*sim.Thread, counts []int) {
	plat := m.Platform()
	bigMask := hmp.ClusterMask(plat, hmp.Big)
	littleMask := hmp.ClusterMask(plat, hmp.Little)
	for _, t := range threads {
		if !t.Runnable() || t.Core() < 0 {
			continue
		}
		load := g.loads[t.Global]
		switch plat.ClusterOf(t.Core()) {
		case hmp.Little:
			if load > g.Up {
				cpu := g.leastLoaded(m, t, counts, bigMask)
				if cpu >= 0 && counts[cpu]+1 <= g.UpQueueLimit {
					counts[t.Core()]--
					m.Migrate(t, cpu)
					counts[cpu]++
				}
			}
		case hmp.Big:
			if load < g.Down {
				if cpu := g.leastLoaded(m, t, counts, littleMask); cpu >= 0 {
					counts[t.Core()]--
					m.Migrate(t, cpu)
					counts[cpu]++
				}
			}
		}
	}
	g.idleBalance(m, threads, counts)
}

// idleBalance pulls one runnable thread onto each idle allowed core from the
// longest permitted run queue, provided that queue reaches the pulling
// cluster's threshold. Little cores pull reluctantly (only under heavy
// big-cluster overcommit), mirroring GTS's restricted down-balancing.
func (g *Scheduler) idleBalance(m *sim.Machine, threads []*sim.Thread, counts []int) {
	plat := g.plat
	for cpu := 0; cpu < len(counts); cpu++ {
		if counts[cpu] != 0 || !g.Allowed.Has(cpu) || !g.online.Has(cpu) {
			continue
		}
		threshold := g.PullThresholdBig
		if plat.ClusterOf(cpu) == hmp.Little {
			threshold = g.PullThresholdLittle
		}
		var victim *sim.Thread
		for _, t := range threads {
			if !t.Runnable() || t.Core() < 0 || t.Core() == cpu {
				continue
			}
			if counts[t.Core()] < threshold || !g.permitted(t, cpu) {
				continue
			}
			if victim == nil || counts[t.Core()] > counts[victim.Core()] {
				victim = t
			}
		}
		if victim != nil {
			counts[victim.Core()]--
			m.Migrate(victim, cpu)
			counts[cpu]++
		}
	}
}

// balanceClusters does one intra-cluster load-balance sweep with hysteresis.
func (g *Scheduler) balanceClusters(m *sim.Machine, threads []*sim.Thread, counts []int) {
	plat := m.Platform()
	for _, t := range threads {
		if !t.Runnable() || t.Core() < 0 {
			continue
		}
		cur := t.Core()
		k := plat.ClusterOf(cur)
		first := plat.FirstCPU(k)
		best := cur
		for cpu := first; cpu < first+plat.Clusters[k].Cores; cpu++ {
			if cpu == cur || !g.permitted(t, cpu) {
				continue
			}
			if counts[cpu] < counts[best]-1 {
				best = cpu
			}
		}
		if best != cur {
			counts[cur]--
			counts[best]++
			m.Migrate(t, best)
		}
	}
}
