package power

import (
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// GroundTruth must satisfy the machine's online-aware extension so
// hotplugged-off cores stop leaking.
var _ sim.OnlinePowerModel = (*GroundTruth)(nil)

func TestClusterPowerOnlineLeakageExclusion(t *testing.T) {
	plat := hmp.Default()
	gt := DefaultGroundTruth(plat)
	idle := make([]float64, 4)

	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		c := &plat.Clusters[k]
		for lv := 0; lv <= c.MaxLevel(); lv++ {
			// Full online count must agree bit-for-bit with ClusterPower.
			if got, want := gt.ClusterPowerOnline(k, lv, idle, c.Cores), gt.ClusterPower(k, lv, idle); got != want {
				t.Fatalf("%s level %d: all-online %v != ClusterPower %v", k, lv, got, want)
			}
			// Each offline core removes exactly one core's leakage.
			v := float64(c.MilliVolt(lv)) / 1000
			perCore := gt.Params[k].LeakPerVolt * v
			prev := gt.ClusterPowerOnline(k, lv, idle, c.Cores)
			for online := c.Cores - 1; online >= 0; online-- {
				got := gt.ClusterPowerOnline(k, lv, idle, online)
				if got >= prev {
					t.Fatalf("%s level %d: power did not drop going to %d online (%v -> %v)",
						k, lv, online, prev, got)
				}
				if diff := prev - got; diff < perCore*0.999 || diff > perCore*1.001 {
					t.Fatalf("%s level %d: leakage step %v per offline core, want %v", k, lv, diff, perCore)
				}
				prev = got
			}
		}
	}

	// Out-of-range online counts clamp instead of extrapolating.
	if got, want := gt.ClusterPowerOnline(hmp.Big, 3, idle, 99), gt.ClusterPower(hmp.Big, 3, idle); got != want {
		t.Fatalf("over-count not clamped: %v != %v", got, want)
	}
	if got, want := gt.ClusterPowerOnline(hmp.Big, 3, idle, -1), gt.ClusterPowerOnline(hmp.Big, 3, idle, 0); got != want {
		t.Fatalf("negative count not clamped: %v != %v", got, want)
	}
}

// TestMachineOfflineLeakage pins the satellite fix end to end: on an idle
// machine, taking big cores offline must lower the integrated power, and
// bringing them back must restore it exactly.
func TestMachineOfflineLeakage(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: DefaultGroundTruth(plat)})

	perSecond := func() float64 {
		e0 := m.ClusterEnergyJ(hmp.Big)
		m.Run(1 * sim.Second)
		return m.ClusterEnergyJ(hmp.Big) - e0
	}

	base := perSecond()
	m.SetCoreOnline(plat.CPU(hmp.Big, 2), false)
	m.SetCoreOnline(plat.CPU(hmp.Big, 3), false)
	reduced := perSecond()
	if reduced >= base {
		t.Fatalf("offline cores still leak: %v J/s -> %v J/s", base, reduced)
	}
	// Two offline cores remove exactly two cores of leakage at the current
	// level and voltage.
	gt := DefaultGroundTruth(plat)
	v := float64(plat.Clusters[hmp.Big].MilliVolt(m.Level(hmp.Big))) / 1000
	wantDrop := 2 * gt.Params[hmp.Big].LeakPerVolt * v
	if diff := base - reduced; diff < wantDrop*0.999 || diff > wantDrop*1.001 {
		t.Fatalf("leakage drop = %v J/s, want %v", diff, wantDrop)
	}

	m.SetCoreOnline(plat.CPU(hmp.Big, 2), true)
	m.SetCoreOnline(plat.CPU(hmp.Big, 3), true)
	restored := perSecond()
	// The per-tick increment is bit-identical again, but the running energy
	// sum rounds differently at a different magnitude — compare the
	// window deltas with a correspondingly tight tolerance.
	if diff := restored - base; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("restored power %v != baseline %v", restored, base)
	}

	// The little cluster, untouched, must be unaffected throughout.
	idleLittle := DefaultGroundTruth(plat).ClusterPower(hmp.Little, m.Level(hmp.Little), make([]float64, 4))
	littlePerSec := m.ClusterEnergyJ(hmp.Little) / sim.Seconds(m.Now())
	if diff := littlePerSec - idleLittle; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("little cluster power drifted: %v vs %v", littlePerSec, idleLittle)
	}
}
