package hmp

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the platform description, so users can capture and
// share custom board definitions.
func (p *Platform) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("hmp: encode platform: %w", err)
	}
	return nil
}

// ReadPlatform parses and validates a platform description produced by
// WriteJSON (or written by hand for a custom board).
func ReadPlatform(r io.Reader) (*Platform, error) {
	var p Platform
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("hmp: decode platform: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// The Kind fields are redundant with array position; fix them up so a
	// hand-written file can omit them.
	p.Clusters[Little].Kind = Little
	p.Clusters[Big].Kind = Big
	return &p, nil
}
