package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// twoNodeDecisionScenario is the counterfactual test bed: two identical
// nodes, migration disabled, so the only decision is app0's admission at
// t=0 — forcing it is exactly equivalent to pinning the app.
func twoNodeDecisionScenario() *Scenario {
	return &Scenario{
		Name:       "cf-2",
		Manager:    ManagerMPHARSI,
		DurationMS: 3000,
		Placement:  "least-loaded",
		// Migration off: the admission pick is the run's only decision.
		MigrateEveryMS: -1,
		Nodes:          []NodeSpec{{Name: "n0"}, {Name: "n1"}},
		Apps: []AppSpec{
			{Name: "app0", Bench: "SW", Threads: 4, TargetFrac: 0.5,
				SLO: &SLOSpec{TargetHPS: 20, SlackMS: 150}},
		},
	}
}

var fixedMaxRate = func(string, int) float64 { return 50 }

// TestDecisionStreamMatchesAcrossCores is the decision-observability
// equivalence suite (the satellite companion to TestEventCoreMatchesLockstep):
// generated thermal+SLO+fault fleet scenarios with decision tracing enabled
// replay through the lockstep core, the event-driven core, and the
// worker-sharded event core, and the full trace — decision "d" lines
// included — must be byte-identical across all three. Runs under -race in
// CI, which also hunts the sharded path for data races in the decision
// recording.
func TestDecisionStreamMatchesAcrossCores(t *testing.T) {
	policies := []string{"least-loaded", "big-first", "coolest", "slo-aware"}
	for seed := int64(1); seed <= 4; seed++ {
		placement := policies[(seed-1)%int64(len(policies))]
		sc := Generate(seed, GenConfig{
			Nodes:      3,
			MaxApps:    3,
			Events:     5,
			DurationMS: 6000,
			Placement:  placement,
			Thermal:    seed%2 == 0,
			Periodic:   true,
			Faults:     true,
			Decisions:  true,
		})
		sc.Checkpoint = &CheckpointSpec{FreezeUS: 30_000, PerMBUS: 1_000, SizeMB: 8}
		for i := range sc.Apps {
			sc.Apps[i].SLO = &SLOSpec{TargetHPS: 20, SlackMS: 150}
		}

		run := func(lockstep bool, workers int) (string, uint64, uint64) {
			var buf bytes.Buffer
			res, err := Run(sc, Options{
				Trace:    &buf,
				MaxRate:  fixedMaxRate,
				Strict:   true,
				Lockstep: lockstep,
				Workers:  workers,
			})
			if err != nil {
				t.Fatalf("seed %d (%s, lockstep=%v workers=%d): %v",
					seed, placement, lockstep, workers, err)
			}
			return buf.String(), res.TraceDigest, res.Decisions.Decisions
		}

		refTrace, refDigest, refDecisions := run(true, 1)
		if refDecisions == 0 || !strings.Contains(refTrace, "\nd,") {
			t.Fatalf("seed %d: no decisions on the trace surface", seed)
		}
		for _, v := range []struct {
			name    string
			workers int
		}{{"event", 1}, {"event-sharded", 4}} {
			trace, digest, decisions := run(false, v.workers)
			if digest != refDigest {
				t.Errorf("seed %d (%s): %s digest %016x != lockstep %016x",
					seed, placement, v.name, digest, refDigest)
			}
			if trace != refTrace {
				t.Errorf("seed %d (%s): %s trace diverged from lockstep (%s)",
					seed, placement, v.name, firstDiff(trace, refTrace))
			}
			if decisions != refDecisions {
				t.Errorf("seed %d (%s): %s made %d decisions, lockstep %d",
					seed, placement, v.name, decisions, refDecisions)
			}
		}
	}
}

// TestDecisionTraceAdditive pins the gating contract: decision tracing only
// ADDS lines ("# d" header, "d," rows) to a trace — stripping them yields
// the disabled run's bytes exactly, so with tracing off nothing in the
// output can tell the decision layer exists.
func TestDecisionTraceAdditive(t *testing.T) {
	sc := Generate(2, GenConfig{
		Nodes: 3, MaxApps: 3, Events: 5, DurationMS: 4000,
		Placement: "least-loaded", Periodic: true, Faults: true,
	})

	run := func(traceDecisions bool) string {
		var buf bytes.Buffer
		_, err := Run(sc, Options{Trace: &buf, MaxRate: fixedMaxRate, TraceDecisions: traceDecisions})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	off := run(false)
	on := run(true)
	if strings.Contains(off, "\nd,") || strings.Contains(off, "# d,") {
		t.Fatal("decision lines leaked into an untraced run")
	}
	if !strings.Contains(on, "\nd,") {
		t.Fatal("decision tracing produced no d lines")
	}
	var stripped strings.Builder
	for _, line := range strings.SplitAfter(on, "\n") {
		if strings.HasPrefix(line, "d,") || strings.HasPrefix(line, "# d,") {
			continue
		}
		stripped.WriteString(line)
	}
	if stripped.String() != off {
		t.Fatalf("decision tracing perturbed the underlying trace (%s)",
			firstDiff(stripped.String(), off))
	}
}

// TestCounterfactualMatchesPinnedSpec is the acceptance check for the
// forcing seam: forcing app0's admission (decision 0) onto n1 must produce
// exactly the run an independently written spec with the app pinned to n1
// produces — byte-identical trace digests, identical rollups.
func TestCounterfactualMatchesPinnedSpec(t *testing.T) {
	sc := twoNodeDecisionScenario()
	opts := Options{MaxRate: fixedMaxRate, Strict: true}

	// Baseline: least-loaded ties to n0.
	base, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Apps[0].Node != "n0" {
		t.Fatalf("baseline placed app0 on %q", base.Apps[0].Node)
	}

	fopts := opts
	fopts.ForceDecisions = map[uint64]string{0: "n1"}
	forced, err := Run(sc, fopts)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Apps[0].Node != "n1" {
		t.Fatalf("forced run placed app0 on %q", forced.Apps[0].Node)
	}

	pinned := twoNodeDecisionScenario()
	pinned.Apps[0].Node = "n1"
	pres, err := Run(pinned, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pres.TraceDigest != forced.TraceDigest {
		t.Fatalf("forced digest %016x != pinned-spec digest %016x",
			forced.TraceDigest, pres.TraceDigest)
	}
	if forced.EnergyJ != pres.EnergyJ || forced.SLOMisses != pres.SLOMisses {
		t.Fatalf("forced run diverged from pinned spec: energy %v/%v misses %d/%d",
			forced.EnergyJ, pres.EnergyJ, forced.SLOMisses, pres.SLOMisses)
	}

	// Unknown node names reject the run instead of silently no-oping.
	bad := opts
	bad.ForceDecisions = map[uint64]string{0: "n9"}
	if _, err := Run(sc, bad); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("unknown forced node accepted: %v", err)
	}
}

// TestRunCounterfactual pins the counterfactual engine end to end: the
// report's baseline matches a direct run, the alternatives are the
// non-chosen eligible candidates in score order, and each alternative's
// deltas equal an independently forced replay's outcomes minus baseline.
func TestRunCounterfactual(t *testing.T) {
	sc := twoNodeDecisionScenario()
	opts := Options{MaxRate: fixedMaxRate}

	cf, err := RunCounterfactual(sc, opts, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cf.ID != 0 || cf.Decision.App != "app0" || cf.Decision.Chosen != "n0" {
		t.Fatalf("counterfactual decision = %+v", cf.Decision)
	}
	if len(cf.Alternatives) != 1 || cf.Alternatives[0].Node != "n1" {
		t.Fatalf("alternatives = %+v", cf.Alternatives)
	}

	base, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cf.BaselineSLOMisses != base.SLOMisses || cf.BaselineEnergyJ != base.EnergyJ {
		t.Fatalf("baseline mismatch: %+v vs %+v", cf, base)
	}

	fopts := opts
	fopts.ForceDecisions = map[uint64]string{0: "n1"}
	forced, err := Run(sc, fopts)
	if err != nil {
		t.Fatal(err)
	}
	alt := cf.Alternatives[0]
	if alt.SLOMisses != forced.SLOMisses || alt.EnergyJ != forced.EnergyJ ||
		alt.NodeMigrations != forced.NodeMigrations {
		t.Fatalf("alternative outcomes %+v != forced run (%d, %v, %d)",
			alt, forced.SLOMisses, forced.EnergyJ, forced.NodeMigrations)
	}
	if alt.DSLOMisses != forced.SLOMisses-base.SLOMisses ||
		alt.DEnergyJ != forced.EnergyJ-base.EnergyJ {
		t.Fatalf("deltas wrong: %+v", alt)
	}

	// Regret is non-negative and consistent with the single alternative.
	rm, re := cf.Regret()
	if rm < 0 {
		t.Fatalf("negative regret %d", rm)
	}
	if wantM := -alt.DSLOMisses; wantM > 0 && rm != wantM {
		t.Fatalf("regret misses = %d, want %d", rm, wantM)
	}
	_ = re

	// An ID the run never reached is a clear error.
	if _, err := RunCounterfactual(sc, opts, 999, 3); err == nil ||
		!strings.Contains(err.Error(), "not recorded") {
		t.Fatalf("unrecorded decision accepted: %v", err)
	}
}

// TestDecisionSpecValidation pins the spec surface: a negative keep is
// rejected, an enabled block survives a JSON round trip, and the records
// land in Result.DecisionRecords with the log's retention honoured.
func TestDecisionSpecValidation(t *testing.T) {
	sc := twoNodeDecisionScenario()
	sc.Decisions = &DecisionSpec{Enabled: true, Keep: -1}
	if _, err := Run(sc, Options{MaxRate: fixedMaxRate}); err == nil ||
		!strings.Contains(err.Error(), "negative keep") {
		t.Fatalf("negative keep accepted: %v", err)
	}

	sc.Decisions = &DecisionSpec{Enabled: true, Keep: 1}
	res, err := Run(sc, Options{MaxRate: fixedMaxRate})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions.Decisions == 0 {
		t.Fatal("no decisions in the rollup")
	}
	if len(res.DecisionRecords) != 1 {
		t.Fatalf("kept %d records, want the keep=1 cap", len(res.DecisionRecords))
	}
	if res.Decisions.Decisions > 1 && res.DecisionsDropped == 0 {
		t.Fatalf("dropped count missing: %+v", res.Decisions)
	}

	var enc bytes.Buffer
	if err := sc.Encode(&enc); err != nil {
		t.Fatal(err)
	}
	rt, err := Decode(&enc)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Decisions == nil || !rt.Decisions.Enabled || rt.Decisions.Keep != 1 {
		t.Fatalf("decisions block lost in round trip: %+v", rt.Decisions)
	}
}
