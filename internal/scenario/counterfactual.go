package scenario

import (
	"fmt"
	"sort"

	"repro/internal/decision"
)

// Alternative is one counterfactual replay: the run re-executed from t=0
// with the scheduler forced to choose Node at the forked decision, every
// other decision left to the policy. Deltas are alternative minus baseline,
// so a negative DSLOMisses means the alternative would have missed less.
type Alternative struct {
	// Node is the forced choice; Score its policy score as recorded at
	// the baseline decision.
	Node  string
	Score float64

	// Absolute outcomes of the forced replay.
	SLOMisses      int
	EnergyJ        float64
	NodeMigrations int

	// Regret deltas: alternative minus baseline.
	DSLOMisses      int
	DEnergyJ        float64
	DNodeMigrations int
}

// Counterfactual is the outcome of forking one recorded decision: the
// decision itself, the baseline run's rollups, and one Alternative per
// forced top-k candidate, in descending recorded-score order.
type Counterfactual struct {
	// ID is the forked decision's ID; Decision its baseline record.
	ID       uint64
	Decision decision.Record

	// Baseline rollups of the unforced run.
	BaselineSLOMisses      int
	BaselineEnergyJ        float64
	BaselineNodeMigrations int

	Alternatives []Alternative
}

// Regret returns the realized regret of the recorded choice: how many SLO
// misses — and, tie-broken at equal misses, how much energy (J) — the best
// alternative would have saved over the horizon. Both are zero when no
// alternative beat the chosen placement.
func (c *Counterfactual) Regret() (misses int, energyJ float64) {
	for _, a := range c.Alternatives {
		saveM, saveE := -a.DSLOMisses, -a.DEnergyJ
		if saveM > misses || (saveM == misses && saveE > energyJ) {
			misses, energyJ = saveM, saveE
		}
	}
	return misses, energyJ
}

// RunCounterfactual forks a deterministic scenario at one recorded
// decision: it replays the baseline with decision tracing on, locates the
// decision with the given ID, ranks its non-chosen eligible candidates by
// recorded score (descending, ties in node-index order), and re-runs the
// whole scenario once per top-k alternative with that choice forced
// (Options.ForceDecisions) — everything before the forked decision is
// bit-identical by determinism, everything after follows the policy under
// the altered placement. k <= 0 selects 3. The passed Options drive every
// replay except Trace (suppressed — one run's trace bytes are not k+1
// runs') and the decision-tracing/forcing fields, which the engine owns.
func RunCounterfactual(sc *Scenario, opts Options, id uint64, k int) (*Counterfactual, error) {
	if k <= 0 {
		k = 3
	}
	base := opts
	base.Trace = nil
	base.TraceDecisions = true
	base.ForceDecisions = nil
	bres, err := Run(sc, base)
	if err != nil {
		return nil, err
	}
	var rec *decision.Record
	for i := range bres.DecisionRecords {
		if bres.DecisionRecords[i].ID == id {
			rec = &bres.DecisionRecords[i]
			break
		}
	}
	if rec == nil {
		return nil, fmt.Errorf("scenario: decision %d not recorded (the run made %d decisions, the log kept %d)",
			id, bres.Decisions.Decisions, len(bres.DecisionRecords))
	}
	// The alternatives: eligible (scored, unexcluded) candidates the
	// decision did not act on. A placed/moved outcome excludes the chosen
	// node — re-forcing it only reproduces the baseline — but a gated or
	// failed outcome excludes nothing: the pick's preferred node never
	// actually ran the app, so forcing it replays exactly the move the
	// gate (or the fault) held back, and it ranks first by score.
	acted := rec.Outcome == decision.OutcomePlaced || rec.Outcome == decision.OutcomeMoved
	alts := make([]decision.Candidate, 0, len(rec.Candidates))
	for _, c := range rec.Candidates {
		if c.Reason != "" || (acted && c.Node == rec.Chosen) {
			continue
		}
		alts = append(alts, c)
	}
	sort.SliceStable(alts, func(i, j int) bool { return alts[i].Score > alts[j].Score })
	if len(alts) > k {
		alts = alts[:k]
	}
	out := &Counterfactual{
		ID:                     id,
		Decision:               *rec,
		BaselineSLOMisses:      bres.SLOMisses,
		BaselineEnergyJ:        bres.EnergyJ,
		BaselineNodeMigrations: bres.NodeMigrations,
	}
	for _, alt := range alts {
		fopts := opts
		fopts.Trace = nil
		fopts.TraceDecisions = false
		fopts.ForceDecisions = map[uint64]string{id: alt.Node}
		fres, err := Run(sc, fopts)
		if err != nil {
			return nil, fmt.Errorf("scenario: counterfactual %d -> %s: %w", id, alt.Node, err)
		}
		out.Alternatives = append(out.Alternatives, Alternative{
			Node:            alt.Node,
			Score:           alt.Score,
			SLOMisses:       fres.SLOMisses,
			EnergyJ:         fres.EnergyJ,
			NodeMigrations:  fres.NodeMigrations,
			DSLOMisses:      fres.SLOMisses - bres.SLOMisses,
			DEnergyJ:        fres.EnergyJ - bres.EnergyJ,
			DNodeMigrations: fres.NodeMigrations - bres.NodeMigrations,
		})
	}
	return out, nil
}
