// Package decision is the fleet scheduler's observability layer: a typed
// record of every placement decision — admission picks, migrate-pass picks
// (including moves the score gate declined), and crash re-placements — with
// the full scored candidate set, plus the always-on metric rollups
// (decision counts, score margins, queue-wait histogram) the scheduler
// surfaces through fleet.Stats.
//
// Recording is pure observation: the scheduler assigns monotonic decision
// IDs and updates the rollup whether or not a Sink is attached, and a
// Sink's presence never changes a decision. Decisions only happen inside
// fleet hook ticks, which run on the main goroutine at the same barrier
// ticks under the lockstep, event-driven, and worker-sharded cores — so a
// decision stream is deterministic and byte-identical across all three,
// and forcing a decision by ID (the counterfactual replay seam in
// fleet.Config.Force) addresses the same decision in every replay.
package decision

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a scheduler decision.
type Kind uint8

const (
	// Admit is an admission pick for an arriving or queued application.
	Admit Kind = iota
	// Migrate is a migrate-pass destination pick for a saturated node's
	// victim application.
	Migrate
	// Recover is an admission pick re-placing an application salvaged off
	// a node declared failed.
	Recover
	// Gated is a migrate-pass pick the destination-score gate declined:
	// the policy preferred keeping the victim where it sits, and the move
	// is recorded as an explicit no-op instead of silently skipped.
	Gated
)

// String names the decision kind.
func (k Kind) String() string {
	switch k {
	case Admit:
		return "admit"
	case Migrate:
		return "migrate"
	case Recover:
		return "recover"
	case Gated:
		return "gated"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Exclusion reasons a Candidate may carry. An empty reason means the node
// was scored and eligible; any other marks why the pick passed it over.
const (
	// ReasonSource marks the migration source node: excluded from the pick
	// by construction, but scored anyway so the record shows what the gate
	// and the counterfactual engine compared against.
	ReasonSource = "source"
	// ReasonPinned marks a node the application's pin rules out.
	ReasonPinned = "pinned"
	// ReasonDown marks a node the failure detector declares failed.
	ReasonDown = "down"
	// ReasonFull marks a node without admission capacity (no free core in
	// either partition).
	ReasonFull = "full"
	// ReasonMinFree marks a node under the migration free-core floor.
	ReasonMinFree = "min-free"
)

// Decision outcomes.
const (
	// OutcomePlaced: the admission succeeded and the app runs on Chosen.
	OutcomePlaced = "placed"
	// OutcomeMoved: the migrate-pass move succeeded.
	OutcomeMoved = "moved"
	// OutcomeHeld: the score gate declined the move (Gated decisions).
	OutcomeHeld = "held"
	// OutcomeNoCandidate: no admissible node existed; the app stays queued
	// (or the saturated node keeps its victim).
	OutcomeNoCandidate = "no-candidate"
	// OutcomeNoCapacity: the chosen node bounced the admission (capacity
	// vanished between the pick and the registration, or the machine is
	// dead); the app re-queues.
	OutcomeNoCapacity = "no-capacity"
	// OutcomeTransferFailed: the checkpoint transfer to the chosen node
	// failed transiently; the app re-queues into retry backoff.
	OutcomeTransferFailed = "transfer-failed"
)

// Candidate is one node of a decision's candidate set: its policy score,
// or the reason it was excluded (excluded nodes score -Inf, except the
// migration source, which keeps its real score for gate analysis).
type Candidate struct {
	Node   string
	Score  float64
	Reason string // "" = scored and eligible
}

// Record is one scheduler decision.
type Record struct {
	// ID is the decision's monotonic sequence number within the run,
	// assigned deterministically whether or not recording is on.
	ID uint64
	// T is the shared fleet clock at the decision.
	T sim.Time
	// Kind classifies the decision; App names the application it placed.
	Kind Kind
	App  string
	// From is the node the application currently occupies (migrate and
	// gated decisions), "" otherwise.
	From string
	// Chosen is the node the pick selected ("" when none was admissible).
	Chosen string
	// Outcome is what became of the choice (Outcome* constants).
	Outcome string
	// Margin is the winner's score lead over the runner-up, 0 unless at
	// least two eligible candidates scored finitely.
	Margin float64
	// Candidates is the full candidate set in node-index order. Nil when
	// the scheduler ran without an observer.
	Candidates []Candidate
}

// FormatCandidates renders a candidate set compactly and byte-stably:
// "node:score" per scored candidate, "node:score:reason" per excluded one,
// joined by "|". Scores render as hexadecimal floats (%x), so -Inf
// exclusions and exact ties survive a round trip through text.
func FormatCandidates(cands []Candidate) string {
	var b strings.Builder
	for i, c := range cands {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s:%x", c.Node, c.Score)
		if c.Reason != "" {
			b.WriteByte(':')
			b.WriteString(c.Reason)
		}
	}
	return b.String()
}

// Detail renders the record's payload (everything but ID, time, and app)
// as one space-free CSV-safe token sequence, the form sim.Tracer's gated
// decision column carries.
func (r Record) Detail() string {
	from, to := r.From, r.Chosen
	if from == "" {
		from = "-"
	}
	if to == "" {
		to = "-"
	}
	return fmt.Sprintf("%s %s>%s %s margin=%x %s",
		r.Kind, from, to, r.Outcome, r.Margin, FormatCandidates(r.Candidates))
}

// Event converts the record to a sim tracer event (EvDecision): the app in
// Proc, the decision ID in Decision, and the rendered payload in Detail.
func (r Record) Event() sim.Event {
	return sim.Event{T: r.T, Kind: sim.EvDecision, Proc: r.App, Decision: r.ID, Detail: r.Detail()}
}

// Sink consumes decision records as the scheduler makes them. Sinks run on
// the main simulation goroutine inside hook ticks; they must not mutate
// scheduler or fleet state.
type Sink interface {
	Decision(Record)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record)

// Decision implements Sink.
func (f SinkFunc) Decision(r Record) { f(r) }

// Tee fans every record out to several sinks in order.
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(r Record) {
		for _, s := range sinks {
			s.Decision(r)
		}
	})
}

// TracerSink forwards records to a sim.Tracer as EvDecision events,
// subject to the tracer's own retention cap.
type TracerSink struct {
	Tr *sim.Tracer
}

// Decision implements Sink.
func (s TracerSink) Decision(r Record) { s.Tr.Record(r.Event()) }

// Log is a bounded in-memory Sink: records beyond Max are counted and
// dropped, mirroring sim.Tracer's retention discipline (a backed-up queue
// can generate one failed pick per app per tick).
type Log struct {
	// Max bounds retained records; 0 selects 100,000.
	Max int

	records []Record
	dropped int64
}

// Decision implements Sink.
func (l *Log) Decision(r Record) {
	max := l.Max
	if max <= 0 {
		max = 100_000
	}
	if len(l.records) >= max {
		l.dropped++
		return
	}
	l.records = append(l.records, r)
}

// Records returns the retained records in decision order.
func (l *Log) Records() []Record { return l.records }

// Dropped returns how many records exceeded the retention cap.
func (l *Log) Dropped() int64 { return l.dropped }

// QueueWaitBoundsUS are the queue-wait histogram's inclusive upper bucket
// bounds in microseconds; a sixth bucket catches everything beyond the
// last bound. The first bucket is exact-zero: admissions that never waited.
var QueueWaitBoundsUS = [5]int64{0, 1_000, 10_000, 100_000, 1_000_000}

// QueueWaitBuckets is the number of queue-wait histogram buckets.
const QueueWaitBuckets = len(QueueWaitBoundsUS) + 1

// QueueWait is a fixed-bound histogram of admission queue latency: the
// time from an application joining the admission queue (arrival, requeue
// after a bounced move, or crash salvage) to its successful admission.
type QueueWait struct {
	Counts  [QueueWaitBuckets]int64
	TotalUS int64
	MaxUS   int64
}

// Observe folds one admission wait (µs) into the histogram.
func (q *QueueWait) Observe(us int64) {
	if us < 0 {
		us = 0
	}
	i := 0
	for i < len(QueueWaitBoundsUS) && us > QueueWaitBoundsUS[i] {
		i++
	}
	q.Counts[i]++
	q.TotalUS += us
	if us > q.MaxUS {
		q.MaxUS = us
	}
}

// Observations returns the total number of recorded waits.
func (q *QueueWait) Observations() int64 {
	var n int64
	for _, c := range q.Counts {
		n += c
	}
	return n
}

// MeanUS returns the mean wait in microseconds (0 with no observations).
func (q *QueueWait) MeanUS() float64 {
	n := q.Observations()
	if n == 0 {
		return 0
	}
	return float64(q.TotalUS) / float64(n)
}

// String renders the histogram compactly: one "bound:count" pair per
// bucket, the overflow bucket labelled "inf".
func (q *QueueWait) String() string {
	labels := [QueueWaitBuckets]string{"0", "1ms", "10ms", "100ms", "1s", "inf"}
	var b strings.Builder
	for i, c := range q.Counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", labels[i], c)
	}
	return b.String()
}

// Rollup is the always-on decision-metrics aggregate the scheduler keeps
// regardless of whether a Sink is attached, exposed as fleet.Stats.
// Decisions. Everything here is a pure function of the decision stream, so
// the rollup too is identical across the lockstep, event, and sharded
// cores.
type Rollup struct {
	// Decisions counts decision points, i.e. the next decision ID.
	Decisions uint64
	// Admissions counts successful queue/arrival admissions (including
	// the Replacements subset); Replacements the successful re-placements
	// of crash-recovered apps; Migrations the successful migrate-pass
	// moves; GatedMigrations the moves the score gate declined;
	// NoCandidate the picks that found no admissible node.
	Admissions      int
	Replacements    int
	Migrations      int
	GatedMigrations int
	NoCandidate     int
	// MarginSum/MarginCount aggregate the winner-minus-runner-up score
	// margin over decisions with at least two finitely scored candidates.
	MarginSum   float64
	MarginCount int
	// QueueWait histograms the admission queue latency.
	QueueWait QueueWait
}

// MeanMargin returns the mean score margin (0 with no scored margins, NaN
// never).
func (r *Rollup) MeanMargin() float64 {
	if r.MarginCount == 0 {
		return 0
	}
	m := r.MarginSum / float64(r.MarginCount)
	if math.IsNaN(m) {
		return 0
	}
	return m
}
