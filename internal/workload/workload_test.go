package workload_test

import (
	"math"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestDataParallelBarrier(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	m.SetLevel(hmp.Little, 0)
	m.SetLevel(hmp.Big, 0)
	d := &workload.DataParallel{
		AppName: "dp", Threads: 2, BigFactor: 2.0,
		Unit: workload.ConstUnit(1.0),
	}
	p := m.Spawn("dp", d, 4)
	// Thread 0 on a big core (2.0 units/s at f0 for BigFactor 2), thread 1
	// on little (1.0 units/s): the barrier makes the little thread the
	// bottleneck — 1 iteration per second.
	p.SetAffinity(0, hmp.MaskOf(4))
	p.SetAffinity(1, hmp.MaskOf(0))
	m.Run(10 * sim.Second)
	if n := p.HB.Count(); n < 9 || n > 10 {
		t.Fatalf("beats = %d, want ≈10 (slowest-thread bound)", n)
	}
	if it := d.Iteration(); it < 9 || it > 10 {
		t.Errorf("iterations = %d, want ≈10", it)
	}
	// The big thread must have idled at the barrier about half the time.
	if u := m.Util(4); u > 0.6 {
		t.Errorf("big core util = %v, want ≈0.5 (barrier wait)", u)
	}
}

func TestDataParallelStartDelay(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	d := &workload.DataParallel{
		AppName: "dp", Threads: 4, BigFactor: 1.5,
		Unit:       workload.ConstUnit(0.2),
		StartDelay: 5 * sim.Second,
	}
	p := m.Spawn("dp", d, 4)
	m.Run(4 * sim.Second)
	if n := p.HB.Count(); n != 0 {
		t.Fatalf("beats during startup phase = %d, want 0", n)
	}
	m.Run(6 * sim.Second)
	if n := p.HB.Count(); n == 0 {
		t.Fatal("no beats after startup phase")
	}
}

func TestDataParallelVariation(t *testing.T) {
	var seen []int64
	d := &workload.DataParallel{
		AppName: "dp", Threads: 1, BigFactor: 1.5,
		Unit: func(iter int64) float64 {
			seen = append(seen, iter)
			return 0.1
		},
	}
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	m.Spawn("dp", d, 4)
	m.Run(1 * sim.Second)
	if len(seen) < 3 {
		t.Fatalf("Unit called %d times, want several", len(seen))
	}
	for i, it := range seen {
		if it != int64(i) {
			t.Fatalf("Unit iterations = %v, want 0,1,2,...", seen)
		}
	}
}

func TestPipelineThroughputBottleneck(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	m.SetLevel(hmp.Little, 0)
	pl := &workload.Pipeline{
		AppName:      "pipe",
		StageThreads: []int{1, 2, 1},
		StageWork:    []float64{0.1, 0.4, 0.1},
		QueueCap:     4,
		BigFactor:    1.0,
	}
	p := m.Spawn("pipe", pl, 4)
	// Pin everything to the little cluster at f0: 1 unit/s per core, one
	// thread per core → stage capacities 10, 5, 10 items/s → 5 items/s.
	for i := 0; i < 4; i++ {
		p.SetAffinity(i, hmp.MaskOf(i))
	}
	m.Run(20 * sim.Second)
	rate := float64(p.HB.Count()) / 20
	if math.Abs(rate-5) > 0.4 {
		t.Fatalf("pipeline rate = %v items/s, want ≈5 (middle-stage bound)", rate)
	}
	if pl.Items() != p.HB.Count() {
		t.Errorf("Items = %d, beats = %d, want equal", pl.Items(), p.HB.Count())
	}
}

func TestPipelineStageMapping(t *testing.T) {
	pl := &workload.Pipeline{
		AppName:      "pipe",
		StageThreads: []int{1, 3, 2},
		StageWork:    []float64{0.1, 0.1, 0.1},
		BigFactor:    1.5,
	}
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	m.Spawn("pipe", pl, 4)
	want := []int{0, 1, 1, 1, 2, 2}
	if pl.NumThreads() != len(want) {
		t.Fatalf("NumThreads = %d, want %d", pl.NumThreads(), len(want))
	}
	for i, w := range want {
		if got := pl.StageOf(i); got != w {
			t.Errorf("StageOf(%d) = %d, want %d", i, got, w)
		}
	}
	if pl.Stages() != 3 {
		t.Errorf("Stages = %d, want 3", pl.Stages())
	}
}

func TestPipelineNoStallUnderImbalance(t *testing.T) {
	// A fast producer into a slow consumer must not deadlock and must keep
	// making progress (bounded queues + blocked-producer resume).
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	pl := &workload.Pipeline{
		AppName:      "pipe",
		StageThreads: []int{2, 1},
		StageWork:    []float64{0.01, 0.5}, // producer 50× faster
		QueueCap:     2,
		BigFactor:    1.0,
	}
	p := m.Spawn("pipe", pl, 4)
	m.Run(10 * sim.Second)
	first := p.HB.Count()
	if first == 0 {
		t.Fatal("pipeline made no progress")
	}
	m.Run(10 * sim.Second)
	second := p.HB.Count() - first
	if second == 0 {
		t.Fatal("pipeline stalled in second half (deadlock?)")
	}
	if ratio := float64(second) / float64(first); ratio < 0.8 || ratio > 1.25 {
		t.Errorf("throughput drifted: %d then %d items", first, second)
	}
}

func TestPipelineValidation(t *testing.T) {
	pl := &workload.Pipeline{
		AppName:      "bad",
		StageThreads: []int{1, 1},
		StageWork:    []float64{0.1}, // mismatched
		BigFactor:    1,
	}
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	defer func() {
		if recover() == nil {
			t.Error("mismatched stage config should panic")
		}
	}()
	m.Spawn("bad", pl, 4)
}

func TestBenchmarkCatalog(t *testing.T) {
	all := workload.All()
	if len(all) != 6 {
		t.Fatalf("benchmarks = %d, want 6", len(all))
	}
	wantShorts := []string{"BL", "BO", "FA", "FE", "FL", "SW"}
	for i, b := range all {
		if b.Short != wantShorts[i] {
			t.Errorf("benchmark %d short = %s, want %s", i, b.Short, wantShorts[i])
		}
		prog := b.New(8)
		if prog.Name() != b.Name {
			t.Errorf("%s: program name %q", b.Short, prog.Name())
		}
		if prog.NumThreads() < 8 {
			t.Errorf("%s: %d threads, want ≥ 8", b.Short, prog.NumThreads())
		}
	}
	if _, ok := workload.ByShort("BL"); !ok {
		t.Error("ByShort(BL) failed")
	}
	if _, ok := workload.ByShort("XX"); ok {
		t.Error("ByShort(XX) should fail")
	}
	if _, ok := workload.ByName("ferret"); !ok {
		t.Error("ByName(ferret) failed")
	}
	if _, ok := workload.ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
	if got := workload.Shorts(); len(got) != 6 {
		t.Errorf("Shorts = %v", got)
	}
}

func TestBlackscholesTraits(t *testing.T) {
	b, _ := workload.ByShort("BL")
	prog := b.New(8)
	// The defining trait: no speedup on big cores.
	if f := prog.SpeedFactor(0, hmp.Big); f != 1.0 {
		t.Errorf("blackscholes big factor = %v, want 1.0", f)
	}
	dp, ok := prog.(*workload.DataParallel)
	if !ok {
		t.Fatal("blackscholes should be data-parallel")
	}
	if dp.StartDelay == 0 {
		t.Error("blackscholes must have a heartbeat-less startup phase")
	}
}

func TestFerretTraits(t *testing.T) {
	b, _ := workload.ByShort("FE")
	prog := b.New(8)
	pl, ok := prog.(*workload.Pipeline)
	if !ok {
		t.Fatal("ferret should be a pipeline")
	}
	if pl.Stages() != 6 {
		t.Errorf("ferret stages = %d, want 6", pl.Stages())
	}
	if pl.NumThreads() != 4*8+2 {
		t.Errorf("ferret threads = %d, want 34", pl.NumThreads())
	}
}

func TestBenchmarksRunUnderDefaultPlacement(t *testing.T) {
	// Smoke test: every benchmark makes progress on the default machine.
	for _, b := range workload.All() {
		b := b
		t.Run(b.Short, func(t *testing.T) {
			plat := hmp.Default()
			m := sim.New(plat, sim.Config{})
			p := m.Spawn(b.Name, b.New(8), 8)
			m.Run(20 * sim.Second)
			if p.HB.Count() == 0 {
				t.Fatalf("%s emitted no heartbeats in 20 s", b.Short)
			}
		})
	}
}
