// Package thermal closes the thermal loop of the HARS reproduction: instead
// of scripting DVFS ceilings as external events, it derives them from
// simulated heat with a sense→model→actuate daemon layered over the machine,
// in the style of reflective runtimes (MARS) and model-driven resource
// managers.
//
// # The RC model
//
// Each cluster is one node of a lumped RC thermal network — a thermal
// capacitance C (J/K) holding the node's heat, a thermal resistance R (K/W)
// to the ambient sink, and an optional inter-cluster coupling conductance G
// (W/K) modeling shared silicon between the two clusters:
//
//	C_k · dT_k/dt = P_k + G·(T_j − T_k) − (T_k − T_amb)/R_k
//
// P_k is the cluster's electrical power for the tick, taken from the
// machine's power model (sim.Machine.LastTickPowerW) — including the
// leakage term, which the power side keeps honest by excluding
// hotplugged-off cores (sim.OnlinePowerModel). The equation is integrated
// with one forward-Euler step per simulator tick in a fixed evaluation
// order, so a replay is bit-for-bit reproducible; the per-tick temperature
// rise is bounded by P·Δt/C (≈ 10 mK at the defaults), which is also the
// slack the governor's trip guarantee carries.
//
// Steady state sits at T_amb + P·R (coupling aside): with the default
// constants the big cluster fully loaded at 1.6 GHz (≈ 9 W) heads toward
// ≈ 115 °C and trips, while at its lowest OPP (≈ 3 W) it settles near 55 °C,
// safely under the default 75 °C trip point — hard-throttling is therefore
// always sufficient to cool a cluster, which is what makes the governor's
// ceiling guarantee hold.
//
// # The governor
//
// Governor is a sim.Daemon implementing hysteretic throttling over three
// temperature zones per cluster:
//
//	T ≥ trip_c:              clamp the DVFS ceiling to min_level at once
//	                         (checked every tick — the emergency path)
//	throttle_c ≤ T < trip_c: lower the ceiling one level per period
//	release_c < T < throttle_c: hold (the hysteresis band)
//	T ≤ release_c:           raise the ceiling one level per period
//
// Ceilings move through sim.Machine.SetLevelCap, the same knob scripted
// thermal capping uses, so managers react through their existing
// bounds-clamping paths (core.MachineBounds, mphars.ReconcilePlatform).
// Every actuation emits an EvThrottle trace event carrying the triggering
// temperature, and temperatures are sampled into EvTemp events on a fixed
// cadence. The governor assumes it owns the ceilings; mixing it with
// scripted dvfs_cap events is last-writer-wins (the scenario format rejects
// the combination).
//
// Spec is the JSON configuration block (embedded in scenario files under
// "thermal"); DecodeSpec is its strict decoder. The zero Spec resolves to
// the default constants below.
package thermal

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// Default model and governor constants, chosen so the default platform's
// big cluster trips under sustained full load in a few simulated seconds
// (time constant R·C = 10 s for both clusters) while the little cluster's
// full-load steady state (≈ 62 °C) stays inside the hysteresis band.
const (
	DefaultAmbientC = 25.0
	DefaultTripC    = 75.0
	DefaultReleaseC = 60.0
	DefaultBigC     = 1.0  // J/K
	DefaultBigR     = 10.0 // K/W
	DefaultLittleC  = 0.5  // J/K
	DefaultLittleR  = 20.0 // K/W
	DefaultPeriodMS = 10   // graduated step cadence, in ticks (1 ms each)
	DefaultSampleMS = 100  // EvTemp cadence
)

// ClusterRC are one cluster node's lumped thermal constants. Zero fields
// resolve to the cluster's defaults.
type ClusterRC struct {
	// CapacitanceJPerK is the node's thermal capacitance C in J/K.
	CapacitanceJPerK float64 `json:"capacitance_j_per_k,omitempty"`
	// ResistanceKPerW is the node's thermal resistance R to ambient in K/W.
	ResistanceKPerW float64 `json:"resistance_k_per_w,omitempty"`
}

// Spec is the thermal configuration block of a scenario: model constants,
// governor thresholds, and the enable flag. The zero value (and any zero
// field) resolves to the package defaults; WithDefaults returns the resolved
// form.
type Spec struct {
	// Enabled turns the closed loop on. A disabled spec is still validated,
	// but no model or governor is attached — the run is bit-for-bit the
	// uninstrumented one.
	Enabled bool `json:"enabled"`

	// AmbientC is the heat-sink temperature in °C (default 25; negative
	// ambients are valid, but 0 means "default" — the repository's usual
	// zero-value convention).
	AmbientC float64 `json:"ambient_c,omitempty"`
	// InitC is the initial cluster temperature (default: ambient; 0 means
	// "default" here too).
	InitC float64 `json:"init_c,omitempty"`

	// TripC, ThrottleC, and ReleaseC are the governor's zone boundaries in
	// °C: hard-throttle at trip (default 75), step ceilings down above
	// throttle (default midway between release and trip), step them back up
	// below release (default 60). Must satisfy ambient < release <
	// throttle < trip.
	TripC     float64 `json:"trip_c,omitempty"`
	ThrottleC float64 `json:"throttle_c,omitempty"`
	ReleaseC  float64 `json:"release_c,omitempty"`

	// MinLevel is the ceiling floor the governor will not throttle below
	// (default 0, the lowest OPP).
	MinLevel int `json:"min_level,omitempty"`
	// PeriodTicks is the graduated step cadence in simulator ticks
	// (default 10). The trip clamp ignores it and fires every tick.
	PeriodTicks int `json:"period_ticks,omitempty"`
	// SampleEveryMS is the EvTemp trace cadence (default 100).
	SampleEveryMS int64 `json:"sample_every_ms,omitempty"`

	// CouplingWPerK is the inter-cluster coupling conductance G in W/K
	// (default 0: thermally isolated clusters).
	CouplingWPerK float64 `json:"coupling_w_per_k,omitempty"`

	// Big and Little override the per-cluster RC constants.
	Big    *ClusterRC `json:"big,omitempty"`
	Little *ClusterRC `json:"little,omitempty"`
}

// WithDefaults returns the spec with every zero field replaced by its
// default, the form the model and governor actually run with.
func (s Spec) WithDefaults() Spec {
	if s.AmbientC == 0 {
		s.AmbientC = DefaultAmbientC
	}
	if s.TripC == 0 {
		s.TripC = DefaultTripC
	}
	if s.ReleaseC == 0 {
		s.ReleaseC = DefaultReleaseC
	}
	if s.ThrottleC == 0 {
		s.ThrottleC = (s.ReleaseC + s.TripC) / 2
	}
	if s.InitC == 0 {
		s.InitC = s.AmbientC
	}
	if s.PeriodTicks == 0 {
		s.PeriodTicks = DefaultPeriodMS
	}
	if s.SampleEveryMS == 0 {
		s.SampleEveryMS = DefaultSampleMS
	}
	big := ClusterRC{CapacitanceJPerK: DefaultBigC, ResistanceKPerW: DefaultBigR}
	if s.Big != nil {
		if s.Big.CapacitanceJPerK != 0 {
			big.CapacitanceJPerK = s.Big.CapacitanceJPerK
		}
		if s.Big.ResistanceKPerW != 0 {
			big.ResistanceKPerW = s.Big.ResistanceKPerW
		}
	}
	little := ClusterRC{CapacitanceJPerK: DefaultLittleC, ResistanceKPerW: DefaultLittleR}
	if s.Little != nil {
		if s.Little.CapacitanceJPerK != 0 {
			little.CapacitanceJPerK = s.Little.CapacitanceJPerK
		}
		if s.Little.ResistanceKPerW != 0 {
			little.ResistanceKPerW = s.Little.ResistanceKPerW
		}
	}
	s.Big, s.Little = &big, &little
	return s
}

// minTimeConstant is the smallest permitted per-node RC time constant
// (with coupling folded in): C / (1/R + G) ≥ 10 ms. The model integrates
// with one forward-Euler step per simulator tick, which is stable only
// while the step is well under the time constant; ten default 1 ms ticks
// of headroom keeps divergent (sign-flipping, NaN-producing) networks out
// by construction.
const minTimeConstant = 0.010 // seconds

// Validate checks the spec after default resolution: positive RC constants,
// a forward-Euler-stable network, ordered thresholds, non-negative cadences
// and floors.
func (s Spec) Validate() error {
	r := s.WithDefaults()
	for _, c := range []struct {
		name string
		rc   *ClusterRC
	}{{"big", r.Big}, {"little", r.Little}} {
		if c.rc.CapacitanceJPerK <= 0 {
			return fmt.Errorf("thermal: %s capacitance_j_per_k must be positive, got %v", c.name, c.rc.CapacitanceJPerK)
		}
		if c.rc.ResistanceKPerW <= 0 {
			return fmt.Errorf("thermal: %s resistance_k_per_w must be positive, got %v", c.name, c.rc.ResistanceKPerW)
		}
		if r.CouplingWPerK >= 0 {
			if tau := c.rc.CapacitanceJPerK / (1/c.rc.ResistanceKPerW + r.CouplingWPerK); tau < minTimeConstant {
				return fmt.Errorf("thermal: %s RC time constant %.2g s is below %v s — the per-tick Euler step would be unstable",
					c.name, tau, minTimeConstant)
			}
		}
	}
	if !(r.AmbientC < r.ReleaseC && r.ReleaseC < r.ThrottleC && r.ThrottleC < r.TripC) {
		return fmt.Errorf("thermal: thresholds must satisfy ambient < release < throttle < trip, got %v < %v < %v < %v",
			r.AmbientC, r.ReleaseC, r.ThrottleC, r.TripC)
	}
	if r.MinLevel < 0 {
		return fmt.Errorf("thermal: negative min_level %d", r.MinLevel)
	}
	if r.PeriodTicks < 0 {
		return fmt.Errorf("thermal: negative period_ticks %d", r.PeriodTicks)
	}
	if r.SampleEveryMS < 0 {
		return fmt.Errorf("thermal: negative sample_every_ms %d", r.SampleEveryMS)
	}
	if r.CouplingWPerK < 0 {
		return fmt.Errorf("thermal: negative coupling_w_per_k %v", r.CouplingWPerK)
	}
	return nil
}

// DecodeSpec parses and validates a standalone thermal configuration block.
// Unknown fields are rejected so typos surface instead of silently running
// with defaults.
func DecodeSpec(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("thermal: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Model is the two-node lumped RC thermal network. It is pure state plus
// arithmetic — stepping it is the caller's job (the Governor steps it once
// per simulator tick) — so unit and property tests can drive it with
// synthetic power traces.
type Model struct {
	ambient  float64
	coupling float64
	rc       [hmp.NumClusters]ClusterRC
	temp     [hmp.NumClusters]float64
}

// NewModel builds a model from the (default-resolved) spec.
func NewModel(spec Spec) *Model {
	r := spec.WithDefaults()
	md := &Model{ambient: r.AmbientC, coupling: r.CouplingWPerK}
	md.rc[hmp.Big] = *r.Big
	md.rc[hmp.Little] = *r.Little
	for k := range md.temp {
		md.temp[k] = r.InitC
	}
	return md
}

// TempC returns cluster k's current temperature in °C.
func (md *Model) TempC(k hmp.ClusterKind) float64 { return md.temp[k] }

// AmbientC returns the ambient sink temperature.
func (md *Model) AmbientC() float64 { return md.ambient }

// SteadyC returns the temperature cluster k would settle at under constant
// power watts, ignoring inter-cluster coupling: ambient + P·R.
func (md *Model) SteadyC(k hmp.ClusterKind, watts float64) float64 {
	return md.ambient + watts*md.rc[k].ResistanceKPerW
}

// MaxStepC returns the largest temperature rise cluster k can see in one
// step of dtSec seconds under power watts, ignoring coupling inflow — the
// slack the governor's trip guarantee carries.
func (md *Model) MaxStepC(k hmp.ClusterKind, watts, dtSec float64) float64 {
	return watts * dtSec / md.rc[k].CapacitanceJPerK
}

// Step advances the network by dtSec seconds with per-cluster power input
// watts. One forward-Euler step, fixed evaluation order: byte-identical
// replays depend on it.
func (md *Model) Step(dtSec float64, watts [hmp.NumClusters]float64) {
	dLittle, dBig := md.stepDelta(dtSec, watts)
	md.temp[hmp.Little] += dLittle
	md.temp[hmp.Big] += dBig
}

// stepDelta computes one forward-Euler step's temperature increments without
// applying them — the pure half of Step, shared with the governor's steady-
// window probe so the probed and the applied step are the same IEEE
// operations.
func (md *Model) stepDelta(dtSec float64, watts [hmp.NumClusters]float64) (dLittle, dBig float64) {
	// Heat flowing from the big node into the little node through the
	// coupling conductance (negative when little is hotter).
	flow := md.coupling * (md.temp[hmp.Big] - md.temp[hmp.Little])
	dLittle = (watts[hmp.Little] + flow - (md.temp[hmp.Little]-md.ambient)/md.rc[hmp.Little].ResistanceKPerW) *
		dtSec / md.rc[hmp.Little].CapacitanceJPerK
	dBig = (watts[hmp.Big] - flow - (md.temp[hmp.Big]-md.ambient)/md.rc[hmp.Big].ResistanceKPerW) *
		dtSec / md.rc[hmp.Big].CapacitanceJPerK
	return dLittle, dBig
}

// Governor is the closed-loop thermal daemon: each tick it feeds the
// machine's per-cluster power into the RC model, then applies the hysteretic
// throttling policy described in the package comment through SetLevelCap.
type Governor struct {
	model *Model
	spec  Spec // default-resolved

	sampleEvery sim.Time
	nextSample  sim.Time
	ticks       int64

	trips     int
	throttles int
	releases  int
	peak      [hmp.NumClusters]float64

	// stepDL and stepDB carry the model deltas SteadyTick computed over to
	// SteadyAdvance — private scratch no later observer reads, so a tick
	// declined after the probe leaves them harmlessly stale.
	stepDL, stepDB float64
}

// NewGovernor validates the spec and builds a governor with a fresh model.
func NewGovernor(spec Spec) (*Governor, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := spec.WithDefaults()
	g := &Governor{
		model:       NewModel(r),
		spec:        r,
		sampleEvery: sim.Time(r.SampleEveryMS) * sim.Millisecond,
	}
	for k := range g.peak {
		g.peak[k] = g.model.temp[k]
	}
	return g, nil
}

// Model returns the governor's thermal model (for observation; tests and
// trace emitters read temperatures through it).
func (g *Governor) Model() *Model { return g.model }

// TempC returns cluster k's current modeled temperature.
func (g *Governor) TempC(k hmp.ClusterKind) float64 { return g.model.TempC(k) }

// PeakC returns the highest temperature cluster k has reached.
func (g *Governor) PeakC(k hmp.ClusterKind) float64 { return g.peak[k] }

// Trips returns how many times the emergency trip clamp fired.
func (g *Governor) Trips() int { return g.trips }

// Throttles returns how many ceiling-lowering actuations the governor has
// applied (graduated steps plus trip clamps).
func (g *Governor) Throttles() int { return g.throttles }

// Releases returns how many ceiling-raising actuations the governor has
// applied.
func (g *Governor) Releases() int { return g.releases }

// Spec returns the governor's default-resolved configuration.
func (g *Governor) Spec() Spec { return g.spec }

// Tick implements sim.Daemon. Daemons run after power integration, so the
// model integrates the tick that just executed; the trip clamp is evaluated
// every tick, bounding overshoot past trip_c to one tick's temperature rise.
func (g *Governor) Tick(m *sim.Machine) {
	var watts [hmp.NumClusters]float64
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		watts[k] = m.LastTickPowerW(k)
	}
	g.model.Step(sim.Seconds(m.TickLen()), watts)
	g.ticks++
	stepEdge := g.ticks%int64(g.spec.PeriodTicks) == 0

	now := m.Now()
	tr := m.Tracer()
	if now >= g.nextSample {
		if tr != nil {
			for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
				tr.Record(sim.Event{
					T: now, Kind: sim.EvTemp, Cluster: k, TempC: g.model.TempC(k),
					Node: m.NodeName(),
				})
			}
		}
		g.nextSample = now + g.sampleEvery
	}

	plat := m.Platform()
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		t := g.model.TempC(k)
		if t > g.peak[k] {
			g.peak[k] = t
		}
		maxLv := plat.Clusters[k].MaxLevel()
		minLv := g.spec.MinLevel
		if minLv > maxLv {
			minLv = maxLv
		}
		cap := m.LevelCap(k)
		switch {
		case t >= g.spec.TripC:
			if cap > minLv {
				g.setCap(m, tr, k, minLv, t)
				g.trips++
				g.throttles++
			}
		case t >= g.spec.ThrottleC:
			if stepEdge && cap > minLv {
				g.setCap(m, tr, k, cap-1, t)
				g.throttles++
			}
		case t <= g.spec.ReleaseC:
			if stepEdge && cap < maxLv {
				g.setCap(m, tr, k, cap+1, t)
				g.releases++
			}
		}
	}
}

// SteadyBegin implements sim.SteadyDaemon: the governor charges no overhead
// and keeps purely internal per-tick state (the RC integrator, its tick
// counter, the peak tracker, the sample clock), so inside a steady window —
// where the machine certifies its per-cluster power constant — every Tick
// that takes no action and emits nothing is internal-only. Whether a given
// tick qualifies depends on the evolving temperatures, so the per-tick
// decision lives in the declared Ticker; SteadyBegin itself always accepts.
func (g *Governor) SteadyBegin(m *sim.Machine) (sim.SteadyEntry, bool) {
	return sim.SteadyEntry{Ticker: g}, true
}

// SteadyTick implements sim.SteadyTicker: it computes the tick's model step
// (the exact IEEE operations Tick's model.Step would perform, stashed for
// SteadyAdvance) and reports whether Tick would stay internal-only at the
// resulting temperatures — no EvTemp sample due while a tracer listens, no
// trip clamp, and no graduated step or release on a period edge. Declining
// ends the steady window before this tick, so the actuation (or emission)
// happens on the general path.
func (g *Governor) SteadyTick(m *sim.Machine) bool {
	var watts [hmp.NumClusters]float64
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		watts[k] = m.LastTickPowerW(k)
	}
	g.stepDL, g.stepDB = g.model.stepDelta(sim.Seconds(m.TickLen()), watts)
	var temps [hmp.NumClusters]float64
	temps[hmp.Little] = g.model.temp[hmp.Little] + g.stepDL
	temps[hmp.Big] = g.model.temp[hmp.Big] + g.stepDB
	now := m.Now()
	if now >= g.nextSample && m.Tracer() != nil {
		return false
	}
	stepEdge := (g.ticks+1)%int64(g.spec.PeriodTicks) == 0
	plat := m.Platform()
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		t := temps[k]
		maxLv := plat.Clusters[k].MaxLevel()
		minLv := g.spec.MinLevel
		if minLv > maxLv {
			minLv = maxLv
		}
		cap := m.LevelCap(k)
		switch {
		case t >= g.spec.TripC:
			if cap > minLv {
				return false
			}
		case t >= g.spec.ThrottleC:
			if stepEdge && cap > minLv {
				return false
			}
		case t <= g.spec.ReleaseC:
			if stepEdge && cap < maxLv {
				return false
			}
		}
	}
	return true
}

// SteadyAdvance implements sim.SteadyTicker: the internal effects of one
// Tick, in Tick's order — apply the probed model step, count the tick,
// advance the sample clock when a (tracerless) sample came due, and track
// the peaks.
func (g *Governor) SteadyAdvance(m *sim.Machine) {
	g.model.temp[hmp.Little] += g.stepDL
	g.model.temp[hmp.Big] += g.stepDB
	g.ticks++
	now := m.Now()
	if now >= g.nextSample {
		g.nextSample = now + g.sampleEvery
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		if t := g.model.TempC(k); t > g.peak[k] {
			g.peak[k] = t
		}
	}
}

func (g *Governor) setCap(m *sim.Machine, tr *sim.Tracer, k hmp.ClusterKind, level int, tempC float64) {
	m.SetLevelCap(k, level)
	if tr != nil {
		tr.Record(sim.Event{
			T: m.Now(), Kind: sim.EvThrottle, Cluster: k, Level: level,
			KHz: m.Platform().Clusters[k].KHz(level), TempC: tempC,
			Node: m.NodeName(),
		})
	}
}
