package mphars

import (
	"fmt"

	"repro/internal/hmp"
)

// allocateCores is the core allocation function of Algorithm 4: it first
// frees the cores a shrinking application gives up, then satisfies the new
// allocation by reusing cores the application already holds (minimizing
// thread migration) and only then claiming free cores. It returns the
// global CPU numbers now owned on each cluster.
func (mgr *Manager) allocateCores(n *appNode) (bigCores, littleCores []int) {
	bigCores = mgr.allocateCluster(n, hmp.Big, n.useBCore, n.nprocsB, &n.decBigCoreCnt)
	littleCores = mgr.allocateCluster(n, hmp.Little, n.useLCore, n.nprocsL, &n.decLittleCoreCnt)
	return bigCores, littleCores
}

func (mgr *Manager) allocateCluster(n *appNode, k hmp.ClusterKind, use []bool, want int, dec *int) []int {
	cluster := mgr.clusters[k]
	// Free the decreased core count (Algorithm 4 lines 4–19).
	for i := range use {
		if *dec == 0 {
			break
		}
		if use[i] {
			use[i] = false
			cluster.freeCore[i] = true
			*dec--
		}
	}
	// First pass: keep already-used cores (lines 20–25 / 33–38).
	var cpus []int
	allocated := 0
	for i := range use {
		if allocated >= want {
			break
		}
		if use[i] {
			cpus = append(cpus, mgr.plat.CPU(k, i))
			allocated++
		}
	}
	// Over-allocation repair: if the app still holds more cores than it
	// wants (shouldn't happen when dec was set correctly), free the rest.
	for i := range use {
		if use[i] && !containsCPU(cpus, mgr.plat.CPU(k, i)) {
			use[i] = false
			cluster.freeCore[i] = true
		}
	}
	// Second pass: claim free cores (lines 26–32 / 39–45).
	for i := range use {
		if allocated >= want {
			break
		}
		if cluster.freeCore[i] {
			cluster.freeCore[i] = false
			use[i] = true
			cpus = append(cpus, mgr.plat.CPU(k, i))
			allocated++
		}
	}
	if allocated < want {
		panic(fmt.Sprintf("mphars: cluster %s cannot supply %d cores (got %d); search bounds violated",
			k, want, allocated))
	}
	return cpus
}

func containsCPU(cpus []int, cpu int) bool {
	for _, c := range cpus {
		if c == cpu {
			return true
		}
	}
	return false
}

// CheckInvariants verifies the partitioning invariants: no core is owned by
// two applications, and every core is either owned or free. Tests and
// paranoid callers use it.
func (mgr *Manager) CheckInvariants() error {
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		cores := mgr.plat.Clusters[k].Cores
		owners := make([]int, cores)
		for n := mgr.head; n != nil; n = n.next {
			use := n.useLCore
			nprocs := n.nprocsL
			if k == hmp.Big {
				use = n.useBCore
				nprocs = n.nprocsB
			}
			held := 0
			for i := 0; i < cores; i++ {
				if use[i] {
					owners[i]++
					held++
				}
			}
			if held != nprocs {
				return fmt.Errorf("mphars: %s holds %d %s cores but nprocs=%d",
					n.proc.Name, held, k, nprocs)
			}
		}
		for i := 0; i < cores; i++ {
			free := mgr.clusters[k].freeCore[i]
			offline := mgr.clusters[k].offline[i]
			switch {
			case owners[i] > 1:
				return fmt.Errorf("mphars: %s core %d owned by %d apps", k, i, owners[i])
			case offline && (owners[i] > 0 || free):
				return fmt.Errorf("mphars: offline %s core %d still owned or free", k, i)
			case owners[i] == 1 && free:
				return fmt.Errorf("mphars: %s core %d owned but marked free", k, i)
			case owners[i] == 0 && !free && !offline:
				return fmt.Errorf("mphars: %s core %d unowned but not free", k, i)
			}
		}
	}
	return nil
}
