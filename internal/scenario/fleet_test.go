package scenario

import (
	"strings"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
	"repro/internal/thermal"
)

// littleHeavyPlatform returns a custom board with 2 big and 6 little cores,
// for heterogeneous fleets.
func littleHeavyPlatform() *hmp.Platform {
	p := hmp.Default()
	p.Clusters[hmp.Big].Cores = 2
	p.Clusters[hmp.Little].Cores = 6
	return p
}

// tinyPlatform returns a 1 big + 1 little board one 1+1 registration
// saturates.
func tinyPlatform() *hmp.Platform {
	p := hmp.Default()
	p.Clusters[hmp.Big].Cores = 1
	p.Clusters[hmp.Little].Cores = 1
	return p
}

// threeNodeScenario is the acceptance-criteria fleet: three heterogeneous
// nodes, staggered arrivals and departures, and per-node platform events.
func threeNodeScenario(placement string) *Scenario {
	return &Scenario{
		Name:       "fleet-3",
		Manager:    ManagerMPHARSI,
		DurationMS: 8000,
		AdaptEvery: 2,
		Placement:  placement,
		Nodes: []NodeSpec{
			{Name: "n0"},
			{Name: "n1", Platform: littleHeavyPlatform()},
			{Name: "n2", Platform: tinyPlatform(), Manager: ManagerHARSE},
		},
		Apps: []AppSpec{
			{Name: "sw0", Bench: "SW", Threads: 8, TargetFrac: 0.5},
			{Name: "fe0", Bench: "FE", Threads: 4, StartMS: 1000, StopMS: 6000, TargetFrac: 0.4},
			{Name: "bo0", Bench: "BO", Threads: 4, StartMS: 2000,
				Target: &TargetSpec{Min: 1.0, Avg: 2.0, Max: 3.0}},
			{Name: "fl0", Bench: "FL", Threads: 4, StartMS: 3000, TargetFrac: 0.3, Node: "n1"},
		},
		Events: []Event{
			{AtMS: 2500, Kind: KindHotplug, Node: "n0", CPU: 7, Online: boolPtr(false)},
			{AtMS: 5500, Kind: KindHotplug, Node: "n0", CPU: 7, Online: boolPtr(true)},
			{AtMS: 3000, Kind: KindDVFSCap, Node: "n1", Cluster: "big", MaxLevel: 4},
			{AtMS: 4000, Kind: KindTarget, App: "sw0", Frac: 0.7},
			{AtMS: 4500, Kind: KindPhase, App: "fe0", Scale: 1.5},
		},
	}
}

func boolPtr(b bool) *bool { return &b }

// TestFleetReplayByteIdentical pins the acceptance criterion: a ≥3-node
// heterogeneous fleet scenario replays byte-identically across every
// placement policy.
func TestFleetReplayByteIdentical(t *testing.T) {
	for _, placement := range []string{"least-loaded", "big-first", "coolest"} {
		var first uint64
		for rep := 0; rep < 2; rep++ {
			res, err := Run(threeNodeScenario(placement), Options{Strict: true})
			if err != nil {
				t.Fatalf("%s rep %d: %v", placement, rep, err)
			}
			if len(res.Nodes) != 3 {
				t.Fatalf("%s: %d node results", placement, len(res.Nodes))
			}
			if rep == 0 {
				first = res.TraceDigest
			} else if res.TraceDigest != first {
				t.Fatalf("%s: replay digest %016x != %016x", placement, res.TraceDigest, first)
			}
		}
	}
}

// TestFleetHeatAwarePlacement pins the coolest policy end to end: under a
// forced thermal gradient the arrival lands on the cooler node.
func TestFleetHeatAwarePlacement(t *testing.T) {
	sc := &Scenario{
		Name:       "fleet-heat",
		Manager:    ManagerMPHARSI,
		DurationMS: 3000,
		Placement:  "coolest",
		Nodes: []NodeSpec{
			{Name: "hot", Thermal: &thermal.Spec{Enabled: true, InitC: 70}},
			{Name: "cold", Thermal: &thermal.Spec{Enabled: true, InitC: 40}},
		},
		Apps: []AppSpec{{Name: "sw", Bench: "SW", Threads: 4, TargetFrac: 0.4}},
	}
	res, err := Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Node != "cold" {
		t.Fatalf("coolest policy placed on %q", res.Apps[0].Node)
	}
	// The same scenario under least-loaded ties to the first node: the
	// policy, not accident, made the difference.
	sc.Placement = "least-loaded"
	res, err = Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Node != "hot" {
		t.Fatalf("least-loaded tie-break placed on %q, want the first node", res.Apps[0].Node)
	}
}

// TestFleetAdmissionQueue pins satellite admission control on a fleet: an
// arrival with no free partition anywhere queues (instead of being
// dropped), and is admitted the moment a departure frees cores.
func TestFleetAdmissionQueue(t *testing.T) {
	// The occupying app's target is unreachable, so its adaptation only
	// ever wants to grow — it never shrinks and frees a core early.
	wantMore := &TargetSpec{Min: 100, Avg: 120, Max: 140}
	sc := &Scenario{
		Name:       "fleet-queue",
		Manager:    ManagerMPHARSI,
		DurationMS: 10000,
		Nodes:      []NodeSpec{{Name: "tiny", Platform: tinyPlatform()}},
		Apps: []AppSpec{
			{Name: "a", Bench: "FE", Threads: 4, Target: wantMore, StopMS: 6000},
			{Name: "b", Bench: "SW", Threads: 4, Target: wantMore, StartMS: 1000},
		},
	}
	res, err := Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueuedArrivals != 1 || res.DroppedArrivals != 0 {
		t.Fatalf("queued/dropped = %d/%d, want 1/0", res.QueuedArrivals, res.DroppedArrivals)
	}
	b := res.Apps[1]
	if !b.Queued || b.Skipped {
		t.Fatalf("app b: queued=%v skipped=%v, want queued and admitted", b.Queued, b.Skipped)
	}
	if b.Node != "tiny" || b.Work <= 0 {
		t.Fatalf("app b never ran after admission: node=%q work=%v", b.Node, b.Work)
	}

	// Without the departure the queue never drains: the arrival is dropped
	// and the counters say so.
	sc.Apps[0].StopMS = 0
	res, err = Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueuedArrivals != 1 || res.DroppedArrivals != 1 {
		t.Fatalf("queued/dropped = %d/%d, want 1/1", res.QueuedArrivals, res.DroppedArrivals)
	}
	if b := res.Apps[1]; !b.Skipped || !b.Queued || b.Work != 0 {
		t.Fatalf("undrained arrival: %+v", b)
	}
}

// TestFleetMigration pins saturation-driven migration end to end: an app
// landing on a saturated tiny node moves to the big free node, conserving
// its statistics across the move.
func TestFleetMigration(t *testing.T) {
	sc := &Scenario{
		Name:       "fleet-migrate",
		Manager:    ManagerMPHARSI,
		DurationMS: 6000,
		// least-loaded ties to node index 0 at t=0, so the app lands on
		// the tiny node, saturates it, and the 250 ms saturation check
		// moves it to the empty default node.
		Nodes: []NodeSpec{
			{Name: "tiny", Platform: tinyPlatform()},
			{Name: "dflt"},
		},
		Apps: []AppSpec{{Name: "sw", Bench: "SW", Threads: 4, TargetFrac: 0.4}},
	}
	res, err := Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Apps[0]
	if res.NodeMigrations != 1 || a.NodeMigrations != 1 {
		t.Fatalf("node migrations = %d (app %d), want 1", res.NodeMigrations, a.NodeMigrations)
	}
	if a.Node != "dflt" {
		t.Fatalf("app ended on %q, want dflt", a.Node)
	}
	if a.Work <= 0 {
		t.Fatal("no work after migration")
	}
	// The tiny node's machine holds only the dead incarnation.
	for _, p := range res.Nodes[0].Machine.Procs() {
		if !p.Exited() {
			t.Fatalf("live process %q left on the source node", p.Name)
		}
	}

	// A scripted target change before the migration must survive the
	// respawn on the destination node (the new incarnation re-applies the
	// runtime target instead of reverting to the spec).
	retgt := &TargetSpec{Min: 7.0, Avg: 8.0, Max: 9.0}
	sc.Events = []Event{{AtMS: 100, Kind: KindTarget, App: "sw", Target: retgt}}
	res, err = Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeMigrations != 1 {
		t.Fatalf("migration did not fire with the target event: %d moves", res.NodeMigrations)
	}
	var live *sim.Process
	for _, p := range res.Nodes[1].Machine.Procs() {
		if p.Name == "sw" && !p.Exited() {
			live = p
		}
	}
	if live == nil {
		t.Fatal("no live incarnation on the destination node")
	}
	if got := live.HB.Target(); got.Min != retgt.Min || got.Avg != retgt.Avg || got.Max != retgt.Max {
		t.Fatalf("migrated incarnation reverted to the spec target: %+v", got)
	}

	// An app that would saturate any node it lands on must NOT ping-pong
	// between two equal nodes: migration requires a destination with
	// strictly more free cores than the victim holds.
	greedy := &Scenario{
		Name:       "fleet-no-pingpong",
		Manager:    ManagerMPHARSI,
		DurationMS: 10000,
		Nodes:      []NodeSpec{{Name: "n0"}, {Name: "n1"}},
		Apps: []AppSpec{{
			Name: "sw", Bench: "SW", Threads: 8,
			InitBig: IntPtr(4), InitLittle: IntPtr(4),
			Target: &TargetSpec{Min: 100, Avg: 120, Max: 140}, // unreachable: stays maximal
		}},
	}
	gres, err := Run(greedy, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if gres.NodeMigrations != 0 {
		t.Fatalf("saturating app ping-ponged: %d moves", gres.NodeMigrations)
	}
	if gres.Apps[0].Work <= 0 {
		t.Fatal("saturating app made no progress")
	}

	// Disabling migration keeps the app on the tiny node.
	sc.MigrateEveryMS = -1
	res, err = Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeMigrations != 0 || res.Apps[0].Node != "tiny" {
		t.Fatalf("migration fired while disabled: %d moves, node %q",
			res.NodeMigrations, res.Apps[0].Node)
	}
}

// TestAffinityPinning pins the per-app affinity satellite: threads stay
// inside the mask for the whole run, across hotplug of a masked core.
func TestAffinityPinning(t *testing.T) {
	sc := &Scenario{
		Name:       "affinity",
		Manager:    ManagerNone,
		DurationMS: 5000,
		Apps: []AppSpec{
			{Name: "sw", Bench: "SW", Threads: 4, Affinity: []int{2, 3}},
			{Name: "fe", Bench: "FE", Threads: 4},
		},
		Events: []Event{
			{AtMS: 1000, Kind: KindHotplug, CPU: 3, Online: boolPtr(false)},
			{AtMS: 3000, Kind: KindHotplug, CPU: 3, Online: boolPtr(true)},
		},
	}
	mask := hmp.MaskOf(2, 3)
	chk := func(m *sim.Machine) {
		for _, th := range m.Threads() {
			if th.Proc.Name != "sw" {
				continue
			}
			if th.Affinity() != mask {
				t.Fatalf("t=%d: thread %d affinity %x, want %x", m.Now(), th.Local, th.Affinity(), mask)
			}
			if th.Runnable() && th.Core() >= 0 && !mask.Has(th.Core()) {
				t.Fatalf("t=%d: thread %d placed on cpu %d outside the mask", m.Now(), th.Local, th.Core())
			}
		}
	}
	res, err := Run(sc, Options{Strict: true, PerTick: chk})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Work <= 0 {
		t.Fatal("pinned app did no work")
	}
}

// TestFleetValidation covers the nodes-format error paths.
func TestFleetValidation(t *testing.T) {
	base := func() *Scenario { return threeNodeScenario("") }
	cases := []struct {
		name string
		mod  func(*Scenario)
		want string
	}{
		{"placement without nodes", func(sc *Scenario) { sc.Nodes = nil; sc.Events = nil }, "needs a nodes list"},
		{"unknown placement", func(sc *Scenario) { sc.Placement = "hottest" }, "unknown placement policy"},
		{"duplicate node", func(sc *Scenario) { sc.Nodes[1].Name = "n0" }, "duplicate node name"},
		{"nameless node", func(sc *Scenario) { sc.Nodes[0].Name = "" }, "has no name"},
		{"unknown node manager", func(sc *Scenario) { sc.Nodes[0].Manager = "cfs" }, "unknown manager"},
		{"unknown app pin", func(sc *Scenario) { sc.Apps[0].Node = "n9" }, "unknown node"},
		{"event without node", func(sc *Scenario) { sc.Events[0].Node = "" }, "needs a node"},
		{"event unknown node", func(sc *Scenario) { sc.Events[0].Node = "n9" }, "unknown node"},
		{"app event with node", func(sc *Scenario) { sc.Events[3].Node = "n0" }, "address an app"},
		{"hotplug outside node platform", func(sc *Scenario) {
			sc.Events[0].Node = "n2" // tiny board: 2 CPUs, event uses CPU 7
		}, "outside the platform"},
		{"cap outside node grid", func(sc *Scenario) { sc.Events[2].MaxLevel = 12 }, "outside the big grid"},
		{"affinity on managed node", func(sc *Scenario) { sc.Apps[0].Affinity = []int{0} }, "unmanaged"},
		{"affinity cpu out of range", func(sc *Scenario) {
			for i := range sc.Nodes {
				sc.Nodes[i].Manager = ManagerGTS
			}
			sc.Manager = ManagerGTS
			sc.Apps[0].Affinity = []int{7} // tiny node has 2 CPUs
		}, "outside candidate node platforms"},
		{"duplicate affinity cpu", func(sc *Scenario) {
			sc.Manager = ManagerGTS
			for i := range sc.Nodes {
				sc.Nodes[i].Manager = ManagerGTS
			}
			sc.Apps[0].Affinity = []int{1, 1}
		}, "duplicate affinity"},
		{"init outside every candidate", func(sc *Scenario) {
			sc.Apps[0].Node = "n2"
			sc.Apps[0].InitBig = IntPtr(3) // tiny board has 1 big core
		}, "outside every candidate"},
		{"hotplug starves an affinity mask", func(sc *Scenario) {
			sc.Manager = ManagerGTS
			for i := range sc.Nodes {
				sc.Nodes[i].Manager = ManagerGTS
			}
			// The mask is valid on every node, but n0's scripted hotplug
			// takes CPU 7 — the app's only affine core — offline.
			sc.Apps[0].Affinity = []int{7}
			sc.Apps[0].Node = "n0"
			sc.Events = sc.Events[:2] // keep only the n0 hotplug pair
		}, "every affinity cpu"},
		{"node hotplug strands", func(sc *Scenario) {
			sc.Events = append(sc.Events,
				Event{AtMS: 100, Kind: KindHotplug, Node: "n2", CPU: 0, Online: boolPtr(false)},
				Event{AtMS: 200, Kind: KindHotplug, Node: "n2", CPU: 1, Online: boolPtr(false)})
		}, "last core offline"},
		{"bad node platform", func(sc *Scenario) {
			p := hmp.Default()
			p.Clusters[hmp.Big].Cores = 0
			sc.Nodes[0].Platform = p
		}, "has 0 cores"},
		{"node thermal vs cap", func(sc *Scenario) {
			sc.Nodes[1].Thermal = &thermal.Spec{Enabled: true}
		}, "dvfs_cap conflicts"},
		{"migrate_every without nodes", func(sc *Scenario) {
			sc.Nodes = nil
			sc.Events = nil
			sc.Placement = ""
			sc.MigrateEveryMS = 100
		}, "needs a nodes list"},
	}
	for _, tc := range cases {
		sc := base()
		tc.mod(sc)
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	// A valid fleet scenario round-trips through JSON with nodes intact.
	sc := base()
	var buf strings.Builder
	if err := sc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := Decode(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Nodes) != 3 || again.Nodes[1].Platform.Clusters[hmp.Little].Cores != 6 {
		t.Fatalf("nodes did not round-trip: %+v", again.Nodes)
	}
}

// TestLegacyAdmissionQueue pins satellite admission control on the classic
// single-machine MP-HARS path: a saturated-platform arrival queues and is
// admitted when a departure frees a partition, instead of being silently
// skipped.
func TestLegacyAdmissionQueue(t *testing.T) {
	sc := &Scenario{
		Name:       "legacy-queue",
		Manager:    ManagerMPHARSI,
		DurationMS: 12000,
		Apps: []AppSpec{
			{Name: "a0", Bench: "SW", Threads: 4, TargetFrac: 0.4,
				InitBig: IntPtr(2), InitLittle: IntPtr(2), StopMS: 6000},
			{Name: "a1", Bench: "FE", Threads: 4, TargetFrac: 0.4,
				InitBig: IntPtr(2), InitLittle: IntPtr(2)},
			{Name: "a2", Bench: "BO", Threads: 4, TargetFrac: 0.4,
				InitBig: IntPtr(0), InitLittle: IntPtr(0), StartMS: 1000},
		},
	}
	// a0 and a1 fill the 4+4 board (2+2 each); a2 (explicit 0+0 still
	// claims one core on admission) must queue until a0 departs.
	sc.Apps[2].InitBig = IntPtr(2)
	sc.Apps[2].InitLittle = IntPtr(2)
	res, err := Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueuedArrivals != 1 || res.DroppedArrivals != 0 {
		t.Fatalf("queued/dropped = %d/%d, want 1/0", res.QueuedArrivals, res.DroppedArrivals)
	}
	a2 := res.Apps[2]
	if !a2.Queued || a2.Skipped || a2.Work <= 0 {
		t.Fatalf("queued arrival not admitted: %+v", a2)
	}
	if res.MP == nil {
		t.Fatal("legacy result lost its MP manager")
	}
	if len(res.Nodes) != 1 || res.Nodes[0].Machine != res.Machine {
		t.Fatal("legacy result should expose exactly its one node")
	}
}

// fleetChecker runs the per-machine invariant checks of property_test.go on
// every node of a fleet (PerTick fires once per node per tick).
type fleetChecker struct {
	per map[*sim.Machine]*machineInvariants
}

func (c *fleetChecker) tick(m *sim.Machine) {
	if c.per == nil {
		c.per = make(map[*sim.Machine]*machineInvariants)
	}
	mi := c.per[m]
	if mi == nil {
		mi = &machineInvariants{}
		c.per[m] = mi
	}
	mi.tick(m)
}

func (c *fleetChecker) err() error {
	for _, mi := range c.per {
		if mi.err != nil {
			return mi.err
		}
	}
	return nil
}

// TestFleetPropertySeeds drives seeded random fleet scenarios through every
// placement policy with strict checks on: per-node machine invariants, the
// MP-HARS partitioning invariants, the scheduler's conservation invariants,
// and post-run app/incarnation consistency.
func TestFleetPropertySeeds(t *testing.T) {
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	for _, placement := range []string{"least-loaded", "big-first", "coolest"} {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			sc := Generate(seed, GenConfig{
				Manager:    ManagerMPHARSI,
				DurationMS: 8000,
				Events:     6,
				Nodes:      2 + int(seed%2),
				Placement:  placement,
			})
			chk := &fleetChecker{}
			res, err := Run(sc, Options{Strict: true, PerTick: chk.tick})
			if err != nil {
				t.Fatalf("%s seed %d: %v", placement, seed, err)
			}
			if err := chk.err(); err != nil {
				t.Fatalf("%s seed %d: %v", placement, seed, err)
			}
			// Conservation: each app has at most one live incarnation
			// fleet-wide; skipped and departed apps have none.
			for _, a := range res.Apps {
				live := 0
				for _, nr := range res.Nodes {
					for _, p := range nr.Machine.Procs() {
						if p.Name == a.Name && !p.Exited() {
							live++
						}
					}
				}
				switch {
				case a.Skipped || a.Departed:
					if live != 0 {
						t.Fatalf("%s seed %d: app %s skipped/departed with %d live procs",
							placement, seed, a.Name, live)
					}
				case a.Arrived:
					if live != 1 {
						t.Fatalf("%s seed %d: app %s has %d live procs, want 1",
							placement, seed, a.Name, live)
					}
				}
			}
			if res.DroppedArrivals > res.QueuedArrivals {
				t.Fatalf("%s seed %d: dropped %d > queued %d",
					placement, seed, res.DroppedArrivals, res.QueuedArrivals)
			}
		}
	}
}
