// Command hars-bench runs the repository's tracked hot-path benchmarks
// (internal/bench) in-process via testing.Benchmark and writes the results
// as a JSON trajectory file (BENCH_<n>.json at the repository root, one per
// PR). Compare files across revisions to see the perf trend.
//
// Usage:
//
//	hars-bench [-out BENCH_1.json] [-filter regexp] [-prev BENCH_8.json]
//	           [-count 5] [-quiescent-ratio-floor 10] [-scale-ratio-floor 30]
//	           [-steady-ratio-floor 2] [-alloc-ceiling FleetQuiescent=64]
//	           [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz] ...
//
// -prev prints per-benchmark deltas (ns/op and allocs/op) against a previous
// trajectory file, so a PR's before/after story is one flag away.
//
// -count N runs every benchmark N times and records the median run (by
// ns/op) in the trajectory file, printing the min/max spread alongside —
// the defense against declaring a regression (or a win) off one noisy run.
//
// -quiescent-ratio-floor and -scale-ratio-floor guard the event-driven
// core's reason to exist: after the run they compute the lockstep/event
// speedup (FleetQuiescentLockstep / FleetQuiescent and FleetScale1kLockstep
// / FleetScale1k respectively) and exit non-zero when it falls below the
// floor. -steady-ratio-floor guards the steady-phase turbo path the same
// way (FleetScale1kSteadyOff / FleetScale1kSteady). CI runs all three, so a
// regression that quietly drags either fast path back toward reference cost
// fails the build.
//
// -alloc-ceiling (repeatable, name=N) pins a benchmark's steady-state
// allocation count: the run fails when the measured allocs/op exceed the
// ceiling. CI pins FleetQuiescent, so allocations creeping back into the
// quiescent hot loop fail the build rather than eroding the alloc-free
// steady state one innocent-looking change at a time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// File is the trajectory file schema.
type File struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// ceilings is the repeatable -alloc-ceiling flag: benchmark name → maximum
// allowed allocs/op.
type ceilings map[string]int64

func (c ceilings) String() string {
	parts := make([]string, 0, len(c))
	for name, n := range c {
		parts = append(parts, fmt.Sprintf("%s=%d", name, n))
	}
	return strings.Join(parts, ",")
}

func (c ceilings) Set(v string) error {
	name, limit, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=N, got %q", v)
	}
	n, err := strconv.ParseInt(limit, 10, 64)
	if err != nil || n < 0 {
		return fmt.Errorf("bad ceiling %q", limit)
	}
	c[name] = n
	return nil
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path (empty = stdout only)")
	filter := flag.String("filter", "", "regexp selecting benchmark names (empty = all)")
	prev := flag.String("prev", "", "previous trajectory file to print ns/op and allocs/op deltas against")
	quiescentFloor := flag.Float64("quiescent-ratio-floor", 0,
		"fail unless FleetQuiescentLockstep/FleetQuiescent >= this speedup (0 = no check)")
	scaleFloor := flag.Float64("scale-ratio-floor", 0,
		"fail unless FleetScale1kLockstep/FleetScale1k >= this speedup (0 = no check)")
	steadyFloor := flag.Float64("steady-ratio-floor", 0,
		"fail unless FleetScale1kSteadyOff/FleetScale1kSteady >= this speedup (0 = no check)")
	count := flag.Int("count", 1, "runs per benchmark; the median run (by ns/op) is reported and recorded, with the min/max spread printed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the runs")
	allocCeilings := ceilings{}
	flag.Var(allocCeilings, "alloc-ceiling",
		"fail when a benchmark exceeds its allocs/op ceiling, as name=N (repeatable)")
	flag.Parse()
	if *count < 1 {
		fmt.Fprintf(os.Stderr, "bad -count %d: want >= 1\n", *count)
		os.Exit(2)
	}

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintf(os.Stderr, "bad -filter: %v\n", err)
			os.Exit(2)
		}
	}
	var prevFile *File
	if *prev != "" {
		data, err := os.ReadFile(*prev)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -prev: %v\n", err)
			os.Exit(2)
		}
		prevFile = &File{}
		if err := json.Unmarshal(data, prevFile); err != nil {
			fmt.Fprintf(os.Stderr, "bad -prev %s: %v\n", *prev, err)
			os.Exit(2)
		}
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	f := File{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: "1s", // testing.Benchmark's built-in target
	}
	for _, c := range bench.Cases() {
		if re != nil && !re.MatchString(c.Name) {
			continue
		}
		// With -count > 1 the recorded measurement is a real run — the
		// median by ns/op — not an average that no run actually produced;
		// the min/max spread goes to the console so noisy environments are
		// visible in the log, while the trajectory file stays one number
		// per benchmark.
		runs := make([]Result, *count)
		for i := range runs {
			r := testing.Benchmark(c.F)
			runs[i] = Result{
				Name:        c.Name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].NsPerOp < runs[j].NsPerOp })
		res := runs[(len(runs)-1)/2]
		spread := ""
		if *count > 1 {
			spread = fmt.Sprintf("   [median of %d; min %.1f, max %.1f ns/op]",
				*count, runs[0].NsPerOp, runs[len(runs)-1].NsPerOp)
		}
		f.Results = append(f.Results, res)
		fmt.Printf("%-22s %12d iters %14.1f ns/op %8d B/op %6d allocs/op%s%s\n",
			res.Name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp,
			deltaSuffix(prevFile, res), spread)
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		os.Stdout.Write(data)
	}

	failed := false
	if *quiescentFloor > 0 {
		if err := checkRatio(f.Results, "FleetQuiescent", "FleetQuiescentLockstep", "quiescent", *quiescentFloor); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if *scaleFloor > 0 {
		if err := checkRatio(f.Results, "FleetScale1k", "FleetScale1kLockstep", "1k-scale", *scaleFloor); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if *steadyFloor > 0 {
		if err := checkRatio(f.Results, "FleetScale1kSteady", "FleetScale1kSteadyOff", "steady", *steadyFloor); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if err := checkAllocCeilings(f.Results, allocCeilings); err != nil {
		fmt.Fprintln(os.Stderr, err)
		failed = true
	}
	if *memprofile != "" {
		pf, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
		pf.Close()
	}
	if failed {
		os.Exit(1)
	}
}

// deltaSuffix formats the change against the previous trajectory file for
// one benchmark (empty without -prev or when the file lacks the benchmark).
func deltaSuffix(prev *File, res Result) string {
	if prev == nil {
		return ""
	}
	for _, p := range prev.Results {
		if p.Name != res.Name || p.NsPerOp == 0 {
			continue
		}
		return fmt.Sprintf("   [vs prev: %+.1f%% ns/op, %+d allocs/op]",
			(res.NsPerOp-p.NsPerOp)/p.NsPerOp*100, res.AllocsPerOp-p.AllocsPerOp)
	}
	return "   [vs prev: new]"
}

// checkRatio enforces a reference/fast-path speedup floor over the measured
// results (lockstep vs event core, general loop vs steady turbo). Both
// benchmarks must be present (narrow -filter expressions that drop one are
// a configuration error, not a pass).
func checkRatio(results []Result, fastName, refName, label string, floor float64) error {
	var fast, ref float64
	for _, r := range results {
		switch r.Name {
		case fastName:
			fast = r.NsPerOp
		case refName:
			ref = r.NsPerOp
		}
	}
	if fast == 0 || ref == 0 {
		return fmt.Errorf("%s-ratio check needs both %s and %s in the run (have %v and %v ns/op)",
			label, fastName, refName, fast, ref)
	}
	ratio := ref / fast
	fmt.Printf("%s speedup: %.1fx (%s %.0f ns/op / %s %.0f ns/op), floor %.1fx\n",
		label, ratio, refName, ref, fastName, fast, floor)
	if ratio < floor {
		return fmt.Errorf("%s speedup %.1fx below the %.1fx floor: %s regressed toward %s cost", label, ratio, floor, fastName, refName)
	}
	return nil
}

// checkAllocCeilings enforces the pinned allocs/op ceilings. A ceiling
// naming a benchmark absent from the run is a configuration error, not a
// pass.
func checkAllocCeilings(results []Result, limits ceilings) error {
	for name, limit := range limits {
		found := false
		for _, r := range results {
			if r.Name != name {
				continue
			}
			found = true
			if r.AllocsPerOp > limit {
				return fmt.Errorf("%s allocated %d allocs/op, above the pinned ceiling of %d: allocations crept back into the steady state",
					name, r.AllocsPerOp, limit)
			}
			fmt.Printf("alloc ceiling: %s %d allocs/op <= %d\n", name, r.AllocsPerOp, limit)
		}
		if !found {
			return fmt.Errorf("alloc-ceiling names %s, which is not in the run", name)
		}
	}
	return nil
}
