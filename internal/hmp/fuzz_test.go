package hmp

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadPlatform fuzzes the platform JSON decoder: arbitrary input must
// never panic, and any platform the decoder accepts must survive a
// write/read round trip unchanged — the guarantee custom board definitions
// rely on.
func FuzzReadPlatform(f *testing.F) {
	var def bytes.Buffer
	if err := Default().WriteJSON(&def); err == nil {
		f.Add(def.Bytes())
	}
	f.Add([]byte(`{"BaseKHz":800000,"Clusters":[
		{"Name":"A7","Cores":2,"IPC":1,"OPPs":[{"KHz":800000,"MilliVolt":900}]},
		{"Name":"A15","Cores":2,"IPC":1.5,"OPPs":[{"KHz":800000,"MilliVolt":900},{"KHz":1600000,"MilliVolt":1200}]}]}`))
	f.Add([]byte(`{"Clusters":[{},{}],"BaseKHz":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlatform(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted platform failed to encode: %v", err)
		}
		again, err := ReadPlatform(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written platform failed: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatalf("round trip changed the platform:\nfirst:  %+v\nsecond: %+v", p, again)
		}
	})
}
