package hmp

import (
	"testing"
	"testing/quick"
)

func TestDefaultPlatformValidates(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("Default platform invalid: %v", err)
	}
	if got := p.TotalCores(); got != 8 {
		t.Fatalf("TotalCores = %d, want 8", got)
	}
	if p.Clusters[Big].Levels() != 9 {
		t.Errorf("big levels = %d, want 9 (0.8-1.6 GHz step 0.1)", p.Clusters[Big].Levels())
	}
	if p.Clusters[Little].Levels() != 6 {
		t.Errorf("little levels = %d, want 6 (0.8-1.3 GHz step 0.1)", p.Clusters[Little].Levels())
	}
	if r := p.R0(); r != 1.5 {
		t.Errorf("R0 = %v, want 1.5", r)
	}
}

func TestCPUNumbering(t *testing.T) {
	p := Default()
	if p.FirstCPU(Little) != 0 || p.FirstCPU(Big) != 4 {
		t.Fatalf("FirstCPU little=%d big=%d, want 0 and 4", p.FirstCPU(Little), p.FirstCPU(Big))
	}
	for cpu := 0; cpu < 8; cpu++ {
		k := p.ClusterOf(cpu)
		wantK := Little
		if cpu >= 4 {
			wantK = Big
		}
		if k != wantK {
			t.Errorf("ClusterOf(%d) = %v, want %v", cpu, k, wantK)
		}
		if got := p.CPU(k, p.IndexInCluster(cpu)); got != cpu {
			t.Errorf("CPU/IndexInCluster round trip broke for %d: got %d", cpu, got)
		}
	}
}

func TestNominalSpeed(t *testing.T) {
	p := Default()
	// A little core at the baseline frequency retires 1.0 units/s.
	if got := p.NominalSpeed(Little, 0); got != 1.0 {
		t.Errorf("little speed at f0 = %v, want 1.0", got)
	}
	// A big core at 1.6 GHz retires 1.5 * 2.0 = 3.0 units/s.
	if got := p.NominalSpeed(Big, p.Clusters[Big].MaxLevel()); got != 3.0 {
		t.Errorf("big speed at max = %v, want 3.0", got)
	}
	// Speed is monotone in frequency level.
	for k := ClusterKind(0); k < NumClusters; k++ {
		for lv := 1; lv <= p.Clusters[k].MaxLevel(); lv++ {
			if p.NominalSpeed(k, lv) <= p.NominalSpeed(k, lv-1) {
				t.Errorf("speed not monotone for %v at level %d", k, lv)
			}
		}
	}
}

func TestClampLevel(t *testing.T) {
	p := Default()
	c := &p.Clusters[Big]
	if c.ClampLevel(-3) != 0 {
		t.Error("ClampLevel(-3) != 0")
	}
	if c.ClampLevel(100) != c.MaxLevel() {
		t.Error("ClampLevel(100) != MaxLevel")
	}
	if lv, ok := c.Level(1_400_000); !ok || lv != 6 {
		t.Errorf("Level(1.4GHz) = %d,%v want 6,true", lv, ok)
	}
	if _, ok := c.Level(123); ok {
		t.Error("Level(123) should not exist")
	}
}

func TestStateValidAndClamp(t *testing.T) {
	p := Default()
	max := MaxState(p)
	if !max.Valid(p) {
		t.Fatal("MaxState must be valid")
	}
	if max.TotalCores() != 8 {
		t.Errorf("MaxState.TotalCores = %d, want 8", max.TotalCores())
	}
	bad := State{BigCores: 9, LittleCores: -1, BigLevel: 99, LittleLevel: -5}
	if bad.Valid(p) {
		t.Error("clearly invalid state reported valid")
	}
	cl := bad.Clamp(p)
	if cl.BigCores != 4 || cl.LittleCores != 0 || cl.BigLevel != 8 || cl.LittleLevel != 0 {
		t.Errorf("Clamp = %+v", cl)
	}
	zero := State{}
	if zero.Valid(p) {
		t.Error("zero-core state must be invalid")
	}
}

// TestDistanceMetricAxioms checks the Manhattan distance is a metric:
// identity, symmetry, and the triangle inequality.
func TestDistanceMetricAxioms(t *testing.T) {
	gen := func(a, b, c, d uint8) State {
		return State{
			BigCores:    int(a % 5),
			LittleCores: int(b % 5),
			BigLevel:    int(c % 9),
			LittleLevel: int(d % 6),
		}
	}
	f := func(a1, a2, a3, a4, b1, b2, b3, b4, c1, c2, c3, c4 uint8) bool {
		x, y, z := gen(a1, a2, a3, a4), gen(b1, b2, b3, b4), gen(c1, c2, c3, c4)
		if Distance(x, x) != 0 {
			return false
		}
		if Distance(x, y) != Distance(y, x) {
			return false
		}
		if Distance(x, y) < 0 {
			return false
		}
		if Distance(x, y) == 0 && x != y {
			return false
		}
		return Distance(x, z) <= Distance(x, y)+Distance(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllStates(t *testing.T) {
	p := Default()
	all := AllStates(p, 1)
	// (5*5 - 1) core combinations × 9 big levels × 6 little levels.
	want := (5*5 - 1) * 9 * 6
	if len(all) != want {
		t.Fatalf("AllStates = %d states, want %d", len(all), want)
	}
	seen := make(map[State]bool, len(all))
	for _, s := range all {
		if !s.Valid(p) {
			t.Fatalf("AllStates produced invalid state %+v", s)
		}
		if seen[s] {
			t.Fatalf("AllStates produced duplicate state %+v", s)
		}
		seen[s] = true
	}
	strided := AllStates(p, 2)
	if len(strided) >= len(all) {
		t.Error("freqStride=2 did not reduce the sweep")
	}
}

func TestPerfScore(t *testing.T) {
	p := Default()
	max := MaxState(p)
	// perfScore = 4*1.5*2.0 + 4*1.625 = 12 + 6.5 = 18.5
	if got := max.PerfScore(p, p.R0()); got != 18.5 {
		t.Errorf("PerfScore(max) = %v, want 18.5", got)
	}
	min := State{BigCores: 0, LittleCores: 1}
	if got := min.PerfScore(p, p.R0()); got != 1.0 {
		t.Errorf("PerfScore(1 little @ f0) = %v, want 1.0", got)
	}
	// Score is monotone when adding a core or raising a level.
	s := State{BigCores: 1, LittleCores: 1, BigLevel: 2, LittleLevel: 2}
	for _, better := range []State{
		s.WithCores(Big, 2), s.WithCores(Little, 2),
		s.WithLevel(Big, 3), s.WithLevel(Little, 3),
	} {
		if better.PerfScore(p, p.R0()) <= s.PerfScore(p, p.R0()) {
			t.Errorf("PerfScore not monotone: %+v vs %+v", better, s)
		}
	}
}

func TestCPUMask(t *testing.T) {
	m := MaskOf(0, 3, 7)
	if !m.Has(0) || !m.Has(3) || !m.Has(7) || m.Has(1) {
		t.Fatalf("mask membership wrong: %b", m)
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
	cpus := m.CPUs()
	if len(cpus) != 3 || cpus[0] != 0 || cpus[1] != 3 || cpus[2] != 7 {
		t.Errorf("CPUs = %v", cpus)
	}
	m = m.Clear(3)
	if m.Has(3) || m.Count() != 2 {
		t.Errorf("Clear failed: %b", m)
	}
	m = m.Set(5)
	if !m.Has(5) {
		t.Errorf("Set failed: %b", m)
	}
	if MaskOf(1, 2).Intersect(MaskOf(2, 3)) != MaskOf(2) {
		t.Error("Intersect wrong")
	}
	if MaskOf(1).Union(MaskOf(2)) != MaskOf(1, 2) {
		t.Error("Union wrong")
	}
}

func TestClusterMasks(t *testing.T) {
	p := Default()
	if AllCPUs(p) != MaskOf(0, 1, 2, 3, 4, 5, 6, 7) {
		t.Error("AllCPUs wrong")
	}
	if ClusterMask(p, Little) != MaskOf(0, 1, 2, 3) {
		t.Error("little ClusterMask wrong")
	}
	if ClusterMask(p, Big) != MaskOf(4, 5, 6, 7) {
		t.Error("big ClusterMask wrong")
	}
}

func TestClusterKindString(t *testing.T) {
	if Little.String() != "little" || Big.String() != "big" {
		t.Error("ClusterKind.String wrong")
	}
	if Little.Other() != Big || Big.Other() != Little {
		t.Error("Other wrong")
	}
	if ClusterKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestStateAccessors(t *testing.T) {
	s := State{BigCores: 2, LittleCores: 3, BigLevel: 4, LittleLevel: 1}
	if s.Cores(Big) != 2 || s.Cores(Little) != 3 {
		t.Error("Cores accessor wrong")
	}
	if s.Level(Big) != 4 || s.Level(Little) != 1 {
		t.Error("Level accessor wrong")
	}
	if s.WithCores(Big, 1).BigCores != 1 || s.WithLevel(Little, 0).LittleLevel != 0 {
		t.Error("With* wrong")
	}
	if s.String() == "" || s.Pretty(Default()) == "" {
		t.Error("String/Pretty empty")
	}
}
