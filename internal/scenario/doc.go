// Package scenario is a declarative, deterministic timed-event engine for
// dynamic-condition simulations: it drives a sim.Machine and its HARS /
// MP-HARS runtime managers through scripted runs in which applications
// arrive and depart at arbitrary ticks, performance targets and workload
// phases shift, cores go offline and come back (hotplug), and cluster
// frequencies get capped — either by scripted dvfs_cap events or by the
// closed thermal loop of package thermal (an RC temperature model plus a
// governor daemon deriving the ceilings from simulated heat).
//
// The paper evaluates HARS only on static runs — a fixed application set
// started at t = 0 on a fixed machine. This package is how the repository
// tests everything the paper does not: the managers' reaction paths when
// the world changes mid-run.
//
// # Scenario format
//
// A scenario is a JSON document (see Decode/Encode):
//
//	{
//	  "name": "example",
//	  "seed": 7,
//	  "manager": "mphars-i",
//	  "duration_ms": 20000,
//	  "sample_every_ms": 100,
//	  "adapt_every": 10,
//	  "apps": [
//	    {"name": "sw0", "bench": "SW", "threads": 8, "start_ms": 0,
//	     "stop_ms": 15000, "target_frac": 0.5, "init_big": 2, "init_little": 2},
//	    {"name": "fe0", "bench": "FE", "threads": 4, "start_ms": 5000,
//	     "target": {"min": 4.5, "avg": 5.0, "max": 5.5}}
//	  ],
//	  "events": [
//	    {"at_ms": 4000, "kind": "hotplug", "cpu": 7, "online": false},
//	    {"at_ms": 6000, "kind": "dvfs_cap", "cluster": "big", "max_level": 4},
//	    {"at_ms": 8000, "kind": "target", "app": "sw0", "frac": 0.7},
//	    {"at_ms": 9000, "kind": "phase", "app": "sw0", "scale": 1.5,
//	     "every_ms": 2000, "repeat": 3},
//	    {"at_ms": 12000, "kind": "hotplug", "cpu": 7, "online": true}
//	  ],
//	  "thermal": {"enabled": true, "trip_c": 75, "release_c": 60,
//	              "big": {"capacitance_j_per_k": 1, "resistance_k_per_w": 10}}
//	}
//
// Fields:
//
//   - manager: "none" (unmanaged, mask-balancer placement), "gts"
//     (unmanaged, Linux HMP GTS placement), "hars-i", "hars-e", "hars-ei"
//     (one single-application HARS manager per application), "mphars-i" or
//     "mphars-e" (one shared MP-HARS manager with resource partitioning).
//   - apps: start_ms/stop_ms are arrival and departure times (stop_ms 0 =
//     runs to the end). The performance target is either an explicit
//     {min, avg, max} band or target_frac, a fraction of the benchmark's
//     measured maximum rate (±5% band). init_big/init_little are the
//     MP-HARS initial core allocation (default 1+1).
//   - events: "hotplug" toggles one CPU (online is required); "dvfs_cap"
//     installs a cluster frequency ceiling (max_level indexes the OPP grid;
//     restore with the grid's top level); "target" re-targets one app
//     (frac or explicit target); "phase" scales the app's future work units
//     by scale (> 0), a workload phase change. Any event may repeat: with
//     every_ms > 0 it fires again every every_ms milliseconds until the run
//     ends or repeat firings have happened (repeat 0 = until the end); a
//     repeating event behaves exactly like its occurrences written out by
//     hand. Validation bounds the total expansion (100,000 occurrences).
//   - thermal: the closed-loop block (see thermal.Spec for every field and
//     default). With enabled=true the engine attaches an RC temperature
//     model fed by the machine's per-tick cluster power and a hysteretic
//     governor daemon that lowers SetLevelCap as a cluster approaches
//     trip_c and releases the ceilings as it cools below release_c; the
//     trace grows "h" sample lines (temperatures, caps, actuation counts)
//     and Result.Thermal carries the governor. Scripted dvfs_cap events
//     are rejected while the governor is enabled — it owns the ceilings.
//     With enabled=false (or no block) the run is bit-for-bit the
//     pre-thermal one.
//
// Determinism: the engine is single-threaded over a deterministic
// simulator, so the same scenario file always produces byte-identical
// traces and results. Actions due at the same millisecond apply in a fixed
// order: platform events first (hotplug, dvfs_cap, in listed order), then
// departures, then arrivals, then application events (target, phase), ties
// broken by position in the file; occurrences of a repeating event carry
// their event's file position for tie-breaking.
//
// Validation rejects scenarios whose hotplug sequence would ever take the
// last core offline, so a validated scenario can always make progress.
package scenario
