package repro

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/hmp"
	"repro/internal/power"
)

// The figure benchmarks regenerate the paper's experiments at the Quick
// scale; run `cmd/hars-experiments -scale full` for the paper-scale rows.

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(experiments.Quick())
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// BenchmarkTable31 regenerates the thread-assignment table (Table 3.1).
func BenchmarkTable31(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.Table31(e); len(rep.Table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable43 regenerates the state & freeze decision table (Table 4.3).
func BenchmarkTable43(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.Table43(nil); len(rep.Table.Rows) != 18 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkPowerProfile regenerates the power-model calibration (§5.1.1).
func BenchmarkPowerProfile(b *testing.B) {
	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	cfg := experiments.Quick().Profile
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := power.ProfileAndFit(plat, gt, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig51 regenerates Figure 5.1 (perf/watt, default target).
func BenchmarkFig51(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.Fig51(e); len(rep.Table.Rows) != 7 {
			b.Fatalf("rows = %d", len(rep.Table.Rows))
		}
	}
}

// BenchmarkFig52 regenerates Figure 5.2 (perf/watt, high target).
func BenchmarkFig52(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.Fig52(e); len(rep.Table.Rows) != 7 {
			b.Fatalf("rows = %d", len(rep.Table.Rows))
		}
	}
}

// BenchmarkFig53 regenerates Figure 5.3 (efficiency & overhead vs d).
func BenchmarkFig53(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.Fig53(e); len(rep.Series) != 4 {
			b.Fatal("bad series")
		}
	}
}

// BenchmarkFig54 regenerates Figure 5.4 (multi-application perf/watt).
func BenchmarkFig54(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.Fig54(e); len(rep.Table.Rows) != 7 {
			b.Fatalf("rows = %d", len(rep.Table.Rows))
		}
	}
}

// BenchmarkFig55 regenerates Figure 5.5 (case 4 behaviour, CONS-I).
func BenchmarkFig55(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.Fig55(e); len(rep.Series) == 0 {
			b.Fatal("no series")
		}
	}
}

// BenchmarkFig56 regenerates Figure 5.6 (case 4 behaviour, MP-HARS-I).
func BenchmarkFig56(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.Fig56(e); len(rep.Series) == 0 {
			b.Fatal("no series")
		}
	}
}

// BenchmarkFig57 regenerates Figure 5.7 (case 4 behaviour, MP-HARS-E).
func BenchmarkFig57(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.Fig57(e); len(rep.Series) == 0 {
			b.Fatal("no series")
		}
	}
}

// BenchmarkAblations regenerates the §3.1.4 extension ablation study.
func BenchmarkAblations(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.Ablations(e); len(rep.Table.Rows) != 9 {
			b.Fatalf("rows = %d", len(rep.Table.Rows))
		}
	}
}

// BenchmarkExtendedSuite runs the beyond-paper ten-benchmark suite.
func BenchmarkExtendedSuite(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := experiments.ExtendedSuite(e); len(rep.Table.Rows) != 11 {
			b.Fatalf("rows = %d", len(rep.Table.Rows))
		}
	}
}

// BenchmarkSearchExhaustive measures one exhaustive GetNextSysState sweep
// (m = n = 4, d = 7), the per-adaptation cost of HARS-E.
func BenchmarkSearchExhaustive(b *testing.B) { bench.SearchExhaustive(b) }

// BenchmarkAssign measures the Table 3.1 assignment computation.
func BenchmarkAssign(b *testing.B) { bench.Assign(b) }

// BenchmarkSimSecond measures simulating one second (1000 ticks) of an
// 8-thread data-parallel workload on the default machine.
func BenchmarkSimSecond(b *testing.B) { bench.SimSecond(b) }

// BenchmarkSimSecondPipeline is the pipeline-workload variant: heavy
// block/unblock churn, the incremental run queues' worst case.
func BenchmarkSimSecondPipeline(b *testing.B) { bench.SimSecondPipeline(b) }

// BenchmarkSimSecondThermal is SimSecond with the closed thermal loop (RC
// model + governor daemon) attached; the delta against SimSecond is the
// per-tick cost of the loop.
func BenchmarkSimSecondThermal(b *testing.B) { bench.SimSecondThermal(b) }

// BenchmarkFleetQuiescent advances ten simulated seconds of a mostly-idle
// 128-node fleet through the event-driven core; the Lockstep variant is the
// per-tick reference, and their ratio is the tracked quiescent speedup.
func BenchmarkFleetQuiescent(b *testing.B) { bench.FleetQuiescent(b) }

// BenchmarkFleetQuiescentLockstep is the same fleet stepped tick by tick.
func BenchmarkFleetQuiescentLockstep(b *testing.B) { bench.FleetQuiescentLockstep(b) }

// BenchmarkFleetScale1k advances ten simulated seconds of a 1024-node fleet
// with a single busy node through the event-driven core — the thousand-node
// scale target.
func BenchmarkFleetScale1k(b *testing.B) { bench.FleetScale1k(b) }

// BenchmarkFleetScale1kActive loads ~5% of the 1024 nodes.
func BenchmarkFleetScale1kActive(b *testing.B) { bench.FleetScale1kActive(b) }

// BenchmarkFleetScale1kFaults crashes and heals a band of idle nodes
// mid-run with the failure detector armed — the wake index on the measured
// path.
func BenchmarkFleetScale1kFaults(b *testing.B) { bench.FleetScale1kFaults(b) }

// BenchmarkFleetScale1kLockstep is the 1024-node fleet stepped tick by
// tick, the denominator of the tracked scale speedup.
func BenchmarkFleetScale1kLockstep(b *testing.B) { bench.FleetScale1kLockstep(b) }

// BenchmarkFleetScale1kSteady is the managed-busy 1024-node fleet with the
// steady-phase turbo path on; the SteadyOff variant runs the identical
// fleet through the general per-tick loop, and their ratio is the tracked
// steady speedup.
func BenchmarkFleetScale1kSteady(b *testing.B) { bench.FleetScale1kSteady(b) }

// BenchmarkFleetScale1kSteadyOff is the steady benchmark's general-loop
// twin.
func BenchmarkFleetScale1kSteadyOff(b *testing.B) { bench.FleetScale1kSteadyOff(b) }
