package core

import (
	"fmt"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// SchedulerKind selects between HARS's two thread schedulers (§3.1.3).
type SchedulerKind int

// The schedulers.
const (
	// Chunk assigns the consecutive T_L lowest-ID threads to the little
	// cores and the rest to the big cores, leveraging constructive cache
	// sharing among consecutive threads — but risking stage starvation in
	// pipeline applications.
	Chunk SchedulerKind = iota
	// Interleaved spreads the big-core assignments evenly across the thread
	// ID range, so every pipeline stage gets a fair share of each core type.
	Interleaved
	// Hierarchy uses the application's thread-hierarchy information
	// (sim.ThreadGrouper) to distribute big-core slots proportionally to
	// each group and interleave within it — the paper's §3.1.4 extension
	// for pipelines with asymmetric stage sizes. Applications without
	// hierarchy information fall back to Interleaved.
	Hierarchy
)

// String names the scheduler kind.
func (k SchedulerKind) String() string {
	switch k {
	case Chunk:
		return "chunk"
	case Interleaved:
		return "interleaved"
	case Hierarchy:
		return "hierarchy"
	}
	return fmt.Sprintf("SchedulerKind(%d)", int(k))
}

// ThreadClusters decides, for T threads ordered by thread ID and a Table 3.1
// assignment of TB threads to the big cluster, which threads go to big
// (true) and which to little (false).
func ThreadClusters(t, tb int, kind SchedulerKind) []bool {
	if tb < 0 {
		tb = 0
	}
	if tb > t {
		tb = t
	}
	out := make([]bool, t)
	switch kind {
	case Chunk:
		// Little cores take the first T_L = T − T_B thread IDs (Fig 3.2a).
		for i := t - tb; i < t; i++ {
			out[i] = true
		}
	case Interleaved:
		// Spread T_B big slots evenly over the ID range (Fig 3.2b):
		// thread i is "big" when the cumulative big quota crosses an
		// integer at i.
		assigned := 0
		for i := 0; i < t; i++ {
			quota := (i + 1) * tb / t
			if quota > assigned {
				out[i] = true
				assigned++
			}
		}
	}
	return out
}

// ThreadClustersHierarchy distributes TB big-core slots over thread groups
// proportionally to group size (largest-remainder rounding), interleaving
// within each group. Groups are contiguous runs of thread IDs, as exposed
// by sim.ThreadGrouper.
func ThreadClustersHierarchy(groups []int, tb int) []bool {
	t := 0
	for _, g := range groups {
		t += g
	}
	if t == 0 {
		return nil
	}
	if tb < 0 {
		tb = 0
	}
	if tb > t {
		tb = t
	}
	// Proportional quota with largest remainders.
	quota := make([]int, len(groups))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(groups))
	assigned := 0
	for i, g := range groups {
		exact := float64(tb) * float64(g) / float64(t)
		quota[i] = int(exact)
		if quota[i] > g {
			quota[i] = g
		}
		assigned += quota[i]
		rems = append(rems, rem{idx: i, frac: exact - float64(quota[i])})
	}
	// Hand out the remaining slots to the largest fractional remainders
	// (stable order: remainder desc, then group index asc).
	for assigned < tb {
		best := -1
		for j := range rems {
			i := rems[j].idx
			if quota[i] >= groups[i] {
				continue
			}
			if best < 0 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		if best < 0 {
			break
		}
		quota[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	// Interleave within each group.
	out := make([]bool, 0, t)
	for i, g := range groups {
		out = append(out, ThreadClusters(g, quota[i], Interleaved)...)
	}
	return out
}

// PlanThreads computes the per-thread cluster plan (true = big) for a
// program under the chosen scheduler, honouring thread-hierarchy information
// when the scheduler is Hierarchy and the program provides it.
func PlanThreads(prog sim.Program, t, tb int, kind SchedulerKind) []bool {
	if kind == Hierarchy {
		if g, ok := prog.(sim.ThreadGrouper); ok {
			if plan := ThreadClustersHierarchy(g.ThreadGroups(), tb); len(plan) == t {
				return plan
			}
		}
		kind = Interleaved
	}
	return ThreadClusters(t, tb, kind)
}

// ApplySchedule installs the affinity masks of the chosen scheduler onto a
// process: threads assigned to a cluster get the mask of the cores that
// cluster actually uses (C_B,U / C_L,U of Table 3.1), taken from the
// application's allocated core lists. The simulated OS balances within each
// mask, as Linux does within a cpuset.
//
// bigCores and littleCores are the global CPU numbers allocated to the
// application (MP-HARS passes its partition; single-application HARS passes
// the first C_B,U big and C_L,U little cores).
func ApplySchedule(p *sim.Process, asg Assignment, kind SchedulerKind, bigCores, littleCores []int) {
	plan := PlanThreads(p.Program(), len(p.Threads), asg.TB, kind)
	ApplyPlan(p, plan, asg, bigCores, littleCores)
}

// ApplyPlan installs an explicit per-thread cluster plan.
func ApplyPlan(p *sim.Process, toBig []bool, asg Assignment, bigCores, littleCores []int) {
	t := len(p.Threads)
	useBig := trimCores(bigCores, asg.CBU)
	useLittle := trimCores(littleCores, asg.CLU)
	bigMask := hmp.MaskOf(useBig...)
	littleMask := hmp.MaskOf(useLittle...)

	// Degenerate allocations: fall back to whichever cluster has cores.
	if bigMask == 0 && littleMask == 0 {
		panic(fmt.Sprintf("core: ApplySchedule(%s): no cores allocated", p.Name))
	}
	for i := 0; i < t; i++ {
		mask := littleMask
		if i < len(toBig) && toBig[i] {
			mask = bigMask
		}
		if mask == 0 {
			if bigMask != 0 {
				mask = bigMask
			} else {
				mask = littleMask
			}
		}
		p.SetAffinity(i, mask)
	}
}

func trimCores(cores []int, n int) []int {
	if n > len(cores) {
		n = len(cores)
	}
	if n < 0 {
		n = 0
	}
	return cores[:n]
}

// DefaultCores returns the first n global CPU numbers of cluster k — the
// core list single-application HARS hands to ApplySchedule.
func DefaultCores(p *hmp.Platform, k hmp.ClusterKind, n int) []int {
	if n > p.Clusters[k].Cores {
		n = p.Clusters[k].Cores
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.CPU(k, i))
	}
	return out
}
