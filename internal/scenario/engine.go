package scenario

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/mphars"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Options configures a scenario run. The zero value selects the default
// platform, the ground-truth power model, the synthetic linear estimator
// model, engine-local max-rate calibration, and no trace output.
//
// Plat, Power, and Model apply to the legacy single machine only: a
// scenario declaring nodes owns its platforms (each node builds its own
// ground-truth power model and estimator model), and Run rejects the
// overrides.
type Options struct {
	Plat  *hmp.Platform      // default hmp.Default()
	Power sim.PowerModel     // machine power model; default power.DefaultGroundTruth
	Model *power.LinearModel // manager estimator model; default DefaultModel

	// MaxRate resolves a benchmark's maximum achievable heartbeat rate for
	// fractional targets. Nil selects an engine-local calibration run per
	// (bench, threads, node) tuple (deterministic, cached for the run).
	// A non-nil override is consulted for every node — callers supplying
	// one to a multi-node scenario with heterogeneous platforms are
	// responsible for the rates making sense on every node.
	MaxRate func(short string, threads int) float64

	// Trace, when non-nil, receives the per-sample metric trace (see the
	// package comment). The trace is also folded into Result.TraceDigest
	// whether or not it is written anywhere.
	Trace io.Writer

	// PerTick, when non-nil, runs as a machine daemon every tick before the
	// managers — on every node of a multi-node run; property tests install
	// invariant checkers here.
	PerTick func(*sim.Machine)

	// Strict makes the engine verify runtime invariants after every applied
	// action and every trace sample — no runnable thread on an offline
	// core, cluster levels within their ceilings, the mphars-* partitioning
	// invariants, and the fleet scheduler's conservation invariants —
	// returning an error on the first violation. Property tests run with
	// Strict on.
	Strict bool

	// CheckEveryTick runs the same invariant suite as Strict after every
	// fleet tick, not just at actions and samples (the hars-scenario
	// -check debug flag; fuzz and property runs turn it on). Costlier, but
	// it catches violations that self-heal before the next sample.
	// Its hook does not implement fleet.Sleeper, so it also forces the
	// fleet into per-tick lockstep — which is exactly what per-tick
	// checking needs.
	CheckEveryTick bool

	// Lockstep forces the fleet's reference per-tick advancement strategy
	// instead of the event-driven core. Results are bit-for-bit identical
	// either way (the equivalence suite proves it); the switch exists for
	// benchmarking and for that proof.
	Lockstep bool

	// NoSteady disables the machines' steady-phase turbo path
	// (sim.Machine.SetSteady(false)), leaving the general per-tick loop to
	// run every busy stretch. Results are bit-for-bit identical either way
	// (the steady equivalence suite proves it); the switch exists for
	// benchmarking and for that proof. Mirrors the hars-scenario -steady
	// flag.
	NoSteady bool

	// WakeScan switches the fleet scheduler's NextWake to the full-scan
	// reference implementation instead of the incremental wake index.
	// Identical wake times either way (the equivalence suite proves it);
	// the switch exists for benchmarking and for that proof.
	WakeScan bool

	// VerifyWake makes every NextWake compute both the scan and the index
	// answer; the run fails with the first divergence. For tests.
	VerifyWake bool

	// Workers shards node advancement between fleet decision points across
	// this many goroutines (fleet.SetWorkers). Any width produces
	// byte-identical results; values above 1 are ignored when PerTick is
	// set, because property checkers are shared closures the engine must
	// not invoke concurrently.
	Workers int

	// TraceDecisions forces decision tracing on, exactly as if the
	// scenario declared an enabled "decisions" block (the hars-scenario
	// -trace-decisions flag). The scenario document itself is untouched.
	TraceDecisions bool

	// ForceDecisions maps decision ID → node name, overriding the
	// scheduler's choice at exactly those decisions — the counterfactual
	// replay seam (see RunCounterfactual). Decision IDs are deterministic
	// whether or not tracing is on, so an ID recorded in one run addresses
	// the same decision in the forced replay. Unknown node names reject
	// the run.
	ForceDecisions map[uint64]string
}

// AppResult summarizes one application after the run.
type AppResult struct {
	Name       string
	Beats      int64
	Work       float64
	Migrations int  // thread-level core migrations, continuous across nodes
	Arrived    bool // the arrival fired (always true once start_ms passed)
	Departed   bool // the departure fired after the app had run
	// Skipped: the app was never admitted — every partition stayed full
	// from its arrival to the end of the run (the app never spawned).
	Skipped bool
	// Queued: the arrival had to wait in the admission queue at least once
	// (it may still have been admitted later; see Skipped).
	Queued bool
	// Node is the node the app last ran on ("" while never admitted, and
	// for the legacy single machine).
	Node string
	// NodeMigrations counts fleet-level moves between nodes.
	NodeMigrations int
	// MigrationDelayUS is the total time the app spent frozen by
	// work-conserving moves: checkpoint freeze and transfer charges, plus
	// any re-queue wait while its captured state was parked.
	MigrationDelayUS sim.Time
	// SLOSamples/SLOMisses count the trace samples scored against the
	// app's SLO and how many delivered less than its target rate (always
	// zero for apps without an "slo" block).
	SLOSamples int
	SLOMisses  int
	// Recoveries counts crash recoveries: how many times the app was
	// salvaged off a node declared failed (and re-placed from its last
	// background snapshot, or restarted when none existed yet).
	Recoveries int
	// LostWorkUS totals the running time rolled back by crashes: for each
	// crash, the time since the app's last background snapshot (since its
	// incarnation start when no snapshot existed). Bounded per crash by
	// the faults block's checkpoint_every_ms.
	LostWorkUS sim.Time
	// Stranded: the run ended with the app parked in the admission queue,
	// its state frozen in a checkpoint — it ran, was captured off a node
	// by a migration or a crash, and was never re-admitted. With any
	// surviving capacity the recovery pass should drain these to zero.
	Stranded bool
}

// NodeResult summarizes one node of the run.
type NodeResult struct {
	Name       string // "" for the legacy single machine
	Manager    string
	Machine    *sim.Machine
	EnergyJ    float64
	OverheadUS sim.Time

	// MP is the node's MP-HARS manager (nil for other manager kinds);
	// Thermal its closed-loop governor (nil when the node models no heat).
	MP      *mphars.Manager
	Thermal *thermal.Governor
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario *Scenario
	Machine  *sim.Machine // the first node's machine (the only one, legacy)
	Apps     []AppResult

	// Nodes describes every machine of the run in index order — exactly
	// one entry for a classic scenario, one per nodes entry otherwise.
	Nodes     []NodeResult
	Placement string // resolved placement policy name

	EnergyJ     float64  // fleet-wide rollup (sum over nodes)
	OverheadUS  sim.Time // fleet-wide rollup
	Samples     int
	TraceDigest uint64 // FNV-64a over the emitted trace bytes

	// Admission-control counters: how many arrivals had to queue for a
	// free partition, and how many of those were never admitted before
	// the run (or their departure) ended.
	QueuedArrivals  int
	DroppedArrivals int
	// NodeMigrations counts fleet-level application moves.
	NodeMigrations int
	// MigrationDelayUS totals the freeze time charged by work-conserving
	// moves across all apps; SLOSamples/SLOMisses total the per-app SLO
	// scoring (see AppResult).
	MigrationDelayUS sim.Time
	SLOSamples       int
	SLOMisses        int

	// Fault-injection rollups (all zero without a faults block):
	// NodeCrashes counts applied node crashes, Recoveries and LostWorkUS
	// total the per-app counters, TransferFails counts transient transfer
	// failures that sent an app into retry backoff.
	NodeCrashes   int
	Recoveries    int
	LostWorkUS    sim.Time
	TransferFails int
	// StrandedApps counts apps still parked in the admission queue with a
	// captured checkpoint when the run ended (see AppResult.Stranded).
	StrandedApps int

	// Decisions is the always-on scheduler decision rollup (decision
	// counts by kind, score margins, queue-wait histogram) — populated
	// whether or not decision tracing is on. DecisionRecords holds the
	// recorded decision stream when the scenario's decisions block (or
	// Options.TraceDecisions) enabled it, up to its Keep cap;
	// DecisionsDropped counts the records beyond it (they still reached
	// the trace).
	Decisions        decision.Rollup
	DecisionRecords  []decision.Record
	DecisionsDropped int64

	// MP is the MP-HARS manager of legacy mphars-* scenarios (nil
	// otherwise — multi-node runs carry theirs in Nodes); Managers maps
	// app name → single-application HARS manager. Tests use these for
	// consistency checks.
	MP       *mphars.Manager
	Managers map[string]*core.Manager

	// Thermal is the closed-loop governor of legacy thermal-enabled
	// scenarios (nil otherwise; multi-node runs carry theirs in Nodes).
	Thermal *thermal.Governor
}

// DefaultModel returns the synthetic linear power model handed to the
// managers' estimators when Options.Model is nil — the same fixture the
// repository's golden-digest tests use (power.SyntheticLinearModel), so
// event-free scenario runs are bit-identical to the direct-run path.
func DefaultModel(plat *hmp.Platform) *power.LinearModel {
	return power.SyntheticLinearModel(plat)
}

// action ordering priorities at equal timestamps (see the package comment).
const (
	prioPlatform = iota
	prioDepart
	prioArrive
	prioAppEvent
)

type action struct {
	at   sim.Time
	prio int
	seq  int
	ev   *Event       // platform and app events
	app  *appRun      // arrivals and departures
	fa   *faultAction // fault injections
}

// faultAction kinds.
const (
	faultCrash = iota
	faultHeal
	faultCoreFail
)

// faultAction is one expanded fault-timeline entry: a node crash, the
// matching recovery, or a permanent core failure.
type faultAction struct {
	kind int
	node int // fleet node index
	cpu  int // faultCoreFail only
	// until is the crash's recovery deadline (faultCrash only): the matching
	// heal applies only once the node's downUntil — the max over overlapping
	// crash windows — has been reached. math.MaxInt64 = never recovers.
	until sim.Time
}

// appRun is the engine's per-application state: the checkpointable
// lifecycle identity the fleet scheduler moves between nodes. While the
// app runs, proc is its live incarnation; while its state is frozen
// between nodes (mid-migration, or parked in the queue after a failed
// move), ckpt holds the captured run state and proc is nil.
type appRun struct {
	spec *AppSpec
	fapp *fleet.App // scheduler record (Payload points back here)
	node *nodeRun   // current placement, nil while queued / never admitted
	prog sim.Program
	proc *sim.Process
	mgr  *core.Manager // on hars-* nodes
	res  AppResult

	// Checkpointed run state between incarnations (work-conserving
	// migration): set by Checkpoint, consumed by the next Admit. ckptAt
	// is when the app was frozen; delayUS totals frozen time.
	ckpt    *sim.ProcSnapshot
	ckptAt  sim.Time
	delayUS sim.Time

	// Runtime re-targeting state from scripted target/phase events, kept
	// here so a migration (or an admission delayed past the event)
	// re-applies the scripted change instead of reverting to the spec.
	curTarget *TargetSpec
	curFrac   float64
	curScale  float64

	// SLO scoring tallies (see scoreSLO).
	sloSamples int
	sloMisses  int

	// Crash-recovery state (faults runs only): lastSnap is the retained
	// background snapshot (the restore point a crash falls back to) and
	// lastSnapAt the time work up to which it preserves; incarnAt is when
	// the current incarnation started running, the fallback loss baseline
	// while no snapshot exists yet.
	lastSnap   *sim.ProcSnapshot
	lastSnapAt sim.Time
	incarnAt   sim.Time
}

// beats returns the app's cumulative heartbeat count — continuous across
// nodes, read from the live incarnation or the frozen checkpoint.
func (a *appRun) beats() int64 {
	switch {
	case a.proc != nil:
		return a.proc.HB.Count()
	case a.ckpt != nil:
		return a.ckpt.Beats()
	}
	return 0
}

// work returns the app's cumulative retired work.
func (a *appRun) work() float64 {
	switch {
	case a.proc != nil:
		return a.proc.WorkDone()
	case a.ckpt != nil:
		return a.ckpt.WorkDone()
	}
	return 0
}

// threadMigrations returns the app's cumulative core-migration count.
func (a *appRun) threadMigrations() int {
	switch {
	case a.proc != nil:
		mig := 0
		for _, t := range a.proc.Threads {
			mig += t.Migrations()
		}
		return mig
	case a.ckpt != nil:
		return a.ckpt.Migrations()
	}
	return 0
}

// targetSpec returns the app's current target parameters: the last scripted
// target event's values when one fired, the spec's otherwise.
func (a *appRun) targetSpec() (*TargetSpec, float64) {
	if a.curTarget != nil || a.curFrac > 0 {
		return a.curTarget, a.curFrac
	}
	return a.spec.Target, a.spec.TargetFrac
}

// nodeRun is the engine's per-node state: the fleet node plus the typed
// handles and resolved configuration.
type nodeRun struct {
	rn    resolvedNode
	fn    *fleet.Node
	m     *sim.Machine
	model *power.LinearModel
	mp    *mphars.Manager
	gov   *thermal.Governor

	// downUntil is the node's pending recovery deadline while crashed: the
	// max over all crash windows covering it, so overlapping crashes extend
	// the outage instead of healing early.
	downUntil sim.Time
}

type daemonFunc func(*sim.Machine)

func (f daemonFunc) Tick(m *sim.Machine) { f(m) }

// engine carries one run's state.
type engine struct {
	sc        *Scenario
	opts      Options
	fleetMode bool // the scenario declares nodes
	nodes     []*nodeRun
	fl        *fleet.Fleet
	sched     *fleet.Scheduler
	apps      []*appRun
	appSpecs  []AppSpec // declared apps + arrival-stream expansions
	ckptCost  sim.CheckpointCost

	rates map[string]float64 // max-rate cache: "short/threads/node"
	trace *bufio.Writer
	out   io.Writer // trace sink: the digest hash, plus Options.Trace if set
	hash  interface {
		io.Writer
		Sum64() uint64
	}
	samples int

	// Fault-injection state (all nil/zero without a faults block, keeping
	// fault-free runs on the exact legacy path).
	faultCfg *fault.Config
	coin     *fault.Coin
	crashes  int
	tickErr  error // first per-tick invariant violation (CheckEveryTick)

	// Decision-tracing state (nil/false without a decisions block or
	// TraceDecisions, keeping untraced runs byte-identical).
	decOn  bool
	decLog *decision.Log
}

// Run executes the scenario and returns its result. The run is fully
// deterministic: the same scenario and options always produce the same
// result and byte-identical trace output — whether it drives one machine
// or a fleet.
func Run(sc *Scenario, opts Options) (*Result, error) {
	fleetMode := len(sc.Nodes) > 0
	if fleetMode && (opts.Plat != nil || opts.Power != nil || opts.Model != nil) {
		return nil, fmt.Errorf("scenario: multi-node scenarios own their platforms; Options.Plat/Power/Model must be nil")
	}
	plat := opts.Plat
	if plat == nil {
		plat = hmp.Default()
	}
	resolved, appSpecs, err := sc.resolveAndValidate(plat)
	if err != nil {
		return nil, err
	}
	// The registry injects the scenario's checkpoint-cost model into the
	// policy (the SLO-aware one prices migration destinations with it).
	ckptCost := sc.Checkpoint.Cost()
	policy, err := fleet.PolicyByName(sc.Placement, ckptCost)
	if err != nil {
		return nil, err
	}

	e := &engine{
		sc: sc, opts: opts, fleetMode: fleetMode,
		appSpecs: appSpecs,
		ckptCost: ckptCost,
		rates:    make(map[string]float64),
		hash:     fnv.New64a(),
	}
	out := io.Writer(e.hash)
	if opts.Trace != nil {
		e.trace = bufio.NewWriter(opts.Trace)
		out = io.MultiWriter(e.hash, e.trace)
	}
	e.out = out

	for i := range resolved {
		nr, err := e.buildNode(resolved[i])
		if err != nil {
			return nil, err
		}
		e.nodes = append(e.nodes, nr)
	}
	fnodes := make([]*fleet.Node, len(e.nodes))
	for i, nr := range e.nodes {
		fnodes[i] = nr.fn
	}
	e.fl, err = fleet.New(fnodes...)
	if err != nil {
		return nil, err
	}
	e.fl.SetLockstep(opts.Lockstep)
	if opts.NoSteady {
		e.fl.SetSteady(false)
	}
	if opts.Workers > 1 && opts.PerTick == nil {
		e.fl.SetWorkers(opts.Workers)
	}
	var fcfg *fault.Config
	if sc.Faults != nil {
		c := sc.Faults.Runtime()
		fcfg = &c
		e.faultCfg = fcfg
		e.coin = fault.NewCoin(c)
	}
	// Decision tracing: the scenario's block or the CLI override arms the
	// observer (a bounded in-memory log teed with the gated "d" trace
	// lines); a force map resolves node names to fleet indices up front.
	var obs decision.Sink
	e.decOn = opts.TraceDecisions || (sc.Decisions != nil && sc.Decisions.Enabled)
	if e.decOn {
		keep := 0
		if sc.Decisions != nil {
			keep = sc.Decisions.Keep
		}
		e.decLog = &decision.Log{Max: keep}
		obs = decision.Tee(e.decLog, decision.SinkFunc(e.traceDecision))
	}
	var force map[uint64]int
	if len(opts.ForceDecisions) > 0 {
		force = make(map[uint64]int, len(opts.ForceDecisions))
		for id, name := range opts.ForceDecisions {
			nr := e.nodeRunByName(name)
			if nr == nil {
				return nil, fmt.Errorf("scenario: force decision %d: unknown node %q", id, name)
			}
			force[id] = nr.rn.idx
		}
	}
	migrate := sim.Time(sc.MigrateEveryMS) * sim.Millisecond
	e.sched = fleet.NewScheduler(e.fl, e, fleet.Config{
		Policy:       policy,
		MigrateEvery: migrate,
		Fault:        fcfg,
		Observer:     obs,
		Force:        force,
	})
	e.sched.SetWakeScan(opts.WakeScan)
	e.sched.SetWakeVerify(opts.VerifyWake)
	if opts.CheckEveryTick {
		// Registered after the scheduler's hook, so each tick is checked in
		// its settled post-scheduling state.
		e.fl.AddHook(fleet.HookFunc(func(*fleet.Fleet) {
			if e.tickErr == nil {
				e.tickErr = e.checkStrict()
			}
		}))
	}

	for i := range e.appSpecs {
		spec := &e.appSpecs[i]
		a := &appRun{spec: spec, res: AppResult{Name: spec.Name}}
		a.fapp = &fleet.App{Name: spec.Name, Payload: a}
		if spec.Node != "" {
			a.fapp.Pinned = e.nodeRunByName(spec.Node).fn
		}
		if spec.SLO != nil {
			a.fapp.SLO = &fleet.SLO{TargetHPS: spec.SLO.TargetHPS, SlackMS: spec.SLO.SlackMS}
		}
		e.apps = append(e.apps, a)
	}
	actions := e.buildActions()

	e.writeHeader()

	end := sim.Time(sc.DurationMS) * sim.Millisecond
	every := sim.Time(sc.SampleEveryMS) * sim.Millisecond
	if every <= 0 {
		every = 100 * sim.Millisecond
	}
	nextSample := sim.Time(0)
	ai := 0
	for {
		for ai < len(actions) && actions[ai].at <= e.fl.Now() {
			e.apply(actions[ai])
			if opts.Strict {
				if err := e.checkStrict(); err != nil {
					return nil, err
				}
			}
			ai++
		}
		if e.fl.Now() >= nextSample {
			e.sample()
			nextSample += every
			if opts.Strict {
				if err := e.checkStrict(); err != nil {
					return nil, err
				}
			}
		}
		if e.fl.Now() >= end {
			break
		}
		next := end
		if ai < len(actions) && actions[ai].at < next {
			next = actions[ai].at
		}
		if nextSample < next {
			next = nextSample
		}
		e.fl.RunUntil(next)
		if e.tickErr != nil {
			return nil, e.tickErr
		}
	}
	if e.trace != nil {
		if err := e.trace.Flush(); err != nil {
			return nil, fmt.Errorf("scenario: trace: %w", err)
		}
	}
	if e.opts.VerifyWake {
		if err := e.sched.WakeVerifyErr(); err != nil {
			return nil, err
		}
	}
	return e.result(), nil
}

// buildNode assembles one machine of the run: platform, power model,
// manager, thermal governor, and the per-tick hooks — in the fixed daemon
// order (governor, observers, MP-HARS manager) the thermal subsystem
// documents.
func (e *engine) buildNode(rn resolvedNode) (*nodeRun, error) {
	pm := e.opts.Power
	if pm == nil {
		pm = power.DefaultGroundTruth(rn.plat)
	}
	model := e.opts.Model
	if model == nil {
		model = DefaultModel(rn.plat)
	}
	sn := sim.NewNode(rn.idx, rn.name, rn.plat, sim.Config{Power: pm})
	nr := &nodeRun{rn: rn, m: sn.Machine, model: model}

	switch rn.manager {
	case ManagerGTS:
		nr.m.SetPlacer(gts.New(rn.plat))
	case ManagerMPHARSI, ManagerMPHARSE:
		v := mphars.MPHARSI
		if rn.manager == ManagerMPHARSE {
			v = mphars.MPHARSE
		}
		nr.mp = mphars.New(nr.m, model, mphars.Config{
			Version:     v,
			AdaptEvery:  rn.adaptEvery,
			OverheadCPU: rn.overheadCPU,
		})
	}
	// The thermal governor runs first among the daemons: PerTick observers
	// see its post-actuation state for the tick, and a ceiling moved this
	// tick is visible to MP-HARS's same-tick ReconcilePlatform and to the
	// HARS managers' next bounds clamp.
	if rn.thermalOn() {
		gov, err := thermal.NewGovernor(*rn.thermal)
		if err != nil {
			return nil, err
		}
		nr.gov = gov
		nr.m.AddDaemon(gov)
	}
	if e.opts.PerTick != nil {
		nr.m.AddDaemon(daemonFunc(e.opts.PerTick))
	}
	if nr.mp != nil {
		nr.m.AddDaemon(nr.mp)
	}
	nr.fn = &fleet.Node{Node: sn, MP: nr.mp, Gov: nr.gov}
	return nr, nil
}

func (e *engine) nodeRunByName(name string) *nodeRun {
	for _, nr := range e.nodes {
		if nr.rn.name == name {
			return nr
		}
	}
	return nil
}

// writeHeader emits the trace preamble. The single-machine format is byte-
// for-byte the historical one; multi-node runs use node-tagged line kinds
// plus a fleet rollup line.
func (e *engine) writeHeader() {
	sc := e.sc
	if !e.fleetMode {
		fmt.Fprintf(e.out, "# scenario %s seed %d manager %s\n", sc.Name, sc.Seed, sc.Manager)
		fmt.Fprintln(e.out, "# m,t_ms,online,big_level,little_level,big_cap,little_cap,energy,overhead_us")
		fmt.Fprintln(e.out, "# a,t_ms,app,beats,rate,work,migrations")
		if e.nodes[0].gov != nil {
			fmt.Fprintln(e.out, "# h,t_ms,big_temp,little_temp,big_cap,little_cap,throttles,releases")
		}
		if e.decOn {
			fmt.Fprintln(e.out, "# d,t_ms,id,kind,app,from,to,outcome,margin,candidates")
		}
		return
	}
	fmt.Fprintf(e.out, "# scenario %s seed %d manager %s nodes %d placement %s\n",
		sc.Name, sc.Seed, sc.Manager, len(e.nodes), e.sched.Policy().Name())
	fmt.Fprintln(e.out, "# n,t_ms,node,online,big_level,little_level,big_cap,little_cap,energy,overhead_us")
	fmt.Fprintln(e.out, "# a,t_ms,node,app,beats,rate,work,migrations,node_migrations")
	for _, nr := range e.nodes {
		if nr.gov != nil {
			fmt.Fprintln(e.out, "# h,t_ms,node,big_temp,little_temp,big_cap,little_cap,throttles,releases")
			break
		}
	}
	if sc.Faults != nil {
		fmt.Fprintln(e.out, "# x,t_ms,node,event,detail")
	}
	if e.decOn {
		fmt.Fprintln(e.out, "# d,t_ms,id,kind,app,from,to,outcome,margin,candidates")
	}
	fmt.Fprintln(e.out, "# f,t_ms,running,queued,hps,energy,overhead_us,node_migrations")
}

// result assembles the Result after the run.
func (e *engine) result() *Result {
	res := &Result{
		Scenario:    e.sc,
		Machine:     e.nodes[0].m,
		Placement:   e.sched.Policy().Name(),
		EnergyJ:     e.fl.EnergyJ(),
		OverheadUS:  e.fl.Overhead(),
		Samples:     e.samples,
		TraceDigest: e.hash.Sum64(),
	}
	for _, nr := range e.nodes {
		res.Nodes = append(res.Nodes, NodeResult{
			Name:       nr.rn.name,
			Manager:    nr.rn.manager,
			Machine:    nr.m,
			EnergyJ:    nr.m.EnergyJ(),
			OverheadUS: nr.m.Overhead(),
			MP:         nr.mp,
			Thermal:    nr.gov,
		})
	}
	if !e.fleetMode {
		res.MP = e.nodes[0].mp
		res.Thermal = e.nodes[0].gov
	}
	stats := e.sched.Stats()
	res.QueuedArrivals = stats.Queued
	res.NodeMigrations = stats.Migrations
	res.NodeCrashes = e.crashes
	res.TransferFails = stats.TransferFails
	res.Decisions = stats.Decisions
	if e.decLog != nil {
		res.DecisionRecords = e.decLog.Records()
		res.DecisionsDropped = e.decLog.Dropped()
	}
	for _, a := range e.apps {
		a.res.Beats = a.beats()
		a.res.Work = a.work()
		a.res.Migrations = a.threadMigrations()
		a.res.Queued = a.fapp.EverQueued()
		a.res.NodeMigrations = a.fapp.Migrations()
		a.res.MigrationDelayUS = a.delayUS
		a.res.SLOSamples = a.sloSamples
		a.res.SLOMisses = a.sloMisses
		// Skipped = the app never ran at all: no live incarnation at the
		// end, no departure, and no run state frozen by a move (an app
		// checkpointed mid-migration and never re-admitted is not
		// "skipped" — it ran; its Queued flag records the stall).
		if a.res.Arrived && a.proc == nil && !a.res.Departed {
			if a.ckpt == nil {
				a.res.Skipped = true
				res.DroppedArrivals++
			} else {
				a.res.Stranded = true
				res.StrandedApps++
			}
		}
		res.MigrationDelayUS += a.delayUS
		res.SLOSamples += a.sloSamples
		res.SLOMisses += a.sloMisses
		res.Recoveries += a.res.Recoveries
		res.LostWorkUS += a.res.LostWorkUS
		res.Apps = append(res.Apps, a.res)
	}
	for _, a := range e.apps {
		if a.mgr != nil {
			if res.Managers == nil {
				res.Managers = make(map[string]*core.Manager)
			}
			res.Managers[a.res.Name] = a.mgr
		}
	}
	return res
}

// buildActions folds arrivals, departures, and events into one ordered
// timeline.
func (e *engine) buildActions() []action {
	var out []action
	seq := 0
	for _, a := range e.apps {
		out = append(out, action{
			at: sim.Time(a.spec.StartMS) * sim.Millisecond, prio: prioArrive, seq: seq, app: a,
		})
		seq++
		if a.spec.StopMS > 0 {
			out = append(out, action{
				at: sim.Time(a.spec.StopMS) * sim.Millisecond, prio: prioDepart, seq: seq, app: a,
			})
			seq++
		}
	}
	for i := range e.sc.Events {
		ev := &e.sc.Events[i]
		prio := prioAppEvent
		if ev.Kind == KindHotplug || ev.Kind == KindDVFSCap {
			prio = prioPlatform
		}
		// A repeating event expands into one action per occurrence; they
		// all share the event's sequence number, so same-time ties between
		// different events still break by position in the file.
		for _, at := range ev.Occurrences(e.sc.DurationMS) {
			out = append(out, action{
				at: sim.Time(at) * sim.Millisecond, prio: prio, seq: seq, ev: ev,
			})
		}
		seq++
	}
	if e.sc.Faults != nil {
		seq = e.buildFaultActions(&out, seq)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].at != out[j].at {
			return out[i].at < out[j].at
		}
		if out[i].prio != out[j].prio {
			return out[i].prio < out[j].prio
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// buildFaultActions expands the faults block into the action timeline:
// scripted crashes (each with its recovery, unless down_ms is 0 = forever),
// scripted permanent core failures, then the seeded-random crash process.
// Fault actions run at platform priority, like hotplug.
func (e *engine) buildFaultActions(out *[]action, seq int) int {
	fs := e.sc.Faults
	addCrash := func(node int, atMS, downMS int64) {
		until := sim.Time(math.MaxInt64)
		if downMS > 0 {
			until = sim.Time(atMS+downMS) * sim.Millisecond
		}
		fa := &faultAction{kind: faultCrash, node: node, until: until}
		*out = append(*out, action{
			at: sim.Time(atMS) * sim.Millisecond, prio: prioPlatform, seq: seq, fa: fa,
		})
		if downMS > 0 && atMS+downMS <= e.sc.DurationMS {
			*out = append(*out, action{
				at: until, prio: prioPlatform, seq: seq,
				fa: &faultAction{kind: faultHeal, node: node},
			})
		}
		seq++
	}
	for _, c := range fs.Crashes {
		addCrash(e.nodeRunByName(c.Node).rn.idx, c.AtMS, c.DownMS)
	}
	for _, cf := range fs.CoreFailures {
		*out = append(*out, action{
			at: sim.Time(cf.AtMS) * sim.Millisecond, prio: prioPlatform, seq: seq,
			fa: &faultAction{kind: faultCoreFail, node: e.nodeRunByName(cf.Node).rn.idx, cpu: cf.CPU},
		})
		seq++
	}
	for _, c := range fs.Random.ExpandRandom(fs.Seed, e.sc.DurationMS, len(e.nodes)) {
		addCrash(c.Node, c.AtMS, c.DownMS)
	}
	return seq
}

// apply executes one due action.
func (e *engine) apply(act action) {
	switch {
	case act.fa != nil:
		e.applyFault(act.fa)
	case act.app != nil && act.prio == prioArrive:
		act.app.res.Arrived = true
		e.sched.Arrive(act.app.fapp)
	case act.app != nil && act.prio == prioDepart:
		e.depart(act.app)
	default:
		e.event(act.ev)
	}
}

// Admit implements fleet.Host: place the application on the chosen node
// and attach its runtime management. A first admission spawns the program;
// an admission of a checkpointed app (the destination side of a
// work-conserving migration, or a queue drain after a failed move)
// restores the held run state instead. Called by the scheduler at arrival,
// at queue drain, and during the migrate pass.
func (e *engine) Admit(n *fleet.Node, app *fleet.App) fleet.AdmitResult {
	a := app.Payload.(*appRun)
	nr := e.nodes[n.ID]
	if nr.m.Failed() {
		// A crashed-but-undetected node can still be picked (its heartbeat
		// silence hasn't crossed the detector timeout yet); the admission
		// itself bounces.
		return fleet.AdmitNoCapacity
	}
	if a.ckpt != nil {
		return e.admitRestored(nr, app, a)
	}
	b, _ := workload.ByShort(a.spec.Bench)
	threads := a.spec.Threads
	if threads <= 0 {
		threads = 8
	}
	window := a.spec.HBWindow
	if window <= 0 {
		window = 10
	}
	tgtSpec, tgtFrac := a.targetSpec()
	tgt := e.target(tgtSpec, tgtFrac, a.spec.Bench, threads, nr)

	if nr.mp != nil {
		// MP-HARS owns the core partition: admission requires a free core
		// somewhere (the scheduler's CanAdmit checked it; capacity cannot
		// change in between, but stay defensive).
		freeB, freeL := nr.mp.FreeCores(hmp.Big), nr.mp.FreeCores(hmp.Little)
		if freeB+freeL == 0 {
			return fleet.AdmitNoCapacity
		}
		initB := minInt(intOr(a.spec.InitBig, 1), freeB)
		initL := minInt(intOr(a.spec.InitLittle, 1), freeL)
		if initB+initL == 0 {
			if freeL > 0 {
				initL = 1
			} else {
				initB = 1
			}
		}
		a.prog = b.New(threads)
		a.applyPhaseScale()
		a.proc = nr.m.Spawn(a.spec.Name, a.prog, window)
		nr.mp.Register(nr.m, a.proc, tgt, initB, initL)
		a.node = nr
		a.res.Node = nr.rn.name
		a.incarnAt = nr.m.Now()
		app.Proc = a.proc
		// No applyAffinity here: validation rejects affinity masks on
		// managed candidate nodes — MP-HARS owns its apps' masks.
		return fleet.AdmitOK
	}

	a.prog = b.New(threads)
	a.applyPhaseScale()
	a.proc = nr.m.Spawn(a.spec.Name, a.prog, window)
	a.node = nr
	a.res.Node = nr.rn.name
	app.Proc = a.proc
	switch nr.rn.manager {
	case ManagerHARSI, ManagerHARSE, ManagerHARSEI:
		v := core.HARSI
		switch nr.rn.manager {
		case ManagerHARSE:
			v = core.HARSE
		case ManagerHARSEI:
			v = core.HARSEI
		}
		// Start from the maximum state the *current* platform supports, so
		// an arrival after hotplug or capping begins inside bounds.
		st := hmp.MaxState(nr.rn.plat)
		bd := core.MachineBounds(nr.m)
		st.BigCores = minInt(st.BigCores, bd.MaxBigCores)
		st.LittleCores = minInt(st.LittleCores, bd.MaxLittleCores)
		st.BigLevel = minInt(st.BigLevel, bd.BigLevelCap-1)
		st.LittleLevel = minInt(st.LittleLevel, bd.LittleLevelCap-1)
		a.mgr = core.NewManager(nr.m, a.proc, nr.model, tgt, core.Config{
			Version:     v,
			AdaptEvery:  nr.rn.adaptEvery,
			OverheadCPU: nr.rn.overheadCPU,
			InitState:   &st,
		})
		nr.m.AddDaemon(a.mgr)
	default:
		a.proc.HB.SetTarget(tgt)
		e.applyAffinity(a)
	}
	a.incarnAt = nr.m.Now()
	return fleet.AdmitOK
}

// applyPhaseScale re-applies the last scripted workload phase scale to a
// fresh incarnation's program (migrations and delayed admissions must not
// revert a phase event).
func (a *appRun) applyPhaseScale() {
	if a.curScale <= 0 {
		return
	}
	if ps, ok := a.prog.(workload.PhaseScalable); ok {
		ps.SetPhaseScale(a.curScale)
	}
}

// applyAffinity installs the app's static affinity mask on every thread
// (validation restricted the field to unmanaged nodes, where the placer is
// the only authority moving threads — it honours the mask on every
// placement and hotplug re-placement).
func (e *engine) applyAffinity(a *appRun) {
	if len(a.spec.Affinity) == 0 {
		return
	}
	mask := hmp.MaskOf(a.spec.Affinity...)
	for i := range a.proc.Threads {
		a.proc.SetAffinity(i, mask)
	}
}

// admitRestored continues a checkpointed application on the chosen node:
// the held run state (program, heartbeat history, thread progress, pending
// wakeups) resumes once the checkpoint delay — charged from the moment the
// app was frozen — has elapsed, and the node's runtime management
// re-attaches without state loss. Under fault injection the transfer may
// fail transiently (the seeded coin), sending the app into retry backoff,
// and a crash-recovery re-placement restores via Recover so the trace
// records it as such.
func (e *engine) admitRestored(nr *nodeRun, app *fleet.App, a *appRun) fleet.AdmitResult {
	tgtSpec, tgtFrac := a.targetSpec()
	tgt := e.target(tgtSpec, tgtFrac, a.spec.Bench, threadsOf(a), nr)
	resume := a.ckptAt + e.ckptCost.Delay()
	if now := nr.m.Now(); resume < now {
		resume = now
	}
	var initB, initL int
	if nr.mp != nil {
		freeB, freeL := nr.mp.FreeCores(hmp.Big), nr.mp.FreeCores(hmp.Little)
		if freeB+freeL == 0 {
			return fleet.AdmitNoCapacity
		}
		initB = minInt(intOr(a.spec.InitBig, 1), freeB)
		initL = minInt(intOr(a.spec.InitLittle, 1), freeL)
		if initB+initL == 0 {
			if freeL > 0 {
				initL = 1
			} else {
				initB = 1
			}
		}
	}
	// The node can take the app; now the checkpoint image must reach it.
	if e.coin != nil && e.coin.Flip() {
		return fleet.AdmitTransferFailed
	}
	restore := nr.m.Restore
	if app.Recovering() {
		restore = nr.m.Recover
	}

	if nr.mp != nil {
		a.proc = restore(a.ckpt, resume)
		nr.mp.Register(nr.m, a.proc, tgt, initB, initL)
	} else {
		a.proc = restore(a.ckpt, resume)
		switch nr.rn.manager {
		case ManagerHARSI, ManagerHARSE, ManagerHARSEI:
			v := core.HARSI
			switch nr.rn.manager {
			case ManagerHARSE:
				v = core.HARSE
			case ManagerHARSEI:
				v = core.HARSEI
			}
			st := hmp.MaxState(nr.rn.plat)
			bd := core.MachineBounds(nr.m)
			st.BigCores = minInt(st.BigCores, bd.MaxBigCores)
			st.LittleCores = minInt(st.LittleCores, bd.MaxLittleCores)
			st.BigLevel = minInt(st.BigLevel, bd.BigLevelCap-1)
			st.LittleLevel = minInt(st.LittleLevel, bd.LittleLevelCap-1)
			a.mgr = core.NewManager(nr.m, a.proc, nr.model, tgt, core.Config{
				Version:     v,
				AdaptEvery:  nr.rn.adaptEvery,
				OverheadCPU: nr.rn.overheadCPU,
				InitState:   &st,
			})
			nr.m.AddDaemon(a.mgr)
		default:
			a.proc.HB.SetTarget(tgt)
			e.applyAffinity(a)
		}
	}
	// Track the restored program object: identical to a.prog for a
	// migration (Checkpoint moves the live object into the snapshot), but a
	// crash recovery restores a clone — scripted phase events must mutate
	// the live incarnation, and a phase change since the snapshot was taken
	// must be re-applied to it.
	a.prog = a.ckpt.Prog
	a.applyPhaseScale()
	if e.faultCfg != nil {
		// Promote the consumed checkpoint to the app's crash restore point
		// (its state right now is identical — nothing has executed since the
		// restore). Without this, a crash between re-admission and the next
		// background snapshot could roll back past the checkpointed work.
		if snap, ok := a.ckpt.Clone(); ok {
			a.lastSnap, a.lastSnapAt = snap, resume
		}
		if app.Recovering() {
			e.traceFault(nr, "recover", a.spec.Name)
		}
	}
	a.delayUS += resume - a.ckptAt
	a.ckpt = nil
	a.node = nr
	a.res.Node = nr.rn.name
	a.incarnAt = resume
	app.Proc = a.proc
	return fleet.AdmitOK
}

// Checkpoint implements fleet.Host: freeze the application's run state on
// its node for a work-conserving move — detach its runtime management,
// capture progress/heartbeat/wakeup state, and tear the local incarnation
// down. Statistics stay continuous: the next Admit resumes exactly here.
func (e *engine) Checkpoint(n *fleet.Node, app *fleet.App) {
	a := app.Payload.(*appRun)
	nr := e.nodes[n.ID]
	if nr.mp != nil {
		nr.mp.Unregister(nr.m, a.proc)
	}
	if a.mgr != nil {
		nr.m.RemoveDaemon(a.mgr)
		a.mgr = nil
	}
	a.ckpt = nr.m.Checkpoint(a.proc)
	a.ckptAt = nr.m.Now()
	a.proc = nil
	a.node = nil
	app.Proc = nil
}

// Snapshot implements fleet.FaultHost: take the periodic background
// checkpoint of a running application without disturbing it. The retained
// snapshot is the restore point a later crash falls back to, bounding the
// work a crash can lose by the snapshot cadence.
func (e *engine) Snapshot(n *fleet.Node, app *fleet.App) {
	a := app.Payload.(*appRun)
	nr := e.nodes[n.ID]
	if a.proc == nil || a.proc.Exited() {
		return
	}
	if snap, ok := nr.m.Snapshot(a.proc); ok {
		a.lastSnap = snap
		a.lastSnapAt = nr.m.Now()
	}
}

// Salvage implements fleet.FaultHost: the node was declared failed with the
// application placed on it. The machine-side teardown (kill, unregister)
// already happened at the crash instant; here the app's last background
// snapshot becomes its pending restore state — a clone, so the retained
// snapshot survives if the next incarnation crashes too — and the scheduler
// re-queues it. With no snapshot yet, the app restarts from scratch on its
// next admission (the loss is still bounded: a first snapshot is at most one
// cadence after placement).
func (e *engine) Salvage(n *fleet.Node, app *fleet.App) {
	a := app.Payload.(*appRun)
	a.res.Recoveries++
	a.ckpt = nil
	a.ckptAt = 0
	if a.lastSnap != nil {
		if snap, ok := a.lastSnap.Clone(); ok {
			a.ckpt = snap
		} else {
			a.ckpt = a.lastSnap
			a.lastSnap = nil
		}
		a.ckptAt = e.fl.Now()
	}
	a.prog = nil
	a.proc = nil
	a.node = nil
	app.Proc = nil
	e.traceFault(e.nodes[n.ID], "salvage", a.spec.Name)
}

// applyFault executes one fault-timeline action.
func (e *engine) applyFault(fa *faultAction) {
	nr := e.nodes[fa.node]
	switch fa.kind {
	case faultCrash:
		e.crashNode(nr)
		if fa.until > nr.downUntil {
			nr.downUntil = fa.until
		}
	case faultHeal:
		if e.fl.Now() >= nr.downUntil {
			e.healNode(nr)
		}
	case faultCoreFail:
		// Permanent: SetCoreOnline(false) on a failed machine folds into the
		// saved mask, so the core stays dead across crash/heal cycles.
		nr.m.SetCoreOnline(fa.cpu, false)
		if nr.mp != nil && !nr.m.Failed() {
			nr.mp.ReconcilePlatform(nr.m)
		}
		e.traceFault(nr, "corefail", strconv.Itoa(fa.cpu))
	}
}

// crashNode kills a node: every resident application's lost work is charged
// (time since its restore point — its last background snapshot, or its
// incarnation start), its runtime management is detached, and the machine
// fails — all processes killed, all cores offline, but still stepping on the
// lockstep clock, silently. The fleet detector only learns of the crash after
// the heartbeat timeout; until then the apps stay nominally placed.
func (e *engine) crashNode(nr *nodeRun) {
	if nr.m.Failed() {
		return // overlapping crash window; applyFault extends downUntil
	}
	e.crashes++
	now := e.fl.Now()
	for _, a := range e.apps {
		if a.node != nr || a.proc == nil {
			continue
		}
		base := a.incarnAt
		if a.lastSnap != nil {
			base = a.lastSnapAt
		}
		if lost := now - base; lost > 0 {
			a.res.LostWorkUS += lost
		}
		if nr.mp != nil && !a.proc.Exited() {
			nr.mp.Unregister(nr.m, a.proc)
		}
		if a.mgr != nil {
			nr.m.RemoveDaemon(a.mgr)
			a.mgr = nil
		}
	}
	nr.m.Fail()
	if nr.mp != nil {
		nr.mp.ReconcilePlatform(nr.m)
	}
	e.traceFault(nr, "down", "")
}

// healNode brings a crashed node back: the pre-crash online mask (minus any
// cores that failed permanently in between) is restored and the machine
// accepts work again. The detector marks it placeable on its next beat.
func (e *engine) healNode(nr *nodeRun) {
	if !nr.m.Failed() {
		return
	}
	nr.m.Heal()
	if nr.mp != nil {
		nr.mp.ReconcilePlatform(nr.m)
	}
	e.traceFault(nr, "up", "")
}

// traceFault emits one "x" fault-timeline trace line. Gated on the faults
// block, so fault-free traces stay byte-identical to pre-fault ones.
func (e *engine) traceFault(nr *nodeRun, what, detail string) {
	if e.faultCfg == nil {
		return
	}
	fmt.Fprintf(e.out, "x,%d,%s,%s,%s\n", e.fl.Now()/sim.Millisecond, nr.rn.name, what, detail)
}

// traceDecision emits one "d" decision trace line, written at decision time
// from the scheduler's hook on the main goroutine — so the stream
// interleaves with samples identically under the lockstep, event, and
// sharded cores. Only installed when decision tracing is on, so untraced
// runs stay byte-identical. Floats render with %x for exactness; empty
// from/to render as "-" so the column count is fixed.
func (e *engine) traceDecision(r decision.Record) {
	fmt.Fprintf(e.out, "d,%d,%d,%s,%s,%s,%s,%s,%x,%s\n",
		r.T/sim.Millisecond, r.ID, r.Kind, r.App,
		orDash(r.From), orDash(r.Chosen), r.Outcome, r.Margin,
		decision.FormatCandidates(r.Candidates))
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func (e *engine) depart(a *appRun) {
	if a.res.Departed {
		return
	}
	if a.fapp.Queued() {
		// Departure of a still-queued arrival cancels it. A never-admitted
		// arrival stays "skipped" (dropped); one holding a checkpoint ran
		// before being parked, so it departs with its frozen statistics.
		e.sched.Depart(a.fapp)
		if a.ckpt != nil {
			a.res.Departed = true
		}
		return
	}
	if a.proc == nil {
		return
	}
	a.res.Departed = true
	a.res.Node = a.node.rn.name
	if a.node.mp != nil {
		a.node.mp.Unregister(a.node.m, a.proc)
	}
	if a.mgr != nil {
		a.node.m.RemoveDaemon(a.mgr)
	}
	a.node.m.Kill(a.proc)
	e.sched.Depart(a.fapp)
}

func (e *engine) event(ev *Event) {
	switch ev.Kind {
	case KindHotplug, KindDVFSCap:
		nr := e.nodes[0]
		if ev.Node != "" {
			nr = e.nodeRunByName(ev.Node)
		}
		if ev.Kind == KindHotplug {
			nr.m.SetCoreOnline(ev.CPU, *ev.Online)
		} else {
			k, _ := parseCluster(ev.Cluster)
			nr.m.SetLevelCap(k, ev.MaxLevel)
		}
		if nr.mp != nil {
			nr.mp.ReconcilePlatform(nr.m)
		}
	case KindTarget:
		a := e.appByName(ev.App)
		if a == nil || a.res.Departed || !a.res.Arrived {
			// Events before the arrival are dropped, as they always were;
			// recording starts once the arrival has fired.
			return
		}
		// Record the change even while the app waits in the admission
		// queue: the eventual (or any re-) admission applies it.
		a.curTarget, a.curFrac = ev.Target, ev.Frac
		if a.proc == nil {
			return
		}
		tgt := e.target(ev.Target, ev.Frac, a.spec.Bench, threadsOf(a), a.node)
		switch {
		case a.mgr != nil:
			a.mgr.SetTarget(tgt)
		case a.node.mp != nil:
			a.node.mp.SetTarget(a.proc, tgt)
		default:
			a.proc.HB.SetTarget(tgt)
		}
	case KindPhase:
		a := e.appByName(ev.App)
		if a == nil || a.res.Departed || !a.res.Arrived {
			return
		}
		a.curScale = ev.Scale
		if a.prog == nil {
			return
		}
		if ps, ok := a.prog.(workload.PhaseScalable); ok {
			ps.SetPhaseScale(ev.Scale)
		}
	}
}

func (e *engine) appByName(name string) *appRun {
	for _, a := range e.apps {
		if a.spec.Name == name {
			return a
		}
	}
	return nil
}

func threadsOf(a *appRun) int {
	if a.spec.Threads > 0 {
		return a.spec.Threads
	}
	return 8
}

// target resolves a target spec: explicit band, or frac of the benchmark's
// maximum rate (on the node the app runs on) with the paper's ±5% band.
func (e *engine) target(explicit *TargetSpec, frac float64, bench string, threads int, nr *nodeRun) heartbeat.Target {
	if explicit != nil {
		return heartbeat.Target{Min: explicit.Min, Avg: explicit.Avg, Max: explicit.Max}
	}
	if frac <= 0 {
		frac = 0.5
	}
	return heartbeat.TargetAround(e.maxRate(bench, threads, nr), frac, 0.05)
}

// maxRate measures (and caches) a benchmark's maximum achievable heartbeat
// rate on one node's platform: a short unmanaged run under the GTS
// scheduler at the platform maximum, mirroring the experiments
// environment's calibration. The cache keys on the platform instance, so
// nodes sharing a platform (every default-board node) calibrate once.
func (e *engine) maxRate(bench string, threads int, nr *nodeRun) float64 {
	key := fmt.Sprintf("%s/%d/%p", bench, threads, nr.rn.plat)
	if r, ok := e.rates[key]; ok {
		return r
	}
	var r float64
	if e.opts.MaxRate != nil {
		r = e.opts.MaxRate(bench, threads)
	} else {
		b, _ := workload.ByShort(bench)
		cm := sim.New(nr.rn.plat, sim.Config{})
		cm.SetPlacer(gts.New(nr.rn.plat))
		p := cm.Spawn(b.Name, b.New(threads), 10)
		cm.Run(20 * sim.Second)
		r = p.HB.RateOver(8*sim.Second, cm.Now())
	}
	e.rates[key] = r
	return r
}

// scoreSLO scores each SLO'd application at every trace sample: a miss is
// a delivered heartbeat rate below the SLO target. Delivered rate is the
// monitor's window rate, forced to zero while the app is waiting in the
// admission queue or frozen mid-migration (no incarnation), and when the
// latest beat is more than two target periods stale — so a stalled or
// long-frozen app cannot coast on its old window rate. Ramp-up samples
// before the first beat count as misses: the user's SLO does not pause
// while the app warms up. Pure accounting — nothing is written to the
// trace, so SLO-less runs stay byte-identical to pre-SLO ones.
func (e *engine) scoreSLO() {
	now := e.fl.Now()
	for _, a := range e.apps {
		slo := a.spec.SLO
		if slo == nil || !a.res.Arrived || a.res.Departed {
			continue
		}
		rate := 0.0
		if a.proc != nil {
			if rec, ok := a.proc.HB.Latest(); ok {
				rate = rec.WindowRate
				if sim.Seconds(now-rec.Time)*slo.TargetHPS > 2 {
					rate = 0
				}
			}
		}
		a.sloSamples++
		if rate < slo.TargetHPS {
			a.sloMisses++
		}
	}
}

// sample emits one trace sample. Floats are rendered with %x so the trace
// is exact and byte-stable. The single-machine format is the historical
// one; multi-node runs emit one "n" (and "h") line per node, node-tagged
// "a" lines, and an "f" fleet rollup line.
func (e *engine) sample() {
	e.samples++
	e.scoreSLO()
	tms := e.fl.Now() / sim.Millisecond
	if !e.fleetMode {
		nr := e.nodes[0]
		fmt.Fprintf(e.out, "m,%d,%x,%d,%d,%d,%d,%x,%d\n",
			tms, uint64(nr.m.OnlineMask()),
			nr.m.Level(hmp.Big), nr.m.Level(hmp.Little),
			nr.m.LevelCap(hmp.Big), nr.m.LevelCap(hmp.Little),
			nr.m.EnergyJ(), nr.m.Overhead())
		if nr.gov != nil {
			fmt.Fprintf(e.out, "h,%d,%x,%x,%d,%d,%d,%d\n",
				tms, nr.gov.TempC(hmp.Big), nr.gov.TempC(hmp.Little),
				nr.m.LevelCap(hmp.Big), nr.m.LevelCap(hmp.Little),
				nr.gov.Throttles(), nr.gov.Releases())
		}
		for _, a := range e.apps {
			if a.proc == nil {
				continue
			}
			rate := 0.0
			if rec, ok := a.proc.HB.Latest(); ok {
				rate = rec.WindowRate
			}
			mig := 0
			for _, t := range a.proc.Threads {
				mig += t.Migrations()
			}
			fmt.Fprintf(e.out, "a,%d,%s,%d,%x,%x,%d\n",
				tms, a.spec.Name, a.proc.HB.Count(), rate, a.proc.WorkDone(), mig)
		}
		return
	}

	for _, nr := range e.nodes {
		fmt.Fprintf(e.out, "n,%d,%s,%x,%d,%d,%d,%d,%x,%d\n",
			tms, nr.rn.name, uint64(nr.m.OnlineMask()),
			nr.m.Level(hmp.Big), nr.m.Level(hmp.Little),
			nr.m.LevelCap(hmp.Big), nr.m.LevelCap(hmp.Little),
			nr.m.EnergyJ(), nr.m.Overhead())
		if nr.gov != nil {
			fmt.Fprintf(e.out, "h,%d,%s,%x,%x,%d,%d,%d,%d\n",
				tms, nr.rn.name, nr.gov.TempC(hmp.Big), nr.gov.TempC(hmp.Little),
				nr.m.LevelCap(hmp.Big), nr.m.LevelCap(hmp.Little),
				nr.gov.Throttles(), nr.gov.Releases())
		}
	}
	running := 0
	for _, a := range e.apps {
		if a.proc == nil {
			continue
		}
		if !a.proc.Exited() {
			running++
		}
		rate := 0.0
		if rec, ok := a.proc.HB.Latest(); ok {
			rate = rec.WindowRate
		}
		fmt.Fprintf(e.out, "a,%d,%s,%s,%d,%x,%x,%d,%d\n",
			tms, a.node.rn.name, a.spec.Name, a.beats(),
			rate, a.work(), a.threadMigrations(), a.fapp.Migrations())
	}
	stats := e.sched.Stats()
	fmt.Fprintf(e.out, "f,%d,%d,%d,%x,%x,%d,%d\n",
		tms, running, stats.QueueLen, e.fl.HPS(), e.fl.EnergyJ(), e.fl.Overhead(), stats.Migrations)
}

// checkStrict verifies the run-time invariants Strict mode promises, on
// every node, plus the fleet scheduler's conservation invariants.
func (e *engine) checkStrict() error {
	for _, nr := range e.nodes {
		for _, t := range nr.m.Threads() {
			if t.Runnable() && t.Core() >= 0 && !nr.m.CoreOnline(t.Core()) {
				return fmt.Errorf("scenario: t=%d: node %q: runnable thread %s/%d on offline cpu %d",
					e.fl.Now(), nr.rn.name, t.Proc.Name, t.Local, t.Core())
			}
		}
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			if nr.m.Level(k) > nr.m.LevelCap(k) {
				return fmt.Errorf("scenario: t=%d: node %q: cluster %s at level %d above ceiling %d",
					e.fl.Now(), nr.rn.name, k, nr.m.Level(k), nr.m.LevelCap(k))
			}
		}
		if nr.mp != nil {
			if err := nr.mp.CheckInvariants(); err != nil {
				return fmt.Errorf("scenario: t=%d: node %q: %w", e.fl.Now(), nr.rn.name, err)
			}
		}
	}
	if err := e.sched.CheckInvariants(); err != nil {
		return fmt.Errorf("scenario: t=%d: %w", e.fl.Now(), err)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
