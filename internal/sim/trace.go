package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/hmp"
)

// EventKind classifies tracer events.
type EventKind uint8

// The traced event kinds.
const (
	// EvMigrate is a thread moving between CPUs.
	EvMigrate EventKind = iota
	// EvDVFS is a cluster frequency-level change.
	EvDVFS
	// EvBeat is an application heartbeat.
	EvBeat
	// EvHotplug is a core going offline or coming back online.
	EvHotplug
	// EvCap is a cluster DVFS-ceiling change (thermal capping).
	EvCap
	// EvTemp is a periodic cluster temperature sample from a thermal model.
	EvTemp
	// EvThrottle is a thermal-governor actuation: the governor moved a
	// cluster's DVFS ceiling because of its modeled temperature. The
	// accompanying EvCap event records the same ceiling change; EvThrottle
	// additionally carries the triggering temperature.
	EvThrottle
	// EvMigrateOut is a process checkpoint leaving the machine: its run
	// state was captured for a work-conserving move to another node.
	EvMigrateOut
	// EvMigrateIn is a checkpointed process resuming on this machine. T is
	// the restore time; the event's Until field carries the resume time
	// after the charged checkpoint delay (equal to T for a free move).
	EvMigrateIn
	// EvNodeDown is a machine crash: every resident process was killed
	// without exiting cleanly and all cores lost power (Machine.Fail).
	EvNodeDown
	// EvNodeUp is a crashed machine coming back: the pre-crash online mask
	// is restored and the machine accepts work again (Machine.Heal).
	EvNodeUp
	// EvRecover is a process resuming from a crash-recovery snapshot
	// (Machine.Recover): like EvMigrateIn, Until carries the resume time
	// after the charged restore delay.
	EvRecover
	// EvDecision is a fleet scheduler decision (package decision): Proc
	// carries the application, Decision the monotonic decision ID, and
	// Detail the rendered payload (kind, chosen node, outcome, margin,
	// candidate scores). Opt-in: nothing emits these unless a decision
	// sink feeds the tracer, and the CSV columns they add are gated on
	// their presence so existing trace bytes are untouched.
	EvDecision
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvMigrate:
		return "migrate"
	case EvDVFS:
		return "dvfs"
	case EvBeat:
		return "beat"
	case EvHotplug:
		return "hotplug"
	case EvCap:
		return "cap"
	case EvTemp:
		return "temp"
	case EvThrottle:
		return "throttle"
	case EvMigrateOut:
		return "migrate_out"
	case EvMigrateIn:
		return "migrate_in"
	case EvNodeDown:
		return "node_down"
	case EvNodeUp:
		return "node_up"
	case EvRecover:
		return "recover"
	case EvDecision:
		return "decision"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one traced occurrence on the machine.
type Event struct {
	T      Time
	Kind   EventKind
	Proc   string // owning process (migrate, beat)
	Thread int    // local thread ID (migrate)
	From   int    // source CPU (migrate)
	To     int    // destination CPU (migrate)
	// Cluster and Level describe DVFS and cap events.
	Cluster hmp.ClusterKind
	Level   int
	KHz     int
	// CPU and Online describe hotplug events.
	CPU    int
	Online bool
	// TempC is the modeled cluster temperature (temp, throttle events).
	TempC float64
	// Until is the resume time of a checkpointed process (migrate_in): the
	// restored application runs again once the charged freeze and transfer
	// delay has elapsed. Equal to T when the move was free.
	Until Time
	// Node is the name of the node the event occurred on ("" on a
	// standalone machine). Stamped by the tracer from its Node tag, so
	// multi-node traces merged into one stream stay attributable.
	Node string
	// Decision and Detail describe fleet scheduler decision events
	// (EvDecision): Decision is the monotonic decision ID and Detail the
	// pre-rendered decision payload. Zero/empty on every other kind.
	Decision uint64
	Detail   string
}

// Tracer records machine events up to a bounded capacity; beyond it, events
// are counted but dropped (long experiments generate millions of beats).
// Attach with Machine.SetTracer.
type Tracer struct {
	// Max bounds retained events; 0 selects 1,000,000.
	Max int

	// Node, when non-empty, is stamped onto every recorded event that does
	// not already carry a node name. Node.SetTracer sets it; standalone
	// machines leave it empty and traces render exactly as before.
	Node string

	events  []Event
	dropped int64
}

// Events returns the retained events in order.
func (tr *Tracer) Events() []Event { return tr.events }

// Dropped returns how many events exceeded the retention cap.
func (tr *Tracer) Dropped() int64 { return tr.dropped }

// Record appends an externally produced event (subject to the retention
// cap). Daemons that observe quantities the machine itself does not — e.g. a
// thermal model's cluster temperatures — use this to interleave their events
// with the machine's own.
func (tr *Tracer) Record(e Event) { tr.add(e) }

func (tr *Tracer) add(e Event) {
	max := tr.Max
	if max <= 0 {
		max = 1_000_000
	}
	if len(tr.events) >= max {
		tr.dropped++
		return
	}
	if e.Node == "" {
		e.Node = tr.Node
	}
	tr.events = append(tr.events, e)
}

// WriteCSV renders the trace as CSV (time_us,kind,proc,thread,from,to,
// cluster,khz,temp_c). When any event carries a node tag the output
// appends a trailing node column, and when any event is a scheduler
// decision it appends decision/detail columns after that; traces without
// either render exactly the historical format.
func (tr *Tracer) WriteCSV(w io.Writer) error {
	tag := tr.Node != ""
	dec := false
	for i := range tr.events {
		if tr.events[i].Node != "" {
			tag = true
		}
		if tr.events[i].Kind == EvDecision {
			dec = true
		}
		if tag && dec {
			break
		}
	}
	node := func(e Event) string {
		if tag {
			return "," + e.Node
		}
		return ""
	}
	decCols := func(e Event) string {
		if !dec {
			return ""
		}
		if e.Kind != EvDecision {
			return ",,"
		}
		return fmt.Sprintf(",%d,%s", e.Decision, e.Detail)
	}
	header := "time_us,kind,proc,thread,from,to,cluster,khz,temp_c"
	if tag {
		header += ",node"
	}
	if dec {
		header += ",decision,detail"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, e := range tr.events {
		var err error
		switch e.Kind {
		case EvMigrate:
			_, err = fmt.Fprintf(w, "%d,%s,%s,%d,%d,%d,,,%s%s\n", e.T, e.Kind, e.Proc, e.Thread, e.From, e.To, node(e), decCols(e))
		case EvDVFS:
			_, err = fmt.Fprintf(w, "%d,%s,,,,,%s,%d,%s%s\n", e.T, e.Kind, e.Cluster, e.KHz, node(e), decCols(e))
		case EvBeat:
			_, err = fmt.Fprintf(w, "%d,%s,%s,,,,,,%s%s\n", e.T, e.Kind, e.Proc, node(e), decCols(e))
		case EvHotplug:
			_, err = fmt.Fprintf(w, "%d,%s,,,%d,,,%t,%s%s\n", e.T, e.Kind, e.CPU, e.Online, node(e), decCols(e))
		case EvCap:
			_, err = fmt.Fprintf(w, "%d,%s,,,,,%s,%d,%s%s\n", e.T, e.Kind, e.Cluster, e.KHz, node(e), decCols(e))
		case EvTemp:
			_, err = fmt.Fprintf(w, "%d,%s,,,,,%s,,%.3f%s%s\n", e.T, e.Kind, e.Cluster, e.TempC, node(e), decCols(e))
		case EvThrottle:
			_, err = fmt.Fprintf(w, "%d,%s,,,,,%s,%d,%.3f%s%s\n", e.T, e.Kind, e.Cluster, e.KHz, e.TempC, node(e), decCols(e))
		case EvMigrateOut:
			_, err = fmt.Fprintf(w, "%d,%s,%s,,,,,,%s%s\n", e.T, e.Kind, e.Proc, node(e), decCols(e))
		case EvMigrateIn:
			_, err = fmt.Fprintf(w, "%d,%s,%s,,,%d,,,%s%s\n", e.T, e.Kind, e.Proc, e.Until, node(e), decCols(e))
		case EvNodeDown, EvNodeUp:
			_, err = fmt.Fprintf(w, "%d,%s,,,,,,,%s%s\n", e.T, e.Kind, node(e), decCols(e))
		case EvRecover:
			_, err = fmt.Fprintf(w, "%d,%s,%s,,,%d,,,%s%s\n", e.T, e.Kind, e.Proc, e.Until, node(e), decCols(e))
		case EvDecision:
			_, err = fmt.Fprintf(w, "%d,%s,%s,,,,,,%s%s\n", e.T, e.Kind, e.Proc, node(e), decCols(e))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the Trace Event Format record (chrome://tracing,
// https://ui.perfetto.dev).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace in Chrome Trace Event Format:
// heartbeats and migrations as instant events, cluster frequencies as
// counter tracks. Load the output in chrome://tracing or Perfetto.
// Node-tagged events carry a "node:" name prefix, so merged multi-node
// streams keep distinct counter tracks and stay attributable; untagged
// traces render exactly as before.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	out := make([]chromeEvent, 0, len(tr.events))
	for _, e := range tr.events {
		prefix := ""
		if e.Node != "" {
			prefix = e.Node + ":"
		}
		switch e.Kind {
		case EvMigrate:
			out = append(out, chromeEvent{
				Name: prefix + "migrate " + e.Proc, Phase: "i", TS: e.T, PID: 1, TID: e.To,
				Args: map[string]any{"thread": e.Thread, "from": e.From, "to": e.To},
			})
		case EvDVFS:
			out = append(out, chromeEvent{
				Name: prefix + e.Cluster.String() + "-freq", Phase: "C", TS: e.T, PID: 1,
				Args: map[string]any{"khz": e.KHz},
			})
		case EvBeat:
			out = append(out, chromeEvent{
				Name: prefix + "beat " + e.Proc, Phase: "i", TS: e.T, PID: 2,
			})
		case EvHotplug:
			out = append(out, chromeEvent{
				Name: prefix + "hotplug", Phase: "i", TS: e.T, PID: 1, TID: e.CPU,
				Args: map[string]any{"cpu": e.CPU, "online": e.Online},
			})
		case EvCap:
			out = append(out, chromeEvent{
				Name: prefix + e.Cluster.String() + "-cap", Phase: "C", TS: e.T, PID: 1,
				Args: map[string]any{"khz": e.KHz},
			})
		case EvTemp:
			out = append(out, chromeEvent{
				Name: prefix + e.Cluster.String() + "-temp", Phase: "C", TS: e.T, PID: 1,
				Args: map[string]any{"celsius": e.TempC},
			})
		case EvThrottle:
			out = append(out, chromeEvent{
				Name: prefix + "throttle " + e.Cluster.String(), Phase: "i", TS: e.T, PID: 1,
				Args: map[string]any{"khz": e.KHz, "celsius": e.TempC},
			})
		case EvMigrateOut:
			out = append(out, chromeEvent{
				Name: prefix + "migrate_out " + e.Proc, Phase: "i", TS: e.T, PID: 2,
			})
		case EvMigrateIn:
			out = append(out, chromeEvent{
				Name: prefix + "migrate_in " + e.Proc, Phase: "i", TS: e.T, PID: 2,
				Args: map[string]any{"resume_us": e.Until},
			})
		case EvNodeDown:
			out = append(out, chromeEvent{
				Name: prefix + "node_down", Phase: "i", TS: e.T, PID: 1,
			})
		case EvNodeUp:
			out = append(out, chromeEvent{
				Name: prefix + "node_up", Phase: "i", TS: e.T, PID: 1,
			})
		case EvRecover:
			out = append(out, chromeEvent{
				Name: prefix + "recover " + e.Proc, Phase: "i", TS: e.T, PID: 2,
				Args: map[string]any{"resume_us": e.Until},
			})
		case EvDecision:
			out = append(out, chromeEvent{
				Name: prefix + "decision " + e.Proc, Phase: "i", TS: e.T, PID: 3,
				Args: map[string]any{"id": e.Decision, "detail": e.Detail},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// SetTracer attaches an event tracer to the machine (nil detaches).
func (m *Machine) SetTracer(tr *Tracer) {
	m.tracer = tr
	for _, fn := range m.tracerListeners {
		fn()
	}
}

// OnTracerChange registers fn to run on every SetTracer call. The fleet
// layer subscribes so its memoized shared-tracer verdict — which decides
// whether node advancement may shard across workers — is invalidated the
// moment a tracer is attached or detached, instead of being recomputed by
// walking every node each barrier.
func (m *Machine) OnTracerChange(fn func()) {
	m.tracerListeners = append(m.tracerListeners, fn)
}

// Tracer returns the attached tracer, if any.
func (m *Machine) Tracer() *Tracer { return m.tracer }

// NodeName returns the machine's fleet identity ("" standalone). Daemons
// recording their own trace events stamp it into Event.Node so a tracer
// shared across nodes attributes them correctly.
func (m *Machine) NodeName() string { return m.nodeName }

// emit records a machine-originated event, stamped with the machine's own
// node identity (callers check m.tracer != nil).
func (m *Machine) emit(e Event) {
	if e.Node == "" {
		e.Node = m.nodeName
	}
	m.tracer.add(e)
}
