// Command hars-scenario replays a declarative dynamic-event scenario — a
// JSON script of application arrivals and departures, core hotplug, DVFS
// capping, target changes, and workload phase changes — on the simulated
// platform, emitting a deterministic per-sample metric trace.
//
// Usage:
//
//	hars-scenario -in scenario.json [-trace out.csv] [-strict]
//	hars-scenario -gen -seed 7 [-manager mphars-i] [-apps 3] [-events 6]
//	              [-duration 20000] [-write scenario.json] [-trace out.csv]
//
// The trace goes to stdout unless -trace names a file; the run summary goes
// to stderr. Replaying the same scenario always produces byte-identical
// trace output (the FNV-64a digest printed in the summary witnesses it), so
// traces can be diffed across runs and machines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/hmp"
	"repro/internal/scenario"
)

func main() {
	in := flag.String("in", "", "scenario JSON to replay")
	gen := flag.Bool("gen", false, "generate a random scenario instead of reading one")
	seed := flag.Int64("seed", 1, "generator seed (-gen)")
	manager := flag.String("manager", scenario.ManagerMPHARSI, "generated scenario's manager kind (-gen)")
	apps := flag.Int("apps", 3, "generated scenario's maximum app count (-gen)")
	events := flag.Int("events", 6, "generated scenario's dynamic event count (-gen)")
	duration := flag.Int64("duration", 20000, "generated scenario's duration in ms (-gen)")
	write := flag.String("write", "", "save the generated scenario JSON here (-gen)")
	tracePath := flag.String("trace", "", "trace output file (default stdout)")
	strict := flag.Bool("strict", false, "verify runtime invariants after every action and sample")
	flag.Parse()

	var sc *scenario.Scenario
	switch {
	case *gen:
		sc = scenario.Generate(*seed, scenario.GenConfig{
			Manager:    *manager,
			MaxApps:    *apps,
			Events:     *events,
			DurationMS: *duration,
		})
		if *write != "" {
			f, err := os.Create(*write)
			if err != nil {
				fatal(err)
			}
			if err := sc.Encode(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *write)
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		sc, err = scenario.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -in <scenario.json> or -gen (see -h)")
		os.Exit(2)
	}

	var trace io.Writer = os.Stdout
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		trace = f
	}

	res, err := scenario.Run(sc, scenario.Options{Trace: trace, Strict: *strict})
	if err != nil {
		fatal(err)
	}

	w := os.Stderr
	fmt.Fprintf(w, "scenario %s: manager %s, %d apps, %d events, %d ms\n",
		sc.Name, sc.Manager, len(sc.Apps), len(sc.Events), sc.DurationMS)
	for _, a := range res.Apps {
		status := "ran to end"
		switch {
		case a.Skipped:
			status = "skipped (no free cores)"
		case a.Departed:
			status = "departed"
		}
		fmt.Fprintf(w, "  %-8s beats=%-6d work=%-10.1f migrations=%-5d %s\n",
			a.Name, a.Beats, a.Work, a.Migrations, status)
	}
	fmt.Fprintf(w, "energy %.1f J, overhead %d µs, %d samples, online mask %x, trace digest %016x\n",
		res.EnergyJ, res.OverheadUS, res.Samples, uint64(res.Machine.OnlineMask()), res.TraceDigest)
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		fmt.Fprintf(w, "  %s: level %d, cap %d, %d/%d cores online\n",
			k, res.Machine.Level(k), res.Machine.LevelCap(k),
			res.Machine.OnlineCount(k), res.Machine.Platform().Clusters[k].Cores)
	}
	if gov := res.Thermal; gov != nil {
		spec := gov.Spec()
		fmt.Fprintf(w, "thermal: trip %.1f°C / throttle %.1f°C / release %.1f°C, %d throttles (%d trips), %d releases\n",
			spec.TripC, spec.ThrottleC, spec.ReleaseC, gov.Throttles(), gov.Trips(), gov.Releases())
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			fmt.Fprintf(w, "  %s: %.1f°C now, %.1f°C peak\n", k, gov.TempC(k), gov.PeakC(k))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
