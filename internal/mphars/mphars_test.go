package mphars

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testModel builds a frequency-scaled linear power model without profiling.
func testModel(p *hmp.Platform) *power.LinearModel {
	lm := &power.LinearModel{}
	coeff := [hmp.NumClusters]float64{hmp.Little: 0.30, hmp.Big: 1.20}
	base := [hmp.NumClusters]float64{hmp.Little: 0.15, hmp.Big: 0.70}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		n := p.Clusters[k].Levels()
		lm.Alpha[k] = make([]float64, n)
		lm.Beta[k] = make([]float64, n)
		lm.R2[k] = make([]float64, n)
		for lv := 0; lv < n; lv++ {
			s := p.FreqScale(k, lv)
			lm.Alpha[k][lv] = coeff[k] * s * s
			lm.Beta[k][lv] = base[k] * s
		}
	}
	return lm
}

func steady(name string, unit float64) *workload.DataParallel {
	return &workload.DataParallel{
		AppName: name, Threads: 8, BigFactor: 1.5,
		Unit: workload.ConstUnit(unit),
	}
}

// soloMaxRate measures an app's rate alone under GTS at the max state.
func soloMaxRate(t *testing.T, prog sim.Program) float64 {
	t.Helper()
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	m.SetPlacer(gts.New(plat))
	p := m.Spawn(prog.Name(), prog, 10)
	m.Run(25 * sim.Second)
	return p.HB.RateOver(5*sim.Second, m.Now())
}

func TestRegisterAndInitialPartition(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	mgr := New(m, testModel(plat), Config{Version: MPHARSE})
	m.AddDaemon(mgr)
	p1 := m.Spawn("a", steady("a", 0.5), 10)
	p2 := m.Spawn("b", steady("b", 0.5), 10)
	mgr.Register(m, p1, heartbeat.Target{Min: 1, Avg: 2, Max: 3}, 2, 2)
	mgr.Register(m, p2, heartbeat.Target{Min: 1, Avg: 2, Max: 3}, 2, 2)
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	b1, l1 := mgr.Allocation(p1)
	b2, l2 := mgr.Allocation(p2)
	if b1 != 2 || l1 != 2 || b2 != 2 || l2 != 2 {
		t.Fatalf("allocations = (%d,%d) and (%d,%d), want (2,2) each", b1, l1, b2, l2)
	}
	if len(mgr.Apps()) != 2 {
		t.Error("Apps() wrong")
	}
}

func TestRegisterClampsToFreeCores(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	mgr := New(m, testModel(plat), Config{})
	p1 := m.Spawn("a", steady("a", 0.5), 10)
	p2 := m.Spawn("b", steady("b", 0.5), 10)
	mgr.Register(m, p1, heartbeat.Target{Min: 1, Avg: 2, Max: 3}, 4, 2)
	// Second app asks for more than remains: clamped to what is free.
	mgr.Register(m, p2, heartbeat.Target{Min: 1, Avg: 2, Max: 3}, 4, 4)
	b2, l2 := mgr.Allocation(p2)
	if b2 != 0 || l2 != 2 {
		t.Fatalf("second app got (%d,%d) cores, want clamp to (0,2)", b2, l2)
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterPanicsWithNoCores(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	mgr := New(m, testModel(plat), Config{})
	p1 := m.Spawn("a", steady("a", 0.5), 10)
	mgr.Register(m, p1, heartbeat.Target{Min: 1, Avg: 2, Max: 3}, 4, 4)
	p2 := m.Spawn("b", steady("b", 0.5), 10)
	defer func() {
		if recover() == nil {
			t.Error("expected panic registering into empty pool")
		}
	}()
	mgr.Register(m, p2, heartbeat.Target{Min: 1, Avg: 2, Max: 3}, 1, 1)
}

func TestTwoAppsAdaptWithoutSharingCores(t *testing.T) {
	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	progA := steady("a", 0.5)
	progB := steady("b", 0.8)
	rateA := soloMaxRate(t, steady("a", 0.5))
	rateB := soloMaxRate(t, steady("b", 0.8))

	m := sim.New(plat, sim.Config{Power: gt})
	mgr := New(m, testModel(plat), Config{Version: MPHARSE})
	m.AddDaemon(mgr)
	pA := m.Spawn("a", progA, 10)
	pB := m.Spawn("b", progB, 10)
	// Asymmetric targets so both apps start outside their bands: a (2,2)
	// allocation at max frequency sits almost exactly at 50% of the solo
	// maximum, which would otherwise need no adaptation at all.
	tgtA := heartbeat.TargetAround(rateA, 0.40, 0.05)
	tgtB := heartbeat.TargetAround(rateB, 0.62, 0.05)
	mgr.Register(m, pA, tgtA, 2, 2)
	mgr.Register(m, pB, tgtB, 2, 2)

	for i := 0; i < 120; i++ {
		m.Run(1 * sim.Second)
		if err := mgr.CheckInvariants(); err != nil {
			t.Fatalf("invariant broken at %d s: %v", i, err)
		}
	}
	// Both applications should be near their bands (generous slack: shared
	// frequency and discrete cores limit precision).
	gotA := pA.HB.RateOver(60*sim.Second, m.Now())
	gotB := pB.HB.RateOver(60*sim.Second, m.Now())
	if gotA < tgtA.Min*0.65 {
		t.Errorf("app a rate %v far below target %v", gotA, tgtA.Min)
	}
	if gotB < tgtB.Min*0.65 {
		t.Errorf("app b rate %v far below target %v", gotB, tgtB.Min)
	}
	if mgr.Searches() == 0 {
		t.Error("no searches happened")
	}
	// Traces must exist for behaviour graphs.
	if len(mgr.Trace(pA)) == 0 || len(mgr.Trace(pB)) == 0 {
		t.Error("traces missing")
	}
	if mgr.Trace(pA)[0].HBIndex != 0 {
		t.Error("trace should start at heartbeat 0")
	}
}

func TestFreezeProtocolOnFrequencyDecrease(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	mgr := New(m, testModel(plat), Config{Version: MPHARSE, FreezeBeats: 8})
	m.AddDaemon(mgr)
	pA := m.Spawn("a", steady("a", 0.5), 10)
	pB := m.Spawn("b", steady("b", 0.5), 10)
	// Very low targets: both apps overperform massively and should drive
	// shared frequencies down, installing freezing counts.
	lowTgt := heartbeat.Target{Min: 0.05, Avg: 0.1, Max: 0.15}
	mgr.Register(m, pA, lowTgt, 2, 2)
	mgr.Register(m, pB, lowTgt, 2, 2)
	sawFrozen := false
	for i := 0; i < 60 && !sawFrozen; i++ {
		m.Run(1 * sim.Second)
		sawFrozen = mgr.Frozen(hmp.Big) || mgr.Frozen(hmp.Little)
	}
	if !sawFrozen {
		t.Fatal("no cluster ever froze despite repeated frequency decreases")
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocationReusesCores(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	mgr := New(m, testModel(plat), Config{})
	p := m.Spawn("a", steady("a", 0.5), 10)
	n := mgr.Register(m, p, heartbeat.Target{Min: 1, Avg: 2, Max: 3}, 3, 0)
	if n.nprocsB != 3 {
		t.Fatalf("nprocsB = %d", n.nprocsB)
	}
	// Shrink to 1: must free 2, keep 1 of the originally used cores.
	n.decBigCoreCnt = 2
	n.nprocsB = 1
	big, little := mgr.allocateCores(n)
	if len(big) != 1 || len(little) != 0 {
		t.Fatalf("allocation = %v / %v", big, little)
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Grow back to 2: must reuse the kept core plus one free one.
	kept := big[0]
	n.nprocsB = 2
	big, _ = mgr.allocateCores(n)
	if len(big) != 2 {
		t.Fatalf("regrow allocation = %v", big)
	}
	found := false
	for _, c := range big {
		if c == kept {
			found = true
		}
	}
	if !found {
		t.Errorf("regrow did not reuse kept core %d: %v", kept, big)
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAppsCannotStealCores(t *testing.T) {
	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	m := sim.New(plat, sim.Config{Power: gt})
	mgr := New(m, testModel(plat), Config{Version: MPHARSE})
	m.AddDaemon(mgr)
	pA := m.Spawn("a", steady("a", 0.5), 10)
	pB := m.Spawn("b", steady("b", 0.5), 10)
	// App a wants the moon (unreachable target), app b is content.
	mgr.Register(m, pA, heartbeat.Target{Min: 100, Avg: 200, Max: 300}, 2, 2)
	mgr.Register(m, pB, heartbeat.Target{Min: 0.1, Avg: 0.5, Max: 100}, 2, 2)
	m.Run(60 * sim.Second)
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	bB, lB := mgr.Allocation(pB)
	if bB+lB == 0 {
		t.Fatal("app b lost all its cores to app a")
	}
	// App a may only have grown into cores b freed voluntarily; totals add up.
	bA, lA := mgr.Allocation(pA)
	if bA+bB > 4 || lA+lB > 4 {
		t.Fatalf("over-allocation: big %d+%d little %d+%d", bA, bB, lA, lB)
	}
}

func TestVersionString(t *testing.T) {
	if MPHARSI.String() != "MP-HARS-I" || MPHARSE.String() != "MP-HARS-E" {
		t.Error("version strings wrong")
	}
	if Version(9).String() != "MP-HARS-?" {
		t.Error("unknown version string wrong")
	}
}

func TestParams(t *testing.T) {
	if p := (Config{Version: MPHARSI}).params(); p != (core.SearchParams{M: 1, N: 1, D: 1}) {
		t.Errorf("MP-HARS-I params = %+v", p)
	}
	if p := (Config{Version: MPHARSE}).params(); p != (core.SearchParams{M: 4, N: 4, D: 7}) {
		t.Errorf("MP-HARS-E params = %+v", p)
	}
}

func TestTraceAndAllocationOfUnknownProc(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	mgr := New(m, testModel(plat), Config{})
	ghost := m.Spawn("ghost", steady("ghost", 0.5), 10)
	if mgr.Trace(ghost) != nil {
		t.Error("trace of unregistered proc should be nil")
	}
	if b, l := mgr.Allocation(ghost); b != 0 || l != 0 {
		t.Error("allocation of unregistered proc should be zero")
	}
}
