package sim_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
)

func TestTracerRecordsEvents(t *testing.T) {
	m := sim.New(hmp.Default(), sim.Config{})
	tr := &sim.Tracer{}
	m.SetTracer(tr)
	if m.Tracer() != tr {
		t.Fatal("Tracer accessor wrong")
	}
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.2, beats: true}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	m.Run(1 * sim.Second)
	m.SetLevel(hmp.Big, 2)
	m.SetLevel(hmp.Big, 2) // no change: must not trace
	p.SetAffinity(0, hmp.MaskOf(5))
	m.Run(1 * sim.Second)

	var migs, dvfs, beats int
	for _, e := range tr.Events() {
		switch e.Kind {
		case sim.EvMigrate:
			migs++
			if e.Proc != "s" {
				t.Errorf("migrate event proc = %q", e.Proc)
			}
		case sim.EvDVFS:
			dvfs++
			if e.Cluster != hmp.Big || e.KHz != 1_000_000 {
				t.Errorf("dvfs event = %+v", e)
			}
		case sim.EvBeat:
			beats++
		}
	}
	if migs < 2 { // initial placement + cross-cluster move
		t.Errorf("migrations traced = %d, want ≥ 2", migs)
	}
	if dvfs != 1 {
		t.Errorf("dvfs traced = %d, want exactly 1 (no-op changes skipped)", dvfs)
	}
	if beats == 0 {
		t.Error("no beats traced")
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped = %d", tr.Dropped())
	}
}

func TestTracerCap(t *testing.T) {
	m := sim.New(hmp.Default(), sim.Config{})
	tr := &sim.Tracer{Max: 5}
	m.SetTracer(tr)
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.01, beats: true}, 4)
	p.SetAffinity(0, hmp.MaskOf(4))
	m.Run(2 * sim.Second)
	if len(tr.Events()) != 5 {
		t.Fatalf("retained = %d, want 5", len(tr.Events()))
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops beyond the cap")
	}
}

func TestTraceCSV(t *testing.T) {
	m := sim.New(hmp.Default(), sim.Config{})
	tr := &sim.Tracer{}
	m.SetTracer(tr)
	p := m.Spawn("app", &spinner{threads: 1, unit: 0.3, beats: true}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	m.Run(2 * sim.Second)
	m.SetLevel(hmp.Little, 0)

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_us,kind,") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, want := range []string{"beat,app", "migrate,app", "dvfs"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q", want)
		}
	}
}

func TestTraceChromeFormat(t *testing.T) {
	m := sim.New(hmp.Default(), sim.Config{})
	tr := &sim.Tracer{}
	m.SetTracer(tr)
	p := m.Spawn("app", &spinner{threads: 1, unit: 0.3, beats: true}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	m.Run(2 * sim.Second)
	m.SetLevel(hmp.Little, 1)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		phases[e["ph"].(string)] = true
	}
	if !phases["i"] || !phases["C"] {
		t.Errorf("expected instant and counter events, got %v", phases)
	}
}

func TestEventKindString(t *testing.T) {
	if sim.EvMigrate.String() != "migrate" || sim.EvDVFS.String() != "dvfs" || sim.EvBeat.String() != "beat" {
		t.Error("event kind strings wrong")
	}
	if sim.EvDecision.String() != "decision" {
		t.Error("decision kind string wrong")
	}
	if sim.EventKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

// TestTraceCSVDecisionColumns pins the gated decision columns: a trace
// without decision events renders the historical header and row widths
// byte-for-byte, and one with them appends decision/detail columns — ",,"
// padded on non-decision rows so every row keeps one width.
func TestTraceCSVDecisionColumns(t *testing.T) {
	run := func(withDecision bool) string {
		m := sim.New(hmp.Default(), sim.Config{})
		tr := &sim.Tracer{}
		m.SetTracer(tr)
		p := m.Spawn("app", &spinner{threads: 1, unit: 0.3, beats: true}, 4)
		p.SetAffinity(0, hmp.MaskOf(0))
		m.Run(1 * sim.Second)
		if withDecision {
			tr.Record(sim.Event{
				T: m.Now(), Kind: sim.EvDecision, Proc: "app",
				Decision: 7, Detail: "admit ->n0 placed margin=0x0p+00 n0:0x1p+00",
			})
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	plain := run(false)
	if strings.Contains(plain, "decision") {
		t.Fatal("decision column leaked into a decision-free trace")
	}
	if !strings.HasPrefix(plain, "time_us,kind,proc,thread,from,to,cluster,khz,temp_c\n") {
		t.Fatalf("historical header changed:\n%s", plain[:60])
	}

	dec := run(true)
	lines := strings.Split(strings.TrimSpace(dec), "\n")
	if lines[0] != "time_us,kind,proc,thread,from,to,cluster,khz,temp_c,decision,detail" {
		t.Fatalf("gated header = %q", lines[0])
	}
	wantCols := strings.Count(lines[0], ",")
	var sawDecision bool
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != wantCols {
			t.Fatalf("row width mismatch: %q", l)
		}
		if strings.Contains(l, ",decision,app,") {
			sawDecision = true
			if !strings.HasSuffix(l, ",7,admit ->n0 placed margin=0x0p+00 n0:0x1p+00") {
				t.Fatalf("decision row payload wrong: %q", l)
			}
		}
	}
	if !sawDecision {
		t.Fatal("decision row missing from CSV")
	}
}

// TestTraceChromeDecision pins the Chrome rendering: decision records
// become instant events on their own pid track with id and detail args.
func TestTraceChromeDecision(t *testing.T) {
	tr := &sim.Tracer{}
	tr.Record(sim.Event{
		T: 1000, Kind: sim.EvDecision, Proc: "app", Node: "n0",
		Decision: 3, Detail: "admit ->n0 placed margin=0x0p+00",
	})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) != 1 {
		t.Fatalf("events = %+v", parsed.TraceEvents)
	}
	e := parsed.TraceEvents[0]
	if e["name"] != "n0:decision app" || e["ph"] != "i" {
		t.Fatalf("decision chrome event = %+v", e)
	}
	args := e["args"].(map[string]any)
	if args["id"].(float64) != 3 || args["detail"] != "admit ->n0 placed margin=0x0p+00" {
		t.Fatalf("decision args = %+v", args)
	}
}
