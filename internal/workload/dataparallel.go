// Package workload provides the synthetic multithreaded applications the
// evaluation runs on: models of the six PARSEC benchmarks the paper uses
// (blackscholes, bodytrack, facesim, ferret, fluidanimate, swaptions) built
// from two reusable templates — a barrier-synchronized data-parallel program
// and a bounded-queue pipeline program.
//
// The models capture the characteristics the paper's results hinge on:
//
//   - blackscholes runs equally fast on big and little cores (true big/little
//     ratio r = 1.0 against HARS's assumed r0 = 1.5) and has an initial
//     input-reading phase that emits no heartbeats;
//   - ferret is a 6-stage pipeline whose stages are contiguous in thread-ID
//     order, so the chunk-based scheduler can starve whole stages on little
//     cores while the interleaving scheduler cannot;
//   - fluidanimate and facesim reward constructive cache sharing between
//     adjacent threads (the chunk-based scheduler's advantage);
//   - bodytrack's per-frame work varies, exercising dynamic adaptation.
package workload

import (
	"repro/internal/hmp"
	"repro/internal/sim"
)

// DataParallel is a barrier-synchronized data-parallel program: every
// iteration the total work is split equally across all threads (the paper's
// §3.1.1 assumption), the threads meet at a barrier, and the application
// emits one heartbeat per completed iteration.
type DataParallel struct {
	AppName    string
	Threads    int
	BigFactor  float64                  // per-clock speed on big vs little (app-true r)
	Bonus      float64                  // constructive cache-sharing bonus
	Unit       func(iter int64) float64 // per-thread work units for an iteration
	StartDelay sim.Time                 // heartbeat-less startup phase (blackscholes)

	iter    int64
	pending int
	scale   float64 // workload-phase multiplier on Unit (0 = 1.0)
}

var _ sim.Program = (*DataParallel)(nil)
var _ sim.CacheSensitive = (*DataParallel)(nil)

// Name implements sim.Program.
func (d *DataParallel) Name() string { return d.AppName }

// NumThreads implements sim.Program.
func (d *DataParallel) NumThreads() int { return d.Threads }

// CacheBonus implements sim.CacheSensitive.
func (d *DataParallel) CacheBonus() float64 { return d.Bonus }

// SetPhaseScale implements PhaseScalable: iterations handed out from now on
// carry scale× the nominal work (a workload phase change). Scale must be
// positive.
func (d *DataParallel) SetPhaseScale(scale float64) {
	if scale <= 0 {
		panic("workload: non-positive phase scale")
	}
	d.scale = scale
}

func (d *DataParallel) unit(iter int64) float64 {
	w := d.Unit(iter)
	if d.scale != 0 {
		w *= d.scale
	}
	return w
}

// SpeedFactor implements sim.Program.
func (d *DataParallel) SpeedFactor(local int, k hmp.ClusterKind) float64 {
	if k == hmp.Big {
		return d.BigFactor
	}
	return 1
}

// Start implements sim.Program.
func (d *DataParallel) Start(p *sim.Process) {
	d.iter = 0
	d.pending = d.Threads
	w := d.unit(0)
	for i := 0; i < d.Threads; i++ {
		if d.StartDelay > 0 {
			p.WakeAt(i, p.Now()+d.StartDelay, w)
		} else {
			p.SetWork(i, w)
		}
	}
}

// UnitDone implements sim.Program: threads that finish early wait at the
// barrier; the last one releases the next iteration and emits the heartbeat.
func (d *DataParallel) UnitDone(p *sim.Process, local int) {
	d.pending--
	if d.pending > 0 {
		return // barrier wait
	}
	p.Beat()
	d.iter++
	d.pending = d.Threads
	w := d.unit(d.iter)
	for i := 0; i < d.Threads; i++ {
		p.SetWork(i, w)
	}
}

// CloneProgram implements sim.Cloneable: the run state (iteration counter,
// barrier count, phase scale) is plain values and Unit is stateless, so a
// shallow copy is a full snapshot.
func (d *DataParallel) CloneProgram() sim.Program {
	c := *d
	return &c
}

// Iteration returns the number of completed iterations.
func (d *DataParallel) Iteration() int64 { return d.iter }

// ConstUnit returns a Unit function with constant per-thread work.
func ConstUnit(w float64) func(int64) float64 {
	return func(int64) float64 { return w }
}
