package hmp

import "fmt"

// State is one point of the four-dimensional configurable system space the
// HARS runtime manager explores: the number of big and little cores
// allocated to an application and the frequency level of each cluster.
//
// Frequency fields are *levels* (indices into the cluster OPP grids), not
// kHz, so the Manhattan distance of the paper's search function (Algorithm 2)
// is well defined: one DVFS step and one core count step both have
// distance 1.
type State struct {
	BigCores    int // number of big cores allocated (0..Clusters[Big].Cores)
	LittleCores int // number of little cores allocated
	BigLevel    int // big cluster frequency level
	LittleLevel int // little cluster frequency level
}

// MaxState returns the maximum system state: all cores at the highest
// frequency of each cluster. This is the baseline version's fixed state.
func MaxState(p *Platform) State {
	return State{
		BigCores:    p.Clusters[Big].Cores,
		LittleCores: p.Clusters[Little].Cores,
		BigLevel:    p.Clusters[Big].MaxLevel(),
		LittleLevel: p.Clusters[Little].MaxLevel(),
	}
}

// Cores returns the per-cluster core count of the state.
func (s State) Cores(k ClusterKind) int {
	if k == Big {
		return s.BigCores
	}
	return s.LittleCores
}

// Level returns the per-cluster frequency level of the state.
func (s State) Level(k ClusterKind) int {
	if k == Big {
		return s.BigLevel
	}
	return s.LittleLevel
}

// WithCores returns a copy of the state with cluster k's core count set.
func (s State) WithCores(k ClusterKind, n int) State {
	if k == Big {
		s.BigCores = n
	} else {
		s.LittleCores = n
	}
	return s
}

// WithLevel returns a copy of the state with cluster k's frequency level set.
func (s State) WithLevel(k ClusterKind, lv int) State {
	if k == Big {
		s.BigLevel = lv
	} else {
		s.LittleLevel = lv
	}
	return s
}

// TotalCores returns the total number of cores the state allocates.
func (s State) TotalCores() int { return s.BigCores + s.LittleCores }

// Valid reports whether the state is inside the platform's configurable
// space and allocates at least one core.
func (s State) Valid(p *Platform) bool {
	return s.BigCores >= 0 && s.BigCores <= p.Clusters[Big].Cores &&
		s.LittleCores >= 0 && s.LittleCores <= p.Clusters[Little].Cores &&
		s.TotalCores() >= 1 &&
		s.BigLevel >= 0 && s.BigLevel <= p.Clusters[Big].MaxLevel() &&
		s.LittleLevel >= 0 && s.LittleLevel <= p.Clusters[Little].MaxLevel()
}

// Clamp returns the state with every dimension clamped to the platform's
// grid. It does not enforce TotalCores ≥ 1.
func (s State) Clamp(p *Platform) State {
	s.BigCores = clampInt(s.BigCores, 0, p.Clusters[Big].Cores)
	s.LittleCores = clampInt(s.LittleCores, 0, p.Clusters[Little].Cores)
	s.BigLevel = p.Clusters[Big].ClampLevel(s.BigLevel)
	s.LittleLevel = p.Clusters[Little].ClampLevel(s.LittleLevel)
	return s
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Distance returns the Manhattan distance between two states in the
// four-dimensional (C_B, C_L, f_B, f_L) level space, as used by the paper's
// search function to bound the explored neighbourhood (parameter d).
func Distance(a, b State) int {
	return absInt(a.BigCores-b.BigCores) +
		absInt(a.LittleCores-b.LittleCores) +
		absInt(a.BigLevel-b.BigLevel) +
		absInt(a.LittleLevel-b.LittleLevel)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// PerfScore is the scalar performance score the CONS-I baseline sorts system
// configurations by: perfScore = C_B·r0·(f_B/f0) + C_L·(f_L/f0).
func (s State) PerfScore(p *Platform, r0 float64) float64 {
	return float64(s.BigCores)*r0*p.FreqScale(Big, s.BigLevel) +
		float64(s.LittleCores)*p.FreqScale(Little, s.LittleLevel)
}

// String renders the state as, e.g., "B2@1.4GHz L4@1.0GHz".
func (s State) String() string {
	return fmt.Sprintf("B%d@L%d L%d@L%d", s.BigCores, s.BigLevel, s.LittleCores, s.LittleLevel)
}

// Pretty renders the state with real frequencies on the given platform.
func (s State) Pretty(p *Platform) string {
	return fmt.Sprintf("B%d@%.1fGHz L%d@%.1fGHz",
		s.BigCores, float64(p.Clusters[Big].KHz(s.BigLevel))/1e6,
		s.LittleCores, float64(p.Clusters[Little].KHz(s.LittleLevel))/1e6)
}

// AllStates enumerates every valid state of the platform (total cores ≥ 1),
// optionally striding the frequency grids (stride ≥ 1) to coarsen the sweep.
// The static-optimal oracle sweeps this list.
func AllStates(p *Platform, freqStride int) []State {
	if freqStride < 1 {
		freqStride = 1
	}
	var out []State
	for cb := 0; cb <= p.Clusters[Big].Cores; cb++ {
		for cl := 0; cl <= p.Clusters[Little].Cores; cl++ {
			if cb+cl == 0 {
				continue
			}
			for fb := 0; fb <= p.Clusters[Big].MaxLevel(); fb += freqStride {
				for fl := 0; fl <= p.Clusters[Little].MaxLevel(); fl += freqStride {
					out = append(out, State{
						BigCores: cb, LittleCores: cl,
						BigLevel: fb, LittleLevel: fl,
					})
				}
			}
		}
	}
	return out
}

// CPUMask is a bitmask over global CPU numbers, the affinity representation
// used by the simulated sched_setaffinity.
type CPUMask uint64

// MaskOf builds a mask from a list of global CPU numbers.
func MaskOf(cpus ...int) CPUMask {
	var m CPUMask
	for _, c := range cpus {
		m |= 1 << uint(c)
	}
	return m
}

// Has reports whether CPU cpu is in the mask.
func (m CPUMask) Has(cpu int) bool { return m&(1<<uint(cpu)) != 0 }

// Set returns the mask with CPU cpu added.
func (m CPUMask) Set(cpu int) CPUMask { return m | 1<<uint(cpu) }

// Clear returns the mask with CPU cpu removed.
func (m CPUMask) Clear(cpu int) CPUMask { return m &^ (1 << uint(cpu)) }

// Count returns the number of CPUs in the mask.
func (m CPUMask) Count() int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// CPUs lists the global CPU numbers in the mask in ascending order.
func (m CPUMask) CPUs() []int {
	var out []int
	for c := 0; c < 64; c++ {
		if m.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// Intersect returns the intersection of two masks.
func (m CPUMask) Intersect(o CPUMask) CPUMask { return m & o }

// Union returns the union of two masks.
func (m CPUMask) Union(o CPUMask) CPUMask { return m | o }

// AllCPUs returns the mask of every core on the platform.
func AllCPUs(p *Platform) CPUMask {
	var m CPUMask
	for c := 0; c < p.TotalCores(); c++ {
		m = m.Set(c)
	}
	return m
}

// ClusterMask returns the mask of all cores of cluster k.
func ClusterMask(p *Platform, k ClusterKind) CPUMask {
	var m CPUMask
	for i := 0; i < p.Clusters[k].Cores; i++ {
		m = m.Set(p.CPU(k, i))
	}
	return m
}
