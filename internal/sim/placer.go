package sim

// MaskBalancer is the placement policy used underneath HARS: every runnable
// thread is kept on a CPU inside its affinity mask, spread to the
// least-loaded permitted core. It models a work-conserving OS scheduler
// operating under the cpuset constraints HARS's chunk-based and interleaving
// schedulers install; all cross-cluster policy lives in those masks.
//
// The balancer works off the machine's incrementally maintained run-queue
// state: per-core counts come from the O(1) run-queue lengths, the repair
// pass runs only while the machine's misplaced-runnable counter is non-zero,
// and the balancing sweep visits only runnable threads — and only when some
// core is at least two threads heavier than the lightest. Decisions are
// tick-for-tick identical to the historical full-scan implementation (see
// the equivalence tests in the repository root).
type MaskBalancer struct {
	counts []int // scratch: in-mask runnable threads per core
}

// NewMaskBalancer returns a MaskBalancer.
func NewMaskBalancer() *MaskBalancer { return &MaskBalancer{} }

// Prime pre-sizes the balancer's per-core scratch for a machine with nc
// cores, so the first Place call of a run does not allocate — on a
// thousand-node fleet those first-tick growths are the difference between an
// alloc-free steady state and one allocation per node inside the hot loop.
// Optional: Place grows the scratch on demand either way.
func (b *MaskBalancer) Prime(nc int) {
	if cap(b.counts) < nc {
		b.counts = make([]int, nc)
	}
}

// Quiescent implements QuiescentPlacer: with no runnable threads every
// per-core count is zero, so both the repair pass and the balancing sweep
// are vacuous and Place is a pure no-op. The balancer keeps no per-call
// state, so skipping those no-op calls is invisible.
func (b *MaskBalancer) Quiescent(m *Machine) bool {
	return len(m.runnable) == 0 && m.misplaced == 0
}

// Settled implements SteadyPlacer: with no misplaced thread the repair pass
// is vacuous and the per-core counts Place would compute equal the O(1)
// run-queue lengths, so Place is a pure no-op exactly when its balancing
// sweep would move nothing — and stays one while runnability, placement,
// affinity, and the online mask are frozen, because the counts cannot
// change underneath it. The global spread check mirrors Place's sweep
// skip (all cores on an all-online machine, online cores otherwise); when
// the spread exceeds one — routine under affinity masks that pack threads
// onto a core subset while permitted cores sit level — the sweep itself is
// replayed read-only: a single thread with a permitted online core two
// lighter than its own refutes settledness. Certification runs this once
// per window, not per tick, so the O(runnable × cores) scan amortizes
// across every tick the window jumps.
func (b *MaskBalancer) Settled(m *Machine) bool {
	if m.misplaced != 0 {
		return false
	}
	online := m.online
	all := online == m.allMask
	var minC, maxC int
	if all {
		minC, maxC = m.cores[0].runLen, m.cores[0].runLen
		for i := 1; i < len(m.cores); i++ {
			n := m.cores[i].runLen
			if n < minC {
				minC = n
			}
			if n > maxC {
				maxC = n
			}
		}
	} else {
		seen := false
		for i := range m.cores {
			if !online.Has(i) {
				continue
			}
			n := m.cores[i].runLen
			if !seen || n < minC {
				minC = n
			}
			if !seen || n > maxC {
				maxC = n
			}
			seen = true
		}
		if !seen {
			return false
		}
	}
	if maxC-minC <= 1 {
		return true
	}
	// Replay the sweep read-only, with counts == runLen (misplaced is zero).
	// Place's first move happens at the first thread whose core is above
	// minC+1 with a permitted online core two lighter; if no thread has one,
	// the sweep visits every thread and moves none.
	nc := len(m.cores)
	for _, id := range m.runnable {
		t := m.threads[id]
		if t.core < 0 {
			continue
		}
		cur := m.cores[t.core].runLen
		if cur <= minC+1 {
			continue
		}
		for cpu := 0; cpu < nc; cpu++ {
			if cpu == t.core || !t.affinity.Has(cpu) || (!all && !online.Has(cpu)) {
				continue
			}
			if m.cores[cpu].runLen < cur-1 {
				return false
			}
		}
	}
	return true
}

// Place implements Placer.
func (b *MaskBalancer) Place(m *Machine) {
	nc := len(m.cores)
	online := m.online
	// The all-online fast paths below skip the per-core hotplug tests in
	// the hot loops; they are exact because online.Has(cpu) is then true
	// for every cpu.
	all := online == m.allMask
	if cap(b.counts) < nc {
		b.counts = make([]int, nc)
	}
	counts := b.counts[:nc]
	// Per-core counts of in-mask runnable threads: the run-queue length
	// minus any thread currently stranded outside its affinity mask.
	for cpu := range counts {
		counts[cpu] = m.cores[cpu].runLen
	}
	if m.misplaced > 0 {
		for _, id := range m.runnable {
			t := m.threads[id]
			if t.misplaced && t.core >= 0 {
				counts[t.core]--
			}
		}
		// First pass: repair threads placed outside their mask (or nowhere,
		// e.g. after an offline eviction). A thread whose mask intersects no
		// online core stays unplaced until the platform grows back.
		for _, id := range m.runnable {
			t := m.threads[id]
			if !t.misplaced {
				continue
			}
			best := -1
			for cpu := 0; cpu < nc; cpu++ {
				if !t.affinity.Has(cpu) || (!all && !online.Has(cpu)) {
					continue
				}
				if best < 0 || counts[cpu] < counts[best] {
					best = cpu
				}
			}
			if best >= 0 {
				m.Migrate(t, best)
				counts[best]++
			}
		}
	}
	// Second pass: one balancing sweep with hysteresis — move a thread only
	// if a permitted online core is at least two threads lighter than its
	// own. When every online core is within one thread of the online minimum
	// no such move exists anywhere, so the sweep is skipped outright; minC
	// stays a valid lower bound during the sweep because a move only ever
	// drains cores that are at least two above it.
	var minC, maxC int
	if all {
		minC, maxC = counts[0], counts[0]
		for _, n := range counts[1:] {
			if n < minC {
				minC = n
			}
			if n > maxC {
				maxC = n
			}
		}
	} else {
		seen := false
		for cpu, n := range counts {
			if !online.Has(cpu) {
				continue
			}
			if !seen || n < minC {
				minC = n
			}
			if !seen || n > maxC {
				maxC = n
			}
			seen = true
		}
		if !seen {
			return
		}
	}
	if maxC-minC <= 1 {
		return
	}
	for _, id := range m.runnable {
		t := m.threads[id]
		if t.core < 0 {
			continue
		}
		cur := t.core
		if counts[cur] <= minC+1 {
			continue // no core anywhere is two lighter
		}
		best := cur
		for cpu := 0; cpu < nc; cpu++ {
			if cpu == cur || !t.affinity.Has(cpu) || (!all && !online.Has(cpu)) {
				continue
			}
			if counts[cpu] < counts[best]-1 {
				best = cpu
			}
		}
		if best != cur {
			counts[cur]--
			counts[best]++
			m.Migrate(t, best)
		}
	}
}
