package repro

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// These differential tests pin the fleet layer's single-node contract: a
// scenario declaring exactly one node (default platform, no events) must
// drive that node's machine through bit-for-bit the same trajectory as the
// classic single-machine scenario — the same golden digests
// equivalence_test.go captured from the pre-refactor simulator. Any drift
// here means the Node abstraction or the fleet scheduler leaked behaviour
// into runs that never needed them.

// runFleet executes a nodes-declaring scenario and returns its result.
func runFleet(t *testing.T, sc *scenario.Scenario) *scenario.Result {
	t.Helper()
	res, err := scenario.Run(sc, scenario.Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != len(sc.Nodes) {
		t.Fatalf("%d node results for %d nodes", len(res.Nodes), len(sc.Nodes))
	}
	return res
}

func TestFleetEquivalenceSWMaskBalancer(t *testing.T) {
	res := runFleet(t, &scenario.Scenario{
		Name:       "fleet-static-sw",
		Manager:    scenario.ManagerNone,
		DurationMS: 5000,
		Nodes:      []scenario.NodeSpec{{Name: "n0"}},
		Apps:       []scenario.AppSpec{{Name: "sw", Bench: "SW", Threads: 8}},
	})
	checkDigest(t, digestOf(res.Nodes[0].Machine),
		"0x1.0cf56d292c018p+05",
		[]int64{9}, []string{"0x1.0442a9930bd98p+06"}, []int{0},
		30502380, 0, 36)
	// The fleet rollup of one node is that node.
	if res.EnergyJ != res.Nodes[0].EnergyJ || res.Machine != res.Nodes[0].Machine {
		t.Fatal("single-node fleet rollup diverged from its node")
	}
	if res.QueuedArrivals != 0 || res.NodeMigrations != 0 {
		t.Fatalf("spurious scheduler activity: queued %d, migrations %d",
			res.QueuedArrivals, res.NodeMigrations)
	}
}

func TestFleetEquivalenceFEMaskBalancer(t *testing.T) {
	res := runFleet(t, &scenario.Scenario{
		Name:       "fleet-static-fe",
		Manager:    scenario.ManagerNone,
		DurationMS: 5000,
		Nodes:      []scenario.NodeSpec{{Name: "n0"}},
		Apps:       []scenario.AppSpec{{Name: "fe", Bench: "FE", Threads: 8}},
	})
	checkDigest(t, digestOf(res.Nodes[0].Machine),
		"0x1.9ef9c1375a5cep+05",
		[]int64{82}, []string{"0x1.6b18bb52e034dp+06"}, []int{296},
		39411319, 0, 97)
}

func TestFleetEquivalenceHARSE(t *testing.T) {
	res := runFleet(t, &scenario.Scenario{
		Name:        "fleet-static-hars-e",
		Manager:     scenario.ManagerHARSE,
		DurationMS:  12000,
		AdaptEvery:  2,
		OverheadCPU: 4,
		Nodes:       []scenario.NodeSpec{{Name: "n0"}},
		Apps: []scenario.AppSpec{{
			Name: "sw", Bench: "SW", Threads: 8,
			Target: &scenario.TargetSpec{Min: 5.0, Avg: 6.0, Max: 7.0},
		}},
	})
	mgr := res.Managers["sw"]
	if mgr == nil {
		t.Fatal("no manager attached")
	}
	if got, want := mgr.State().String(), "B3@L7 L3@L5"; got != want {
		t.Errorf("settled state = %s, want %s", got, want)
	}
	if mgr.Searches() != 10 || mgr.ExploredTotal() != 4554 || len(mgr.Decisions()) != 10 {
		t.Errorf("searches/explored/decisions = %d/%d/%d, want 10/4554/10",
			mgr.Searches(), mgr.ExploredTotal(), len(mgr.Decisions()))
	}
	checkDigest(t, digestOf(res.Nodes[0].Machine),
		"0x1.64130d879c9acp+06",
		[]int64{21}, []string{"0x1.36612fd32c78ap+07"}, []int{60},
		68034154, 712100, 35)
}

// TestFleetEquivalenceMigrationFree pins the work-conserving-migration
// refactor's do-no-harm contract on a *multi-node* fleet: two default
// nodes, one pinned app each, no saturation and so no migration — each
// node's machine must reproduce, bit for bit, the same golden digest the
// corresponding single-machine run is pinned to. The checkpoint path being
// wired into admission must be invisible while no app ever moves.
func TestFleetEquivalenceMigrationFree(t *testing.T) {
	res := runFleet(t, &scenario.Scenario{
		Name:       "fleet-static-two-nodes",
		Manager:    scenario.ManagerNone,
		DurationMS: 5000,
		Nodes:      []scenario.NodeSpec{{Name: "n0"}, {Name: "n1"}},
		Apps: []scenario.AppSpec{
			{Name: "sw", Bench: "SW", Threads: 8, Node: "n0"},
			{Name: "fe", Bench: "FE", Threads: 8, Node: "n1"},
		},
	})
	if res.NodeMigrations != 0 || res.QueuedArrivals != 0 {
		t.Fatalf("spurious scheduler activity: %d moves, %d queued",
			res.NodeMigrations, res.QueuedArrivals)
	}
	checkDigest(t, digestOf(res.Nodes[0].Machine),
		"0x1.0cf56d292c018p+05",
		[]int64{9}, []string{"0x1.0442a9930bd98p+06"}, []int{0},
		30502380, 0, 36)
	checkDigest(t, digestOf(res.Nodes[1].Machine),
		"0x1.9ef9c1375a5cep+05",
		[]int64{82}, []string{"0x1.6b18bb52e034dp+06"}, []int{296},
		39411319, 0, 97)
}

// TestFleetEquivalenceMPHARS pins a single-node fleet MP-HARS run against
// the identical legacy scenario: machines must digest identically even
// though admission now routes through the fleet scheduler.
func TestFleetEquivalenceMPHARS(t *testing.T) {
	apps := []scenario.AppSpec{
		{Name: "sw", Bench: "SW", Threads: 4,
			Target:  &scenario.TargetSpec{Min: 2.0, Avg: 3.0, Max: 4.0},
			InitBig: scenario.IntPtr(2), InitLittle: scenario.IntPtr(1)},
		{Name: "fe", Bench: "FE", Threads: 4, StartMS: 2000,
			Target: &scenario.TargetSpec{Min: 3.0, Avg: 4.0, Max: 5.0}},
	}
	legacy, err := scenario.Run(&scenario.Scenario{
		Name: "mp", Manager: scenario.ManagerMPHARSI, DurationMS: 8000,
		AdaptEvery: 2, Apps: apps,
	}, scenario.Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	fl := runFleet(t, &scenario.Scenario{
		Name: "mp", Manager: scenario.ManagerMPHARSI, DurationMS: 8000,
		AdaptEvery: 2, Apps: apps,
		Nodes: []scenario.NodeSpec{{Name: "n0"}},
	})
	dl, df := digestOf(legacy.Machine), digestOf(fl.Nodes[0].Machine)
	if !reflect.DeepEqual(dl, df) {
		t.Fatalf("single-node fleet MP-HARS run diverged from the legacy run:\nlegacy %+v\nfleet  %+v", dl, df)
	}
}
