package experiments

import (
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/hmp"
	"repro/internal/scenario"
)

// DecisionsSweep ranks the placement policies by realized regret: each
// policy runs a contended heterogeneous fleet with decision tracing on, the
// first few contested decisions (two or more eligible candidates) are
// forked through the counterfactual engine, and every top-k alternative is
// forced in a full replay. A policy's realized regret is the total
// improvement the best alternatives would have delivered — how many SLO
// misses and how much energy it left on the table at the decisions it
// actually faced. Rows are sorted best-first (lowest regret), making the
// table a direct policy ranking on the decisions that mattered.
func DecisionsSweep(e *Env) *Report {
	rep := &Report{Title: "Decision sweep: counterfactual regret ranking of placement policies"}
	rep.Table.Header = []string{
		"policy", "decisions", "gated", "no-cand", "mean margin",
		"forked", "replays", "regret miss", "regret (J)", "digest",
	}

	littleHeavy := func() *hmp.Platform {
		p := hmp.Default()
		p.Clusters[hmp.Big].Cores = 2
		p.Clusters[hmp.Little].Cores = 6
		return p
	}
	tiny := func() *hmp.Platform {
		p := hmp.Default()
		p.Clusters[hmp.Big].Cores = 1
		p.Clusters[hmp.Little].Cores = 1
		return p
	}
	slo := &scenario.SLOSpec{TargetHPS: 3, SlackMS: 150}
	mkScenario := func(policy string) *scenario.Scenario {
		return &scenario.Scenario{
			Name:       fmt.Sprintf("decisions-%s", policy),
			Manager:    scenario.ManagerMPHARSI,
			DurationMS: 8000,
			AdaptEvery: 2,
			Placement:  policy,
			// A tiny third board keeps the fleet contended: whatever lands
			// there saturates it, so admissions are real choices and the
			// migrate pass (and its score gate) fires.
			Nodes: []scenario.NodeSpec{
				{Name: "n0"},
				{Name: "n1", Platform: littleHeavy()},
				{Name: "n2", Platform: tiny()},
			},
			Checkpoint: &scenario.CheckpointSpec{FreezeUS: 30_000, PerMBUS: 1_000, SizeMB: 8},
			Apps: []scenario.AppSpec{
				{Name: "sw0", Bench: "SW", Threads: 4, SLO: slo,
					InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
					Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
				{Name: "fe0", Bench: "FE", Threads: 4, StartMS: 500, SLO: slo,
					InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
					Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
				{Name: "bo0", Bench: "BO", Threads: 4, StartMS: 1000, SLO: slo,
					InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
					Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
				{Name: "fl0", Bench: "FL", Threads: 4, StartMS: 1500, SLO: slo,
					InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
					Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
			},
		}
	}

	const maxForks = 3 // contested decisions forked per policy
	const topK = 2     // alternatives replayed per fork

	type row struct {
		policy     string
		res        *scenario.Result
		forked     int
		replays    int
		regretMiss int
		regretJ    float64
		err        error
	}
	policies := fleet.PolicyNames()
	rows := make([]row, len(policies))
	parallelFor(len(rows), func(i int) {
		r := &rows[i]
		r.policy = policies[i]
		sc := mkScenario(r.policy)
		opts := scenario.Options{Strict: true}
		r.res, r.err = scenario.Run(sc, scenario.Options{Strict: true, TraceDecisions: true})
		if r.err != nil {
			return
		}
		// Fork the first contested decisions: picks where the policy had a
		// genuine choice (two or more eligible candidates). Uncontested
		// picks have zero regret by construction.
		for _, rec := range r.res.DecisionRecords {
			if r.forked >= maxForks {
				break
			}
			eligible := 0
			for _, c := range rec.Candidates {
				if c.Reason == "" {
					eligible++
				}
			}
			if eligible < 2 {
				continue
			}
			cf, err := scenario.RunCounterfactual(sc, opts, rec.ID, topK)
			if err != nil {
				r.err = err
				return
			}
			r.forked++
			r.replays += len(cf.Alternatives)
			rm, rj := cf.Regret()
			r.regretMiss += rm
			r.regretJ += rj
		}
	})
	// Rank best-first: fewest missed-SLO regrets, then least energy left on
	// the table, then name for stability.
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].regretMiss != rows[j].regretMiss {
			return rows[i].regretMiss < rows[j].regretMiss
		}
		if rows[i].regretJ != rows[j].regretJ {
			return rows[i].regretJ < rows[j].regretJ
		}
		return rows[i].policy < rows[j].policy
	})
	for _, r := range rows {
		if r.err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %v", r.policy, r.err))
			continue
		}
		d := &r.res.Decisions
		rep.Table.AddRow(
			r.policy,
			fmt.Sprint(d.Decisions),
			fmt.Sprint(d.GatedMigrations),
			fmt.Sprint(d.NoCandidate),
			fmt.Sprintf("%.3f", d.MeanMargin()),
			fmt.Sprint(r.forked),
			fmt.Sprint(r.replays),
			fmt.Sprint(r.regretMiss),
			fmt.Sprintf("%.2f", r.regretJ),
			fmt.Sprintf("%016x", r.res.TraceDigest),
		)
	}
	rep.Notes = append(rep.Notes,
		"regret = what the best forced alternative would have saved over the full horizon (0 = the policy's choice was optimal among its candidates)",
		"every fork replays the whole scenario per alternative; determinism makes the prefix before the forked decision bit-identical",
		"gated counts migrate-pass moves the destination-score gate declined — recorded as explicit no-op decisions",
		"mean margin is the winner's score lead over the runner-up across contested picks: thin margins mark decisions worth forking")
	return rep
}
