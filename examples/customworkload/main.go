// Custom workload: implement sim.Program to put your own application model
// under HARS. This example models a video transcoder with alternating
// light/heavy scenes and a memory-bound colour-grading pass that gains
// little from big cores — then lets HARS chase a 30 frames-per-minute
// target through the phase changes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// transcoder is a barrier-style Program: every frame is split across all
// worker threads; a heartbeat marks each finished frame.
type transcoder struct {
	threads int
	frame   int64
	pending int
}

func (tr *transcoder) Name() string    { return "transcoder" }
func (tr *transcoder) NumThreads() int { return tr.threads }

// frameWork alternates 40-frame scenes: action scenes cost 2.5× the work of
// dialogue scenes.
func (tr *transcoder) frameWork() float64 {
	if (tr.frame/40)%2 == 0 {
		return 0.35
	}
	return 0.90
}

func (tr *transcoder) Start(p *sim.Process) {
	tr.pending = tr.threads
	for i := 0; i < tr.threads; i++ {
		p.SetWork(i, tr.frameWork())
	}
}

func (tr *transcoder) UnitDone(p *sim.Process, local int) {
	tr.pending--
	if tr.pending > 0 {
		return
	}
	p.Beat()
	tr.frame++
	tr.pending = tr.threads
	for i := 0; i < tr.threads; i++ {
		p.SetWork(i, tr.frameWork())
	}
}

// SpeedFactor: the grading pass is memory-bound, so the true big/little
// ratio is only 1.2 — below HARS's assumed 1.5, like blackscholes.
func (tr *transcoder) SpeedFactor(local int, k hmp.ClusterKind) float64 {
	if k == hmp.Big {
		return 1.2
	}
	return 1
}

func main() {
	plat := hmp.Default()
	board := power.DefaultGroundTruth(plat)
	model, err := power.ProfileAndFit(plat, board, power.ProfileConfig{})
	if err != nil {
		log.Fatal(err)
	}

	m := sim.New(plat, sim.Config{Power: board})
	proc := m.Spawn("transcoder", &transcoder{threads: 8}, 10)

	target := heartbeat.Target{Min: 1.30, Avg: 1.45, Max: 1.60} // frames/s
	mgr := core.NewManager(m, proc, model, target, core.Config{Version: core.HARSEI})
	m.AddDaemon(mgr)

	for step := 0; step < 6; step++ {
		m.Run(30 * sim.Second)
		rec, _ := proc.HB.Latest()
		fmt.Printf("t=%3.0fs frame=%3d rate=%.2f/s state=%s power=%.2fW\n",
			sim.Seconds(m.Now()), rec.Index, rec.WindowRate,
			mgr.State().Pretty(plat), m.AvgPowerW())
	}
	fmt.Printf("\nadaptations: %d, manager overhead %.2f%%\n",
		mgr.Searches(), m.OverheadUtil()*100)
}
