package sim_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// spinner is a CPU-bound test program: every thread loops fixed-size units.
type spinner struct {
	threads int
	unit    float64
	big     float64 // big-cluster IPC factor (0 means 1.5)
	beats   bool    // emit a heartbeat per completed unit (thread 0 only)
	bonus   float64 // cache bonus, 0 = none
	delay   sim.Time
}

func (s *spinner) Name() string    { return "spinner" }
func (s *spinner) NumThreads() int { return s.threads }

func (s *spinner) Start(p *sim.Process) {
	for i := 0; i < s.threads; i++ {
		if s.delay > 0 {
			p.WakeAt(i, s.delay, s.unit)
		} else {
			p.SetWork(i, s.unit)
		}
	}
}

func (s *spinner) UnitDone(p *sim.Process, local int) {
	if s.beats && local == 0 {
		p.Beat()
	}
	p.SetWork(local, s.unit)
}

func (s *spinner) SpeedFactor(local int, k hmp.ClusterKind) float64 {
	if k == hmp.Big {
		if s.big == 0 {
			return 1.5
		}
		return s.big
	}
	return 1.0
}

func (s *spinner) CacheBonus() float64 { return s.bonus }

func newMachine(t *testing.T) *sim.Machine {
	t.Helper()
	return sim.New(hmp.Default(), sim.Config{})
}

func TestSingleThreadLittleBaseFreq(t *testing.T) {
	m := newMachine(t)
	m.SetLevel(hmp.Little, 0) // 800 MHz = f0 → speed 1.0 units/s
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.1}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	m.Run(10 * sim.Second)
	if got := p.WorkDone(); math.Abs(got-10) > 0.01 {
		t.Fatalf("WorkDone = %v, want ≈10", got)
	}
	if c := p.Threads[0].Core(); c != 0 {
		t.Errorf("thread core = %d, want 0", c)
	}
}

func TestFrequencyScaling(t *testing.T) {
	m := newMachine(t)
	// Little cluster at max (1.3 GHz): 1.625 units/s.
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.1}, 4)
	p.SetAffinity(0, hmp.MaskOf(1))
	m.Run(10 * sim.Second)
	if got := p.WorkDone(); math.Abs(got-16.25) > 0.05 {
		t.Fatalf("WorkDone at 1.3GHz = %v, want ≈16.25", got)
	}
}

func TestBigCoreIPC(t *testing.T) {
	m := newMachine(t)
	// Big at max (1.6 GHz), IPC 1.5 → 3.0 units/s.
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.1}, 4)
	p.SetAffinity(0, hmp.MaskOf(4))
	m.Run(10 * sim.Second)
	if got := p.WorkDone(); math.Abs(got-30) > 0.05 {
		t.Fatalf("WorkDone on big = %v, want ≈30", got)
	}
}

func TestCoreSharing(t *testing.T) {
	m := newMachine(t)
	m.SetLevel(hmp.Little, 0)
	p := m.Spawn("s", &spinner{threads: 2, unit: 0.05}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	p.SetAffinity(1, hmp.MaskOf(0))
	m.Run(10 * sim.Second)
	// Two threads share one 1.0-unit/s core: 5 each.
	for i := 0; i < 2; i++ {
		if got := p.Threads[i].WorkDone(); math.Abs(got-5) > 0.1 {
			t.Errorf("thread %d WorkDone = %v, want ≈5", i, got)
		}
	}
	if u := m.Util(0); math.Abs(u-1.0) > 0.01 {
		t.Errorf("core 0 util = %v, want ≈1", u)
	}
	if u := m.Util(1); u > 0.01 {
		t.Errorf("core 1 util = %v, want ≈0", u)
	}
}

func TestMaskBalancerSpreads(t *testing.T) {
	m := newMachine(t)
	p := m.Spawn("s", &spinner{threads: 4, unit: 1}, 4)
	for i := 0; i < 4; i++ {
		p.SetAffinity(i, hmp.MaskOf(0, 1, 2, 3))
	}
	m.Run(100 * sim.Millisecond)
	for cpu := 0; cpu < 4; cpu++ {
		if n := m.RunQueueLen(cpu); n != 1 {
			t.Errorf("core %d run queue = %d, want 1", cpu, n)
		}
	}
	for cpu := 4; cpu < 8; cpu++ {
		if n := m.RunQueueLen(cpu); n != 0 {
			t.Errorf("big core %d run queue = %d, want 0", cpu, n)
		}
	}
}

func TestAffinityChangeMigrates(t *testing.T) {
	m := newMachine(t)
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.05}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	m.Run(1 * sim.Second)
	p.SetAffinity(0, hmp.MaskOf(7)) // cross-cluster move
	m.Run(1 * sim.Second)
	th := p.Threads[0]
	if th.Core() != 7 {
		t.Fatalf("thread core = %d, want 7", th.Core())
	}
	if th.Migrations() < 1 {
		t.Error("expected at least one migration")
	}
}

func TestWorkConservation(t *testing.T) {
	m := newMachine(t)
	m.SetLevel(hmp.Little, 0)
	m.SetLevel(hmp.Big, 0)
	// 3 CPU-bound threads on 2 little cores: total capacity 2 units/s.
	p := m.Spawn("s", &spinner{threads: 3, unit: 0.01}, 4)
	for i := 0; i < 3; i++ {
		p.SetAffinity(i, hmp.MaskOf(0, 1))
	}
	m.Run(10 * sim.Second)
	if got := p.WorkDone(); math.Abs(got-20) > 0.2 {
		t.Fatalf("total work = %v, want ≈20 (2 cores × 1 unit/s × 10 s)", got)
	}
	busy := m.BusyTime(0) + m.BusyTime(1)
	if math.Abs(float64(busy)-20e6) > 2e4 {
		t.Errorf("busy time = %v µs, want ≈20e6", busy)
	}
}

func TestTimersDelayStart(t *testing.T) {
	m := newMachine(t)
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.1, delay: 5 * sim.Second}, 4)
	p.SetAffinity(0, hmp.MaskOf(4))
	m.Run(4 * sim.Second)
	if p.WorkDone() != 0 {
		t.Fatalf("work before wakeup = %v, want 0", p.WorkDone())
	}
	if p.Threads[0].Runnable() {
		t.Error("thread should be blocked before wakeup")
	}
	m.Run(6 * sim.Second) // now at t=10s; ran 5s at 3 units/s
	if got := p.WorkDone(); math.Abs(got-15) > 0.1 {
		t.Fatalf("work after wakeup = %v, want ≈15", got)
	}
}

func TestHeartbeats(t *testing.T) {
	m := newMachine(t)
	m.SetLevel(hmp.Little, 0)
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.5, beats: true}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	m.Run(10 * sim.Second)
	// 1 unit of 0.5 work at 1 unit/s → 2 beats/s → 20 beats.
	if n := p.HB.Count(); n < 19 || n > 21 {
		t.Fatalf("heartbeats = %d, want ≈20", n)
	}
	r, _ := p.HB.Latest()
	if math.Abs(r.WindowRate-2) > 0.05 {
		t.Errorf("window rate = %v, want ≈2", r.WindowRate)
	}
	if got := p.HB.RateOver(0, 10*sim.Second); math.Abs(got-2) > 0.05 {
		t.Errorf("RateOver = %v, want ≈2", got)
	}
}

func TestChargeOverheadStealsCapacity(t *testing.T) {
	m := newMachine(t)
	m.SetLevel(hmp.Little, 0)
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.01}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	// Charge 0.5 s of manager time against core 0 over the run.
	m.ChargeOverhead(0, 500*sim.Millisecond)
	m.Run(10 * sim.Second)
	if got := p.WorkDone(); math.Abs(got-9.5) > 0.1 {
		t.Fatalf("WorkDone = %v, want ≈9.5 (0.5 s stolen)", got)
	}
	if got := m.Overhead(); got != 500*sim.Millisecond {
		t.Errorf("Overhead = %v, want 0.5 s", got)
	}
	if got := m.OverheadUtil(); math.Abs(got-0.05) > 0.001 {
		t.Errorf("OverheadUtil = %v, want 0.05", got)
	}
}

func TestCacheBonus(t *testing.T) {
	// Two adjacent threads on the same cluster run (1+bonus)× faster.
	run := func(sameCluster bool) float64 {
		m := newMachine(t)
		m.SetLevel(hmp.Little, 0)
		m.SetLevel(hmp.Big, 0)
		p := m.Spawn("s", &spinner{threads: 2, unit: 0.05, big: 1.0, bonus: 0.2}, 4)
		p.SetAffinity(0, hmp.MaskOf(0))
		if sameCluster {
			p.SetAffinity(1, hmp.MaskOf(1))
		} else {
			p.SetAffinity(1, hmp.MaskOf(4))
		}
		m.Run(10 * sim.Second)
		return p.Threads[0].WorkDone()
	}
	together := run(true)
	apart := run(false)
	if math.Abs(together-12) > 0.2 {
		t.Errorf("co-located work = %v, want ≈12 (1.2 units/s)", together)
	}
	if math.Abs(apart-10) > 0.2 {
		t.Errorf("split work = %v, want ≈10", apart)
	}
}

type fakePower struct{ w float64 }

func (f fakePower) ClusterPower(k hmp.ClusterKind, level int, busy []float64) float64 {
	return f.w
}

func TestPowerIntegration(t *testing.T) {
	m := sim.New(hmp.Default(), sim.Config{Power: fakePower{w: 2}})
	m.Spawn("s", &spinner{threads: 1, unit: 1}, 4)
	m.Run(10 * sim.Second)
	// 2 W per cluster × 2 clusters × 10 s = 40 J.
	if got := m.EnergyJ(); math.Abs(got-40) > 0.01 {
		t.Fatalf("EnergyJ = %v, want 40", got)
	}
	if got := m.AvgPowerW(); math.Abs(got-4) > 0.01 {
		t.Fatalf("AvgPowerW = %v, want 4", got)
	}
	if got := m.ClusterEnergyJ(hmp.Big); math.Abs(got-20) > 0.01 {
		t.Fatalf("big ClusterEnergyJ = %v, want 20", got)
	}
}

func TestSetWorkValidation(t *testing.T) {
	m := newMachine(t)
	p := m.Spawn("s", &spinner{threads: 1, unit: 1}, 4)
	mustPanic(t, "SetWork(0)", func() { p.SetWork(0, 0) })
	mustPanic(t, "SetWork(-1)", func() { p.SetWork(0, -1) })
	mustPanic(t, "empty mask", func() { p.SetAffinity(0, 0) })
	mustPanic(t, "WakeAt(0)", func() { p.WakeAt(0, 1, 0) })
}

type zeroThreads struct{ *spinner }

func (zeroThreads) NumThreads() int { return 0 }

func TestSpawnValidation(t *testing.T) {
	m := newMachine(t)
	mustPanic(t, "zero threads", func() { m.Spawn("z", zeroThreads{&spinner{}}, 4) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestAccessors(t *testing.T) {
	m := newMachine(t)
	p := m.Spawn("app", &spinner{threads: 2, unit: 1}, 4)
	if m.Platform().TotalCores() != 8 {
		t.Error("Platform accessor wrong")
	}
	if len(m.Procs()) != 1 || m.Procs()[0] != p {
		t.Error("Procs accessor wrong")
	}
	if len(m.Threads()) != 2 {
		t.Error("Threads accessor wrong")
	}
	if p.Machine() != m {
		t.Error("Process.Machine wrong")
	}
	if p.Program().Name() != "spinner" {
		t.Error("Process.Program wrong")
	}
	if m.TickLen() != sim.Millisecond {
		t.Error("default TickLen wrong")
	}
	if !strings.Contains(p.Name, "app") {
		t.Error("process name wrong")
	}
	m.SetLevel(hmp.Big, 3)
	if m.Level(hmp.Big) != 3 {
		t.Error("SetLevel/Level round trip failed")
	}
	m.SetLevel(hmp.Big, 99)
	if m.Level(hmp.Big) != hmp.Default().Clusters[hmp.Big].MaxLevel() {
		t.Error("SetLevel should clamp")
	}
	p.AffinityAll()
	if p.Threads[0].Affinity() != hmp.AllCPUs(m.Platform()) {
		t.Error("AffinityAll wrong")
	}
	if p.Blocked(0) {
		t.Error("spinner threads should be runnable")
	}
	p.Block(0)
	if !p.Blocked(0) || p.Threads[0].Runnable() {
		t.Error("Block wrong")
	}
}

func TestMigrationPenaltyCostsTime(t *testing.T) {
	// A thread forced to ping-pong across clusters every tick loses
	// throughput to migration stalls.
	m := sim.New(hmp.Default(), sim.Config{MigrationPenaltyCross: 500 * sim.Microsecond})
	m.SetLevel(hmp.Little, 0)
	m.SetLevel(hmp.Big, 0)
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.001, big: 1.0}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	flip := false
	for i := 0; i < 2000; i++ {
		m.Step()
		flip = !flip
		if flip {
			p.SetAffinity(0, hmp.MaskOf(4))
		} else {
			p.SetAffinity(0, hmp.MaskOf(0))
		}
	}
	// 2 s elapsed at 1 unit/s nominal, but half of each tick is stalled.
	got := p.WorkDone()
	if got >= 1.2 {
		t.Fatalf("WorkDone = %v, want well under 2 due to migration stalls", got)
	}
	if p.Threads[0].Migrations() < 1000 {
		t.Errorf("migrations = %d, want ≈2000", p.Threads[0].Migrations())
	}
}

func TestRunUntil(t *testing.T) {
	m := newMachine(t)
	m.Spawn("s", &spinner{threads: 1, unit: 1}, 4)
	m.RunUntil(123 * sim.Millisecond)
	if m.Now() != 123*sim.Millisecond {
		t.Fatalf("Now = %v, want 123 ms", m.Now())
	}
	if sim.Seconds(m.Now()) != 0.123 {
		t.Errorf("Seconds = %v", sim.Seconds(m.Now()))
	}
}
