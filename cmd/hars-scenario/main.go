// Command hars-scenario replays a declarative dynamic-event scenario — a
// JSON script of application arrivals and departures, core hotplug, DVFS
// capping, target changes, and workload phase changes — on the simulated
// platform (or, when the scenario declares nodes, on a whole fleet of
// heterogeneous machines sharing one clock), emitting a deterministic
// per-sample metric trace.
//
// Usage:
//
//	hars-scenario -in scenario.json [-trace out.csv] [-strict]
//	hars-scenario -gen -seed 7 [-manager mphars-i] [-apps 3] [-events 6]
//	              [-duration 20000] [-nodes 3] [-placement coolest]
//	              [-write scenario.json] [-trace out.csv]
//
// The trace goes to stdout unless -trace names a file; the run summary goes
// to stderr. Replaying the same scenario always produces byte-identical
// trace output (the FNV-64a digest printed in the summary witnesses it), so
// traces can be diffed across runs and machines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/hmp"
	"repro/internal/scenario"
)

func main() {
	in := flag.String("in", "", "scenario JSON to replay")
	gen := flag.Bool("gen", false, "generate a random scenario instead of reading one")
	seed := flag.Int64("seed", 1, "generator seed (-gen)")
	manager := flag.String("manager", scenario.ManagerMPHARSI, "generated scenario's manager kind (-gen)")
	apps := flag.Int("apps", 3, "generated scenario's maximum app count (-gen)")
	events := flag.Int("events", 6, "generated scenario's dynamic event count (-gen)")
	duration := flag.Int64("duration", 20000, "generated scenario's duration in ms (-gen)")
	nodes := flag.Int("nodes", 0, "generated scenario's fleet size; 0 = classic single machine (-gen)")
	placement := flag.String("placement", "", "generated fleet's placement policy; empty draws one from the seed (-gen)")
	write := flag.String("write", "", "save the generated scenario JSON here (-gen)")
	tracePath := flag.String("trace", "", "trace output file (default stdout)")
	strict := flag.Bool("strict", false, "verify runtime invariants after every action and sample")
	flag.Parse()

	var sc *scenario.Scenario
	switch {
	case *gen:
		sc = scenario.Generate(*seed, scenario.GenConfig{
			Manager:    *manager,
			MaxApps:    *apps,
			Events:     *events,
			DurationMS: *duration,
			Nodes:      *nodes,
			Placement:  *placement,
		})
		if *write != "" {
			f, err := os.Create(*write)
			if err != nil {
				fatal(err)
			}
			if err := sc.Encode(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *write)
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		sc, err = scenario.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -in <scenario.json> or -gen (see -h)")
		os.Exit(2)
	}

	var trace io.Writer = os.Stdout
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		trace = f
	}

	res, err := scenario.Run(sc, scenario.Options{Trace: trace, Strict: *strict})
	if err != nil {
		fatal(err)
	}

	w := os.Stderr
	fleetRun := len(sc.Nodes) > 0
	if fleetRun {
		fmt.Fprintf(w, "scenario %s: manager %s, %d nodes (placement %s), %d apps, %d events, %d ms\n",
			sc.Name, sc.Manager, len(res.Nodes), res.Placement, len(sc.Apps), len(sc.Events), sc.DurationMS)
	} else {
		fmt.Fprintf(w, "scenario %s: manager %s, %d apps, %d events, %d ms\n",
			sc.Name, sc.Manager, len(sc.Apps), len(sc.Events), sc.DurationMS)
	}
	for _, a := range res.Apps {
		status := "ran to end"
		switch {
		case a.Skipped:
			status = "dropped (queued, never admitted)"
		case a.Departed:
			status = "departed"
		}
		if a.Queued && !a.Skipped {
			status += ", queued first"
		}
		where := ""
		if fleetRun && a.Node != "" {
			where = fmt.Sprintf(" node=%s moves=%d", a.Node, a.NodeMigrations)
		}
		fmt.Fprintf(w, "  %-8s beats=%-6d work=%-10.1f migrations=%-5d %s%s\n",
			a.Name, a.Beats, a.Work, a.Migrations, status, where)
	}
	fmt.Fprintf(w, "energy %.1f J, overhead %d µs, %d samples, trace digest %016x\n",
		res.EnergyJ, res.OverheadUS, res.Samples, res.TraceDigest)
	if fleetRun {
		fmt.Fprintf(w, "fleet: %d arrivals queued, %d dropped, %d node migrations\n",
			res.QueuedArrivals, res.DroppedArrivals, res.NodeMigrations)
	}
	for _, nr := range res.Nodes {
		if fleetRun {
			fmt.Fprintf(w, "node %s (%s): energy %.1f J, overhead %d µs, online mask %x\n",
				nr.Name, nr.Manager, nr.EnergyJ, nr.OverheadUS, uint64(nr.Machine.OnlineMask()))
		}
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			fmt.Fprintf(w, "  %s: level %d, cap %d, %d/%d cores online\n",
				k, nr.Machine.Level(k), nr.Machine.LevelCap(k),
				nr.Machine.OnlineCount(k), nr.Machine.Platform().Clusters[k].Cores)
		}
		if gov := nr.Thermal; gov != nil {
			spec := gov.Spec()
			fmt.Fprintf(w, "  thermal: trip %.1f°C / throttle %.1f°C / release %.1f°C, %d throttles (%d trips), %d releases\n",
				spec.TripC, spec.ThrottleC, spec.ReleaseC, gov.Throttles(), gov.Trips(), gov.Releases())
			for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
				fmt.Fprintf(w, "    %s: %.1f°C now, %.1f°C peak\n", k, gov.TempC(k), gov.PeakC(k))
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
