package gts_test

import (
	"testing"

	"repro/internal/gts"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// busy is a CPU-bound program with n threads.
type busy struct{ n int }

func (b *busy) Name() string    { return "busy" }
func (b *busy) NumThreads() int { return b.n }
func (b *busy) Start(p *sim.Process) {
	for i := 0; i < b.n; i++ {
		p.SetWork(i, 0.05)
	}
}
func (b *busy) UnitDone(p *sim.Process, local int) { p.SetWork(local, 0.05) }
func (b *busy) SpeedFactor(local int, k hmp.ClusterKind) float64 {
	if k == hmp.Big {
		return 1.5
	}
	return 1
}

func countOnCluster(p *sim.Process, plat *hmp.Platform, k hmp.ClusterKind) int {
	n := 0
	for _, t := range p.Threads {
		if t.Core() >= 0 && plat.ClusterOf(t.Core()) == k {
			n++
		}
	}
	return n
}

func TestCPUBoundThreadsPileOntoBigCluster(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	g := gts.New(plat)
	m.SetPlacer(g)
	// Eight CPU-intensive threads pile two-deep onto the big cores while
	// the little cores idle — the paper's §4.1.1 observation that GTS does
	// not allocate excess big-cluster workload to the little cluster.
	p := m.Spawn("busy", &busy{n: 8}, 4)
	m.Run(2 * sim.Second)
	if got := countOnCluster(p, plat, hmp.Big); got != 8 {
		t.Fatalf("threads on big cluster = %d, want 8", got)
	}
	for cpu := 0; cpu < 4; cpu++ {
		if n := m.RunQueueLen(cpu); n != 0 {
			t.Errorf("little core %d run queue = %d, want 0", cpu, n)
		}
	}
	for cpu := 4; cpu < 8; cpu++ {
		if n := m.RunQueueLen(cpu); n != 2 {
			t.Errorf("big core %d run queue = %d, want 2", cpu, n)
		}
	}
}

func TestIdleBalanceSpillsUnderHeavyOvercommit(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	g := gts.New(plat)
	m.SetPlacer(g)
	// Sixteen CPU-intensive threads exceed the little-ward pull threshold:
	// the little cores pull work until big queues drop below it.
	p := m.Spawn("busy", &busy{n: 16}, 4)
	m.Run(3 * sim.Second)
	if got := countOnCluster(p, plat, hmp.Little); got < 4 {
		t.Fatalf("threads on little cluster = %d, want ≥ 4 (spill)", got)
	}
	for cpu := 4; cpu < 8; cpu++ {
		if n := m.RunQueueLen(cpu); n < 2 {
			t.Errorf("big core %d run queue = %d, want ≥ 2", cpu, n)
		}
	}
}

func TestLightThreadsMigrateDown(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	g := gts.New(plat)
	m.SetPlacer(g)
	// 10% duty cycle: load ≈ 102 « Down threshold.
	bench := &power.Microbench{Threads: 2, Util: 0.1, Period: 20 * sim.Millisecond, Speed: 1}
	p := m.Spawn("light", bench, 4)
	m.Run(2 * sim.Second)
	if got := countOnCluster(p, plat, hmp.Little); got != 2 {
		t.Fatalf("light threads on little cluster = %d, want 2", got)
	}
	for _, th := range p.Threads {
		if l := g.Load(th); l > g.Down {
			t.Errorf("light thread load = %v, want < %v", l, g.Down)
		}
	}
}

func TestAllowedCpusetRestrictsPlacement(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	g := gts.New(plat)
	g.SetAllowed(hmp.MaskOf(0, 1))
	m.SetPlacer(g)
	p := m.Spawn("busy", &busy{n: 4}, 4)
	m.Run(1 * sim.Second)
	for _, th := range p.Threads {
		if c := th.Core(); c != 0 && c != 1 {
			t.Fatalf("thread on core %d, outside cpuset {0,1}", c)
		}
	}
	for cpu := 2; cpu < 8; cpu++ {
		if u := m.Util(cpu); u > 0.01 {
			t.Errorf("core %d outside cpuset has util %v", cpu, u)
		}
	}
}

func TestAffinityRespected(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	m.SetPlacer(gts.New(plat))
	p := m.Spawn("busy", &busy{n: 1}, 4)
	p.SetAffinity(0, hmp.MaskOf(2)) // CPU-bound but pinned to a little core
	m.Run(1 * sim.Second)
	if c := p.Threads[0].Core(); c != 2 {
		t.Fatalf("pinned thread on core %d, want 2", c)
	}
}

func TestEmptyCpusetPanics(t *testing.T) {
	g := gts.New(hmp.Default())
	defer func() {
		if recover() == nil {
			t.Error("SetAllowed(0) should panic")
		}
	}()
	g.SetAllowed(0)
}

func TestLoadOfUnknownThreadDefaultsHigh(t *testing.T) {
	plat := hmp.Default()
	g := gts.New(plat)
	m := sim.New(plat, sim.Config{})
	p := m.Spawn("busy", &busy{n: 1}, 4)
	if l := g.Load(p.Threads[0]); l != gts.LoadScale {
		t.Errorf("unseen thread load = %v, want %v", l, gts.LoadScale)
	}
}

func TestThroughputUnderGTSBaseline(t *testing.T) {
	// Sanity check of the baseline version's achievable rate: 8 CPU-bound
	// threads land on the 4 big cores at max frequency (littles idle), so
	// total throughput ≈ 4 cores × 3 units/s = 12 units/s.
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	m.SetPlacer(gts.New(plat))
	p := m.Spawn("busy", &busy{n: 8}, 4)
	m.Run(10 * sim.Second)
	got := p.WorkDone()
	if got < 110 || got > 125 {
		t.Fatalf("10 s work under GTS = %v, want ≈120 (big cluster only)", got)
	}
}
