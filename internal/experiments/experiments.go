// Package experiments regenerates every table and figure of the paper's
// evaluation (Chapter 5) on the simulated platform: the single-application
// perf/watt comparisons (Figures 5.1, 5.2), the explored-space sweep
// (Figure 5.3), the multi-application comparison (Figure 5.4), the behaviour
// graphs of case 4 (Figures 5.5–5.7), the thread-assignment table
// (Table 3.1), the decision table (Table 4.3), and the power-model
// calibration of §5.1.1.
//
// Each driver returns a Report holding the same rows/series the paper plots.
// Absolute numbers differ from the paper (the substrate is a simulator, not
// the authors' board); the shapes are what the reproduction checks.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/oracle"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale selects experiment durations: Quick for tests and benchmarks, Full
// for the command-line regeneration run.
type Scale struct {
	CalibTime   sim.Time // calibration run length
	CalibSkip   sim.Time // calibration warm-up discarded before measuring
	RunTime     sim.Time // measured run length per version
	MeasureFrom sim.Time // start of the measurement window within a run

	OracleWarmup     sim.Time
	OracleMeasure    sim.Time
	OracleFreqStride int

	Profile power.ProfileConfig

	Threads  int // the paper's n parameter (total core count)
	HBWindow int
}

// Quick returns the test/benchmark scale.
func Quick() Scale {
	return Scale{
		CalibTime:   25 * sim.Second,
		CalibSkip:   12 * sim.Second,
		RunTime:     70 * sim.Second,
		MeasureFrom: 25 * sim.Second,

		OracleWarmup:     10 * sim.Second,
		OracleMeasure:    12 * sim.Second,
		OracleFreqStride: 3,

		Profile: power.ProfileConfig{
			Utils:  []float64{0.5, 1.0},
			RunPer: 600 * sim.Millisecond,
		},

		Threads:  8,
		HBWindow: 10,
	}
}

// Full returns the paper-scale configuration used by cmd/hars-experiments.
func Full() Scale {
	return Scale{
		CalibTime:   35 * sim.Second,
		CalibSkip:   12 * sim.Second,
		RunTime:     180 * sim.Second,
		MeasureFrom: 30 * sim.Second,

		OracleWarmup:     12 * sim.Second,
		OracleMeasure:    16 * sim.Second,
		OracleFreqStride: 1,

		Profile: power.ProfileConfig{},

		Threads:  8,
		HBWindow: 10,
	}
}

// Env bundles the shared fixtures of all experiments: the platform, the
// ground-truth power model (the "board"), the fitted linear power model (the
// offline calibration of §5.1.1), and a cache of per-benchmark maximum
// achievable rates.
type Env struct {
	Plat  *hmp.Platform
	GT    *power.GroundTruth
	Model *power.LinearModel
	Scale Scale

	mu       sync.Mutex
	maxRates map[string]float64
}

// NewEnv builds an environment: it profiles the board with the
// microbenchmark sweep and fits the linear power models.
func NewEnv(scale Scale) (*Env, error) {
	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	model, err := power.ProfileAndFit(plat, gt, scale.Profile)
	if err != nil {
		return nil, fmt.Errorf("experiments: power profiling: %w", err)
	}
	return &Env{
		Plat:     plat,
		GT:       gt,
		Model:    model,
		Scale:    scale,
		maxRates: make(map[string]float64),
	}, nil
}

// RunResult is one measured run of one version of one workload mix.
type RunResult struct {
	Rate         float64 // heartbeats/s over the measurement window
	NormPerf     float64 // min(g, rate)/g
	PowerW       float64 // average watts over the measurement window
	PP           float64 // normalized perf per watt
	OverheadUtil float64 // runtime-manager CPU utilization (fraction)
	State        hmp.State
}

// newMachine builds a machine wired to the environment's ground truth.
func (e *Env) newMachine() *sim.Machine {
	return sim.New(e.Plat, sim.Config{Power: e.GT})
}

// MaxRate measures (and caches) the maximum achievable heartbeat rate of a
// benchmark: the baseline run at maximum core count and frequency under the
// Linux HMP scheduler.
func (e *Env) MaxRate(b workload.Benchmark) float64 {
	e.mu.Lock()
	if r, ok := e.maxRates[b.Short]; ok {
		e.mu.Unlock()
		return r
	}
	e.mu.Unlock()
	m := e.newMachine()
	m.SetPlacer(gts.New(e.Plat))
	p := m.Spawn(b.Name, b.New(e.Scale.Threads), e.Scale.HBWindow)
	m.Run(e.Scale.CalibTime)
	rate := p.HB.RateOver(e.Scale.CalibSkip, m.Now())
	e.mu.Lock()
	e.maxRates[b.Short] = rate
	e.mu.Unlock()
	return rate
}

// Target builds the paper's performance target for a benchmark: frac of the
// maximum achievable rate, ±5% of that maximum.
func (e *Env) Target(b workload.Benchmark, frac float64) heartbeat.Target {
	return heartbeat.TargetAround(e.MaxRate(b), frac, 0.05)
}

// measure runs the machine for the scale's run time and reports rate/power
// over the measurement window for the given process.
func (e *Env) measure(m *sim.Machine, p *sim.Process, tgt heartbeat.Target) RunResult {
	m.RunUntil(e.Scale.MeasureFrom)
	e0, t0 := m.EnergyJ(), m.Now()
	m.RunUntil(e.Scale.RunTime)
	dt := sim.Seconds(m.Now() - t0)
	res := RunResult{
		Rate:         p.HB.RateOver(t0, m.Now()),
		PowerW:       (m.EnergyJ() - e0) / dt,
		OverheadUtil: m.OverheadUtil(),
	}
	res.NormPerf = heartbeat.NormalizedPerf(tgt, res.Rate)
	if res.PowerW > 0 {
		res.PP = res.NormPerf / res.PowerW
	}
	return res
}

// RunBaseline runs the baseline version: maximum core count and frequency,
// scheduled by the Linux HMP scheduler.
func (e *Env) RunBaseline(b workload.Benchmark, tgt heartbeat.Target) RunResult {
	m := e.newMachine()
	m.SetPlacer(gts.New(e.Plat))
	p := m.Spawn(b.Name, b.New(e.Scale.Threads), e.Scale.HBWindow)
	res := e.measure(m, p, tgt)
	res.State = hmp.MaxState(e.Plat)
	return res
}

// RunStaticOptimal sweeps all states offline (the SO version), then runs the
// chosen state statically under the Linux HMP scheduler.
func (e *Env) RunStaticOptimal(b workload.Benchmark, tgt heartbeat.Target) RunResult {
	best := oracle.FindStatic(oracle.Options{
		Plat:       e.Plat,
		Power:      e.GT,
		NewProgram: func() sim.Program { return b.New(e.Scale.Threads) },
		Target:     tgt,
		Warmup:     e.Scale.OracleWarmup,
		Measure:    e.Scale.OracleMeasure,
		FreqStride: e.Scale.OracleFreqStride,
		Parallel:   true,
	})
	m := e.newMachine()
	m.SetLevel(hmp.Big, best.State.BigLevel)
	m.SetLevel(hmp.Little, best.State.LittleLevel)
	g := gts.New(e.Plat)
	g.SetAllowed(stateCpuset(e.Plat, best.State))
	m.SetPlacer(g)
	p := m.Spawn(b.Name, b.New(e.Scale.Threads), e.Scale.HBWindow)
	res := e.measure(m, p, tgt)
	res.State = best.State
	return res
}

// RunHARS runs one of the HARS versions with optional manager overrides.
func (e *Env) RunHARS(b workload.Benchmark, tgt heartbeat.Target, cfg core.Config) RunResult {
	res, _ := e.RunHARSTraced(b, tgt, cfg)
	return res
}

// RunHARSTraced is RunHARS plus the manager's adaptation-decision trace.
func (e *Env) RunHARSTraced(b workload.Benchmark, tgt heartbeat.Target, cfg core.Config) (RunResult, []core.Decision) {
	m := e.newMachine()
	p := m.Spawn(b.Name, b.New(e.Scale.Threads), e.Scale.HBWindow)
	mgr := core.NewManager(m, p, e.Model, tgt, cfg)
	m.AddDaemon(mgr)
	res := e.measure(m, p, tgt)
	res.State = mgr.State()
	return res, mgr.Decisions()
}

func stateCpuset(p *hmp.Platform, st hmp.State) hmp.CPUMask {
	var mask hmp.CPUMask
	for i := 0; i < st.LittleCores; i++ {
		mask = mask.Set(p.CPU(hmp.Little, i))
	}
	for i := 0; i < st.BigCores; i++ {
		mask = mask.Set(p.CPU(hmp.Big, i))
	}
	if mask == 0 {
		mask = hmp.AllCPUs(p)
	}
	return mask
}

// parallelFor runs fn(i) for i in [0, n) across workers, preserving result
// order determinism (each fn writes only its own slot).
func parallelFor(n int, fn func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Report is the renderable outcome of one experiment.
type Report struct {
	Title  string
	Table  stats.Table
	Series []*stats.Series
	Charts []string
	Notes  []string
}

// String renders the report for the terminal.
func (r *Report) String() string {
	out := fmt.Sprintf("== %s ==\n", r.Title)
	if len(r.Table.Header) > 0 {
		out += r.Table.String()
	}
	for _, c := range r.Charts {
		out += c
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}
