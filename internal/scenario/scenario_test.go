package scenario

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// loadTestdata decodes the checked-in showcase scenario.
func loadTestdata(t *testing.T) *Scenario {
	t.Helper()
	f, err := os.Open("testdata/dynamic.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestDecodeRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{nope`,
		"unknown field":  `{"manager":"none","duration_ms":1000,"bogus":1,"apps":[{"name":"a","bench":"SW"}]}`,
		"no apps":        `{"manager":"none","duration_ms":1000}`,
		"bad manager":    `{"manager":"hal9000","duration_ms":1000,"apps":[{"name":"a","bench":"SW"}]}`,
		"bad bench":      `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"ZZ"}]}`,
		"dup app":        `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"SW"},{"name":"a","bench":"FE"}]}`,
		"stop before":    `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"SW","start_ms":500,"stop_ms":200}]}`,
		"late start":     `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"SW","start_ms":1000}]}`,
		"bad event kind": `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"SW"}],"events":[{"at_ms":1,"kind":"explode"}]}`,
		"hotplug no online": `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"SW"}],
			"events":[{"at_ms":1,"kind":"hotplug","cpu":1}]}`,
		"hotplug bad cpu": `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"SW"}],
			"events":[{"at_ms":1,"kind":"hotplug","cpu":64,"online":false}]}`,
		"cap bad cluster": `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"SW"}],
			"events":[{"at_ms":1,"kind":"dvfs_cap","cluster":"medium","max_level":1}]}`,
		"cap bad level": `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"SW"}],
			"events":[{"at_ms":1,"kind":"dvfs_cap","cluster":"big","max_level":99}]}`,
		"target unknown app": `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"SW"}],
			"events":[{"at_ms":1,"kind":"target","app":"b","frac":0.5}]}`,
		"phase bad scale": `{"manager":"none","duration_ms":1000,"apps":[{"name":"a","bench":"SW"}],
			"events":[{"at_ms":1,"kind":"phase","app":"a","scale":0}]}`,
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestValidateRejectsStrandedMachine covers the chronological hotplug check:
// a sequence that takes the last core offline is rejected even though every
// individual event is well formed.
func TestValidateRejectsStrandedMachine(t *testing.T) {
	sc := &Scenario{
		Manager:    ManagerNone,
		DurationMS: 1000,
		Apps:       []AppSpec{{Name: "a", Bench: "SW"}},
	}
	off := false
	for cpu := 0; cpu < hmp.Default().TotalCores(); cpu++ {
		sc.Events = append(sc.Events, Event{
			AtMS: int64(cpu + 1), Kind: KindHotplug, CPU: cpu, Online: &off,
		})
	}
	if err := sc.Validate(); err == nil {
		t.Fatal("scenario stranding the machine accepted")
	}
	// Bringing one back in between makes it legal again.
	on := true
	sc.Events = append(sc.Events[:len(sc.Events)-1], Event{
		AtMS: 7, Kind: KindHotplug, CPU: 0, Online: &on,
	})
	if err := sc.Validate(); err != nil {
		t.Fatalf("legal hotplug sequence rejected: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, sc := range []*Scenario{
		loadTestdata(t),
		Generate(11, GenConfig{}),
		Generate(12, GenConfig{Manager: ManagerHARSE, MaxApps: 2}),
	} {
		var buf bytes.Buffer
		if err := sc.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(got, sc) {
			t.Fatalf("%s: round trip changed the scenario:\n%+v\n%+v", sc.Name, got, sc)
		}
	}
}

// TestGenerateAlwaysValid sweeps seeds and managers: every generated
// scenario validates, and generation is deterministic per seed.
func TestGenerateAlwaysValid(t *testing.T) {
	managers := []string{ManagerNone, ManagerGTS, ManagerHARSI, ManagerHARSE, ManagerMPHARSI, ManagerMPHARSE}
	for seed := int64(1); seed <= 40; seed++ {
		cfg := GenConfig{Manager: managers[seed%int64(len(managers))], Events: 8}
		sc := Generate(seed, cfg)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		again := Generate(seed, cfg)
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
}

// TestRunDeterminism is the acceptance gate: replaying the showcase
// scenario (arrival, departure, hotplug, DVFS cap, target, phase — six
// distinct event types) twice produces byte-identical traces and equal
// digests.
func TestRunDeterminism(t *testing.T) {
	sc := loadTestdata(t)
	var a, b bytes.Buffer
	ra, err := Run(sc, Options{Trace: &a, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(sc, Options{Trace: &b, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("trace output differs between two replays of the same scenario")
	}
	if ra.TraceDigest != rb.TraceDigest {
		t.Fatalf("trace digests differ: %x vs %x", ra.TraceDigest, rb.TraceDigest)
	}
	if a.Len() == 0 || ra.Samples == 0 {
		t.Fatal("empty trace")
	}
	// The digest also matches a traceless run, so the digest alone is a
	// sufficient determinism witness for sweeps.
	rc, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rc.TraceDigest != ra.TraceDigest {
		t.Fatal("digest depends on whether a trace writer is attached")
	}
}

// TestDynamicEventsTakeEffect checks each event kind leaves its observable
// footprint on the run.
func TestDynamicEventsTakeEffect(t *testing.T) {
	sc := loadTestdata(t)
	res, err := Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Machine

	// Arrival and departure: both apps ran, fe0 departed and its process is
	// dead, sw0 ran to the end.
	if len(res.Apps) != 2 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	sw, fe := res.Apps[0], res.Apps[1]
	if !sw.Arrived || sw.Departed || sw.Beats == 0 {
		t.Fatalf("sw0: %+v", sw)
	}
	if !fe.Arrived || !fe.Departed || fe.Beats == 0 {
		t.Fatalf("fe0: %+v", fe)
	}
	var feProc, swProc = m.Procs()[1], m.Procs()[0]
	if !feProc.Exited() || swProc.Exited() {
		t.Fatal("departure did not kill fe0 (or killed sw0)")
	}
	for _, th := range feProc.Threads {
		if th.Runnable() {
			t.Fatal("departed process still has runnable threads")
		}
	}

	// Hotplug: cpu 7 went offline at 4 s and returned at 12 s.
	if !m.CoreOnline(7) || m.OnlineMask() != hmp.AllCPUs(m.Platform()) {
		t.Fatal("cpu 7 should be back online at the end")
	}
	// DVFS cap: big cluster was capped at level 4 then restored to 8.
	if m.LevelCap(hmp.Big) != 8 {
		t.Fatalf("big cap = %d, want 8 (restored)", m.LevelCap(hmp.Big))
	}
	// MP-HARS partition stayed consistent through all of it.
	if err := res.MP.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= 0 || res.OverheadUS <= 0 {
		t.Fatalf("energy %v overhead %v", res.EnergyJ, res.OverheadUS)
	}
}

// TestHotplugCapBiteDuringRun pins the mid-run effect of hotplug and caps
// with a per-tick probe: the offline window and the cap window are actually
// observed, and during them cpu 7 holds no runnable thread and the big
// cluster stays at or below the ceiling.
func TestHotplugCapBiteDuringRun(t *testing.T) {
	sc := loadTestdata(t)
	sawOffline, sawCapped := false, false
	_, err := Run(sc, Options{
		Strict: true,
		PerTick: func(m *sim.Machine) {
			if !m.CoreOnline(7) {
				sawOffline = true
				for _, th := range m.Threads() {
					if th.Runnable() && th.Core() == 7 {
						t.Fatalf("t=%d: runnable thread on offline cpu 7", m.Now())
					}
				}
			}
			if m.LevelCap(hmp.Big) == 4 {
				sawCapped = true
				if m.Level(hmp.Big) > 4 {
					t.Fatalf("t=%d: big level %d above cap 4", m.Now(), m.Level(hmp.Big))
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawOffline || !sawCapped {
		t.Fatalf("offline window seen: %t, cap window seen: %t", sawOffline, sawCapped)
	}
}
