// Package hmp models a big.LITTLE heterogeneous multi-processing (HMP)
// platform of the kind HARS targets: two clusters of cores ("big" and
// "little") with per-cluster DVFS over a discrete operating-performance-point
// (OPP) grid.
//
// The default platform mirrors the ODROID-XU3 board used in the paper's
// evaluation: a Samsung Exynos 5422 with four Cortex-A15 big cores
// (0.8–1.6 GHz) and four Cortex-A7 little cores (0.8–1.3 GHz). Global CPU
// numbering follows the paper's convention (and the board's): little cores
// occupy CPUs 0..3 and big cores CPUs 4..7.
package hmp

import "fmt"

// ClusterKind identifies one of the two core clusters of an HMP platform.
type ClusterKind uint8

// The two cluster kinds. Little is the slow, power-efficient in-order
// cluster; Big is the fast, power-hungry out-of-order cluster.
const (
	Little ClusterKind = iota
	Big
	// NumClusters is the number of clusters an HMP platform has.
	NumClusters = 2
)

// String returns "little" or "big".
func (k ClusterKind) String() string {
	switch k {
	case Little:
		return "little"
	case Big:
		return "big"
	}
	return fmt.Sprintf("ClusterKind(%d)", uint8(k))
}

// Other returns the opposite cluster kind.
func (k ClusterKind) Other() ClusterKind {
	if k == Little {
		return Big
	}
	return Little
}

// OPP is one operating performance point of a cluster: a frequency and the
// supply voltage the cluster needs to sustain it.
type OPP struct {
	KHz       int // core clock in kHz
	MilliVolt int // supply voltage in mV
}

// ClusterSpec describes one cluster of an HMP platform.
type ClusterSpec struct {
	Kind ClusterKind
	Name string // e.g. "Cortex-A15"

	// Cores is the number of cores in the cluster.
	Cores int

	// OPPs is the DVFS grid, ascending by frequency. The frequency *level*
	// used throughout the library is an index into this slice.
	OPPs []OPP

	// IPC is the nominal per-cycle throughput of one core relative to a
	// little core. The paper derives the default big/little performance
	// ratio r0 = 3/2 from the instruction width of the A15 (3) and A7 (2).
	IPC float64
}

// Levels returns the number of frequency levels in the cluster's OPP grid.
func (c *ClusterSpec) Levels() int { return len(c.OPPs) }

// MaxLevel returns the highest valid frequency level.
func (c *ClusterSpec) MaxLevel() int { return len(c.OPPs) - 1 }

// KHz returns the frequency in kHz of the given level. Levels outside the
// grid are clamped to the nearest valid level so that estimator sweeps can
// probe beyond the grid without crashing.
func (c *ClusterSpec) KHz(level int) int {
	return c.OPPs[c.ClampLevel(level)].KHz
}

// MilliVolt returns the supply voltage in mV at the given (clamped) level.
func (c *ClusterSpec) MilliVolt(level int) int {
	return c.OPPs[c.ClampLevel(level)].MilliVolt
}

// ClampLevel clamps a frequency level to the valid range of the grid.
func (c *ClusterSpec) ClampLevel(level int) int {
	if level < 0 {
		return 0
	}
	if level >= len(c.OPPs) {
		return len(c.OPPs) - 1
	}
	return level
}

// Level returns the frequency level whose OPP matches khz exactly.
func (c *ClusterSpec) Level(khz int) (int, bool) {
	for i, o := range c.OPPs {
		if o.KHz == khz {
			return i, true
		}
	}
	return 0, false
}

// Platform is a two-cluster HMP machine description.
type Platform struct {
	// Clusters is indexed by ClusterKind.
	Clusters [NumClusters]ClusterSpec

	// BaseKHz is the baseline frequency f0 the paper's models normalize
	// against (800 MHz on the Exynos 5422, the lowest OPP of both clusters).
	BaseKHz int
}

// Default returns the ODROID-XU3-like platform of the paper's evaluation:
// 4 Cortex-A7 little cores at 0.8–1.3 GHz and 4 Cortex-A15 big cores at
// 0.8–1.6 GHz, with 100 MHz DVFS steps and Exynos-5422-style voltage scaling.
func Default() *Platform {
	return &Platform{
		Clusters: [NumClusters]ClusterSpec{
			Little: {
				Kind:  Little,
				Name:  "Cortex-A7",
				Cores: 4,
				IPC:   1.0,
				OPPs: []OPP{
					{KHz: 800_000, MilliVolt: 900},
					{KHz: 900_000, MilliVolt: 925},
					{KHz: 1_000_000, MilliVolt: 975},
					{KHz: 1_100_000, MilliVolt: 1025},
					{KHz: 1_200_000, MilliVolt: 1075},
					{KHz: 1_300_000, MilliVolt: 1112},
				},
			},
			Big: {
				Kind:  Big,
				Name:  "Cortex-A15",
				Cores: 4,
				IPC:   1.5,
				OPPs: []OPP{
					{KHz: 800_000, MilliVolt: 900},
					{KHz: 900_000, MilliVolt: 925},
					{KHz: 1_000_000, MilliVolt: 950},
					{KHz: 1_100_000, MilliVolt: 1000},
					{KHz: 1_200_000, MilliVolt: 1037},
					{KHz: 1_300_000, MilliVolt: 1075},
					{KHz: 1_400_000, MilliVolt: 1112},
					{KHz: 1_500_000, MilliVolt: 1150},
					{KHz: 1_600_000, MilliVolt: 1200},
				},
			},
		},
		BaseKHz: 800_000,
	}
}

// TotalCores returns the number of cores across both clusters.
func (p *Platform) TotalCores() int {
	return p.Clusters[Little].Cores + p.Clusters[Big].Cores
}

// FirstCPU returns the global CPU number of the first core of cluster k.
// Little cores come first (CPU 0), matching the paper's core-allocation
// pseudocode, where big cores are offset by bigStartIndex.
func (p *Platform) FirstCPU(k ClusterKind) int {
	if k == Little {
		return 0
	}
	return p.Clusters[Little].Cores
}

// CPU returns the global CPU number of core i (0-based) of cluster k.
func (p *Platform) CPU(k ClusterKind, i int) int {
	return p.FirstCPU(k) + i
}

// ClusterOf returns the cluster that global CPU number cpu belongs to.
func (p *Platform) ClusterOf(cpu int) ClusterKind {
	if cpu < p.Clusters[Little].Cores {
		return Little
	}
	return Big
}

// IndexInCluster converts a global CPU number to a 0-based index within its
// cluster.
func (p *Platform) IndexInCluster(cpu int) int {
	return cpu - p.FirstCPU(p.ClusterOf(cpu))
}

// FreqScale returns f/f0 for cluster k at the given frequency level: the
// frequency-only speedup relative to the platform baseline frequency.
func (p *Platform) FreqScale(k ClusterKind, level int) float64 {
	return float64(p.Clusters[k].KHz(level)) / float64(p.BaseKHz)
}

// NominalSpeed returns the platform's nominal per-core speed for cluster k at
// the given level, in abstract work units per second: IPC × f/f0. A little
// core at the baseline frequency retires exactly 1.0 units/s. Individual
// applications may deviate from the nominal IPC ratio (the paper's
// blackscholes observation); this value is what HARS's performance estimator
// believes.
func (p *Platform) NominalSpeed(k ClusterKind, level int) float64 {
	return p.Clusters[k].IPC * p.FreqScale(k, level)
}

// R0 returns the platform's nominal big/little performance ratio at the
// baseline frequency (the paper's r0 = S_B,f0 / S_L,f0 = 3/2).
func (p *Platform) R0() float64 {
	return p.Clusters[Big].IPC / p.Clusters[Little].IPC
}

// Validate reports whether the platform description is internally
// consistent.
func (p *Platform) Validate() error {
	for k := ClusterKind(0); k < NumClusters; k++ {
		c := &p.Clusters[k]
		if c.Cores <= 0 {
			return fmt.Errorf("hmp: cluster %s has %d cores", k, c.Cores)
		}
		if len(c.OPPs) == 0 {
			return fmt.Errorf("hmp: cluster %s has no OPPs", k)
		}
		if c.IPC <= 0 {
			return fmt.Errorf("hmp: cluster %s has non-positive IPC", k)
		}
		for i := 1; i < len(c.OPPs); i++ {
			if c.OPPs[i].KHz <= c.OPPs[i-1].KHz {
				return fmt.Errorf("hmp: cluster %s OPPs not ascending at %d", k, i)
			}
		}
	}
	if p.BaseKHz <= 0 {
		return fmt.Errorf("hmp: non-positive base frequency %d", p.BaseKHz)
	}
	return nil
}
