// Command mphars runs a pair of benchmarks concurrently under a
// multi-application version (baseline, CONS-I, MP-HARS-I, MP-HARS-E) and
// reports per-application performance, total power, the case efficiency,
// and optionally the per-heartbeat behaviour trace (the raw data of the
// paper's Figures 5.5–5.7).
//
// Usage:
//
//	mphars -apps BO,FL -version mp-hars-e -target 0.5 [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	apps := flag.String("apps", "BO,FL", "two benchmark short tags, comma-separated")
	version := flag.String("version", "mp-hars-e", "version: baseline, cons-i, mp-hars-i, mp-hars-e")
	target := flag.Float64("target", 0.5, "per-app target fraction of solo maximum")
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	trace := flag.Bool("trace", false, "dump the behaviour trace as CSV")
	flag.Parse()

	parts := strings.Split(strings.ToUpper(*apps), ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "-apps wants exactly two tags, e.g. BO,FL")
		os.Exit(2)
	}
	var caseNames [2]string
	for i, p := range parts {
		if _, ok := workload.ByShort(p); !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (want one of %s)\n", p, strings.Join(workload.Shorts(), ", "))
			os.Exit(2)
		}
		caseNames[i] = p
	}
	versions := map[string]string{
		"baseline": "Baseline", "cons-i": "CONS-I",
		"mp-hars-i": "MP-HARS-I", "mp-hars-e": "MP-HARS-E",
	}
	v, ok := versions[strings.ToLower(*version)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown version %q\n", *version)
		os.Exit(2)
	}

	sc := experiments.Quick()
	if *scale == "full" {
		sc = experiments.Full()
	}
	env, err := experiments.NewEnv(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	run := env.RunMultiApp(caseNames, v, *target)

	fmt.Printf("case %s+%s under %s\n", caseNames[0], caseNames[1], v)
	for i, r := range run.PerApp {
		b, _ := workload.ByShort(caseNames[i])
		tgt := env.Target(b, *target)
		fmt.Printf("  %-3s rate=%.3f hb/s target=%.3f norm=%.3f\n",
			caseNames[i], r.Rate, tgt.Avg, r.NormPerf)
	}
	fmt.Printf("  total power:     %.3f W\n", run.PowerW)
	fmt.Printf("  case efficiency: %.4f (geomean norm perf per watt)\n", run.Eff)

	if *trace {
		for i := range run.Traces {
			if len(run.Traces[i]) == 0 {
				continue
			}
			fmt.Printf("\n# %s trace (hb_index,hps,b_core,l_core,b_ghz,l_ghz)\n", caseNames[i])
			for _, tp := range run.Traces[i] {
				fmt.Printf("%d,%.3f,%d,%d,%.1f,%.1f\n",
					tp.HBIndex, tp.HPS, tp.BigCores, tp.LittleCores, tp.BigGHz, tp.LittleGHz)
			}
		}
	}
}
