package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/sim"
)

// faultScenario is a 3-node fleet with a scripted mid-run crash of n1 (which
// heals), a seeded random crash process, and flaky checkpoint transfers —
// every fault mechanism at once. a0 is pinned to the crashing node so at
// least one salvage/recovery is guaranteed under every policy.
func faultScenario(placement string) *Scenario {
	return &Scenario{
		Name:       "fault-replay",
		Manager:    ManagerMPHARSI,
		DurationMS: 12000,
		Placement:  placement,
		Nodes: []NodeSpec{
			{Name: "n0"},
			{Name: "n1", Platform: littleHeavyPlatform()},
			{Name: "n2"},
		},
		Apps: []AppSpec{
			{Name: "a0", Bench: "SW", Threads: 4, Node: "n1", TargetFrac: 0.4,
				InitBig: IntPtr(1), InitLittle: IntPtr(1)},
			{Name: "a1", Bench: "FE", Threads: 4, TargetFrac: 0.4,
				InitBig: IntPtr(1), InitLittle: IntPtr(1)},
			{Name: "a2", Bench: "BO", Threads: 4, StartMS: 500, TargetFrac: 0.4,
				InitBig: IntPtr(1), InitLittle: IntPtr(1)},
		},
		Faults: &fault.Spec{
			Seed:              5,
			CheckpointEveryMS: 400,
			TransferFailProb:  0.25,
			Crashes:           []fault.Crash{{Node: "n1", AtMS: 2000, DownMS: 3000}},
			Random:            &fault.RandomCrashes{RatePerMin: 10, DownMS: 2500},
		},
	}
}

// TestFaultReplayByteIdentical pins the acceptance criterion: a scenario
// exercising crashes, recovery, random faults, and transfer retries replays
// byte-identically across runs, under every placement policy.
func TestFaultReplayByteIdentical(t *testing.T) {
	for _, placement := range fleet.PolicyNames() {
		var first []byte
		for rep := 0; rep < 2; rep++ {
			var buf bytes.Buffer
			res, err := Run(faultScenario(placement), Options{
				Trace: &buf, Strict: true, CheckEveryTick: true,
			})
			if err != nil {
				t.Fatalf("%s rep %d: %v", placement, rep, err)
			}
			if res.NodeCrashes == 0 {
				t.Fatalf("%s: no crash applied", placement)
			}
			if res.Recoveries == 0 {
				t.Fatalf("%s: pinned app on the crashed node was never salvaged", placement)
			}
			if rep == 0 {
				first = buf.Bytes()
			} else if !bytes.Equal(buf.Bytes(), first) {
				t.Fatalf("%s: replay trace differs", placement)
			}
		}
	}
}

// TestFaultRecoveryWithCapacity pins graceful recovery: when surviving
// capacity can host everything, a crash (and flaky transfers) permanently
// loses nothing — every app is live again by the end of the run.
func TestFaultRecoveryWithCapacity(t *testing.T) {
	sc := faultScenario("least-loaded")
	sc.DurationMS = 14000
	sc.Faults.Crashes[0].DownMS = 4000
	sc.Faults.TransferFailProb = 0.3
	// No random crash process: a crash landing in the run's final
	// heartbeat-timeout window would legitimately strand the pinned app.
	sc.Faults.Random = nil
	res, err := Run(sc, Options{Strict: true, CheckEveryTick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCrashes == 0 || res.Recoveries == 0 {
		t.Fatalf("no fault activity: crashes=%d recoveries=%d", res.NodeCrashes, res.Recoveries)
	}
	if res.StrandedApps != 0 || res.DroppedArrivals != 0 {
		t.Fatalf("apps lost despite surviving capacity: stranded=%d dropped=%d",
			res.StrandedApps, res.DroppedArrivals)
	}
	for _, a := range res.Apps {
		if a.Skipped || a.Stranded {
			t.Fatalf("app %s lost: skipped=%v stranded=%v", a.Name, a.Skipped, a.Stranded)
		}
		if a.Beats == 0 {
			t.Fatalf("app %s never made progress", a.Name)
		}
	}
}

// TestFaultLostWorkBounded is the rollback property: work lost to a crash is
// bounded by the background snapshot interval. Each crash charges an app at
// most once, there is at most one undetected trailing crash beyond its
// counted recoveries, and passes land on tick boundaries — hence the
// (Recoveries+1) × (interval+tick) bound, swept over generated scenarios.
func TestFaultLostWorkBounded(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		sc := Generate(seed, GenConfig{
			Manager:    ManagerMPHARSI,
			DurationMS: 8000,
			Events:     4,
			Nodes:      2 + int(seed%2),
			Faults:     true,
		})
		if sc.Faults == nil {
			t.Fatalf("seed %d: generator drew no faults block", seed)
		}
		res, err := Run(sc, Options{Strict: true, CheckEveryTick: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bound := sim.Time(sc.Faults.CheckpointEveryMS)*sim.Millisecond + sim.Millisecond
		for _, a := range res.Apps {
			if max := sim.Time(a.Recoveries+1) * bound; a.LostWorkUS > max {
				t.Fatalf("seed %d app %s: lost %d µs over %d recoveries, bound %d µs",
					seed, a.Name, a.LostWorkUS, a.Recoveries, max)
			}
		}
	}
}

// TestFaultQueuedAppsSurviveCrash pins admission-queue behavior around a
// permanent node crash: apps bound to the dead node stay queued or park with
// their checkpoint — visibly counted, never silently dropped — while the
// queue keeps serving everyone else.
func TestFaultQueuedAppsSurviveCrash(t *testing.T) {
	sc := &Scenario{
		Name:       "fault-queue",
		Manager:    ManagerMPHARSI,
		DurationMS: 10000,
		Nodes: []NodeSpec{
			{Name: "n0", Platform: tinyPlatform()},
			{Name: "n1"},
		},
		Apps: []AppSpec{
			// a0 fills the tiny node, then crashes with it: salvaged, but
			// pinned to a node that never returns — parked forever.
			{Name: "a0", Bench: "SW", Threads: 4, Node: "n0", TargetFrac: 0.4,
				InitBig: IntPtr(1), InitLittle: IntPtr(1)},
			{Name: "a1", Bench: "FE", Threads: 4, TargetFrac: 0.4,
				InitBig: IntPtr(1), InitLittle: IntPtr(1)},
			// a2 arrives while its pinned node is already dead: queued,
			// never admitted, reported as dropped (not lost silently).
			{Name: "a2", Bench: "BO", Threads: 4, StartMS: 2100, Node: "n0", TargetFrac: 0.4,
				InitBig: IntPtr(1), InitLittle: IntPtr(1)},
			// a3 arrives after the crash with dead-node apps clogging the
			// queue: admission must still work — the queue must not wedge.
			{Name: "a3", Bench: "SW", Threads: 4, StartMS: 6000, TargetFrac: 0.4,
				InitBig: IntPtr(1), InitLittle: IntPtr(1)},
		},
		Faults: &fault.Spec{
			Seed:              1,
			CheckpointEveryMS: 500,
			Crashes:           []fault.Crash{{Node: "n0", AtMS: 2000}}, // never recovers
		},
	}
	res, err := Run(sc, Options{Strict: true, CheckEveryTick: true})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AppResult{}
	for _, a := range res.Apps {
		byName[a.Name] = a
	}
	a0 := byName["a0"]
	if a0.Recoveries != 1 || !a0.Stranded || a0.Beats == 0 {
		t.Fatalf("a0: recoveries=%d stranded=%v beats=%d, want salvaged once and parked",
			a0.Recoveries, a0.Stranded, a0.Beats)
	}
	a2 := byName["a2"]
	if !a2.Skipped || !a2.Queued || a2.Beats != 0 {
		t.Fatalf("a2: skipped=%v queued=%v beats=%d, want queued forever and reported dropped",
			a2.Skipped, a2.Queued, a2.Beats)
	}
	for _, name := range []string{"a1", "a3"} {
		a := byName[name]
		if a.Skipped || a.Stranded || a.Beats == 0 || a.Node != "n1" {
			t.Fatalf("%s: skipped=%v stranded=%v beats=%d node=%q, want running on n1",
				name, a.Skipped, a.Stranded, a.Beats, a.Node)
		}
	}
	if res.StrandedApps != 1 || res.DroppedArrivals != 1 {
		t.Fatalf("rollup: stranded=%d dropped=%d, want 1/1", res.StrandedApps, res.DroppedArrivals)
	}
}

// TestDecodeRejectsTrailingData pins the partial-decode fix: a scenario
// document followed by trailing content is an error, not a silent success
// over the prefix.
func TestDecodeRejectsTrailingData(t *testing.T) {
	valid := `{"manager":"none","duration_ms":100,"apps":[{"name":"a","bench":"SW"}]}`
	if _, err := Decode(strings.NewReader(valid + "\n\t ")); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	}
	for _, trailer := range []string{`{"x":1}`, `null`, `garbage`, `]`} {
		_, err := Decode(strings.NewReader(valid + trailer))
		if err == nil || !strings.Contains(err.Error(), "trailing data") {
			t.Fatalf("trailer %q: error %v, want trailing-data rejection", trailer, err)
		}
	}
}

// TestGenerateFaultsValid sweeps the fault-generating path: every scenario
// validates, generation is deterministic, and the Faults flag only appends
// draws — the base scenario is identical with the flag on or off.
func TestGenerateFaultsValid(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		cfg := GenConfig{Manager: ManagerMPHARSI, Nodes: 2 + int(seed%3), Faults: true}
		sc := Generate(seed, cfg)
		if sc.Faults == nil {
			t.Fatalf("seed %d: no faults block generated", seed)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(sc, Generate(seed, cfg)) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
		base := cfg
		base.Faults = false
		plain := Generate(seed, base)
		stripped := *sc
		stripped.Faults = nil
		if !reflect.DeepEqual(&stripped, plain) {
			t.Fatalf("seed %d: faults flag changed the base scenario", seed)
		}
	}
}
