package gts_test

import (
	"testing"

	"repro/internal/gts"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// These table-driven tests pin the GTS migration-threshold machinery —
// up/down hysteresis, UpQueueLimit gating, and the per-cluster pull
// thresholds — under core offline/online (hotplug) transitions: the
// scheduler must treat offline cores as nonexistent, re-place evicted
// threads by the same threshold rules, and converge back once cores return.

// hotplugCase drives `threads` busy threads (or `util` duty-cycled ones),
// applies the hotplug script at t = 1 s, runs to 3 s, and checks the final
// placement.
type hotplugCase struct {
	name    string
	threads int   // busy CPU-bound threads (0 = use light duty-cycle threads)
	light   int   // duty-cycled threads at 10% (load « Down)
	offline []int // cores taken offline at t = 1 s
	back    []int // cores brought back at t = 2 s
	tweak   func(g *gts.Scheduler)

	wantBig    int // threads on the big cluster at the end
	wantLittle int // threads on the little cluster at the end
}

func runHotplugCase(t *testing.T, tc hotplugCase) (*sim.Machine, *sim.Process, *gts.Scheduler) {
	t.Helper()
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	g := gts.New(plat)
	if tc.tweak != nil {
		tc.tweak(g)
	}
	m.SetPlacer(g)
	var p *sim.Process
	if tc.light > 0 {
		p = m.Spawn("light", &power.Microbench{
			Threads: tc.light, Util: 0.1, Period: 20 * sim.Millisecond, Speed: 1,
		}, 4)
	} else {
		p = m.Spawn("busy", &busy{n: tc.threads}, 4)
	}
	m.Run(1 * sim.Second)
	for _, cpu := range tc.offline {
		m.SetCoreOnline(cpu, false)
	}
	m.Run(1 * sim.Second)
	for _, cpu := range tc.back {
		m.SetCoreOnline(cpu, true)
	}
	m.Run(1 * sim.Second)

	for _, th := range p.Threads {
		if c := th.Core(); c >= 0 && !m.CoreOnline(c) {
			t.Fatalf("thread %d placed on offline core %d", th.Local, c)
		}
	}
	if got := countOnCluster(p, plat, hmp.Big); got != tc.wantBig {
		t.Fatalf("threads on big = %d, want %d", got, tc.wantBig)
	}
	if got := countOnCluster(p, plat, hmp.Little); got != tc.wantLittle {
		t.Fatalf("threads on little = %d, want %d", got, tc.wantLittle)
	}
	return m, p, g
}

func TestGTSHotplugTable(t *testing.T) {
	cases := []hotplugCase{
		{
			// Up-migration with half the big cluster gone: 8 hot threads fit
			// only 2×UpQueueLimit big slots; the rest spill onto the little
			// cores through the reluctant pull threshold.
			name:    "up-migration respects UpQueueLimit on shrunken big cluster",
			threads: 8, offline: []int{6, 7},
			wantBig: 4, wantLittle: 4,
		},
		{
			// The whole big cluster offline: the up-threshold has nowhere to
			// send hot threads; everything must run little.
			name:    "big cluster fully offline strands nothing",
			threads: 8, offline: []int{4, 5, 6, 7},
			wantBig: 0, wantLittle: 8,
		},
		{
			// Big cluster returns: hot threads migrate back up (load ≈ 1024 >
			// Up) until UpQueueLimit gates the queues at two-deep.
			name:    "big cluster returning pulls hot threads back up",
			threads: 8, offline: []int{4, 5, 6, 7}, back: []int{4, 5, 6, 7},
			wantBig: 8, wantLittle: 0,
		},
		{
			// Light threads (load ≈ 102 « Down = 256) stay on the little
			// cluster even when half of it is offline — down-migration
			// hysteresis, not capacity, decides.
			name:  "down-migration hysteresis survives little shrink",
			light: 2, offline: []int{0, 1},
			wantBig: 0, wantLittle: 2,
		},
		{
			// The whole little cluster offline: light threads are forced up
			// despite loads below the Up threshold (repair, not migration).
			name:  "little cluster fully offline forces light threads up",
			light: 2, offline: []int{0, 1, 2, 3},
			wantBig: 2, wantLittle: 0,
		},
		{
			// Raising UpQueueLimit to 8 lets every hot thread pile onto one
			// surviving big core pair even at four-deep queues.
			name:    "UpQueueLimit raised keeps hot threads big",
			threads: 8, offline: []int{6, 7},
			tweak:   func(g *gts.Scheduler) { g.UpQueueLimit = 8; g.PullThresholdLittle = 16 },
			wantBig: 8, wantLittle: 0,
		},
		{
			// An eager little-ward pull threshold drains big-queue overcommit
			// the moment a little core idles, hotplug or not.
			name:    "eager pull threshold spills immediately",
			threads: 12, offline: []int{5, 6, 7},
			tweak:   func(g *gts.Scheduler) { g.PullThresholdLittle = 2 },
			wantBig: 2, wantLittle: 10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runHotplugCase(t, tc) })
	}
}

// TestGTSHotplugConvergesBack checks a full offline/online round trip ends
// in the same steady state as an undisturbed run: 8 hot threads two-deep on
// the big cores, little idle.
func TestGTSHotplugConvergesBack(t *testing.T) {
	m, _, _ := runHotplugCase(t, hotplugCase{
		threads: 8,
		offline: []int{4, 5, 6, 7},
		back:    []int{4, 5, 6, 7},
		wantBig: 8, wantLittle: 0,
	})
	for cpu := 4; cpu < 8; cpu++ {
		if n := m.RunQueueLen(cpu); n != 2 {
			t.Errorf("big core %d run queue = %d, want 2", cpu, n)
		}
	}
	for cpu := 0; cpu < 4; cpu++ {
		if n := m.RunQueueLen(cpu); n != 0 {
			t.Errorf("little core %d run queue = %d, want 0", cpu, n)
		}
	}
}

// TestGTSOfflineCoreNeverPulls pins idle balancing: an offline core is not
// an idle core, so it must never pull work even while its run-queue count
// reads zero.
func TestGTSOfflineCoreNeverPulls(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	m.SetPlacer(gts.New(plat))
	m.Spawn("busy", &busy{n: 16}, 4)
	m.SetCoreOnline(2, false)
	m.SetCoreOnline(5, false)
	busyBefore2, busyBefore5 := m.BusyTime(2), m.BusyTime(5)
	m.Run(2 * sim.Second)
	if m.BusyTime(2) != busyBefore2 || m.BusyTime(5) != busyBefore5 {
		t.Fatal("offline cores accumulated busy time")
	}
	if m.RunQueueLen(2) != 0 || m.RunQueueLen(5) != 0 {
		t.Fatal("offline cores hold runnable threads")
	}
}
