package hmp

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlatformJSONRoundTrip(t *testing.T) {
	p := Default()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlatform(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCores() != p.TotalCores() || got.BaseKHz != p.BaseKHz {
		t.Fatalf("round trip changed platform: %+v", got)
	}
	if got.Clusters[Big].Levels() != p.Clusters[Big].Levels() {
		t.Fatal("round trip lost OPPs")
	}
	if got.R0() != p.R0() {
		t.Fatal("round trip changed R0")
	}
}

func TestReadPlatformRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{nope",
		"unknown field": `{"Clusters":[{},{}],"BaseKHz":1,"Bogus":2}`,
		"no cores": `{"BaseKHz":800000,"Clusters":[
			{"Name":"A7","Cores":0,"IPC":1,"OPPs":[{"KHz":800000,"MilliVolt":900}]},
			{"Name":"A15","Cores":4,"IPC":1.5,"OPPs":[{"KHz":800000,"MilliVolt":900}]}]}`,
		"descending OPPs": `{"BaseKHz":800000,"Clusters":[
			{"Name":"A7","Cores":4,"IPC":1,"OPPs":[{"KHz":900000,"MilliVolt":900},{"KHz":800000,"MilliVolt":900}]},
			{"Name":"A15","Cores":4,"IPC":1.5,"OPPs":[{"KHz":800000,"MilliVolt":900}]}]}`,
	}
	for name, in := range cases {
		if _, err := ReadPlatform(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadPlatformFixesKinds(t *testing.T) {
	// A hand-written file omitting Kind fields still works.
	in := `{"BaseKHz":800000,"Clusters":[
		{"Name":"A7","Cores":2,"IPC":1,"OPPs":[{"KHz":800000,"MilliVolt":900}]},
		{"Name":"A15","Cores":2,"IPC":1.5,"OPPs":[{"KHz":800000,"MilliVolt":900},{"KHz":1600000,"MilliVolt":1200}]}]}`
	p, err := ReadPlatform(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Clusters[Big].Kind != Big || p.Clusters[Little].Kind != Little {
		t.Fatal("kinds not fixed up")
	}
	if p.TotalCores() != 4 {
		t.Fatalf("TotalCores = %d", p.TotalCores())
	}
}
