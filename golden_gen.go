//go:build ignore

// golden_gen prints exact-state digests of reference simulation runs; the
// values are embedded in equivalence_test.go to pin the incremental
// run-queue refactor to the seed full-scan behaviour.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

func digest(name string, m *sim.Machine) {
	fmt.Printf("%s:\n", name)
	fmt.Printf("  energy: %x\n", m.EnergyJ())
	for _, p := range m.Procs() {
		mig := 0
		for _, t := range p.Threads {
			mig += t.Migrations()
		}
		fmt.Printf("  proc %s: beats=%d work=%x mig=%d\n", p.Name, p.HB.Count(), p.WorkDone(), mig)
	}
	busy := sim.Time(0)
	for cpu := 0; cpu < m.Platform().TotalCores(); cpu++ {
		busy += m.BusyTime(cpu)
	}
	fmt.Printf("  busy: %d overhead: %d\n", busy, m.Overhead())
	rq := 0
	for cpu := 0; cpu < m.Platform().TotalCores(); cpu++ {
		rq += m.RunQueueLen(cpu) * (cpu + 1)
	}
	fmt.Printf("  rq: %d\n", rq)
}

func main() {
	plat := hmp.Default()

	// 1. SW (data-parallel, cache-sensitive) under the mask balancer.
	{
		m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		b, _ := workload.ByShort("SW")
		m.Spawn("sw", b.New(8), 10)
		m.Run(5 * sim.Second)
		digest("sw-maskbalancer", m)
	}
	// 2. FE (pipeline) under the mask balancer.
	{
		m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		b, _ := workload.ByShort("FE")
		m.Spawn("fe", b.New(8), 10)
		m.Run(5 * sim.Second)
		digest("fe-maskbalancer", m)
	}
	// 3. SW under a HARS-E manager (exercises affinity masks, DVFS, overhead).
	{
		m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		b, _ := workload.ByShort("SW")
		p := m.Spawn("sw", b.New(8), 10)
		lm := power.SyntheticLinearModel(plat)
		tgt := heartbeat.Target{Min: 5.0, Avg: 6.0, Max: 7.0}
		mgr := core.NewManager(m, p, lm, tgt, core.Config{Version: core.HARSE, OverheadCPU: 4, AdaptEvery: 2})
		m.AddDaemon(mgr)
		m.Run(12 * sim.Second)
		fmt.Printf("hars state: %v searches=%d explored=%d decisions=%d\n",
			mgr.State(), mgr.Searches(), mgr.ExploredTotal(), len(mgr.Decisions()))
		digest("sw-hars-e", m)
	}
	// 4. BO + FE under the GTS placer (exercises RanLastTick load tracking).
	{
		m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		m.SetPlacer(gts.New(plat))
		bo, _ := workload.ByShort("BO")
		fe, _ := workload.ByShort("FE")
		m.Spawn("bo", bo.New(4), 10)
		m.Spawn("fe", fe.New(4), 10)
		m.Run(5 * sim.Second)
		digest("bofe-gts", m)
	}
}
