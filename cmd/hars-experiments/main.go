// Command hars-experiments regenerates the tables and figures of the
// paper's evaluation chapter on the simulated platform.
//
// Usage:
//
//	hars-experiments [-exp all|fig5.1|fig5.2|fig5.3|fig5.4|fig5.5|fig5.6|fig5.7|table3.1|table4.3|power] [-scale quick|full]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (all, fig5.1, fig5.2, fig5.3, fig5.4, fig5.5, fig5.6, fig5.7, table3.1, table4.3, power, ablation, extended)")
	scale := flag.String("scale", "full", "experiment scale: quick or full")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick()
	case "full":
		sc = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	start := time.Now()
	fmt.Printf("building environment (power profiling & model fit, scale=%s)...\n", *scale)
	env, err := experiments.NewEnv(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	drivers := []struct {
		name string
		run  func(*experiments.Env) *experiments.Report
	}{
		{"table3.1", experiments.Table31},
		{"table4.3", experiments.Table43},
		{"power", experiments.PowerProfile},
		{"fig5.1", experiments.Fig51},
		{"fig5.2", experiments.Fig52},
		{"fig5.3", experiments.Fig53},
		{"fig5.4", experiments.Fig54},
		{"fig5.5", experiments.Fig55},
		{"fig5.6", experiments.Fig56},
		{"fig5.7", experiments.Fig57},
		{"ablation", experiments.Ablations},
		{"extended", experiments.ExtendedSuite},
	}
	ran := 0
	for _, d := range drivers {
		if *exp != "all" && *exp != d.name {
			continue
		}
		t0 := time.Now()
		rep := d.run(env)
		fmt.Println()
		fmt.Print(rep.String())
		fmt.Printf("(%s regenerated in %.1fs)\n", d.name, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("\ntotal wall time: %.1fs\n", time.Since(start).Seconds())
}
