package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig51Versions are the five versions of Figures 5.1 and 5.2 in plot order.
var Fig51Versions = []string{"Baseline", "SO", "HARS-I", "HARS-E", "HARS-EI"}

// SingleAppOptions parameterize the single-application comparison.
type SingleAppOptions struct {
	// TargetFrac is the fraction of the maximum achievable performance the
	// target is set to: 0.50 for Figure 5.1, 0.75 for Figure 5.2.
	TargetFrac float64
	// Benchmarks filters by short tag; empty means all six.
	Benchmarks []string
}

func (o SingleAppOptions) benches() []workload.Benchmark {
	if len(o.Benchmarks) == 0 {
		return workload.All()
	}
	var out []workload.Benchmark
	for _, s := range o.Benchmarks {
		if b, ok := workload.ByShort(s); ok {
			out = append(out, b)
		}
	}
	return out
}

// SingleAppResult holds one benchmark's five-version measurements.
type SingleAppResult struct {
	Bench   workload.Benchmark
	Results map[string]RunResult // keyed by version name
}

// RunSingleApp measures all five versions for the selected benchmarks at
// the given target fraction: the engine behind Figures 5.1 and 5.2.
func RunSingleApp(e *Env, o SingleAppOptions) []SingleAppResult {
	benches := o.benches()
	out := make([]SingleAppResult, len(benches))
	// Calibrate serially first (cached) so parallel runs share targets.
	for _, b := range benches {
		e.MaxRate(b)
	}
	type job struct {
		bench   int
		version string
	}
	var jobs []job
	for i := range benches {
		for _, v := range Fig51Versions {
			jobs = append(jobs, job{bench: i, version: v})
		}
	}
	results := make([]RunResult, len(jobs))
	parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		b := benches[j.bench]
		tgt := e.Target(b, o.TargetFrac)
		switch j.version {
		case "Baseline":
			results[i] = e.RunBaseline(b, tgt)
		case "SO":
			results[i] = e.RunStaticOptimal(b, tgt)
		case "HARS-I":
			results[i] = e.RunHARS(b, tgt, core.Config{Version: core.HARSI})
		case "HARS-E":
			results[i] = e.RunHARS(b, tgt, core.Config{Version: core.HARSE})
		case "HARS-EI":
			results[i] = e.RunHARS(b, tgt, core.Config{Version: core.HARSEI})
		}
	})
	for i := range benches {
		out[i] = SingleAppResult{Bench: benches[i], Results: map[string]RunResult{}}
	}
	for i, j := range jobs {
		out[j.bench].Results[j.version] = results[i]
	}
	return out
}

// Fig51 regenerates Figure 5.1 (performance/watt, default 50% target): per
// benchmark, each version's normalized performance per watt relative to the
// baseline version, plus the geometric mean.
func Fig51(e *Env) *Report {
	return singleAppReport(e, SingleAppOptions{TargetFrac: 0.50},
		"Figure 5.1: performance/watt, default performance target (50%±5%)")
}

// Fig52 regenerates Figure 5.2 (performance/watt, high 75% target).
func Fig52(e *Env) *Report {
	return singleAppReport(e, SingleAppOptions{TargetFrac: 0.75},
		"Figure 5.2: performance/watt, high performance target (75%±5%)")
}

func singleAppReport(e *Env, o SingleAppOptions, title string) *Report {
	rows := RunSingleApp(e, o)
	rep := &Report{Title: title}
	rep.Table.Header = append([]string{"bench"}, Fig51Versions...)
	perVersion := map[string][]float64{}
	for _, row := range rows {
		base := row.Results["Baseline"].PP
		cells := []string{row.Bench.Short}
		for _, v := range Fig51Versions {
			rel := 0.0
			if base > 0 {
				rel = row.Results[v].PP / base
			}
			perVersion[v] = append(perVersion[v], rel)
			cells = append(cells, stats.F(rel, 2))
		}
		rep.Table.AddRow(cells...)
	}
	gm := []string{"GM"}
	for _, v := range Fig51Versions {
		gm = append(gm, stats.F(stats.GeoMean(perVersion[v]), 2))
	}
	rep.Table.AddRow(gm...)
	rep.Notes = append(rep.Notes,
		"values are normalized performance/watt relative to the Baseline version (Baseline = 1.00)")
	for _, row := range rows {
		rep.Notes = append(rep.Notes, fmt.Sprintf("%s: target %.2f hb/s, SO state %s, HARS-EI settled %s",
			row.Bench.Short, e.Target(row.Bench, o.TargetFrac).Avg,
			row.Results["SO"].State.Pretty(e.Plat),
			row.Results["HARS-EI"].State.Pretty(e.Plat)))
	}
	return rep
}
