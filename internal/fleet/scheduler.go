package fleet

import (
	"fmt"
	"math"

	"repro/internal/decision"
	"repro/internal/fault"
	"repro/internal/hmp"
	"repro/internal/sim"
)

// AdmitResult is Host.Admit's outcome, telling the scheduler how to retry.
type AdmitResult uint8

const (
	// AdmitOK: the application is running on the node.
	AdmitOK AdmitResult = iota
	// AdmitNoCapacity: the node could not take the application right now —
	// capacity vanished between the check and the registration, or the
	// machine is dead. The app re-queues and is retried on the next drain.
	AdmitNoCapacity
	// AdmitTransferFailed: the node had capacity but the checkpoint
	// transfer failed transiently. The app re-queues and waits out a
	// capped exponential backoff before its next attempt.
	AdmitTransferFailed
)

// Host is the callback surface through which the scheduler manipulates
// applications: the embedding layer (the scenario engine, or a test
// harness) owns the programs, targets, and managers, while the scheduler
// owns the decisions — which node, when to queue, when to move.
type Host interface {
	// Admit places the application on node n, setting app.Proc on
	// AdmitOK. A first admission spawns the application; an admission
	// following Checkpoint (or a crash Salvage) restores the held run
	// state, charging the host's checkpoint-cost model. Non-OK results
	// re-queue the app (see AdmitResult).
	Admit(n *Node, app *App) AdmitResult
	// Checkpoint freezes the application's run state on node n and tears
	// the local incarnation down: unregister from the node's manager,
	// capture progress/heartbeat/wakeup state, and clear app.Proc. The
	// next Admit — usually on the migration destination in the same pass,
	// or from the queue if capacity vanished mid-move — resumes that
	// state instead of respawning.
	Checkpoint(n *Node, app *App)
}

// FaultHost extends Host with the crash-recovery surface the fault-aware
// scheduler needs. Config.Fault requires the host to implement it.
type FaultHost interface {
	Host
	// Snapshot takes a periodic background checkpoint of the application
	// running on node n, WITHOUT disturbing it: the host retains the
	// snapshot as the app's crash-recovery restore point. Work lost on a
	// crash is bounded by the snapshot cadence.
	Snapshot(n *Node, app *App)
	// Salvage reacts to node n being declared failed while the application
	// was placed on it: the host promotes the app's last background
	// snapshot (if any) to its pending restore state — exactly the state a
	// post-Checkpoint Admit consumes — and clears app.Proc. The scheduler
	// re-queues the app immediately after.
	Salvage(n *Node, app *App)
}

// appState tracks where an application is in the admission lifecycle.
type appState uint8

const (
	appQueued appState = iota
	appPlaced
	appDeparted
)

// SLO is an application's service-level objective: the heartbeat rate it
// must sustain and how much extra placement latency (queueing plus
// migration freeze) its owner tolerates. The SLO-aware placement policy
// scores candidate nodes against it; the scenario layer reports per-sample
// misses against TargetHPS.
type SLO struct {
	// TargetHPS is the heartbeat rate the application must sustain.
	TargetHPS float64
	// SlackMS is the tolerated extra delay budget in milliseconds;
	// migration freeze time is scored against it (0 = a default budget).
	SlackMS int64
}

// App is the fleet scheduler's per-application record. The Host keeps its
// own payload alongside (Payload) and maintains Proc; the scheduler
// maintains everything else.
type App struct {
	// Name identifies the application fleet-wide (unique).
	Name string
	// Pinned, when non-nil, restricts placement to one node: the app
	// queues rather than land anywhere else, and it never migrates.
	Pinned *Node
	// SLO, when non-nil, is the application's service-level objective,
	// consulted by SLO-aware placement.
	SLO *SLO
	// Proc is the application's current incarnation, set by Host.Admit and
	// cleared by Host.Checkpoint. The scheduler reads it only to size
	// migrations (partition allocation lookup).
	Proc *sim.Process
	// Payload is the host's per-application state, opaque to the scheduler.
	Payload any

	seq        int // arrival order, for deterministic tie-breaking
	state      appState
	node       *Node
	placedAt   sim.Time
	everQueued bool
	migrations int

	// Transfer-retry state (fault-aware scheduling only): after a failed
	// transfer the app stays queued until nextTryAt, with retries counting
	// consecutive failures for the exponential backoff. recovering marks an
	// app salvaged off a dead node and not yet re-placed.
	retries    int
	nextTryAt  sim.Time
	recovering bool

	// queuedAt is when the app last joined the admission path (arrival,
	// requeue after a bounced move, or crash salvage); the queue-wait
	// histogram measures successful admissions against it.
	queuedAt sim.Time
}

// Node returns the node the application currently runs on (nil while
// queued or after departure).
func (a *App) Node() *Node { return a.node }

// Queued reports whether the application is waiting for capacity.
func (a *App) Queued() bool { return a.state == appQueued }

// Placed reports whether the application is currently running on a node.
func (a *App) Placed() bool { return a.state == appPlaced }

// EverQueued reports whether the application ever had to wait for a free
// core partition before admission.
func (a *App) EverQueued() bool { return a.everQueued }

// Migrations returns how many times the scheduler moved the application
// between nodes.
func (a *App) Migrations() int { return a.migrations }

// Recovering reports whether the application was salvaged off a failed
// node and awaits re-placement: its next admission restores the last
// background snapshot, so placement policies should charge the restore
// delay (the SLO-aware policy does).
func (a *App) Recovering() bool { return a.recovering }

// Retries returns the app's consecutive failed-transfer count since its
// last successful admission.
func (a *App) Retries() int { return a.retries }

// Config tunes the scheduler. The zero value selects the least-loaded
// policy, a 250 ms saturation check, and a two-core migration destination
// floor.
type Config struct {
	// Policy places arrivals and picks migration destinations. Nil selects
	// least-loaded.
	Policy Policy

	// MigrateEvery is the period of the saturation check that may migrate
	// one application per saturated node. Zero selects 250 ms; negative
	// disables migration entirely. With a single node migration never
	// fires (there is nowhere to go).
	MigrateEvery sim.Time

	// MigrateMinFree is the free-core floor a destination must offer
	// before an application is moved to it (default 2): migrating onto a
	// nearly-full node would just spread the saturation.
	MigrateMinFree int

	// Fault, when non-nil, arms fault-aware scheduling: a heartbeat-timeout
	// failure detector over the fleet's nodes, periodic background
	// checkpoints at the configured cadence, crash recovery (apps salvaged
	// off detected-dead nodes and re-placed from their last snapshot), and
	// capped exponential backoff with seeded jitter for failed transfers.
	// Requires the Host to implement FaultHost.
	Fault *fault.Config

	// Observer, when non-nil, receives a decision.Record for every
	// scheduler decision point — admission picks, migrate-pass picks
	// (including moves the score gate declined), and crash re-placements —
	// with the full scored candidate set. Pure observation: attaching one
	// never changes a decision, and with none attached the candidate
	// bookkeeping is skipped entirely (the always-on Stats.Decisions
	// rollup is maintained either way).
	Observer decision.Sink

	// Force maps decision ID → fleet node index, overriding the policy's
	// choice at exactly those decision points (the counterfactual replay
	// seam). The forced node is chosen even when the policy preferred
	// another or found none, and a forced migrate-pass move skips the
	// destination-score gate; the admission itself still goes through the
	// Host and may bounce like any other. Decision IDs are assigned
	// deterministically whether or not an Observer is attached, so the
	// same ID addresses the same decision in every replay. Out-of-range
	// indices are ignored.
	Force map[uint64]int
}

func (c Config) withDefaults() Config {
	if c.Policy == nil {
		c.Policy = leastLoaded{}
	}
	if c.MigrateEvery == 0 {
		c.MigrateEvery = 250 * sim.Millisecond
	}
	if c.MigrateMinFree <= 0 {
		c.MigrateMinFree = 2
	}
	return c
}

// Stats is the scheduler's decision rollup.
type Stats struct {
	Admitted   int // successful admissions (arrivals + re-admissions after migration)
	Queued     int // arrivals that had to wait for capacity at least once
	QueueLen   int // applications still waiting right now
	Migrations int // node-to-node application moves

	// Recovered counts crash salvages: apps pulled off a node declared
	// failed. TransferFails counts transient transfer failures that put an
	// app into backoff. Both stay zero without fault-aware scheduling.
	Recovered     int
	TransferFails int

	// Decisions is the always-on decision-observability rollup: decision
	// counts by kind (admissions, gated migrations, fault re-placements),
	// score margins, and the admission queue-wait histogram. Maintained
	// whether or not decision tracing (Config.Observer) is on.
	Decisions decision.Rollup
}

// Scheduler is the fleet's admission and migration brain: a per-tick fleet
// hook that places arrivals by policy, queues them FIFO when no admissible
// node exists, admits them as capacity frees up, and moves applications
// off saturated nodes.
type Scheduler struct {
	f    *Fleet
	host Host
	cfg  Config

	apps  []*App
	queue []*App // FIFO, arrival order

	admitted    int
	queuedTotal int
	migrations  int
	nextMigrate sim.Time

	// Fault-aware scheduling state (nil/zero when Config.Fault is nil).
	fhost         FaultHost
	detector      *fault.Detector
	backoff       *fault.Backoff
	nextCkpt      sim.Time
	recovered     int
	transferFails int

	// Wake-index state: idx is the incremental NextWake source (nil when
	// Config.Fault is nil — without a detector there is nothing per-node
	// to index), wakeScan selects the full-scan reference instead, and
	// wakeVerify runs both and records the first divergence in wakeErr.
	idx        *wakeIndex
	wakeScan   bool
	wakeVerify bool
	wakeErr    error

	// rollup is the always-on decision-observability aggregate; its
	// Decisions counter doubles as the next decision ID, assigned whether
	// or not an Observer records the streams.
	rollup decision.Rollup
}

// NewScheduler builds a scheduler over the fleet and registers it as a
// per-tick hook. A Config with Fault set requires host to implement
// FaultHost and panics otherwise (a wiring bug, not a runtime condition).
func NewScheduler(f *Fleet, host Host, cfg Config) *Scheduler {
	s := &Scheduler{f: f, host: host, cfg: cfg.withDefaults()}
	s.nextMigrate = f.Now() + s.cfg.MigrateEvery
	if fc := s.cfg.Fault; fc != nil {
		fh, ok := host.(FaultHost)
		if !ok {
			panic("fleet: Config.Fault requires the host to implement FaultHost")
		}
		s.fhost = fh
		s.detector = fault.NewDetector(len(f.Nodes()), fc.HeartbeatTimeout, f.Now())
		s.backoff = fault.NewBackoff(*fc)
		s.nextCkpt = f.Now() + fc.CheckpointEvery
		s.idx = newWakeIndex(len(f.Nodes()))
		for i, n := range f.Nodes() {
			i := i
			n.Machine.OnFailureChange(func(bool) { s.idx.noteDirty(i) })
		}
	}
	f.AddHook(s)
	return s
}

// Policy returns the scheduler's placement policy.
func (s *Scheduler) Policy() Policy { return s.cfg.Policy }

// Apps returns every application the scheduler has seen, in arrival order.
func (s *Scheduler) Apps() []*App { return s.apps }

// Stats returns the decision rollup so far.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Admitted:      s.admitted,
		Queued:        s.queuedTotal,
		QueueLen:      len(s.queue),
		Migrations:    s.migrations,
		Recovered:     s.recovered,
		TransferFails: s.transferFails,
		Decisions:     s.rollup,
	}
}

// Arrive hands a new application to the scheduler: it is admitted to the
// policy's pick right away when possible, and queued FIFO otherwise. Apps
// already waiting get first claim on any capacity — the queue drains
// before the newcomer is considered, so an arrival coinciding with a
// departure cannot jump the line.
func (s *Scheduler) Arrive(app *App) {
	app.seq = len(s.apps)
	app.queuedAt = s.f.Now()
	s.apps = append(s.apps, app)
	s.reconcileAll()
	s.drain()
	if s.tryAdmit(app) {
		return
	}
	app.state = appQueued
	app.everQueued = true
	s.queuedTotal++
	s.queue = append(s.queue, app)
}

// reconcileAll syncs every partitioned node's tables with its machine once
// per decision point, so the capacity checks below are pure reads.
func (s *Scheduler) reconcileAll() {
	for _, n := range s.f.Nodes() {
		n.Reconcile()
	}
}

// anyAdmittable reports whether any node has admission capacity right now
// (tables already reconciled).
func (s *Scheduler) anyAdmittable() bool {
	for _, n := range s.f.Nodes() {
		if n.CanAdmit() {
			return true
		}
	}
	return false
}

// Depart removes an application from scheduling: a queued app is cancelled
// (it never ran), a placed app is released. Machine-level teardown of a
// placed app is the caller's business — the scheduler only forgets it.
func (s *Scheduler) Depart(app *App) {
	if app.state == appQueued {
		for i, q := range s.queue {
			if q == app {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
	}
	app.state = appDeparted
	app.node = nil
}

// Tick implements Hook: drain the admission queue against freshly freed
// capacity, then run the periodic saturation/migration pass. Partition
// tables are reconciled once up front; the per-node checks are pure reads
// (Register/Unregister keep the tables current within the pass). With
// fault-aware scheduling the detector, recovery, and background-checkpoint
// passes run every tick before the drain.
// NextWake implements Sleeper: the earliest future clock time at which Tick
// is anything but a no-op. A non-empty admission queue wakes the scheduler
// every tick — node-local adaptation can free partition capacity at any
// tick, and transfer-retry coin draws must land on exactly the ticks the
// lockstep walk would use. Otherwise the wake time is the earliest of the
// migration cadence, the snapshot cadence, and — per silent node — the tick
// the heartbeat detector will declare it down (fault.Detector.Deadline + 1,
// exactly the first tick a lockstep Observe sequence transitions, because
// alive observations are last-write-wins and silence keeps the deadline
// fixed). A node that proved alive while still declared down wakes the
// scheduler immediately so the recovery transition lands on the next tick,
// as it would in lockstep.
func (s *Scheduler) NextWake(f *Fleet) sim.Time {
	if s.wakeVerify {
		scan, indexed := s.nextWakeScan(f), s.nextWakeIndexed(f)
		if scan != indexed && s.wakeErr == nil {
			s.wakeErr = fmt.Errorf("fleet: wake index diverged at t=%d: scan=%d indexed=%d", f.Now(), scan, indexed)
		}
		if s.wakeScan {
			return scan
		}
		return indexed
	}
	if s.wakeScan || s.idx == nil {
		return s.nextWakeScan(f)
	}
	return s.nextWakeIndexed(f)
}

// nextWakeScan is the O(nodes) full-scan reference implementation of
// NextWake, kept verbatim as the bit-exactness oracle for the wake index
// (SetWakeScan selects it, SetWakeVerify checks the index against it).
func (s *Scheduler) nextWakeScan(f *Fleet) sim.Time {
	now := f.Now()
	if len(s.queue) > 0 {
		return now
	}
	wake := sim.Time(math.MaxInt64)
	if s.cfg.MigrateEvery > 0 && len(f.Nodes()) > 1 {
		wake = s.nextMigrate
	}
	if s.detector != nil {
		if s.cfg.Fault.CheckpointEvery > 0 && s.nextCkpt < wake {
			wake = s.nextCkpt
		}
		for i, n := range f.Nodes() {
			failed, down := n.Failed(), s.detector.Down(i)
			switch {
			case failed && !down:
				if d := s.detector.Deadline(i) + 1; d < wake {
					wake = d
				}
			case !failed && down:
				return now
			}
		}
	}
	if wake < now {
		return now
	}
	return wake
}

// nextWakeIndexed computes the same wake time from the incremental index:
// the silent heap replaces the per-node deadline scan, and the pending-heal
// probe touches only declared-down nodes. O(dirty + down + 1) per call.
func (s *Scheduler) nextWakeIndexed(f *Fleet) sim.Time {
	now := f.Now()
	if len(s.queue) > 0 {
		return now
	}
	wake := sim.Time(math.MaxInt64)
	if s.cfg.MigrateEvery > 0 && len(f.Nodes()) > 1 {
		wake = s.nextMigrate
	}
	if s.detector != nil {
		if s.cfg.Fault.CheckpointEvery > 0 && s.nextCkpt < wake {
			wake = s.nextCkpt
		}
		s.idx.sync(s)
		for _, i := range s.idx.down {
			if !f.Node(i).Failed() {
				return now
			}
		}
		if d, ok := s.idx.minSilent(); ok && d < wake {
			wake = d
		}
	}
	if wake < now {
		return now
	}
	return wake
}

// SetWakeScan switches NextWake to the full-scan reference implementation
// instead of the incremental wake index. Both produce identical wake times
// (the equivalence suite proves it); the switch exists for benchmarking
// and verification.
func (s *Scheduler) SetWakeScan(on bool) { s.wakeScan = on }

// SetWakeVerify makes every NextWake compute both the scan and the index
// answer and record the first divergence, retrievable via WakeVerifyErr.
// For tests; doubles the wake cost.
func (s *Scheduler) SetWakeVerify(on bool) { s.wakeVerify = on }

// WakeVerifyErr returns the first scan/index divergence observed under
// SetWakeVerify, or nil.
func (s *Scheduler) WakeVerifyErr() error { return s.wakeErr }

func (s *Scheduler) Tick(f *Fleet) {
	if s.detector != nil {
		s.faultTick(f)
		return
	}
	due := s.cfg.MigrateEvery > 0 && len(f.Nodes()) > 1 && f.Now() >= s.nextMigrate
	if len(s.queue) == 0 && !due {
		return
	}
	s.reconcileAll()
	s.drain()
	if due {
		s.migratePass()
		s.nextMigrate = f.Now() + s.cfg.MigrateEvery
	}
}

// faultTick is the fault-aware per-tick pass: observe node liveness (marking
// nodes down after the heartbeat timeout and salvaging their apps into the
// queue), take the periodic background checkpoints, then drain — so an app
// recovered this tick re-places on a surviving node in the same tick when
// capacity exists, and simply stays queued when none does.
func (s *Scheduler) faultTick(f *Fleet) {
	now := f.Now()
	s.reconcileAll()
	s.detectPass(now)
	if s.cfg.Fault.CheckpointEvery > 0 && now >= s.nextCkpt {
		s.snapshotPass()
		s.nextCkpt = now + s.cfg.Fault.CheckpointEvery
	}
	s.drain()
	if s.cfg.MigrateEvery > 0 && len(f.Nodes()) > 1 && now >= s.nextMigrate {
		s.migratePass()
		s.nextMigrate = now + s.cfg.MigrateEvery
	}
}

// detectPass feeds each node's liveness into the failure detector and acts
// on transitions: a node silent past the heartbeat timeout is declared down
// and its applications are salvaged; a down node stepping again is marked
// back up and becomes placeable.
func (s *Scheduler) detectPass(now sim.Time) {
	for i, n := range s.f.Nodes() {
		failed, recovered := s.detector.Observe(i, !n.Failed(), now)
		if failed {
			n.SetDown(true)
			s.idx.setDown(i, true)
			s.recoverNode(n)
		}
		if recovered {
			n.SetDown(false)
			s.idx.setDown(i, false)
		}
	}
}

// recoverNode salvages every application placed on a node just declared
// failed: the host promotes each app's last background snapshot to its
// pending restore state, and the app rejoins the queue — this tick's drain
// re-places it onto a surviving node, or it degrades gracefully to waiting
// in the admission queue when no capacity survives.
func (s *Scheduler) recoverNode(n *Node) {
	for _, app := range s.apps {
		if app.state != appPlaced || app.node != n {
			continue
		}
		s.fhost.Salvage(n, app)
		app.state = appQueued
		app.node = nil
		app.recovering = true
		app.retries = 0
		app.nextTryAt = 0
		app.queuedAt = s.f.Now()
		s.recovered++
		if !app.everQueued {
			app.everQueued = true
			s.queuedTotal++
		}
		s.queue = append(s.queue, app)
	}
}

// snapshotPass takes the periodic background checkpoint of every placed
// application on a live machine. Apps on crashed-but-undetected nodes are
// skipped — there is nothing left to snapshot there.
func (s *Scheduler) snapshotPass() {
	for _, app := range s.apps {
		if app.state != appPlaced || app.node.Failed() {
			continue
		}
		s.fhost.Snapshot(app.node, app)
	}
}

// transferFault records a transient transfer failure: the app backs off
// exponentially (seeded jitter) before its next admission attempt.
func (s *Scheduler) transferFault(app *App) {
	s.transferFails++
	app.retries++
	app.nextTryAt = s.f.Now() + s.backoff.Delay(app.retries)
}

// drain admits queued applications FIFO against current capacity (tables
// already reconciled). While everything is saturated — the common state of
// a backed-up queue — the O(nodes) admittability check is the whole cost:
// no per-app placement scoring.
func (s *Scheduler) drain() {
	if len(s.queue) == 0 || !s.anyAdmittable() {
		return
	}
	now := s.f.Now()
	kept := s.queue[:0]
	for _, app := range s.queue {
		// An app backing off after a failed transfer waits out its delay.
		if app.nextTryAt > now || !s.tryAdmit(app) {
			kept = append(kept, app)
		}
	}
	s.queue = kept
}

// tryAdmit places the app on the best admissible node right now, returning
// false when none exists or the admission failed. The caller has reconciled
// the partition tables. Every call is one decision point: it consumes one
// decision ID, honours a forced override at that ID, updates the always-on
// rollup, and reports the full candidate set to the observer when one is
// attached.
func (s *Scheduler) tryAdmit(app *App) bool {
	kind := decision.Admit
	if app.recovering {
		kind = decision.Recover
	}
	p := s.pick(app, nil, 0)
	if forced, ok := s.forcedAt(s.rollup.Decisions); ok {
		p.best = forced
	}
	if p.best == nil {
		s.record(kind, app, nil, p, decision.OutcomeNoCandidate)
		return false
	}
	queuedAt := app.queuedAt
	switch s.host.Admit(p.best, app) {
	case AdmitOK:
		app.state = appPlaced
		app.node = p.best
		app.placedAt = s.f.Now()
		app.retries = 0
		app.nextTryAt = 0
		app.recovering = false
		s.admitted++
		s.rollup.Admissions++
		if kind == decision.Recover {
			s.rollup.Replacements++
		}
		s.rollup.QueueWait.Observe(int64(s.f.Now() - queuedAt))
		s.record(kind, app, nil, p, decision.OutcomePlaced)
		return true
	case AdmitTransferFailed:
		s.transferFault(app)
		s.record(kind, app, nil, p, decision.OutcomeTransferFailed)
	default:
		s.record(kind, app, nil, p, decision.OutcomeNoCapacity)
	}
	return false
}

// pickResult is one pick's full outcome: the winning node plus the
// decision-observability byproducts — the candidate set (only built when an
// observer is attached) and the winner's score margin over the runner-up.
type pickResult struct {
	best     *Node
	cands    []decision.Candidate
	margin   float64
	marginOK bool // at least two eligible candidates scored finitely
}

// pick returns the admissible node the policy prefers (highest score, ties
// to the lowest index), honouring pinning, an optional exclusion, and a
// free-core floor (migration destinations must offer real headroom). The
// choice is exactly the historical one; the extra bookkeeping only feeds
// the observability rollup and the attached observer, and the candidate
// set is not built at all without one.
func (s *Scheduler) pick(app *App, exclude *Node, minFree int) pickResult {
	rec := s.cfg.Observer != nil
	var p pickResult
	var bestScore, second float64
	haveSecond := false
	for _, n := range s.f.Nodes() {
		reason := ""
		switch {
		case n == exclude:
			reason = decision.ReasonSource
		case app.Pinned != nil && n != app.Pinned:
			reason = decision.ReasonPinned
		case !n.CanAdmit():
			if n.Down() {
				reason = decision.ReasonDown
			} else {
				reason = decision.ReasonFull
			}
		case minFree > 0 && n.FreeCores(hmp.Big)+n.FreeCores(hmp.Little) < minFree:
			reason = decision.ReasonMinFree
		}
		if reason != "" {
			if rec {
				// Excluded candidates record -Inf, except the migration
				// source: its real score is what the gate compares against.
				score := math.Inf(-1)
				if reason == decision.ReasonSource {
					score = s.cfg.Policy.Score(n, app)
				}
				p.cands = append(p.cands, decision.Candidate{Node: n.Name, Score: score, Reason: reason})
			}
			continue
		}
		score := s.cfg.Policy.Score(n, app)
		if rec {
			p.cands = append(p.cands, decision.Candidate{Node: n.Name, Score: score})
		}
		switch {
		case p.best == nil:
			p.best, bestScore = n, score
		case score > bestScore:
			second, haveSecond = bestScore, true
			p.best, bestScore = n, score
		case !haveSecond || score > second:
			second, haveSecond = score, true
		}
	}
	if p.best != nil && haveSecond && !math.IsInf(bestScore, -1) && !math.IsInf(second, -1) {
		p.margin, p.marginOK = bestScore-second, true
	}
	return p
}

// forcedAt resolves a Config.Force override for the decision about to be
// made (in-range indices only).
func (s *Scheduler) forcedAt(id uint64) (*Node, bool) {
	idx, ok := s.cfg.Force[id]
	if !ok || idx < 0 || idx >= len(s.f.Nodes()) {
		return nil, false
	}
	return s.f.Nodes()[idx], true
}

// record closes one decision point: it assigns the decision ID, folds the
// margin into the always-on rollup, and hands the full record to the
// observer when one is attached.
func (s *Scheduler) record(kind decision.Kind, app *App, src *Node, p pickResult, outcome string) {
	id := s.rollup.Decisions
	s.rollup.Decisions++
	if p.marginOK {
		s.rollup.MarginSum += p.margin
		s.rollup.MarginCount++
	}
	if outcome == decision.OutcomeNoCandidate {
		s.rollup.NoCandidate++
	}
	if s.cfg.Observer == nil {
		return
	}
	r := decision.Record{
		ID: id, T: s.f.Now(), Kind: kind, App: app.Name,
		Outcome: outcome, Candidates: p.cands,
	}
	if src != nil {
		r.From = src.Name
	}
	if p.best != nil {
		r.Chosen = p.best.Name
	}
	if p.marginOK {
		r.Margin = p.margin
	}
	s.cfg.Observer.Decision(r)
}

// migratePass moves at most one application off every saturated
// partitioned node: the node has no free core in either cluster, so new
// arrivals there queue and its own applications cannot grow. The victim is
// the smallest-allocation unpinned application (cheapest to move; ties to
// the most recent arrival), the destination is the policy's preferred node
// among those with MigrateMinFree free cores — strictly more free cores
// than the victim already holds, so every move gives the victim room to
// grow and frees its whole allocation on the source — and only if the
// policy does not score the destination below the victim's current node,
// so a move whose predicted gain does not cover its cost (the SLO-aware
// policy charges the checkpoint delay against the app's slack here) simply
// does not happen — though it is recorded as an explicit gated no-op
// decision, so regret analysis can see the moves the policy declined. The
// strict-gain rule is also what makes the pass stable: an app that
// saturates every node it lands on finds no destination better than where
// it sits, instead of ping-ponging between equally-sized nodes every pass.
func (s *Scheduler) migratePass() {
	now := s.f.Now()
	for _, src := range s.f.Nodes() {
		if src.MP == nil || src.Failed() {
			continue
		}
		if src.MP.FreeCores(hmp.Big)+src.MP.FreeCores(hmp.Little) > 0 {
			continue
		}
		victim, alloc := s.victimOn(src, now)
		if victim == nil {
			continue
		}
		minFree := s.cfg.MigrateMinFree
		if alloc+1 > minFree {
			minFree = alloc + 1
		}
		// One decision point per destination pick, whatever its outcome —
		// including the no-op the score gate turns it into. A forced
		// override (counterfactual replay) takes the pick's place and
		// skips the gate: the replay exists to see the declined move play
		// out.
		p := s.pick(victim, src, minFree)
		forced, isForced := s.forcedAt(s.rollup.Decisions)
		if isForced {
			p.best = forced
		}
		dest := p.best
		if dest == nil {
			s.record(decision.Migrate, victim, src, p, decision.OutcomeNoCandidate)
			continue
		}
		if !isForced && s.cfg.Policy.Score(dest, victim) < s.cfg.Policy.Score(src, victim) {
			s.rollup.GatedMigrations++
			s.record(decision.Gated, victim, src, p, decision.OutcomeHeld)
			continue
		}
		s.host.Checkpoint(src, victim)
		res := s.host.Admit(dest, victim)
		if res == AdmitOK {
			victim.node = dest
			victim.placedAt = now
			victim.migrations++
			s.migrations++
			s.admitted++
			s.rollup.Migrations++
			s.record(decision.Migrate, victim, src, p, decision.OutcomeMoved)
			continue
		}
		if res == AdmitTransferFailed {
			s.transferFault(victim)
			s.record(decision.Migrate, victim, src, p, decision.OutcomeTransferFailed)
		} else {
			s.record(decision.Migrate, victim, src, p, decision.OutcomeNoCapacity)
		}
		// Capacity vanished mid-move (or the transfer failed): the app
		// rejoins the queue and a later drain re-places it. It counts
		// toward queuedTotal only once per lifetime (Stats.Queued counts
		// arrivals that waited, not waits).
		victim.state = appQueued
		victim.node = nil
		victim.queuedAt = now
		if !victim.everQueued {
			victim.everQueued = true
			s.queuedTotal++
		}
		s.queue = append(s.queue, victim)
	}
}

// victimOn picks the application to move off a saturated node (and returns
// its current core allocation): unpinned, past the cooldown, smallest
// partition allocation, ties to the latest arrival. The cooldown is
// strict — an app placed exactly one migration period ago is still
// cooling — so an app moved in one pass is never eligible again in the
// very next pass: bouncing between two nodes on consecutive passes is
// impossible by construction, whatever the policy scores say.
func (s *Scheduler) victimOn(src *Node, now sim.Time) (*App, int) {
	var victim *App
	victimAlloc := 0
	for _, app := range s.apps {
		if app.state != appPlaced || app.node != src || app.Pinned != nil || app.Proc == nil {
			continue
		}
		if now-app.placedAt <= s.cfg.MigrateEvery {
			continue
		}
		b, l := src.MP.Allocation(app.Proc)
		alloc := b + l
		if victim == nil || alloc < victimAlloc || (alloc == victimAlloc && app.seq > victim.seq) {
			victim, victimAlloc = app, alloc
		}
	}
	return victim, victimAlloc
}

// CheckInvariants verifies the scheduler's conservation properties: every
// application is in exactly one lifecycle state, placed applications sit on
// exactly one fleet node (and on that node's partition manager, when it has
// one), queued applications sit on none, and no process is registered with
// two nodes' managers. Strict scenario runs call it after every action.
func (s *Scheduler) CheckInvariants() error {
	queued := make(map[*App]bool, len(s.queue))
	for _, app := range s.queue {
		if queued[app] {
			return fmt.Errorf("fleet: app %q queued twice", app.Name)
		}
		queued[app] = true
		if app.state != appQueued {
			return fmt.Errorf("fleet: app %q in queue but not in queued state", app.Name)
		}
	}
	owner := make(map[*sim.Process]*Node)
	for _, n := range s.f.Nodes() {
		if n.MP == nil {
			continue
		}
		for _, p := range n.MP.Apps() {
			if prev, ok := owner[p]; ok {
				return fmt.Errorf("fleet: process %q registered on nodes %q and %q", p.Name, prev.Name, n.Name)
			}
			owner[p] = n
		}
	}
	for _, app := range s.apps {
		switch app.state {
		case appQueued:
			if !queued[app] {
				return fmt.Errorf("fleet: app %q in queued state but not in queue", app.Name)
			}
			if app.node != nil {
				return fmt.Errorf("fleet: queued app %q has a node", app.Name)
			}
		case appPlaced:
			if queued[app] {
				return fmt.Errorf("fleet: placed app %q still in queue", app.Name)
			}
			if app.node == nil {
				return fmt.Errorf("fleet: placed app %q has no node", app.Name)
			}
			if app.node.Down() {
				return fmt.Errorf("fleet: app %q still placed on node %q after failure detection",
					app.Name, app.node.Name)
			}
			if app.Pinned != nil && app.node != app.Pinned {
				return fmt.Errorf("fleet: app %q pinned to %q but placed on %q",
					app.Name, app.Pinned.Name, app.node.Name)
			}
			// Between a crash and its detection the app is still "placed"
			// but the crash teardown already unregistered its process, so
			// the owner check only applies to live machines.
			if app.Proc != nil && app.node.MP != nil && !app.node.Failed() {
				if owner[app.Proc] != app.node {
					return fmt.Errorf("fleet: app %q placed on %q but its process is registered elsewhere",
						app.Name, app.node.Name)
				}
			}
		case appDeparted:
			if queued[app] {
				return fmt.Errorf("fleet: departed app %q still in queue", app.Name)
			}
		}
	}
	return nil
}
