package sim

import (
	"fmt"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
)

// Thread is one simulated kernel thread of a process.
type Thread struct {
	Global int // machine-wide thread ID
	Local  int // thread ID within its process (the paper orders threads by ID)
	Proc   *Process

	affinity hmp.CPUMask
	core     int // current CPU, -1 before first placement
	blocked  bool
	// queued and inRunnable track membership in the core run queue and the
	// machine runnable list; during execute the lists are frozen and these
	// may lag the blocked flag until the end-of-tick reconcile. journaled
	// marks enrolment in that reconcile pass; misplaced mirrors the
	// thread's contribution to the machine's misplaced-runnable counter.
	queued     bool
	inRunnable bool
	journaled  bool
	misplaced  bool
	remaining  float64 // work units left in the current unit
	penalty    Time    // pending migration stall

	// speedFactor caches Program.SpeedFactor per cluster, resolved at Spawn
	// so the per-tick execute path makes no interface calls; sibPrev and
	// sibNext link the ID-adjacent threads of the process for the
	// cache-sharing check.
	speedFactor      [hmp.NumClusters]float64
	sibPrev, sibNext *Thread

	lastRan    int64 // execute-tick stamp of the last tick this thread ran
	migrations int
	workDone   float64
}

// Core returns the CPU the thread is currently placed on (-1 if none).
func (t *Thread) Core() int { return t.core }

// Runnable reports whether the thread has work and is not blocked.
func (t *Thread) Runnable() bool { return !t.blocked }

// Affinity returns the thread's CPU affinity mask.
func (t *Thread) Affinity() hmp.CPUMask { return t.affinity }

// RanLastTick reports whether the thread consumed CPU in the last executed
// tick; the GTS load tracker feeds on this. (Implemented as a tick-stamp
// comparison so execute does not reset a flag on every thread every tick.)
func (t *Thread) RanLastTick() bool { return t.lastRan == t.Proc.m.execTick }

// Migrations returns how many times the thread has changed cores.
func (t *Thread) Migrations() int { return t.migrations }

// WorkDone returns the total work units the thread has retired.
func (t *Thread) WorkDone() float64 { return t.workDone }

// Remaining returns the work left in the thread's current unit.
func (t *Thread) Remaining() float64 { return t.remaining }

// Program is the behaviour of a simulated application. Implementations live
// in internal/workload (PARSEC-like models) and internal/power (the profiling
// microbenchmark).
type Program interface {
	// Name identifies the program (e.g. "bodytrack").
	Name() string
	// NumThreads is how many threads the process spawns.
	NumThreads() int
	// Start is called once at spawn; it must hand out initial work via
	// Process.SetWork (or schedule wakeups) for the threads that should run.
	Start(p *Process)
	// UnitDone is called whenever thread `local` completes a work unit. The
	// thread is blocked at that moment; the implementation gives it more
	// work (SetWork), leaves it blocked, wakes other threads, and emits
	// heartbeats as the application logic dictates.
	UnitDone(p *Process, local int)
	// SpeedFactor is the per-cluster IPC multiplier of thread `local`
	// relative to a little core (1.0 = little-core speed). The nominal
	// big-cluster value is the platform IPC ratio (1.5); memory-bound
	// applications like blackscholes return 1.0 for both clusters.
	SpeedFactor(local int, k hmp.ClusterKind) float64
}

// CacheSensitive is an optional Program extension: programs whose adjacent
// threads share data constructively run CacheBonus() faster when a
// neighbouring thread (ID ± 1) sits on the same cluster.
type CacheSensitive interface {
	CacheBonus() float64
}

// ThreadGrouper is an optional Program extension exposing the application's
// thread hierarchy (the paper's §3.1.4 second discussion item): the sizes of
// contiguous thread-ID groups, e.g. one entry per pipeline stage. Hierarchy-
// aware schedulers use it to give every group a fair share of each core
// type.
type ThreadGrouper interface {
	ThreadGroups() []int
}

// Process is a running instance of a Program on a Machine.
type Process struct {
	ID   int
	Name string
	// HB is the process's Application Heartbeats monitor.
	HB *heartbeat.Monitor

	m          *Machine
	prog       Program
	cacheBonus float64 // CacheSensitive.CacheBonus resolved at Spawn (0 if none)
	exited     bool    // set by Machine.Kill: the process has departed
	Threads    []*Thread
}

// Exited reports whether the process has been terminated by Machine.Kill.
func (p *Process) Exited() bool { return p.exited }

// Machine returns the machine the process runs on.
func (p *Process) Machine() *Machine { return p.m }

// Program returns the process's program.
func (p *Process) Program() Program { return p.prog }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.m.Now() }

// SetWork gives thread `local` a fresh unit of `units` work and makes it
// runnable. Units must be positive.
func (p *Process) SetWork(local int, units float64) {
	if p.exited {
		return // late wakeups and callbacks of a departed process are dropped
	}
	if units <= 0 {
		panic(fmt.Sprintf("sim: SetWork(%s/%d, %v): units must be positive", p.Name, local, units))
	}
	t := p.Threads[local]
	t.remaining = units
	p.m.makeRunnable(t)
}

// Block parks thread `local`; it consumes no CPU until given work again.
func (p *Process) Block(local int) {
	t := p.Threads[local]
	p.m.makeBlocked(t)
	t.remaining = 0
}

// Blocked reports whether thread `local` is parked.
func (p *Process) Blocked(local int) bool { return p.Threads[local].blocked }

// Beat emits an application heartbeat at the current simulated time.
func (p *Process) Beat() heartbeat.Record {
	if p.m.tracer != nil {
		p.m.emit(Event{T: p.m.Now(), Kind: EvBeat, Proc: p.Name})
	}
	return p.HB.Beat(p.m.Now())
}

// WakeAt schedules thread `local` to receive `units` of work at simulated
// time `at` (it fires on the first tick whose start time is ≥ at). The
// profiling microbenchmark uses this for duty-cycled load, and workloads use
// it for heartbeat-less startup phases.
func (p *Process) WakeAt(local int, at Time, units float64) {
	if p.exited {
		return
	}
	if units <= 0 {
		panic(fmt.Sprintf("sim: WakeAt(%s/%d, %v): units must be positive", p.Name, local, units))
	}
	p.m.timers.push(timerEntry{at: at, proc: p, local: local, units: units})
}

// SetAffinity applies a CPU affinity mask to thread `local` — the simulated
// sched_setaffinity. An empty intersection with the machine would strand the
// thread, so an empty mask panics.
func (p *Process) SetAffinity(local int, mask hmp.CPUMask) {
	if mask == 0 {
		panic(fmt.Sprintf("sim: SetAffinity(%s/%d): empty mask", p.Name, local))
	}
	t := p.Threads[local]
	t.affinity = mask
	p.m.updateMisplaced(t)
}

// AffinityAll resets every thread of the process to run anywhere.
func (p *Process) AffinityAll() {
	all := hmp.AllCPUs(p.m.plat)
	for i := range p.Threads {
		p.Threads[i].affinity = all
		p.m.updateMisplaced(p.Threads[i])
	}
}

// WorkDone sums the retired work units of all threads of the process.
func (p *Process) WorkDone() float64 {
	var sum float64
	for _, t := range p.Threads {
		sum += t.workDone
	}
	return sum
}
