package workload_test

import (
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestExtendedCatalog(t *testing.T) {
	ext := workload.Extended()
	if len(ext) != 4 {
		t.Fatalf("extended benchmarks = %d, want 4", len(ext))
	}
	seen := map[string]bool{}
	for _, b := range workload.AllExtended() {
		if seen[b.Short] {
			t.Fatalf("duplicate short tag %s", b.Short)
		}
		seen[b.Short] = true
	}
	if len(seen) != 10 {
		t.Fatalf("AllExtended = %d entries, want 10", len(seen))
	}
	if _, ok := workload.ByShortExtended("CA"); !ok {
		t.Error("ByShortExtended(CA) failed")
	}
	if _, ok := workload.ByShortExtended("BL"); !ok {
		t.Error("ByShortExtended must cover the paper set too")
	}
	if _, ok := workload.ByShortExtended("ZZ"); ok {
		t.Error("ByShortExtended(ZZ) should fail")
	}
}

func TestExtendedBenchmarksRun(t *testing.T) {
	for _, b := range workload.Extended() {
		b := b
		t.Run(b.Short, func(t *testing.T) {
			plat := hmp.Default()
			m := sim.New(plat, sim.Config{})
			p := m.Spawn(b.Name, b.New(8), 8)
			m.Run(25 * sim.Second)
			if p.HB.Count() == 0 {
				t.Fatalf("%s emitted no heartbeats", b.Short)
			}
			// And keeps making progress (no pipeline deadlock).
			before := p.HB.Count()
			m.Run(15 * sim.Second)
			if p.HB.Count() == before {
				t.Fatalf("%s stalled", b.Short)
			}
		})
	}
}

func TestCannealTraits(t *testing.T) {
	b, _ := workload.ByShortExtended("CA")
	prog := b.New(8)
	if f := prog.SpeedFactor(0, hmp.Big); f > 1.2 {
		t.Errorf("canneal big factor = %v, want memory-bound ≈1.1", f)
	}
	dp := prog.(*workload.DataParallel)
	// Annealing cools: early iterations heavier than late ones.
	if dp.Unit(0) <= dp.Unit(500) {
		t.Error("canneal work should shrink as annealing cools")
	}
}

func TestStreamclusterPhaseJumps(t *testing.T) {
	b, _ := workload.ByShortExtended("SC")
	dp := b.New(8).(*workload.DataParallel)
	lo, hi := dp.Unit(0), dp.Unit(30)
	if hi <= lo*1.5 {
		t.Errorf("streamcluster phases should jump: %v vs %v", lo, hi)
	}
}

func TestExtendedPipelinesExposeHierarchy(t *testing.T) {
	for _, short := range []string{"DE", "X2"} {
		b, _ := workload.ByShortExtended(short)
		prog := b.New(4)
		g, ok := prog.(sim.ThreadGrouper)
		if !ok {
			t.Fatalf("%s should expose thread groups", short)
		}
		total := 0
		for _, n := range g.ThreadGroups() {
			total += n
		}
		if total != prog.NumThreads() {
			t.Fatalf("%s groups sum %d != threads %d", short, total, prog.NumThreads())
		}
	}
}
