package mphars

import (
	"testing"

	"repro/internal/heartbeat"
)

// TestDecideTable43 checks every row of the paper's Table 4.3 verbatim.
func TestDecideTable43(t *testing.T) {
	rows := []struct {
		app    heartbeat.Satisfaction
		others heartbeat.Satisfaction
		frozen bool
		state  StateDecision
		freeze FreezeDecision
	}{
		{heartbeat.Underperf, heartbeat.Underperf, true, IncState, Unfreeze},
		{heartbeat.Underperf, heartbeat.Underperf, false, IncState, KeepFreeze},
		{heartbeat.Underperf, heartbeat.Achieve, true, IncState, Unfreeze},
		{heartbeat.Underperf, heartbeat.Achieve, false, IncState, KeepFreeze},
		{heartbeat.Underperf, heartbeat.Overperf, true, IncState, Unfreeze},
		{heartbeat.Underperf, heartbeat.Overperf, false, IncState, KeepFreeze},

		{heartbeat.Achieve, heartbeat.Underperf, true, KeepState, KeepFreeze},
		{heartbeat.Achieve, heartbeat.Underperf, false, KeepState, KeepFreeze},
		{heartbeat.Achieve, heartbeat.Achieve, true, KeepState, KeepFreeze},
		{heartbeat.Achieve, heartbeat.Achieve, false, KeepState, KeepFreeze},
		{heartbeat.Achieve, heartbeat.Overperf, true, KeepState, KeepFreeze},
		{heartbeat.Achieve, heartbeat.Overperf, false, KeepState, KeepFreeze},

		{heartbeat.Overperf, heartbeat.Underperf, true, IncState, KeepFreeze},
		{heartbeat.Overperf, heartbeat.Underperf, false, KeepState, KeepFreeze},
		{heartbeat.Overperf, heartbeat.Achieve, true, IncState, KeepFreeze},
		{heartbeat.Overperf, heartbeat.Achieve, false, KeepState, KeepFreeze},
		{heartbeat.Overperf, heartbeat.Overperf, true, IncState, KeepFreeze},
		{heartbeat.Overperf, heartbeat.Overperf, false, DecState, Freeze},
	}
	for _, r := range rows {
		gotState, gotFreeze := Decide(r.app, r.others, r.frozen)
		if gotState != r.state || gotFreeze != r.freeze {
			t.Errorf("Decide(%v, %v, frozen=%v) = (%v, %v), want (%v, %v)",
				r.app, r.others, r.frozen, gotState, gotFreeze, r.state, r.freeze)
		}
	}
}

func TestAggregateOthers(t *testing.T) {
	u, a, o := heartbeat.Underperf, heartbeat.Achieve, heartbeat.Overperf
	cases := []struct {
		in   []heartbeat.Satisfaction
		want heartbeat.Satisfaction
	}{
		{nil, o},
		{[]heartbeat.Satisfaction{o}, o},
		{[]heartbeat.Satisfaction{o, o}, o},
		{[]heartbeat.Satisfaction{o, a}, a},
		{[]heartbeat.Satisfaction{a, a}, a},
		{[]heartbeat.Satisfaction{o, a, u}, u},
		{[]heartbeat.Satisfaction{u}, u},
	}
	for _, c := range cases {
		if got := AggregateOthers(c.in); got != c.want {
			t.Errorf("AggregateOthers(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDecisionStrings(t *testing.T) {
	if IncState.String() != "INC" || DecState.String() != "DEC" || KeepState.String() != "KEEP" {
		t.Error("StateDecision strings wrong")
	}
	if Freeze.String() != "FREEZE" || Unfreeze.String() != "UNFREEZE" || KeepFreeze.String() != "KEEP" {
		t.Error("FreezeDecision strings wrong")
	}
	if StateDecision(9).String() == "" || FreezeDecision(9).String() == "" {
		t.Error("unknown decisions should render")
	}
}
