package workload

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// PhaseScalable is the optional program extension scenario "phase" events
// actuate: implementations scale the work of future iterations/items by the
// given positive factor. Both workload templates implement it.
type PhaseScalable interface {
	SetPhaseScale(scale float64)
}

var _ PhaseScalable = (*DataParallel)(nil)
var _ PhaseScalable = (*Pipeline)(nil)

// Both templates support non-destructive snapshots, so every benchmark is
// eligible for periodic background checkpoints and crash recovery.
var _ sim.Cloneable = (*DataParallel)(nil)
var _ sim.Cloneable = (*Pipeline)(nil)

// Benchmark is a named factory for one of the evaluation's applications.
// Programs carry per-run state, so each run must construct a fresh one.
type Benchmark struct {
	// Name is the PARSEC benchmark the model stands in for.
	Name string
	// Short is the paper's two-letter tag (BL, BO, FA, FE, FL, SW).
	Short string
	// New builds a fresh program with the given thread-count parameter n
	// (the paper sets n to the total core count, 8; pipeline benchmarks
	// spawn n threads per middle stage plus the serial end stages).
	New func(n int) sim.Program
}

// All returns the six benchmarks of the paper's evaluation in the order of
// Figure 5.1 (BL, BO, FA, FE, FL, SW).
func All() []Benchmark {
	return []Benchmark{
		{
			Name:  "blackscholes",
			Short: "BL",
			// Memory-bound option pricing: identical per-clock speed on big
			// and little cores (true r = 1.0, against HARS's r0 = 1.5), a
			// stable workload, and an initial input-parsing phase during
			// which no heartbeats are emitted (§5.2.2, case 6).
			New: func(n int) sim.Program {
				return &DataParallel{
					AppName:    "blackscholes",
					Threads:    n,
					BigFactor:  1.0,
					Bonus:      0,
					Unit:       ConstUnit(0.40),
					StartDelay: 8 * sim.Second,
				}
			},
		},
		{
			Name:  "bodytrack",
			Short: "BO",
			// Per-frame body tracking: work varies frame to frame, driving
			// repeated adaptation.
			New: func(n int) sim.Program {
				return &DataParallel{
					AppName:   "bodytrack",
					Threads:   n,
					BigFactor: 1.5,
					Bonus:     0.05,
					Unit: func(iter int64) float64 {
						return 0.65 * (1 + 0.30*math.Sin(2*math.Pi*float64(iter)/40))
					},
				}
			},
		},
		{
			Name:  "facesim",
			Short: "FA",
			// Heavy physics frames with mild variation and some
			// constructive sharing between adjacent partitions.
			New: func(n int) sim.Program {
				return &DataParallel{
					AppName:   "facesim",
					Threads:   n,
					BigFactor: 1.45,
					Bonus:     0.08,
					Unit: func(iter int64) float64 {
						return 1.8 * (1 + 0.10*math.Sin(2*math.Pi*float64(iter)/25))
					},
				}
			},
		},
		{
			Name:  "ferret",
			Short: "FE",
			// 6-stage similarity-search pipeline: serial load and output
			// stages around four n-thread middle stages. Vulnerable to the
			// chunk-based scheduler placing whole stages on little cores
			// (§5.1.2) — the case HARS-EI's interleaving scheduler fixes.
			New: func(n int) sim.Program {
				return &Pipeline{
					AppName:      "ferret",
					StageThreads: []int{1, n, n, n, n, 1},
					StageWork:    []float64{0.03, 0.12, 0.18, 0.42, 0.15, 0.02},
					QueueCap:     8,
					BigFactor:    1.5,
				}
			},
		},
		{
			Name:  "fluidanimate",
			Short: "FL",
			// Grid-partitioned fluid simulation: strong constructive cache
			// sharing between adjacent partitions, sawtooth work variation.
			New: func(n int) sim.Program {
				return &DataParallel{
					AppName:   "fluidanimate",
					Threads:   n,
					BigFactor: 1.5,
					Bonus:     0.10,
					Unit: func(iter int64) float64 {
						return 0.50 * (1 + 0.15*triangle(float64(iter)/30))
					},
				}
			},
		},
		{
			Name:  "swaptions",
			Short: "SW",
			// Monte-Carlo pricing with the paper's enlarged input
			// (-ns 12800 -sm 10000): steady, embarrassingly parallel work.
			New: func(n int) sim.Program {
				return &DataParallel{
					AppName:   "swaptions",
					Threads:   n,
					BigFactor: 1.55,
					Bonus:     0,
					Unit:      ConstUnit(0.90),
				}
			},
		},
	}
}

// triangle is a unit-period triangle wave in [-1, 1].
func triangle(x float64) float64 {
	_, frac := math.Modf(x)
	if frac < 0 {
		frac += 1
	}
	return 4*math.Abs(frac-0.5) - 1
}

// ByShort looks a benchmark up by its two-letter tag (case-sensitive).
func ByShort(short string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Short == short {
			return b, true
		}
	}
	return Benchmark{}, false
}

// ByName looks a benchmark up by its full PARSEC name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Shorts returns the sorted list of two-letter tags.
func Shorts() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Short)
	}
	sort.Strings(out)
	return out
}
