package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/thermal"
)

func TestOccurrences(t *testing.T) {
	oneShot := &Event{AtMS: 700}
	if got := oneShot.Occurrences(3000); !reflect.DeepEqual(got, []int64{700}) {
		t.Fatalf("one-shot occurrences = %v", got)
	}
	rep := &Event{AtMS: 1000, EveryMS: 500}
	if got := rep.Occurrences(3000); !reflect.DeepEqual(got, []int64{1000, 1500, 2000, 2500, 3000}) {
		t.Fatalf("repeating occurrences = %v", got)
	}
	capped := &Event{AtMS: 1000, EveryMS: 500, Repeat: 2}
	if got := capped.Occurrences(3000); !reflect.DeepEqual(got, []int64{1000, 1500}) {
		t.Fatalf("repeat-capped occurrences = %v", got)
	}
	edge := &Event{AtMS: 3000, EveryMS: 500}
	if got := edge.Occurrences(3000); !reflect.DeepEqual(got, []int64{3000}) {
		t.Fatalf("edge occurrences = %v", got)
	}
}

func TestPeriodicValidation(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Manager:    ManagerNone,
			DurationMS: 10000,
			Apps:       []AppSpec{{Name: "a", Bench: "SW"}},
		}
	}
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"negative every_ms", Event{Kind: KindPhase, App: "a", Scale: 1, EveryMS: -5}, "negative every_ms"},
		{"negative repeat", Event{Kind: KindPhase, App: "a", Scale: 1, Repeat: -1}, "negative repeat"},
		{"repeat without every", Event{Kind: KindPhase, App: "a", Scale: 1, Repeat: 3}, "repeat without every_ms"},
	}
	for _, c := range cases {
		sc := base()
		sc.Events = []Event{c.ev}
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}

	// Occurrence explosion is rejected, not materialized.
	sc := base()
	sc.DurationMS = 1_000_000
	sc.Events = []Event{{Kind: KindPhase, App: "a", Scale: 1, AtMS: 0, EveryMS: 1}}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "occurrences") {
		t.Fatalf("explosion err = %v", err)
	}
	// The same period with a bounded repeat is fine.
	sc.Events[0].Repeat = 100
	if err := sc.Validate(); err != nil {
		t.Fatalf("bounded repeat rejected: %v", err)
	}

	// An extreme duration/period pair must saturate the occurrence count
	// instead of overflowing it — for a hotplug event the stranding replay
	// would otherwise materialize a negative-capacity slice and panic.
	off := false
	for _, ev := range []Event{
		{Kind: KindPhase, App: "a", Scale: 1, AtMS: 0, EveryMS: 1},
		{Kind: KindHotplug, CPU: 7, Online: &off, AtMS: 0, EveryMS: 1},
	} {
		sc = base()
		sc.DurationMS = 1<<63 - 1
		sc.Events = []Event{ev}
		if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "occurrences") {
			t.Fatalf("overflow-range %s event: err = %v", ev.Kind, err)
		}
	}

	// A repeating hotplug event participates in the stranding replay: a
	// second event that brings the only other core cluster down between two
	// occurrences must still be caught.
	sc = base()
	sc.Events = []Event{
		{Kind: KindHotplug, CPU: 0, Online: &off, AtMS: 100},
		{Kind: KindHotplug, CPU: 1, Online: &off, AtMS: 100},
		{Kind: KindHotplug, CPU: 2, Online: &off, AtMS: 100},
		{Kind: KindHotplug, CPU: 3, Online: &off, AtMS: 100},
		{Kind: KindHotplug, CPU: 4, Online: &off, AtMS: 100},
		{Kind: KindHotplug, CPU: 5, Online: &off, AtMS: 100},
		{Kind: KindHotplug, CPU: 6, Online: &off, AtMS: 100},
		{Kind: KindHotplug, CPU: 7, Online: &off, AtMS: 3000, EveryMS: 1000},
	}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "last core offline") {
		t.Fatalf("stranding with repeating hotplug: err = %v", err)
	}
}

// TestPeriodicEquivalentToUnrolled pins the expansion semantics: a repeating
// event must drive the machine through exactly the trajectory of the same
// scenario with the occurrences written out by hand.
func TestPeriodicEquivalentToUnrolled(t *testing.T) {
	rolled := &Scenario{
		Name:       "pulse",
		Manager:    ManagerHARSE,
		DurationMS: 6000,
		AdaptEvery: 2,
		Apps: []AppSpec{{
			Name: "sw", Bench: "SW", Threads: 8,
			Target: &TargetSpec{Min: 4.0, Avg: 5.0, Max: 6.0},
		}},
		Events: []Event{{AtMS: 1000, Kind: KindPhase, App: "sw", Scale: 1.5, EveryMS: 1500, Repeat: 3}},
	}
	unrolled := &Scenario{
		Name:       "pulse",
		Manager:    ManagerHARSE,
		DurationMS: 6000,
		AdaptEvery: 2,
		Apps: []AppSpec{{
			Name: "sw", Bench: "SW", Threads: 8,
			Target: &TargetSpec{Min: 4.0, Avg: 5.0, Max: 6.0},
		}},
		Events: []Event{
			{AtMS: 1000, Kind: KindPhase, App: "sw", Scale: 1.5},
			{AtMS: 2500, Kind: KindPhase, App: "sw", Scale: 1.5},
			{AtMS: 4000, Kind: KindPhase, App: "sw", Scale: 1.5},
		},
	}
	a, err := Run(rolled, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(unrolled, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceDigest != b.TraceDigest {
		t.Fatalf("rolled digest %016x != unrolled %016x", a.TraceDigest, b.TraceDigest)
	}
}

func TestThermalScenarioValidation(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Manager:    ManagerNone,
			DurationMS: 5000,
			Apps:       []AppSpec{{Name: "a", Bench: "SW"}},
			Thermal:    &thermal.Spec{Enabled: true},
		}
	}
	// dvfs_cap conflicts with the enabled governor.
	sc := base()
	sc.Events = []Event{{AtMS: 100, Kind: KindDVFSCap, Cluster: "big", MaxLevel: 3}}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "dvfs_cap") {
		t.Fatalf("cap-with-governor err = %v", err)
	}
	// ...but is fine when the block is present yet disabled.
	sc.Thermal.Enabled = false
	if err := sc.Validate(); err != nil {
		t.Fatalf("cap with disabled thermal rejected: %v", err)
	}
	// Malformed thermal blocks are rejected through scenario validation.
	sc = base()
	sc.Thermal.TripC = 30 // below default release 60
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "thresholds") {
		t.Fatalf("bad thresholds err = %v", err)
	}
	// min_level outside the little grid (max level 5 on the default
	// platform) is rejected even though the big grid would allow it.
	sc = base()
	sc.Thermal.MinLevel = 7
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "min_level") {
		t.Fatalf("min_level err = %v", err)
	}
	// JSON round trip keeps the thermal block.
	sc = base()
	var buf strings.Builder
	if err := sc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := Decode(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, again) {
		t.Fatalf("thermal round trip changed the scenario:\nfirst:  %+v\nsecond: %+v", sc, again)
	}
}
