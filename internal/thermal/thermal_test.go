package thermal_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
)

// busy is a saturating program: every thread always has work.
type busy struct{ threads int }

func (b *busy) Name() string    { return "busy" }
func (b *busy) NumThreads() int { return b.threads }
func (b *busy) Start(p *sim.Process) {
	for i := 0; i < b.threads; i++ {
		p.SetWork(i, 1)
	}
}
func (b *busy) UnitDone(p *sim.Process, local int)               { p.SetWork(local, 1) }
func (b *busy) SpeedFactor(local int, k hmp.ClusterKind) float64 { return 1 }

func TestSpecDefaults(t *testing.T) {
	r := thermal.Spec{}.WithDefaults()
	if r.AmbientC != thermal.DefaultAmbientC || r.TripC != thermal.DefaultTripC ||
		r.ReleaseC != thermal.DefaultReleaseC {
		t.Fatalf("default thresholds wrong: %+v", r)
	}
	if want := (thermal.DefaultReleaseC + thermal.DefaultTripC) / 2; r.ThrottleC != want {
		t.Fatalf("throttle default = %v, want %v", r.ThrottleC, want)
	}
	if r.InitC != r.AmbientC {
		t.Fatalf("init default = %v, want ambient %v", r.InitC, r.AmbientC)
	}
	if r.Big.CapacitanceJPerK != thermal.DefaultBigC || r.Little.ResistanceKPerW != thermal.DefaultLittleR {
		t.Fatalf("default RC wrong: big=%+v little=%+v", r.Big, r.Little)
	}
	if err := (thermal.Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec must validate: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec thermal.Spec
		want string
	}{
		{"negative capacitance", thermal.Spec{Big: &thermal.ClusterRC{CapacitanceJPerK: -1}}, "capacitance"},
		{"negative resistance", thermal.Spec{Little: &thermal.ClusterRC{ResistanceKPerW: -2}}, "resistance"},
		{"unordered thresholds", thermal.Spec{TripC: 50, ReleaseC: 60, ThrottleC: 55}, "thresholds"},
		{"throttle above trip", thermal.Spec{ThrottleC: 80}, "thresholds"},
		{"ambient above release", thermal.Spec{AmbientC: 65}, "thresholds"},
		{"negative min level", thermal.Spec{MinLevel: -1}, "min_level"},
		{"negative period", thermal.Spec{PeriodTicks: -5}, "period_ticks"},
		{"negative sample cadence", thermal.Spec{SampleEveryMS: -1}, "sample_every_ms"},
		{"negative coupling", thermal.Spec{CouplingWPerK: -0.5}, "coupling"},
		{"euler-unstable capacitance", thermal.Spec{Big: &thermal.ClusterRC{CapacitanceJPerK: 1e-6}}, "unstable"},
		{"euler-unstable resistance", thermal.Spec{Little: &thermal.ClusterRC{ResistanceKPerW: 1e-4}}, "unstable"},
		{"euler-unstable via coupling", thermal.Spec{CouplingWPerK: 1e6}, "unstable"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	// Sub-zero ambients are physically valid; init_c follows the ambient
	// down by default.
	cold := thermal.Spec{AmbientC: -5}
	if err := cold.Validate(); err != nil {
		t.Fatalf("negative ambient rejected: %v", err)
	}
	if r := cold.WithDefaults(); r.InitC != -5 {
		t.Fatalf("cold init = %v, want ambient -5", r.InitC)
	}
}

func TestDecodeSpec(t *testing.T) {
	s, err := thermal.DecodeSpec(strings.NewReader(
		`{"enabled": true, "trip_c": 80, "release_c": 65, "big": {"capacitance_j_per_k": 2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Enabled || s.TripC != 80 || s.Big.CapacitanceJPerK != 2 {
		t.Fatalf("decoded = %+v", s)
	}
	if _, err := thermal.DecodeSpec(strings.NewReader(`{"tripc": 80}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := thermal.DecodeSpec(strings.NewReader(`{"trip_c": 10}`)); err == nil {
		t.Fatal("unordered thresholds accepted")
	}
}

func TestModelSteadyStateAndCooling(t *testing.T) {
	md := thermal.NewModel(thermal.Spec{})
	const watts = 6.0
	var in [hmp.NumClusters]float64
	in[hmp.Big] = watts
	// 120 s at 1 ms steps: 12 time constants, fully settled.
	for i := 0; i < 120_000; i++ {
		md.Step(0.001, in)
	}
	steady := md.SteadyC(hmp.Big, watts)
	if diff := math.Abs(md.TempC(hmp.Big) - steady); diff > 0.01 {
		t.Fatalf("big settled at %v, want steady %v (diff %v)", md.TempC(hmp.Big), steady, diff)
	}
	// No coupling: the idle little cluster stays at ambient.
	if md.TempC(hmp.Little) != md.AmbientC() {
		t.Fatalf("little drifted to %v without coupling", md.TempC(hmp.Little))
	}
	// Cut power: the hot node cools strictly monotonically toward ambient.
	in[hmp.Big] = 0
	prev := md.TempC(hmp.Big)
	for i := 0; i < 60_000; i++ {
		md.Step(0.001, in)
		cur := md.TempC(hmp.Big)
		if cur > prev {
			t.Fatalf("step %d: temperature rose %v -> %v with zero power", i, prev, cur)
		}
		prev = cur
	}
	if diff := md.TempC(hmp.Big) - md.AmbientC(); diff > 0.2 {
		t.Fatalf("big still %v above ambient after cooling", diff)
	}
}

func TestModelCoupling(t *testing.T) {
	md := thermal.NewModel(thermal.Spec{CouplingWPerK: 0.05})
	var in [hmp.NumClusters]float64
	in[hmp.Big] = 8
	for i := 0; i < 60_000; i++ {
		md.Step(0.001, in)
	}
	if md.TempC(hmp.Little) <= md.AmbientC()+1 {
		t.Fatalf("little = %v: coupling should leak heat from the big cluster", md.TempC(hmp.Little))
	}
	if md.TempC(hmp.Little) >= md.TempC(hmp.Big) {
		t.Fatalf("little (%v) hotter than the heated big node (%v)", md.TempC(hmp.Little), md.TempC(hmp.Big))
	}
}

func TestModelDeterminism(t *testing.T) {
	a := thermal.NewModel(thermal.Spec{CouplingWPerK: 0.02})
	b := thermal.NewModel(thermal.Spec{CouplingWPerK: 0.02})
	var in [hmp.NumClusters]float64
	for i := 0; i < 10_000; i++ {
		in[hmp.Big] = float64(i%7) * 1.3
		in[hmp.Little] = float64(i%3) * 0.4
		a.Step(0.001, in)
		b.Step(0.001, in)
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		if a.TempC(k) != b.TempC(k) {
			t.Fatalf("cluster %s: %v != %v (replay must be bit-identical)", k, a.TempC(k), b.TempC(k))
		}
	}
}

// tripChecker asserts, after the governor has run each tick, that no cluster
// exceeds trip_c by more than one tick's temperature rise — the governor's
// ceiling guarantee.
type tripChecker struct {
	gov  *thermal.Governor
	trip float64
	err  error
}

func (c *tripChecker) Tick(m *sim.Machine) {
	if c.err != nil {
		return
	}
	dt := sim.Seconds(m.TickLen())
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		slack := c.gov.Model().MaxStepC(k, m.LastTickPowerW(k), dt)
		if t := c.gov.TempC(k); t > c.trip+slack {
			c.err = &tripErr{k: k, t: t, trip: c.trip, slack: slack, at: m.Now()}
			return
		}
	}
}

type tripErr struct {
	k       hmp.ClusterKind
	t, trip float64
	slack   float64
	at      sim.Time
}

func (e *tripErr) Error() string { return "trip ceiling violated" }

func TestGovernorTripCeilingAndRelease(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	tr := &sim.Tracer{}
	m.SetTracer(tr)
	// A narrow band under the trip point and a deliberately sluggish step
	// period (one level per second): full load blows through the band
	// faster than graduated stepping can react, forcing the emergency
	// clamp.
	spec := thermal.Spec{Enabled: true, ReleaseC: 70, ThrottleC: 72, TripC: 75, PeriodTicks: 1000}
	gov, err := thermal.NewGovernor(spec)
	if err != nil {
		t.Fatal(err)
	}
	m.AddDaemon(gov)
	chk := &tripChecker{gov: gov, trip: 75}
	m.AddDaemon(chk)

	p := m.Spawn("busy", &busy{threads: 8}, 10)
	m.Run(20 * sim.Second)
	if chk.err != nil {
		e := chk.err.(*tripErr)
		t.Fatalf("t=%d: cluster %s at %.4f°C exceeds trip %.1f + slack %.4f", e.at, e.k, e.t, e.trip, e.slack)
	}
	if gov.Trips() == 0 {
		t.Fatal("full load never tripped: the test exercises nothing")
	}
	if gov.PeakC(hmp.Big) < 72 {
		t.Fatalf("big peak %.1f°C never entered the throttle zone", gov.PeakC(hmp.Big))
	}
	// After the trip the loop cycles: clamp → cool below release → caps step
	// back up → reheat. The ceiling guarantee (checked every tick above) is
	// what must hold throughout; the cap itself oscillates by design.

	// Kill the load: the clusters cool below release_c and the governor
	// ratchets the ceilings back to the platform maximum.
	m.Kill(p)
	m.Run(60 * sim.Second)
	if chk.err != nil {
		t.Fatalf("ceiling violated during cooldown: %v", chk.err)
	}
	if gov.Releases() == 0 {
		t.Fatal("no release actuations after cooldown")
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		if cap, max := m.LevelCap(k), plat.Clusters[k].MaxLevel(); cap != max {
			t.Fatalf("%s cap = %d after cooldown, want restored max %d", k, cap, max)
		}
	}

	// Cap moves must be monotone with temperature: every lowering happened
	// at or above throttle_c, every raising at or below release_c.
	resolved := gov.Spec()
	caps := [hmp.NumClusters]int{}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		caps[k] = plat.Clusters[k].MaxLevel()
	}
	throttleEvents := 0
	for _, e := range tr.Events() {
		if e.Kind != sim.EvThrottle {
			continue
		}
		throttleEvents++
		switch {
		case e.Level < caps[e.Cluster]:
			if e.TempC < resolved.ThrottleC {
				t.Fatalf("t=%d: cap lowered to %d at %.2f°C, below throttle_c %.1f",
					e.T, e.Level, e.TempC, resolved.ThrottleC)
			}
		case e.Level > caps[e.Cluster]:
			if e.TempC > resolved.ReleaseC {
				t.Fatalf("t=%d: cap raised to %d at %.2f°C, above release_c %.1f",
					e.T, e.Level, e.TempC, resolved.ReleaseC)
			}
		default:
			t.Fatalf("t=%d: throttle event without a cap change (level %d)", e.T, e.Level)
		}
		caps[e.Cluster] = e.Level
	}
	if throttleEvents == 0 {
		t.Fatal("no EvThrottle events traced")
	}
	// Temperature samples must be on the trace too.
	temps := 0
	for _, e := range tr.Events() {
		if e.Kind == sim.EvTemp {
			temps++
		}
	}
	if temps == 0 {
		t.Fatal("no EvTemp samples traced")
	}
}

func TestGovernorHysteresisHolds(t *testing.T) {
	// A cluster sitting inside the hysteresis band (release < T < throttle)
	// must not see any cap movement.
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	spec := thermal.Spec{Enabled: true, InitC: 65} // inside the default 60..67.5 band
	gov, err := thermal.NewGovernor(spec)
	if err != nil {
		t.Fatal(err)
	}
	m.AddDaemon(gov)
	// No load: idle power keeps the temperature from racing anywhere, and
	// the band is wide enough that 2 s of drift stays inside it.
	m.Run(2 * sim.Second)
	if gov.Throttles() != 0 || gov.Releases() != 0 {
		t.Fatalf("governor actuated (%d throttles, %d releases) inside the hysteresis band",
			gov.Throttles(), gov.Releases())
	}
}

func TestGovernorMinLevelFloor(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	spec := thermal.Spec{Enabled: true, MinLevel: 2, ReleaseC: 70, ThrottleC: 72, TripC: 75}
	gov, err := thermal.NewGovernor(spec)
	if err != nil {
		t.Fatal(err)
	}
	m.AddDaemon(gov)
	m.Spawn("busy", &busy{threads: 8}, 10)
	m.Run(30 * sim.Second)
	if gov.Throttles() == 0 {
		t.Fatal("never throttled")
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		if cap := m.LevelCap(k); cap < 2 {
			t.Fatalf("%s cap = %d, governor went below its min_level floor 2", k, cap)
		}
	}
}
