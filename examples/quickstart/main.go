// Quickstart: run a self-adaptive multithreaded application under HARS on
// the simulated big.LITTLE board and watch it settle onto an efficient
// system state.
//
// The flow mirrors the paper end to end:
//
//  1. profile the board's power with the microbenchmark and fit the linear
//     power models (the offline calibration of §5.1.1);
//  2. measure the application's maximum achievable heartbeat rate under the
//     Linux HMP scheduler at the maximum system state (the baseline);
//  3. set the performance target to half of that, ±5%;
//  4. attach the HARS-EI runtime manager and let it adapt.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	plat := hmp.Default()
	board := power.DefaultGroundTruth(plat)

	// 1. Offline power calibration.
	model, err := power.ProfileAndFit(plat, board, power.ProfileConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("power models fitted:", model)

	// 2. Baseline calibration run: GTS, everything at maximum.
	bench, _ := workload.ByShort("BO")
	calib := sim.New(plat, sim.Config{Power: board})
	calib.SetPlacer(gts.New(plat))
	app := calib.Spawn(bench.Name, bench.New(8), 10)
	calib.Run(30 * sim.Second)
	maxRate := app.HB.RateOver(10*sim.Second, calib.Now())
	fmt.Printf("baseline: %.2f heartbeats/s at %.2f W\n", maxRate, calib.AvgPowerW())

	// 3. Target: 50% of the maximum, ±5%.
	target := heartbeat.TargetAround(maxRate, 0.50, 0.05)
	fmt.Printf("target: %.2f (%.2f..%.2f) heartbeats/s\n", target.Avg, target.Min, target.Max)

	// 4. Managed run: HARS-EI adapts cores, frequencies and thread
	//    placement whenever the heartbeat rate leaves the band.
	m := sim.New(plat, sim.Config{Power: board})
	proc := m.Spawn(bench.Name, bench.New(8), 10)
	mgr := core.NewManager(m, proc, model, target, core.Config{Version: core.HARSEI})
	mgr.OnDecision = func(d core.Decision) {
		fmt.Printf("  t=%5.1fs adapt: %s -> %s (rate %.2f)\n",
			sim.Seconds(d.Time), d.From.Pretty(plat), d.To.Pretty(plat), d.Rate)
	}
	m.AddDaemon(mgr)
	m.Run(120 * sim.Second)

	rate := proc.HB.RateOver(60*sim.Second, m.Now())
	fmt.Printf("\nHARS-EI settled on %s\n", mgr.State().Pretty(plat))
	fmt.Printf("rate %.2f hb/s (norm perf %.2f), power %.2f W, manager overhead %.2f%%\n",
		rate, heartbeat.NormalizedPerf(target, rate), m.AvgPowerW(), m.OverheadUtil()*100)
	fmt.Printf("perf/watt vs baseline: %.1fx\n",
		(heartbeat.NormalizedPerf(target, rate)/m.AvgPowerW())/
			(1.0/calib.AvgPowerW()))
}
