// Command powerprof runs the paper's power-model calibration (§5.1.1): it
// sweeps the profiling microbenchmark over (cores × frequency × utilization)
// on the simulated board, fits the per-cluster per-frequency linear models
// P = α·(C_U·U_U) + β, and prints the coefficients, the goodness of fit,
// and optionally the raw profile points as CSV.
//
// Usage:
//
//	powerprof [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/stats"
)

func main() {
	csv := flag.Bool("csv", false, "also dump the raw profile points as CSV")
	out := flag.String("o", "", "write the fitted model as JSON to this file")
	flag.Parse()

	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	points := power.RunProfile(plat, gt, power.ProfileConfig{})
	model, err := power.FitLinearModel(plat, points)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tb := stats.Table{
		Title:  "Fitted power models: P = alpha*(C_U*U_U) + beta",
		Header: []string{"cluster", "freq (GHz)", "alpha (W)", "beta (W)", "R^2"},
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		spec := &plat.Clusters[k]
		for lv := 0; lv < spec.Levels(); lv++ {
			tb.AddRow(k.String(),
				stats.F(float64(spec.KHz(lv))/1e6, 1),
				stats.F(model.Alpha[k][lv], 3),
				stats.F(model.Beta[k][lv], 3),
				stats.F(model.R2[k][lv], 4))
		}
	}
	fmt.Print(tb.String())
	fmt.Printf("profiled %d configurations\n", len(points))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := model.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("model written to %s\n", *out)
	}

	if *csv {
		fmt.Println("\ncluster,freq_khz,cores,util,watts")
		for _, p := range points {
			fmt.Printf("%s,%d,%d,%.2f,%.4f\n",
				p.Cluster, plat.Clusters[p.Cluster].KHz(p.Level), p.Cores, p.Util, p.Watts)
		}
	}
}
