// Package sim is a deterministic discrete-time simulator of a big.LITTLE
// HMP machine. It substitutes for the paper's ODROID-XU3 testbed: it exposes
// exactly the observation and actuation surface HARS uses on real hardware —
// per-application heartbeats, per-thread CPU affinity (sched_setaffinity),
// per-cluster DVFS, and cluster power draw — while running entirely in
// process with no OS-thread control.
//
// The machine advances in fixed ticks (default 1 ms). Each tick the placer
// (an OS scheduler model: the mask balancer for HARS runs, the GTS model for
// baselines) places runnable threads on cores; each core divides its tick
// capacity equally among the threads on it; threads retire abstract work
// units at a rate of FreqScale × application-specific IPC factor per second;
// completed units invoke the owning program's callback, which hands out more
// work, blocks the thread, moves pipeline tokens, and emits heartbeats. A
// pluggable power model integrates per-cluster energy every tick, and
// daemons (runtime managers, sensors, schedulers) run at the end of each
// tick.
package sim

import (
	"fmt"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
)

// Time is simulated time in microseconds.
type Time = int64

// Convenient durations in simulated time.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated duration to floating-point seconds.
func Seconds(d Time) float64 { return float64(d) / float64(Second) }

// PowerModel computes the power drawn by one cluster during a tick.
// Implementations live in internal/power; the interface lives here so the
// simulator does not depend on any particular model.
type PowerModel interface {
	// ClusterPower returns the watts drawn by cluster k while running at
	// frequency level `level` with the given per-core busy fractions
	// (one entry per core of the cluster, each in [0, 1]).
	ClusterPower(k hmp.ClusterKind, level int, coreBusy []float64) float64
}

// Placer is the OS scheduler model: every tick it may migrate threads
// between cores (respecting affinity masks is the placer's job).
type Placer interface {
	Place(m *Machine)
}

// Daemon is a per-tick hook that runs after execution and power accounting:
// runtime managers, sensors, and load trackers are daemons.
type Daemon interface {
	Tick(m *Machine)
}

// Config carries machine construction parameters. The zero value selects
// sensible defaults.
type Config struct {
	TickLen Time // simulation tick, default 1 ms

	// MigrationPenaltySame and MigrationPenaltyCross are the stall a thread
	// pays after migrating within a cluster / across clusters (cold caches).
	// Defaults: 50 µs and 300 µs.
	MigrationPenaltySame  Time
	MigrationPenaltyCross Time

	// Power is the machine's power model; nil disables energy accounting.
	Power PowerModel

	// MaxUnitsPerTick bounds how many work units one thread may complete in
	// a single tick, a guard against zero-work programs. Default 10000.
	MaxUnitsPerTick int
}

type coreState struct {
	id      int
	cluster hmp.ClusterKind
	run     []*Thread // runnable threads placed here this tick (scratch)
	busy    float64   // cumulative busy µs (including charged overhead)
	stolen  Time      // pending manager overhead to steal from capacity
	tickUse float64   // µs of this tick spent busy (scratch for power model)
}

// Machine is the simulated HMP system.
type Machine struct {
	plat *hmp.Platform
	cfg  Config

	now     Time
	cores   []*coreState
	procs   []*Process
	threads []*Thread
	levels  [hmp.NumClusters]int

	placer  Placer
	daemons []Daemon
	timers  timerHeap

	energyJ        float64
	clusterEnergyJ [hmp.NumClusters]float64
	overhead       Time

	busyScratch [hmp.NumClusters][]float64
	ticks       int64
	tracer      *Tracer
}

// New creates a machine over the platform with both clusters at their
// maximum frequency level and the default mask-balancing placer.
func New(plat *hmp.Platform, cfg Config) *Machine {
	if cfg.TickLen <= 0 {
		cfg.TickLen = Millisecond
	}
	if cfg.MigrationPenaltySame <= 0 {
		cfg.MigrationPenaltySame = 50 * Microsecond
	}
	if cfg.MigrationPenaltyCross <= 0 {
		cfg.MigrationPenaltyCross = 300 * Microsecond
	}
	if cfg.MaxUnitsPerTick <= 0 {
		cfg.MaxUnitsPerTick = 10000
	}
	m := &Machine{plat: plat, cfg: cfg, placer: NewMaskBalancer()}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		m.levels[k] = plat.Clusters[k].MaxLevel()
		m.busyScratch[k] = make([]float64, plat.Clusters[k].Cores)
	}
	for cpu := 0; cpu < plat.TotalCores(); cpu++ {
		m.cores = append(m.cores, &coreState{id: cpu, cluster: plat.ClusterOf(cpu)})
	}
	return m
}

// Platform returns the machine's platform description.
func (m *Machine) Platform() *hmp.Platform { return m.plat }

// Now returns the current simulated time.
func (m *Machine) Now() Time { return m.now }

// TickLen returns the machine's tick length.
func (m *Machine) TickLen() Time { return m.cfg.TickLen }

// SetPlacer installs the OS scheduler model.
func (m *Machine) SetPlacer(p Placer) { m.placer = p }

// AddDaemon registers a per-tick hook. Daemons run in registration order.
func (m *Machine) AddDaemon(d Daemon) { m.daemons = append(m.daemons, d) }

// SetLevel sets the DVFS frequency level of cluster k (clamped to the grid).
// This is the simulated cpufreq actuation knob; per-cluster DVFS means every
// core of the cluster changes together, exactly the constraint MP-HARS's
// interference-aware adaptation exists to manage.
func (m *Machine) SetLevel(k hmp.ClusterKind, level int) {
	level = m.plat.Clusters[k].ClampLevel(level)
	if m.tracer != nil && level != m.levels[k] {
		m.tracer.add(Event{
			T: m.now, Kind: EvDVFS, Cluster: k, Level: level,
			KHz: m.plat.Clusters[k].KHz(level),
		})
	}
	m.levels[k] = level
}

// Level returns the current DVFS level of cluster k.
func (m *Machine) Level(k hmp.ClusterKind) int { return m.levels[k] }

// Procs returns the processes spawned on the machine.
func (m *Machine) Procs() []*Process { return m.procs }

// Threads returns every thread on the machine in spawn order.
func (m *Machine) Threads() []*Thread { return m.threads }

// Spawn creates a process running the program, with all threads initially
// blocked and affine to every CPU, then calls the program's Start hook (which
// typically hands out the first units of work).
func (m *Machine) Spawn(name string, prog Program, hbWindow int) *Process {
	p := &Process{
		ID:   len(m.procs),
		Name: name,
		m:    m,
		prog: prog,
		HB:   heartbeat.NewMonitor(name, hbWindow),
	}
	n := prog.NumThreads()
	if n <= 0 {
		panic(fmt.Sprintf("sim: program %q declares %d threads", name, n))
	}
	all := hmp.AllCPUs(m.plat)
	for i := 0; i < n; i++ {
		t := &Thread{
			Global:   len(m.threads),
			Local:    i,
			Proc:     p,
			affinity: all,
			core:     -1,
			blocked:  true,
		}
		p.Threads = append(p.Threads, t)
		m.threads = append(m.threads, t)
	}
	m.procs = append(m.procs, p)
	prog.Start(p)
	return p
}

// Run advances the simulation by d simulated time.
func (m *Machine) Run(d Time) { m.RunUntil(m.now + d) }

// RunUntil advances the simulation until the clock reaches t.
func (m *Machine) RunUntil(t Time) {
	for m.now < t {
		m.Step()
	}
}

// Step advances the simulation by one tick.
func (m *Machine) Step() {
	m.fireTimers()
	if m.placer != nil {
		m.placer.Place(m)
	}
	m.execute()
	m.integratePower()
	for _, d := range m.daemons {
		d.Tick(m)
	}
	m.now += m.cfg.TickLen
	m.ticks++
}

func (m *Machine) execute() {
	tick := m.cfg.TickLen
	for _, c := range m.cores {
		c.run = c.run[:0]
		c.tickUse = 0
	}
	for _, t := range m.threads {
		t.ranLastTick = false
		if !t.blocked && t.core >= 0 {
			c := m.cores[t.core]
			c.run = append(c.run, t)
		}
	}
	for _, c := range m.cores {
		avail := float64(tick)
		// Manager overhead charged to this core steals capacity first.
		if c.stolen > 0 {
			steal := c.stolen
			if steal > tick {
				steal = tick
			}
			c.stolen -= steal
			avail -= float64(steal)
			c.tickUse += float64(steal)
			c.busy += float64(steal)
		}
		n := len(c.run)
		if n == 0 || avail <= 0 {
			continue
		}
		share := avail / float64(n)
		speedBase := m.plat.FreqScale(c.cluster, m.levels[c.cluster])
		for _, t := range c.run {
			used := m.runThread(t, c, share, speedBase)
			c.tickUse += used
			c.busy += used
			if used > 0 {
				t.ranLastTick = true
			}
		}
	}
}

// runThread gives thread t a budget of µs on core c and returns how much of
// it the thread actually consumed.
func (m *Machine) runThread(t *Thread, c *coreState, budget, speedBase float64) float64 {
	used := 0.0
	// Pay any pending migration penalty (stall burns CPU time).
	if t.penalty > 0 {
		pay := float64(t.penalty)
		if pay > budget {
			pay = budget
		}
		t.penalty -= Time(pay)
		budget -= pay
		used += pay
	}
	speed := speedBase * t.Proc.prog.SpeedFactor(t.Local, c.cluster) * m.cacheFactor(t, c.cluster)
	if speed <= 0 {
		return used
	}
	for completions := 0; budget > 0 && !t.blocked; {
		needUS := t.remaining / speed * 1e6
		if needUS > budget {
			done := speed * budget / 1e6
			t.remaining -= done
			t.workDone += done
			used += budget
			return used
		}
		// Unit completes within the budget.
		budget -= needUS
		used += needUS
		t.workDone += t.remaining
		t.remaining = 0
		completions++
		if completions > m.cfg.MaxUnitsPerTick {
			panic(fmt.Sprintf("sim: thread %s/%d completed >%d units in one tick; zero-size work units?",
				t.Proc.Name, t.Local, m.cfg.MaxUnitsPerTick))
		}
		t.blocked = true // program must hand out work to keep running
		t.Proc.prog.UnitDone(t.Proc, t.Local)
	}
	return used
}

// cacheFactor returns the constructive cache-sharing multiplier for thread t
// running on cluster k: programs that declare a cache bonus run faster when
// an adjacent sibling thread (ID ± 1) is placed on the same cluster. This is
// the effect the paper's chunk-based scheduler exploits.
func (m *Machine) cacheFactor(t *Thread, k hmp.ClusterKind) float64 {
	cs, ok := t.Proc.prog.(CacheSensitive)
	if !ok {
		return 1
	}
	bonus := cs.CacheBonus()
	if bonus == 0 {
		return 1
	}
	for _, d := range [2]int{-1, 1} {
		n := t.Local + d
		if n < 0 || n >= len(t.Proc.Threads) {
			continue
		}
		nb := t.Proc.Threads[n]
		if nb.core >= 0 && m.plat.ClusterOf(nb.core) == k {
			return 1 + bonus
		}
	}
	return 1
}

func (m *Machine) integratePower() {
	if m.cfg.Power == nil {
		return
	}
	tickSec := Seconds(m.cfg.TickLen)
	tickUS := float64(m.cfg.TickLen)
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		busy := m.busyScratch[k]
		for i := range busy {
			busy[i] = 0
		}
		first := m.plat.FirstCPU(k)
		for i := 0; i < m.plat.Clusters[k].Cores; i++ {
			busy[i] = m.cores[first+i].tickUse / tickUS
		}
		p := m.cfg.Power.ClusterPower(k, m.levels[k], busy)
		e := p * tickSec
		m.clusterEnergyJ[k] += e
		m.energyJ += e
	}
}

// Migrate places thread t on the given CPU, applying a migration stall if
// the core actually changes. Placers and runtime managers call this.
func (m *Machine) Migrate(t *Thread, cpu int) {
	if cpu == t.core {
		return
	}
	if cpu < 0 || cpu >= len(m.cores) {
		panic(fmt.Sprintf("sim: migrate to invalid cpu %d", cpu))
	}
	if t.core >= 0 {
		if m.plat.ClusterOf(t.core) != m.plat.ClusterOf(cpu) {
			t.penalty += m.cfg.MigrationPenaltyCross
		} else {
			t.penalty += m.cfg.MigrationPenaltySame
		}
		t.migrations++
	}
	if m.tracer != nil {
		m.tracer.add(Event{
			T: m.now, Kind: EvMigrate, Proc: t.Proc.Name, Thread: t.Local,
			From: t.core, To: cpu,
		})
	}
	t.core = cpu
}

// ChargeOverhead accounts d µs of runtime-manager CPU time against the given
// CPU: the time is stolen from the core's capacity over the following ticks
// and added to the machine-wide overhead counter (the paper's Figure 5.3(b)
// "CPU utilization" of HARS).
func (m *Machine) ChargeOverhead(cpu int, d Time) {
	if d <= 0 {
		return
	}
	if cpu < 0 || cpu >= len(m.cores) {
		cpu = 0
	}
	m.cores[cpu].stolen += d
	m.overhead += d
}

// Overhead returns the total manager CPU time charged so far.
func (m *Machine) Overhead() Time { return m.overhead }

// OverheadUtil returns charged manager CPU time as a fraction of elapsed
// time on one core — the paper's runtime-overhead metric.
func (m *Machine) OverheadUtil() float64 {
	if m.now == 0 {
		return 0
	}
	return float64(m.overhead) / float64(m.now)
}

// EnergyJ returns total energy drawn since construction, in joules.
func (m *Machine) EnergyJ() float64 { return m.energyJ }

// ClusterEnergyJ returns the energy drawn by cluster k, in joules.
func (m *Machine) ClusterEnergyJ(k hmp.ClusterKind) float64 { return m.clusterEnergyJ[k] }

// AvgPowerW returns average power since t=0 in watts.
func (m *Machine) AvgPowerW() float64 {
	if m.now == 0 {
		return 0
	}
	return m.energyJ / Seconds(m.now)
}

// BusyTime returns the cumulative busy time of the given CPU.
func (m *Machine) BusyTime(cpu int) Time { return Time(m.cores[cpu].busy) }

// Util returns the lifetime utilization of the given CPU in [0, 1].
func (m *Machine) Util(cpu int) float64 {
	if m.now == 0 {
		return 0
	}
	return m.cores[cpu].busy / float64(m.now)
}

// RunQueueLen returns how many runnable threads are currently placed on cpu.
// (Recomputed on demand; placers use it for balancing decisions.)
func (m *Machine) RunQueueLen(cpu int) int {
	n := 0
	for _, t := range m.threads {
		if !t.blocked && t.core == cpu {
			n++
		}
	}
	return n
}
