// Pipeline scheduling: reproduce the paper's ferret observation (§3.1.3 and
// Figure 3.2). A pipeline application's stages are contiguous in thread-ID
// order, so HARS's chunk-based scheduler can place whole stages on the
// little cluster and bottleneck the pipeline; the interleaving scheduler
// gives every stage a fair share of each core type.
//
// This example pins a fixed system state (2 big + 4 little cores) and
// compares the two schedulers' throughput directly.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hmp"
	"repro/internal/sim"
	"repro/internal/workload"
)

func run(kind core.SchedulerKind) (itemsPerSec float64, threadsOnLittle int) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	bench, _ := workload.ByShort("FE")
	proc := m.Spawn("ferret", bench.New(8), 10)

	// Fixed allocation: 2 big cores at 1.2 GHz, 4 little cores at 1.1 GHz.
	st := hmp.State{BigCores: 2, LittleCores: 4, BigLevel: 4, LittleLevel: 3}
	m.SetLevel(hmp.Big, st.BigLevel)
	m.SetLevel(hmp.Little, st.LittleLevel)

	// The performance estimator decides T_B/T_L (Table 3.1); the scheduler
	// decides WHICH threads go where.
	est := core.PerfEstimator{Plat: plat, T: len(proc.Threads)}
	ev := est.Evaluate(st)
	core.ApplySchedule(proc, ev.Assignment, kind,
		core.DefaultCores(plat, hmp.Big, st.BigCores),
		core.DefaultCores(plat, hmp.Little, st.LittleCores))

	for _, t := range proc.Threads {
		if t.Affinity().Intersect(hmp.ClusterMask(plat, hmp.Little)) != 0 {
			threadsOnLittle++
		}
	}
	m.Run(60 * sim.Second)
	return proc.HB.RateOver(10*sim.Second, m.Now()), threadsOnLittle
}

func main() {
	bench, _ := workload.ByShort("FE")
	pl := bench.New(8).(*workload.Pipeline)
	fmt.Printf("ferret: %d-stage pipeline, %d threads, stage work %v\n",
		pl.Stages(), pl.NumThreads(), pl.StageWork)

	chunkRate, chunkLittle := run(core.Chunk)
	interRate, interLittle := run(core.Interleaved)

	fmt.Printf("\nchunk-based scheduler:  %.2f items/s (%d threads affine to little)\n", chunkRate, chunkLittle)
	fmt.Printf("interleaving scheduler: %.2f items/s (%d threads affine to little)\n", interRate, interLittle)
	fmt.Printf("interleaving speedup:   %.2fx\n", interRate/chunkRate)
	fmt.Println("\nthe chunk scheduler parks whole pipeline stages on the little")
	fmt.Println("cluster; interleaving gives each stage a share of each core type.")
}
