package live

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
)

// fakeClock is a manual clock for deterministic control-loop tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func testCost(p *hmp.Platform) *power.LinearModel {
	lm := &power.LinearModel{}
	coeff := [hmp.NumClusters]float64{hmp.Little: 0.3, hmp.Big: 1.2}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		n := p.Clusters[k].Levels()
		lm.Alpha[k] = make([]float64, n)
		lm.Beta[k] = make([]float64, n)
		lm.R2[k] = make([]float64, n)
		for lv := 0; lv < n; lv++ {
			s := p.FreqScale(k, lv)
			lm.Alpha[k][lv] = coeff[k] * s * s
			lm.Beta[k][lv] = 0.1 * s
		}
	}
	return lm
}

func testConfig(clk Clock) Config {
	p := hmp.Default()
	return Config{
		Space:  p,
		Cost:   testCost(p),
		Target: heartbeat.Target{Min: 9, Avg: 10, Max: 11},
		Units:  8,
		Clock:  clk,
	}
}

// beatAtRate feeds beats at the given rate for d of fake time.
func beatAtRate(c *Controller, clk *fakeClock, rate float64, d time.Duration) {
	interval := time.Duration(float64(time.Second) / rate)
	for elapsed := time.Duration(0); elapsed < d; elapsed += interval {
		clk.advance(interval)
		c.Beat()
	}
}

func TestControllerValidation(t *testing.T) {
	clk := &fakeClock{}
	good := testConfig(clk)
	act := ActuatorFunc(func(hmp.State) {})

	if _, err := NewController(good, nil); err == nil {
		t.Error("nil actuator should fail")
	}
	bad := good
	bad.Space = nil
	if _, err := NewController(bad, act); err == nil {
		t.Error("nil space should fail")
	}
	bad = good
	bad.Cost = nil
	if _, err := NewController(bad, act); err == nil {
		t.Error("nil cost should fail")
	}
	bad = good
	bad.Target = heartbeat.Target{}
	if _, err := NewController(bad, act); err == nil {
		t.Error("invalid target should fail")
	}
	bad = good
	bad.Units = 0
	if _, err := NewController(bad, act); err == nil {
		t.Error("zero units should fail")
	}
}

func TestInitialStateApplied(t *testing.T) {
	clk := &fakeClock{}
	var applied []hmp.State
	cfg := testConfig(clk)
	init := hmp.State{BigCores: 1, LittleCores: 1}
	cfg.InitState = &init
	c, err := NewController(cfg, ActuatorFunc(func(st hmp.State) { applied = append(applied, st) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0] != init {
		t.Fatalf("initial actuation = %v, want %v", applied, init)
	}
	if c.State() != init {
		t.Fatal("State() should report the init state")
	}
}

func TestControllerShrinksWhenOverperforming(t *testing.T) {
	clk := &fakeClock{}
	var last hmp.State
	cfg := testConfig(clk)
	c, err := NewController(cfg, ActuatorFunc(func(st hmp.State) { last = st }))
	if err != nil {
		t.Fatal(err)
	}
	max := hmp.MaxState(cfg.Space)
	if last != max {
		t.Fatalf("should start at max, got %v", last)
	}
	// 30 beats/s against a target band of 9..11: massively overperforming.
	beatAtRate(c, clk, 30, 2*time.Second)
	if !c.Poll() {
		t.Fatal("Poll should adapt")
	}
	if last == max {
		t.Fatal("actuator did not receive a new state")
	}
	// The chosen state must predict a rate still above the target minimum
	// but with a smaller estimated cost.
	if c.Searches() != 1 {
		t.Fatalf("searches = %d", c.Searches())
	}
}

func TestControllerGrowsWhenUnderperforming(t *testing.T) {
	clk := &fakeClock{}
	var last hmp.State
	cfg := testConfig(clk)
	init := hmp.State{BigCores: 0, LittleCores: 1, BigLevel: 0, LittleLevel: 0}
	cfg.InitState = &init
	cfg.Version = core.HARSE
	c, err := NewController(cfg, ActuatorFunc(func(st hmp.State) { last = st }))
	if err != nil {
		t.Fatal(err)
	}
	beatAtRate(c, clk, 1, 15*time.Second) // far below Min = 9
	if !c.Poll() {
		t.Fatal("Poll should adapt upward")
	}
	if last.PerfScore(cfg.Space, cfg.Space.R0()) <= init.PerfScore(cfg.Space, cfg.Space.R0()) {
		t.Fatalf("state did not grow: %v", last)
	}
}

func TestControllerHoldsInBand(t *testing.T) {
	clk := &fakeClock{}
	calls := 0
	cfg := testConfig(clk)
	c, err := NewController(cfg, ActuatorFunc(func(hmp.State) { calls++ }))
	if err != nil {
		t.Fatal(err)
	}
	beatAtRate(c, clk, 10, 3*time.Second) // dead on target
	if c.Poll() {
		t.Fatal("Poll must not adapt inside the band")
	}
	if calls != 1 { // only the initial actuation
		t.Fatalf("actuator calls = %d, want 1", calls)
	}
}

func TestAdaptPeriodHonoured(t *testing.T) {
	clk := &fakeClock{}
	cfg := testConfig(clk)
	cfg.AdaptEvery = 50
	c, err := NewController(cfg, ActuatorFunc(func(hmp.State) {}))
	if err != nil {
		t.Fatal(err)
	}
	beatAtRate(c, clk, 30, 1*time.Second) // 30 beats < 50
	if c.Poll() {
		t.Fatal("Poll should wait for the adaptation period")
	}
	beatAtRate(c, clk, 30, 1*time.Second) // now 60 beats
	if !c.Poll() {
		t.Fatal("Poll should adapt after the period")
	}
}

func TestOnDecisionObserved(t *testing.T) {
	clk := &fakeClock{}
	cfg := testConfig(clk)
	c, err := NewController(cfg, ActuatorFunc(func(hmp.State) {}))
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	c.OnDecision = func(from, to hmp.State, rate float64) {
		seen++
		if from == to || rate <= 0 {
			t.Errorf("bad decision %v -> %v (%v)", from, to, rate)
		}
	}
	beatAtRate(c, clk, 30, 2*time.Second)
	c.Poll()
	if seen != 1 {
		t.Fatalf("OnDecision fired %d times, want 1", seen)
	}
}

func TestPollWithoutBeats(t *testing.T) {
	clk := &fakeClock{}
	c, err := NewController(testConfig(clk), ActuatorFunc(func(hmp.State) {}))
	if err != nil {
		t.Fatal(err)
	}
	if c.Poll() {
		t.Fatal("Poll with no beats should be a no-op")
	}
	if c.Rate() != 0 {
		t.Fatal("Rate with no beats should be 0")
	}
}

func TestConcurrentBeats(t *testing.T) {
	// Beat must be safe from many goroutines (run with -race to verify).
	clk := &fakeClock{}
	c, err := NewController(testConfig(clk), ActuatorFunc(func(hmp.State) {}))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				clk.advance(time.Millisecond)
				c.Beat()
				c.Rate()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			c.Poll()
		}
		close(done)
	}()
	wg.Wait()
	<-done
}

func TestRunLoopStopsOnCancel(t *testing.T) {
	clk := &fakeClock{}
	c, err := NewController(testConfig(clk), ActuatorFunc(func(hmp.State) {}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	stopped := make(chan struct{})
	go func() {
		c.Run(ctx, time.Millisecond)
		close(stopped)
	}()
	cancel()
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}
