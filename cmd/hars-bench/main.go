// Command hars-bench runs the repository's tracked hot-path benchmarks
// (internal/bench) in-process via testing.Benchmark and writes the results
// as a JSON trajectory file (BENCH_<n>.json at the repository root, one per
// PR). Compare files across revisions to see the perf trend.
//
// Usage:
//
//	hars-bench [-out BENCH_1.json] [-filter regexp] [-prev BENCH_8.json]
//	           [-quiescent-ratio-floor 10] [-scale-ratio-floor 30]
//	           [-alloc-ceiling FleetQuiescent=64] ...
//
// -prev prints per-benchmark deltas (ns/op and allocs/op) against a previous
// trajectory file, so a PR's before/after story is one flag away.
//
// -quiescent-ratio-floor and -scale-ratio-floor guard the event-driven
// core's reason to exist: after the run they compute the lockstep/event
// speedup (FleetQuiescentLockstep / FleetQuiescent and FleetScale1kLockstep
// / FleetScale1k respectively) and exit non-zero when it falls below the
// floor. CI runs both, so a regression that quietly drags the event core
// back toward lockstep cost fails the build.
//
// -alloc-ceiling (repeatable, name=N) pins a benchmark's steady-state
// allocation count: the run fails when the measured allocs/op exceed the
// ceiling. CI pins FleetQuiescent, so allocations creeping back into the
// quiescent hot loop fail the build rather than eroding the alloc-free
// steady state one innocent-looking change at a time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// File is the trajectory file schema.
type File struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// ceilings is the repeatable -alloc-ceiling flag: benchmark name → maximum
// allowed allocs/op.
type ceilings map[string]int64

func (c ceilings) String() string {
	parts := make([]string, 0, len(c))
	for name, n := range c {
		parts = append(parts, fmt.Sprintf("%s=%d", name, n))
	}
	return strings.Join(parts, ",")
}

func (c ceilings) Set(v string) error {
	name, limit, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=N, got %q", v)
	}
	n, err := strconv.ParseInt(limit, 10, 64)
	if err != nil || n < 0 {
		return fmt.Errorf("bad ceiling %q", limit)
	}
	c[name] = n
	return nil
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path (empty = stdout only)")
	filter := flag.String("filter", "", "regexp selecting benchmark names (empty = all)")
	prev := flag.String("prev", "", "previous trajectory file to print ns/op and allocs/op deltas against")
	quiescentFloor := flag.Float64("quiescent-ratio-floor", 0,
		"fail unless FleetQuiescentLockstep/FleetQuiescent >= this speedup (0 = no check)")
	scaleFloor := flag.Float64("scale-ratio-floor", 0,
		"fail unless FleetScale1kLockstep/FleetScale1k >= this speedup (0 = no check)")
	allocCeilings := ceilings{}
	flag.Var(allocCeilings, "alloc-ceiling",
		"fail when a benchmark exceeds its allocs/op ceiling, as name=N (repeatable)")
	flag.Parse()

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintf(os.Stderr, "bad -filter: %v\n", err)
			os.Exit(2)
		}
	}
	var prevFile *File
	if *prev != "" {
		data, err := os.ReadFile(*prev)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -prev: %v\n", err)
			os.Exit(2)
		}
		prevFile = &File{}
		if err := json.Unmarshal(data, prevFile); err != nil {
			fmt.Fprintf(os.Stderr, "bad -prev %s: %v\n", *prev, err)
			os.Exit(2)
		}
	}

	f := File{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: "1s", // testing.Benchmark's built-in target
	}
	for _, c := range bench.Cases() {
		if re != nil && !re.MatchString(c.Name) {
			continue
		}
		r := testing.Benchmark(c.F)
		res := Result{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		f.Results = append(f.Results, res)
		fmt.Printf("%-22s %12d iters %14.1f ns/op %8d B/op %6d allocs/op%s\n",
			res.Name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp,
			deltaSuffix(prevFile, res))
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		os.Stdout.Write(data)
	}

	failed := false
	if *quiescentFloor > 0 {
		if err := checkRatio(f.Results, "FleetQuiescent", "FleetQuiescentLockstep", "quiescent", *quiescentFloor); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if *scaleFloor > 0 {
		if err := checkRatio(f.Results, "FleetScale1k", "FleetScale1kLockstep", "1k-scale", *scaleFloor); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if err := checkAllocCeilings(f.Results, allocCeilings); err != nil {
		fmt.Fprintln(os.Stderr, err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// deltaSuffix formats the change against the previous trajectory file for
// one benchmark (empty without -prev or when the file lacks the benchmark).
func deltaSuffix(prev *File, res Result) string {
	if prev == nil {
		return ""
	}
	for _, p := range prev.Results {
		if p.Name != res.Name || p.NsPerOp == 0 {
			continue
		}
		return fmt.Sprintf("   [vs prev: %+.1f%% ns/op, %+d allocs/op]",
			(res.NsPerOp-p.NsPerOp)/p.NsPerOp*100, res.AllocsPerOp-p.AllocsPerOp)
	}
	return "   [vs prev: new]"
}

// checkRatio enforces a lockstep/event speedup floor over the measured
// results. Both benchmarks must be present (narrow -filter expressions that
// drop one are a configuration error, not a pass).
func checkRatio(results []Result, eventName, lockstepName, label string, floor float64) error {
	var event, lockstep float64
	for _, r := range results {
		switch r.Name {
		case eventName:
			event = r.NsPerOp
		case lockstepName:
			lockstep = r.NsPerOp
		}
	}
	if event == 0 || lockstep == 0 {
		return fmt.Errorf("%s-ratio check needs both %s and %s in the run (have event=%v lockstep=%v ns/op)",
			label, eventName, lockstepName, event, lockstep)
	}
	ratio := lockstep / event
	fmt.Printf("%s speedup: %.1fx (lockstep %.0f ns/op / event %.0f ns/op), floor %.1fx\n",
		label, ratio, lockstep, event, floor)
	if ratio < floor {
		return fmt.Errorf("%s event-core speedup %.1fx below the %.1fx floor: the event-driven core regressed toward lockstep cost", label, ratio, floor)
	}
	return nil
}

// checkAllocCeilings enforces the pinned allocs/op ceilings. A ceiling
// naming a benchmark absent from the run is a configuration error, not a
// pass.
func checkAllocCeilings(results []Result, limits ceilings) error {
	for name, limit := range limits {
		found := false
		for _, r := range results {
			if r.Name != name {
				continue
			}
			found = true
			if r.AllocsPerOp > limit {
				return fmt.Errorf("%s allocated %d allocs/op, above the pinned ceiling of %d: allocations crept back into the steady state",
					name, r.AllocsPerOp, limit)
			}
			fmt.Printf("alloc ceiling: %s %d allocs/op <= %d\n", name, r.AllocsPerOp, limit)
		}
		if !found {
			return fmt.Errorf("alloc-ceiling names %s, which is not in the run", name)
		}
	}
	return nil
}
