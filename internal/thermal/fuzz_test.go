package thermal_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/thermal"
)

// FuzzDecodeSpec fuzzes the thermal configuration decoder: arbitrary input
// must never panic, and any spec the decoder accepts must survive an
// encode/decode round trip unchanged and still build a governor (decode
// validation and governor validation must agree).
func FuzzDecodeSpec(f *testing.F) {
	f.Add([]byte(`{"enabled":true}`))
	f.Add([]byte(`{"enabled":true,"ambient_c":20,"trip_c":85,"throttle_c":78,"release_c":70,"min_level":1}`))
	f.Add([]byte(`{"enabled":false,"big":{"capacitance_j_per_k":2.5,"resistance_k_per_w":7},"little":{"capacitance_j_per_k":1,"resistance_k_per_w":12}}`))
	f.Add([]byte(`{"enabled":true,"coupling_w_per_k":0.08,"period_ticks":50,"sample_every_ms":250,"init_c":40}`))
	f.Add([]byte(`{"trip_c":-5}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := thermal.DecodeSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		again, err := thermal.DecodeSpec(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode of encoded spec failed: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip changed the spec:\nfirst:  %+v\nsecond: %+v", s, again)
		}
		if _, err := thermal.NewGovernor(*s); err != nil {
			t.Fatalf("validated spec rejected by NewGovernor: %v", err)
		}
	})
}
