package workload

import (
	"math"

	"repro/internal/sim"
)

// Extended returns workload models beyond the six the paper evaluates —
// the rest of the PARSEC suite's common picks, with their published
// characteristics. They are not part of the reproduced figures (All()
// stays exactly the paper's set) but let downstream users stress HARS on a
// wider spectrum: the ExtendedSuite experiment and the examples use them.
func Extended() []Benchmark {
	return []Benchmark{
		{
			Name:  "canneal",
			Short: "CA",
			// Cache-thrashing simulated annealing: strongly memory-bound,
			// so big cores barely help (r ≈ 1.1) and co-located neighbours
			// fight instead of sharing (negative locality modelled as no
			// bonus); anneal steps shrink over time.
			New: func(n int) sim.Program {
				return &DataParallel{
					AppName:   "canneal",
					Threads:   n,
					BigFactor: 1.1,
					Bonus:     0,
					Unit: func(iter int64) float64 {
						return 0.70 * (1 + 0.5*math.Exp(-float64(iter)/120))
					},
				}
			},
		},
		{
			Name:  "dedup",
			Short: "DE",
			// 5-stage deduplication pipeline (fragment, chunk, hash,
			// compress, write): compress dominates; serial ends.
			New: func(n int) sim.Program {
				return &Pipeline{
					AppName:      "dedup",
					StageThreads: []int{1, n, n, n, 1},
					StageWork:    []float64{0.02, 0.10, 0.14, 0.34, 0.04},
					QueueCap:     8,
					BigFactor:    1.45,
				}
			},
		},
		{
			Name:  "streamcluster",
			Short: "SC",
			// Online clustering: long barrier phases with abrupt work jumps
			// when the cluster-centre count changes — a stress test for
			// workload prediction.
			New: func(n int) sim.Program {
				return &DataParallel{
					AppName:   "streamcluster",
					Threads:   n,
					BigFactor: 1.4,
					Bonus:     0.05,
					Unit: func(iter int64) float64 {
						if (iter/25)%2 == 0 {
							return 0.45
						}
						return 1.05
					},
				}
			},
		},
		{
			Name:  "x264",
			Short: "X2",
			// Video encoding: frame pipeline with a heavy motion-estimation
			// stage and strong frame-to-frame variation (I/P/B frames).
			New: func(n int) sim.Program {
				return &Pipeline{
					AppName:      "x264",
					StageThreads: []int{1, n, n, 1},
					StageWork:    []float64{0.03, 0.38, 0.16, 0.03},
					QueueCap:     6,
					BigFactor:    1.5,
					Bonus:        0.05,
				}
			},
		},
	}
}

// AllExtended returns the paper's six benchmarks followed by the extended
// catalog.
func AllExtended() []Benchmark {
	return append(All(), Extended()...)
}

// ByShortExtended looks a benchmark up across both catalogs.
func ByShortExtended(short string) (Benchmark, bool) {
	if b, ok := ByShort(short); ok {
		return b, true
	}
	for _, b := range Extended() {
		if b.Short == short {
			return b, true
		}
	}
	return Benchmark{}, false
}
