// Package scenario is a declarative, deterministic timed-event engine for
// dynamic-condition simulations: it drives a sim.Machine and its HARS /
// MP-HARS runtime managers through scripted runs in which applications
// arrive and depart at arbitrary ticks, performance targets and workload
// phases shift, cores go offline and come back (hotplug), and cluster
// frequencies get capped — either by scripted dvfs_cap events or by the
// closed thermal loop of package thermal (an RC temperature model plus a
// governor daemon deriving the ceilings from simulated heat).
//
// The paper evaluates HARS only on static runs — a fixed application set
// started at t = 0 on a fixed machine. This package is how the repository
// tests everything the paper does not: the managers' reaction paths when
// the world changes mid-run.
//
// # Scenario format
//
// A scenario is a JSON document (see Decode/Encode):
//
//	{
//	  "name": "example",
//	  "seed": 7,
//	  "manager": "mphars-i",
//	  "duration_ms": 20000,
//	  "sample_every_ms": 100,
//	  "adapt_every": 10,
//	  "apps": [
//	    {"name": "sw0", "bench": "SW", "threads": 8, "start_ms": 0,
//	     "stop_ms": 15000, "target_frac": 0.5, "init_big": 2, "init_little": 2},
//	    {"name": "fe0", "bench": "FE", "threads": 4, "start_ms": 5000,
//	     "target": {"min": 4.5, "avg": 5.0, "max": 5.5}}
//	  ],
//	  "events": [
//	    {"at_ms": 4000, "kind": "hotplug", "cpu": 7, "online": false},
//	    {"at_ms": 6000, "kind": "dvfs_cap", "cluster": "big", "max_level": 4},
//	    {"at_ms": 8000, "kind": "target", "app": "sw0", "frac": 0.7},
//	    {"at_ms": 9000, "kind": "phase", "app": "sw0", "scale": 1.5,
//	     "every_ms": 2000, "repeat": 3},
//	    {"at_ms": 12000, "kind": "hotplug", "cpu": 7, "online": true}
//	  ],
//	  "thermal": {"enabled": true, "trip_c": 75, "release_c": 60,
//	              "big": {"capacitance_j_per_k": 1, "resistance_k_per_w": 10}}
//	}
//
// Fields:
//
//   - manager: "none" (unmanaged, mask-balancer placement), "gts"
//     (unmanaged, Linux HMP GTS placement), "hars-i", "hars-e", "hars-ei"
//     (one single-application HARS manager per application), "mphars-i" or
//     "mphars-e" (one shared MP-HARS manager with resource partitioning).
//   - apps: start_ms/stop_ms are arrival and departure times (stop_ms 0 =
//     runs to the end). The performance target is either an explicit
//     {min, avg, max} band or target_frac, a fraction of the benchmark's
//     measured maximum rate (±5% band). init_big/init_little are the
//     MP-HARS initial core allocation (default 1+1).
//   - events: "hotplug" toggles one CPU (online is required); "dvfs_cap"
//     installs a cluster frequency ceiling (max_level indexes the OPP grid;
//     restore with the grid's top level); "target" re-targets one app
//     (frac or explicit target); "phase" scales the app's future work units
//     by scale (> 0), a workload phase change. Any event may repeat: with
//     every_ms > 0 it fires again every every_ms milliseconds until the run
//     ends or repeat firings have happened (repeat 0 = until the end); a
//     repeating event behaves exactly like its occurrences written out by
//     hand. Validation bounds the total expansion (100,000 occurrences).
//   - thermal: the closed-loop block (see thermal.Spec for every field and
//     default). With enabled=true the engine attaches an RC temperature
//     model fed by the machine's per-tick cluster power and a hysteretic
//     governor daemon that lowers SetLevelCap as a cluster approaches
//     trip_c and releases the ceilings as it cools below release_c; the
//     trace grows "h" sample lines (temperatures, caps, actuation counts)
//     and Result.Thermal carries the governor. Scripted dvfs_cap events
//     are rejected while the governor is enabled — it owns the ceilings.
//     With enabled=false (or no block) the run is bit-for-bit the
//     pre-thermal one. In a multi-node scenario the block is the
//     fleet-wide default; nodes override it with their own.
//   - affinity (per app): an explicit CPU list pinning the app's threads
//     for the whole run — enforced by the placer on every placement and
//     hotplug re-placement. Unmanaged scenarios only ("none", "gts"): the
//     HARS / MP-HARS managers own their applications' masks.
//
// # Multi-node (fleet) scenarios
//
// A scenario may declare a whole fleet of machines instead of one:
//
//	{
//	  "name": "fleet",
//	  "manager": "mphars-i",
//	  "duration_ms": 20000,
//	  "placement": "coolest",
//	  "migrate_every_ms": 250,
//	  "nodes": [
//	    {"name": "n0", "thermal": {"enabled": true}},
//	    {"name": "n1", "manager": "hars-e", "adapt_every": 2},
//	    {"name": "n2", "platform": {"Clusters": [...], "BaseKHz": 800000}}
//	  ],
//	  "apps": [
//	    {"name": "sw0", "bench": "SW", "threads": 8},
//	    {"name": "fe0", "bench": "FE", "threads": 4, "node": "n1"}
//	  ],
//	  "events": [
//	    {"at_ms": 4000, "kind": "hotplug", "node": "n0", "cpu": 7, "online": false},
//	    {"at_ms": 6000, "kind": "dvfs_cap", "node": "n2", "cluster": "big", "max_level": 4}
//	  ]
//	}
//
// Each node is one sim.Node — its own platform description (inline
// hmp.ReadPlatform JSON; omitted = the default board), power model,
// manager ("manager"/"adapt_every"/"overhead_cpu" default to the
// scenario-level values), and thermal loop — and all nodes advance in
// lockstep on one deterministic clock (internal/fleet). Arrivals are
// admitted to a node by the placement policy ("least-loaded" default,
// "big-first" = most free big-core capacity, "coolest" = lowest modeled
// temperature) or by their "node" pin; platform events (hotplug, dvfs_cap)
// must name the node they act on, while app events address the app
// wherever it runs.
//
// Admission control: an arrival finding no free core partition on any
// admissible node queues FIFO fleet-wide (Result.QueuedArrivals) and is
// admitted the tick a partition frees up — departure, hotplug, or an
// adaptation shrinking a neighbour; arrivals still waiting when the run
// (or their departure) ends count as dropped (Result.DroppedArrivals,
// AppResult.Skipped). The same queue serves classic single-machine
// MP-HARS scenarios, which previously skipped such arrivals outright.
// Every migrate_every_ms (250 ms default, -1 disables) the scheduler also
// moves one application off each saturated partitioned node to the
// policy's preferred node with free capacity — the app is respawned there
// (its statistics accumulate across incarnations; AppResult.NodeMigrations
// counts the moves).
//
// Multi-node traces replace the "m" line with per-node "n" (and "h")
// lines, add the node and fleet-move columns to "a" lines, and append an
// "f" fleet rollup line (running apps, queue length, summed HPS, energy,
// overhead, migrations) per sample. Single-node scenarios keep the classic
// byte-identical format.
//
// Determinism: the engine is single-threaded over deterministic
// simulators — nodes step in index order within each shared tick, and
// scheduler decisions break ties by policy score then node index — so the
// same scenario file always produces byte-identical traces and results.
// Actions due at the same millisecond apply in a fixed order: platform
// events first (hotplug, dvfs_cap, in listed order), then departures, then
// arrivals, then application events (target, phase), ties broken by
// position in the file; occurrences of a repeating event carry their
// event's file position for tie-breaking.
//
// Validation rejects scenarios whose hotplug sequence would ever take a
// node's last core offline, so a validated scenario can always make
// progress.
package scenario
