// Command hars runs one benchmark under one version of the runtime
// (baseline, static optimal, or a HARS variant) and reports the measured
// heartbeat rate, normalized performance, power, and efficiency.
//
// Usage:
//
//	hars -bench BO -version hars-ei -target 0.5 [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/heartbeat"
	"repro/internal/workload"
)

func main() {
	benchName := flag.String("bench", "BO", "benchmark short tag: "+strings.Join(workload.Shorts(), ", "))
	version := flag.String("version", "hars-ei", "version: baseline, so, hars-i, hars-e, hars-ei")
	target := flag.Float64("target", 0.5, "target fraction of the maximum achievable rate")
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	trace := flag.Bool("trace", false, "print the adaptation decisions (HARS versions only)")
	flag.Parse()

	bench, ok := workload.ByShort(strings.ToUpper(*benchName))
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (want one of %s)\n", *benchName, strings.Join(workload.Shorts(), ", "))
		os.Exit(2)
	}
	sc := experiments.Quick()
	if *scale == "full" {
		sc = experiments.Full()
	}
	env, err := experiments.NewEnv(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	maxRate := env.MaxRate(bench)
	tgt := env.Target(bench, *target)
	fmt.Printf("%s: max achievable rate %.3f hb/s, target %.3f (%.3f..%.3f)\n",
		bench.Name, maxRate, tgt.Avg, tgt.Min, tgt.Max)

	var res experiments.RunResult
	switch strings.ToLower(*version) {
	case "baseline":
		res = env.RunBaseline(bench, tgt)
	case "so":
		res = env.RunStaticOptimal(bench, tgt)
	case "hars-i":
		res = runHARS(env, bench, tgt, core.HARSI, *trace)
	case "hars-e":
		res = runHARS(env, bench, tgt, core.HARSE, *trace)
	case "hars-ei":
		res = runHARS(env, bench, tgt, core.HARSEI, *trace)
	default:
		fmt.Fprintf(os.Stderr, "unknown version %q\n", *version)
		os.Exit(2)
	}

	fmt.Printf("version:        %s\n", *version)
	fmt.Printf("measured rate:  %.3f hb/s\n", res.Rate)
	fmt.Printf("norm perf:      %.3f\n", res.NormPerf)
	fmt.Printf("avg power:      %.3f W\n", res.PowerW)
	fmt.Printf("perf/watt:      %.4f\n", res.PP)
	fmt.Printf("final state:    %s\n", res.State.Pretty(env.Plat))
	if res.OverheadUtil > 0 {
		fmt.Printf("manager util:   %.3f%%\n", res.OverheadUtil*100)
	}
}

func runHARS(env *experiments.Env, bench workload.Benchmark, tgt heartbeat.Target, v core.Version, trace bool) experiments.RunResult {
	cfg := core.Config{Version: v}
	if !trace {
		return env.RunHARS(bench, tgt, cfg)
	}
	res, decisions := env.RunHARSTraced(bench, tgt, cfg)
	for _, d := range decisions {
		fmt.Printf("t=%7.1fs hb=%4d rate=%6.3f %s -> %s (explored %d)\n",
			float64(d.Time)/1e6, d.HBIndex, d.Rate,
			d.From.Pretty(env.Plat), d.To.Pretty(env.Plat), d.Explored)
	}
	return res
}
