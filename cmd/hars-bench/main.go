// Command hars-bench runs the repository's tracked hot-path benchmarks
// (internal/bench) in-process via testing.Benchmark and writes the results
// as a JSON trajectory file (BENCH_<n>.json at the repository root, one per
// PR). Compare files across revisions to see the perf trend.
//
// Usage:
//
//	hars-bench [-out BENCH_1.json] [-filter regexp] [-quiescent-ratio-floor 10]
//
// -quiescent-ratio-floor guards the event-driven core's reason to exist:
// after the run it computes FleetQuiescentLockstep / FleetQuiescent (how
// many times faster the event core crosses the quiescent fleet than the
// per-tick reference walk) and exits non-zero when the speedup falls below
// the floor. CI runs it at 10x so a regression that quietly drags the event
// core back toward lockstep cost fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"

	"repro/internal/bench"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// File is the trajectory file schema.
type File struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path (empty = stdout only)")
	filter := flag.String("filter", "", "regexp selecting benchmark names (empty = all)")
	ratioFloor := flag.Float64("quiescent-ratio-floor", 0,
		"fail unless FleetQuiescentLockstep/FleetQuiescent >= this speedup (0 = no check)")
	flag.Parse()

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintf(os.Stderr, "bad -filter: %v\n", err)
			os.Exit(2)
		}
	}

	f := File{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: "1s", // testing.Benchmark's built-in target
	}
	for _, c := range bench.Cases() {
		if re != nil && !re.MatchString(c.Name) {
			continue
		}
		r := testing.Benchmark(c.F)
		res := Result{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		f.Results = append(f.Results, res)
		fmt.Printf("%-20s %12d iters %14.1f ns/op %8d B/op %6d allocs/op\n",
			res.Name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		os.Stdout.Write(data)
	}

	if *ratioFloor > 0 {
		if err := checkQuiescentRatio(f.Results, *ratioFloor); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// checkQuiescentRatio enforces the event-core speedup floor over the
// measured results. Both quiescent benchmarks must be present (narrow
// -filter expressions that drop one are a configuration error, not a pass).
func checkQuiescentRatio(results []Result, floor float64) error {
	var event, lockstep float64
	for _, r := range results {
		switch r.Name {
		case "FleetQuiescent":
			event = r.NsPerOp
		case "FleetQuiescentLockstep":
			lockstep = r.NsPerOp
		}
	}
	if event == 0 || lockstep == 0 {
		return fmt.Errorf("quiescent-ratio check needs both FleetQuiescent and FleetQuiescentLockstep in the run (have event=%v lockstep=%v ns/op)",
			event, lockstep)
	}
	ratio := lockstep / event
	fmt.Printf("quiescent speedup: %.1fx (lockstep %.0f ns/op / event %.0f ns/op), floor %.1fx\n",
		ratio, lockstep, event, floor)
	if ratio < floor {
		return fmt.Errorf("event-core speedup %.1fx below the %.1fx floor: the event-driven core regressed toward lockstep cost", ratio, floor)
	}
	return nil
}
