package scenario

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// FuzzDecode fuzzes the scenario JSON decoder: arbitrary input must never
// panic, and any input the decoder accepts must survive an encode/decode
// round trip unchanged (so replaying a saved scenario is always faithful).
func FuzzDecode(f *testing.F) {
	if data, err := os.ReadFile("testdata/dynamic.json"); err == nil {
		f.Add(data)
	}
	var gen bytes.Buffer
	if err := Generate(5, GenConfig{Manager: ManagerHARSE}).Encode(&gen); err == nil {
		f.Add(gen.Bytes())
	}
	var genFleet bytes.Buffer
	if err := Generate(7, GenConfig{Manager: ManagerMPHARSI, Nodes: 3}).Encode(&genFleet); err == nil {
		f.Add(genFleet.Bytes())
	}
	var genFaults bytes.Buffer
	if err := Generate(11, GenConfig{Manager: ManagerMPHARSI, Nodes: 3, Faults: true}).Encode(&genFaults); err == nil {
		f.Add(genFaults.Bytes())
	}
	f.Add([]byte(`{"manager":"mphars-i","duration_ms":100,"placement":"coolest","nodes":[{"name":"n0"},{"name":"n1","manager":"gts"}],"apps":[{"name":"a","bench":"SW","node":"n1","affinity":[0,1]}],"events":[{"at_ms":1,"kind":"hotplug","node":"n0","cpu":3,"online":false}]}`))
	f.Add([]byte(`{"manager":"none","duration_ms":100,"apps":[{"name":"a","bench":"SW"}]}`))
	f.Add([]byte(`{"manager":"mphars-e","duration_ms":50,"apps":[{"name":"a","bench":"FE","target":{"min":1,"avg":2,"max":3}}],"events":[{"at_ms":1,"kind":"hotplug","cpu":3,"online":false}]}`))
	f.Add([]byte(`{"manager":"hars-e","duration_ms":5000,"apps":[{"name":"a","bench":"SW"}],"thermal":{"enabled":true,"trip_c":80,"release_c":65},"events":[{"at_ms":100,"kind":"phase","app":"a","scale":1.5,"every_ms":500,"repeat":4}]}`))
	f.Add([]byte(`{"manager":"mphars-i","duration_ms":8000,"placement":"slo-aware","checkpoint":{"freeze_us":5000,"per_mb_us":500,"size_mb":8},"nodes":[{"name":"n0"},{"name":"n1"}],"apps":[{"name":"a","bench":"SW","slo":{"target_hps":3,"slack_ms":150}}],"arrivals":[{"name":"web","node":"n1","bench":"FE","seed":9,"lifetime_ms":2000,"max_apps":4,"rate":[{"until_ms":4000,"per_s":0.8},{"per_s":0.2}]}]}`))
	f.Add([]byte(`{"manager":"mphars-i","duration_ms":9000,"placement":"slo-aware","nodes":[{"name":"n0"},{"name":"n1"}],"apps":[{"name":"a","bench":"SW"}],"faults":{"seed":3,"heartbeat_timeout_ms":200,"checkpoint_every_ms":500,"transfer_fail_prob":0.1,"crashes":[{"node":"n1","at_ms":2000,"down_ms":3000},{"node":"n0","at_ms":7000}],"core_failures":[{"node":"n0","at_ms":1500,"cpu":5}],"random":{"rate_per_min":6,"down_ms":2500,"max_crashes":4}}}`))
	f.Add([]byte(`{"manager":"mphars-i","duration_ms":4000,"nodes":[{"name":"n0"}],"apps":[{"name":"a","bench":"BO"}],"faults":{"crashes":[],"core_failures":[],"retry_base_ms":10,"retry_max_ms":100,"retry_jitter_ms":5}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := sc.Encode(&buf); err != nil {
			t.Fatalf("accepted scenario failed to encode: %v", err)
		}
		again, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of encoded scenario failed: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("round trip changed the scenario:\nfirst:  %+v\nsecond: %+v", sc, again)
		}
	})
}
