package core

import (
	"math"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
)

// This file implements the paper's fourth Discussion item (§3.1.4): an
// alternative search algorithm (Tabu search, Glover & Laguna [3]) that can
// escape the local optima the plain incremental search gets stuck in. As
// the paper predicts, it helps applications with stable workloads (the
// search keeps probing new states instead of parking) but can hurt highly
// variable ones.

// SearchFunc is the signature shared by the paper's GetNextSysState and its
// alternatives; the runtime manager accepts any implementation.
type SearchFunc func(e Estimators, cs hmp.State, curRate float64, tgt heartbeat.Target, prm SearchParams, b Bounds) SearchResult

// TabuList is a fixed-capacity FIFO memory of recently visited states.
type TabuList struct {
	cap   int
	items []hmp.State
}

// NewTabuList creates a list remembering the last n states (n ≥ 1).
func NewTabuList(n int) *TabuList {
	if n < 1 {
		n = 1
	}
	return &TabuList{cap: n}
}

// Contains reports whether the state is tabu.
func (tl *TabuList) Contains(st hmp.State) bool {
	for _, s := range tl.items {
		if s == st {
			return true
		}
	}
	return false
}

// Add records a visited state, evicting the oldest beyond capacity.
func (tl *TabuList) Add(st hmp.State) {
	if tl.Contains(st) {
		return
	}
	tl.items = append(tl.items, st)
	if len(tl.items) > tl.cap {
		tl.items = tl.items[len(tl.items)-tl.cap:]
	}
}

// Len returns the number of remembered states.
func (tl *TabuList) Len() int { return len(tl.items) }

// NewTabuSearch returns a SearchFunc implementing Tabu search over the
// same bounded neighbourhood as Algorithm 2: the best non-tabu candidate is
// chosen even when it is worse than the current state (the uphill moves
// that escape local optima), and every chosen state becomes tabu for the
// next `memory` adaptations. An aspiration rule admits tabu states that
// beat everything seen so far.
func NewTabuSearch(memory int) SearchFunc {
	tl := NewTabuList(memory)
	var bestEver float64 = math.Inf(-1) // best pp seen across adaptations
	return func(e Estimators, cs hmp.State, curRate float64, tgt heartbeat.Target, prm SearchParams, b Bounds) SearchResult {
		plat := e.Perf.Plat
		curTput := e.Perf.evalCachedPtr(cs).Throughput
		best := SearchResult{Rate: math.Inf(-1), PP: math.Inf(-1)}
		haveBest := false
		explored := 0

		loB, hiB := sweepRange(cs.BigCores, prm, 0, b.MaxBigCores)
		loL, hiL := sweepRange(cs.LittleCores, prm, 0, b.MaxLittleCores)
		loFB, hiFB := freqRange(cs.BigLevel, prm, capLevel(plat.Clusters[hmp.Big].MaxLevel(), b.BigLevelCap), b.BigFreq)
		loFL, hiFL := freqRange(cs.LittleLevel, prm, capLevel(plat.Clusters[hmp.Little].MaxLevel(), b.LittleLevelCap), b.LittleFreq)

		for i := loB; i <= hiB; i++ {
			for j := loL; j <= hiL; j++ {
				if i+j == 0 {
					continue
				}
				for k := loFB; k <= hiFB; k++ {
					for l := loFL; l <= hiFL; l++ {
						cand := hmp.State{BigCores: i, LittleCores: j, BigLevel: k, LittleLevel: l}
						if hmp.Distance(cand, cs) > prm.D {
							continue
						}
						explored++
						cr := scoreResult(e, curTput, curRate, cand, tgt)
						// Tabu states are skipped unless they beat the best
						// efficiency ever seen (aspiration).
						if cand != cs && tl.Contains(cand) && cr.PP <= bestEver {
							continue
						}
						if !haveBest || better(cr, best, tgt) {
							best = cr
							haveBest = true
						}
					}
				}
			}
		}
		if !haveBest {
			// Everything (except cs) was tabu and nothing aspirated: stay.
			best = scoreResult(e, curTput, curRate, cs, tgt)
		}
		best.Explored = explored
		tl.Add(cs) // leaving cs makes it tabu: the escape mechanism
		if best.PP > bestEver {
			bestEver = best.PP
		}
		return best
	}
}
