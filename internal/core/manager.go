package core

import (
	"math"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// Version selects one of the paper's HARS variants.
type Version int

// The evaluated HARS versions.
const (
	// HARSI is the incremental search version: m = 1, n = 0, d = 1 when the
	// application overperforms, m = 0, n = 1, d = 1 when it underperforms.
	HARSI Version = iota
	// HARSE is the exhaustive search version (m = n = 4, d = 7) with the
	// chunk-based scheduler.
	HARSE
	// HARSEI is HARS-E with the interleaving scheduler.
	HARSEI
)

// String names the version as in the paper's figures.
func (v Version) String() string {
	switch v {
	case HARSI:
		return "HARS-I"
	case HARSE:
		return "HARS-E"
	case HARSEI:
		return "HARS-EI"
	}
	return "HARS-?"
}

// Config tunes the runtime manager.
type Config struct {
	Version Version

	// AdaptEvery is the adaptation period in heartbeats (isAdaptPeriod of
	// Algorithm 1). Default 10.
	AdaptEvery int64

	// Params overrides the search parameters; zero means "use the
	// version's defaults". Figure 5.3 sweeps D with M = N = 4.
	Params SearchParams

	// Scheduler overrides the version's thread scheduler when non-nil.
	Scheduler *SchedulerKind

	// InitState is the state the manager starts from; zero means the
	// platform maximum (the baseline state).
	InitState *hmp.State

	// Overhead model: the CPU time the user-level runtime burns, charged
	// against OverheadCPU. PerCandidate is per explored state in a search,
	// PerSearch per search invocation, PollPerTick per simulator tick for
	// the heartbeat-polling loop.
	PerCandidate sim.Time
	PerSearch    sim.Time
	PollPerTick  sim.Time
	OverheadCPU  int

	// The §3.1.4 extensions, all disabled by default (paper behaviour):

	// Predictor replaces the naive "same workload as last period" model
	// with a smarter workload predictor (e.g. &KalmanPredictor{}).
	Predictor WorkloadPredictor

	// LearnRatio enables online estimation of the application's true
	// big/little performance ratio, replacing the fixed r0.
	LearnRatio bool

	// SearchFn replaces Algorithm 2 with an alternative search (e.g.
	// NewTabuSearch(8)); nil keeps the paper's Search.
	SearchFn SearchFunc
}

func (c Config) withDefaults() Config {
	if c.AdaptEvery <= 0 {
		c.AdaptEvery = 10
	}
	if c.PerCandidate <= 0 {
		c.PerCandidate = 150 * sim.Microsecond
	}
	if c.PerSearch <= 0 {
		c.PerSearch = 500 * sim.Microsecond
	}
	if c.PollPerTick <= 0 {
		c.PollPerTick = 2 * sim.Microsecond
	}
	return c
}

// params returns the search parameters for this adaptation, following the
// paper's per-version rules.
func (c Config) params(overperforming bool) SearchParams {
	if c.Params != (SearchParams{}) {
		return c.Params
	}
	switch c.Version {
	case HARSI:
		if overperforming {
			return SearchParams{M: 1, N: 0, D: 1}
		}
		return SearchParams{M: 0, N: 1, D: 1}
	default: // HARSE, HARSEI
		return SearchParams{M: 4, N: 4, D: 7}
	}
}

// scheduler returns the thread scheduler for the configured version.
func (c Config) scheduler() SchedulerKind {
	if c.Scheduler != nil {
		return *c.Scheduler
	}
	if c.Version == HARSEI {
		return Interleaved
	}
	return Chunk
}

// Decision records one adaptation for tracing (behaviour graphs).
type Decision struct {
	Time     sim.Time
	HBIndex  int64
	Rate     float64
	From, To hmp.State
	Explored int
}

// Manager is HARS's runtime manager (Algorithm 1), run as a machine daemon.
// It owns the whole machine: single-application HARS assumes the target
// self-adaptive application is the only managed workload.
type Manager struct {
	cfg     Config
	proc    *sim.Process
	est     Estimators
	target  heartbeat.Target
	state   hmp.State
	applied Assignment // the thread assignment currently in force
	// appliedCores are the global CPUs the current schedule is affine to;
	// reconcilePlatform re-applies when any of them goes offline.
	appliedCores []int
	learner      *RatioLearner

	lastSeen      int64
	lastAdapt     int64
	decisions     []Decision
	exploredTotal int
	searches      int

	// OnDecision, when set, observes every adaptation (for behaviour
	// graphs).
	OnDecision func(Decision)
}

// NewManager attaches a HARS runtime manager to a process: it applies the
// initial system state and thread schedule immediately (Algorithm 1 lines
// 2–3) and adapts on heartbeats once registered as a daemon.
//
// A process arriving with heartbeat history — restored on this machine by
// a work-conserving migration — attaches without state loss: the carried
// beats count as already observed and the first adaptation waits a full
// period past the move, so the manager never acts on rates measured on
// another node.
func NewManager(m *sim.Machine, proc *sim.Process, model *power.LinearModel, target heartbeat.Target, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	mgr := &Manager{
		cfg:    cfg,
		proc:   proc,
		est:    NewEstimators(m.Platform(), len(proc.Threads), model),
		target: target,
	}
	if count := proc.HB.Count(); count > 0 {
		mgr.lastSeen = count
		if rec, ok := proc.HB.Latest(); ok {
			mgr.lastAdapt = rec.Index
		}
	}
	if cfg.LearnRatio {
		mgr.learner = NewRatioLearner(m.Platform(), len(proc.Threads))
	}
	st := hmp.MaxState(m.Platform())
	if cfg.InitState != nil {
		st = *cfg.InitState
	}
	mgr.state = st
	mgr.apply(m, st)
	proc.HB.SetTarget(target)
	return mgr
}

// State returns the manager's current system state.
func (mgr *Manager) State() hmp.State { return mgr.state }

// Target returns the manager's performance target.
func (mgr *Manager) Target() heartbeat.Target { return mgr.target }

// SetTarget replaces the manager's performance target mid-run (a scenario
// "target" event); the next adaptation opportunity uses the new band.
func (mgr *Manager) SetTarget(t heartbeat.Target) {
	mgr.target = t
	mgr.proc.HB.SetTarget(t)
}

// Decisions returns the adaptation trace.
func (mgr *Manager) Decisions() []Decision { return mgr.decisions }

// Searches returns how many times the search function ran.
func (mgr *Manager) Searches() int { return mgr.searches }

// ExploredTotal returns the total number of candidate states evaluated.
func (mgr *Manager) ExploredTotal() int { return mgr.exploredTotal }

// LearnedRatio returns the online big/little ratio estimate (0 when ratio
// learning is disabled).
func (mgr *Manager) LearnedRatio() float64 {
	if mgr.learner == nil {
		return 0
	}
	return mgr.learner.Ratio()
}

// Tick implements sim.Daemon: the main function of Algorithm 1.
// NextWake implements sim.Sleeper. While the managed process lives the
// manager polls (and charges overhead) every tick, so the machine must run
// in lockstep; once the process has exited every Tick call is the no-op
// early return in Tick and the manager sleeps forever.
func (mgr *Manager) NextWake(m *sim.Machine) sim.Time {
	if mgr.proc.Exited() {
		return sim.Time(math.MaxInt64)
	}
	return m.Now()
}

// SteadyBegin implements sim.SteadyDaemon: inside a certified steady window
// no unit completes, so no heartbeat can arrive and Tick reduces to its
// polling charge plus a reconcilePlatform that is a pure no-op on the frozen
// platform. The declared entry is exactly that per-tick charge; the window
// is accepted only when the platform already fits the manager's state (so
// reconcilePlatform would not re-apply) and no unconsumed heartbeat is
// pending (Tick would process it). No per-tick internal state advances, so
// no Ticker is declared.
func (mgr *Manager) SteadyBegin(m *sim.Machine) (sim.SteadyEntry, bool) {
	if mgr.proc.Exited() {
		// Tick is a pure no-op, but NextWake already reports "sleep
		// forever"; declining keeps the two contracts from overlapping.
		return sim.SteadyEntry{}, false
	}
	if !mgr.platformSettled(m) || mgr.proc.HB.Count() != mgr.lastSeen {
		return sim.SteadyEntry{}, false
	}
	return sim.SteadyEntry{ChargeCPU: mgr.cfg.OverheadCPU, Charge: mgr.cfg.PollPerTick}, true
}

// platformSettled reports whether reconcilePlatform would be a pure no-op:
// the clamped state equals the current one and every core of the applied
// schedule is still online.
func (mgr *Manager) platformSettled(m *sim.Machine) bool {
	b := MachineBounds(m)
	cs := mgr.state
	if cs.BigCores > b.MaxBigCores {
		cs.BigCores = b.MaxBigCores
	}
	if cs.LittleCores > b.MaxLittleCores {
		cs.LittleCores = b.MaxLittleCores
	}
	if c := b.BigLevelCap - 1; cs.BigLevel > c {
		cs.BigLevel = c
	}
	if c := b.LittleLevelCap - 1; cs.LittleLevel > c {
		cs.LittleLevel = c
	}
	if cs != mgr.state {
		return false
	}
	for _, cpu := range mgr.appliedCores {
		if !m.CoreOnline(cpu) {
			return false
		}
	}
	return true
}

func (mgr *Manager) Tick(m *sim.Machine) {
	if mgr.proc.Exited() {
		return
	}
	m.ChargeOverhead(mgr.cfg.OverheadCPU, mgr.cfg.PollPerTick)
	mgr.reconcilePlatform(m)
	count := mgr.proc.HB.Count()
	if count == mgr.lastSeen {
		return
	}
	mgr.lastSeen = count
	rec, ok := mgr.proc.HB.Latest()
	if !ok {
		return
	}
	rate := rec.WindowRate
	// Online extensions observe every heartbeat (no-ops in the paper's
	// default configuration).
	if mgr.learner != nil {
		mgr.learner.Observe(mgr.state, mgr.applied, rate)
		mgr.est.Perf.R0 = mgr.learner.Ratio()
	}
	baseRate := rate
	if mgr.cfg.Predictor != nil {
		if tput := mgr.est.Perf.EvaluateCached(mgr.state).Throughput; tput > 0 && rate > 0 {
			mgr.cfg.Predictor.Observe(tput / rate)
			if w := mgr.cfg.Predictor.Predict(); w > 0 {
				baseRate = tput / w
			}
		}
	}
	// isAdaptPeriod: one adaptation opportunity every AdaptEvery beats.
	if rec.Index < mgr.lastAdapt+mgr.cfg.AdaptEvery {
		return
	}
	if !heartbeat.OutsideBand(mgr.target, rate) {
		return
	}
	mgr.lastAdapt = rec.Index
	over := rate > mgr.target.Avg
	prm := mgr.cfg.params(over)
	searchFn := mgr.cfg.SearchFn
	if searchFn == nil {
		searchFn = Search
	}
	b := MachineBounds(m)
	if b.MaxBigCores+b.MaxLittleCores == 0 {
		return // the whole platform is offline; nothing to adapt
	}
	res := searchFn(mgr.est, mgr.state, baseRate, mgr.target, prm, b)
	mgr.searches++
	mgr.exploredTotal += res.Explored
	m.ChargeOverhead(mgr.cfg.OverheadCPU,
		mgr.cfg.PerSearch+sim.Time(res.Explored)*mgr.cfg.PerCandidate)

	d := Decision{
		Time:     m.Now(),
		HBIndex:  rec.Index,
		Rate:     rate,
		From:     mgr.state,
		To:       res.State,
		Explored: res.Explored,
	}
	mgr.decisions = append(mgr.decisions, d)
	if mgr.OnDecision != nil {
		mgr.OnDecision(d)
	}
	if res.State != mgr.state {
		mgr.state = res.State
		mgr.apply(m, res.State)
	}
}

// apply is setSysStateAndScheduleThreads: DVFS plus thread scheduling.
func (mgr *Manager) apply(m *sim.Machine, st hmp.State) {
	m.SetLevel(hmp.Big, st.BigLevel)
	m.SetLevel(hmp.Little, st.LittleLevel)
	ev := mgr.est.Perf.EvaluateCached(st)
	mgr.applied = ev.Assignment
	big := OnlineCores(m, hmp.Big, st.BigCores)
	little := OnlineCores(m, hmp.Little, st.LittleCores)
	mgr.appliedCores = append(mgr.appliedCores[:0], big...)
	mgr.appliedCores = append(mgr.appliedCores, little...)
	ApplySchedule(mgr.proc, ev.Assignment, mgr.cfg.scheduler(), big, little)
}

// MachineBounds returns the search bounds implied by the machine's current
// platform condition: online core counts and active DVFS ceilings. With
// every core online and no ceilings installed this equals Unbounded.
func MachineBounds(m *sim.Machine) Bounds {
	return Bounds{
		MaxBigCores:    m.OnlineCount(hmp.Big),
		MaxLittleCores: m.OnlineCount(hmp.Little),
		BigLevelCap:    m.LevelCap(hmp.Big) + 1,
		LittleLevelCap: m.LevelCap(hmp.Little) + 1,
	}
}

// OnlineCores returns the first n online CPUs of cluster k — the hotplug-
// aware variant of DefaultCores.
func OnlineCores(m *sim.Machine, k hmp.ClusterKind, n int) []int {
	p := m.Platform()
	first := p.FirstCPU(k)
	out := make([]int, 0, n)
	for i := 0; i < p.Clusters[k].Cores && len(out) < n; i++ {
		if m.CoreOnline(first + i) {
			out = append(out, first+i)
		}
	}
	return out
}

// reconcilePlatform clamps the manager's state to the machine's current
// platform condition (core hotplug, DVFS ceilings) and re-applies the
// schedule when anything shrank underneath the application. A no-op on an
// unchanged platform.
func (mgr *Manager) reconcilePlatform(m *sim.Machine) {
	b := MachineBounds(m)
	cs := mgr.state
	if cs.BigCores > b.MaxBigCores {
		cs.BigCores = b.MaxBigCores
	}
	if cs.LittleCores > b.MaxLittleCores {
		cs.LittleCores = b.MaxLittleCores
	}
	if c := b.BigLevelCap - 1; cs.BigLevel > c {
		cs.BigLevel = c
	}
	if c := b.LittleLevelCap - 1; cs.LittleLevel > c {
		cs.LittleLevel = c
	}
	if cs == mgr.state {
		// Counts and caps still fit — but the *specific* cores the current
		// schedule is affine to may have gone offline (with enough siblings
		// still online to keep the counts legal). Re-apply onto online
		// cores so no thread stays stranded on a dead affinity mask.
		for _, cpu := range mgr.appliedCores {
			if !m.CoreOnline(cpu) {
				mgr.apply(m, cs)
				return
			}
		}
		return
	}
	mgr.state = cs
	if cs.TotalCores() > 0 {
		mgr.apply(m, cs)
	}
}
