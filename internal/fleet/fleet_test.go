package fleet_test

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/mphars"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// tinyPlatform returns a deliberately small board (1 big + 1 little core)
// so a single 1+1 registration saturates the partition.
func tinyPlatform() *hmp.Platform {
	p := hmp.Default()
	p.Clusters[hmp.Big].Cores = 1
	p.Clusters[hmp.Little].Cores = 1
	return p
}

// newMPNode builds a fleet node running an MP-HARS manager over plat.
func newMPNode(id int, name string, plat *hmp.Platform) *fleet.Node {
	sn := sim.NewNode(id, name, plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	mp := mphars.New(sn.Machine, power.SyntheticLinearModel(plat), mphars.Config{})
	sn.AddDaemon(mp)
	return &fleet.Node{Node: sn, MP: mp}
}

// testHost admits applications as 4-thread SW instances, registering them
// with the node's MP-HARS manager when it has one. Migration is
// work-conserving: Checkpoint captures the incarnation's run state and a
// later Admit restores it on the destination. initAlloc, when set, chooses
// the (big, little) registration allocation per app name; moveTimes logs
// when each app was admitted after a checkpoint.
type testHost struct {
	t         *testing.T
	admits    int
	evicts    int
	evicted   []*sim.Process
	snaps     map[string]*sim.ProcSnapshot
	initAlloc func(name string, moved bool) (int, int)
	moveTimes map[string][]sim.Time
}

func (h *testHost) Admit(n *fleet.Node, app *fleet.App) fleet.AdmitResult {
	var p *sim.Process
	moved := false
	if snap := h.snaps[app.Name]; snap != nil {
		p = n.Restore(snap, 0)
		delete(h.snaps, app.Name)
		moved = true
		if h.moveTimes == nil {
			h.moveTimes = make(map[string][]sim.Time)
		}
		h.moveTimes[app.Name] = append(h.moveTimes[app.Name], n.Now())
	} else {
		b, _ := workload.ByShort("SW")
		p = n.Spawn(app.Name, b.New(4), 10)
	}
	if n.MP != nil {
		big, little := 1, 1
		if h.initAlloc != nil {
			big, little = h.initAlloc(app.Name, moved)
		}
		n.MP.Register(n.Machine, p, heartbeat.Target{Min: 1, Avg: 2, Max: 3}, big, little)
	}
	app.Proc = p
	h.admits++
	return fleet.AdmitOK
}

func (h *testHost) Checkpoint(n *fleet.Node, app *fleet.App) {
	if n.MP != nil {
		n.MP.Unregister(n.Machine, app.Proc)
	}
	if h.snaps == nil {
		h.snaps = make(map[string]*sim.ProcSnapshot)
	}
	h.evicted = append(h.evicted, app.Proc)
	h.snaps[app.Name] = n.Checkpoint(app.Proc)
	app.Proc = nil
	h.evicts++
}

func checkInv(t *testing.T, s *fleet.Scheduler) {
	t.Helper()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQueueAdmission pins the admission-control contract: an arrival with
// no free partition queues instead of vanishing, and it is admitted on the
// tick a departure frees the cores.
func TestQueueAdmission(t *testing.T) {
	n0 := newMPNode(0, "n0", tinyPlatform())
	f, err := fleet.New(n0)
	if err != nil {
		t.Fatal(err)
	}
	host := &testHost{t: t}
	s := fleet.NewScheduler(f, host, fleet.Config{})

	a0 := &fleet.App{Name: "a0"}
	a1 := &fleet.App{Name: "a1"}
	s.Arrive(a0)
	if !a0.Placed() || a0.Node() != n0 {
		t.Fatalf("a0 not placed on the only node")
	}
	s.Arrive(a1)
	if !a1.Queued() || !a1.EverQueued() {
		t.Fatalf("a1 should queue on the saturated node, state: placed=%v", a1.Placed())
	}
	checkInv(t, s)
	if st := s.Stats(); st.Queued != 1 || st.QueueLen != 1 || st.Admitted != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// While saturated, the queue must not drain.
	f.RunUntil(100 * sim.Millisecond)
	if !a1.Queued() {
		t.Fatal("a1 admitted while the partition was full")
	}

	// Departure frees the cores; the next tick's drain admits a1.
	n0.MP.Unregister(n0.Machine, a0.Proc)
	n0.Kill(a0.Proc)
	s.Depart(a0)
	f.RunUntil(f.Now() + 2*sim.Millisecond)
	if !a1.Placed() || a1.Node() != n0 {
		t.Fatalf("a1 not admitted after departure (queued=%v)", a1.Queued())
	}
	checkInv(t, s)
	if st := s.Stats(); st.QueueLen != 0 || st.Admitted != 2 {
		t.Fatalf("stats after admit = %+v", st)
	}
}

// TestQueueFIFO pins the no-queue-jumping contract: a new arrival that
// coincides with freed capacity must not overtake an app already waiting.
func TestQueueFIFO(t *testing.T) {
	n0 := newMPNode(0, "n0", tinyPlatform())
	f, err := fleet.New(n0)
	if err != nil {
		t.Fatal(err)
	}
	host := &testHost{t: t}
	s := fleet.NewScheduler(f, host, fleet.Config{})

	a0 := &fleet.App{Name: "a0"}
	a1 := &fleet.App{Name: "a1"}
	s.Arrive(a0) // takes the whole 1+1 partition
	s.Arrive(a1) // queues
	if !a1.Queued() {
		t.Fatal("a1 should be queued")
	}
	// Free the partition and, in the same instant, bring a third arrival:
	// the queued a1 has first claim.
	n0.MP.Unregister(n0.Machine, a0.Proc)
	n0.Kill(a0.Proc)
	s.Depart(a0)
	a2 := &fleet.App{Name: "a2"}
	s.Arrive(a2)
	if !a1.Placed() {
		t.Fatal("queued a1 was overtaken by the coinciding arrival")
	}
	if !a2.Queued() {
		t.Fatal("a2 should queue behind a1's claim")
	}
	checkInv(t, s)
}

// TestMigrationConservation pins saturation-driven migration: an app moves
// off a saturated node to the free one, exactly once per cooldown, and the
// app is never registered on two nodes.
func TestMigrationConservation(t *testing.T) {
	n0 := newMPNode(0, "small", tinyPlatform())
	n1 := newMPNode(1, "big", hmp.Default())
	f, err := fleet.New(n0, n1)
	if err != nil {
		t.Fatal(err)
	}
	host := &testHost{t: t}
	// big-first would admit to n1 straight away; pin the arrival to the
	// tiny node so it saturates, then let migration move it.
	s := fleet.NewScheduler(f, host, fleet.Config{Policy: mustPolicy(t, fleet.PolicyBigFirst)})

	a0 := &fleet.App{Name: "a0", Pinned: n0}
	s.Arrive(a0)
	if a0.Node() != n0 {
		t.Fatal("pinned arrival not on its node")
	}
	// Pinned apps never migrate: run past the cooldown and check.
	f.RunUntil(600 * sim.Millisecond)
	if a0.Node() != n0 || a0.Migrations() != 0 {
		t.Fatalf("pinned app moved: node=%s migrations=%d", a0.Node().Name, a0.Migrations())
	}

	// An unpinned app on the saturated node does migrate.
	a0.Pinned = nil
	f.RunUntil(1200 * sim.Millisecond)
	if a0.Node() != n1 {
		t.Fatalf("app not migrated off the saturated node (on %s)", a0.Node().Name)
	}
	if a0.Migrations() != 1 || s.Stats().Migrations != 1 {
		t.Fatalf("migrations = %d (stats %d), want 1", a0.Migrations(), s.Stats().Migrations)
	}
	checkInv(t, s)
	// Conservation: the old incarnation is dead on n0, the new one lives
	// on n1, and n0's partition is fully free again.
	if len(host.evicted) != 1 || !host.evicted[0].Exited() {
		t.Fatal("old incarnation not killed")
	}
	if a0.Proc == nil || a0.Proc.Machine() != n1.Machine {
		t.Fatal("new incarnation not on the destination machine")
	}
	if free := n0.FreeCores(hmp.Big) + n0.FreeCores(hmp.Little); free != 2 {
		t.Fatalf("source node kept %d cores", 2-free)
	}
	// Work conservation: the restored incarnation carries the heartbeat
	// monitor (history intact) and the banked work of the old one, and
	// keeps making progress from there.
	if a0.Proc.HB != host.evicted[0].HB {
		t.Fatal("heartbeat monitor was not moved across the migration")
	}
	moveWork := a0.Proc.WorkDone()
	if moveWork <= 0 {
		t.Fatal("work was not carried across the migration")
	}
	f.RunUntil(2 * sim.Second)
	if a0.Proc.WorkDone() <= moveWork {
		t.Fatal("no progress after the work-conserving move")
	}
}

// TestMigrationCooldownNoConsecutivePingPong pins the ping-pong fix: the
// placement cooldown is strict, so an application moved in one migrate
// pass is never moved again in the very next pass — even when saturation
// and free capacity shift underneath it so that the scores would otherwise
// send it straight back. Two moves of the same app are always at least two
// migration periods apart.
func TestMigrationCooldownNoConsecutivePingPong(t *testing.T) {
	n0 := newMPNode(0, "n0", hmp.Default())
	n1 := newMPNode(1, "n1", hmp.Default())
	f, err := fleet.New(n0, n1)
	if err != nil {
		t.Fatal(err)
	}
	host := &testHost{t: t, initAlloc: func(name string, moved bool) (int, int) {
		if name == "filler" {
			return 3, 3
		}
		return 1, 1
	}}
	s := fleet.NewScheduler(f, host, fleet.Config{})

	// x lands first (least-loaded ties to n0), then the pinned filler
	// saturates n0 around it; x is the only migration victim.
	filler := &fleet.App{Name: "filler", Pinned: n0}
	x := &fleet.App{Name: "x"}
	s.Arrive(x)
	s.Arrive(filler)
	if x.Node() != n0 || n0.CanAdmit() {
		t.Fatalf("setup: x on %q, n0 admittable %v", x.Node().Name, n0.CanAdmit())
	}

	// Pass at 250 ms: x still cooling from its arrival placement. Pass at
	// 500 ms: x moves to the empty n1.
	f.RunUntil(600 * sim.Millisecond)
	if got := host.moveTimes["x"]; len(got) != 1 || got[0] != 500*sim.Millisecond {
		t.Fatalf("first move times = %v, want [500ms]", got)
	}

	// Shift the world under it: saturate n1 (a direct registration outside
	// the scheduler) and empty n0, so the very next pass would send x
	// straight back if the cooldown did not hold it.
	b, _ := workload.ByShort("SW")
	fp := n1.Spawn("direct-filler", b.New(4), 10)
	n1.MP.Register(n1.Machine, fp, heartbeat.Target{Min: 1, Avg: 2, Max: 3}, 3, 3)
	n0.MP.Unregister(n0.Machine, filler.Proc)
	n0.Kill(filler.Proc)
	s.Depart(filler)
	checkInv(t, s)

	f.RunUntil(1500 * sim.Millisecond)
	moves := host.moveTimes["x"]
	if len(moves) != 2 {
		t.Fatalf("moves = %v, want exactly 2", moves)
	}
	// The bounce happened — but at 1000 ms, not at the 750 ms pass
	// immediately after the first move.
	if got := moves[1] - moves[0]; got != 500*sim.Millisecond {
		t.Fatalf("consecutive moves %v apart, want 2 migration periods", got)
	}
	checkInv(t, s)
}

// TestQueueFIFOMultiFree pins admission-queue fairness across every
// placement policy: when several partitions free up in the same tick,
// queued arrivals are admitted strictly in arrival order — the earliest
// waiters take the freed capacity and the latest keeps waiting.
func TestQueueFIFOMultiFree(t *testing.T) {
	for _, policy := range fleet.Policies(sim.CheckpointCost{}) {
		n0 := newMPNode(0, "n0", tinyPlatform())
		n1 := newMPNode(1, "n1", tinyPlatform())
		f, err := fleet.New(n0, n1)
		if err != nil {
			t.Fatal(err)
		}
		host := &testHost{t: t}
		s := fleet.NewScheduler(f, host, fleet.Config{Policy: policy})

		slo := &fleet.SLO{TargetHPS: 2, SlackMS: 100}
		o0 := &fleet.App{Name: "o0", Pinned: n0}
		o1 := &fleet.App{Name: "o1", Pinned: n1}
		s.Arrive(o0)
		s.Arrive(o1)
		queued := []*fleet.App{
			{Name: "q0", SLO: slo}, {Name: "q1", SLO: slo}, {Name: "q2", SLO: slo},
		}
		for _, q := range queued {
			s.Arrive(q)
			if !q.Queued() {
				t.Fatalf("%s: %s admitted onto a saturated fleet", policy.Name(), q.Name)
			}
		}
		// Both occupants depart in the same instant; the next tick's drain
		// sees two free partitions at once.
		for _, o := range []*fleet.App{o0, o1} {
			o.Node().MP.Unregister(o.Node().Machine, o.Proc)
			o.Node().Kill(o.Proc)
			s.Depart(o)
		}
		f.Step()
		if !queued[0].Placed() || !queued[1].Placed() {
			t.Fatalf("%s: earliest waiters not admitted: q0=%v q1=%v",
				policy.Name(), queued[0].Placed(), queued[1].Placed())
		}
		if !queued[2].Queued() {
			t.Fatalf("%s: q2 overtook an earlier waiter", policy.Name())
		}
		if queued[0].Node() == queued[1].Node() {
			t.Fatalf("%s: both waiters admitted to %q", policy.Name(), queued[0].Node().Name)
		}
		checkInv(t, s)
	}
}

// TestSLOAwarePolicy pins the SLO-aware placement policy: arrivals land on
// the node with the most predicted capacity for their target (where
// least-loaded would tie-break to the weak node), DVFS-capped nodes
// predict less, and the checkpoint-cost model discounts migration
// destinations against the app's slack budget.
func TestSLOAwarePolicy(t *testing.T) {
	weak := newMPNode(0, "weak", tinyPlatform())
	strong := newMPNode(1, "strong", hmp.Default())
	f, err := fleet.New(weak, strong)
	if err != nil {
		t.Fatal(err)
	}
	host := &testHost{t: t}
	s := fleet.NewScheduler(f, host, fleet.Config{Policy: fleet.NewSLOAware(sim.CheckpointCost{})})
	app := &fleet.App{Name: "a", SLO: &fleet.SLO{TargetHPS: 10, SlackMS: 200}}
	s.Arrive(app)
	if app.Node() != strong {
		t.Fatalf("slo-aware placed on %q, want the high-capacity node", app.Node().Name)
	}

	// A capped cluster predicts less deliverable capacity.
	before := strong.CapacityScore()
	strong.SetLevelCap(hmp.Big, 0)
	if after := strong.CapacityScore(); after >= before {
		t.Fatalf("capacity score ignored the DVFS cap: %v -> %v", before, after)
	}
	strong.SetLevelCap(hmp.Big, strong.Platform().Clusters[hmp.Big].MaxLevel())

	// Migration destinations are discounted by the move delay, scaled
	// against the app's slack: a costly checkpoint lowers every foreign
	// node's score but leaves the current node's alone.
	free := fleet.NewSLOAware(sim.CheckpointCost{})
	costly := fleet.NewSLOAware(sim.CheckpointCost{Freeze: 50 * sim.Millisecond})
	if free.Score(weak, app) <= costly.Score(weak, app) {
		t.Fatal("checkpoint cost did not discount the migration destination")
	}
	if free.Score(strong, app) != costly.Score(strong, app) {
		t.Fatal("checkpoint cost leaked into the app's current node score")
	}
}

// TestCoolestPolicy pins heat-aware placement: under a forced thermal
// gradient the coolest policy picks the cooler node.
func TestCoolestPolicy(t *testing.T) {
	mkThermalNode := func(id int, name string, initC float64) *fleet.Node {
		plat := hmp.Default()
		sn := sim.NewNode(id, name, plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		gov, err := thermal.NewGovernor(thermal.Spec{Enabled: true, InitC: initC})
		if err != nil {
			t.Fatal(err)
		}
		sn.AddDaemon(gov)
		mp := mphars.New(sn.Machine, power.SyntheticLinearModel(plat), mphars.Config{})
		sn.AddDaemon(mp)
		return &fleet.Node{Node: sn, MP: mp, Gov: gov}
	}
	hot := mkThermalNode(0, "hot", 70)
	cold := mkThermalNode(1, "cold", 30)
	f, err := fleet.New(hot, cold)
	if err != nil {
		t.Fatal(err)
	}
	host := &testHost{t: t}
	s := fleet.NewScheduler(f, host, fleet.Config{Policy: mustPolicy(t, fleet.PolicyCoolest)})
	app := &fleet.App{Name: "a"}
	s.Arrive(app)
	if app.Node() != cold {
		t.Fatalf("coolest policy placed on %q (%.1f°C) instead of %q (%.1f°C)",
			app.Node().Name, app.Node().MaxTempC(), cold.Name, cold.MaxTempC())
	}
}

// TestBigFirstPolicy pins heterogeneity-aware placement: the node with the
// most free big capacity wins even when it is more loaded.
func TestBigFirstPolicy(t *testing.T) {
	small := newMPNode(0, "small", tinyPlatform())
	big := newMPNode(1, "big", hmp.Default())
	f, err := fleet.New(small, big)
	if err != nil {
		t.Fatal(err)
	}
	host := &testHost{t: t}
	s := fleet.NewScheduler(f, host, fleet.Config{Policy: mustPolicy(t, fleet.PolicyBigFirst)})
	app := &fleet.App{Name: "a"}
	s.Arrive(app)
	if app.Node() != big {
		t.Fatalf("big-first placed on %q", app.Node().Name)
	}
}

// TestLockstepDeterminism pins the shared clock: two identical fleets
// driven through the same schedule produce bit-identical energy and
// heartbeat trajectories.
func TestLockstepDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		n0 := newMPNode(0, "n0", hmp.Default())
		n1 := newMPNode(1, "n1", tinyPlatform())
		f, err := fleet.New(n0, n1)
		if err != nil {
			t.Fatal(err)
		}
		host := &testHost{t: t}
		s := fleet.NewScheduler(f, host, fleet.Config{})
		a0, a1 := &fleet.App{Name: "a0"}, &fleet.App{Name: "a1"}
		s.Arrive(a0)
		f.RunUntil(500 * sim.Millisecond)
		s.Arrive(a1)
		f.RunUntil(2 * sim.Second)
		checkInv(t, s)
		var beats int64
		for _, app := range s.Apps() {
			if app.Proc != nil {
				beats += app.Proc.HB.Count()
			}
		}
		return f.EnergyJ(), beats
	}
	e1, b1 := run()
	e2, b2 := run()
	if e1 != e2 || b1 != b2 {
		t.Fatalf("fleet runs diverged: energy %v/%v beats %d/%d", e1, e2, b1, b2)
	}
}

// TestPolicyRegistry pins name resolution and the default.
func TestPolicyRegistry(t *testing.T) {
	if p, err := fleet.PolicyByName("", sim.CheckpointCost{}); err != nil || p.Name() != fleet.PolicyLeastLoaded {
		t.Fatalf("default policy = %v, %v", p, err)
	}
	for _, name := range fleet.PolicyNames() {
		p, err := fleet.PolicyByName(name, sim.CheckpointCost{})
		if err != nil || p.Name() != name {
			t.Fatalf("policy %q resolves to %v, %v", name, p, err)
		}
	}
	if _, err := fleet.PolicyByName("nope", sim.CheckpointCost{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestFleetValidation pins the constructor's clock checks.
func TestFleetValidation(t *testing.T) {
	if _, err := fleet.New(); err == nil {
		t.Fatal("empty fleet accepted")
	}
	bad := newMPNode(1, "wrong-id", hmp.Default())
	if _, err := fleet.New(bad); err == nil {
		t.Fatal("mismatched node ID accepted")
	}
	drifted := newMPNode(1, "late", hmp.Default())
	drifted.Run(10 * sim.Millisecond)
	if _, err := fleet.New(newMPNode(0, "n0", hmp.Default()), drifted); err == nil {
		t.Fatal("drifted clock accepted")
	}
}

func mustPolicy(t *testing.T, name string) fleet.Policy {
	t.Helper()
	p, err := fleet.PolicyByName(name, sim.CheckpointCost{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}
