package scenario

import (
	"bytes"
	"fmt"
	"testing"
)

// TestEventCoreMatchesLockstep is the tentpole property suite for the
// event-driven fleet core: generated multi-node scenarios — thermal loops,
// SLO'd apps over a real checkpoint-cost model, seeded fault injection, all
// four placement policies — replay through the lockstep reference core, the
// event-driven core, and the event-driven core with sharded node
// advancement, and every variant must produce byte-identical traces and
// digests. The suite runs under -race in CI, which also exercises the
// worker-sharded path for data races.
func TestEventCoreMatchesLockstep(t *testing.T) {
	policies := []string{"least-loaded", "big-first", "coolest", "slo-aware"}
	// A fixed calibration rate keeps the suite fast (no per-run max-rate
	// calibration); equivalence only needs every variant to see the same
	// targets.
	maxRate := func(string, int) float64 { return 50 }

	for seed := int64(1); seed <= 4; seed++ {
		// One policy per seed covers all four across the suite; the
		// generator alone never draws slo-aware.
		placement := policies[(seed-1)%int64(len(policies))]
		sc := Generate(seed, GenConfig{
			Nodes:      3,
			MaxApps:    3,
			Events:     5,
			DurationMS: 6000,
			Placement:  placement,
			Thermal:    seed%2 == 0,
			Periodic:   true,
			Faults:     true,
		})
		// The generator draws neither SLOs nor checkpoint costs; add both
		// so the slo-aware pricing path is on the equivalence surface.
		sc.Checkpoint = &CheckpointSpec{FreezeUS: 30_000, PerMBUS: 1_000, SizeMB: 8}
		for i := range sc.Apps {
			sc.Apps[i].SLO = &SLOSpec{TargetHPS: 20, SlackMS: 150}
		}

		run := func(lockstep bool, workers int) (string, uint64) {
			var buf bytes.Buffer
			res, err := Run(sc, Options{
				Trace:    &buf,
				MaxRate:  maxRate,
				Strict:   true,
				Lockstep: lockstep,
				Workers:  workers,
			})
			if err != nil {
				t.Fatalf("seed %d (%s, lockstep=%v workers=%d): %v",
					seed, placement, lockstep, workers, err)
			}
			return buf.String(), res.TraceDigest
		}

		refTrace, refDigest := run(true, 1)
		for _, v := range []struct {
			name    string
			workers int
		}{{"event", 1}, {"event-sharded", 4}} {
			trace, digest := run(false, v.workers)
			if digest != refDigest {
				t.Errorf("seed %d (%s): %s digest %016x != lockstep %016x",
					seed, placement, v.name, digest, refDigest)
			}
			if trace != refTrace {
				t.Errorf("seed %d (%s): %s trace diverged from lockstep (%s)",
					seed, placement, v.name, firstDiff(trace, refTrace))
			}
		}
	}
}

// firstDiff locates the first byte two traces disagree on, with context.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("byte %d: %q vs %q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("lengths %d vs %d", len(a), len(b))
}
