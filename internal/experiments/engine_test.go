package experiments

import (
	"reflect"
	"testing"
)

// TestEngineDeterminism runs a set of drivers serially and through the
// parallel worker pool against equivalent environments and requires the
// reports to be deeply identical: the engine may only change wall-clock
// time, never results. Cheap drivers keep the test fast; every driver goes
// through the same Env surface (machines per run, synchronized MaxRate
// cache), so the property generalizes.
func TestEngineDeterminism(t *testing.T) {
	drivers := []Driver{
		{"table3.1", Table31},
		{"table4.3", Table43},
		{"fig5.1-sub", func(e *Env) *Report {
			return singleAppReport(e, SingleAppOptions{TargetFrac: 0.50, Benchmarks: []string{"SW", "BL"}}, "sub")
		}},
		{"scenarios", ScenarioSweep},
	}
	envA, err := NewEnv(Quick())
	if err != nil {
		t.Fatal(err)
	}
	envB, err := NewEnv(Quick())
	if err != nil {
		t.Fatal(err)
	}

	serialOrder := make([]string, 0, len(drivers))
	serial := RunDrivers(envA, drivers, 1, func(o Outcome) {
		serialOrder = append(serialOrder, o.Name)
	})
	// An explicit width > 1 exercises the real worker pool even on a
	// single-CPU machine (0 would degrade to the serial path there).
	parallelOrder := make([]string, 0, len(drivers))
	parallel := RunDrivers(envB, drivers, 3, func(o Outcome) {
		parallelOrder = append(parallelOrder, o.Name)
	})

	if !reflect.DeepEqual(serialOrder, parallelOrder) {
		t.Fatalf("onDone order differs: serial %v, parallel %v", serialOrder, parallelOrder)
	}
	for i := range drivers {
		if serial[i].Name != parallel[i].Name {
			t.Fatalf("outcome %d name: %q vs %q", i, serial[i].Name, parallel[i].Name)
		}
		if !reflect.DeepEqual(serial[i].Report, parallel[i].Report) {
			t.Errorf("driver %s: report differs between serial and parallel engine:\nserial: %s\nparallel: %s",
				serial[i].Name, serial[i].Report.String(), parallel[i].Report.String())
		}
	}
}

// TestSelectDrivers covers the registry filter.
func TestSelectDrivers(t *testing.T) {
	all, err := SelectDrivers("all")
	if err != nil || len(all) != 18 {
		t.Fatalf("all: %d drivers, err %v", len(all), err)
	}
	one, err := SelectDrivers("fig5.3")
	if err != nil || len(one) != 1 || one[0].Name != "fig5.3" {
		t.Fatalf("fig5.3: %v, err %v", one, err)
	}
	if _, err := SelectDrivers("nope"); err == nil {
		t.Fatal("unknown driver accepted")
	}
}
