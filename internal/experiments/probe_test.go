package experiments

import (
	"testing"
)

// TestProbeSingleApp logs quick-scale Figure 5.1 numbers for inspection.
// It asserts nothing beyond successful execution; the shape assertions live
// in experiments_test.go.
func TestProbeSingleApp(t *testing.T) {
	if testing.Short() {
		t.Skip("probe only")
	}
	e, err := NewEnv(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := RunSingleApp(e, SingleAppOptions{TargetFrac: 0.50})
	for _, row := range rows {
		base := row.Results["Baseline"]
		t.Logf("%s target=%.2f base(rate=%.2f pw=%.2f)", row.Bench.Short, e.Target(row.Bench, 0.5).Avg, base.Rate, base.PowerW)
		for _, v := range Fig51Versions {
			r := row.Results[v]
			t.Logf("  %-8s rate=%.2f norm=%.2f pw=%.2fW pp=%.3f rel=%.2f state=%s",
				v, r.Rate, r.NormPerf, r.PowerW, r.PP, r.PP/base.PP, r.State.Pretty(e.Plat))
		}
	}
}
