package core

import (
	"math"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
)

// PerfEval is the performance estimator's evaluation of one system state.
type PerfEval struct {
	Assignment
	TB, TL     float64 // t_B and t_L (time to finish one unit of total work)
	TF         float64 // t_f = max(t_B, t_L)
	Throughput float64 // 1/t_f, in units of work per second (relative scale)
	UB, UL     float64 // estimated utilization of the used cores per cluster
}

// PerfEstimator is HARS's performance estimator (§3.1.1): performance is
// assumed proportional to core count and frequency level with the
// platform's nominal big/little ratio (r0 scaled by the cluster
// frequencies), and the thread assignment of Table 3.1 is assumed.
type PerfEstimator struct {
	Plat *hmp.Platform
	T    int // total threads of the target application

	// R0 overrides the platform's nominal big/little performance ratio
	// when positive. The online ratio learner (ratio.go) installs its
	// estimate here; zero keeps the paper's fixed r0.
	R0 float64

	// Dense memo table over the small 4-D state space (core counts ×
	// frequency levels), shared by Search, the tabu search, and MP-HARS's
	// per-application sweeps. Entries are validated against memoEpoch,
	// which bumps whenever the effective ratio or thread count changes, so
	// invalidation is O(1). Evaluate is a pure function of (state, ratio,
	// T): memoized results are bit-for-bit identical to recomputed ones.
	memo          []PerfEval
	memoStamp     []uint32
	memoEpoch     uint32
	memoR0        float64 // effective ratio the current epoch is valid for
	memoT         int
	nCL, nFB, nFL int // index strides (little cores + 1, big levels, little levels)
	memoStates    int
	scratch       PerfEval // fallback slot for out-of-grid states
}

// Ratio returns the big/little performance ratio in effect.
func (e *PerfEstimator) Ratio() float64 {
	if e.R0 > 0 {
		return e.R0
	}
	return e.Plat.R0()
}

// initMemo sizes the memo table for the estimator's platform.
func (e *PerfEstimator) initMemo() {
	nCB := e.Plat.Clusters[hmp.Big].Cores + 1
	e.nCL = e.Plat.Clusters[hmp.Little].Cores + 1
	e.nFB = e.Plat.Clusters[hmp.Big].Levels()
	e.nFL = e.Plat.Clusters[hmp.Little].Levels()
	e.memoStates = nCB * e.nCL * e.nFB * e.nFL
	e.memo = make([]PerfEval, e.memoStates)
	e.memoStamp = make([]uint32, e.memoStates)
	e.memoEpoch = 1
	e.memoR0 = e.Ratio()
	e.memoT = e.T
}

// EvaluateCached is Evaluate through the estimator's memo table. Results are
// identical to Evaluate; states outside the platform grid fall through to a
// direct computation.
func (e *PerfEstimator) EvaluateCached(st hmp.State) PerfEval {
	return *e.evalCachedPtr(st)
}

// evalCachedPtr is EvaluateCached without the struct copy: the pointer is
// into the memo table (or a scratch slot for out-of-grid states) and is
// valid until the next out-of-grid evaluation or epoch change.
func (e *PerfEstimator) evalCachedPtr(st hmp.State) *PerfEval {
	if e.memo == nil {
		e.initMemo()
	}
	if r := e.Ratio(); r != e.memoR0 || e.T != e.memoT {
		e.memoEpoch++
		e.memoR0 = r
		e.memoT = e.T
	}
	if st.BigCores < 0 || st.LittleCores < 0 || st.LittleCores >= e.nCL ||
		st.BigLevel < 0 || st.BigLevel >= e.nFB ||
		st.LittleLevel < 0 || st.LittleLevel >= e.nFL {
		e.scratch = e.Evaluate(st)
		return &e.scratch
	}
	idx := ((st.BigCores*e.nCL+st.LittleCores)*e.nFB+st.BigLevel)*e.nFL + st.LittleLevel
	if idx >= e.memoStates {
		e.scratch = e.Evaluate(st)
		return &e.scratch
	}
	if e.memoStamp[idx] != e.memoEpoch {
		e.memo[idx] = e.Evaluate(st)
		e.memoStamp[idx] = e.memoEpoch
	}
	return &e.memo[idx]
}

// Evaluate computes the Table 3.1 assignment and timing for a state.
func (e *PerfEstimator) Evaluate(st hmp.State) PerfEval {
	lilIPC := e.Plat.Clusters[hmp.Little].IPC
	sb := e.Ratio() * lilIPC * e.Plat.FreqScale(hmp.Big, st.BigLevel)
	sl := lilIPC * e.Plat.FreqScale(hmp.Little, st.LittleLevel)
	r := sb / sl
	a := Assign(e.T, st.BigCores, st.LittleCores, r)
	tb, tl, tf := a.CompletionTime(e.T, sb, sl)
	ev := PerfEval{Assignment: a, TB: tb, TL: tl, TF: tf}
	if tf > 0 && !math.IsInf(tf, 1) {
		ev.Throughput = 1 / tf
		ev.UB = tb / tf
		ev.UL = tl / tf
	}
	return ev
}

// EstimateRate predicts the heartbeat rate in a candidate state given the
// observed rate in the current state, using the paper's simple workload
// model: the amount of work per heartbeat stays what it was in the last
// period, so the rate scales with estimated throughput.
func (e *PerfEstimator) EstimateRate(cur hmp.State, curRate float64, cand hmp.State) float64 {
	curEv := e.EvaluateCached(cur)
	candEv := e.EvaluateCached(cand)
	if curEv.Throughput <= 0 {
		return 0
	}
	return curRate * candEv.Throughput / curEv.Throughput
}

// PowerEstimator is HARS's power estimator (§3.1.2): the fitted per-cluster
// linear models applied to the estimated used cores and utilizations.
type PowerEstimator struct {
	Model *power.LinearModel
}

// Estimate returns the estimated watts for a state whose performance
// evaluation is ev.
func (pe *PowerEstimator) Estimate(st hmp.State, ev PerfEval) float64 {
	return pe.estimateEval(st, &ev)
}

// estimateEval is Estimate without the PerfEval copy (hot in the search
// sweeps); the two-cluster formula lives only here.
func (pe *PowerEstimator) estimateEval(st hmp.State, ev *PerfEval) float64 {
	return pe.Model.Estimate(hmp.Big, st.BigLevel, ev.CBU, ev.UB) +
		pe.Model.Estimate(hmp.Little, st.LittleLevel, ev.CLU, ev.UL)
}

// Estimators bundles the two estimators the runtime manager consults.
type Estimators struct {
	Perf  *PerfEstimator
	Power *PowerEstimator
}

// NewEstimators builds estimators for an application with T threads on the
// platform, using the fitted power model.
func NewEstimators(plat *hmp.Platform, threads int, model *power.LinearModel) Estimators {
	perf := &PerfEstimator{Plat: plat, T: threads}
	perf.initMemo() // preallocate so Search sweeps are allocation-free
	return Estimators{
		Perf:  perf,
		Power: &PowerEstimator{Model: model},
	}
}

// Score evaluates one candidate state: estimated rate, estimated power, and
// normalized performance per watt. The current state's evaluation is a memo
// hit after the first candidate of a sweep; ScoreEval is the variant for
// callers that have already hoisted its throughput out of their loop.
func (e Estimators) Score(cur hmp.State, curRate float64, cand hmp.State, tgt heartbeat.Target) (rate, watts, pp float64) {
	return e.ScoreEval(e.Perf.evalCachedPtr(cur).Throughput, curRate, cand, tgt)
}

// ScoreEval scores a candidate against the current state's estimated
// throughput (curTput).
func (e Estimators) ScoreEval(curTput, curRate float64, cand hmp.State, tgt heartbeat.Target) (rate, watts, pp float64) {
	candEv := e.Perf.evalCachedPtr(cand)
	if curTput > 0 {
		rate = curRate * candEv.Throughput / curTput
	}
	watts = e.Power.estimateEval(cand, candEv)
	if watts <= 0 {
		watts = 1e-9
	}
	pp = heartbeat.NormalizedPerf(tgt, rate) / watts
	return rate, watts, pp
}
