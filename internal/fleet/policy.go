package fleet

import (
	"fmt"
	"sort"

	"repro/internal/hmp"
)

// Policy is a pluggable placement policy: it scores the desirability of
// admitting an application onto a node. The scheduler picks the admissible
// node with the highest score, breaking ties by the lowest node index, so a
// policy never has to think about capacity or determinism — only
// preference.
type Policy interface {
	// Name is the policy's registry key (the scenario format's "placement"
	// field).
	Name() string
	// Score rates node n as a destination; higher is better. Scores are
	// compared within one decision only, so any consistent scale works.
	Score(n *Node) float64
}

// The built-in policy names.
const (
	PolicyLeastLoaded = "least-loaded"
	PolicyBigFirst    = "big-first"
	PolicyCoolest     = "coolest"
)

// leastLoaded steers arrivals to the node with the fewest runnable threads
// — the classic load balancer, blind to heterogeneity and heat.
type leastLoaded struct{}

func (leastLoaded) Name() string          { return PolicyLeastLoaded }
func (leastLoaded) Score(n *Node) float64 { return -float64(n.Load()) }

// bigFirst is the heterogeneity-aware policy: it steers arrivals to the
// node with the most free big-core capacity, falling back on free little
// capacity — applications land where the fast silicon is idle, the fleet
// analogue of HARS preferring big cores while power allows.
type bigFirst struct{}

func (bigFirst) Name() string { return PolicyBigFirst }
func (bigFirst) Score(n *Node) float64 {
	// Weight big capacity far above little so a single free big core beats
	// any amount of free little capacity (platforms stay well under 64
	// cores per cluster, the CPU-mask width).
	return 64*float64(n.FreeCores(hmp.Big)) + float64(n.FreeCores(hmp.Little))
}

// coolest is the heat-aware policy: it steers arrivals to the node whose
// hotter cluster is coldest, so load lands where the thermal headroom is —
// before governor caps bite — closing the heat-aware-placement item of the
// thermal roadmap at fleet granularity. Nodes without a thermal governor
// score as ambient.
type coolest struct{}

func (coolest) Name() string          { return PolicyCoolest }
func (coolest) Score(n *Node) float64 { return -n.MaxTempC() }

// Policies returns the built-in policies in presentation order.
func Policies() []Policy {
	return []Policy{leastLoaded{}, bigFirst{}, coolest{}}
}

// PolicyNames returns the registered policy names, sorted.
func PolicyNames() []string {
	var out []string
	for _, p := range Policies() {
		out = append(out, p.Name())
	}
	sort.Strings(out)
	return out
}

// PolicyByName resolves a registered placement policy; the empty name
// selects least-loaded, the default.
func PolicyByName(name string) (Policy, error) {
	if name == "" {
		return leastLoaded{}, nil
	}
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fleet: unknown placement policy %q (have %v)", name, PolicyNames())
}
