// Command hars-scenario replays a declarative dynamic-event scenario — a
// JSON script of application arrivals and departures, core hotplug, DVFS
// capping, target changes, and workload phase changes — on the simulated
// platform (or, when the scenario declares nodes, on a whole fleet of
// heterogeneous machines sharing one clock), emitting a deterministic
// per-sample metric trace.
//
// Usage:
//
//	hars-scenario -in scenario.json [-trace out.csv] [-strict] [-check]
//	              [-summary json] [-trace-decisions] [-lockstep]
//	              [-steady=false] [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//	hars-scenario -in scenario.json -counterfactual <id> [-counterfactual-k 3]
//	hars-scenario -gen -seed 7 [-manager mphars-i] [-apps 3] [-events 6]
//	              [-duration 20000] [-nodes 3] [-placement coolest] [-faults]
//	              [-decisions] [-write scenario.json] [-trace out.csv]
//
// The trace goes to stdout unless -trace names a file; the run summary goes
// to stderr. With -summary json the summary is emitted instead as a single
// machine-readable JSON document on stdout (byte-stable field order, so
// summaries can be diffed and checksummed), and the trace is discarded
// unless -trace names a file. Replaying the same scenario always produces
// byte-identical trace output (the FNV-64a digest printed in the summary
// witnesses it), so traces can be diffed across runs and machines.
//
// -trace-decisions arms decision tracing (exactly as if the scenario
// declared an enabled "decisions" block): every scheduler decision is
// emitted as a "d" trace line with its full scored candidate set. The
// always-on decision rollup (counts, margins, queue-wait histogram) is in
// every summary regardless. -counterfactual <id> forks the run at that
// recorded decision instead: each top-k alternative candidate is forced in
// a full replay and the per-alternative regret (ΔSLO misses, Δenergy,
// Δmoves) is reported in the chosen -summary format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/hmp"
	"repro/internal/scenario"
)

func main() {
	in := flag.String("in", "", "scenario JSON to replay")
	gen := flag.Bool("gen", false, "generate a random scenario instead of reading one")
	seed := flag.Int64("seed", 1, "generator seed (-gen)")
	manager := flag.String("manager", scenario.ManagerMPHARSI, "generated scenario's manager kind (-gen)")
	apps := flag.Int("apps", 3, "generated scenario's maximum app count (-gen)")
	events := flag.Int("events", 6, "generated scenario's dynamic event count (-gen)")
	duration := flag.Int64("duration", 20000, "generated scenario's duration in ms (-gen)")
	nodes := flag.Int("nodes", 0, "generated scenario's fleet size; 0 = classic single machine (-gen)")
	placement := flag.String("placement", "", "generated fleet's placement policy; empty draws one from the seed (-gen)")
	genFaults := flag.Bool("faults", false, "generated fleet scenario gets a seeded faults block (-gen)")
	write := flag.String("write", "", "save the generated scenario JSON here (-gen)")
	tracePath := flag.String("trace", "", "trace output file (default stdout)")
	strict := flag.Bool("strict", false, "verify runtime invariants after every action and sample")
	check := flag.Bool("check", false, "verify runtime invariants after every tick (debug; slower)")
	summary := flag.String("summary", "text", `summary format: "text" (stderr) or "json" (stdout, byte-stable field order)`)
	lockstep := flag.Bool("lockstep", false, "force the reference per-tick fleet advancement instead of the event-driven core (bit-identical; for benchmarking)")
	steady := flag.Bool("steady", true, "steady-phase turbo path on busy machines; -steady=false forces the general per-tick loop (bit-identical; for benchmarking)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	workers := flag.Int("workers", 1, "shard node advancement between fleet decision points across N goroutines (any width is byte-identical)")
	traceDecisions := flag.Bool("trace-decisions", false, "emit every scheduler decision as a d trace line with its scored candidate set")
	counterfactual := flag.Int64("counterfactual", -1, "fork the run at this decision ID: force each top-k alternative and report per-alternative regret")
	counterfactualK := flag.Int("counterfactual-k", 3, "how many alternative candidates -counterfactual replays")
	genDecisions := flag.Bool("decisions", false, "generated scenario gets an enabled decisions block (-gen)")
	flag.Parse()
	if *summary != "text" && *summary != "json" {
		fmt.Fprintf(os.Stderr, "unknown -summary format %q (want text or json)\n", *summary)
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Written on the way out of every non-error return path; fatal()
		// exits without profiles, which is fine — those runs produced no
		// result worth profiling.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var sc *scenario.Scenario
	switch {
	case *gen:
		sc = scenario.Generate(*seed, scenario.GenConfig{
			Manager:    *manager,
			MaxApps:    *apps,
			Events:     *events,
			DurationMS: *duration,
			Nodes:      *nodes,
			Placement:  *placement,
			Faults:     *genFaults,
			Decisions:  *genDecisions,
		})
		if *write != "" {
			f, err := os.Create(*write)
			if err != nil {
				fatal(err)
			}
			if err := sc.Encode(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *write)
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		sc, err = scenario.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -in <scenario.json> or -gen (see -h)")
		os.Exit(2)
	}

	var trace io.Writer = os.Stdout
	if *summary == "json" {
		// The JSON summary owns stdout; the trace digest is still computed
		// (and reported) over the discarded bytes.
		trace = io.Discard
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		trace = f
	}

	opts := scenario.Options{
		Trace: trace, Strict: *strict, CheckEveryTick: *check,
		Lockstep: *lockstep, NoSteady: !*steady, Workers: *workers,
		TraceDecisions: *traceDecisions,
	}

	if *counterfactual >= 0 {
		cf, err := scenario.RunCounterfactual(sc, opts, uint64(*counterfactual), *counterfactualK)
		if err != nil {
			fatal(err)
		}
		if *summary == "json" {
			if err := writeJSONCounterfactual(os.Stdout, sc, cf); err != nil {
				fatal(err)
			}
			return
		}
		writeTextCounterfactual(os.Stderr, sc, cf)
		return
	}

	res, err := scenario.Run(sc, opts)
	if err != nil {
		fatal(err)
	}

	if *summary == "json" {
		if err := writeJSONSummary(os.Stdout, sc, res); err != nil {
			fatal(err)
		}
		return
	}

	w := os.Stderr
	fleetRun := len(sc.Nodes) > 0
	if fleetRun {
		fmt.Fprintf(w, "scenario %s: manager %s, %d nodes (placement %s), %d apps, %d events, %d ms\n",
			sc.Name, sc.Manager, len(res.Nodes), res.Placement, len(sc.Apps), len(sc.Events), sc.DurationMS)
	} else {
		fmt.Fprintf(w, "scenario %s: manager %s, %d apps, %d events, %d ms\n",
			sc.Name, sc.Manager, len(sc.Apps), len(sc.Events), sc.DurationMS)
	}
	for _, a := range res.Apps {
		status := "ran to end"
		switch {
		case a.Skipped:
			status = "dropped (queued, never admitted)"
		case a.Departed:
			status = "departed"
		}
		if a.Queued && !a.Skipped {
			status += ", queued first"
		}
		where := ""
		if fleetRun && a.Node != "" {
			where = fmt.Sprintf(" node=%s moves=%d", a.Node, a.NodeMigrations)
			if a.MigrationDelayUS > 0 {
				where += fmt.Sprintf(" frozen=%dµs", a.MigrationDelayUS)
			}
		}
		if a.SLOSamples > 0 {
			where += fmt.Sprintf(" slo-miss=%d/%d", a.SLOMisses, a.SLOSamples)
		}
		if a.Recoveries > 0 {
			where += fmt.Sprintf(" recoveries=%d lost=%dµs", a.Recoveries, a.LostWorkUS)
		}
		fmt.Fprintf(w, "  %-8s beats=%-6d work=%-10.1f migrations=%-5d %s%s\n",
			a.Name, a.Beats, a.Work, a.Migrations, status, where)
	}
	fmt.Fprintf(w, "energy %.1f J, overhead %d µs, %d samples, trace digest %016x\n",
		res.EnergyJ, res.OverheadUS, res.Samples, res.TraceDigest)
	if fleetRun {
		fmt.Fprintf(w, "fleet: %d arrivals queued, %d dropped, %d node migrations (%d µs frozen)\n",
			res.QueuedArrivals, res.DroppedArrivals, res.NodeMigrations, res.MigrationDelayUS)
	}
	d := &res.Decisions
	fmt.Fprintf(w, "decisions: %d (%d admissions, %d re-placements, %d migrations, %d gated, %d no-candidate), mean margin %.3f\n",
		d.Decisions, d.Admissions, d.Replacements, d.Migrations, d.GatedMigrations, d.NoCandidate, d.MeanMargin())
	fmt.Fprintf(w, "queue wait: %s (mean %.0f µs, max %d µs)\n",
		d.QueueWait.String(), d.QueueWait.MeanUS(), d.QueueWait.MaxUS)
	if n := len(res.DecisionRecords); n > 0 || res.DecisionsDropped > 0 {
		fmt.Fprintf(w, "decision trace: %d records kept, %d dropped\n", n, res.DecisionsDropped)
	}
	if res.SLOSamples > 0 {
		fmt.Fprintf(w, "slo: %d misses over %d scored samples (%.1f%%)\n",
			res.SLOMisses, res.SLOSamples, 100*float64(res.SLOMisses)/float64(res.SLOSamples))
	}
	if sc.Faults != nil {
		fmt.Fprintf(w, "faults: %d node crashes, %d recoveries, %d µs work lost, %d transfer failures, %d apps stranded\n",
			res.NodeCrashes, res.Recoveries, res.LostWorkUS, res.TransferFails, res.StrandedApps)
	}
	for _, nr := range res.Nodes {
		if fleetRun {
			fmt.Fprintf(w, "node %s (%s): energy %.1f J, overhead %d µs, online mask %x\n",
				nr.Name, nr.Manager, nr.EnergyJ, nr.OverheadUS, uint64(nr.Machine.OnlineMask()))
		}
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			fmt.Fprintf(w, "  %s: level %d, cap %d, %d/%d cores online\n",
				k, nr.Machine.Level(k), nr.Machine.LevelCap(k),
				nr.Machine.OnlineCount(k), nr.Machine.Platform().Clusters[k].Cores)
		}
		if gov := nr.Thermal; gov != nil {
			spec := gov.Spec()
			fmt.Fprintf(w, "  thermal: trip %.1f°C / throttle %.1f°C / release %.1f°C, %d throttles (%d trips), %d releases\n",
				spec.TripC, spec.ThrottleC, spec.ReleaseC, gov.Throttles(), gov.Trips(), gov.Releases())
			for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
				fmt.Fprintf(w, "    %s: %.1f°C now, %.1f°C peak\n", k, gov.TempC(k), gov.PeakC(k))
			}
		}
	}
}

// The -summary json schema. Struct field order IS the output field order
// (encoding/json serializes in declaration order), which is what makes the
// documents byte-stable across runs: identical runs produce identical
// bytes, so summaries can be diffed and checksummed like traces.
type appSummary struct {
	Name             string  `json:"name"`
	Beats            int64   `json:"beats"`
	Work             float64 `json:"work"`
	Migrations       int     `json:"migrations"`
	NodeMigrations   int     `json:"node_migrations"`
	MigrationDelayUS int64   `json:"migration_delay_us"`
	Node             string  `json:"node,omitempty"`
	Queued           bool    `json:"queued"`
	Skipped          bool    `json:"skipped"`
	Departed         bool    `json:"departed"`
	SLOSamples       int     `json:"slo_samples,omitempty"`
	SLOMisses        int     `json:"slo_misses,omitempty"`
	Recoveries       int     `json:"recoveries,omitempty"`
	LostWorkUS       int64   `json:"lost_work_us,omitempty"`
	Stranded         bool    `json:"stranded,omitempty"`
}

type thermalSummary struct {
	BigTempC    float64 `json:"big_temp_c"`
	LittleTempC float64 `json:"little_temp_c"`
	BigPeakC    float64 `json:"big_peak_c"`
	LittlePeakC float64 `json:"little_peak_c"`
	Throttles   int     `json:"throttles"`
	Trips       int     `json:"trips"`
	Releases    int     `json:"releases"`
}

type nodeSummary struct {
	Name        string          `json:"name,omitempty"`
	Manager     string          `json:"manager"`
	EnergyJ     float64         `json:"energy_j"`
	OverheadUS  int64           `json:"overhead_us"`
	OnlineMask  string          `json:"online_mask"`
	BigLevel    int             `json:"big_level"`
	LittleLevel int             `json:"little_level"`
	BigCap      int             `json:"big_cap"`
	LittleCap   int             `json:"little_cap"`
	Thermal     *thermalSummary `json:"thermal,omitempty"`
}

type runSummary struct {
	Scenario         string  `json:"scenario"`
	Manager          string  `json:"manager"`
	Placement        string  `json:"placement,omitempty"`
	DurationMS       int64   `json:"duration_ms"`
	Samples          int     `json:"samples"`
	TraceDigest      string  `json:"trace_digest"`
	EnergyJ          float64 `json:"energy_j"`
	OverheadUS       int64   `json:"overhead_us"`
	QueuedArrivals   int     `json:"queued_arrivals"`
	DroppedArrivals  int     `json:"dropped_arrivals"`
	NodeMigrations   int     `json:"node_migrations"`
	MigrationDelayUS int64   `json:"migration_delay_us"`
	SLOSamples       int     `json:"slo_samples"`
	SLOMisses        int     `json:"slo_misses"`
	// The fault rollups carry omitempty so fault-free summaries stay
	// byte-identical to pre-fault ones.
	NodeCrashes   int             `json:"node_crashes,omitempty"`
	Recoveries    int             `json:"recoveries,omitempty"`
	LostWorkUS    int64           `json:"lost_work_us,omitempty"`
	TransferFails int             `json:"transfer_fails,omitempty"`
	StrandedApps  int             `json:"stranded_apps,omitempty"`
	Decisions     decisionSummary `json:"decisions"`
	Apps          []appSummary    `json:"apps"`
	Nodes         []nodeSummary   `json:"nodes"`
}

// decisionSummary is the always-on decision rollup: present in every
// summary whether or not decision tracing ran, so policy sweeps can diff
// decision counts without paying for candidate recording.
type decisionSummary struct {
	Decisions       uint64  `json:"decisions"`
	Admissions      int     `json:"admissions"`
	Replacements    int     `json:"replacements"`
	Migrations      int     `json:"migrations"`
	GatedMigrations int     `json:"gated_migrations"`
	NoCandidate     int     `json:"no_candidate"`
	MeanMargin      float64 `json:"mean_margin"`
	QueueWait       string  `json:"queue_wait"`
	QueueWaitMeanUS float64 `json:"queue_wait_mean_us"`
	QueueWaitMaxUS  int64   `json:"queue_wait_max_us"`
	// Traced/Dropped describe the opt-in decision trace; both stay zero
	// (and Dropped is omitted) when tracing is off.
	Traced  int   `json:"traced"`
	Dropped int64 `json:"dropped,omitempty"`
}

func summarizeDecisions(res *scenario.Result) decisionSummary {
	d := &res.Decisions
	return decisionSummary{
		Decisions:       d.Decisions,
		Admissions:      d.Admissions,
		Replacements:    d.Replacements,
		Migrations:      d.Migrations,
		GatedMigrations: d.GatedMigrations,
		NoCandidate:     d.NoCandidate,
		MeanMargin:      d.MeanMargin(),
		QueueWait:       d.QueueWait.String(),
		QueueWaitMeanUS: d.QueueWait.MeanUS(),
		QueueWaitMaxUS:  d.QueueWait.MaxUS,
		Traced:          len(res.DecisionRecords),
		Dropped:         res.DecisionsDropped,
	}
}

// writeJSONSummary renders the run's fleet/node/app summaries as one
// indented JSON document.
func writeJSONSummary(w io.Writer, sc *scenario.Scenario, res *scenario.Result) error {
	out := runSummary{
		Scenario:         sc.Name,
		Manager:          sc.Manager,
		DurationMS:       sc.DurationMS,
		Samples:          res.Samples,
		TraceDigest:      fmt.Sprintf("%016x", res.TraceDigest),
		EnergyJ:          res.EnergyJ,
		OverheadUS:       int64(res.OverheadUS),
		QueuedArrivals:   res.QueuedArrivals,
		DroppedArrivals:  res.DroppedArrivals,
		NodeMigrations:   res.NodeMigrations,
		MigrationDelayUS: int64(res.MigrationDelayUS),
		SLOSamples:       res.SLOSamples,
		SLOMisses:        res.SLOMisses,
		NodeCrashes:      res.NodeCrashes,
		Recoveries:       res.Recoveries,
		LostWorkUS:       int64(res.LostWorkUS),
		TransferFails:    res.TransferFails,
		StrandedApps:     res.StrandedApps,
		Decisions:        summarizeDecisions(res),
	}
	if len(sc.Nodes) > 0 {
		out.Placement = res.Placement
	}
	for _, a := range res.Apps {
		out.Apps = append(out.Apps, appSummary{
			Name:             a.Name,
			Beats:            a.Beats,
			Work:             a.Work,
			Migrations:       a.Migrations,
			NodeMigrations:   a.NodeMigrations,
			MigrationDelayUS: int64(a.MigrationDelayUS),
			Node:             a.Node,
			Queued:           a.Queued,
			Skipped:          a.Skipped,
			Departed:         a.Departed,
			SLOSamples:       a.SLOSamples,
			SLOMisses:        a.SLOMisses,
			Recoveries:       a.Recoveries,
			LostWorkUS:       int64(a.LostWorkUS),
			Stranded:         a.Stranded,
		})
	}
	for _, nr := range res.Nodes {
		ns := nodeSummary{
			Name:        nr.Name,
			Manager:     nr.Manager,
			EnergyJ:     nr.EnergyJ,
			OverheadUS:  int64(nr.OverheadUS),
			OnlineMask:  fmt.Sprintf("%x", uint64(nr.Machine.OnlineMask())),
			BigLevel:    nr.Machine.Level(hmp.Big),
			LittleLevel: nr.Machine.Level(hmp.Little),
			BigCap:      nr.Machine.LevelCap(hmp.Big),
			LittleCap:   nr.Machine.LevelCap(hmp.Little),
		}
		if gov := nr.Thermal; gov != nil {
			ns.Thermal = &thermalSummary{
				BigTempC:    gov.TempC(hmp.Big),
				LittleTempC: gov.TempC(hmp.Little),
				BigPeakC:    gov.PeakC(hmp.Big),
				LittlePeakC: gov.PeakC(hmp.Little),
				Throttles:   gov.Throttles(),
				Trips:       gov.Trips(),
				Releases:    gov.Releases(),
			}
		}
		out.Nodes = append(out.Nodes, ns)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// The -counterfactual JSON schema (declaration order = output order, like
// the run summary).
type cfAlternativeSummary struct {
	Node            string  `json:"node"`
	Score           float64 `json:"score"`
	SLOMisses       int     `json:"slo_misses"`
	EnergyJ         float64 `json:"energy_j"`
	NodeMigrations  int     `json:"node_migrations"`
	DSLOMisses      int     `json:"d_slo_misses"`
	DEnergyJ        float64 `json:"d_energy_j"`
	DNodeMigrations int     `json:"d_node_migrations"`
}

type cfSummary struct {
	Scenario               string                 `json:"scenario"`
	ID                     uint64                 `json:"id"`
	Kind                   string                 `json:"kind"`
	App                    string                 `json:"app"`
	From                   string                 `json:"from,omitempty"`
	Chosen                 string                 `json:"chosen,omitempty"`
	Outcome                string                 `json:"outcome"`
	BaselineSLOMisses      int                    `json:"baseline_slo_misses"`
	BaselineEnergyJ        float64                `json:"baseline_energy_j"`
	BaselineNodeMigrations int                    `json:"baseline_node_migrations"`
	RegretSLOMisses        int                    `json:"regret_slo_misses"`
	RegretEnergyJ          float64                `json:"regret_energy_j"`
	Alternatives           []cfAlternativeSummary `json:"alternatives"`
}

func writeJSONCounterfactual(w io.Writer, sc *scenario.Scenario, cf *scenario.Counterfactual) error {
	rm, re := cf.Regret()
	out := cfSummary{
		Scenario:               sc.Name,
		ID:                     cf.ID,
		Kind:                   cf.Decision.Kind.String(),
		App:                    cf.Decision.App,
		From:                   cf.Decision.From,
		Chosen:                 cf.Decision.Chosen,
		Outcome:                cf.Decision.Outcome,
		BaselineSLOMisses:      cf.BaselineSLOMisses,
		BaselineEnergyJ:        cf.BaselineEnergyJ,
		BaselineNodeMigrations: cf.BaselineNodeMigrations,
		RegretSLOMisses:        rm,
		RegretEnergyJ:          re,
	}
	for _, a := range cf.Alternatives {
		out.Alternatives = append(out.Alternatives, cfAlternativeSummary{
			Node:            a.Node,
			Score:           a.Score,
			SLOMisses:       a.SLOMisses,
			EnergyJ:         a.EnergyJ,
			NodeMigrations:  a.NodeMigrations,
			DSLOMisses:      a.DSLOMisses,
			DEnergyJ:        a.DEnergyJ,
			DNodeMigrations: a.DNodeMigrations,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func writeTextCounterfactual(w io.Writer, sc *scenario.Scenario, cf *scenario.Counterfactual) {
	d := cf.Decision
	from := d.From
	if from == "" {
		from = "-"
	}
	to := d.Chosen
	if to == "" {
		to = "-"
	}
	fmt.Fprintf(w, "counterfactual: scenario %s, decision %d (%s %s %s>%s %s)\n",
		sc.Name, cf.ID, d.Kind, d.App, from, to, d.Outcome)
	fmt.Fprintf(w, "baseline: %d slo misses, %.1f J, %d node moves\n",
		cf.BaselineSLOMisses, cf.BaselineEnergyJ, cf.BaselineNodeMigrations)
	if len(cf.Alternatives) == 0 {
		fmt.Fprintln(w, "no alternative candidates to replay")
		return
	}
	for _, a := range cf.Alternatives {
		fmt.Fprintf(w, "  force %-8s (score %.3f): %d misses (%+d), %.1f J (%+.1f), %d moves (%+d)\n",
			a.Node, a.Score, a.SLOMisses, a.DSLOMisses, a.EnergyJ, a.DEnergyJ,
			a.NodeMigrations, a.DNodeMigrations)
	}
	rm, re := cf.Regret()
	fmt.Fprintf(w, "regret: %d slo misses, %.1f J\n", rm, re)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
