package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/mphars"
	"repro/internal/stats"
)

// Table31 regenerates the paper's Table 3.1: the thread assignment to the
// big and little clusters for the default platform (CB = CL = 4) at the
// nominal performance ratio r0 = 1.5, over a representative range of T.
func Table31(e *Env) *Report {
	rep := &Report{Title: "Table 3.1: thread assignment to the big and little clusters (r = 1.5, CB = CL = 4)"}
	rep.Table.Header = []string{"T", "regime", "TB", "TL", "CB,U", "CL,U"}
	cb, cl := e.Plat.Clusters[hmp.Big].Cores, e.Plat.Clusters[hmp.Little].Cores
	r := e.Plat.R0()
	rcb := r * float64(cb)
	for t := 1; t <= 16; t++ {
		a := core.Assign(t, cb, cl, r)
		regime := "T ≤ CB"
		switch {
		case t <= cb:
		case float64(t) <= rcb:
			regime = "CB < T ≤ r·CB"
		case float64(t) <= rcb+float64(cl):
			regime = "r·CB < T ≤ r·CB+CL"
		default:
			regime = "r·CB+CL < T"
		}
		rep.Table.AddRow(
			fmt.Sprint(t), regime,
			fmt.Sprint(a.TB), fmt.Sprint(a.TL),
			fmt.Sprint(a.CBU), fmt.Sprint(a.CLU))
	}
	return rep
}

// Table43 regenerates the paper's Table 4.3: the state & freeze decision of
// MP-HARS's interference-aware adaptation for every combination of the
// application's satisfaction, the other applications' aggregate
// satisfaction, and the cluster's frozen state.
func Table43(_ *Env) *Report {
	rep := &Report{Title: "Table 4.3: state & freeze decision table"}
	rep.Table.Header = []string{"AppInPeriod", "TheOthers", "FrozenState", "StateDecision", "FreezeDecision"}
	sats := []heartbeat.Satisfaction{heartbeat.Underperf, heartbeat.Achieve, heartbeat.Overperf}
	for _, app := range sats {
		for _, others := range sats {
			for _, frozen := range []bool{true, false} {
				st, fr := mphars.Decide(app, others, frozen)
				fz := "UNFREEZE"
				if frozen {
					fz = "FREEZE"
				}
				rep.Table.AddRow(app.String(), others.String(), fz, st.String(), fr.String())
			}
		}
	}
	return rep
}

// PowerProfile reports the fitted linear power models of §5.1.1: the per
// cluster, per frequency-level regression coefficients and goodness of fit.
func PowerProfile(e *Env) *Report {
	rep := &Report{Title: "Power estimator calibration (§5.1.1): P = α·(C_U·U_U) + β per cluster and frequency"}
	rep.Table.Header = []string{"cluster", "freq (GHz)", "alpha (W)", "beta (W)", "R²"}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		spec := &e.Plat.Clusters[k]
		for lv := 0; lv < spec.Levels(); lv++ {
			rep.Table.AddRow(
				k.String(),
				stats.F(float64(spec.KHz(lv))/1e6, 1),
				stats.F(e.Model.Alpha[k][lv], 3),
				stats.F(e.Model.Beta[k][lv], 3),
				stats.F(e.Model.R2[k][lv], 4))
		}
	}
	return rep
}
