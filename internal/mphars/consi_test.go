package mphars

import (
	"testing"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

func TestLadderSortedAndEndsAtMax(t *testing.T) {
	plat := hmp.Default()
	ladder := buildLadder(plat, 0.25)
	if len(ladder) < 20 {
		t.Fatalf("ladder too short: %d", len(ladder))
	}
	r0 := plat.R0()
	for i := 1; i < len(ladder); i++ {
		if ladder[i].PerfScore(plat, r0) < ladder[i-1].PerfScore(plat, r0) {
			t.Fatalf("ladder not ascending at %d", i)
		}
	}
	if ladder[len(ladder)-1] != hmp.MaxState(plat) {
		t.Fatalf("ladder top = %+v, want max state", ladder[len(ladder)-1])
	}
	for _, st := range ladder {
		if !st.Valid(plat) {
			t.Fatalf("invalid ladder state %+v", st)
		}
	}
}

func TestConsIDescendsWhenAllOverperform(t *testing.T) {
	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	m := sim.New(plat, sim.Config{Power: gt})
	c := NewConsI(m, ConsIConfig{})
	pA := m.Spawn("a", steady("a", 0.5), 10)
	pB := m.Spawn("b", steady("b", 0.5), 10)
	// Targets far below max throughput: both overperform at the start.
	c.Register(pA, heartbeat.Target{Min: 0.4, Avg: 0.5, Max: 0.6})
	c.Register(pB, heartbeat.Target{Min: 0.4, Avg: 0.5, Max: 0.6})
	m.AddDaemon(c)
	startScore := c.Config().PerfScore(plat, plat.R0())
	m.Run(120 * sim.Second)
	endScore := c.Config().PerfScore(plat, plat.R0())
	if endScore >= startScore {
		t.Fatalf("CONS-I never descended: %.2f → %.2f", startScore, endScore)
	}
	// Rates must still be at or above the minimum (conservative model).
	if r := pA.HB.RateOver(80*sim.Second, m.Now()); r < 0.3 {
		t.Errorf("app a rate collapsed to %v", r)
	}
}

func TestConsIBlockedByUnsatisfiedApp(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	c := NewConsI(m, ConsIConfig{})
	pA := m.Spawn("a", steady("a", 0.5), 10)
	pB := m.Spawn("b", steady("b", 0.5), 10)
	// App a overperforms; app b can never reach its target: the system must
	// not descend (and should climb or stay at the top).
	c.Register(pA, heartbeat.Target{Min: 0.4, Avg: 0.5, Max: 0.6})
	c.Register(pB, heartbeat.Target{Min: 1e5, Avg: 2e5, Max: 3e5})
	m.AddDaemon(c)
	top := c.LadderLen() - 1
	m.Run(60 * sim.Second)
	if got := c.cur; got != top {
		t.Fatalf("CONS-I descended to rung %d despite an unsatisfied app (top %d)", got, top)
	}
}

func TestConsIIgnoresSilentApps(t *testing.T) {
	// An app that never beats (startup phase) must not block descent — the
	// paper's case-6 observation.
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	c := NewConsI(m, ConsIConfig{})
	pA := m.Spawn("a", steady("a", 0.5), 10)
	silent := &silentProg{}
	pB := m.Spawn("silent", silent, 10)
	c.Register(pA, heartbeat.Target{Min: 0.4, Avg: 0.5, Max: 0.6})
	c.Register(pB, heartbeat.Target{Min: 1, Avg: 2, Max: 3})
	m.AddDaemon(c)
	start := c.cur
	m.Run(60 * sim.Second)
	if c.cur >= start {
		t.Fatal("CONS-I blocked by an app that never emitted heartbeats")
	}
}

// silentProg burns CPU but never emits heartbeats.
type silentProg struct{}

func (s *silentProg) Name() string         { return "silent" }
func (s *silentProg) NumThreads() int      { return 2 }
func (s *silentProg) Start(p *sim.Process) { p.SetWork(0, 1); p.SetWork(1, 1) }
func (s *silentProg) UnitDone(p *sim.Process, local int) {
	p.SetWork(local, 1)
}
func (s *silentProg) SpeedFactor(local int, k hmp.ClusterKind) float64 { return 1 }

func TestConsIFreezePausesDescent(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	c := NewConsI(m, ConsIConfig{FreezeBeats: 1000}) // one decrease, then frozen ~forever
	pA := m.Spawn("a", steady("a", 0.5), 10)
	c.Register(pA, heartbeat.Target{Min: 0.4, Avg: 0.5, Max: 0.6})
	m.AddDaemon(c)
	top := c.LadderLen() - 1
	m.Run(120 * sim.Second)
	if c.cur != top-1 {
		t.Fatalf("with an enormous freeze, exactly one descent expected: at rung %d of %d", c.cur, top)
	}
}

func TestConsITraceRecorded(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	c := NewConsI(m, ConsIConfig{})
	pA := m.Spawn("a", steady("a", 0.5), 10)
	c.Register(pA, heartbeat.Target{Min: 0.4, Avg: 0.5, Max: 0.6})
	m.AddDaemon(c)
	m.Run(20 * sim.Second)
	tr := c.Trace(pA)
	if len(tr) == 0 {
		t.Fatal("no trace recorded")
	}
	last := tr[len(tr)-1]
	if last.BigGHz <= 0 || last.LittleGHz <= 0 {
		t.Error("trace has no frequencies")
	}
	if c.Trace(m.Spawn("ghost", steady("g", 1), 4)) != nil {
		t.Error("trace of unregistered proc should be nil")
	}
}
