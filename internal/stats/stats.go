// Package stats provides the small statistics and reporting toolkit the
// experiment harness uses: geometric means for the figures' GM bars, labeled
// time series for the behaviour graphs, aligned text tables, CSV rendering,
// and a terminal line chart.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean, the aggregate the paper's figures use.
// Non-positive inputs yield NaN; empty input yields 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Series is a labeled (x, y) sequence, one curve of a behaviour graph.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YMin and YMax return the Y range (0,0 when empty).
func (s *Series) YRange() (lo, hi float64) {
	if len(s.Y) == 0 {
		return 0, 0
	}
	lo, hi = s.Y[0], s.Y[0]
	for _, y := range s.Y[1:] {
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	return lo, hi
}

// Table is an aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// F formats a float with the given precision, the table cell helper.
func F(v float64, prec int) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// CSV renders a header and float rows as comma-separated text.
func CSV(header []string, rows [][]float64) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Chart renders series as a fixed-size ASCII line chart, the terminal
// rendering of the paper's behaviour graphs. All series share the axes;
// each is drawn with its own rune.
func Chart(title string, series []*Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var xlo, xhi, ylo, yhi float64
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				xlo, xhi, ylo, yhi = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xlo = math.Min(xlo, s.X[i])
			xhi = math.Max(xhi, s.X[i])
			ylo = math.Min(ylo, s.Y[i])
			yhi = math.Max(yhi, s.Y[i])
		}
	}
	if first {
		return title + " (no data)\n"
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	marks := []rune("*o+x#@%&")
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			c := int((s.X[i] - xlo) / (xhi - xlo) * float64(width-1))
			r := height - 1 - int((s.Y[i]-ylo)/(yhi-ylo)*float64(height-1))
			grid[r][c] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [y: %.3g..%.3g, x: %.3g..%.3g]\n", title, ylo, yhi, xlo, xhi)
	for _, row := range grid {
		b.WriteString("| ")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString("  legend:")
	for si, s := range series {
		fmt.Fprintf(&b, " %c=%s", marks[si%len(marks)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}
