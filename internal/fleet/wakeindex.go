package fleet

import "repro/internal/sim"

// wakeIndex is the scheduler's incremental view of its per-node wake
// sources, replacing the O(nodes) scan in NextWake with O(active) work:
//
//   - Silent nodes — crashed but not yet declared down by the failure
//     detector — sit in a min-heap keyed by the tick the detector will
//     declare them (fault.Detector.Deadline + 1). The deadline is frozen
//     while a node is silent (alive observations are last-write-wins, and
//     a silent node produces none), so the value indexed when the crash
//     was noticed stays exactly the value the full scan would recompute.
//   - Declared-down nodes sit in a short membership list, scanned each
//     barrier for a pending heal (a node stepping again while still
//     declared down must wake the scheduler immediately so the recovery
//     transition lands on the next tick, as it would in lockstep).
//
// Machines notify the index through sim.Machine failure listeners, which
// fire only on real Fail/Heal transitions — always at engine action
// boundaries, never inside RunUntil — so the dirty list is consumed
// single-threaded before the next barrier computation. Heap removal is
// lazy: an entry is live only while it matches the node's current
// silentAt, so reclassification never searches the heap.
type wakeIndex struct {
	silentAt []sim.Time    // per node: indexed deadline while silent, 0 = not silent
	heap     []silentEntry // min-heap on at; stale entries dropped on peek
	down     []int         // nodes the detector currently declares down
	downPos  []int         // per node: position in down, -1 when absent
	dirty    []int         // nodes whose classification may have changed
	inDirty  []bool
}

type silentEntry struct {
	at   sim.Time
	node int
}

// newWakeIndex returns an index over n nodes with every node marked dirty,
// so the first sync classifies pre-existing failures.
func newWakeIndex(n int) *wakeIndex {
	x := &wakeIndex{
		silentAt: make([]sim.Time, n),
		downPos:  make([]int, n),
		dirty:    make([]int, 0, n),
		inDirty:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		x.downPos[i] = -1
		x.noteDirty(i)
	}
	return x
}

// noteDirty queues node i for reclassification at the next sync.
func (x *wakeIndex) noteDirty(i int) {
	if x.inDirty[i] {
		return
	}
	x.inDirty[i] = true
	x.dirty = append(x.dirty, i)
}

// sync reclassifies every dirty node: crashed-but-undetected nodes enter
// the silent heap at the tick the detector will declare them; everything
// else leaves it. O(dirty) — zero in the steady state.
func (x *wakeIndex) sync(s *Scheduler) {
	if len(x.dirty) == 0 {
		return
	}
	for _, i := range x.dirty {
		x.inDirty[i] = false
		if s.f.Node(i).Failed() && x.downPos[i] < 0 {
			x.setSilent(i, s.detector.Deadline(i)+1)
		} else {
			x.clearSilent(i)
		}
	}
	x.dirty = x.dirty[:0]
}

// setDown records a detector verdict transition for node i, mirroring
// fault.Detector.Down membership. A freshly declared-down node leaves the
// silent heap; a recovered node is reclassified on the next sync.
func (x *wakeIndex) setDown(i int, down bool) {
	if down {
		if x.downPos[i] < 0 {
			x.downPos[i] = len(x.down)
			x.down = append(x.down, i)
		}
		x.clearSilent(i)
		return
	}
	if p := x.downPos[i]; p >= 0 {
		last := len(x.down) - 1
		x.down[p] = x.down[last]
		x.downPos[x.down[p]] = p
		x.down = x.down[:last]
		x.downPos[i] = -1
		x.noteDirty(i)
	}
}

// setSilent indexes node i's detection deadline. Deadlines are strictly
// positive (lastBeat + timeout + 1 on a non-negative clock), so 0 in
// silentAt unambiguously means "not silent".
func (x *wakeIndex) setSilent(i int, at sim.Time) {
	if x.silentAt[i] == at {
		return
	}
	x.silentAt[i] = at
	x.push(silentEntry{at: at, node: i})
}

func (x *wakeIndex) clearSilent(i int) { x.silentAt[i] = 0 }

// minSilent returns the earliest live silent deadline, discarding stale
// heap entries (whose node was since detected, healed, or re-indexed).
func (x *wakeIndex) minSilent() (sim.Time, bool) {
	for len(x.heap) > 0 {
		e := x.heap[0]
		if x.silentAt[e.node] == e.at {
			return e.at, true
		}
		x.pop()
	}
	return 0, false
}

// push and pop are a hand-rolled binary min-heap on at: container/heap
// would box every entry through its interface, and the wake path must not
// allocate in the steady state.
func (x *wakeIndex) push(e silentEntry) {
	x.heap = append(x.heap, e)
	i := len(x.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if x.heap[p].at <= x.heap[i].at {
			break
		}
		x.heap[p], x.heap[i] = x.heap[i], x.heap[p]
		i = p
	}
}

func (x *wakeIndex) pop() {
	last := len(x.heap) - 1
	x.heap[0] = x.heap[last]
	x.heap = x.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(x.heap) {
			return
		}
		c := l
		if r < len(x.heap) && x.heap[r].at < x.heap[l].at {
			c = r
		}
		if x.heap[i].at <= x.heap[c].at {
			return
		}
		x.heap[i], x.heap[c] = x.heap[c], x.heap[i]
		i = c
	}
}
