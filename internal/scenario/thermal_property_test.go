package scenario

import (
	"fmt"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
	"repro/internal/thermal"
)

// thermalInvariants is the per-tick property suite of the closed thermal
// loop. It maintains a shadow copy of the RC model, stepped with exactly the
// inputs the governor sees — the engine registers the governor before the
// PerTick daemon, so by the time the checker runs, the governor has stepped
// its model with this tick's power and actuated; stepping the shadow with
// the same power reproduces its temperatures bit-for-bit. The checks:
// temperature never exceeds trip_c plus one tick of slack (max observed
// P·Δt/C), caps move monotonically with temperature (lowered only at or
// above throttle_c, raised only at or below release_c), and temperatures
// never fall below ambient.
type thermalInvariants struct {
	spec   thermal.Spec
	shadow *thermal.Model
	caps   [hmp.NumClusters]int
	maxW   [hmp.NumClusters]float64
	init   bool
	err    error
}

func newThermalInvariants(spec *thermal.Spec) *thermalInvariants {
	r := spec.WithDefaults()
	return &thermalInvariants{spec: r, shadow: thermal.NewModel(r)}
}

func (c *thermalInvariants) tick(m *sim.Machine) {
	if c.err != nil {
		return
	}
	if !c.init {
		c.init = true
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			c.caps[k] = m.Platform().Clusters[k].MaxLevel()
		}
	}
	var watts [hmp.NumClusters]float64
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		watts[k] = m.LastTickPowerW(k)
		if watts[k] > c.maxW[k] {
			c.maxW[k] = watts[k]
		}
	}
	dt := sim.Seconds(m.TickLen())
	c.shadow.Step(dt, watts)
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		temp := c.shadow.TempC(k)
		slack := c.shadow.MaxStepC(k, c.maxW[k], dt)
		if temp > c.spec.TripC+slack {
			c.err = fmt.Errorf("t=%d: %s at %.4f°C exceeds trip %.1f + one-tick slack %.4f",
				m.Now(), k, temp, c.spec.TripC, slack)
			return
		}
		if temp < c.spec.AmbientC-1e-9 {
			c.err = fmt.Errorf("t=%d: %s at %.4f°C dropped below ambient %.1f", m.Now(), k, temp, c.spec.AmbientC)
			return
		}
		cap := m.LevelCap(k)
		switch {
		case cap < c.caps[k] && temp < c.spec.ThrottleC:
			c.err = fmt.Errorf("t=%d: %s cap lowered %d->%d at %.4f°C, below throttle_c %.1f",
				m.Now(), k, c.caps[k], cap, temp, c.spec.ThrottleC)
			return
		case cap > c.caps[k] && temp > c.spec.ReleaseC:
			c.err = fmt.Errorf("t=%d: %s cap raised %d->%d at %.4f°C, above release_c %.1f",
				m.Now(), k, c.caps[k], cap, temp, c.spec.ReleaseC)
			return
		}
		c.caps[k] = cap
	}
}

// runThermalSeeds drives seeded random thermal scenarios (closed loop,
// periodic pulse events, hotplug) through one manager kind with the thermal
// per-tick invariants and the engine's strict checks.
func runThermalSeeds(t *testing.T, manager string, seeds int) {
	t.Helper()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		sc := Generate(seed, GenConfig{
			Manager: manager, DurationMS: 15000, Events: 8,
			Thermal: true, Periodic: true,
		})
		// Half the seeds pin the loop into the aggressive regime: a narrow
		// band plus a sluggish step period guarantees the emergency trip
		// path is exercised under sustained load, not just the graduated
		// one.
		if seed%2 == 0 {
			sc.Thermal = &thermal.Spec{Enabled: true, ReleaseC: 66, ThrottleC: 68, TripC: 71, PeriodTicks: 400}
		}
		chk := newThermalInvariants(sc.Thermal)
		res, err := Run(sc, Options{Strict: true, PerTick: chk.tick})
		if err != nil {
			t.Fatalf("%s seed %d: %v", manager, seed, err)
		}
		if chk.err != nil {
			t.Fatalf("%s seed %d: %v", manager, seed, chk.err)
		}
		if res.Thermal == nil {
			t.Fatalf("%s seed %d: thermal scenario returned no governor", manager, seed)
		}
		// The shadow model must have tracked the governor's bit-for-bit.
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			if got, want := res.Thermal.TempC(k), chk.shadow.TempC(k); got != want {
				t.Fatalf("%s seed %d: governor %s temp %v != shadow model %v",
					manager, seed, k, got, want)
			}
			if res.Thermal.PeakC(k) < res.Thermal.Spec().AmbientC {
				t.Fatalf("%s seed %d: %s peak %.2f below ambient", manager, seed, k, res.Thermal.PeakC(k))
			}
		}
	}
}

func TestThermalPropertyHARSE(t *testing.T)  { runThermalSeeds(t, ManagerHARSE, 6) }
func TestThermalPropertyMPHARS(t *testing.T) { runThermalSeeds(t, ManagerMPHARSI, 6) }
func TestThermalPropertyUnmanaged(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runThermalSeeds(t, ManagerNone, 4)
}

// TestThermalReplayByteIdentical pins determinism with the loop closed: the
// same thermal scenario replayed twice produces the same trace digest,
// temperatures, and throttle statistics.
func TestThermalReplayByteIdentical(t *testing.T) {
	sc := Generate(3, GenConfig{Manager: ManagerHARSE, DurationMS: 12000, Events: 6, Thermal: true, Periodic: true})
	a, err := Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceDigest != b.TraceDigest {
		t.Fatalf("replay digest %016x != %016x", a.TraceDigest, b.TraceDigest)
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		if a.Thermal.TempC(k) != b.Thermal.TempC(k) || a.Thermal.PeakC(k) != b.Thermal.PeakC(k) {
			t.Fatalf("%s temperatures differ across replays", k)
		}
	}
	if a.Thermal.Throttles() != b.Thermal.Throttles() || a.Thermal.Releases() != b.Thermal.Releases() {
		t.Fatal("governor statistics differ across replays")
	}
}

// TestThermalThrottlesUnderLoad checks the loop actually closes: a saturating
// run must heat the big cluster into the throttle zone and move the ceilings
// without any scripted dvfs_cap event.
func TestThermalThrottlesUnderLoad(t *testing.T) {
	// 40 s: the SW workload draws ≈ 5 W on the big cluster (steady state
	// ≈ 77 °C), crossing the default 67.5 °C throttle threshold after
	// roughly 17 s of the 10 s-time-constant rise.
	sc := &Scenario{
		Name:       "thermal-load",
		Manager:    ManagerNone,
		DurationMS: 40000,
		Apps:       []AppSpec{{Name: "sw", Bench: "SW", Threads: 8}},
		Thermal:    &thermal.Spec{Enabled: true},
	}
	res, err := Run(sc, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	gov := res.Thermal
	if gov == nil {
		t.Fatal("no governor")
	}
	if gov.Throttles() == 0 {
		t.Fatalf("big peak %.1f°C: saturating run never throttled", gov.PeakC(hmp.Big))
	}
	spec := gov.Spec()
	if gov.PeakC(hmp.Big) < spec.ThrottleC {
		t.Fatalf("big peak %.1f°C never reached throttle_c %.1f", gov.PeakC(hmp.Big), spec.ThrottleC)
	}
	if gov.PeakC(hmp.Big) > spec.TripC+0.1 {
		t.Fatalf("big peak %.1f°C exceeded trip %.1f", gov.PeakC(hmp.Big), spec.TripC)
	}
}
