package sim

// MaskBalancer is the placement policy used underneath HARS: every runnable
// thread is kept on a CPU inside its affinity mask, spread to the
// least-loaded permitted core. It models a work-conserving OS scheduler
// operating under the cpuset constraints HARS's chunk-based and interleaving
// schedulers install; all cross-cluster policy lives in those masks.
type MaskBalancer struct {
	counts []int // scratch: runnable threads per core
}

// NewMaskBalancer returns a MaskBalancer.
func NewMaskBalancer() *MaskBalancer { return &MaskBalancer{} }

// Place implements Placer.
func (b *MaskBalancer) Place(m *Machine) {
	nc := len(m.cores)
	if cap(b.counts) < nc {
		b.counts = make([]int, nc)
	}
	counts := b.counts[:nc]
	for i := range counts {
		counts[i] = 0
	}
	for _, t := range m.threads {
		if !t.blocked && t.core >= 0 && t.affinity.Has(t.core) {
			counts[t.core]++
		}
	}
	// First pass: repair threads placed outside their mask (or nowhere).
	for _, t := range m.threads {
		if t.blocked {
			continue
		}
		if t.core >= 0 && t.affinity.Has(t.core) {
			continue
		}
		best := -1
		for cpu := 0; cpu < nc; cpu++ {
			if !t.affinity.Has(cpu) {
				continue
			}
			if best < 0 || counts[cpu] < counts[best] {
				best = cpu
			}
		}
		if best >= 0 {
			m.Migrate(t, best)
			counts[best]++
		}
	}
	// Second pass: one balancing sweep with hysteresis — move a thread only
	// if a permitted core is at least two threads lighter than its own.
	for _, t := range m.threads {
		if t.blocked || t.core < 0 {
			continue
		}
		cur := t.core
		best := cur
		for cpu := 0; cpu < nc; cpu++ {
			if cpu == cur || !t.affinity.Has(cpu) {
				continue
			}
			if counts[cpu] < counts[best]-1 {
				best = cpu
			}
		}
		if best != cur {
			counts[cur]--
			counts[best]++
			m.Migrate(t, best)
		}
	}
}
