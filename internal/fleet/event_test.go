package fleet_test

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// TestDownNodeScoresNegInf pins the down-node scoring fix: every built-in
// policy scores a detector-declared-down node as -Inf, so it can never win
// a comparison against any live node — however attractive its raw load,
// capacity, or temperature would make it.
func TestDownNodeScoresNegInf(t *testing.T) {
	cost := sim.CheckpointCost{Freeze: 10 * sim.Millisecond}
	live := newMPNode(0, "live", tinyPlatform())
	down := newMPNode(1, "down", hmp.Default()) // bigger, idle: the raw winner
	if _, err := fleet.New(live, down); err != nil {
		t.Fatal(err)
	}
	down.SetDown(true)
	app := &fleet.App{Name: "a", SLO: &fleet.SLO{TargetHPS: 10, SlackMS: 100}}
	for _, p := range fleet.Policies(cost) {
		if got := p.Score(down, app); !math.IsInf(got, -1) {
			t.Errorf("%s scored the down node %v, want -Inf", p.Name(), got)
		}
		if ds, ls := p.Score(down, app), p.Score(live, app); ds >= ls {
			t.Errorf("%s prefers the down node: %v >= %v", p.Name(), ds, ls)
		}
	}
	down.SetDown(false)
	for _, p := range fleet.Policies(cost) {
		if got := p.Score(down, app); math.IsInf(got, -1) {
			t.Errorf("%s still scores the healed node -Inf", p.Name())
		}
	}
}

// TestDownNodeNeverDestination pins the candidate paths end to end: an
// arrival never admits to a down node, and a migration off a saturated node
// never lands on one — even when the down node is by far the most
// attractive candidate and would win every raw score comparison.
func TestDownNodeNeverDestination(t *testing.T) {
	src := newMPNode(0, "src", tinyPlatform())
	attractive := newMPNode(1, "attractive", hmp.Default())
	// Three-quarters of the big node: enough free cores to take both the
	// second arrival and the migration victim, but a clear raw-score loser
	// to the attractive (down) node under big-first.
	half := hmp.Default()
	half.Clusters[hmp.Big].Cores = 3
	half.Clusters[hmp.Little].Cores = 3
	modest := newMPNode(2, "modest", half)
	f, err := fleet.New(src, attractive, modest)
	if err != nil {
		t.Fatal(err)
	}
	host := &testHost{t: t}
	s := fleet.NewScheduler(f, host, fleet.Config{Policy: mustPolicy(t, fleet.PolicyBigFirst)})
	attractive.SetDown(true)

	// a0 saturates the tiny source node.
	a0 := &fleet.App{Name: "a0", Pinned: src}
	s.Arrive(a0)
	if a0.Node() != src {
		t.Fatalf("pinned arrival on %q, want %q", a0.Node().Name, src.Name)
	}

	// Admission: with src saturated, big-first would pick the big idle
	// node — but it is down, so the arrival must land on the modest one.
	a1 := &fleet.App{Name: "a1"}
	s.Arrive(a1)
	if a1.Node() != modest {
		t.Fatalf("arrival admitted to %q, want %q", a1.Node().Name, modest.Name)
	}

	// Migration: unpinned, a0 must move off the saturated source to the
	// modest live node, never the attractive down one.
	a0.Pinned = nil
	f.RunUntil(1200 * sim.Millisecond)
	checkInv(t, s)
	if a0.Node() == attractive {
		t.Fatal("migration landed on the down node")
	}
	if a0.Node() != modest {
		t.Fatalf("app on %q, want migrated to %q", a0.Node().Name, modest.Name)
	}
}

// TestPolicyCostInjection pins the registry fix: the checkpoint-cost model
// is injected at the registry boundary, so every consumer of Policies /
// PolicyByName gets an SLO-aware policy that prices migrations — nobody has
// to remember to patch the entry afterwards.
func TestPolicyCostInjection(t *testing.T) {
	cost := sim.CheckpointCost{Freeze: 123 * sim.Millisecond, PerMB: sim.Millisecond, SizeMB: 7}
	p, err := fleet.PolicyByName(fleet.PolicySLOAware, cost)
	if err != nil {
		t.Fatal(err)
	}
	if sa := p.(*fleet.SLOAware); sa.Cost != cost {
		t.Fatalf("PolicyByName cost = %+v, want %+v", sa.Cost, cost)
	}
	var found bool
	for _, p := range fleet.Policies(cost) {
		if sa, ok := p.(*fleet.SLOAware); ok {
			found = true
			if sa.Cost != cost {
				t.Fatalf("Policies cost = %+v, want %+v", sa.Cost, cost)
			}
		}
	}
	if !found {
		t.Fatal("no SLO-aware entry in the registry")
	}
}

// TestEventCoreMatchesLockstepFleet is the fleet-level equivalence
// property: the same arrival schedule replayed through the lockstep
// reference, the event-driven core, and the event-driven core with sharded
// node advancement produces identical energy (exact float equality),
// heartbeats, migrations, and clocks.
func TestEventCoreMatchesLockstepFleet(t *testing.T) {
	type outcome struct {
		energy     float64
		beats      int64
		migrations int
		now        sim.Time
	}
	run := func(lockstep bool, workers int) outcome {
		n0 := newMPNode(0, "n0", hmp.Default())
		n1 := newMPNode(1, "n1", tinyPlatform())
		// An unmanaged time-shared node: its machine has no per-tick
		// daemons, so the event core fast-forwards it between decisions.
		plat := hmp.Default()
		sn := sim.NewNode(2, "idle", plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		n2 := &fleet.Node{Node: sn}
		f, err := fleet.New(n0, n1, n2)
		if err != nil {
			t.Fatal(err)
		}
		f.SetLockstep(lockstep)
		f.SetWorkers(workers)
		host := &testHost{t: t}
		s := fleet.NewScheduler(f, host, fleet.Config{Policy: mustPolicy(t, fleet.PolicyBigFirst)})
		a0 := &fleet.App{Name: "a0", Pinned: n0}
		a1 := &fleet.App{Name: "a1", Pinned: n1}
		s.Arrive(a0)
		f.RunUntil(500 * sim.Millisecond)
		s.Arrive(a1)
		f.RunUntil(1 * sim.Second)
		a1.Pinned = nil // the tiny node is saturated: a1 migrates off it
		f.RunUntil(2500 * sim.Millisecond)
		checkInv(t, s)
		var beats int64
		for _, app := range s.Apps() {
			if app.Proc != nil {
				beats += app.Proc.HB.Count()
			}
		}
		return outcome{f.EnergyJ(), beats, s.Stats().Migrations, f.Now()}
	}
	ref := run(true, 1)
	if ref.migrations == 0 {
		t.Fatal("fixture produced no migrations; the equivalence check is vacuous")
	}
	for _, w := range []int{1, 4} {
		got := run(false, w)
		if got != ref {
			t.Fatalf("event core (workers=%d) diverged: %+v != %+v", w, got, ref)
		}
	}
}

// faultTestHost extends testHost with the FaultHost surface. The fixtures
// using it run no applications, so the crash-recovery hooks are never
// reached; they exist to satisfy the Config.Fault wiring check.
type faultTestHost struct{ testHost }

func (h *faultTestHost) Snapshot(n *fleet.Node, app *fleet.App) {}
func (h *faultTestHost) Salvage(n *fleet.Node, app *fleet.App)  {}

// barrierCounter counts fleet hook invocations without ever asking to run:
// with it registered, every Tick the fleet takes was forced by some OTHER
// wake source, so the count exposes exactly how often the scheduler's
// NextWake fires.
type barrierCounter struct{ ticks int }

func (h *barrierCounter) Tick(*fleet.Fleet) { h.ticks++ }
func (h *barrierCounter) NextWake(*fleet.Fleet) sim.Time {
	return sim.Time(math.MaxInt64)
}

// TestHealWakeDoesNotCollapseJumping pins the recovery-wake fix: a node
// proving alive while still declared down wakes the scheduler immediately
// (`!failed && down` → now), and that immediate wake must cost O(1) ticks
// per heal — not collapse barrier jumping into per-tick lockstep for the
// rest of the run, stranding the unrelated nodes in slow motion. The same
// schedule replays in lockstep to prove the event-core outcome is
// bit-identical, and the wake index is verified against the full scan at
// every barrier across the crash, detection, and heal transitions.
func TestHealWakeDoesNotCollapseJumping(t *testing.T) {
	type outcome struct {
		energy    float64
		now       sim.Time
		recovered int
	}
	run := func(lockstep bool) (outcome, int) {
		nodes := make([]*fleet.Node, 4)
		for i := range nodes {
			plat := hmp.Default()
			sn := sim.NewNode(i, string(rune('a'+i)), plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
			nodes[i] = &fleet.Node{Node: sn}
		}
		f, err := fleet.New(nodes...)
		if err != nil {
			t.Fatal(err)
		}
		f.SetLockstep(lockstep)
		host := &faultTestHost{testHost{t: t}}
		s := fleet.NewScheduler(f, host, fleet.Config{
			Fault: &fault.Config{HeartbeatTimeout: 100 * sim.Millisecond},
		})
		s.SetWakeVerify(true)
		ctr := &barrierCounter{}
		f.AddHook(ctr)

		f.RunUntil(1 * sim.Second)
		nodes[2].Fail() // silent: detector declares it down after the timeout
		f.RunUntil(2 * sim.Second)
		nodes[2].Heal() // alive while declared down: immediate wake, one-tick recovery
		f.RunUntil(3 * sim.Second)
		if err := s.WakeVerifyErr(); err != nil {
			t.Fatal(err)
		}
		return outcome{f.EnergyJ(), f.Now(), s.Stats().Recovered}, ctr.ticks
	}

	ref, lockstepTicks := run(true)
	got, eventTicks := run(false)
	if got != ref {
		t.Fatalf("event core diverged: %+v != %+v", got, ref)
	}
	// Lockstep pays one hook invocation per tick. The event core must stay
	// within the barrier budget: the migrate cadence plus a handful of
	// extra barriers for the crash deadline, the detection tick, and the
	// heal — orders of magnitude below per-tick.
	if eventTicks >= lockstepTicks/10 {
		t.Fatalf("heal wake collapsed barrier jumping: %d event barriers vs %d lockstep ticks",
			eventTicks, lockstepTicks)
	}
}
