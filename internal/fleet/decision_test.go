package fleet_test

import (
	"math"
	"testing"

	"repro/internal/decision"
	"repro/internal/fleet"
	"repro/internal/hmp"
	"repro/internal/sim"
)

// TestDecisionRecordsAdmission pins the admission decision stream: every
// tryAdmit is one decision point with a monotonic ID, the full candidate
// set in node-index order, the chosen node, and the outcome — including
// the no-candidate decision a saturated fleet hands an arrival.
func TestDecisionRecordsAdmission(t *testing.T) {
	n0 := newMPNode(0, "n0", tinyPlatform())
	n1 := newMPNode(1, "n1", tinyPlatform())
	f, err := fleet.New(n0, n1)
	if err != nil {
		t.Fatal(err)
	}
	log := &decision.Log{}
	host := &testHost{t: t}
	s := fleet.NewScheduler(f, host, fleet.Config{Observer: log})

	a0, a1, a2 := &fleet.App{Name: "a0"}, &fleet.App{Name: "a1"}, &fleet.App{Name: "a2"}
	s.Arrive(a0) // both nodes free: 2 scored candidates, tie to n0
	s.Arrive(a1) // n0 full: lands on n1
	s.Arrive(a2) // both full: no-candidate, queues

	recs := log.Records()
	if len(recs) != 3 {
		t.Fatalf("recorded %d decisions, want 3: %+v", len(recs), recs)
	}
	for i, r := range recs {
		if r.ID != uint64(i) {
			t.Fatalf("decision %d has ID %d", i, r.ID)
		}
		if r.Kind != decision.Admit {
			t.Fatalf("decision %d kind = %s", i, r.Kind)
		}
		if len(r.Candidates) != 2 || r.Candidates[0].Node != "n0" || r.Candidates[1].Node != "n1" {
			t.Fatalf("decision %d candidates not in node-index order: %+v", i, r.Candidates)
		}
	}
	if recs[0].Chosen != "n0" || recs[0].Outcome != decision.OutcomePlaced {
		t.Fatalf("a0 decision = %+v", recs[0])
	}
	// Both nodes scored finitely and equally: margin 0, but present.
	if recs[0].Margin != 0 {
		t.Fatalf("a0 margin = %v", recs[0].Margin)
	}
	if recs[1].Chosen != "n1" || recs[1].Candidates[0].Reason != decision.ReasonFull {
		t.Fatalf("a1 decision = %+v", recs[1])
	}
	if !math.IsInf(recs[1].Candidates[0].Score, -1) {
		t.Fatalf("excluded candidate score = %v, want -Inf", recs[1].Candidates[0].Score)
	}
	if recs[2].Chosen != "" || recs[2].Outcome != decision.OutcomeNoCandidate {
		t.Fatalf("a2 decision = %+v", recs[2])
	}

	// The always-on rollup agrees with the stream.
	st := s.Stats()
	if st.Decisions.Decisions != 3 || st.Decisions.Admissions != 2 || st.Decisions.NoCandidate != 1 {
		t.Fatalf("rollup = %+v", st.Decisions)
	}
	if st.Decisions.QueueWait.Observations() != 2 {
		t.Fatalf("queue-wait observations = %d, want 2", st.Decisions.QueueWait.Observations())
	}

	// Free n0; the queued a2 is admitted with a real (nonzero) queue wait.
	n0.MP.Unregister(n0.Machine, a0.Proc)
	n0.Kill(a0.Proc)
	s.Depart(a0)
	f.RunUntil(10 * sim.Millisecond)
	if !a2.Placed() {
		t.Fatal("a2 not admitted after the departure")
	}
	st = s.Stats()
	if st.Decisions.Admissions != 3 || st.Decisions.QueueWait.Observations() != 3 {
		t.Fatalf("rollup after drain = %+v", st.Decisions)
	}
	if st.Decisions.QueueWait.MaxUS == 0 {
		t.Fatal("queued admission recorded a zero wait")
	}
}

// TestDecisionCandidateReasons pins the exclusion taxonomy: pinned and down
// nodes appear in the candidate set with their reason and a -Inf score.
func TestDecisionCandidateReasons(t *testing.T) {
	n0 := newMPNode(0, "n0", tinyPlatform())
	n1 := newMPNode(1, "n1", tinyPlatform())
	f, err := fleet.New(n0, n1)
	if err != nil {
		t.Fatal(err)
	}
	log := &decision.Log{}
	s := fleet.NewScheduler(f, &testHost{t: t}, fleet.Config{Observer: log})

	s.Arrive(&fleet.App{Name: "pinned", Pinned: n1})
	n1.SetDown(true)
	s.Arrive(&fleet.App{Name: "free"})

	recs := log.Records()
	if len(recs) != 2 {
		t.Fatalf("recorded %d decisions", len(recs))
	}
	if c := recs[0].Candidates[0]; c.Reason != decision.ReasonPinned || !math.IsInf(c.Score, -1) {
		t.Fatalf("pinned exclusion = %+v", c)
	}
	// One eligible candidate only: no margin.
	if recs[0].Margin != 0 {
		t.Fatalf("single-candidate margin = %v", recs[0].Margin)
	}
	if c := recs[1].Candidates[1]; c.Reason != decision.ReasonDown || !math.IsInf(c.Score, -1) {
		t.Fatalf("down exclusion = %+v", c)
	}
	if recs[1].Chosen != "n0" {
		t.Fatalf("arrival avoided the down node wrongly: %+v", recs[1])
	}
}

// TestDecisionRollupAlwaysOn pins pure observation: the rollup is identical
// with and without an observer attached, and the decision stream's presence
// never changes a placement.
func TestDecisionRollupAlwaysOn(t *testing.T) {
	run := func(obs decision.Sink) (fleet.Stats, []string) {
		n0 := newMPNode(0, "n0", tinyPlatform())
		n1 := newMPNode(1, "n1", hmp.Default())
		f, err := fleet.New(n0, n1)
		if err != nil {
			t.Fatal(err)
		}
		s := fleet.NewScheduler(f, &testHost{t: t}, fleet.Config{Observer: obs})
		apps := []*fleet.App{{Name: "a0"}, {Name: "a1"}, {Name: "a2"}}
		for _, a := range apps {
			s.Arrive(a)
		}
		f.RunUntil(sim.Second)
		var nodes []string
		for _, a := range apps {
			if a.Node() != nil {
				nodes = append(nodes, a.Node().Name)
			} else {
				nodes = append(nodes, "")
			}
		}
		return s.Stats(), nodes
	}
	stOn, nodesOn := run(&decision.Log{})
	stOff, nodesOff := run(nil)
	if stOn.Decisions != stOff.Decisions {
		t.Fatalf("rollup differs with observer:\n on: %+v\noff: %+v", stOn.Decisions, stOff.Decisions)
	}
	for i := range nodesOn {
		if nodesOn[i] != nodesOff[i] {
			t.Fatalf("placements differ with observer: %v vs %v", nodesOn, nodesOff)
		}
	}
}

// TestDecisionForce pins the counterfactual seam: Config.Force overrides
// the policy's pick at exactly the forced decision ID, and out-of-range
// indices are ignored.
func TestDecisionForce(t *testing.T) {
	n0 := newMPNode(0, "n0", tinyPlatform())
	n1 := newMPNode(1, "n1", tinyPlatform())
	f, err := fleet.New(n0, n1)
	if err != nil {
		t.Fatal(err)
	}
	log := &decision.Log{}
	s := fleet.NewScheduler(f, &testHost{t: t}, fleet.Config{
		Observer: log,
		Force:    map[uint64]int{0: 1, 1: 99}, // decision 0 -> n1; 99 out of range
	})
	a0, a1 := &fleet.App{Name: "a0"}, &fleet.App{Name: "a1"}
	s.Arrive(a0)
	if a0.Node() != n1 {
		t.Fatalf("forced decision ignored: a0 on %q", a0.Node().Name)
	}
	if recs := log.Records(); recs[0].Chosen != "n1" {
		t.Fatalf("forced record = %+v", recs[0])
	}
	s.Arrive(a1)
	if a1.Node() != n0 {
		t.Fatalf("out-of-range force not ignored: a1 on %v", a1.Node())
	}
}

// TestDecisionGatedMigration pins satellite work: a migrate-pass move the
// destination-score gate declines is recorded as an explicit gated no-op
// decision (kind gated, outcome held, the declined destination in Chosen),
// counted in the rollup — and forcing that decision ID skips the gate and
// replays the declined move.
func TestDecisionGatedMigration(t *testing.T) {
	// SLO-aware with an enormous checkpoint freeze: every foreign node is
	// discounted far below the app's current node, so the saturation pass
	// always wants to move the victim and the gate always declines.
	costly := fleet.NewSLOAware(sim.CheckpointCost{Freeze: 100 * sim.Second})
	run := func(force map[uint64]int) (*fleet.App, *decision.Log, fleet.Stats, *fleet.Node) {
		n0 := newMPNode(0, "n0", tinyPlatform())
		n1 := newMPNode(1, "n1", hmp.Default())
		f, err := fleet.New(n0, n1)
		if err != nil {
			t.Fatal(err)
		}
		log := &decision.Log{}
		s := fleet.NewScheduler(f, &testHost{t: t}, fleet.Config{
			Policy: costly, Observer: log, Force: force,
		})
		app := &fleet.App{Name: "a", Pinned: n0, SLO: &fleet.SLO{TargetHPS: 10, SlackMS: 50}}
		s.Arrive(app) // saturates the tiny n0
		app.Pinned = nil
		f.RunUntil(600 * sim.Millisecond) // past the cooldown: one migrate pass fires
		return app, log, s.Stats(), n1
	}

	app, log, st, _ := run(nil)
	if app.Node().Name != "n0" || app.Migrations() != 0 {
		t.Fatalf("gated move happened anyway: node=%s", app.Node().Name)
	}
	if st.Decisions.GatedMigrations == 0 {
		t.Fatalf("no gated migrations in rollup: %+v", st.Decisions)
	}
	var gated *decision.Record
	for i := range log.Records() {
		if log.Records()[i].Kind == decision.Gated {
			gated = &log.Records()[i]
			break
		}
	}
	if gated == nil {
		t.Fatal("no gated decision recorded")
	}
	if gated.Outcome != decision.OutcomeHeld || gated.From != "n0" || gated.Chosen != "n1" {
		t.Fatalf("gated record = %+v", gated)
	}
	// The source appears in the candidate set with its REAL score (what the
	// gate compared against), not -Inf.
	var src *decision.Candidate
	for i := range gated.Candidates {
		if gated.Candidates[i].Reason == decision.ReasonSource {
			src = &gated.Candidates[i]
		}
	}
	if src == nil || math.IsInf(src.Score, -1) {
		t.Fatalf("source candidate = %+v", src)
	}

	// Force the gated decision: the gate is skipped and the declined move
	// plays out.
	fApp, _, fSt, n1 := run(map[uint64]int{gated.ID: 1})
	if fApp.Node() != n1 || fApp.Migrations() != 1 {
		t.Fatalf("forced gated move did not happen: node=%s migrations=%d",
			fApp.Node().Name, fApp.Migrations())
	}
	if fSt.Decisions.GatedMigrations >= st.Decisions.GatedMigrations {
		t.Fatalf("forcing did not consume the gated decision: %d vs %d",
			fSt.Decisions.GatedMigrations, st.Decisions.GatedMigrations)
	}
}
