// Power-model calibration: run the paper's profiling microbenchmark sweep
// against the simulated board, fit the per-cluster per-frequency linear
// models P = α·(C_U·U_U) + β, and check the fit against ground truth at
// configurations the profiler never visited.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/hmp"
	"repro/internal/power"
)

func main() {
	plat := hmp.Default()
	board := power.DefaultGroundTruth(plat)

	points := power.RunProfile(plat, board, power.ProfileConfig{})
	fmt.Printf("profiled %d (cluster, freq, cores, util) configurations\n", len(points))

	model, err := power.FitLinearModel(plat, points)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncluster  freq    alpha    beta     R²")
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		spec := &plat.Clusters[k]
		for lv := 0; lv < spec.Levels(); lv++ {
			fmt.Printf("%-7s  %.1fGHz  %6.3f  %6.3f  %.4f\n",
				k, float64(spec.KHz(lv))/1e6,
				model.Alpha[k][lv], model.Beta[k][lv], model.R2[k][lv])
		}
	}

	// Cross-validate on off-grid utilizations.
	fmt.Println("\ncross-validation at util=0.6 (unseen by the profiler):")
	worst := 0.0
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		lv := plat.Clusters[k].MaxLevel() / 2
		for cores := 1; cores <= 4; cores++ {
			busy := make([]float64, plat.Clusters[k].Cores)
			for i := 0; i < cores; i++ {
				busy[i] = 0.6
			}
			truth := board.ClusterPower(k, lv, busy)
			est := model.Estimate(k, lv, cores, 0.6)
			rel := math.Abs(est-truth) / truth * 100
			worst = math.Max(worst, rel)
			fmt.Printf("  %-7s %d cores: truth %5.2f W, estimate %5.2f W (%.1f%% off)\n",
				k, cores, truth, est, rel)
		}
	}
	fmt.Printf("worst relative error: %.1f%%\n", worst)
}
