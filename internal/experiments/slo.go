package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/hmp"
	"repro/internal/scenario"
)

// SLOSweep evaluates SLO-aware, work-conserving fleet scheduling on the
// parallel experiments engine: placement policies × checkpoint-cost
// regimes over a heterogeneous 3-node fleet fed by per-node traffic traces
// (seeded Poisson arrival streams) alongside long-running SLO'd apps. Each
// row reports admission/queue/migration activity, the total time apps
// spent frozen by moves, and the SLO-miss rate — the number the
// cost-regime axis exists to move: free moves migrate eagerly, expensive
// checkpoints make the slo-aware policy hold apps in place.
func SLOSweep(e *Env) *Report {
	rep := &Report{Title: "SLO sweep: placement policies × migration-cost regimes (miss rates, freeze time)"}
	rep.Table.Header = []string{
		"policy", "ckpt cost", "apps", "queued", "dropped", "moves",
		"frozen (ms)", "slo miss", "miss rate", "digest",
	}

	littleHeavy := func() *hmp.Platform {
		p := hmp.Default()
		p.Clusters[hmp.Big].Cores = 2
		p.Clusters[hmp.Little].Cores = 6
		return p
	}
	tiny := func() *hmp.Platform {
		p := hmp.Default()
		p.Clusters[hmp.Big].Cores = 1
		p.Clusters[hmp.Little].Cores = 1
		return p
	}
	regimes := []struct {
		name string
		spec *scenario.CheckpointSpec
	}{
		{"free", nil},
		{"cheap", &scenario.CheckpointSpec{FreezeUS: 5_000, PerMBUS: 500, SizeMB: 8}},
		{"costly", &scenario.CheckpointSpec{FreezeUS: 250_000, PerMBUS: 25_000, SizeMB: 32}},
	}
	slo := &scenario.SLOSpec{TargetHPS: 3, SlackMS: 150}
	mkScenario := func(policy string, ckpt *scenario.CheckpointSpec) *scenario.Scenario {
		return &scenario.Scenario{
			Name:       fmt.Sprintf("slo-%s", policy),
			Manager:    scenario.ManagerMPHARSI,
			DurationMS: 12000,
			AdaptEvery: 2,
			Placement:  policy,
			Checkpoint: ckpt,
			Nodes: []scenario.NodeSpec{
				{Name: "n0", Platform: tiny()},
				{Name: "n1", Platform: littleHeavy()},
				{Name: "n2"},
			},
			// Two long-running SLO'd apps the migrate pass can shuffle...
			Apps: []scenario.AppSpec{
				{Name: "sw0", Bench: "SW", Threads: 4, SLO: slo,
					InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
					Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
				{Name: "fe0", Bench: "FE", Threads: 4, StartMS: 500, SLO: slo,
					InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
					Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
			},
			// ...plus a traffic trace of short-lived arrivals that keeps
			// saturating the small boards, so queueing and migration fire.
			Arrivals: []scenario.ArrivalStream{{
				Name: "burst", Bench: "BO", Threads: 4, Seed: 9,
				LifetimeMS: 3000, MaxApps: 6, SLO: slo,
				InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
				Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60},
				Rate: []scenario.RateStep{
					{UntilMS: 6000, PerS: 0.8},
					{PerS: 0.2},
				},
			}},
		}
	}

	type row struct {
		policy string
		regime int
		res    *scenario.Result
		err    error
	}
	var rows []row
	for _, policy := range fleet.PolicyNames() {
		for r := range regimes {
			rows = append(rows, row{policy: policy, regime: r})
		}
	}
	parallelFor(len(rows), func(i int) {
		r := &rows[i]
		sc := mkScenario(r.policy, regimes[r.regime].spec)
		r.res, r.err = scenario.Run(sc, scenario.Options{Strict: true})
	})
	for _, r := range rows {
		if r.err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s/%s: %v", r.policy, regimes[r.regime].name, r.err))
			continue
		}
		missRate := 0.0
		if r.res.SLOSamples > 0 {
			missRate = float64(r.res.SLOMisses) / float64(r.res.SLOSamples)
		}
		rep.Table.AddRow(
			r.policy, regimes[r.regime].name,
			fmt.Sprint(len(r.res.Apps)),
			fmt.Sprint(r.res.QueuedArrivals),
			fmt.Sprint(r.res.DroppedArrivals),
			fmt.Sprint(r.res.NodeMigrations),
			fmt.Sprintf("%d", r.res.MigrationDelayUS/1000),
			fmt.Sprintf("%d/%d", r.res.SLOMisses, r.res.SLOSamples),
			fmt.Sprintf("%.2f", missRate),
			fmt.Sprintf("%016x", r.res.TraceDigest),
		)
	}
	rep.Notes = append(rep.Notes,
		"migration is work-conserving: moved apps keep their heartbeat history and progress, frozen for the regime's checkpoint delay",
		"slo miss counts trace samples at which an SLO'd app delivered less than its target rate (queued/frozen apps deliver nothing)",
		"digests are FNV-64a over the full trace; identical runs ⇒ identical digests")
	return rep
}
