package fleet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// Policy is a pluggable placement policy: it scores the desirability of
// admitting an application onto a node. The scheduler picks the admissible
// node with the highest score, breaking ties by the lowest node index, so a
// policy never has to think about capacity or determinism — only
// preference. The application being placed is passed so SLO-aware policies
// can score per app; the classic policies ignore it.
//
// Every built-in policy scores a detector-declared-down node (Node.Down) as
// -Inf, so a down node can never win a score comparison against a live one
// — defense in depth on top of the scheduler's CanAdmit gate, covering the
// admission, migration-destination, and crash-recovery candidate paths
// alike. Custom policies should do the same.
type Policy interface {
	// Name is the policy's registry key (the scenario format's "placement"
	// field).
	Name() string
	// Score rates node n as a destination for app; higher is better.
	// Scores are compared within one decision only, so any consistent
	// scale works. For a placed app, a candidate other than its current
	// node is a migration destination — policies may charge the move.
	Score(n *Node, app *App) float64
}

// The built-in policy names.
const (
	PolicyLeastLoaded = "least-loaded"
	PolicyBigFirst    = "big-first"
	PolicyCoolest     = "coolest"
	PolicySLOAware    = "slo-aware"
)

// leastLoaded steers arrivals to the node with the fewest runnable threads
// — the classic load balancer, blind to heterogeneity and heat.
type leastLoaded struct{}

func (leastLoaded) Name() string { return PolicyLeastLoaded }
func (leastLoaded) Score(n *Node, _ *App) float64 {
	if n.Down() {
		return math.Inf(-1)
	}
	return -float64(n.Load())
}

// bigFirst is the heterogeneity-aware policy: it steers arrivals to the
// node with the most free big-core capacity, falling back on free little
// capacity — applications land where the fast silicon is idle, the fleet
// analogue of HARS preferring big cores while power allows.
type bigFirst struct{}

func (bigFirst) Name() string { return PolicyBigFirst }
func (bigFirst) Score(n *Node, _ *App) float64 {
	if n.Down() {
		return math.Inf(-1)
	}
	// Weight big capacity far above little so a single free big core beats
	// any amount of free little capacity (platforms stay well under 64
	// cores per cluster, the CPU-mask width).
	return 64*float64(n.FreeCores(hmp.Big)) + float64(n.FreeCores(hmp.Little))
}

// coolest is the heat-aware policy: it steers arrivals to the node whose
// hotter cluster is coldest, so load lands where the thermal headroom is —
// before governor caps bite — closing the heat-aware-placement item of the
// thermal roadmap at fleet granularity. Nodes without a thermal governor
// score as ambient.
type coolest struct{}

func (coolest) Name() string { return PolicyCoolest }
func (coolest) Score(n *Node, _ *App) float64 {
	if n.Down() {
		return math.Inf(-1)
	}
	return -n.MaxTempC()
}

// defaultSlackMS is the migration-delay budget assumed for SLO'd apps that
// declare no slack of their own.
const defaultSlackMS = 100.0

// SLOAware is the latency/SLO-aware policy: it scores a node by the
// application's predicted target slack there — the node's spare heartbeat
// capacity (free cores weighted by per-cluster nominal speed at the active
// frequency ceilings, so DVFS capping and thermal throttling lower the
// prediction) relative to the app's SLO target rate — and charges the
// checkpoint-move delay against the app's slack budget when the candidate
// is a migration destination. Apps without an SLO fall back to the raw
// capacity score, so mixed fleets still place sensibly.
type SLOAware struct {
	// Cost is the fleet's work-conserving migration cost model; its Delay
	// is the stall a move charges, scored against the app's SlackMS.
	Cost sim.CheckpointCost
}

// NewSLOAware builds the SLO-aware policy over a migration cost model.
func NewSLOAware(cost sim.CheckpointCost) *SLOAware { return &SLOAware{Cost: cost} }

// Name implements Policy.
func (p *SLOAware) Name() string { return PolicySLOAware }

// Score implements Policy: predicted target slack minus the normalized
// restore delay when landing on n means replaying a checkpoint — a
// migration away from the app's current node, or a crash-recovery
// re-placement (Recovering), which restores the last background snapshot
// and charges the same transfer cost wherever it lands.
func (p *SLOAware) Score(n *Node, app *App) float64 {
	if n.Down() {
		return math.Inf(-1)
	}
	cap := n.CapacityScore()
	if app == nil || app.SLO == nil || app.SLO.TargetHPS <= 0 {
		return cap
	}
	score := cap/app.SLO.TargetHPS - 1
	if (app.Placed() && app.Node() != n) || app.Recovering() {
		slack := float64(app.SLO.SlackMS)
		if slack <= 0 {
			slack = defaultSlackMS
		}
		score -= float64(p.Cost.Delay()) / float64(sim.Millisecond) / slack
	}
	return score
}

// Policies returns the built-in policies in presentation order. The
// migration cost model is injected here so every consumer of the registry —
// not just callers that remember to patch the SLO-aware entry afterwards —
// prices moves with the fleet's real checkpoint cost; pass the zero
// sim.CheckpointCost for free moves.
func Policies(cost sim.CheckpointCost) []Policy {
	return []Policy{leastLoaded{}, bigFirst{}, coolest{}, NewSLOAware(cost)}
}

// PolicyNames returns the registered policy names, sorted.
func PolicyNames() []string {
	var out []string
	for _, p := range Policies(sim.CheckpointCost{}) {
		out = append(out, p.Name())
	}
	sort.Strings(out)
	return out
}

// PolicyByName resolves a registered placement policy carrying the given
// migration cost model; the empty name selects least-loaded, the default.
func PolicyByName(name string, cost sim.CheckpointCost) (Policy, error) {
	if name == "" {
		return leastLoaded{}, nil
	}
	for _, p := range Policies(cost) {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fleet: unknown placement policy %q (have %v)", name, PolicyNames())
}
