package hmp

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the platform description, so users can capture and
// share custom board definitions.
func (p *Platform) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("hmp: encode platform: %w", err)
	}
	return nil
}

// ReadPlatform parses and validates a platform description produced by
// WriteJSON (or written by hand for a custom board).
func ReadPlatform(r io.Reader) (*Platform, error) {
	var p Platform
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("hmp: decode platform: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Normalize()
	return &p, nil
}

// Normalize fixes up the fields that are redundant with structure — the
// per-cluster Kind tags, which mirror array position — so a hand-written or
// embedded JSON description can omit them. ReadPlatform calls it; decoders
// that embed a Platform inside a larger document (scenario node specs) must
// call it themselves after validation.
func (p *Platform) Normalize() {
	p.Clusters[Little].Kind = Little
	p.Clusters[Big].Kind = Big
}
