package power

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
)

func TestModelJSONRoundTrip(t *testing.T) {
	plat := hmp.Default()
	gt := DefaultGroundTruth(plat)
	lm, err := ProfileAndFit(plat, gt, ProfileConfig{
		Utils:  []float64{0.5, 1.0},
		RunPer: 600 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf, plat)
	if err != nil {
		t.Fatal(err)
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		for lv := range lm.Alpha[k] {
			if got.Alpha[k][lv] != lm.Alpha[k][lv] || got.Beta[k][lv] != lm.Beta[k][lv] {
				t.Fatalf("round trip changed coefficients at %s/%d", k, lv)
			}
		}
	}
	if got.Estimate(hmp.Big, 4, 2, 0.7) != lm.Estimate(hmp.Big, 4, 2, 0.7) {
		t.Fatal("round-trip model estimates differently")
	}
}

func TestReadModelRejectsBadShape(t *testing.T) {
	plat := hmp.Default()
	if _, err := ReadModel(strings.NewReader("{"), plat); err == nil {
		t.Error("garbage should fail")
	}
	// Wrong level counts.
	if _, err := ReadModel(strings.NewReader(`{"Alpha":[[1],[1]],"Beta":[[0],[0]],"R2":[[1],[1]]}`), plat); err == nil {
		t.Error("wrong level count should fail")
	}
	// Non-positive alpha.
	bad := &LinearModel{}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		n := plat.Clusters[k].Levels()
		bad.Alpha[k] = make([]float64, n)
		bad.Beta[k] = make([]float64, n)
		bad.R2[k] = make([]float64, n)
	}
	var buf bytes.Buffer
	if err := bad.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf, plat); err == nil {
		t.Error("zero alphas should fail validation")
	}
}
