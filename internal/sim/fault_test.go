package sim_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestFailKillsAndFreezes pins crash semantics: every resident process dies
// without a clean exit, all cores go dark, energy integration freezes, and
// the clock keeps stepping in lockstep.
func TestFailKillsAndFreezes(t *testing.T) {
	b, _ := workload.ByShort("SW")
	m := newTestMachine()
	p := m.Spawn("app", b.New(8), 10)
	m.Run(2 * sim.Second)
	preWork := p.WorkDone()
	if preWork == 0 {
		t.Fatal("test premise broken: app never ran")
	}

	m.Fail()
	if !m.Failed() {
		t.Fatal("machine not failed after Fail")
	}
	if !p.Exited() {
		t.Fatal("resident process survived the crash")
	}
	if m.OnlineMask().Count() != 0 {
		t.Fatalf("crashed machine still has %d cores online", m.OnlineMask().Count())
	}
	preEnergy, preNow := m.EnergyJ(), m.Now()
	m.RunUntil(preNow + sim.Second)
	if m.Now() != preNow+sim.Second {
		t.Fatal("crashed machine stopped stepping: fleet clock would skew")
	}
	if m.EnergyJ() != preEnergy {
		t.Fatalf("crashed machine drew power: %v -> %v J", preEnergy, m.EnergyJ())
	}
	if p.WorkDone() != preWork {
		t.Fatal("dead process progressed on a crashed machine")
	}
	m.Fail() // idempotent
	if !m.Failed() {
		t.Fatal("second Fail cleared the failure")
	}
}

// TestHealRestoresHotplugState pins reboot semantics: Heal restores the
// pre-crash online mask, adjusted by SetCoreOnline calls made while down —
// so a permanent core failure during the outage survives the reboot.
func TestHealRestoresHotplugState(t *testing.T) {
	m := newTestMachine()
	total := m.OnlineMask().Count()
	m.SetCoreOnline(1, false) // pre-crash hotplug
	m.Run(100 * sim.Millisecond)

	m.Fail()
	m.SetCoreOnline(2, false) // core fails permanently while the node is down
	m.Heal()
	if m.Failed() {
		t.Fatal("machine still failed after Heal")
	}
	mask := m.OnlineMask()
	if mask.Has(1) || mask.Has(2) {
		t.Fatalf("offline cores revived by the reboot: mask %v", mask)
	}
	if got := mask.Count(); got != total-2 {
		t.Fatalf("%d cores online after heal, want %d", got, total-2)
	}
	// A healed machine accepts and runs work again.
	b, _ := workload.ByShort("SW")
	p := m.Spawn("app", b.New(4), 10)
	m.RunUntil(m.Now() + sim.Second)
	if p.WorkDone() == 0 {
		t.Fatal("healed machine executed nothing")
	}
	m.Heal() // idempotent on a healthy machine
	if got := m.OnlineMask().Count(); got != total-2 {
		t.Fatalf("redundant Heal changed the mask: %d online", got)
	}
}

// TestSnapshotNonDestructive pins the background-checkpoint contract: the
// snapshot is a consistent restore point and the live process keeps running
// undisturbed.
func TestSnapshotNonDestructive(t *testing.T) {
	b, _ := workload.ByShort("SW")
	m := newTestMachine()
	p := m.Spawn("app", b.New(8), 10)
	m.Run(2 * sim.Second)
	preBeats, preWork := p.HB.Count(), p.WorkDone()

	snap, ok := m.Snapshot(p)
	if !ok {
		t.Fatal("SW program not snapshottable")
	}
	if p.Exited() {
		t.Fatal("Snapshot killed the live process")
	}
	if snap.Beats() != preBeats || snap.WorkDone() != preWork {
		t.Fatalf("snapshot stats %d/%v, want %d/%v", snap.Beats(), snap.WorkDone(), preBeats, preWork)
	}
	m.RunUntil(4 * sim.Second)
	if p.WorkDone() <= preWork {
		t.Fatal("live process stalled after being snapshotted")
	}
	if snap.WorkDone() != preWork {
		t.Fatalf("snapshot mutated by the live run: %v -> %v", preWork, snap.WorkDone())
	}

	// The frozen state restores on another machine and resumes from the
	// capture point, not from the live process's later progress.
	m2 := newTestMachine()
	m2.RunUntil(4 * sim.Second)
	p2 := m2.Restore(snap, 0)
	if got := p2.WorkDone(); got != preWork {
		t.Fatalf("restored work %v, want the captured %v", got, preWork)
	}
	m2.RunUntil(6 * sim.Second)
	if p2.WorkDone() <= preWork {
		t.Fatal("restored process never progressed")
	}
}

// TestProcSnapshotCloneIndependent pins snapshot cloning: the clone restores
// independently, unaffected by the original being consumed elsewhere.
func TestProcSnapshotCloneIndependent(t *testing.T) {
	b, _ := workload.ByShort("SW")
	m := newTestMachine()
	p := m.Spawn("app", b.New(8), 10)
	m.Run(2 * sim.Second)
	snap, ok := m.Snapshot(p)
	if !ok {
		t.Fatal("SW program not snapshottable")
	}
	clone, ok := snap.Clone()
	if !ok {
		t.Fatal("SW snapshot not cloneable")
	}
	preWork := snap.WorkDone()

	m2 := newTestMachine()
	m2.RunUntil(2 * sim.Second)
	p2 := m2.Restore(snap, 0)
	m2.RunUntil(4 * sim.Second)
	if p2.WorkDone() <= preWork {
		t.Fatal("original snapshot failed to restore")
	}
	if clone.WorkDone() != preWork {
		t.Fatalf("restoring the original mutated the clone: %v -> %v", preWork, clone.WorkDone())
	}
	m3 := newTestMachine()
	m3.RunUntil(2 * sim.Second)
	p3 := m3.Restore(clone, 0)
	m3.RunUntil(4 * sim.Second)
	if p3.WorkDone() <= preWork {
		t.Fatal("clone failed to restore after the original was consumed")
	}
}

// TestFaultTraceEvents pins the fault trace vocabulary: Fail/Heal emit
// node_down/node_up and Recover emits recover (not migrate_in) with the
// resume time.
func TestFaultTraceEvents(t *testing.T) {
	b, _ := workload.ByShort("SW")
	m := newTestMachine()
	tr := &sim.Tracer{}
	m.SetTracer(tr)
	p := m.Spawn("app", b.New(4), 10)
	m.Run(sim.Second)
	snap, ok := m.Snapshot(p)
	if !ok {
		t.Fatal("SW program not snapshottable")
	}
	m.Fail()
	m.RunUntil(m.Now() + 500*sim.Millisecond)
	m.Heal()
	resume := m.Now() + 42*sim.Millisecond
	m.Recover(snap, resume)

	var down, up, rec *sim.Event
	evs := tr.Events()
	for i := range evs {
		switch evs[i].Kind {
		case sim.EvNodeDown:
			down = &evs[i]
		case sim.EvNodeUp:
			up = &evs[i]
		case sim.EvRecover:
			rec = &evs[i]
		}
	}
	if down == nil || up == nil {
		t.Fatalf("missing node_down/node_up events: %v/%v", down, up)
	}
	if up.T-down.T != 500*sim.Millisecond {
		t.Fatalf("outage spanned %d, want 500 ms", up.T-down.T)
	}
	if rec == nil || rec.Proc != "app" || rec.Until != resume {
		t.Fatalf("bad recover event: %+v", rec)
	}
}
