package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Driver is one registered experiment: a name (the -exp selector of
// cmd/hars-experiments) and the function regenerating its report.
type Driver struct {
	Name string
	Run  func(*Env) *Report
}

// Drivers returns the experiment registry in presentation order (the order
// the paper's evaluation chapter introduces them).
func Drivers() []Driver {
	return []Driver{
		{"table3.1", Table31},
		{"table4.3", Table43},
		{"power", PowerProfile},
		{"fig5.1", Fig51},
		{"fig5.2", Fig52},
		{"fig5.3", Fig53},
		{"fig5.4", Fig54},
		{"fig5.5", Fig55},
		{"fig5.6", Fig56},
		{"fig5.7", Fig57},
		{"ablation", Ablations},
		{"extended", ExtendedSuite},
		{"scenarios", ScenarioSweep},
		{"thermal", ThermalSweep},
		{"fleet", FleetSweep},
		{"slo", SLOSweep},
		{"faults", FaultsSweep},
		{"decisions", DecisionsSweep},
	}
}

// Outcome is one driver's result under the engine.
type Outcome struct {
	Name    string
	Report  *Report
	Elapsed time.Duration
}

// RunDrivers executes the drivers through a worker pool of the given width
// (workers <= 1 runs serially, workers == 0 uses one worker per CPU) and
// returns their outcomes in input order. Every driver owns its machines and
// only shares the environment's synchronized caches, so the reports are
// identical whatever the pool width — the engine changes wall-clock time,
// never results. onDone, when non-nil, observes each outcome in input order
// as soon as it (and all its predecessors) completed, allowing streamed
// output while later drivers still run.
func RunDrivers(env *Env, drivers []Driver, workers int, onDone func(Outcome)) []Outcome {
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(drivers) {
		workers = len(drivers)
	}
	out := make([]Outcome, len(drivers))
	if workers <= 1 {
		for i, d := range drivers {
			t0 := time.Now()
			out[i] = Outcome{Name: d.Name, Report: d.Run(env), Elapsed: time.Since(t0)}
			if onDone != nil {
				onDone(out[i])
			}
		}
		return out
	}
	done := make([]chan struct{}, len(drivers))
	for i := range done {
		done[i] = make(chan struct{})
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				d := drivers[i]
				t0 := time.Now()
				out[i] = Outcome{Name: d.Name, Report: d.Run(env), Elapsed: time.Since(t0)}
				close(done[i])
			}
		}()
	}
	go func() {
		for i := range drivers {
			next <- i
		}
		close(next)
	}()
	for i := range drivers {
		<-done[i]
		if onDone != nil {
			onDone(out[i])
		}
	}
	wg.Wait()
	return out
}

// SelectDrivers filters the registry by name ("all" or "" selects every
// driver).
func SelectDrivers(name string) ([]Driver, error) {
	all := Drivers()
	if name == "" || name == "all" {
		return all, nil
	}
	for _, d := range all {
		if d.Name == name {
			return []Driver{d}, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", name)
}
