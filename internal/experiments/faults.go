package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/hmp"
	"repro/internal/scenario"
)

// FaultsSweep exercises the fault-injection and recovery layer on the
// parallel experiments engine: placement policies × crash rates × snapshot
// intervals over a heterogeneous 3-node fleet running long SLO'd apps under
// a seeded-random crash process with flaky checkpoint transfers. Each row
// reports crash/recovery activity, the work rolled back by crashes (the
// number the snapshot-interval axis exists to move), transfer retries, and
// the SLO-miss rate (the number the crash-rate axis moves). The fleet keeps
// enough spare capacity that two surviving nodes can host every app, so the
// "stranded" column — apps still parked in the admission queue when the run
// ended — stays zero: recovery re-places every salvaged app.
func FaultsSweep(e *Env) *Report {
	rep := &Report{Title: "Faults sweep: policies × crash rates × snapshot intervals (lost work, recovery)"}
	rep.Table.Header = []string{
		"policy", "crash/min", "ckpt (ms)", "crashes", "recoveries",
		"lost (ms)", "xfail", "dropped", "stranded", "miss rate", "digest",
	}

	littleHeavy := func() *hmp.Platform {
		p := hmp.Default()
		p.Clusters[hmp.Big].Cores = 2
		p.Clusters[hmp.Little].Cores = 6
		return p
	}
	slo := &scenario.SLOSpec{TargetHPS: 3, SlackMS: 150}
	mkScenario := func(policy string, ratePerMin float64, ckptMS int64) *scenario.Scenario {
		return &scenario.Scenario{
			Name:       fmt.Sprintf("faults-%s", policy),
			Manager:    scenario.ManagerMPHARSI,
			DurationMS: 12000,
			AdaptEvery: 2,
			Placement:  policy,
			// Roomy boards: any two survivors can host all three apps, so
			// recovery always finds a home and nothing stays stranded.
			Nodes: []scenario.NodeSpec{
				{Name: "n0"},
				{Name: "n1", Platform: littleHeavy()},
				{Name: "n2"},
			},
			Apps: []scenario.AppSpec{
				{Name: "sw0", Bench: "SW", Threads: 4, SLO: slo,
					InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
					Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
				{Name: "fe0", Bench: "FE", Threads: 4, StartMS: 500, SLO: slo,
					InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
					Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
				{Name: "bo0", Bench: "BO", Threads: 4, StartMS: 1000, SLO: slo,
					InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1),
					Target: &scenario.TargetSpec{Min: 40, Avg: 50, Max: 60}},
			},
			Faults: &fault.Spec{
				Seed:              41,
				CheckpointEveryMS: ckptMS,
				TransferFailProb:  0.15,
				// One scripted crash pins a recovery in every row; the
				// seeded-random process layers the crash-rate axis on top.
				Crashes: []fault.Crash{{Node: "n1", AtMS: 2000, DownMS: 4000}},
				Random:  &fault.RandomCrashes{RatePerMin: ratePerMin, DownMS: 2500},
			},
		}
	}

	rates := []float64{5, 20}
	intervals := []int64{500, 2000}
	type row struct {
		policy string
		rate   float64
		ckptMS int64
		res    *scenario.Result
		err    error
	}
	var rows []row
	for _, policy := range fleet.PolicyNames() {
		for _, rate := range rates {
			for _, ckptMS := range intervals {
				rows = append(rows, row{policy: policy, rate: rate, ckptMS: ckptMS})
			}
		}
	}
	parallelFor(len(rows), func(i int) {
		r := &rows[i]
		sc := mkScenario(r.policy, r.rate, r.ckptMS)
		r.res, r.err = scenario.Run(sc, scenario.Options{Strict: true, CheckEveryTick: true})
	})
	for _, r := range rows {
		if r.err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s/%v/%d: %v", r.policy, r.rate, r.ckptMS, r.err))
			continue
		}
		missRate := 0.0
		if r.res.SLOSamples > 0 {
			missRate = float64(r.res.SLOMisses) / float64(r.res.SLOSamples)
		}
		rep.Table.AddRow(
			r.policy,
			fmt.Sprintf("%.0f", r.rate),
			fmt.Sprint(r.ckptMS),
			fmt.Sprint(r.res.NodeCrashes),
			fmt.Sprint(r.res.Recoveries),
			fmt.Sprintf("%d", r.res.LostWorkUS/1000),
			fmt.Sprint(r.res.TransferFails),
			fmt.Sprint(r.res.DroppedArrivals),
			fmt.Sprint(r.res.StrandedApps),
			fmt.Sprintf("%.2f", missRate),
			fmt.Sprintf("%016x", r.res.TraceDigest),
		)
	}
	rep.Notes = append(rep.Notes,
		"work lost per crash is bounded by the snapshot interval: halving ckpt halves the rollback, at the cost of more background snapshot traffic",
		"stranded counts apps still parked in the admission queue at the end; with two survivors able to host everything it must be zero",
		"transfer failures (xfail) retry under capped exponential backoff with seeded jitter; every number here replays bit-identically",
		"digests are FNV-64a over the full trace; identical runs ⇒ identical digests")
	return rep
}
