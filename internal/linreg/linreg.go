// Package linreg provides ordinary least-squares linear regression, the
// fitting machinery behind HARS's power estimator. The paper constructs
// per-cluster, per-frequency linear models P = α·(C_U·U_U) + β from profiled
// power-sensor data; Fit1D performs exactly that fit, and FitMulti solves the
// general multi-variate case via the normal equations.
package linreg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDegenerate is returned when the input does not determine a unique fit
// (too few samples or collinear predictors).
var ErrDegenerate = errors.New("linreg: degenerate system")

// Fit1D fits y ≈ alpha*x + beta by ordinary least squares.
func Fit1D(xs, ys []float64) (alpha, beta float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("linreg: mismatched lengths %d and %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return 0, 0, ErrDegenerate
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12*(n*sxx+sx*sx+1) {
		return 0, 0, ErrDegenerate
	}
	alpha = (n*sxy - sx*sy) / den
	beta = (sy - alpha*sx) / n
	return alpha, beta, nil
}

// FitMulti fits y ≈ X·w (+ intercept if addIntercept) by least squares,
// solving the normal equations XᵀX w = Xᵀy with Gaussian elimination and
// partial pivoting. The returned weights have the intercept last when
// requested.
func FitMulti(x [][]float64, y []float64, addIntercept bool) ([]float64, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("linreg: mismatched rows %d and %d", len(x), len(y))
	}
	if len(x) == 0 {
		return nil, ErrDegenerate
	}
	p := len(x[0])
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("linreg: row %d has %d columns, want %d", i, len(row), p)
		}
	}
	cols := p
	if addIntercept {
		cols++
	}
	if len(x) < cols {
		return nil, ErrDegenerate
	}
	// Build XᵀX (cols×cols) and Xᵀy (cols).
	xtx := make([][]float64, cols)
	for i := range xtx {
		xtx[i] = make([]float64, cols)
	}
	xty := make([]float64, cols)
	feat := func(row []float64, j int) float64 {
		if j < p {
			return row[j]
		}
		return 1 // intercept column
	}
	for r := range x {
		for i := 0; i < cols; i++ {
			fi := feat(x[r], i)
			xty[i] += fi * y[r]
			for j := 0; j < cols; j++ {
				xtx[i][j] += fi * feat(x[r], j)
			}
		}
	}
	w, err := SolveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// SolveLinear solves the square linear system A·x = b using Gaussian
// elimination with partial pivoting. A and b are not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, ErrDegenerate
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("linreg: matrix row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, ErrDegenerate
		}
		m[col], m[piv] = m[piv], m[col]
		x[col], x[piv] = x[piv], x[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= m[col][c] * x[c]
		}
		x[col] = sum / m[col][col]
	}
	return x, nil
}

// RSquared returns the coefficient of determination of predictions yhat
// against observations y. A perfect fit returns 1; a fit no better than the
// mean returns 0 (negative values indicate a fit worse than the mean).
func RSquared(y, yhat []float64) float64 {
	if len(y) != len(yhat) || len(y) == 0 {
		return math.NaN()
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - yhat[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// Predict1D evaluates alpha*x + beta.
func Predict1D(alpha, beta, x float64) float64 { return alpha*x + beta }
