// Package mphars implements MP-HARS, the multi-application extension of
// HARS (Chapter 4), plus the CONS-I baseline it is evaluated against.
//
// MP-HARS adds two modules on top of HARS:
//
//   - Resource partitioning: every application owns a private set of cores,
//     tracked with the per-application and per-cluster data structures of
//     Tables 4.1 and 4.2 and allocated by Algorithm 4 (reusing already-owned
//     cores to minimize migrations, growing only into free cores).
//   - Interference-aware adaptation: cluster frequencies are shared, so
//     changing them is governed by the State & Freeze decision table
//     (Table 4.3). A frequency decrease sets a per-application freezing
//     count (in heartbeats) on every application using the cluster; while
//     any count is non-zero the cluster is frozen and cannot be decreased
//     again, giving everyone time to collect reliable performance data at
//     the new operating point.
//
// The runtime manager keeps application data in a linked list and iterates
// it every tick (Algorithm 3), running each application's HARS-style search
// (Algorithm 2) with bounds derived from the free-core count and the
// frequency controllability of each cluster.
package mphars

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// Version selects the MP-HARS search flavour.
type Version int

// The evaluated MP-HARS versions.
const (
	// MPHARSI explores neighbour states with distance 1 (incremental).
	MPHARSI Version = iota
	// MPHARSE explores exhaustively with m = 4, n = 4, d = 7.
	MPHARSE
)

// String names the version as in Figure 5.4.
func (v Version) String() string {
	switch v {
	case MPHARSI:
		return "MP-HARS-I"
	case MPHARSE:
		return "MP-HARS-E"
	}
	return "MP-HARS-?"
}

// Config tunes the MP-HARS runtime manager.
type Config struct {
	Version Version

	// AdaptEvery is the per-application adaptation period in heartbeats.
	// Default 10.
	AdaptEvery int64

	// FreezeBeats is the freezing count installed after a frequency
	// decrease: the number of heartbeats an affected application must
	// observe before the cluster may be decreased again. Default 10.
	FreezeBeats int

	// Scheduler is the per-application thread scheduler. Default Chunk.
	Scheduler core.SchedulerKind

	// Overhead accounting (see core.Config).
	PerCandidate sim.Time
	PerSearch    sim.Time
	PollPerTick  sim.Time
	OverheadCPU  int
}

func (c Config) withDefaults() Config {
	if c.AdaptEvery <= 0 {
		c.AdaptEvery = 10
	}
	if c.FreezeBeats <= 0 {
		c.FreezeBeats = 10
	}
	if c.PerCandidate <= 0 {
		c.PerCandidate = 150 * sim.Microsecond
	}
	if c.PerSearch <= 0 {
		c.PerSearch = 500 * sim.Microsecond
	}
	if c.PollPerTick <= 0 {
		c.PollPerTick = 2 * sim.Microsecond
	}
	return c
}

func (c Config) params() core.SearchParams {
	if c.Version == MPHARSI {
		return core.SearchParams{M: 1, N: 1, D: 1}
	}
	return core.SearchParams{M: 4, N: 4, D: 7}
}

// TracePoint is one heartbeat-indexed sample of an application's state, the
// raw data of the behaviour graphs (Figures 5.5–5.7).
type TracePoint struct {
	Time        sim.Time
	HBIndex     int64
	HPS         float64 // window heartbeat rate
	BigCores    int
	LittleCores int
	BigGHz      float64
	LittleGHz   float64
}

// appNode is the per-application data structure of Table 4.1, kept in the
// manager's linked list.
type appNode struct {
	next *appNode

	proc   *sim.Process
	target heartbeat.Target
	est    core.Estimators

	nprocsB, nprocsL int    // number of assigned big / little cores
	useBCore         []bool // assigned big core indices
	useLCore         []bool // assigned little core indices

	adaptationIndex int64 // heartbeat index of the last adaptation
	lastSeen        int64 // heartbeats observed so far
	lastRate        float64

	freezingCntB int // heartbeats to wait until big frequency is controllable
	freezingCntL int

	decBigCoreCnt    int // cores to free at the next allocation pass
	decLittleCoreCnt int

	trace []TracePoint
}

// clusterData is the per-cluster data structure of Table 4.2.
type clusterData struct {
	frozen   bool
	freeCore []bool // freeCore[i]: core i of the cluster is unallocated
	offline  []bool // offline[i]: core i is hotplugged out (neither free nor owned)
	nfreq    int    // current frequency level
}

// Manager is the MP-HARS runtime manager: a machine daemon multiplexing one
// HARS adaptation loop per registered application over partitioned cores and
// shared cluster frequencies.
type Manager struct {
	cfg      Config
	plat     *hmp.Platform
	model    *power.LinearModel
	head     *appNode
	tail     *appNode
	clusters [hmp.NumClusters]*clusterData

	searches      int
	exploredTotal int
}

// New creates an MP-HARS manager for the machine, with both clusters at
// their maximum frequency and all cores free.
func New(m *sim.Machine, model *power.LinearModel, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	plat := m.Platform()
	mgr := &Manager{cfg: cfg, plat: plat, model: model}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		free := make([]bool, plat.Clusters[k].Cores)
		for i := range free {
			free[i] = true
		}
		mgr.clusters[k] = &clusterData{
			freeCore: free,
			offline:  make([]bool, plat.Clusters[k].Cores),
			nfreq:    plat.Clusters[k].MaxLevel(),
		}
		m.SetLevel(k, plat.Clusters[k].MaxLevel())
	}
	return mgr
}

// Register adds an application with its performance target and an initial
// allocation of initBig big and initLittle little cores (clamped to what is
// free). The threads are scheduled onto the allocation immediately.
//
// A process arriving with heartbeat history — the destination side of a
// work-conserving migration — re-registers without state loss: the manager
// adopts the carried history as already observed (no replay of old beats
// through the freezing counters) and schedules the first adaptation a full
// period after the move, so decisions rest on rates measured here.
func (mgr *Manager) Register(m *sim.Machine, proc *sim.Process, target heartbeat.Target, initBig, initLittle int) *appNode {
	n := &appNode{
		proc:     proc,
		target:   target,
		est:      core.NewEstimators(mgr.plat, len(proc.Threads), mgr.model),
		useBCore: make([]bool, mgr.plat.Clusters[hmp.Big].Cores),
		useLCore: make([]bool, mgr.plat.Clusters[hmp.Little].Cores),
	}
	if count := proc.HB.Count(); count > 0 {
		n.lastSeen = count
		if rec, ok := proc.HB.Latest(); ok {
			n.adaptationIndex = rec.Index
			n.lastRate = rec.WindowRate
		}
	}
	proc.HB.SetTarget(target)
	n.nprocsB = minInt(initBig, mgr.freeCount(hmp.Big))
	n.nprocsL = minInt(initLittle, mgr.freeCount(hmp.Little))
	if n.nprocsB+n.nprocsL == 0 {
		panic(fmt.Sprintf("mphars: no free cores to register %s", proc.Name))
	}
	if mgr.head == nil {
		mgr.head = n
	} else {
		mgr.tail.next = n
	}
	mgr.tail = n
	mgr.scheduleThreads(m, n)
	return n
}

func (mgr *Manager) freeCount(k hmp.ClusterKind) int {
	c := 0
	for _, f := range mgr.clusters[k].freeCore {
		if f {
			c++
		}
	}
	return c
}

// Apps returns the registered processes in registration order.
func (mgr *Manager) Apps() []*sim.Process {
	var out []*sim.Process
	for n := mgr.head; n != nil; n = n.next {
		out = append(out, n.proc)
	}
	return out
}

// Trace returns the behaviour trace of the given process.
func (mgr *Manager) Trace(proc *sim.Process) []TracePoint {
	for n := mgr.head; n != nil; n = n.next {
		if n.proc == proc {
			return n.trace
		}
	}
	return nil
}

// Allocation returns the current (big, little) core counts of a process.
func (mgr *Manager) Allocation(proc *sim.Process) (big, little int) {
	for n := mgr.head; n != nil; n = n.next {
		if n.proc == proc {
			return n.nprocsB, n.nprocsL
		}
	}
	return 0, 0
}

// Frozen reports the frozen flag of cluster k.
func (mgr *Manager) Frozen(k hmp.ClusterKind) bool { return mgr.clusters[k].frozen }

// FreeCores returns how many cores of cluster k are currently free (online
// and unowned). Scenario engines consult it before registering an arrival.
func (mgr *Manager) FreeCores(k hmp.ClusterKind) int { return mgr.freeCount(k) }

// SetTarget replaces a registered application's performance target mid-run
// (a scenario "target" event). It reports whether the process was found.
func (mgr *Manager) SetTarget(proc *sim.Process, t heartbeat.Target) bool {
	for n := mgr.head; n != nil; n = n.next {
		if n.proc == proc {
			n.target = t
			proc.HB.SetTarget(t)
			return true
		}
	}
	return false
}

// Unregister removes an application from management (a scenario departure):
// its online cores return to the free pool, its freezing counts disappear
// with its node, and later arrivals can reuse the space. The caller
// typically also calls Machine.Kill on the process. It reports whether the
// process was registered.
func (mgr *Manager) Unregister(m *sim.Machine, proc *sim.Process) bool {
	var prev *appNode
	for n := mgr.head; n != nil; prev, n = n, n.next {
		if n.proc != proc {
			continue
		}
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			c := mgr.clusters[k]
			use := n.useLCore
			if k == hmp.Big {
				use = n.useBCore
			}
			for i, u := range use {
				if u && !c.offline[i] {
					c.freeCore[i] = true
				}
				use[i] = false
			}
		}
		if prev == nil {
			mgr.head = n.next
		} else {
			prev.next = n.next
		}
		if mgr.tail == n {
			mgr.tail = prev
		}
		n.next = nil
		n.nprocsB, n.nprocsL = 0, 0
		return true
	}
	return false
}

// Searches returns the total number of search invocations.
func (mgr *Manager) Searches() int { return mgr.searches }

// ReconcilePlatform folds machine hotplug and DVFS-cap changes into the
// ownership tables of Table 4.2: a core that went offline is revoked from
// its owner (or pulled from the free pool) and returns to the free pool when
// it comes back online, and the shared frequency view tracks the machine's
// actual — possibly externally capped — levels. Tick calls this every tick;
// scenario engines may also call it directly after applying hotplug events
// so that registrations in the same tick see a consistent free pool.
func (mgr *Manager) ReconcilePlatform(m *sim.Machine) {
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		c := mgr.clusters[k]
		c.nfreq = m.Level(k)
		for i := range c.offline {
			online := m.CoreOnline(mgr.plat.CPU(k, i))
			switch {
			case !online && !c.offline[i]:
				c.offline[i] = true
				if c.freeCore[i] {
					c.freeCore[i] = false
				} else {
					mgr.revoke(m, k, i)
				}
			case online && c.offline[i]:
				c.offline[i] = false
				c.freeCore[i] = true
			}
		}
	}
}

// revoke strips core i of cluster k from its owning application (the core
// went offline) and reschedules the owner onto its remaining cores.
func (mgr *Manager) revoke(m *sim.Machine, k hmp.ClusterKind, i int) {
	for n := mgr.head; n != nil; n = n.next {
		use := n.useLCore
		if k == hmp.Big {
			use = n.useBCore
		}
		if !use[i] {
			continue
		}
		use[i] = false
		if k == hmp.Big {
			n.nprocsB--
		} else {
			n.nprocsL--
		}
		if n.nprocsB+n.nprocsL == 0 {
			// The application lost its last core: grab any free core so its
			// threads keep running. If none exists the threads stay affine
			// to their departed cores and stall until the platform grows
			// back or another application releases a core.
			if !mgr.grabAnyFree(n) {
				return
			}
		}
		mgr.scheduleThreads(m, n)
		return
	}
}

// grabAnyFree claims one free core (little first: it is the cheap lifeline)
// for an application that lost everything to hotplug.
func (mgr *Manager) grabAnyFree(n *appNode) bool {
	for _, k := range [...]hmp.ClusterKind{hmp.Little, hmp.Big} {
		c := mgr.clusters[k]
		for i, f := range c.freeCore {
			if !f {
				continue
			}
			c.freeCore[i] = false
			if k == hmp.Big {
				n.useBCore[i] = true
				n.nprocsB++
			} else {
				n.useLCore[i] = true
				n.nprocsL++
			}
			return true
		}
	}
	return false
}

// SteadyBegin implements sim.SteadyDaemon: inside a certified steady window
// no unit completes, so no heartbeat arrives and every pass of Tick reduces
// to the polling charge plus same-value rewrites of manager-internal state
// (ReconcilePlatform re-reads unchanged levels and hotplug flags, the
// heartbeat loop re-reads the already-consumed latest record, the frozen
// recompute folds unchanged freezing counts). The window is accepted only
// when each pass is provably in that regime right now — conditions that are
// invariant while completions, platform state, and free cores are frozen:
//
//   - ReconcilePlatform: cached cluster frequencies match the machine's and
//     no core's hotplug state changed underneath the ownership tables;
//   - rescue pass: no live zero-core application while a free core exists
//     (grabAnyFree would mutate the free pool);
//   - heartbeat consumption: every application's beat count already seen,
//     and its latest record already folded into the trace;
//   - frozen recompute: the cached flags equal the recomputation;
//   - adaptOne: every application early-returns (exited, no record yet,
//     inside its adaptation period, or inside the target band).
func (mgr *Manager) SteadyBegin(m *sim.Machine) (sim.SteadyEntry, bool) {
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		c := mgr.clusters[k]
		if c.nfreq != m.Level(k) {
			return sim.SteadyEntry{}, false
		}
		for i := range c.offline {
			if m.CoreOnline(mgr.plat.CPU(k, i)) == c.offline[i] {
				return sim.SteadyEntry{}, false
			}
		}
		frozen := false
		for n := mgr.head; n != nil; n = n.next {
			if n.freezing(k) > 0 {
				frozen = true
				break
			}
		}
		if c.frozen != frozen {
			return sim.SteadyEntry{}, false
		}
	}
	anyFree := mgr.freeCount(hmp.Big)+mgr.freeCount(hmp.Little) > 0
	for n := mgr.head; n != nil; n = n.next {
		if n.nprocsB+n.nprocsL == 0 && !n.proc.Exited() && anyFree {
			return sim.SteadyEntry{}, false
		}
		if n.proc.HB.Count() != n.lastSeen {
			return sim.SteadyEntry{}, false
		}
		rec, ok := n.proc.HB.Latest()
		if !ok {
			continue
		}
		if len(n.trace) == 0 || n.trace[len(n.trace)-1].HBIndex != rec.Index {
			return sim.SteadyEntry{}, false
		}
		if n.proc.Exited() {
			continue
		}
		if rec.Index < n.adaptationIndex+mgr.cfg.AdaptEvery {
			continue
		}
		if !heartbeat.OutsideBand(n.target, rec.WindowRate) {
			continue
		}
		return sim.SteadyEntry{}, false // adaptOne would search and actuate
	}
	return sim.SteadyEntry{ChargeCPU: mgr.cfg.OverheadCPU, Charge: mgr.cfg.PollPerTick}, true
}

// Tick implements sim.Daemon: the iterate function of Algorithm 3.
func (mgr *Manager) Tick(m *sim.Machine) {
	m.ChargeOverhead(mgr.cfg.OverheadCPU, mgr.cfg.PollPerTick)
	mgr.ReconcilePlatform(m)

	// Rescue pass: an application stripped to zero cores by hotplug gets
	// the first core that frees up (departure or a core coming back online).
	for n := mgr.head; n != nil; n = n.next {
		if n.nprocsB+n.nprocsL == 0 && !n.proc.Exited() && mgr.grabAnyFree(n) {
			mgr.scheduleThreads(m, n)
		}
	}

	// Lines 6–11: consume new heartbeats, decrement freezing counts, and
	// record trace points.
	for n := mgr.head; n != nil; n = n.next {
		count := n.proc.HB.Count()
		for n.lastSeen < count {
			n.lastSeen++
			if n.freezingCntB > 0 {
				n.freezingCntB--
			}
			if n.freezingCntL > 0 {
				n.freezingCntL--
			}
		}
		if rec, ok := n.proc.HB.Latest(); ok {
			n.lastRate = rec.WindowRate
			if len(n.trace) == 0 || n.trace[len(n.trace)-1].HBIndex != rec.Index {
				n.trace = append(n.trace, TracePoint{
					Time:        m.Now(),
					HBIndex:     rec.Index,
					HPS:         rec.WindowRate,
					BigCores:    n.nprocsB,
					LittleCores: n.nprocsL,
					BigGHz:      float64(mgr.plat.Clusters[hmp.Big].KHz(mgr.clusters[hmp.Big].nfreq)) / 1e6,
					LittleGHz:   float64(mgr.plat.Clusters[hmp.Little].KHz(mgr.clusters[hmp.Little].nfreq)) / 1e6,
				})
			}
		}
	}

	// Lines 12–15: recompute frozen flags from the freezing counts.
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		frozen := false
		for n := mgr.head; n != nil; n = n.next {
			if n.freezing(k) > 0 {
				frozen = true
				break
			}
		}
		mgr.clusters[k].frozen = frozen
	}

	// Lines 16–26: per-application adaptation.
	for n := mgr.head; n != nil; n = n.next {
		mgr.adaptOne(m, n)
	}
}

func (n *appNode) freezing(k hmp.ClusterKind) int {
	if k == hmp.Big {
		return n.freezingCntB
	}
	return n.freezingCntL
}

func (n *appNode) setFreezing(k hmp.ClusterKind, v int) {
	if k == hmp.Big {
		n.freezingCntB = v
	} else {
		n.freezingCntL = v
	}
}

func (n *appNode) usesCluster(k hmp.ClusterKind) bool {
	if k == hmp.Big {
		return n.nprocsB > 0
	}
	return n.nprocsL > 0
}

// curState is the application's view of the system state: its own cores at
// the shared cluster frequencies.
func (mgr *Manager) curState(n *appNode) hmp.State {
	return hmp.State{
		BigCores:    n.nprocsB,
		LittleCores: n.nprocsL,
		BigLevel:    mgr.clusters[hmp.Big].nfreq,
		LittleLevel: mgr.clusters[hmp.Little].nfreq,
	}
}

func (mgr *Manager) adaptOne(m *sim.Machine, n *appNode) {
	if n.proc.Exited() {
		return
	}
	rec, ok := n.proc.HB.Latest()
	if !ok {
		return
	}
	if rec.Index < n.adaptationIndex+mgr.cfg.AdaptEvery {
		return
	}
	rate := rec.WindowRate
	if !heartbeat.OutsideBand(n.target, rate) {
		return
	}
	n.adaptationIndex = rec.Index

	// Line 18: free cores bound the core-count sweep; external DVFS
	// ceilings (thermal capping) bound the frequency sweep.
	bounds := core.Bounds{
		MaxBigCores:    n.nprocsB + mgr.freeCount(hmp.Big),
		MaxLittleCores: n.nprocsL + mgr.freeCount(hmp.Little),
		BigLevelCap:    m.LevelCap(hmp.Big) + 1,
		LittleLevelCap: m.LevelCap(hmp.Little) + 1,
	}
	// Line 19: cluster frequency controllability.
	bounds.BigFreq = mgr.freqConstraint(n, hmp.Big, rate)
	bounds.LittleFreq = mgr.freqConstraint(n, hmp.Little, rate)

	cs := mgr.curState(n)
	res := core.Search(n.est, cs, rate, n.target, mgr.cfg.params(), bounds)
	mgr.searches++
	mgr.exploredTotal += res.Explored
	m.ChargeOverhead(mgr.cfg.OverheadCPU,
		mgr.cfg.PerSearch+sim.Time(res.Explored)*mgr.cfg.PerCandidate)

	if res.State == cs {
		return
	}
	// Lines 21–22: core allocation (Algorithm 4) and thread scheduling.
	n.decBigCoreCnt = maxInt(0, n.nprocsB-res.State.BigCores)
	n.decLittleCoreCnt = maxInt(0, n.nprocsL-res.State.LittleCores)
	n.nprocsB = res.State.BigCores
	n.nprocsL = res.State.LittleCores
	mgr.scheduleThreads(m, n)

	// Lines 23–26: apply frequency changes; decreases install freezing
	// counts on every application using the cluster.
	mgr.applyFreq(m, hmp.Big, res.State.BigLevel)
	mgr.applyFreq(m, hmp.Little, res.State.LittleLevel)
}

// freqConstraint computes the per-cluster frequency bound for one
// application's search: sole users are limited only by the frozen flag;
// shared clusters go through Table 4.3, and an Unfreeze verdict clears the
// freezing counts immediately.
func (mgr *Manager) freqConstraint(n *appNode, k hmp.ClusterKind, rate float64) core.FreqConstraint {
	shared := false
	var others []heartbeat.Satisfaction
	for o := mgr.head; o != nil; o = o.next {
		if o == n || !o.usesCluster(k) {
			continue
		}
		shared = true
		if o.proc.HB.Count() > 0 {
			others = append(others, heartbeat.Classify(o.target, o.lastRate))
		}
	}
	frozen := mgr.clusters[k].frozen
	if !shared {
		if frozen {
			return core.FreqIncOnly
		}
		return core.FreqFree
	}
	own := heartbeat.Classify(n.target, rate)
	state, freeze := Decide(own, AggregateOthers(others), frozen)
	if freeze == Unfreeze {
		for o := mgr.head; o != nil; o = o.next {
			o.setFreezing(k, 0)
		}
		mgr.clusters[k].frozen = false
	}
	switch state {
	case IncState:
		return core.FreqIncOnly
	case DecState:
		return core.FreqDecOnly
	default:
		return core.FreqFixed
	}
}

// applyFreq sets a cluster's shared frequency; a decrease freezes the
// cluster by installing freezing counts on every application using it
// (Algorithm 3 lines 23–26).
func (mgr *Manager) applyFreq(m *sim.Machine, k hmp.ClusterKind, level int) {
	c := mgr.clusters[k]
	if level == c.nfreq {
		return
	}
	decreased := level < c.nfreq
	c.nfreq = level
	m.SetLevel(k, level)
	if decreased {
		for o := mgr.head; o != nil; o = o.next {
			if o.usesCluster(k) {
				o.setFreezing(k, mgr.cfg.FreezeBeats)
			}
		}
		c.frozen = true
	}
}

// scheduleThreads runs Algorithm 4 to (re)allocate the application's cores,
// then applies the per-application HARS thread schedule.
func (mgr *Manager) scheduleThreads(m *sim.Machine, n *appNode) {
	bigCores, littleCores := mgr.allocateCores(n)
	st := mgr.curState(n)
	ev := n.est.Perf.EvaluateCached(st)
	core.ApplySchedule(n.proc, ev.Assignment, mgr.cfg.Scheduler, bigCores, littleCores)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
