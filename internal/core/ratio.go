package core

import (
	"math"

	"repro/internal/hmp"
)

// This file implements the paper's planned extension of updating the
// big/little performance ratio at run time (§5.1.2: "In our future work, we
// plan for HARS to update the performance ratio in real time"). The
// evaluation shows why: HARS assumes r0 = 1.5 everywhere, but blackscholes
// runs equally fast on both clusters (r = 1.0), so the estimator's rate
// predictions are systematically wrong and HARS settles in a suboptimal
// state that the static-optimal sweep avoids.

// ratioSample aggregates the observations made under one distinct
// (state, assignment) operating point: the mean heartbeat rate measured
// there. Keeping the applied assignment (rather than re-deriving the
// r-optimal one) is what makes the ratio identifiable: the assignment was
// chosen under the *old* ratio estimate and may be suboptimal for the true
// one. Aggregating per operating point keeps the sample window diverse no
// matter how long the runtime dwells in one state.
type ratioSample struct {
	st      hmp.State
	asg     Assignment
	sumRate float64
	n       int
}

func (s *ratioSample) rate() float64 { return s.sumRate / float64(s.n) }

// RatioLearner estimates an application's true big/little speed ratio from
// the (state, heartbeat-rate) pairs the runtime observes while adapting. It
// grid-searches the ratio that makes the Table 3.1 throughput model best
// explain the observed relative rates between visited states.
type RatioLearner struct {
	// Grid bounds and step of the candidate ratio sweep. Zero values select
	// 0.5 .. 3.0 in steps of 0.05.
	Min, Max, Step float64
	// Window is the number of recent samples retained (default 24).
	Window int

	plat    *hmp.Platform
	threads int
	samples []ratioSample
	ratio   float64
}

// NewRatioLearner creates a learner for an application with the given
// thread count, starting from the platform's nominal ratio.
func NewRatioLearner(plat *hmp.Platform, threads int) *RatioLearner {
	return &RatioLearner{plat: plat, threads: threads, ratio: plat.R0()}
}

func (rl *RatioLearner) bounds() (lo, hi, step float64, window int) {
	lo, hi, step, window = rl.Min, rl.Max, rl.Step, rl.Window
	if lo <= 0 {
		lo = 0.5
	}
	if hi <= lo {
		hi = 3.0
	}
	if step <= 0 {
		step = 0.05
	}
	if window <= 0 {
		window = 24
	}
	return lo, hi, step, window
}

// Ratio returns the current estimate of the big/little speed ratio.
func (rl *RatioLearner) Ratio() float64 { return rl.ratio }

// Samples returns how many observations the learner currently holds.
func (rl *RatioLearner) Samples() int { return len(rl.samples) }

// Observe feeds one observation — the state and thread assignment in force
// plus the measured rate — and refits the ratio. Junk rates are ignored.
// Repeated observations at the same operating point are averaged into one
// sample, so the window holds up to Window *distinct* operating points.
func (rl *RatioLearner) Observe(st hmp.State, asg Assignment, rate float64) {
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return
	}
	if asg.TB+asg.TL == 0 {
		return
	}
	_, _, _, window := rl.bounds()
	for i := range rl.samples {
		if rl.samples[i].st == st && rl.samples[i].asg == asg {
			rl.samples[i].sumRate += rate
			rl.samples[i].n++
			rl.refit()
			return
		}
	}
	rl.samples = append(rl.samples, ratioSample{st: st, asg: asg, sumRate: rate, n: 1})
	if len(rl.samples) > window {
		rl.samples = rl.samples[len(rl.samples)-window:]
	}
	rl.refit()
}

// throughputAt evaluates the completion-time model for the assignment that
// was actually applied, under a hypothesized big/little ratio r (little IPC
// normalized to 1).
func (rl *RatioLearner) throughputAt(s ratioSample, r float64) float64 {
	sb := r * rl.plat.FreqScale(hmp.Big, s.st.BigLevel)
	sl := rl.plat.FreqScale(hmp.Little, s.st.LittleLevel)
	_, _, tf := s.asg.CompletionTime(rl.threads, sb, sl)
	if tf <= 0 || math.IsInf(tf, 1) {
		return 0
	}
	return 1 / tf
}

// refit grid-searches the ratio minimizing the squared error of predicted
// log-rate offsets: under the right r, rate_i / throughput_r(st_i) is the
// same constant (the workload) for every sample.
func (rl *RatioLearner) refit() {
	// Two diverse operating points are the identifiability minimum (two
	// equations for the two unknowns: ratio and per-beat workload).
	if len(rl.samples) < 2 || !rl.samplesDiverse() {
		return
	}
	lo, hi, step, _ := rl.bounds()
	bestR, bestErr := rl.ratio, math.Inf(1)
	for r := lo; r <= hi+1e-9; r += step {
		var logs []float64
		ok := true
		for _, s := range rl.samples {
			tp := rl.throughputAt(s, r)
			if tp <= 0 {
				ok = false
				break
			}
			logs = append(logs, math.Log(s.rate()/tp))
		}
		if !ok {
			continue
		}
		mean := 0.0
		for _, l := range logs {
			mean += l
		}
		mean /= float64(len(logs))
		sse := 0.0
		for _, l := range logs {
			d := l - mean
			sse += d * d
		}
		if sse < bestErr {
			bestErr = sse
			bestR = r
		}
	}
	rl.ratio = bestR
}

// samplesDiverse reports whether the retained samples span assignments with
// different big-cluster involvement; identical placements can't identify r.
func (rl *RatioLearner) samplesDiverse() bool {
	firstShare := bigShare(rl.samples[0])
	for _, s := range rl.samples[1:] {
		if math.Abs(bigShare(s)-firstShare) > 0.05 {
			return true
		}
	}
	return false
}

// bigShare is a scalar proxy for how big-heavy an observation is.
func bigShare(s ratioSample) float64 {
	total := s.asg.TB + s.asg.TL
	if total == 0 {
		return 0
	}
	return float64(s.asg.TB*(s.st.BigLevel+1)) / float64(total)
}
