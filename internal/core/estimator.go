package core

import (
	"math"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
)

// PerfEval is the performance estimator's evaluation of one system state.
type PerfEval struct {
	Assignment
	TB, TL     float64 // t_B and t_L (time to finish one unit of total work)
	TF         float64 // t_f = max(t_B, t_L)
	Throughput float64 // 1/t_f, in units of work per second (relative scale)
	UB, UL     float64 // estimated utilization of the used cores per cluster
}

// PerfEstimator is HARS's performance estimator (§3.1.1): performance is
// assumed proportional to core count and frequency level with the
// platform's nominal big/little ratio (r0 scaled by the cluster
// frequencies), and the thread assignment of Table 3.1 is assumed.
type PerfEstimator struct {
	Plat *hmp.Platform
	T    int // total threads of the target application

	// R0 overrides the platform's nominal big/little performance ratio
	// when positive. The online ratio learner (ratio.go) installs its
	// estimate here; zero keeps the paper's fixed r0.
	R0 float64
}

// Ratio returns the big/little performance ratio in effect.
func (e *PerfEstimator) Ratio() float64 {
	if e.R0 > 0 {
		return e.R0
	}
	return e.Plat.R0()
}

// Evaluate computes the Table 3.1 assignment and timing for a state.
func (e *PerfEstimator) Evaluate(st hmp.State) PerfEval {
	lilIPC := e.Plat.Clusters[hmp.Little].IPC
	sb := e.Ratio() * lilIPC * e.Plat.FreqScale(hmp.Big, st.BigLevel)
	sl := lilIPC * e.Plat.FreqScale(hmp.Little, st.LittleLevel)
	r := sb / sl
	a := Assign(e.T, st.BigCores, st.LittleCores, r)
	tb, tl, tf := a.CompletionTime(e.T, sb, sl)
	ev := PerfEval{Assignment: a, TB: tb, TL: tl, TF: tf}
	if tf > 0 && !math.IsInf(tf, 1) {
		ev.Throughput = 1 / tf
		ev.UB = tb / tf
		ev.UL = tl / tf
	}
	return ev
}

// EstimateRate predicts the heartbeat rate in a candidate state given the
// observed rate in the current state, using the paper's simple workload
// model: the amount of work per heartbeat stays what it was in the last
// period, so the rate scales with estimated throughput.
func (e *PerfEstimator) EstimateRate(cur hmp.State, curRate float64, cand hmp.State) float64 {
	curEv := e.Evaluate(cur)
	candEv := e.Evaluate(cand)
	if curEv.Throughput <= 0 {
		return 0
	}
	return curRate * candEv.Throughput / curEv.Throughput
}

// PowerEstimator is HARS's power estimator (§3.1.2): the fitted per-cluster
// linear models applied to the estimated used cores and utilizations.
type PowerEstimator struct {
	Model *power.LinearModel
}

// Estimate returns the estimated watts for a state whose performance
// evaluation is ev.
func (pe *PowerEstimator) Estimate(st hmp.State, ev PerfEval) float64 {
	return pe.Model.Estimate(hmp.Big, st.BigLevel, ev.CBU, ev.UB) +
		pe.Model.Estimate(hmp.Little, st.LittleLevel, ev.CLU, ev.UL)
}

// Estimators bundles the two estimators the runtime manager consults.
type Estimators struct {
	Perf  *PerfEstimator
	Power *PowerEstimator
}

// NewEstimators builds estimators for an application with T threads on the
// platform, using the fitted power model.
func NewEstimators(plat *hmp.Platform, threads int, model *power.LinearModel) Estimators {
	return Estimators{
		Perf:  &PerfEstimator{Plat: plat, T: threads},
		Power: &PowerEstimator{Model: model},
	}
}

// Score evaluates one candidate state: estimated rate, estimated power, and
// normalized performance per watt.
func (e Estimators) Score(cur hmp.State, curRate float64, cand hmp.State, tgt heartbeat.Target) (rate, watts, pp float64) {
	rate = e.Perf.EstimateRate(cur, curRate, cand)
	ev := e.Perf.Evaluate(cand)
	watts = e.Power.Estimate(cand, ev)
	if watts <= 0 {
		watts = 1e-9
	}
	pp = heartbeat.NormalizedPerf(tgt, rate) / watts
	return rate, watts, pp
}
