package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAssignTableRows(t *testing.T) {
	// Explicit rows of Table 3.1 with CB = CL = 4 and r = 1.5 (r·CB = 6).
	cases := []struct {
		T    int
		want Assignment
	}{
		{1, Assignment{TB: 1, CBU: 1}},                  // 0 < T ≤ CB
		{3, Assignment{TB: 3, CBU: 3}},                  // 0 < T ≤ CB
		{4, Assignment{TB: 4, CBU: 4}},                  // boundary T = CB
		{5, Assignment{TB: 5, CBU: 4}},                  // CB < T ≤ r·CB
		{6, Assignment{TB: 6, CBU: 4}},                  // boundary T = r·CB
		{8, Assignment{TB: 6, TL: 2, CBU: 4, CLU: 2}},   // r·CB < T ≤ r·CB + CL
		{10, Assignment{TB: 6, TL: 4, CBU: 4, CLU: 4}},  // boundary T = r·CB + CL
		{12, Assignment{TB: 8, TL: 4, CBU: 4, CLU: 4}},  // r·CB + CL < T (TB = ⌈6/10·12⌉)
		{20, Assignment{TB: 12, TL: 8, CBU: 4, CLU: 4}}, // ⌈6/10·20⌉ = 12
	}
	for _, c := range cases {
		got := Assign(c.T, 4, 4, 1.5)
		if got != c.want {
			t.Errorf("Assign(T=%d) = %+v, want %+v", c.T, got, c.want)
		}
	}
}

func TestAssignDegenerate(t *testing.T) {
	if got := Assign(0, 4, 4, 1.5); got != (Assignment{}) {
		t.Errorf("T=0: %+v", got)
	}
	if got := Assign(8, 0, 0, 1.5); got != (Assignment{}) {
		t.Errorf("no cores: %+v", got)
	}
	if got := Assign(8, 0, 4, 1.5); got != (Assignment{TL: 8, CLU: 4}) {
		t.Errorf("big-less: %+v", got)
	}
	if got := Assign(2, 0, 4, 1.5); got != (Assignment{TL: 2, CLU: 2}) {
		t.Errorf("big-less small T: %+v", got)
	}
	if got := Assign(8, 4, 0, 1.5); got != (Assignment{TB: 8, CBU: 4}) {
		t.Errorf("little-less: %+v", got)
	}
	if got := Assign(-1, 4, 4, 1.5); got != (Assignment{}) {
		t.Errorf("negative T: %+v", got)
	}
}

func TestAssignRLessThanOne(t *testing.T) {
	// r < 1: little cores are the faster ones; the derivation is symmetric,
	// so the little cluster fills first.
	got := Assign(8, 4, 4, 1/1.5)
	want := Assign(8, 4, 4, 1.5)
	if got.TB != want.TL || got.TL != want.TB || got.CBU != want.CLU || got.CLU != want.CBU {
		t.Errorf("r<1 not symmetric: got %+v, mirror of %+v", got, want)
	}
}

// TestAssignInvariants is a property test: threads are conserved, used cores
// never exceed allocations or thread counts.
func TestAssignInvariants(t *testing.T) {
	f := func(t8, cb8, cl8 uint8, r16 uint16) bool {
		T := int(t8%64) + 1
		CB := int(cb8 % 5)
		CL := int(cl8 % 5)
		if CB+CL == 0 {
			CB = 1
		}
		r := 0.25 + float64(r16%800)/100 // 0.25 .. 8.24
		a := Assign(T, CB, CL, r)
		if a.TB+a.TL != T {
			return false
		}
		if a.TB < 0 || a.TL < 0 {
			return false
		}
		if a.CBU > CB || a.CLU > CL {
			return false
		}
		if a.CBU > a.TB || a.CLU > a.TL {
			return false
		}
		if a.TB > 0 && a.CBU == 0 {
			return false
		}
		if a.TL > 0 && a.CLU == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceTF finds the true optimal completion time over all TB splits.
func bruteForceTF(T, CB, CL int, sb, sl float64) float64 {
	best := math.Inf(1)
	for tb := 0; tb <= T; tb++ {
		tl := T - tb
		if (tb > 0 && CB == 0) || (tl > 0 && CL == 0) {
			continue
		}
		a := Assignment{TB: tb, TL: tl, CBU: minInt(tb, CB), CLU: minInt(tl, CL)}
		_, _, tf := a.CompletionTime(T, sb, sl)
		if tf < best {
			best = tf
		}
	}
	return best
}

// TestAssignNearOptimal checks Table 3.1 against brute force. The table's
// ceil in the last row follows the continuous balance point and can be one
// thread off the discrete optimum; with one-core clusters a single thread is
// a large relative step, so the admissible gap is one thread's worth of work
// on the smallest cluster.
func TestAssignNearOptimal(t *testing.T) {
	f := func(t8, cb8, cl8, r8 uint8) bool {
		T := int(t8%40) + 1
		CB := int(cb8%4) + 1
		CL := int(cl8%4) + 1
		r := 1.0 + float64(r8%20)/10 // 1.0 .. 2.9
		sl := 1.0
		sb := r * sl
		a := Assign(T, CB, CL, r)
		_, _, tf := a.CompletionTime(T, sb, sl)
		best := bruteForceTF(T, CB, CL, sb, sl)
		w := 1.0 / float64(T)
		slack := w / (float64(CB) * sb) // one misplaced thread on the big cluster
		return tf <= best+slack+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignExactlyOptimalInTableRegime(t *testing.T) {
	// In rows 1–3 (T ≤ r·CB + CL) the table is exactly optimal.
	f := func(t8, cb8, cl8, r8 uint8) bool {
		CB := int(cb8%4) + 1
		CL := int(cl8%4) + 1
		r := 1.0 + float64(r8%20)/10
		maxT := int(r*float64(CB)) + CL
		T := int(t8)%maxT + 1
		sl := 1.0
		sb := r * sl
		a := Assign(T, CB, CL, r)
		_, _, tf := a.CompletionTime(T, sb, sl)
		best := bruteForceTF(T, CB, CL, sb, sl)
		return tf <= best*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionTime(t *testing.T) {
	// 6 threads on 4 big cores (speed 3) + 2 on 2 little (speed 1.625):
	// w = 1/8, tB = 6/8/(4·3) = 0.0625, tL = (1/8)/1.625 ≈ 0.0769.
	a := Assignment{TB: 6, TL: 2, CBU: 4, CLU: 2}
	tb, tl, tf := a.CompletionTime(8, 3, 1.625)
	if math.Abs(tb-0.0625) > 1e-9 {
		t.Errorf("tB = %v", tb)
	}
	if math.Abs(tl-1.0/8/1.625) > 1e-9 {
		t.Errorf("tL = %v", tl)
	}
	if tf != tl {
		t.Errorf("tF = %v, want tL", tf)
	}
	// Degenerates.
	if _, _, tf := (Assignment{}).CompletionTime(8, 3, 1); !math.IsInf(tf, 1) {
		t.Errorf("empty assignment tF = %v, want +Inf", tf)
	}
	if _, _, tf := (Assignment{TB: 1, CBU: 1}).CompletionTime(0, 3, 1); !math.IsInf(tf, 1) {
		t.Errorf("T=0 tF = %v, want +Inf", tf)
	}
}
