package heartbeat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBeatRates(t *testing.T) {
	m := NewMonitor("app", 4)
	// One beat every 0.5 s → 2 beats/s.
	for i := 0; i < 10; i++ {
		m.Beat(Time(i) * Second / 2)
	}
	r, ok := m.Latest()
	if !ok {
		t.Fatal("no latest record")
	}
	if r.Index != 9 {
		t.Errorf("Index = %d, want 9", r.Index)
	}
	if math.Abs(r.InstantRate-2) > 1e-9 {
		t.Errorf("InstantRate = %v, want 2", r.InstantRate)
	}
	if math.Abs(r.WindowRate-2) > 1e-9 {
		t.Errorf("WindowRate = %v, want 2", r.WindowRate)
	}
	if math.Abs(r.GlobalRate-2) > 1e-9 {
		t.Errorf("GlobalRate = %v, want 2", r.GlobalRate)
	}
}

func TestWindowRateTracksRecentRate(t *testing.T) {
	m := NewMonitor("app", 4)
	now := Time(0)
	// Slow phase: 1 beat/s.
	for i := 0; i < 8; i++ {
		m.Beat(now)
		now += Second
	}
	// Fast phase: 10 beats/s.
	for i := 0; i < 12; i++ {
		m.Beat(now)
		now += Second / 10
	}
	r, _ := m.Latest()
	if math.Abs(r.WindowRate-10) > 1e-6 {
		t.Errorf("WindowRate = %v, want 10 (window must forget slow phase)", r.WindowRate)
	}
	if r.GlobalRate >= 10 {
		t.Errorf("GlobalRate = %v, should be dragged down by slow phase", r.GlobalRate)
	}
}

func TestFirstBeatHasZeroRates(t *testing.T) {
	m := NewMonitor("app", 4)
	r := m.Beat(123)
	if r.Index != 0 || r.InstantRate != 0 || r.WindowRate != 0 || r.GlobalRate != 0 {
		t.Errorf("first beat record = %+v, want zero rates", r)
	}
}

func TestRateOver(t *testing.T) {
	m := NewMonitor("app", 2)
	for i := 0; i < 10; i++ {
		m.Beat(Time(i) * Second) // 1 beat/s at t = 0..9 s
	}
	if got := m.RateOver(0, 10*Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("RateOver(0,10s) = %v, want 1", got)
	}
	if got := m.RateOver(5*Second, 10*Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("RateOver(5s,10s) = %v, want 1", got)
	}
	if got := m.RateOver(100*Second, 200*Second); got != 0 {
		t.Errorf("RateOver with no beats = %v, want 0", got)
	}
	if got := m.RateOver(5*Second, 5*Second); got != 0 {
		t.Errorf("RateOver of empty span = %v, want 0", got)
	}
}

func TestAccessors(t *testing.T) {
	m := NewMonitor("bench", 1) // window raised to 2
	if m.Window() != 2 {
		t.Errorf("Window = %d, want 2", m.Window())
	}
	if m.Name() != "bench" {
		t.Errorf("Name = %q", m.Name())
	}
	if _, ok := m.Latest(); ok {
		t.Error("Latest on empty monitor should be !ok")
	}
	if _, ok := m.At(0); ok {
		t.Error("At(0) on empty monitor should be !ok")
	}
	m.Beat(0)
	m.Beat(Second)
	if m.Count() != 2 {
		t.Errorf("Count = %d, want 2", m.Count())
	}
	if r, ok := m.At(1); !ok || r.Index != 1 {
		t.Errorf("At(1) = %+v, %v", r, ok)
	}
	if _, ok := m.At(-1); ok {
		t.Error("At(-1) should be !ok")
	}
	recs := m.Records()
	if len(recs) != 2 {
		t.Errorf("Records len = %d, want 2", len(recs))
	}
	recs[0].Index = 99
	if r, _ := m.At(0); r.Index == 99 {
		t.Error("Records must return a copy")
	}
}

func TestTarget(t *testing.T) {
	tg := TargetAround(10, 0.5, 0.05)
	if math.Abs(tg.Avg-5) > 1e-9 || math.Abs(tg.Min-4.5) > 1e-9 || math.Abs(tg.Max-5.5) > 1e-9 {
		t.Fatalf("TargetAround = %+v", tg)
	}
	if math.Abs(tg.Band()-0.5) > 1e-9 {
		t.Errorf("Band = %v, want 0.5", tg.Band())
	}
	if !tg.Valid() {
		t.Error("target should be valid")
	}
	if (Target{Min: 2, Avg: 1, Max: 3}).Valid() {
		t.Error("inverted target should be invalid")
	}
	if (Target{}).Valid() {
		t.Error("zero target should be invalid")
	}
}

func TestSetTarget(t *testing.T) {
	m := NewMonitor("a", 4)
	tg := Target{Min: 1, Avg: 2, Max: 3}
	m.SetTarget(tg)
	if m.Target() != tg {
		t.Error("SetTarget/Target round trip failed")
	}
}

func TestNormalizedPerf(t *testing.T) {
	tg := Target{Min: 4.5, Avg: 5, Max: 5.5}
	if got := NormalizedPerf(tg, 5); got != 1 {
		t.Errorf("at target: %v, want 1", got)
	}
	if got := NormalizedPerf(tg, 10); got != 1 {
		t.Errorf("overperformance must not earn credit: %v", got)
	}
	if got := NormalizedPerf(tg, 2.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half target: %v, want 0.5", got)
	}
	if got := NormalizedPerf(Target{}, 3); got != 0 {
		t.Errorf("zero target: %v, want 0", got)
	}
}

func TestClassifyAndOutsideBand(t *testing.T) {
	tg := Target{Min: 4.5, Avg: 5, Max: 5.5}
	cases := []struct {
		rate float64
		want Satisfaction
		out  bool
	}{
		{4.0, Underperf, true},
		{4.5, Achieve, false},
		{5.0, Achieve, false},
		{5.5, Achieve, false},
		{6.0, Overperf, true},
		{5.49, Achieve, false},
	}
	for _, c := range cases {
		if got := Classify(tg, c.rate); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.rate, got, c.want)
		}
		if got := OutsideBand(tg, c.rate); got != c.out {
			t.Errorf("OutsideBand(%v) = %v, want %v", c.rate, got, c.out)
		}
	}
}

func TestSatisfactionString(t *testing.T) {
	if Underperf.String() != "Underperf" || Achieve.String() != "Achieve" || Overperf.String() != "Overperf" {
		t.Error("Satisfaction strings wrong")
	}
	if Satisfaction(42).String() == "" {
		t.Error("unknown satisfaction should render")
	}
}

// TestRatesNonNegativeAndMonotoneIndex is a property test over random beat
// schedules: indices are sequential and rates non-negative.
func TestRatesNonNegativeAndMonotoneIndex(t *testing.T) {
	f := func(gaps []uint16) bool {
		m := NewMonitor("p", 3)
		now := Time(0)
		for i, g := range gaps {
			now += Time(g) + 1 // strictly increasing time
			r := m.Beat(now)
			if r.Index != int64(i) {
				return false
			}
			if r.InstantRate < 0 || r.WindowRate < 0 || r.GlobalRate < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimultaneousBeatsYieldInfiniteRate(t *testing.T) {
	m := NewMonitor("p", 2)
	m.Beat(5)
	r := m.Beat(5)
	if !math.IsInf(r.InstantRate, 1) {
		t.Errorf("InstantRate for zero gap = %v, want +Inf", r.InstantRate)
	}
}
