package sim

import "repro/internal/hmp"

// Ticker is the single-clock advance interface of a multi-machine
// simulation: one call advances one tick. Machine and Node both implement
// it; a fleet layer advances many Tickers in lockstep so every machine of a
// multi-node run shares one deterministic clock.
type Ticker interface {
	// Step advances the simulation by one tick.
	Step()
	// Now returns the current simulated time.
	Now() Time
	// TickLen returns the tick length. Tickers sharing a clock must agree
	// on it.
	TickLen() Time
}

// Node is one machine of a multi-machine simulation: a Machine plus a fleet
// identity. The machine's power model, thermal governor, and runtime
// manager all hang off the embedded Machine (Config.Power and AddDaemon),
// so a Node is the complete bundle a fleet scheduler reasons about — it
// admits applications to a Node, migrates them between Nodes, and rolls
// their energy and heartbeat statistics up per Node.
//
// A Node adds no behaviour of its own: stepping a Node is exactly stepping
// its machine, so single-node simulations driven through the Node
// abstraction are bit-for-bit those driven on the bare machine.
type Node struct {
	// ID is the node's index within its fleet (0 for a standalone node).
	ID int
	// Name is the node's fleet-unique name, stamped onto trace events.
	Name string

	*Machine
}

// NewNode creates a named machine over its own platform description. Every
// event the machine emits is stamped with the node name, so the
// interleaved streams of a fleet — even through one shared Tracer — stay
// attributable.
func NewNode(id int, name string, plat *hmp.Platform, cfg Config) *Node {
	n := &Node{ID: id, Name: name, Machine: New(plat, cfg)}
	n.Machine.nodeName = name
	return n
}

// SetTracer attaches a tracer to the node's machine. Machine-originated
// events carry the node name regardless; the tracer-level tag is set only
// when the tracer is not shared with another node, as a fallback for
// daemon-recorded events that do not stamp a node themselves.
func (n *Node) SetTracer(tr *Tracer) {
	if tr != nil {
		switch tr.Node {
		case "", n.Name:
			tr.Node = n.Name
		default:
			// Shared across nodes: a single tracer-level tag would
			// mislabel; rely on per-event stamps instead.
			tr.Node = ""
		}
	}
	n.Machine.SetTracer(tr)
}
