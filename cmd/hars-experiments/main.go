// Command hars-experiments regenerates the tables and figures of the
// paper's evaluation chapter on the simulated platform.
//
// Usage:
//
//	hars-experiments [-exp all|fig5.1|fig5.2|fig5.3|fig5.4|fig5.5|fig5.6|fig5.7|table3.1|table4.3|power|ablation|extended|scenarios|thermal|fleet|slo|faults|decisions]
//	                 [-scale quick|full] [-parallel N]
//
// With -parallel N the independent experiments run through an N-wide worker
// pool (N = 0 means one worker per CPU); every experiment owns its simulated
// machines, so the reports are identical to a serial run — only the wall
// clock changes. Reports are printed in registry order as they complete.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (all, fig5.1, fig5.2, fig5.3, fig5.4, fig5.5, fig5.6, fig5.7, table3.1, table4.3, power, ablation, extended, scenarios, thermal, fleet, slo, faults, decisions)")
	scale := flag.String("scale", "full", "experiment scale: quick or full")
	parallel := flag.Int("parallel", 1, "experiment-level worker pool width (0 = one per CPU, 1 = serial)")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick()
	case "full":
		sc = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	drivers, err := experiments.SelectDrivers(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	start := time.Now()
	fmt.Printf("building environment (power profiling & model fit, scale=%s)...\n", *scale)
	env, err := experiments.NewEnv(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	experiments.RunDrivers(env, drivers, *parallel, func(o experiments.Outcome) {
		fmt.Println()
		fmt.Print(o.Report.String())
		fmt.Printf("(%s regenerated in %.1fs)\n", o.Name, o.Elapsed.Seconds())
	})
	fmt.Printf("\ntotal wall time: %.1fs\n", time.Since(start).Seconds())
}
