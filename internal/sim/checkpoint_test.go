package sim_test

import (
	"testing"

	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newTestMachine() *sim.Machine {
	plat := hmp.Default()
	return sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
}

// TestCheckpointCostDelay pins the cost model arithmetic.
func TestCheckpointCostDelay(t *testing.T) {
	if d := (sim.CheckpointCost{}).Delay(); d != 0 {
		t.Fatalf("zero cost delays %d", d)
	}
	c := sim.CheckpointCost{Freeze: 500, PerMB: 200, SizeMB: 8}
	if d := c.Delay(); d != 500+1600 {
		t.Fatalf("delay = %d, want 2100", d)
	}
	if d := (sim.CheckpointCost{Freeze: 300, PerMB: 200}).Delay(); d != 300 {
		t.Fatalf("sizeless transfer charged: %d", d)
	}
}

// TestCheckpointRestoreInvisible pins the work-conserving contract at its
// strongest, on the data-parallel workload whose placement the balancer
// reconstructs identically: freezing the application mid-run and thawing it
// on an identical idle machine at the same clock, with zero checkpoint
// cost, is invisible — beats and work continue bit-for-bit as in an
// uninterrupted run. The pipeline workload (FE) cannot be bit-invisible —
// the move discards thread placement, and its heavy block/unblock churn is
// placement-sensitive — so it asserts exact continuity at the cut plus
// progress after it.
func TestCheckpointRestoreInvisible(t *testing.T) {
	for _, short := range []string{"SW", "FE"} {
		b, _ := workload.ByShort(short)

		ref := newTestMachine()
		rp := ref.Spawn("app", b.New(8), 10)
		ref.Run(4 * sim.Second)

		m1 := newTestMachine()
		p1 := m1.Spawn("app", b.New(8), 10)
		m1.Run(2 * sim.Second)
		preBeats, preWork := p1.HB.Count(), p1.WorkDone()
		snap := m1.Checkpoint(p1)
		if !p1.Exited() {
			t.Fatalf("%s: source incarnation still alive after checkpoint", short)
		}
		if snap.Beats() != preBeats || snap.WorkDone() != preWork {
			t.Fatalf("%s: snapshot stats %d/%v, want %d/%v",
				short, snap.Beats(), snap.WorkDone(), preBeats, preWork)
		}
		m2 := newTestMachine()
		m2.RunUntil(2 * sim.Second) // idle, to align the shared clock
		p2 := m2.Restore(snap, 0)
		if p2.HB != p1.HB {
			t.Fatalf("%s: heartbeat monitor was not moved", short)
		}
		if got := p2.WorkDone(); got != preWork {
			t.Fatalf("%s: work reset across the move: %v != %v", short, got, preWork)
		}
		m2.RunUntil(4 * sim.Second)

		if p2.HB.Count() <= preBeats || p2.WorkDone() <= preWork {
			t.Errorf("%s: no progress after restore", short)
		}
		if short != "SW" {
			continue
		}
		if got, want := p2.HB.Count(), rp.HB.Count(); got != want {
			t.Errorf("%s: beats after move = %d, uninterrupted = %d", short, got, want)
		}
		if got, want := p2.WorkDone(), rp.WorkDone(); got != want {
			t.Errorf("%s: work after move = %v, uninterrupted = %v", short, got, want)
		}
	}
}

// TestCheckpointDelayFreezes pins the cost charge: a restored application
// makes no progress before resumeAt and continues afterwards.
func TestCheckpointDelayFreezes(t *testing.T) {
	b, _ := workload.ByShort("SW")
	m1 := newTestMachine()
	p1 := m1.Spawn("app", b.New(8), 10)
	m1.Run(2 * sim.Second)
	snap := m1.Checkpoint(p1)
	preWork := snap.WorkDone()

	m2 := newTestMachine()
	m2.RunUntil(2 * sim.Second)
	resume := m2.Now() + 500*sim.Millisecond
	p2 := m2.Restore(snap, resume)
	m2.RunUntil(resume)
	if w := p2.WorkDone(); w != preWork {
		t.Fatalf("frozen app progressed: %v -> %v", preWork, w)
	}
	m2.RunUntil(resume + sim.Second)
	if w := p2.WorkDone(); w <= preWork {
		t.Fatal("app never thawed")
	}
}

// TestCheckpointMovesWakeups pins pending-wakeup transfer: an application
// checkpointed inside its heartbeat-less startup phase (timer-driven) still
// starts on the destination, and the dead source incarnation never runs.
func TestCheckpointMovesWakeups(t *testing.T) {
	b, _ := workload.ByShort("BL") // blackscholes: timer-delayed start
	m1 := newTestMachine()
	p1 := m1.Spawn("app", b.New(8), 10)
	m1.Run(500 * sim.Millisecond) // still inside the start delay
	if p1.WorkDone() != 0 {
		t.Fatal("test premise broken: BL started before its delay")
	}
	snap := m1.Checkpoint(p1)
	if len(snap.Wakeups) == 0 {
		t.Fatal("start-delay wakeups not captured")
	}
	m2 := newTestMachine()
	m2.RunUntil(500 * sim.Millisecond)
	p2 := m2.Restore(snap, 0)
	m2.RunUntil(10 * sim.Second)
	m1.RunUntil(10 * sim.Second)
	if p2.HB.Count() == 0 {
		t.Fatal("restored app never started: wakeups lost in the move")
	}
	if p1.WorkDone() != 0 {
		t.Fatal("dead source incarnation executed after the move")
	}
}

// TestCheckpointTraceEvents pins the migrate_out/migrate_in event pair.
func TestCheckpointTraceEvents(t *testing.T) {
	b, _ := workload.ByShort("SW")
	m1 := newTestMachine()
	tr1 := &sim.Tracer{}
	m1.SetTracer(tr1)
	p1 := m1.Spawn("app", b.New(4), 10)
	m1.Run(100 * sim.Millisecond)
	snap := m1.Checkpoint(p1)

	m2 := newTestMachine()
	tr2 := &sim.Tracer{}
	m2.SetTracer(tr2)
	m2.RunUntil(100 * sim.Millisecond)
	resume := m2.Now() + 42*sim.Millisecond
	m2.Restore(snap, resume)

	var out, in *sim.Event
	for i := range tr1.Events() {
		if tr1.Events()[i].Kind == sim.EvMigrateOut {
			out = &tr1.Events()[i]
		}
	}
	for i := range tr2.Events() {
		if tr2.Events()[i].Kind == sim.EvMigrateIn {
			in = &tr2.Events()[i]
		}
	}
	if out == nil || out.Proc != "app" {
		t.Fatalf("no migrate_out event: %+v", out)
	}
	if in == nil || in.Proc != "app" || in.Until != resume {
		t.Fatalf("bad migrate_in event: %+v", in)
	}
}
