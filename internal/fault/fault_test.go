package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestExpandRandomDeterministic(t *testing.T) {
	r := &RandomCrashes{RatePerMin: 30, DownMS: 1500}
	a := r.ExpandRandom(42, 60_000, 4)
	b := r.ExpandRandom(42, 60_000, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed expanded differently:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatalf("30 crashes/min over 60 s expanded to nothing")
	}
	c := r.ExpandRandom(43, 60_000, 4)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds expanded identically: %v", a)
	}
	for i, ec := range a {
		if ec.AtMS < 0 || ec.AtMS >= 60_000 {
			t.Errorf("crash %d at %d ms outside the run", i, ec.AtMS)
		}
		if ec.Node < 0 || ec.Node >= 4 {
			t.Errorf("crash %d hit node %d outside the fleet", i, ec.Node)
		}
		if ec.DownMS != 1500 {
			t.Errorf("crash %d down %d ms, want 1500", i, ec.DownMS)
		}
		if i > 0 && ec.AtMS < a[i-1].AtMS {
			t.Errorf("crash %d at %d ms before its predecessor at %d ms", i, ec.AtMS, a[i-1].AtMS)
		}
	}
}

func TestExpandRandomCaps(t *testing.T) {
	r := &RandomCrashes{RatePerMin: 100_000}
	got := r.ExpandRandom(1, 60_000, 2)
	if len(got) != DefaultRandomMaxCrashes {
		t.Fatalf("default cap: got %d crashes, want %d", len(got), DefaultRandomMaxCrashes)
	}
	for _, ec := range got {
		if ec.DownMS != DefaultRandomDownMS {
			t.Fatalf("zero down_ms resolved to %d, want default %d", ec.DownMS, DefaultRandomDownMS)
		}
	}
	r.MaxCrashes = 3
	if got := r.ExpandRandom(1, 60_000, 2); len(got) != 3 {
		t.Fatalf("explicit cap: got %d crashes, want 3", len(got))
	}
}

func TestExpandRandomEmpty(t *testing.T) {
	var nilr *RandomCrashes
	if got := nilr.ExpandRandom(1, 1000, 3); got != nil {
		t.Fatalf("nil receiver expanded %v", got)
	}
	if got := (&RandomCrashes{}).ExpandRandom(1, 1000, 3); got != nil {
		t.Fatalf("zero rate expanded %v", got)
	}
	if got := (&RandomCrashes{RatePerMin: 10}).ExpandRandom(1, 1000, 0); got != nil {
		t.Fatalf("empty fleet expanded %v", got)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	c := Config{RetryBase: 50, RetryMax: 400, RetryJitter: 0, Seed: 7}
	b := NewBackoff(c)
	want := []sim.Time{50, 100, 200, 400, 400, 400}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Fatalf("attempt %d: delay %d, want %d", i+1, got, w)
		}
	}
	if got := b.Delay(0); got != 50 {
		t.Fatalf("attempt 0 clamps to 1: delay %d, want 50", got)
	}
}

func TestBackoffJitterSeededAndBounded(t *testing.T) {
	c := Config{RetryBase: 50, RetryMax: 400, RetryJitter: 25, Seed: 7}
	a, b := NewBackoff(c), NewBackoff(c)
	for i := 1; i <= 10; i++ {
		da, db := a.Delay(i), b.Delay(i)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %d vs %d", i, da, db)
		}
		base := sim.Time(50)
		for j := 1; j < i && base < 400; j++ {
			base *= 2
		}
		if base > 400 {
			base = 400
		}
		if da < base || da > base+25 {
			t.Fatalf("attempt %d: delay %d outside [%d, %d]", i, da, base, base+25)
		}
	}
}

func TestDetectorDeclareAndRecover(t *testing.T) {
	d := NewDetector(2, 300, 0)
	// Silence within the timeout is not a failure.
	if failed, _ := d.Observe(0, false, 300); failed {
		t.Fatalf("declared down at exactly the timeout")
	}
	if d.Down(0) {
		t.Fatalf("node 0 down before the timeout elapsed")
	}
	// One observation past the timeout declares the node down, once.
	failed, recovered := d.Observe(0, false, 301)
	if !failed || recovered {
		t.Fatalf("past the timeout: failed=%v recovered=%v, want true/false", failed, recovered)
	}
	if !d.Down(0) || d.Down(1) {
		t.Fatalf("down state: node0=%v node1=%v, want true/false", d.Down(0), d.Down(1))
	}
	if failed, _ := d.Observe(0, false, 500); failed {
		t.Fatalf("re-declared an already-down node")
	}
	// A beat recovers it immediately and resets the silence clock.
	failed, recovered = d.Observe(0, true, 600)
	if failed || !recovered {
		t.Fatalf("on beat: failed=%v recovered=%v, want false/true", failed, recovered)
	}
	if d.Down(0) {
		t.Fatalf("node 0 still down after beating")
	}
	if failed, _ := d.Observe(0, false, 900); failed {
		t.Fatalf("silence clock not reset by the beat")
	}
	if failed, _ := d.Observe(0, false, 901); !failed {
		t.Fatalf("node not re-declared after a fresh timeout")
	}
}

func TestCoinZeroProbConsumesNoDraws(t *testing.T) {
	a := NewCoin(Config{Seed: 3, TransferFailProb: 0})
	for i := 0; i < 100; i++ {
		if a.Flip() {
			t.Fatalf("zero-probability coin failed a transfer")
		}
	}
	// The stream must be untouched: a fresh coin with a real probability
	// sees the same draws whether or not the zero-prob coin flipped first.
	b := NewCoin(Config{Seed: 3, TransferFailProb: 0.5})
	c := NewCoin(Config{Seed: 3, TransferFailProb: 0.5})
	for i := 0; i < 100; i++ {
		if b.Flip() != c.Flip() {
			t.Fatalf("flip %d: same seed diverged", i)
		}
	}
}

func TestRuntimeDefaults(t *testing.T) {
	c := (&Spec{}).Runtime()
	if c.HeartbeatTimeout != DefaultHeartbeatTimeoutMS*sim.Millisecond {
		t.Errorf("heartbeat timeout %d", c.HeartbeatTimeout)
	}
	if c.CheckpointEvery != DefaultCheckpointEveryMS*sim.Millisecond {
		t.Errorf("checkpoint cadence %d", c.CheckpointEvery)
	}
	if c.RetryBase != DefaultRetryBaseMS*sim.Millisecond ||
		c.RetryMax != DefaultRetryMaxMS*sim.Millisecond ||
		c.RetryJitter != DefaultRetryJitterMS*sim.Millisecond {
		t.Errorf("retry defaults %d/%d/%d", c.RetryBase, c.RetryMax, c.RetryJitter)
	}
	// Negative cadence disables background checkpoints entirely.
	if c := (&Spec{CheckpointEveryMS: -1}).Runtime(); c.CheckpointEvery > 0 {
		t.Errorf("negative checkpoint_every_ms resolved to %d", c.CheckpointEvery)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error, "" = valid
	}{
		{"empty", Spec{}, ""},
		{"full", Spec{
			Seed: 1, HeartbeatTimeoutMS: 200, CheckpointEveryMS: 500,
			TransferFailProb: 0.3, RetryBaseMS: 10, RetryMaxMS: 100, RetryJitterMS: 5,
			Crashes:      []Crash{{Node: "n0", AtMS: 100, DownMS: 1000}, {Node: "n1", AtMS: 500}},
			CoreFailures: []CoreFailure{{Node: "n0", AtMS: 50, CPU: 3}},
			Random:       &RandomCrashes{RatePerMin: 5, DownMS: 2000},
		}, ""},
		{"negative timeout", Spec{HeartbeatTimeoutMS: -1}, "heartbeat_timeout_ms"},
		{"prob too high", Spec{TransferFailProb: 1}, "transfer_fail_prob"},
		{"negative backoff", Spec{RetryBaseMS: -1}, "backoff"},
		{"base over max", Spec{RetryBaseMS: 200, RetryMaxMS: 100}, "exceeds"},
		{"crash no node", Spec{Crashes: []Crash{{AtMS: 1}}}, "names no node"},
		{"crash late", Spec{Crashes: []Crash{{Node: "n", AtMS: 2000}}}, "outside run"},
		{"crash negative down", Spec{Crashes: []Crash{{Node: "n", AtMS: 1, DownMS: -1}}}, "negative down_ms"},
		{"undetectable blip", Spec{Crashes: []Crash{{Node: "n", AtMS: 1, DownMS: 300}}}, "undetectable"},
		{"detectable with short timeout", Spec{
			HeartbeatTimeoutMS: 100,
			Crashes:            []Crash{{Node: "n", AtMS: 1, DownMS: 300}},
		}, ""},
		{"corefail no node", Spec{CoreFailures: []CoreFailure{{AtMS: 1}}}, "names no node"},
		{"corefail negative cpu", Spec{CoreFailures: []CoreFailure{{Node: "n", AtMS: 1, CPU: -1}}}, "negative cpu"},
		{"random negative rate", Spec{Random: &RandomCrashes{RatePerMin: -1}}, "rate"},
		{"random undetectable", Spec{Random: &RandomCrashes{RatePerMin: 1, DownMS: 100}}, "undetectable"},
		{"random cap", Spec{Random: &RandomCrashes{RatePerMin: 1, MaxCrashes: MaxCrashes + 1}}, "max_crashes"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate(1000)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want one mentioning %q", tc.name, err, tc.want)
		}
	}
}
