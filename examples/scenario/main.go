// Command scenario is a walkthrough of the dynamic-event scenario engine
// (internal/scenario): it scripts a run in which a second application
// arrives mid-run, a big core fails (hotplug), the big cluster gets
// thermally capped, and the first application's target and workload phase
// shift — then replays it twice and shows the traces are byte-identical.
//
// Run with:
//
//	go run ./examples/scenario
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/hmp"
	"repro/internal/scenario"
)

func main() {
	off, on := false, true
	sc := &scenario.Scenario{
		Name:          "walkthrough",
		Manager:       scenario.ManagerMPHARSI,
		DurationMS:    16000,
		SampleEveryMS: 1000,
		AdaptEvery:    5,
		Apps: []scenario.AppSpec{
			// swaptions runs from the start and stays; its target is half of
			// its measured maximum rate.
			{Name: "swaptions", Bench: "SW", Threads: 8, TargetFrac: 0.5,
				InitBig: scenario.IntPtr(2), InitLittle: scenario.IntPtr(2)},
			// ferret arrives at 4 s and departs at 12 s.
			{Name: "ferret", Bench: "FE", Threads: 4, StartMS: 4000, StopMS: 12000,
				TargetFrac: 0.6, InitBig: scenario.IntPtr(1), InitLittle: scenario.IntPtr(1)},
		},
		Events: []scenario.Event{
			// A big core "fails" at 6 s and is repaired at 13 s.
			{AtMS: 6000, Kind: scenario.KindHotplug, CPU: 7, Online: &off},
			{AtMS: 13000, Kind: scenario.KindHotplug, CPU: 7, Online: &on},
			// Thermal capping: the big cluster may not exceed level 4
			// (1.2 GHz) between 7 s and 14 s.
			{AtMS: 7000, Kind: scenario.KindDVFSCap, Cluster: "big", MaxLevel: 4},
			{AtMS: 14000, Kind: scenario.KindDVFSCap, Cluster: "big", MaxLevel: 8},
			// The user raises swaptions' target at 9 s, and its per-frame
			// work grows 40% at 10 s (a workload phase change).
			{AtMS: 9000, Kind: scenario.KindTarget, App: "swaptions", Frac: 0.65},
			{AtMS: 10000, Kind: scenario.KindPhase, App: "swaptions", Scale: 1.4},
		},
	}

	var t1, t2 bytes.Buffer
	r1, err := scenario.Run(sc, scenario.Options{Trace: &t1, Strict: true})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := scenario.Run(sc, scenario.Options{Trace: &t2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== dynamic-event scenario walkthrough ==")
	for _, a := range r1.Apps {
		life := "0 ms – end"
		if a.Departed {
			life = "arrived and departed mid-run"
		} else if a.Arrived && a.Name == "ferret" {
			life = "arrived mid-run"
		}
		fmt.Printf("%-10s %6d beats, %7.1f work units, %4d migrations (%s)\n",
			a.Name, a.Beats, a.Work, a.Migrations, life)
	}
	m := r1.Machine
	fmt.Printf("energy %.1f J, manager overhead %.2f%%\n", r1.EnergyJ, 100*m.OverheadUtil())
	fmt.Printf("final platform: big level %d (cap %d), little level %d, online mask %x\n",
		m.Level(hmp.Big), m.LevelCap(hmp.Big), m.Level(hmp.Little), uint64(m.OnlineMask()))
	if err := r1.MP.CheckInvariants(); err != nil {
		log.Fatalf("partitioning invariants violated: %v", err)
	}
	fmt.Println("MP-HARS partitioning invariants held through hotplug, capping, and departure")

	fmt.Printf("replay determinism: digests %016x / %016x, traces byte-identical: %t\n",
		r1.TraceDigest, r2.TraceDigest, bytes.Equal(t1.Bytes(), t2.Bytes()))
	fmt.Printf("(trace: %d samples, %d bytes; pipe through cmd/hars-scenario for files)\n",
		r1.Samples, t1.Len())
}
