package experiments

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/hmp"
	"repro/internal/stats"
	"repro/internal/workload"
)

// sharedEnv is built once: profiling plus calibration dominate test time.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = NewEnv(Quick()) })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestEnvCalibrationCached(t *testing.T) {
	e := testEnv(t)
	b := mustBench(t, "SW")
	r1 := e.MaxRate(b)
	r2 := e.MaxRate(b)
	if r1 <= 0 || r1 != r2 {
		t.Fatalf("MaxRate not cached or zero: %v vs %v", r1, r2)
	}
	tgt := e.Target(b, 0.5)
	if tgt.Avg <= tgt.Min || tgt.Max <= tgt.Avg {
		t.Fatalf("bad target %+v", tgt)
	}
}

func mustBench(t *testing.T, short string) workload.Benchmark {
	t.Helper()
	b, ok := workload.ByShort(short)
	if !ok {
		t.Fatalf("unknown benchmark %s", short)
	}
	return b
}

// TestSingleAppShapes asserts the paper's qualitative Figure 5.1 results on
// a benchmark subset: every managed version clearly beats the baseline, and
// the static optimal beats HARS on blackscholes (the wrong-r0 effect).
func TestSingleAppShapes(t *testing.T) {
	e := testEnv(t)
	rows := RunSingleApp(e, SingleAppOptions{
		TargetFrac: 0.50,
		Benchmarks: []string{"BL", "SW"},
	})
	for _, row := range rows {
		base := row.Results["Baseline"].PP
		if base <= 0 {
			t.Fatalf("%s: baseline PP = %v", row.Bench.Short, base)
		}
		for _, v := range []string{"SO", "HARS-I", "HARS-E", "HARS-EI"} {
			rel := row.Results[v].PP / base
			if rel < 1.5 {
				t.Errorf("%s %s: rel perf/watt = %.2f, want clearly above baseline", row.Bench.Short, v, rel)
			}
		}
		// Every version satisfies most of the target.
		for _, v := range Fig51Versions {
			if np := row.Results[v].NormPerf; np < 0.7 {
				t.Errorf("%s %s: norm perf %.2f, want ≥ 0.7", row.Bench.Short, v, np)
			}
		}
	}
	// The wrong-r0 effect: SO ≥ HARS-E on blackscholes.
	for _, row := range rows {
		if row.Bench.Short != "BL" {
			continue
		}
		so := row.Results["SO"].PP
		he := row.Results["HARS-E"].PP
		if so < he*0.95 {
			t.Errorf("BL: SO PP %.3f should be ≥ HARS-E PP %.3f (wrong-r0 effect)", so, he)
		}
	}
}

func TestFig51ReportRenders(t *testing.T) {
	e := testEnv(t)
	rep := singleAppReport(e, SingleAppOptions{TargetFrac: 0.5, Benchmarks: []string{"SW"}},
		"Figure 5.1 (subset)")
	out := rep.String()
	for _, want := range []string{"SW", "GM", "Baseline", "HARS-EI"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFig53ShapeOnSubset(t *testing.T) {
	e := testEnv(t)
	// Use the full driver but at one target only (its own GM over all six
	// benchmarks would be slow; RunFig53 runs them in parallel).
	pts := RunFig53(e, 0.50)
	if len(pts) != len(Fig53Distances) {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].RelPP != 1.0 {
		t.Errorf("d=1 point must normalize to 1.0, got %v", pts[0].RelPP)
	}
	// Efficiency at the largest d should not be below d=1 (larger explored
	// space finds at-least-as-good states), and overhead must grow.
	last := pts[len(pts)-1]
	if last.RelPP < 0.95 {
		t.Errorf("rel PP at d=9 = %.3f, want ≥ ~1", last.RelPP)
	}
	if last.CPUUtilPct <= pts[0].CPUUtilPct {
		t.Errorf("manager CPU util should grow with d: %.3f%% → %.3f%%",
			pts[0].CPUUtilPct, last.CPUUtilPct)
	}
	if last.CPUUtilPct > 10 {
		t.Errorf("manager CPU util at d=9 = %.2f%%, want small (paper: <6%%)", last.CPUUtilPct)
	}
}

func TestMultiAppShapes(t *testing.T) {
	e := testEnv(t)
	// Case 4 (BO+FL), the paper's behaviour-graph case.
	base := e.RunMultiApp([2]string{"BO", "FL"}, "Baseline", 0.50)
	cons := e.RunMultiApp([2]string{"BO", "FL"}, "CONS-I", 0.50)
	mpe := e.RunMultiApp([2]string{"BO", "FL"}, "MP-HARS-E", 0.50)
	if base.Eff <= 0 {
		t.Fatal("baseline efficiency zero")
	}
	if cons.Eff <= base.Eff {
		t.Errorf("CONS-I eff %.4f should beat baseline %.4f", cons.Eff, base.Eff)
	}
	if mpe.Eff <= base.Eff*1.2 {
		t.Errorf("MP-HARS-E eff %.4f should clearly beat baseline %.4f", mpe.Eff, base.Eff)
	}
	// Both apps must stay reasonably close to their targets under MP-HARS.
	for i, r := range mpe.PerApp {
		if r.NormPerf < 0.6 {
			t.Errorf("MP-HARS-E app %d norm perf %.2f, want ≥ 0.6", i, r.NormPerf)
		}
	}
	// Traces exist for the managed versions, not for the baseline.
	if len(mpe.Traces[0]) == 0 || len(cons.Traces[1]) == 0 {
		t.Error("managed versions must record traces")
	}
	if len(base.Traces[0]) != 0 {
		t.Error("baseline should not record traces")
	}
}

func TestBehaviourReportRenders(t *testing.T) {
	e := testEnv(t)
	rep := Fig56(e)
	out := rep.String()
	for _, want := range []string{"Figure 5.6", "HPS", "B_Core", "L_Freq"} {
		if !strings.Contains(out, want) {
			t.Errorf("behaviour report missing %q", want)
		}
	}
	if len(rep.Series) < 10 {
		t.Errorf("behaviour report has %d series, want ≥ 10 (two apps)", len(rep.Series))
	}
}

func TestTable31Report(t *testing.T) {
	e := testEnv(t)
	rep := Table31(e)
	out := rep.String()
	if !strings.Contains(out, "Table 3.1") {
		t.Error("missing title")
	}
	// Spot-check the T=8 row: TB=6 TL=2 CBU=4 CLU=2 at r=1.5.
	found := false
	for _, row := range rep.Table.Rows {
		if row[0] == "8" {
			found = true
			if row[2] != "6" || row[3] != "2" || row[4] != "4" || row[5] != "2" {
				t.Errorf("T=8 row = %v", row)
			}
		}
	}
	if !found {
		t.Error("T=8 row missing")
	}
}

func TestTable43Report(t *testing.T) {
	rep := Table43(nil)
	if len(rep.Table.Rows) != 18 {
		t.Fatalf("Table 4.3 has %d rows, want 18", len(rep.Table.Rows))
	}
	out := rep.String()
	for _, want := range []string{"Underperf", "Overperf", "FREEZE", "INC", "DEC"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4.3 report missing %q", want)
		}
	}
}

func TestPowerProfileReport(t *testing.T) {
	e := testEnv(t)
	rep := PowerProfile(e)
	if len(rep.Table.Rows) != 9+6 {
		t.Fatalf("profile rows = %d, want 15 (9 big + 6 little levels)", len(rep.Table.Rows))
	}
	for _, row := range rep.Table.Rows {
		if row[4] == "n/a" {
			t.Errorf("missing R² in row %v", row)
		}
	}
}

func TestStateCpusetFallsBackToAll(t *testing.T) {
	e := testEnv(t)
	mask := stateCpuset(e.Plat, hmp.State{})
	if mask.Count() != e.Plat.TotalCores() {
		t.Errorf("empty state cpuset should fall back to all cores")
	}
}

func TestAblationShapes(t *testing.T) {
	e := testEnv(t)
	rep := Ablations(e)
	if len(rep.Table.Rows) != 9 {
		t.Fatalf("ablation rows = %d, want 9", len(rep.Table.Rows))
	}
	byKey := map[string]float64{}
	for _, row := range rep.Table.Rows {
		var pp float64
		if _, err := fmt.Sscanf(row[5], "%f", &pp); err != nil {
			t.Fatalf("bad pp cell %q", row[5])
		}
		byKey[row[0]+"/"+row[2]] = pp
	}
	// Online ratio learning must clearly beat the fixed r0 on blackscholes
	// at the tight target (the paper's wrong-r0 case).
	if byKey["ratio-learning/online ratio"] < byKey["ratio-learning/fixed r0=1.5 (paper)"]*1.2 {
		t.Errorf("ratio learning did not pay off: %v vs %v",
			byKey["ratio-learning/online ratio"], byKey["ratio-learning/fixed r0=1.5 (paper)"])
	}
	// Hierarchy-aware scheduling must at least match plain interleaving on
	// the pipeline, and both must beat chunk.
	chunk := byKey["scheduler/chunk (paper HARS-E)"]
	inter := byKey["scheduler/interleaved (paper HARS-EI)"]
	hier := byKey["scheduler/hierarchy-aware"]
	if inter < chunk*1.05 {
		t.Errorf("interleaving should beat chunk on ferret: %v vs %v", inter, chunk)
	}
	if hier < inter*0.93 {
		t.Errorf("hierarchy scheduling should be competitive with interleaving: %v vs %v", hier, inter)
	}
}

func TestExtendedSuiteShapes(t *testing.T) {
	e := testEnv(t)
	rep := ExtendedSuite(e)
	if len(rep.Table.Rows) != 11 { // 10 benchmarks + GM
		t.Fatalf("rows = %d, want 11", len(rep.Table.Rows))
	}
	// HARS-E must clearly beat the baseline on the extended GM too.
	gm := rep.Table.Rows[len(rep.Table.Rows)-1]
	var base, harse float64
	fmt.Sscanf(gm[1], "%f", &base)
	fmt.Sscanf(gm[2], "%f", &harse)
	if base != 1.0 {
		t.Fatalf("baseline GM = %v, want 1.0", base)
	}
	if harse < 1.8 {
		t.Fatalf("HARS-E extended GM = %v, want clearly above baseline", harse)
	}
}

func TestGeoMeanInReports(t *testing.T) {
	// Guard against regressions in the GM row arithmetic.
	vals := []float64{2, 8}
	if gm := stats.GeoMean(vals); gm != 4 {
		t.Fatalf("GeoMean = %v", gm)
	}
}
