package decision

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Admit:   "admit",
		Migrate: "migrate",
		Recover: "recover",
		Gated:   "gated",
		Kind(9): "Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}

func TestFormatCandidates(t *testing.T) {
	cands := []Candidate{
		{Node: "node0", Score: 1.5},
		{Node: "node1", Score: math.Inf(-1), Reason: ReasonDown},
		{Node: "node2", Score: 0},
	}
	got := FormatCandidates(cands)
	want := "node0:0x1.8p+00|node1:-Inf:down|node2:0x0p+00"
	if got != want {
		t.Fatalf("FormatCandidates = %q, want %q", got, want)
	}
	if FormatCandidates(nil) != "" {
		t.Fatalf("FormatCandidates(nil) = %q, want empty", FormatCandidates(nil))
	}
}

// Hex-float rendering must be byte-stable: the same score always renders
// the same bytes, and distinct close scores render distinctly.
func TestFormatCandidatesByteStable(t *testing.T) {
	a := []Candidate{{Node: "n", Score: 0.1}}
	b := []Candidate{{Node: "n", Score: math.Nextafter(0.1, 1)}}
	if FormatCandidates(a) != FormatCandidates(a) {
		t.Fatal("same input rendered differently")
	}
	if s1, s2 := FormatCandidates(a), FormatCandidates(b); s1 == s2 {
		t.Fatalf("adjacent floats rendered identically: %q", s1)
	}
}

func TestRecordDetailAndEvent(t *testing.T) {
	r := Record{
		ID: 7, T: 5 * sim.Millisecond, Kind: Migrate, App: "app0",
		From: "node0", Chosen: "node1", Outcome: OutcomeMoved, Margin: 0.5,
		Candidates: []Candidate{{Node: "node1", Score: 2}},
	}
	d := r.Detail()
	want := "migrate node0>node1 moved margin=0x1p-01 node1:0x1p+01"
	if d != want {
		t.Fatalf("Detail = %q, want %q", d, want)
	}
	ev := r.Event()
	if ev.Kind != sim.EvDecision || ev.Proc != "app0" || ev.Decision != 7 || ev.T != r.T || ev.Detail != d {
		t.Fatalf("Event = %+v", ev)
	}

	// Empty from/to render as "-" so the token count is fixed.
	r2 := Record{Kind: Admit, App: "a", Outcome: OutcomeNoCandidate}
	if got := r2.Detail(); !strings.HasPrefix(got, "admit ->- no-candidate") {
		t.Fatalf("Detail = %q, want '-' placeholders", got)
	}
}

func TestTeeAndSinkFunc(t *testing.T) {
	var a, b []uint64
	s := Tee(SinkFunc(func(r Record) { a = append(a, r.ID) }),
		SinkFunc(func(r Record) { b = append(b, r.ID) }))
	s.Decision(Record{ID: 1})
	s.Decision(Record{ID: 2})
	if len(a) != 2 || len(b) != 2 || a[1] != 2 || b[0] != 1 {
		t.Fatalf("tee fan-out wrong: a=%v b=%v", a, b)
	}
}

func TestLogCapAndDrop(t *testing.T) {
	l := &Log{Max: 3}
	for i := 0; i < 5; i++ {
		l.Decision(Record{ID: uint64(i)})
	}
	if got := len(l.Records()); got != 3 {
		t.Fatalf("retained %d records, want 3", got)
	}
	if l.Records()[2].ID != 2 {
		t.Fatalf("retained wrong records: %+v", l.Records())
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
}

func TestLogDefaultCap(t *testing.T) {
	l := &Log{}
	for i := 0; i < 100_001; i++ {
		l.Decision(Record{ID: uint64(i)})
	}
	if len(l.Records()) != 100_000 || l.Dropped() != 1 {
		t.Fatalf("default cap: retained=%d dropped=%d", len(l.Records()), l.Dropped())
	}
}

func TestTracerSink(t *testing.T) {
	tr := &sim.Tracer{Max: 10}
	TracerSink{Tr: tr}.Decision(Record{ID: 3, T: sim.Millisecond, Kind: Admit, App: "a", Chosen: "n", Outcome: OutcomePlaced})
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != sim.EvDecision || evs[0].Decision != 3 {
		t.Fatalf("tracer events = %+v", evs)
	}
}

func TestQueueWaitBuckets(t *testing.T) {
	var q QueueWait
	// One observation per bucket: 0 (exact zero), 1ms, 10ms, 100ms, 1s, inf.
	for _, us := range []int64{0, 500, 5_000, 50_000, 500_000, 5_000_000} {
		q.Observe(us)
	}
	for i, c := range q.Counts {
		if c != 1 {
			t.Fatalf("bucket %d count = %d, want 1 (counts %v)", i, c, q.Counts)
		}
	}
	if q.Observations() != 6 {
		t.Fatalf("Observations = %d", q.Observations())
	}
	if q.MaxUS != 5_000_000 {
		t.Fatalf("MaxUS = %d", q.MaxUS)
	}
	if got := q.String(); got != "0:1 1ms:1 10ms:1 100ms:1 1s:1 inf:1" {
		t.Fatalf("String = %q", got)
	}

	// Bounds are inclusive: exactly 1000 µs lands in the 1ms bucket.
	var q2 QueueWait
	q2.Observe(1_000)
	q2.Observe(1_001)
	if q2.Counts[1] != 1 || q2.Counts[2] != 1 {
		t.Fatalf("boundary buckets wrong: %v", q2.Counts)
	}

	// Negative waits clamp to zero instead of corrupting the histogram.
	var q3 QueueWait
	q3.Observe(-5)
	if q3.Counts[0] != 1 || q3.TotalUS != 0 {
		t.Fatalf("negative wait not clamped: %+v", q3)
	}
}

func TestQueueWaitMean(t *testing.T) {
	var q QueueWait
	if q.MeanUS() != 0 {
		t.Fatalf("empty MeanUS = %v", q.MeanUS())
	}
	q.Observe(100)
	q.Observe(300)
	if got := q.MeanUS(); got != 200 {
		t.Fatalf("MeanUS = %v, want 200", got)
	}
}

func TestRollupMeanMargin(t *testing.T) {
	var r Rollup
	if r.MeanMargin() != 0 {
		t.Fatalf("empty MeanMargin = %v", r.MeanMargin())
	}
	r.MarginSum, r.MarginCount = 3.0, 2
	if got := r.MeanMargin(); got != 1.5 {
		t.Fatalf("MeanMargin = %v, want 1.5", got)
	}
}
