// Package scenario is a declarative, deterministic timed-event engine for
// dynamic-condition simulations: it drives a sim.Machine and its HARS /
// MP-HARS runtime managers through scripted runs in which applications
// arrive and depart at arbitrary ticks, performance targets and workload
// phases shift, cores go offline and come back (hotplug), and cluster
// frequencies get capped — either by scripted dvfs_cap events or by the
// closed thermal loop of package thermal (an RC temperature model plus a
// governor daemon deriving the ceilings from simulated heat).
//
// The paper evaluates HARS only on static runs — a fixed application set
// started at t = 0 on a fixed machine. This package is how the repository
// tests everything the paper does not: the managers' reaction paths when
// the world changes mid-run.
//
// # Scenario format
//
// A scenario is a JSON document (see Decode/Encode):
//
//	{
//	  "name": "example",
//	  "seed": 7,
//	  "manager": "mphars-i",
//	  "duration_ms": 20000,
//	  "sample_every_ms": 100,
//	  "adapt_every": 10,
//	  "apps": [
//	    {"name": "sw0", "bench": "SW", "threads": 8, "start_ms": 0,
//	     "stop_ms": 15000, "target_frac": 0.5, "init_big": 2, "init_little": 2},
//	    {"name": "fe0", "bench": "FE", "threads": 4, "start_ms": 5000,
//	     "target": {"min": 4.5, "avg": 5.0, "max": 5.5}}
//	  ],
//	  "events": [
//	    {"at_ms": 4000, "kind": "hotplug", "cpu": 7, "online": false},
//	    {"at_ms": 6000, "kind": "dvfs_cap", "cluster": "big", "max_level": 4},
//	    {"at_ms": 8000, "kind": "target", "app": "sw0", "frac": 0.7},
//	    {"at_ms": 9000, "kind": "phase", "app": "sw0", "scale": 1.5,
//	     "every_ms": 2000, "repeat": 3},
//	    {"at_ms": 12000, "kind": "hotplug", "cpu": 7, "online": true}
//	  ],
//	  "thermal": {"enabled": true, "trip_c": 75, "release_c": 60,
//	              "big": {"capacitance_j_per_k": 1, "resistance_k_per_w": 10}}
//	}
//
// Fields:
//
//   - manager: "none" (unmanaged, mask-balancer placement), "gts"
//     (unmanaged, Linux HMP GTS placement), "hars-i", "hars-e", "hars-ei"
//     (one single-application HARS manager per application), "mphars-i" or
//     "mphars-e" (one shared MP-HARS manager with resource partitioning).
//   - apps: start_ms/stop_ms are arrival and departure times (stop_ms 0 =
//     runs to the end). The performance target is either an explicit
//     {min, avg, max} band or target_frac, a fraction of the benchmark's
//     measured maximum rate (±5% band). init_big/init_little are the
//     MP-HARS initial core allocation (default 1+1).
//   - events: "hotplug" toggles one CPU (online is required); "dvfs_cap"
//     installs a cluster frequency ceiling (max_level indexes the OPP grid;
//     restore with the grid's top level); "target" re-targets one app
//     (frac or explicit target); "phase" scales the app's future work units
//     by scale (> 0), a workload phase change. Any event may repeat: with
//     every_ms > 0 it fires again every every_ms milliseconds until the run
//     ends or repeat firings have happened (repeat 0 = until the end); a
//     repeating event behaves exactly like its occurrences written out by
//     hand. Validation bounds the total expansion (100,000 occurrences).
//   - thermal: the closed-loop block (see thermal.Spec for every field and
//     default). With enabled=true the engine attaches an RC temperature
//     model fed by the machine's per-tick cluster power and a hysteretic
//     governor daemon that lowers SetLevelCap as a cluster approaches
//     trip_c and releases the ceilings as it cools below release_c; the
//     trace grows "h" sample lines (temperatures, caps, actuation counts)
//     and Result.Thermal carries the governor. Scripted dvfs_cap events
//     are rejected while the governor is enabled — it owns the ceilings.
//     With enabled=false (or no block) the run is bit-for-bit the
//     pre-thermal one. In a multi-node scenario the block is the
//     fleet-wide default; nodes override it with their own.
//   - affinity (per app): an explicit CPU list pinning the app's threads
//     for the whole run — enforced by the placer on every placement and
//     hotplug re-placement. Unmanaged scenarios only ("none", "gts"): the
//     HARS / MP-HARS managers own their applications' masks.
//   - slo (per app, and per arrival stream): the application's service-
//     level objective, {"target_hps": 3, "slack_ms": 150}. The slo-aware
//     placement policy scores candidate nodes against target_hps and
//     charges migration freeze time against slack_ms; the engine counts
//     an SLO miss for every trace sample at which the app delivers less
//     than target_hps (queued and migration-frozen apps deliver nothing;
//     stale window rates older than two target periods count as zero).
//     Misses are pure accounting — AppResult.SLOSamples/SLOMisses and the
//     fleet rollups — and never change the trace bytes.
//
// # Multi-node (fleet) scenarios
//
// A scenario may declare a whole fleet of machines instead of one:
//
//	{
//	  "name": "fleet",
//	  "manager": "mphars-i",
//	  "duration_ms": 20000,
//	  "placement": "slo-aware",
//	  "migrate_every_ms": 250,
//	  "checkpoint": {"freeze_us": 5000, "per_mb_us": 500, "size_mb": 8},
//	  "nodes": [
//	    {"name": "n0", "thermal": {"enabled": true}},
//	    {"name": "n1", "manager": "hars-e", "adapt_every": 2},
//	    {"name": "n2", "platform": {"Clusters": [...], "BaseKHz": 800000}}
//	  ],
//	  "apps": [
//	    {"name": "sw0", "bench": "SW", "threads": 8,
//	     "slo": {"target_hps": 3, "slack_ms": 150}},
//	    {"name": "fe0", "bench": "FE", "threads": 4, "node": "n1"}
//	  ],
//	  "arrivals": [
//	    {"name": "web", "node": "n2", "bench": "BO", "threads": 4, "seed": 9,
//	     "lifetime_ms": 3000, "slo": {"target_hps": 3},
//	     "rate": [{"until_ms": 8000, "per_s": 0.8}, {"per_s": 0.2}]}
//	  ],
//	  "events": [
//	    {"at_ms": 4000, "kind": "hotplug", "node": "n0", "cpu": 7, "online": false},
//	    {"at_ms": 6000, "kind": "dvfs_cap", "node": "n2", "cluster": "big", "max_level": 4}
//	  ]
//	}
//
// Each node is one sim.Node — its own platform description (inline
// hmp.ReadPlatform JSON; omitted = the default board), power model,
// manager ("manager"/"adapt_every"/"overhead_cpu" default to the
// scenario-level values), and thermal loop — and all nodes advance in
// lockstep on one deterministic clock (internal/fleet). Arrivals are
// admitted to a node by the placement policy ("least-loaded" default,
// "big-first" = most free big-core capacity, "coolest" = lowest modeled
// temperature, "slo-aware" = best predicted target slack: free-capacity-
// weighted nominal speed at the active frequency ceilings relative to the
// app's slo target, minus the checkpoint delay scored against its slack
// when the candidate is a migration destination) or by their "node" pin;
// platform events (hotplug, dvfs_cap) must name the node they act on,
// while app events address the app wherever it runs.
//
// Traffic traces: each "arrivals" stream is a seeded Poisson arrival
// process with a piecewise-constant rate profile ("rate" steps, each
// active until until_ms; 0 on the last step = end of run). At run time it
// expands deterministically into concrete arrivals named "<name>-<i>" —
// copies of the stream's app template, optionally pinned to the stream's
// node, departing lifetime_ms after they start, at most max_apps of them
// (default 64). The same document always expands identically (the seed
// drives everything), so replays remain byte-identical; the scenario
// document itself is never mutated.
//
// Admission control: an arrival finding no free core partition on any
// admissible node queues FIFO fleet-wide (Result.QueuedArrivals) and is
// admitted the tick a partition frees up — departure, hotplug, or an
// adaptation shrinking a neighbour; queued arrivals admit strictly in
// arrival order even when several partitions free at once; arrivals still
// waiting when the run (or their departure) ends count as dropped
// (Result.DroppedArrivals, AppResult.Skipped). The same queue serves
// classic single-machine MP-HARS scenarios, which previously skipped such
// arrivals outright.
//
// Work-conserving migration: every migrate_every_ms (250 ms default, -1
// disables) the scheduler moves one application off each saturated
// partitioned node to the policy's preferred node with free capacity —
// the destination must hold strictly more free cores than the victim's
// allocation, must not score below the victim's current node under the
// placement policy, and the victim must be past a strict cooldown (placed
// more than one period ago), so an app can never bounce between two nodes
// on consecutive passes. The move checkpoints the application's run state
// — program-internal state, per-thread progress, heartbeat history,
// pending wakeups (sim.ProcSnapshot) — and restores it on the destination
// with statistics continuous across nodes (EvMigrateOut/EvMigrateIn
// machine-trace events mark the two sides; AppResult.NodeMigrations
// counts the moves). The "checkpoint" block prices the move: the app
// stays frozen for freeze_us + per_mb_us × size_mb on the shared clock
// before resuming (AppResult.MigrationDelayUS totals the frozen time); a
// missing or all-zero block is a free move, bit-for-bit identical to no
// block at all. The node's manager re-attaches without state loss: the
// carried heartbeat history counts as already observed and the first
// adaptation waits a full period past the move.
//
// Multi-node traces replace the "m" line with per-node "n" (and "h")
// lines, add the node and fleet-move columns to "a" lines, and append an
// "f" fleet rollup line (running apps, queue length, summed HPS, energy,
// overhead, migrations) per sample. Single-node scenarios keep the classic
// byte-identical format.
//
// # Fault injection ("faults" block)
//
// A fleet scenario may add a seeded fault plan (internal/fault):
//
//		"faults": {
//		  "seed": 7,
//		  "heartbeat_timeout_ms": 300,
//		  "checkpoint_every_ms": 1000,
//		  "transfer_fail_prob": 0.1,
//		  "retry_base_ms": 50, "retry_max_ms": 2000, "retry_jitter_ms": 25,
//		  "crashes": [{"node": "n1", "at_ms": 4000, "down_ms": 3000}],
//		  "core_failures": [{"node": "n0", "at_ms": 2000, "cpu": 5}],
//		  "random": {"rate_per_min": 6, "down_ms": 2500, "max_crashes": 16}
//		}
//
//	  - crashes: scripted node crashes. A crash kills every resident process
//	    without a clean exit and powers the node off; it reboots down_ms
//	    later (0 = never). down_ms, when nonzero, must exceed the heartbeat
//	    timeout — a blip the detector cannot see would strand apps silently,
//	    so validation rejects it. Overlapping crash windows extend the
//	    outage to the latest recovery time.
//	  - core_failures: permanent core failures — the CPU goes offline at
//	    at_ms and never returns; a node reboot does not revive it.
//	    Validation applies the same last-core/affinity rules as scripted
//	    hotplug.
//	  - random: a seeded Poisson crash process over the whole fleet
//	    (exponential inter-arrival gaps at rate_per_min, uniformly drawn
//	    victim), expanded before the run as a pure function of (seed,
//	    duration, node count) — replays are byte-identical.
//	  - Recovery: the fleet scheduler declares a node down after
//	    heartbeat_timeout_ms of silence, salvages its apps from their last
//	    background snapshot (taken every checkpoint_every_ms; negative
//	    disables), and re-places them on surviving nodes through the
//	    ordinary admission queue — so work lost per crash is bounded by the
//	    snapshot interval, and recovery degrades gracefully to queueing
//	    when no capacity survives. Each restore fails transiently with
//	    probability transfer_fail_prob; failed transfers retry under capped
//	    exponential backoff (retry_base_ms doubling up to retry_max_ms,
//	    plus a seeded jitter in [0, retry_jitter_ms]).
//
// Fault activity appears in the trace as "x,t_ms,node,event,detail" lines
// (down, up, corefail, salvage, recover) and in the results as
// Result.NodeCrashes/Recoveries/LostWorkUS/TransferFails/StrandedApps and
// the per-app AppResult.Recoveries/LostWorkUS/Stranded. A scenario without
// a "faults" block is bit-for-bit the pre-fault run.
//
// # Decision tracing ("decisions" block)
//
// A scenario may opt into the scheduler's decision stream
// (internal/decision):
//
//	"decisions": {"enabled": true, "keep": 100000}
//
// Every scheduler decision point — admission picks, migrate-pass
// destination picks (including the gated no-ops the destination-score gate
// declines), and crash re-placements — then appears in the trace as a
//
//	d,t_ms,id,kind,app,from,to,outcome,margin,candidates
//
// line: the monotonic decision ID, the kind (admit/migrate/recover/gated),
// the full scored candidate set ("node:score" per eligible node,
// "node:score:reason" per excluded one — reasons pinned/down/full/min-free
// score -Inf; the migration source keeps its real score), the chosen node,
// the outcome (placed/moved/held/no-candidate/no-capacity/transfer-failed),
// and the winner's score margin over the runner-up. Scores and margins
// render as hexadecimal floats, so the lines are byte-stable and exact.
// The same records land in Result.DecisionRecords (bounded by "keep",
// default 100,000; overflow counted in Result.DecisionsDropped), and
// sim.Tracer CSV/Chrome output grows decision/detail columns only when
// decision events are present. Options.TraceDecisions arms the stream from
// the command line (hars-scenario -trace-decisions) without touching the
// document. With the block absent or disabled (and the flag off) the trace
// is bit-for-bit the undecorated run — every golden digest reproduces
// exactly — while the always-on rollup (Result.Decisions: decision counts
// by kind, gated migrations, mean score margin, admission queue-wait
// histogram) is maintained regardless.
//
// Decisions happen inside fleet hook ticks on the main goroutine, so the
// decision stream is byte-identical across the lockstep, event-driven, and
// worker-sharded cores, and decision IDs are assigned whether or not the
// stream is recorded. That is what makes counterfactual replay exact:
// Options.ForceDecisions (hars-scenario -counterfactual <id>
// [-counterfactual-k N]) re-runs the scenario forcing one recorded
// decision to each of its top-k alternative candidates in turn
// (RunCounterfactual); everything before the forked decision is
// bit-identical by determinism, and the report carries each alternative's
// ΔSLO misses, Δenergy, and Δmigrations against the baseline — the
// realized regret of the choice the policy actually made.
//
// Advancement strategy is an Options matter, never a scenario one: the
// engine runs the event-driven fleet core with the machines' steady-phase
// turbo path on by default, and every combination replays byte-identically.
// Options.Lockstep (hars-scenario -lockstep) forces the per-tick reference
// fleet advancement; Options.NoSteady (hars-scenario -steady=false) forces
// the general per-tick loop through every busy stretch. Both switches exist
// for benchmarking and for the equivalence suites that prove the
// bit-exactness, not for changing results.
//
// Determinism: the engine is single-threaded over deterministic
// simulators — nodes step in index order within each shared tick, and
// scheduler decisions break ties by policy score then node index — so the
// same scenario file always produces byte-identical traces and results.
// Actions due at the same millisecond apply in a fixed order: platform
// events first (hotplug, dvfs_cap, in listed order), then departures, then
// arrivals, then application events (target, phase), ties broken by
// position in the file; occurrences of a repeating event carry their
// event's file position for tie-breaking.
//
// Validation rejects scenarios whose hotplug sequence would ever take a
// node's last core offline, so a validated scenario can always make
// progress.
package scenario
