// Package repro is a from-scratch Go reproduction of "HARS: a
// Heterogeneity-Aware Runtime System for Self-Adaptive Multithreaded
// Applications" (Jaeyoung Yun, UNIST / DAC 2015).
//
// The library implements the full system stack the paper describes: a
// simulated ODROID-XU3-class big.LITTLE platform with per-cluster DVFS and
// power sensing (internal/hmp, internal/sim, internal/power), the Linux HMP
// Global Task Scheduler model (internal/gts), the Application Heartbeats
// framework (internal/heartbeat), PARSEC-like multithreaded workload models
// (internal/workload), the HARS runtime — performance estimator, power
// estimator, runtime manager, chunk-based and interleaving schedulers
// (internal/core) — the MP-HARS multi-application extension with resource
// partitioning and interference-aware adaptation (internal/mphars), the
// static-optimal and CONS-I baselines (internal/oracle, internal/mphars),
// and drivers regenerating every table and figure of the paper's evaluation
// (internal/experiments).
//
// # Dynamic-event scenarios
//
// The paper evaluates static runs only; internal/scenario goes beyond it
// with a declarative, deterministic timed-event engine that drives the
// machine and its managers through dynamic conditions: application arrival
// and departure at arbitrary ticks, heartbeat-target changes, workload
// phase changes, core hotplug (offline cores evict and re-place threads),
// and per-cluster DVFS ceilings (thermal capping). Scenarios are JSON
// scripts (format reference in the scenario package comment) replayed by
// cmd/hars-scenario into byte-identical per-sample traces; events may repeat
// on an every_ms period for pulsed load. A seeded random-scenario generator
// feeds the property tests that assert runtime invariants — no thread on an
// offline core, levels within ceilings, monotone energy, consistent manager
// state after every departure — across HARS and MP-HARS, and scenario
// sweeps run on the parallel experiments engine ("scenarios" driver).
// Event-free scenarios reproduce the golden digests of the static path
// bit-for-bit (scenario_equivalence_test.go).
//
// # Closed thermal loop
//
// internal/thermal derives DVFS ceilings from simulated heat instead of
// scripts: a per-cluster lumped RC temperature model (ambient sink,
// optional inter-cluster coupling) integrates the machine's per-tick
// cluster power — with hotplugged-off cores excluded from leakage via
// sim.OnlinePowerModel — and a hysteretic Governor daemon lowers
// sim.Machine.SetLevelCap as a cluster approaches its trip point and
// releases the ceilings as it cools, emitting EvTemp/EvThrottle trace
// events. Scenarios opt in with a "thermal" block; the "thermal"
// experiments driver sweeps governor aggressiveness across managers. The
// loop is deterministic (byte-identical replays) and, when disabled,
// bit-for-bit invisible: property tests pin the trip-point ceiling, the
// cap/temperature monotonicity, and the disabled-path golden digests.
//
// # Fleet layer (multi-machine scheduling)
//
// internal/fleet scales the system from one machine to many, in the
// hierarchical style of MARS: per-node HARS / MP-HARS managers keep
// running unmodified while a fleet scheduler decides which node an
// application lands on. internal/sim contributes the Node identity — a
// named machine bundling its platform, power model, thermal governor, and
// manager daemons behind the shared-clock Ticker interface, with
// node-tagged trace events — and fleet.Fleet advances any number of Nodes
// on one deterministic clock. Advancement is event-driven: a node that
// provably has nothing to do (sim.Machine.InertUntil certifies every
// per-tick phase a no-op) jumps its clock to its next event instead of
// stepping, the fleet advances to the earliest wake time its scheduler
// hooks report (fleet.Sleeper), and node advancement can shard across
// workers with a deterministic merge. The fast path is an execution
// strategy, not a semantic change — traces and digests are bit-for-bit
// identical to per-tick lockstep, which remains available as a reference
// (fleet.Fleet.SetLockstep, hars-scenario -lockstep). Placement is
// pluggable (least-loaded, big-first for heterogeneity, coolest for
// heat-aware placement, slo-aware for per-app target-slack scoring against
// predicted node capacity and migration cost — policies take their
// checkpoint-cost model explicitly via fleet.PolicyByName, and every
// policy scores a down node -Inf so it can never win placement); arrivals
// with no free partition
// anywhere queue FIFO — admitted strictly in arrival order as capacity
// frees (the same queue upgrades classic MP-HARS scenarios from silently
// skipping saturated arrivals); saturated nodes shed an application to
// the policy's preferred free node on a fixed cadence; and
// HPS/energy/overhead roll up per fleet.
//
// Migration is work-conserving: an application's lifecycle state is a
// first-class checkpointable identity (sim.ProcSnapshot — program state,
// per-thread progress, heartbeat history, pending wakeups) that
// Machine.Checkpoint captures and Machine.Restore continues on another
// node, statistics continuous across the move (EvMigrateOut/EvMigrateIn
// trace events). A configurable checkpoint-cost model (freeze time plus
// per-MB transfer delay, charged on the shared clock) prices each move;
// managers re-attach to moved applications without state loss. A strict
// placement cooldown makes consecutive-pass ping-pong impossible.
//
// Scenarios opt in by declaring "nodes" — each with its own inline hmp
// platform JSON, manager, and thermal block — plus a "placement" policy
// and optional "checkpoint" cost, per-app "slo" targets, and "arrivals"
// traffic traces (seeded per-node Poisson streams with piecewise rate
// profiles, expanded deterministically); events then address nodes, apps
// may pin to one, and cmd/hars-scenario replays the whole fleet
// byte-identically (-summary json emits machine-readable, byte-stable
// summaries). A quick start:
//
//	hars-scenario -gen -nodes 3 -placement coolest -strict
//
// Single-node and migration-free fleet runs are bit-for-bit unchanged:
// the Node wrapper and the checkpoint path add no behaviour until an app
// actually moves, pinned by fleet_equivalence_test.go against the
// original golden digests. The "fleet" experiments driver sweeps
// placement policies × node counts, and the "slo" driver sweeps policies
// × migration-cost regimes reporting SLO-miss rates, both on the parallel
// engine.
//
// # Failure model (fault injection & recovery)
//
// internal/fault adds a seeded, deterministic failure model on top of the
// fleet: scenarios declare a "faults" block of scripted node crashes,
// permanent core failures, a seeded-random (Poisson) crash process, and a
// transient checkpoint-transfer failure probability, all expanded on the
// shared clock as a pure function of the spec's seed. A crash kills the
// node's processes without a clean exit (sim.Machine.Fail/Heal: cores dark,
// power frozen, clock still in lockstep; EvNodeDown/EvNodeUp trace events);
// the fleet scheduler detects it by heartbeat timeout, salvages the dead
// node's applications from their last periodic background snapshot
// (non-destructive sim.Machine.Snapshot every checkpoint_every_ms — work
// lost per crash is bounded by the snapshot interval), and re-places them
// on surviving nodes through the ordinary admission queue, degrading
// gracefully to queueing when no capacity survives. Failed transfers retry
// under capped exponential backoff with seeded jitter. Recoveries are
// marked by EvRecover/"x" trace lines and counted per app
// (Recoveries/LostWorkUS); the slo-aware policy scores recovery placements
// like any other move. Everything replays byte-identically, scenarios
// without a "faults" block are bit-for-bit the pre-fault runs (golden
// digests pin both), and the "faults" experiments driver sweeps policies ×
// crash rates × snapshot intervals.
//
// # Decision observability & counterfactual replay
//
// internal/decision makes every fleet scheduling decision a first-class,
// inspectable record: each admission, recovery re-placement, migration
// pick, and declined (gated) migration gets a monotonic decision ID, its
// full candidate set — every node's score, with -Inf and a reason
// (source/pinned/down/full/min-free) for excluded nodes — the chosen
// node, the outcome, and the score margin over the runner-up. A rollup
// (decision counts by kind, mean margin, admission queue-wait histogram)
// is always on at plain-counter cost and surfaces in fleet.Stats,
// scenario.Result, and both hars-scenario summary formats; the full
// per-decision stream is opt-in ("decisions" scenario block,
// -trace-decisions) and renders as "d," trace lines and gated
// decision/detail columns in the sim.Tracer CSV and Chrome exports —
// scores in hex floats so the stream is byte-stable, and byte-identical
// whether the fleet runs lockstep, event-driven, or worker-sharded. With
// tracing disabled every golden digest reproduces bit-for-bit.
//
// Because runs are deterministic, a recorded decision can be replayed
// against its road not taken: hars-scenario -counterfactual <id>
// (scenario.RunCounterfactual) re-runs the scenario forcing each of the
// top-k alternative candidates in place of the original choice and
// reports per-alternative regret — ΔSLO misses, Δenergy, Δmigrations
// versus the baseline. The "decisions" experiments driver sweeps
// placement policies over a contended fleet and ranks them by the
// realized regret of their own decisions.
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// substitution rationale, and EXPERIMENTS.md for the paper-versus-measured
// record. The benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=Fig51 -benchmem
//
// # Performance & benchmarking
//
// The runtime manager's whole value proposition is being cheap enough to
// invoke every adaptation period, so the simulator and search hot paths are
// engineered and continuously measured:
//
//   - internal/sim maintains per-core run queues incrementally on
//     block/unblock/migrate transitions instead of rescanning every thread
//     every tick; RunQueueLen is O(1), per-thread speed factors and the
//     cache-sharing bonus are resolved once at Spawn, and per-tick energy
//     integration is memoized while a cluster's level and busy times are
//     unchanged. All of it is tick-for-tick bit-identical to the historical
//     full-scan implementation — equivalence_test.go pins golden digests
//     (energy, heartbeats, work, migrations, busy time) captured from the
//     pre-refactor simulator.
//   - internal/core memoizes the performance estimator in a dense table
//     over the 4-D system-state space, shared by Search, the tabu search,
//     and MP-HARS's per-application sweeps; a warm exhaustive
//     GetNextSysState sweep performs zero allocations
//     (TestSearchZeroAllocs).
//   - internal/experiments runs independent figure rows and whole
//     experiments through worker pools (hars-experiments -parallel N);
//     reports are identical whatever the pool width.
//   - internal/fleet advances quiescent nodes by event jump instead of
//     per-tick stepping (see the fleet layer above), so a mostly-idle
//     fleet costs wall-clock proportional to its busy nodes and decision
//     points, not nodes × ticks; BenchmarkFleetQuiescent tracks the
//     speedup over the lockstep reference on a 128-node fleet, and the
//     BenchmarkFleetScale1k family tracks it at 1024 nodes (idle, ~5%
//     active, and fault-armed crash/heal variants).
//   - The fleet core itself is engineered for thousand-node fleets: the
//     scheduler's NextWake reads an incremental wake index (silent-node
//     detection deadlines in a min-heap maintained by machine failure
//     listeners, declared-down nodes in a short heal-probe list) instead
//     of scanning every node per barrier — the O(nodes) scan survives as
//     the verification reference (fleet.Scheduler.SetWakeScan /
//     SetWakeVerify); node advancement between barriers runs on a
//     persistent worker pool fed by a chunked cursor instead of spawning
//     goroutines per barrier; and bit-identical idle nodes share one
//     energy-replay computation per jump through a bit-exact-keyed cache
//     (sim.JumpCache), collapsing the cost of N idle machines to ~1. The
//     steady-state barrier loop performs no allocations, pinned by the
//     hars-bench -alloc-ceiling guard in CI.
//   - Busy machines get the same treatment as idle ones: when a machine's
//     runnable set, placement, per-thread speeds, and platform state
//     provably cannot change — threads mid-unit, managers in-band, the
//     governor between actuations — sim.Machine.SteadyUntil certifies the
//     window and RunSteady executes it as a tight loop, accruing per-tick
//     progress and the memoized energy additions in registers with the
//     same IEEE operations in the same order as the general path, skipping
//     the runnable scan, placer dispatch, daemon walk, and trace checks.
//     Daemons opt in via sim.SteadyDaemon (core.Manager, mphars.Manager,
//     and thermal.Governor do; anything else bounds or vetoes the window),
//     placers via sim.SteadyPlacer. Unit completions, heartbeats, timer
//     wakeups, and governor actuations always run through the general
//     per-tick loop, which survives as the bit-exactness reference
//     (sim.Machine.SetSteady, scenario Options.NoSteady, hars-scenario
//     -steady=false) pinned by the golden digests, the steady boundary
//     tests, and the steady-vs-general property suite. The
//     BenchmarkFleetScale1kSteady pair tracks the speedup over the general
//     loop on a managed busy fleet, guarded by hars-bench
//     -steady-ratio-floor in CI.
//
// The tracked hot-path benchmarks live in internal/bench and run two ways:
//
//	go test -run '^$' -bench 'SimSecond|SearchExhaustive' -benchmem .
//	go run ./cmd/hars-bench -out BENCH_N.json -prev BENCH_M.json
//
// cmd/hars-bench writes the measurements as BENCH_<n>.json at the
// repository root (one file per PR, n = PR number) so the performance
// trajectory is reviewable alongside the code: -prev prints per-benchmark
// deltas against an earlier file, -count N records the median of N runs
// with the min/max spread printed, -cpuprofile/-memprofile capture pprof
// profiles of the run (hars-scenario takes the same two flags), and CI
// enforces the -quiescent-ratio-floor, -scale-ratio-floor,
// -steady-ratio-floor, and -alloc-ceiling guards so the event core's and
// steady path's speedups and the alloc-free steady state cannot silently
// regress. Treat a regression in SimSecond or SearchExhaustive as a bug.
package repro
