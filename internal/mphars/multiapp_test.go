package mphars

import (
	"math/rand"
	"testing"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// TestFourApplications exercises the linked-list runtime with four
// concurrent applications — one core of each cluster each — checking that
// partitioning invariants hold throughout and every application keeps
// making progress.
func TestFourApplications(t *testing.T) {
	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	m := sim.New(plat, sim.Config{Power: gt})
	mgr := New(m, testModel(plat), Config{Version: MPHARSE})
	m.AddDaemon(mgr)

	names := []string{"a", "b", "c", "d"}
	units := []float64{0.4, 0.6, 0.8, 0.5}
	procs := make([]*sim.Process, len(names))
	for i, n := range names {
		prog := &steadyN{name: n, threads: 4, unit: units[i]}
		procs[i] = m.Spawn(n, prog, 10)
		mgr.Register(m, procs[i], heartbeat.Target{Min: 0.4, Avg: 0.6, Max: 0.8}, 1, 1)
	}
	if len(mgr.Apps()) != 4 {
		t.Fatalf("apps = %d", len(mgr.Apps()))
	}
	for i := 0; i < 90; i++ {
		m.Run(1 * sim.Second)
		if err := mgr.CheckInvariants(); err != nil {
			t.Fatalf("invariant broken at %ds: %v", i, err)
		}
	}
	for i, p := range procs {
		if p.HB.Count() == 0 {
			t.Errorf("app %s made no progress", names[i])
		}
		big, little := mgr.Allocation(p)
		if big+little == 0 {
			t.Errorf("app %s lost all cores", names[i])
		}
	}
}

// steadyN is a small barrier workload with a configurable thread count.
type steadyN struct {
	name    string
	threads int
	unit    float64
	pending int
}

func (s *steadyN) Name() string    { return s.name }
func (s *steadyN) NumThreads() int { return s.threads }
func (s *steadyN) Start(p *sim.Process) {
	s.pending = s.threads
	for i := 0; i < s.threads; i++ {
		p.SetWork(i, s.unit)
	}
}
func (s *steadyN) UnitDone(p *sim.Process, local int) {
	s.pending--
	if s.pending > 0 {
		return
	}
	p.Beat()
	s.pending = s.threads
	for i := 0; i < s.threads; i++ {
		p.SetWork(i, s.unit)
	}
}
func (s *steadyN) SpeedFactor(local int, k hmp.ClusterKind) float64 {
	if k == hmp.Big {
		return 1.5
	}
	return 1
}

// TestInvariantsUnderRandomTargets fuzzes the runtime: random registration
// order, thread counts, and target bands, checking the core-partitioning
// invariants after every simulated second.
func TestInvariantsUnderRandomTargets(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		plat := hmp.Default()
		m := sim.New(plat, sim.Config{})
		mgr := New(m, testModel(plat), Config{Version: MPHARSE, AdaptEvery: 5})
		m.AddDaemon(mgr)
		apps := 2 + rng.Intn(2)
		for i := 0; i < apps; i++ {
			prog := &steadyN{
				name:    string(rune('p' + i)),
				threads: 2 + rng.Intn(6),
				unit:    0.2 + rng.Float64()*0.8,
			}
			p := m.Spawn(prog.name, prog, 8)
			avg := 0.2 + rng.Float64()*3
			mgr.Register(m, p, heartbeat.Target{Min: avg * 0.9, Avg: avg, Max: avg * 1.1},
				1+rng.Intn(2), 1+rng.Intn(2))
		}
		for s := 0; s < 30; s++ {
			m.Run(1 * sim.Second)
			if err := mgr.CheckInvariants(); err != nil {
				t.Fatalf("seed %d: invariant broken at %ds: %v", seed, s, err)
			}
		}
	}
}
