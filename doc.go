// Package repro is a from-scratch Go reproduction of "HARS: a
// Heterogeneity-Aware Runtime System for Self-Adaptive Multithreaded
// Applications" (Jaeyoung Yun, UNIST / DAC 2015).
//
// The library implements the full system stack the paper describes: a
// simulated ODROID-XU3-class big.LITTLE platform with per-cluster DVFS and
// power sensing (internal/hmp, internal/sim, internal/power), the Linux HMP
// Global Task Scheduler model (internal/gts), the Application Heartbeats
// framework (internal/heartbeat), PARSEC-like multithreaded workload models
// (internal/workload), the HARS runtime — performance estimator, power
// estimator, runtime manager, chunk-based and interleaving schedulers
// (internal/core) — the MP-HARS multi-application extension with resource
// partitioning and interference-aware adaptation (internal/mphars), the
// static-optimal and CONS-I baselines (internal/oracle, internal/mphars),
// and drivers regenerating every table and figure of the paper's evaluation
// (internal/experiments).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// substitution rationale, and EXPERIMENTS.md for the paper-versus-measured
// record. The benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=Fig51 -benchmem
package repro
