// Package bench defines the repository's tracked micro-benchmarks as plain
// functions so they can run both under `go test -bench` (bench_test.go at
// the repository root delegates here) and under cmd/hars-bench, which
// executes them with testing.Benchmark and records the results as
// BENCH_<n>.json — the perf trajectory the ROADMAP's "fast as the hardware
// allows" north-star is measured against.
package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Case is one tracked benchmark.
type Case struct {
	Name string
	F    func(b *testing.B)
}

// Cases returns the tracked hot-path benchmarks in reporting order.
func Cases() []Case {
	return []Case{
		{"SimSecond", SimSecond},
		{"SimSecondPipeline", SimSecondPipeline},
		{"SimSecondThermal", SimSecondThermal},
		{"SearchExhaustive", SearchExhaustive},
		{"Assign", Assign},
		{"FleetQuiescent", FleetQuiescent},
		{"FleetQuiescentLockstep", FleetQuiescentLockstep},
		{"FleetScale1k", FleetScale1k},
		{"FleetScale1kActive", FleetScale1kActive},
		{"FleetScale1kFaults", FleetScale1kFaults},
		{"FleetScale1kLockstep", FleetScale1kLockstep},
		{"FleetScale1kSteady", FleetScale1kSteady},
		{"FleetScale1kSteadyOff", FleetScale1kSteadyOff},
	}
}

// simSecond measures simulating one second (1000 ticks) of an 8-thread
// workload on the default machine with ground-truth power accounting.
// Optional daemons (e.g. the thermal governor) attach to the same fixture so
// variant benchmarks differ only in what they add.
func simSecond(b *testing.B, short string, daemons ...sim.Daemon) {
	plat := hmp.Default()
	gt := power.DefaultGroundTruth(plat)
	m := sim.New(plat, sim.Config{Power: gt})
	for _, d := range daemons {
		m.AddDaemon(d)
	}
	bench, ok := workload.ByShort(short)
	if !ok {
		b.Fatalf("unknown benchmark %q", short)
	}
	m.Spawn(bench.Name, bench.New(8), 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(1 * sim.Second)
	}
}

// SimSecond is the data-parallel (SW) simulator hot-path benchmark.
func SimSecond(b *testing.B) { simSecond(b, "SW") }

// SimSecondPipeline is the pipeline (FE) variant: heavy block/unblock churn
// and migration traffic, the worst case for the incremental run queues.
func SimSecondPipeline(b *testing.B) { simSecond(b, "FE") }

// SimSecondThermal is SimSecond with the closed thermal loop attached: the
// RC model integrates and the governor's zone logic runs every tick. The
// delta against SimSecond is the whole cost of closing the loop; SimSecond
// itself is the thermal-disabled path and must stay within the BENCH_2
// budget.
func SimSecondThermal(b *testing.B) {
	gov, err := thermal.NewGovernor(thermal.Spec{Enabled: true})
	if err != nil {
		b.Fatal(err)
	}
	simSecond(b, "SW", gov)
}

// SearchEstimators builds the estimator fixture SearchExhaustive uses (the
// shared synthetic linear power model over the default platform).
func SearchEstimators() core.Estimators {
	plat := hmp.Default()
	return core.NewEstimators(plat, 8, power.SyntheticLinearModel(plat))
}

// SearchExhaustive measures one exhaustive GetNextSysState sweep
// (m = n = 4, d = 7), the per-adaptation cost of HARS-E.
func SearchExhaustive(b *testing.B) {
	est := SearchEstimators()
	plat := est.Perf.Plat
	cs := hmp.State{BigCores: 2, LittleCores: 2, BigLevel: 4, LittleLevel: 3}
	tgt := heartbeat.Target{Min: 1.8, Avg: 2.0, Max: 2.2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Search(est, cs, 3.0, tgt, core.SearchParams{M: 4, N: 4, D: 7}, core.Unbounded(plat))
		if res.Explored == 0 {
			b.Fatal("no candidates")
		}
	}
}

// Assign measures the Table 3.1 assignment computation.
func Assign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := core.Assign(8+i%8, 4, 4, 1.5)
		if a.TB+a.TL == 0 {
			b.Fatal("empty assignment")
		}
	}
}

// benchHost is the do-nothing fleet host for the quiescent benchmarks: no
// application ever arrives, so none of its methods is reachable. The
// FaultHost surface is likewise unreachable (the fault-armed benchmarks
// crash only idle nodes, which host no applications); it exists to satisfy
// the Config.Fault wiring check.
type benchHost struct{}

func (benchHost) Admit(*fleet.Node, *fleet.App) fleet.AdmitResult { return fleet.AdmitOK }
func (benchHost) Checkpoint(*fleet.Node, *fleet.App)              {}
func (benchHost) Snapshot(*fleet.Node, *fleet.App)                {}
func (benchHost) Salvage(*fleet.Node, *fleet.App)                 {}

// fleetScale measures advancing ten simulated seconds of a mostly-idle
// fleet — every node power-modeled but unmanaged, busy nodes each running
// an 8-thread workload spread evenly across the fleet, the fleet scheduler
// hooked at its default migration cadence. This is the production-scale
// shape the event-driven core exists for: wall-clock should track the busy
// nodes plus the decision points, not nodes × ticks. With faults armed the
// run crashes a band of idle nodes mid-flight and heals them later, so the
// detector deadlines, the down set, and the recovery wakes — the wake
// index's whole surface — are on the measured path. The lockstep variants
// pin the price of the reference strategy; the ratios are the tracked
// speedups.
func fleetScale(b *testing.B, nodes, busy int, faults, lockstep bool) {
	bench, ok := workload.ByShort("SW")
	if !ok {
		b.Fatal("unknown benchmark SW")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fnodes := make([]*fleet.Node, nodes)
		for id := 0; id < nodes; id++ {
			plat := hmp.Default()
			sn := sim.NewNode(id, "n", plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
			fnodes[id] = &fleet.Node{Node: sn}
		}
		f, err := fleet.New(fnodes...)
		if err != nil {
			b.Fatal(err)
		}
		f.SetLockstep(lockstep)
		cfg := fleet.Config{}
		if faults {
			cfg.Fault = &fault.Config{HeartbeatTimeout: 100 * sim.Millisecond}
		}
		fleet.NewScheduler(f, benchHost{}, cfg)
		for j := 0; j < busy; j++ {
			fnodes[j*nodes/busy].Spawn(bench.Name, bench.New(8), 10)
		}
		b.StartTimer()
		if faults {
			// Crash a band of idle nodes at 2 s, heal them at 6 s: the run
			// crosses silence, detection, down steady state, and recovery.
			f.RunUntil(2 * sim.Second)
			for id := nodes / 2; id < nodes/2+8 && id < nodes; id++ {
				fnodes[id].Fail()
			}
			f.RunUntil(6 * sim.Second)
			for id := nodes / 2; id < nodes/2+8 && id < nodes; id++ {
				fnodes[id].Heal()
			}
		}
		f.RunUntil(10 * sim.Second)
		if f.EnergyJ() <= 0 {
			b.Fatal("no energy accounted")
		}
	}
}

// fleetScaleSteady is the steady-phase shape: 1024 nodes, 51 of them busy,
// each busy node running a managed 8-thread workload under a HARS-E manager
// that adapts whenever the heartbeat rate leaves the band (a few times per
// simulated second at this target). Between completions, heartbeats, and
// adaptations every busy machine sits in a long certified steady phase —
// runnable set, placement, levels, and per-thread speeds all frozen — which
// is exactly what Machine.RunSteady turbo-executes. The steady=false twin
// runs the identical fleet through the general per-tick loop; the ratio is
// the tracked steady speedup (cmd/hars-bench -steady-ratio-floor guards it).
func fleetScaleSteady(b *testing.B, steady bool) {
	const nodes, busy = 1024, 51
	bench, ok := workload.ByShort("SW")
	if !ok {
		b.Fatal("unknown benchmark SW")
	}
	tgt := heartbeat.Target{Min: 5.0, Avg: 6.0, Max: 7.0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fnodes := make([]*fleet.Node, nodes)
		for id := 0; id < nodes; id++ {
			plat := hmp.Default()
			sn := sim.NewNode(id, "n", plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
			fnodes[id] = &fleet.Node{Node: sn}
		}
		f, err := fleet.New(fnodes...)
		if err != nil {
			b.Fatal(err)
		}
		fleet.NewScheduler(f, benchHost{}, fleet.Config{})
		for j := 0; j < busy; j++ {
			n := fnodes[j*nodes/busy]
			p := n.Spawn(bench.Name, bench.New(8), 10)
			lm := power.SyntheticLinearModel(n.Machine.Platform())
			mgr := core.NewManager(n.Machine, p, lm, tgt, core.Config{Version: core.HARSE, OverheadCPU: 4})
			n.Machine.AddDaemon(mgr)
		}
		f.SetSteady(steady)
		b.StartTimer()
		f.RunUntil(10 * sim.Second)
		if f.EnergyJ() <= 0 {
			b.Fatal("no energy accounted")
		}
	}
}

// FleetQuiescent is the event-driven core on the quiescent 128-node fleet.
func FleetQuiescent(b *testing.B) { fleetScale(b, 128, 1, false, false) }

// FleetQuiescentLockstep is the same fleet under the reference per-tick
// strategy — the denominator of the tracked speedup.
func FleetQuiescentLockstep(b *testing.B) { fleetScale(b, 128, 1, false, true) }

// FleetScale1k is the thousand-node shape: 1024 nodes, one busy.
func FleetScale1k(b *testing.B) { fleetScale(b, 1024, 1, false, false) }

// FleetScale1kActive loads ~5% of the 1024 nodes, the busiest shape the
// barrier-jumping claim is tracked at.
func FleetScale1kActive(b *testing.B) { fleetScale(b, 1024, 51, false, false) }

// FleetScale1kFaults is FleetScale1k with the failure detector armed and a
// scripted crash/heal band — the wake index under fire.
func FleetScale1kFaults(b *testing.B) { fleetScale(b, 1024, 1, true, false) }

// FleetScale1kLockstep is the 1024-node fleet under the reference per-tick
// strategy — the denominator of the scale speedup.
func FleetScale1kLockstep(b *testing.B) { fleetScale(b, 1024, 1, false, true) }

// FleetScale1kSteady is the managed-busy 1024-node fleet with the
// steady-phase turbo path on (the default everywhere).
func FleetScale1kSteady(b *testing.B) { fleetScaleSteady(b, true) }

// FleetScale1kSteadyOff is the same fleet through the general per-tick
// loop — the denominator of the steady speedup.
func FleetScale1kSteadyOff(b *testing.B) { fleetScaleSteady(b, false) }
