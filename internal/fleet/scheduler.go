package fleet

import (
	"fmt"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// Host is the callback surface through which the scheduler manipulates
// applications: the embedding layer (the scenario engine, or a test
// harness) owns the programs, targets, and managers, while the scheduler
// owns the decisions — which node, when to queue, when to move.
type Host interface {
	// Admit places the application on node n, setting app.Proc, and
	// reports success. A first admission spawns the application; an
	// admission following Checkpoint restores the held run state
	// (work-conserving migration), charging the host's checkpoint-cost
	// model. A false return (capacity vanished between the check and the
	// registration) re-queues the app.
	Admit(n *Node, app *App) bool
	// Checkpoint freezes the application's run state on node n and tears
	// the local incarnation down: unregister from the node's manager,
	// capture progress/heartbeat/wakeup state, and clear app.Proc. The
	// next Admit — usually on the migration destination in the same pass,
	// or from the queue if capacity vanished mid-move — resumes that
	// state instead of respawning.
	Checkpoint(n *Node, app *App)
}

// appState tracks where an application is in the admission lifecycle.
type appState uint8

const (
	appQueued appState = iota
	appPlaced
	appDeparted
)

// SLO is an application's service-level objective: the heartbeat rate it
// must sustain and how much extra placement latency (queueing plus
// migration freeze) its owner tolerates. The SLO-aware placement policy
// scores candidate nodes against it; the scenario layer reports per-sample
// misses against TargetHPS.
type SLO struct {
	// TargetHPS is the heartbeat rate the application must sustain.
	TargetHPS float64
	// SlackMS is the tolerated extra delay budget in milliseconds;
	// migration freeze time is scored against it (0 = a default budget).
	SlackMS int64
}

// App is the fleet scheduler's per-application record. The Host keeps its
// own payload alongside (Payload) and maintains Proc; the scheduler
// maintains everything else.
type App struct {
	// Name identifies the application fleet-wide (unique).
	Name string
	// Pinned, when non-nil, restricts placement to one node: the app
	// queues rather than land anywhere else, and it never migrates.
	Pinned *Node
	// SLO, when non-nil, is the application's service-level objective,
	// consulted by SLO-aware placement.
	SLO *SLO
	// Proc is the application's current incarnation, set by Host.Admit and
	// cleared by Host.Checkpoint. The scheduler reads it only to size
	// migrations (partition allocation lookup).
	Proc *sim.Process
	// Payload is the host's per-application state, opaque to the scheduler.
	Payload any

	seq        int // arrival order, for deterministic tie-breaking
	state      appState
	node       *Node
	placedAt   sim.Time
	everQueued bool
	migrations int
}

// Node returns the node the application currently runs on (nil while
// queued or after departure).
func (a *App) Node() *Node { return a.node }

// Queued reports whether the application is waiting for capacity.
func (a *App) Queued() bool { return a.state == appQueued }

// Placed reports whether the application is currently running on a node.
func (a *App) Placed() bool { return a.state == appPlaced }

// EverQueued reports whether the application ever had to wait for a free
// core partition before admission.
func (a *App) EverQueued() bool { return a.everQueued }

// Migrations returns how many times the scheduler moved the application
// between nodes.
func (a *App) Migrations() int { return a.migrations }

// Config tunes the scheduler. The zero value selects the least-loaded
// policy, a 250 ms saturation check, and a two-core migration destination
// floor.
type Config struct {
	// Policy places arrivals and picks migration destinations. Nil selects
	// least-loaded.
	Policy Policy

	// MigrateEvery is the period of the saturation check that may migrate
	// one application per saturated node. Zero selects 250 ms; negative
	// disables migration entirely. With a single node migration never
	// fires (there is nowhere to go).
	MigrateEvery sim.Time

	// MigrateMinFree is the free-core floor a destination must offer
	// before an application is moved to it (default 2): migrating onto a
	// nearly-full node would just spread the saturation.
	MigrateMinFree int
}

func (c Config) withDefaults() Config {
	if c.Policy == nil {
		c.Policy = leastLoaded{}
	}
	if c.MigrateEvery == 0 {
		c.MigrateEvery = 250 * sim.Millisecond
	}
	if c.MigrateMinFree <= 0 {
		c.MigrateMinFree = 2
	}
	return c
}

// Stats is the scheduler's decision rollup.
type Stats struct {
	Admitted   int // successful admissions (arrivals + re-admissions after migration)
	Queued     int // arrivals that had to wait for capacity at least once
	QueueLen   int // applications still waiting right now
	Migrations int // node-to-node application moves
}

// Scheduler is the fleet's admission and migration brain: a per-tick fleet
// hook that places arrivals by policy, queues them FIFO when no admissible
// node exists, admits them as capacity frees up, and moves applications
// off saturated nodes.
type Scheduler struct {
	f    *Fleet
	host Host
	cfg  Config

	apps  []*App
	queue []*App // FIFO, arrival order

	admitted    int
	queuedTotal int
	migrations  int
	nextMigrate sim.Time
}

// NewScheduler builds a scheduler over the fleet and registers it as a
// per-tick hook.
func NewScheduler(f *Fleet, host Host, cfg Config) *Scheduler {
	s := &Scheduler{f: f, host: host, cfg: cfg.withDefaults()}
	s.nextMigrate = f.Now() + s.cfg.MigrateEvery
	f.AddHook(s)
	return s
}

// Policy returns the scheduler's placement policy.
func (s *Scheduler) Policy() Policy { return s.cfg.Policy }

// Apps returns every application the scheduler has seen, in arrival order.
func (s *Scheduler) Apps() []*App { return s.apps }

// Stats returns the decision rollup so far.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Admitted:   s.admitted,
		Queued:     s.queuedTotal,
		QueueLen:   len(s.queue),
		Migrations: s.migrations,
	}
}

// Arrive hands a new application to the scheduler: it is admitted to the
// policy's pick right away when possible, and queued FIFO otherwise. Apps
// already waiting get first claim on any capacity — the queue drains
// before the newcomer is considered, so an arrival coinciding with a
// departure cannot jump the line.
func (s *Scheduler) Arrive(app *App) {
	app.seq = len(s.apps)
	s.apps = append(s.apps, app)
	s.reconcileAll()
	s.drain()
	if s.tryAdmit(app) {
		return
	}
	app.state = appQueued
	app.everQueued = true
	s.queuedTotal++
	s.queue = append(s.queue, app)
}

// reconcileAll syncs every partitioned node's tables with its machine once
// per decision point, so the capacity checks below are pure reads.
func (s *Scheduler) reconcileAll() {
	for _, n := range s.f.Nodes() {
		n.Reconcile()
	}
}

// anyAdmittable reports whether any node has admission capacity right now
// (tables already reconciled).
func (s *Scheduler) anyAdmittable() bool {
	for _, n := range s.f.Nodes() {
		if n.CanAdmit() {
			return true
		}
	}
	return false
}

// Depart removes an application from scheduling: a queued app is cancelled
// (it never ran), a placed app is released. Machine-level teardown of a
// placed app is the caller's business — the scheduler only forgets it.
func (s *Scheduler) Depart(app *App) {
	if app.state == appQueued {
		for i, q := range s.queue {
			if q == app {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
	}
	app.state = appDeparted
	app.node = nil
}

// Tick implements Hook: drain the admission queue against freshly freed
// capacity, then run the periodic saturation/migration pass. Partition
// tables are reconciled once up front; the per-node checks are pure reads
// (Register/Unregister keep the tables current within the pass).
func (s *Scheduler) Tick(f *Fleet) {
	due := s.cfg.MigrateEvery > 0 && len(f.Nodes()) > 1 && f.Now() >= s.nextMigrate
	if len(s.queue) == 0 && !due {
		return
	}
	s.reconcileAll()
	s.drain()
	if due {
		s.migratePass()
		s.nextMigrate = f.Now() + s.cfg.MigrateEvery
	}
}

// drain admits queued applications FIFO against current capacity (tables
// already reconciled). While everything is saturated — the common state of
// a backed-up queue — the O(nodes) admittability check is the whole cost:
// no per-app placement scoring.
func (s *Scheduler) drain() {
	if len(s.queue) == 0 || !s.anyAdmittable() {
		return
	}
	kept := s.queue[:0]
	for _, app := range s.queue {
		if !s.tryAdmit(app) {
			kept = append(kept, app)
		}
	}
	s.queue = kept
}

// tryAdmit places the app on the best admissible node right now, returning
// false when none exists. The caller has reconciled the partition tables.
func (s *Scheduler) tryAdmit(app *App) bool {
	n := s.pick(app, nil, 0)
	if n == nil || !s.host.Admit(n, app) {
		return false
	}
	app.state = appPlaced
	app.node = n
	app.placedAt = s.f.Now()
	s.admitted++
	return true
}

// pick returns the admissible node the policy prefers (highest score, ties
// to the lowest index), honouring pinning, an optional exclusion, and a
// free-core floor (migration destinations must offer real headroom).
func (s *Scheduler) pick(app *App, exclude *Node, minFree int) *Node {
	var best *Node
	var bestScore float64
	for _, n := range s.f.Nodes() {
		if n == exclude {
			continue
		}
		if app.Pinned != nil && n != app.Pinned {
			continue
		}
		if !n.CanAdmit() {
			continue
		}
		if minFree > 0 && n.FreeCores(hmp.Big)+n.FreeCores(hmp.Little) < minFree {
			continue
		}
		score := s.cfg.Policy.Score(n, app)
		if best == nil || score > bestScore {
			best, bestScore = n, score
		}
	}
	return best
}

// migratePass moves at most one application off every saturated
// partitioned node: the node has no free core in either cluster, so new
// arrivals there queue and its own applications cannot grow. The victim is
// the smallest-allocation unpinned application (cheapest to move; ties to
// the most recent arrival), the destination is the policy's preferred node
// among those with MigrateMinFree free cores — strictly more free cores
// than the victim already holds, so every move gives the victim room to
// grow and frees its whole allocation on the source — and only if the
// policy does not score the destination below the victim's current node,
// so a move whose predicted gain does not cover its cost (the SLO-aware
// policy charges the checkpoint delay against the app's slack here) simply
// does not happen. The
// strict-gain rule is also what makes the pass stable: an app that
// saturates every node it lands on finds no destination better than where
// it sits, instead of ping-ponging between equally-sized nodes every pass.
func (s *Scheduler) migratePass() {
	now := s.f.Now()
	for _, src := range s.f.Nodes() {
		if src.MP == nil {
			continue
		}
		if src.MP.FreeCores(hmp.Big)+src.MP.FreeCores(hmp.Little) > 0 {
			continue
		}
		victim, alloc := s.victimOn(src, now)
		if victim == nil {
			continue
		}
		minFree := s.cfg.MigrateMinFree
		if alloc+1 > minFree {
			minFree = alloc + 1
		}
		dest := s.pick(victim, src, minFree)
		if dest == nil {
			continue
		}
		if s.cfg.Policy.Score(dest, victim) < s.cfg.Policy.Score(src, victim) {
			continue
		}
		s.host.Checkpoint(src, victim)
		if s.host.Admit(dest, victim) {
			victim.node = dest
			victim.placedAt = now
			victim.migrations++
			s.migrations++
			s.admitted++
		} else {
			// Capacity vanished mid-move: the app rejoins the queue and the
			// next tick's drain re-places it. It counts toward queuedTotal
			// only once per lifetime (Stats.Queued counts arrivals that
			// waited, not waits).
			victim.state = appQueued
			victim.node = nil
			if !victim.everQueued {
				victim.everQueued = true
				s.queuedTotal++
			}
			s.queue = append(s.queue, victim)
		}
	}
}

// victimOn picks the application to move off a saturated node (and returns
// its current core allocation): unpinned, past the cooldown, smallest
// partition allocation, ties to the latest arrival. The cooldown is
// strict — an app placed exactly one migration period ago is still
// cooling — so an app moved in one pass is never eligible again in the
// very next pass: bouncing between two nodes on consecutive passes is
// impossible by construction, whatever the policy scores say.
func (s *Scheduler) victimOn(src *Node, now sim.Time) (*App, int) {
	var victim *App
	victimAlloc := 0
	for _, app := range s.apps {
		if app.state != appPlaced || app.node != src || app.Pinned != nil || app.Proc == nil {
			continue
		}
		if now-app.placedAt <= s.cfg.MigrateEvery {
			continue
		}
		b, l := src.MP.Allocation(app.Proc)
		alloc := b + l
		if victim == nil || alloc < victimAlloc || (alloc == victimAlloc && app.seq > victim.seq) {
			victim, victimAlloc = app, alloc
		}
	}
	return victim, victimAlloc
}

// CheckInvariants verifies the scheduler's conservation properties: every
// application is in exactly one lifecycle state, placed applications sit on
// exactly one fleet node (and on that node's partition manager, when it has
// one), queued applications sit on none, and no process is registered with
// two nodes' managers. Strict scenario runs call it after every action.
func (s *Scheduler) CheckInvariants() error {
	queued := make(map[*App]bool, len(s.queue))
	for _, app := range s.queue {
		if queued[app] {
			return fmt.Errorf("fleet: app %q queued twice", app.Name)
		}
		queued[app] = true
		if app.state != appQueued {
			return fmt.Errorf("fleet: app %q in queue but not in queued state", app.Name)
		}
	}
	owner := make(map[*sim.Process]*Node)
	for _, n := range s.f.Nodes() {
		if n.MP == nil {
			continue
		}
		for _, p := range n.MP.Apps() {
			if prev, ok := owner[p]; ok {
				return fmt.Errorf("fleet: process %q registered on nodes %q and %q", p.Name, prev.Name, n.Name)
			}
			owner[p] = n
		}
	}
	for _, app := range s.apps {
		switch app.state {
		case appQueued:
			if !queued[app] {
				return fmt.Errorf("fleet: app %q in queued state but not in queue", app.Name)
			}
			if app.node != nil {
				return fmt.Errorf("fleet: queued app %q has a node", app.Name)
			}
		case appPlaced:
			if queued[app] {
				return fmt.Errorf("fleet: placed app %q still in queue", app.Name)
			}
			if app.node == nil {
				return fmt.Errorf("fleet: placed app %q has no node", app.Name)
			}
			if app.Pinned != nil && app.node != app.Pinned {
				return fmt.Errorf("fleet: app %q pinned to %q but placed on %q",
					app.Name, app.Pinned.Name, app.node.Name)
			}
			if app.Proc != nil && app.node.MP != nil {
				if owner[app.Proc] != app.node {
					return fmt.Errorf("fleet: app %q placed on %q but its process is registered elsewhere",
						app.Name, app.node.Name)
				}
			}
		case appDeparted:
			if queued[app] {
				return fmt.Errorf("fleet: departed app %q still in queue", app.Name)
			}
		}
	}
	return nil
}
