package power

import (
	"math"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
)

func fullBusy(n int) []float64 {
	u := make([]float64, n)
	for i := range u {
		u[i] = 1
	}
	return u
}

func TestGroundTruthShape(t *testing.T) {
	plat := hmp.Default()
	gt := DefaultGroundTruth(plat)

	idle := make([]float64, 4)
	big0 := gt.ClusterPower(hmp.Big, 0, idle)
	if big0 <= 0 {
		t.Fatal("idle big cluster should still leak power")
	}
	bigMaxFull := gt.ClusterPower(hmp.Big, 8, fullBusy(4))
	littleMaxFull := gt.ClusterPower(hmp.Little, 5, fullBusy(4))
	if bigMaxFull < 4 || bigMaxFull > 11 {
		t.Errorf("big cluster at max = %.2f W, want 4-11 W (A15-like)", bigMaxFull)
	}
	if littleMaxFull < 0.8 || littleMaxFull > 2.5 {
		t.Errorf("little cluster at max = %.2f W, want 0.8-2.5 W (A7-like)", littleMaxFull)
	}
	if bigMaxFull/littleMaxFull < 3 {
		t.Errorf("big/little power ratio = %.2f, want > 3", bigMaxFull/littleMaxFull)
	}
}

func TestGroundTruthMonotone(t *testing.T) {
	plat := hmp.Default()
	gt := DefaultGroundTruth(plat)
	// Monotone in frequency level.
	for lv := 1; lv <= 8; lv++ {
		if gt.ClusterPower(hmp.Big, lv, fullBusy(4)) <= gt.ClusterPower(hmp.Big, lv-1, fullBusy(4)) {
			t.Errorf("big power not monotone in level at %d", lv)
		}
	}
	// Monotone in utilization.
	prev := -1.0
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 1} {
		w := gt.ClusterPower(hmp.Little, 3, []float64{u, u, u, u})
		if w <= prev {
			t.Errorf("little power not monotone in util at %v", u)
		}
		prev = w
	}
	// Monotone in busy core count.
	prev = -1.0
	for n := 0; n <= 4; n++ {
		busy := make([]float64, 4)
		for i := 0; i < n; i++ {
			busy[i] = 1
		}
		w := gt.ClusterPower(hmp.Big, 4, busy)
		if w <= prev {
			t.Errorf("big power not monotone in busy cores at %d", n)
		}
		prev = w
	}
}

func TestSensorSampling(t *testing.T) {
	plat := hmp.Default()
	gt := DefaultGroundTruth(plat)
	m := sim.New(plat, sim.Config{Power: gt})
	bench := &Microbench{Threads: 2, Util: 1, Period: 10 * sim.Millisecond, Speed: plat.FreqScale(hmp.Big, 8)}
	p := m.Spawn("b", bench, 4)
	p.SetAffinity(0, hmp.MaskOf(4))
	p.SetAffinity(1, hmp.MaskOf(5))
	s := NewSensor()
	m.AddDaemon(s)
	m.Run(3 * sim.Second)
	want := int(3*sim.Second/SensorPeriod) - 1
	if n := len(s.Samples()); n < want || n > want+2 {
		t.Fatalf("sensor samples = %d, want ≈%d", n, want)
	}
	// Mean sensor power should match the machine's energy counter.
	meanTotal := s.MeanWatts(hmp.Big) + s.MeanWatts(hmp.Little)
	if math.Abs(meanTotal-m.AvgPowerW()) > 0.15 {
		t.Errorf("sensor mean %.3f W vs machine avg %.3f W", meanTotal, m.AvgPowerW())
	}
	smp := s.Samples()[0]
	if smp.TotalWatts() != smp.WattsBy[hmp.Big]+smp.WattsBy[hmp.Little] {
		t.Error("TotalWatts inconsistent")
	}
	if s.MeanWatts(hmp.Big) <= s.MeanWatts(hmp.Little) {
		t.Error("busy big cluster should outdraw idle little cluster")
	}
}

func TestSensorEmpty(t *testing.T) {
	s := NewSensor()
	if s.MeanWatts(hmp.Big) != 0 {
		t.Error("MeanWatts on empty sensor should be 0")
	}
}

func TestMicrobenchDutyCycle(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	m.SetLevel(hmp.Little, 0)
	bench := &Microbench{Threads: 1, Util: 0.5, Period: 10 * sim.Millisecond, Speed: 1.0}
	p := m.Spawn("b", bench, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	m.Run(10 * sim.Second)
	// 50% duty cycle on a 1 unit/s core → ≈5 units of work, ≈50% util.
	if got := p.WorkDone(); math.Abs(got-5) > 0.3 {
		t.Errorf("WorkDone = %v, want ≈5", got)
	}
	if u := m.Util(0); math.Abs(u-0.5) > 0.05 {
		t.Errorf("core util = %v, want ≈0.5", u)
	}
}

func quickProfileCfg() ProfileConfig {
	return ProfileConfig{
		Utils:  []float64{0.5, 1.0},
		RunPer: 600 * sim.Millisecond,
	}
}

func TestProfileAndFit(t *testing.T) {
	plat := hmp.Default()
	gt := DefaultGroundTruth(plat)
	lm, err := ProfileAndFit(plat, gt, quickProfileCfg())
	if err != nil {
		t.Fatal(err)
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		levels := plat.Clusters[k].Levels()
		if len(lm.Alpha[k]) != levels || len(lm.Beta[k]) != levels {
			t.Fatalf("model for %s has wrong level count", k)
		}
		for lv := 0; lv < levels; lv++ {
			if lm.Alpha[k][lv] <= 0 {
				t.Errorf("%s level %d: alpha = %v, want > 0", k, lv, lm.Alpha[k][lv])
			}
			if lm.R2[k][lv] < 0.95 {
				t.Errorf("%s level %d: R² = %v, want ≥ 0.95", k, lv, lm.R2[k][lv])
			}
		}
		// Alpha grows with frequency (dynamic power scaling).
		if lm.Alpha[k][levels-1] <= lm.Alpha[k][0] {
			t.Errorf("%s: alpha not increasing with frequency", k)
		}
	}
	// The fitted model should predict ground truth within ~15% at a busy
	// on-grid point.
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		lv := plat.Clusters[k].MaxLevel()
		truth := gt.ClusterPower(k, lv, fullBusy(plat.Clusters[k].Cores))
		est := lm.Estimate(k, lv, plat.Clusters[k].Cores, 1.0)
		if rel := math.Abs(est-truth) / truth; rel > 0.15 {
			t.Errorf("%s max: est %.2f vs truth %.2f (rel %.2f)", k, est, truth, rel)
		}
	}
}

func TestLinearModelEstimateEdges(t *testing.T) {
	lm := &LinearModel{}
	lm.Alpha[hmp.Big] = []float64{1, 2}
	lm.Beta[hmp.Big] = []float64{0.5, 0.5}
	lm.Alpha[hmp.Little] = []float64{0.2}
	lm.Beta[hmp.Little] = []float64{-5} // pathological negative intercept

	if got := lm.Estimate(hmp.Big, 1, 0, 1); got != 0 {
		t.Errorf("zero cores should estimate 0, got %v", got)
	}
	if got := lm.Estimate(hmp.Big, 99, 2, 0.5); got != 2*2*0.5+0.5 {
		t.Errorf("level clamp high failed: %v", got)
	}
	if got := lm.Estimate(hmp.Big, -3, 1, 1); got != 1*1*1+0.5 {
		t.Errorf("level clamp low failed: %v", got)
	}
	if got := lm.Estimate(hmp.Little, 0, 1, 0.5); got != 0 {
		t.Errorf("negative estimates clamp to 0, got %v", got)
	}
	st := hmp.State{BigCores: 1, LittleCores: 1, BigLevel: 0, LittleLevel: 0}
	sum := lm.EstimateState(st, 1, 1, 1, 1)
	if sum != lm.Estimate(hmp.Big, 0, 1, 1)+lm.Estimate(hmp.Little, 0, 1, 1) {
		t.Error("EstimateState should sum cluster estimates")
	}
	if lm.String() == "" {
		t.Error("String empty")
	}
}

func TestFitLinearModelErrors(t *testing.T) {
	plat := hmp.Default()
	if _, err := FitLinearModel(plat, nil); err == nil {
		t.Error("fitting with no points should error")
	}
	// Degenerate: all points at the same x.
	var pts []ProfilePoint
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		for lv := 0; lv < plat.Clusters[k].Levels(); lv++ {
			pts = append(pts,
				ProfilePoint{Cluster: k, Level: lv, Cores: 1, Util: 1, Watts: 2},
				ProfilePoint{Cluster: k, Level: lv, Cores: 1, Util: 1, Watts: 2.1})
		}
	}
	if _, err := FitLinearModel(plat, pts); err == nil {
		t.Error("constant-x profile should be degenerate")
	}
}
