package fault

import (
	"math/rand"

	"repro/internal/sim"
)

// Config is the resolved runtime configuration the fleet scheduler consumes:
// the spec's millisecond knobs converted to simulated time with defaults
// applied. Build one with Spec.Runtime.
type Config struct {
	// HeartbeatTimeout is the silence after which the detector declares a
	// node failed.
	HeartbeatTimeout sim.Time
	// CheckpointEvery is the background snapshot cadence; ≤ 0 disables
	// background checkpoints.
	CheckpointEvery sim.Time
	// TransferFailProb is the per-restore transient transfer failure
	// probability in [0, 1).
	TransferFailProb float64
	// RetryBase, RetryMax, RetryJitter shape the transfer-retry backoff.
	RetryBase, RetryMax, RetryJitter sim.Time
	// Seed is the spec seed; derived streams offset it (see NewBackoff,
	// NewCoin) so the expansion, jitter, and coin draws stay independent.
	Seed int64
}

// Runtime resolves the spec into the scheduler-facing configuration.
func (s *Spec) Runtime() Config {
	c := Config{
		HeartbeatTimeout: DefaultHeartbeatTimeoutMS * sim.Millisecond,
		CheckpointEvery:  DefaultCheckpointEveryMS * sim.Millisecond,
		TransferFailProb: s.TransferFailProb,
		RetryBase:        DefaultRetryBaseMS * sim.Millisecond,
		RetryMax:         DefaultRetryMaxMS * sim.Millisecond,
		RetryJitter:      DefaultRetryJitterMS * sim.Millisecond,
		Seed:             s.Seed,
	}
	if s.HeartbeatTimeoutMS > 0 {
		c.HeartbeatTimeout = s.HeartbeatTimeoutMS * sim.Millisecond
	}
	if s.CheckpointEveryMS != 0 {
		c.CheckpointEvery = s.CheckpointEveryMS * sim.Millisecond
	}
	if s.RetryBaseMS > 0 {
		c.RetryBase = s.RetryBaseMS * sim.Millisecond
	}
	if s.RetryMaxMS > 0 {
		c.RetryMax = s.RetryMaxMS * sim.Millisecond
	}
	if s.RetryJitterMS > 0 {
		c.RetryJitter = s.RetryJitterMS * sim.Millisecond
	}
	return c
}

// Detector is the heartbeat-timeout failure detector: each node proves
// liveness by beating (its machine still stepping); a node silent for
// longer than the timeout is declared down until it beats again. Detection
// is therefore delayed by up to the timeout — the window during which a
// dead node's apps keep losing work.
type Detector struct {
	timeout  sim.Time
	lastBeat []sim.Time
	down     []bool
}

// NewDetector builds a detector over `nodes` nodes. Every node starts
// presumed alive with a fresh beat at time `now`.
func NewDetector(nodes int, timeout sim.Time, now sim.Time) *Detector {
	d := &Detector{
		timeout:  timeout,
		lastBeat: make([]sim.Time, nodes),
		down:     make([]bool, nodes),
	}
	for i := range d.lastBeat {
		d.lastBeat[i] = now
	}
	return d
}

// Observe feeds one liveness observation for node i at time now and reports
// state transitions: failed=true the instant the node is declared down,
// recovered=true the instant a down node proves alive again.
func (d *Detector) Observe(i int, alive bool, now sim.Time) (failed, recovered bool) {
	if alive {
		d.lastBeat[i] = now
		if d.down[i] {
			d.down[i] = false
			return false, true
		}
		return false, false
	}
	if !d.down[i] && now-d.lastBeat[i] > d.timeout {
		d.down[i] = true
		return true, false
	}
	return false, false
}

// Down reports whether node i is currently declared failed.
func (d *Detector) Down(i int) bool { return d.down[i] }

// Deadline returns the last instant at which silence from node i is still
// tolerated: an Observe(i, false, now) with now > Deadline(i) declares the
// node down. Event-driven schedulers use Deadline(i)+1 as the earliest
// wake time at which a detection pass over a silent node can do anything.
func (d *Detector) Deadline(i int) sim.Time { return d.lastBeat[i] + d.timeout }

// Backoff computes capped exponential retry delays with seeded jitter:
// attempt n (1-based) waits min(base·2ⁿ⁻¹, max) plus a uniform draw in
// [0, jitter]. The jitter stream is seeded, so retry schedules replay
// identically.
type Backoff struct {
	base, max, jitter sim.Time
	rng               *rand.Rand
}

// NewBackoff builds a backoff from the config (jitter stream seeded at
// Seed+1 to stay independent of the expansion stream).
func NewBackoff(c Config) *Backoff {
	return &Backoff{
		base:   c.RetryBase,
		max:    c.RetryMax,
		jitter: c.RetryJitter,
		rng:    rand.New(rand.NewSource(c.Seed + 1)),
	}
}

// Delay returns the wait before retry attempt `retries` (1-based; values
// below 1 are treated as 1).
func (b *Backoff) Delay(retries int) sim.Time {
	if retries < 1 {
		retries = 1
	}
	d := b.base
	for i := 1; i < retries && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	if b.jitter > 0 {
		d += b.rng.Int63n(int64(b.jitter) + 1)
	}
	return d
}

// Coin is the transient transfer-failure source: each Flip fails with the
// configured probability, drawn from a seeded stream (Seed+2). A zero
// probability never draws, so fault specs without transfer failures keep
// the stream untouched.
type Coin struct {
	p   float64
	rng *rand.Rand
}

// NewCoin builds the transfer-failure coin from the config.
func NewCoin(c Config) *Coin {
	return &Coin{p: c.TransferFailProb, rng: rand.New(rand.NewSource(c.Seed + 2))}
}

// Flip reports whether this transfer fails.
func (c *Coin) Flip() bool {
	return c.p > 0 && c.rng.Float64() < c.p
}
