package core

import (
	"testing"
	"testing/quick"

	"repro/internal/hmp"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestThreadClustersChunk(t *testing.T) {
	got := ThreadClusters(8, 4, Chunk)
	want := []bool{false, false, false, false, true, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunk = %v, want %v (Fig 3.2a)", got, want)
		}
	}
}

func TestThreadClustersInterleaved(t *testing.T) {
	got := ThreadClusters(8, 4, Interleaved)
	want := []bool{false, true, false, true, false, true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleaved = %v, want %v (Fig 3.2b)", got, want)
		}
	}
}

func TestThreadClustersInterleavedUneven(t *testing.T) {
	got := ThreadClusters(8, 6, Interleaved)
	// 6 big slots spread over 8 threads: 2 gaps, roughly evenly placed.
	big := 0
	for _, b := range got {
		if b {
			big++
		}
	}
	if big != 6 {
		t.Fatalf("interleaved big count = %d, want 6", big)
	}
	// No more than 2 consecutive littles and at least one little in each
	// half for an even spread.
	if got[0] && got[4] {
		littleFirst, littleSecond := 0, 0
		for i := 0; i < 4; i++ {
			if !got[i] {
				littleFirst++
			}
			if !got[i+4] {
				littleSecond++
			}
		}
		if littleFirst == 0 || littleSecond == 0 {
			t.Fatalf("interleave not spread: %v", got)
		}
	}
}

// TestThreadClustersCountProperty: big count always equals clamped TB.
func TestThreadClustersCountProperty(t *testing.T) {
	f := func(t8, tb8 uint8, inter bool) bool {
		T := int(t8%32) + 1
		TB := int(tb8 % 40) // may exceed T: must clamp
		kind := Chunk
		if inter {
			kind = Interleaved
		}
		got := ThreadClusters(T, TB, kind)
		if len(got) != T {
			return false
		}
		big := 0
		for _, b := range got {
			if b {
				big++
			}
		}
		want := TB
		if want > T {
			want = T
		}
		return big == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestApplySchedule(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	prog := &workload.DataParallel{
		AppName: "a", Threads: 8, BigFactor: 1.5, Unit: workload.ConstUnit(0.5),
	}
	p := m.Spawn("a", prog, 4)
	asg := Assignment{TB: 6, TL: 2, CBU: 4, CLU: 2}
	ApplySchedule(p, asg, Chunk,
		DefaultCores(plat, hmp.Big, 4), DefaultCores(plat, hmp.Little, 4))
	littleMask := hmp.MaskOf(0, 1) // C_L,U = 2 of the 4 allocated
	bigMask := hmp.MaskOf(4, 5, 6, 7)
	for i := 0; i < 2; i++ {
		if got := p.Threads[i].Affinity(); got != littleMask {
			t.Errorf("thread %d mask = %v, want little %v", i, got.CPUs(), littleMask.CPUs())
		}
	}
	for i := 2; i < 8; i++ {
		if got := p.Threads[i].Affinity(); got != bigMask {
			t.Errorf("thread %d mask = %v, want big %v", i, got.CPUs(), bigMask.CPUs())
		}
	}
}

func TestApplyScheduleFallsBackWhenClusterEmpty(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	prog := &workload.DataParallel{
		AppName: "a", Threads: 4, BigFactor: 1.5, Unit: workload.ConstUnit(0.5),
	}
	p := m.Spawn("a", prog, 4)
	// Assignment wants big threads, but no big cores are allocated:
	// everything must land on little.
	asg := Assignment{TB: 2, TL: 2, CBU: 2, CLU: 2}
	ApplySchedule(p, asg, Chunk, nil, DefaultCores(plat, hmp.Little, 2))
	for i := 0; i < 4; i++ {
		if got := p.Threads[i].Affinity(); got != hmp.MaskOf(0, 1) {
			t.Errorf("thread %d mask = %v, want little fallback", i, got.CPUs())
		}
	}
}

func TestApplySchedulePanicsWithNoCores(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{})
	prog := &workload.DataParallel{
		AppName: "a", Threads: 2, BigFactor: 1.5, Unit: workload.ConstUnit(0.5),
	}
	p := m.Spawn("a", prog, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic with no cores at all")
		}
	}()
	ApplySchedule(p, Assignment{TB: 1, TL: 1, CBU: 1, CLU: 1}, Chunk, nil, nil)
}

func TestDefaultCores(t *testing.T) {
	plat := hmp.Default()
	if got := DefaultCores(plat, hmp.Big, 2); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("DefaultCores(big, 2) = %v", got)
	}
	if got := DefaultCores(plat, hmp.Little, 99); len(got) != 4 {
		t.Errorf("DefaultCores clamps to cluster size, got %v", got)
	}
	if got := DefaultCores(plat, hmp.Big, 0); len(got) != 0 {
		t.Errorf("DefaultCores(big, 0) = %v", got)
	}
}

func TestSchedulerKindString(t *testing.T) {
	if Chunk.String() != "chunk" || Interleaved.String() != "interleaved" {
		t.Error("SchedulerKind strings wrong")
	}
	if SchedulerKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}
