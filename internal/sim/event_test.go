package sim_test

import (
	"math"
	"testing"

	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// tickCounter is a daemon that does NOT implement sim.Sleeper: it must force
// the machine into per-tick stepping, and counts the ticks to prove it ran.
type tickCounter struct{ n int }

func (d *tickCounter) Tick(*sim.Machine) { d.n++ }

// napper is a periodic Sleeper daemon: it records the times it was invoked
// at while awake and sleeps between its deadlines.
type napper struct {
	period sim.Time
	next   sim.Time
	seen   []sim.Time
}

func (d *napper) Tick(m *sim.Machine) {
	if m.Now() < d.next {
		return
	}
	d.seen = append(d.seen, m.Now())
	d.next = m.Now() + d.period
}

func (d *napper) NextWake(m *sim.Machine) sim.Time { return d.next }

// TestFastForwardMatchesStepping is the machine-level equivalence property:
// RunUntil (which jumps inert stretches) must leave the machine bit-for-bit
// where an explicit per-tick Step loop leaves it — clock, energy (exact
// float bits, because FastForward replays the memoized additions instead of
// multiplying), retired work, heartbeats, and timer deliveries.
func TestFastForwardMatchesStepping(t *testing.T) {
	build := func() (*sim.Machine, *sim.Process) {
		plat := hmp.Default()
		m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		// Wakes at 200 ms via a timer, spins briefly, then goes idle again
		// each time a unit completes: plenty of inert stretches to jump.
		p := m.Spawn("s", &spinner{threads: 2, unit: 0.05, delay: 200 * sim.Millisecond, beats: true}, 4)
		return m, p
	}

	fast, fp := build()
	slow, sp := build()

	end := sim.Time(1 * sim.Second)
	fast.RunUntil(end)
	for slow.Now() < end {
		slow.Step()
	}

	if fast.Now() != slow.Now() {
		t.Fatalf("clocks diverged: %d != %d", fast.Now(), slow.Now())
	}
	if fb, sb := math.Float64bits(fast.EnergyJ()), math.Float64bits(slow.EnergyJ()); fb != sb {
		t.Fatalf("energy diverged: %x != %x (%v vs %v)", fb, sb, fast.EnergyJ(), slow.EnergyJ())
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		if fast.ClusterEnergyJ(k) != slow.ClusterEnergyJ(k) {
			t.Fatalf("cluster %v energy diverged: %v != %v", k, fast.ClusterEnergyJ(k), slow.ClusterEnergyJ(k))
		}
	}
	if fp.WorkDone() != sp.WorkDone() {
		t.Fatalf("work diverged: %v != %v", fp.WorkDone(), sp.WorkDone())
	}
	if fp.HB.Count() != sp.HB.Count() {
		t.Fatalf("heartbeats diverged: %d != %d", fp.HB.Count(), sp.HB.Count())
	}
}

// TestInertUntilBounds pins the fast-path gate: a warm idle machine is inert
// to the limit, the first pending timer bounds the jump, and any runnable
// thread pins the machine to per-tick stepping.
func TestInertUntilBounds(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})

	// A cold machine has no warm energy memo: not inert.
	if u := m.InertUntil(m.Now() + sim.Second); u != m.Now() {
		t.Fatalf("cold machine reported inert until %d", u)
	}
	m.Step() // warms the memo
	limit := m.Now() + sim.Second
	if u := m.InertUntil(limit); u != limit {
		t.Fatalf("warm idle machine inert until %d, want %d", u, limit)
	}

	// A pending timer bounds the jump (WakeAt deadlines are absolute).
	p := m.Spawn("s", &spinner{threads: 1, unit: 0.1, delay: 300 * sim.Millisecond}, 4)
	wake := sim.Time(300 * sim.Millisecond)
	if u := m.InertUntil(limit); u != wake {
		t.Fatalf("timer-bounded jump to %d, want %d", u, wake)
	}

	// Past the wakeup the thread is runnable: not inert at all.
	m.RunUntil(wake + sim.Millisecond)
	if u := m.InertUntil(limit); u != m.Now() {
		t.Fatalf("busy machine reported inert until %d (now %d)", u, m.Now())
	}
	_ = p
}

// TestNonSleeperDaemonForcesLockstep pins the conservative default: a daemon
// that does not implement Sleeper runs on every tick even across an
// otherwise-idle run, so RunUntil may not skip any.
func TestNonSleeperDaemonForcesLockstep(t *testing.T) {
	m := sim.New(hmp.Default(), sim.Config{})
	d := &tickCounter{}
	m.AddDaemon(d)
	m.RunUntil(100 * sim.Millisecond)
	if want := 100; d.n != want {
		t.Fatalf("non-Sleeper daemon ticked %d times, want %d", d.n, want)
	}
}

// TestSleeperDaemonWakesExactly pins the Sleeper contract end to end: a
// periodic sleeper is invoked at exactly the ticks its deadlines name, with
// the idle time in between jumped, and the invocation times match the
// per-tick reference run.
func TestSleeperDaemonWakesExactly(t *testing.T) {
	run := func(step bool) []sim.Time {
		m := sim.New(hmp.Default(), sim.Config{})
		d := &napper{period: 70 * sim.Millisecond}
		m.AddDaemon(d)
		end := sim.Time(500 * sim.Millisecond)
		if step {
			for m.Now() < end {
				m.Step()
			}
		} else {
			m.RunUntil(end)
		}
		return d.seen
	}
	fast, slow := run(false), run(true)
	if len(fast) != len(slow) {
		t.Fatalf("wake counts diverged: %d != %d (%v vs %v)", len(fast), len(slow), fast, slow)
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("wake %d at %d, reference at %d", i, fast[i], slow[i])
		}
	}
	if len(fast) < 7 {
		t.Fatalf("expected ≥7 wakes over 500 ms at 70 ms period, got %d", len(fast))
	}
}
