package repro

import (
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/thermal"
)

// These differential tests pin the scenario engine's static path to the
// direct-run path: a scenario with zero dynamic events must drive the
// machine through bit-for-bit the same trajectory as constructing and
// running it by hand, so the engine reproduces the same golden digests as
// equivalence_test.go. Any drift here means the dynamic-event hooks leaked
// into event-free behaviour.

// runScenario executes sc and returns the machine for digesting.
func runScenario(t *testing.T, sc *scenario.Scenario) (*sim.Machine, *scenario.Result) {
	t.Helper()
	res, err := scenario.Run(sc, scenario.Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Machine, res
}

func TestScenarioEquivalenceSWMaskBalancer(t *testing.T) {
	m, _ := runScenario(t, &scenario.Scenario{
		Name:       "static-sw",
		Manager:    scenario.ManagerNone,
		DurationMS: 5000,
		Apps:       []scenario.AppSpec{{Name: "sw", Bench: "SW", Threads: 8}},
	})
	checkDigest(t, digestOf(m),
		"0x1.0cf56d292c018p+05",
		[]int64{9}, []string{"0x1.0442a9930bd98p+06"}, []int{0},
		30502380, 0, 36)
}

func TestScenarioEquivalenceFEMaskBalancer(t *testing.T) {
	m, _ := runScenario(t, &scenario.Scenario{
		Name:       "static-fe",
		Manager:    scenario.ManagerNone,
		DurationMS: 5000,
		Apps:       []scenario.AppSpec{{Name: "fe", Bench: "FE", Threads: 8}},
	})
	checkDigest(t, digestOf(m),
		"0x1.9ef9c1375a5cep+05",
		[]int64{82}, []string{"0x1.6b18bb52e034dp+06"}, []int{296},
		39411319, 0, 97)
}

// TestScenarioEquivalenceThermalDisabled pins the thermal subsystem's
// disabled contract: a scenario carrying a thermal block with enabled=false
// must run bit-for-bit identically to one with no thermal block at all —
// the same golden digest as TestScenarioEquivalenceSWMaskBalancer.
func TestScenarioEquivalenceThermalDisabled(t *testing.T) {
	m, res := runScenario(t, &scenario.Scenario{
		Name:       "static-sw",
		Manager:    scenario.ManagerNone,
		DurationMS: 5000,
		Apps:       []scenario.AppSpec{{Name: "sw", Bench: "SW", Threads: 8}},
		Thermal: &thermal.Spec{
			Enabled: false,
			TripC:   80, ReleaseC: 65, // non-default constants must be inert too
		},
	})
	if res.Thermal != nil {
		t.Fatal("disabled thermal block attached a governor")
	}
	checkDigest(t, digestOf(m),
		"0x1.0cf56d292c018p+05",
		[]int64{9}, []string{"0x1.0442a9930bd98p+06"}, []int{0},
		30502380, 0, 36)

	// The emitted trace must be byte-identical as well.
	_, bare := runScenario(t, &scenario.Scenario{
		Name:       "static-sw",
		Manager:    scenario.ManagerNone,
		DurationMS: 5000,
		Apps:       []scenario.AppSpec{{Name: "sw", Bench: "SW", Threads: 8}},
	})
	if res.TraceDigest != bare.TraceDigest {
		t.Fatalf("trace digest %016x with disabled thermal != %016x without", res.TraceDigest, bare.TraceDigest)
	}
}

func TestScenarioEquivalenceHARSE(t *testing.T) {
	m, res := runScenario(t, &scenario.Scenario{
		Name:        "static-hars-e",
		Manager:     scenario.ManagerHARSE,
		DurationMS:  12000,
		AdaptEvery:  2,
		OverheadCPU: 4,
		Apps: []scenario.AppSpec{{
			Name: "sw", Bench: "SW", Threads: 8,
			Target: &scenario.TargetSpec{Min: 5.0, Avg: 6.0, Max: 7.0},
		}},
	})
	mgr := res.Managers["sw"]
	if mgr == nil {
		t.Fatal("no manager attached")
	}
	if got, want := mgr.State().String(), "B3@L7 L3@L5"; got != want {
		t.Errorf("settled state = %s, want %s", got, want)
	}
	if mgr.Searches() != 10 || mgr.ExploredTotal() != 4554 || len(mgr.Decisions()) != 10 {
		t.Errorf("searches/explored/decisions = %d/%d/%d, want 10/4554/10",
			mgr.Searches(), mgr.ExploredTotal(), len(mgr.Decisions()))
	}
	checkDigest(t, digestOf(m),
		"0x1.64130d879c9acp+06",
		[]int64{21}, []string{"0x1.36612fd32c78ap+07"}, []int{60},
		68034154, 712100, 35)
}

func TestScenarioEquivalenceGTS(t *testing.T) {
	m, _ := runScenario(t, &scenario.Scenario{
		Name:       "static-gts",
		Manager:    scenario.ManagerGTS,
		DurationMS: 5000,
		Apps: []scenario.AppSpec{
			{Name: "bo", Bench: "BO", Threads: 4},
			{Name: "fe", Bench: "FE", Threads: 4},
		},
	})
	checkDigest(t, digestOf(m),
		"0x1.a3a5f235a1e11p+05",
		[]int64{9, 59}, []string{"0x1.c83083c67d43cp+04", "0x1.fc83a184d8e24p+05"}, []int{55, 210},
		39002599, 0, 60)
}
