package workload

import (
	"fmt"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// Pipeline is a bounded-queue pipeline program in the style of PARSEC's
// ferret: StageThreads[s] worker threads per stage, items flowing from an
// unlimited source at stage 0 through bounded queues to the final stage,
// which emits one heartbeat per finished item. Thread IDs are assigned
// stage-contiguously (stage 0 first), matching how PARSEC spawns pipeline
// workers — this is why the chunk-based scheduler can place entire stages on
// one cluster.
type Pipeline struct {
	AppName      string
	StageThreads []int     // threads per stage
	StageWork    []float64 // work units per item at each stage
	QueueCap     int       // bounded queue capacity between stages
	BigFactor    float64
	Bonus        float64

	stageOf     []int   // thread local ID → stage
	queued      []int   // queued[s]: items buffered at the input of stage s (s ≥ 1)
	waiting     [][]int // waiting[s]: stage-s threads blocked on an empty input
	blockedPush [][]int // blockedPush[s]: stage-(s−1) threads blocked pushing into s
	items       int64   // items completed by the final stage
	scale       float64 // workload-phase multiplier on StageWork (0 = 1.0)
}

var _ sim.Program = (*Pipeline)(nil)
var _ sim.CacheSensitive = (*Pipeline)(nil)
var _ sim.ThreadGrouper = (*Pipeline)(nil)

// Name implements sim.Program.
func (pl *Pipeline) Name() string { return pl.AppName }

// NumThreads implements sim.Program.
func (pl *Pipeline) NumThreads() int {
	n := 0
	for _, s := range pl.StageThreads {
		n += s
	}
	return n
}

// CacheBonus implements sim.CacheSensitive.
func (pl *Pipeline) CacheBonus() float64 { return pl.Bonus }

// SpeedFactor implements sim.Program.
func (pl *Pipeline) SpeedFactor(local int, k hmp.ClusterKind) float64 {
	if k == hmp.Big {
		return pl.BigFactor
	}
	return 1
}

// Stages returns the number of pipeline stages.
func (pl *Pipeline) Stages() int { return len(pl.StageThreads) }

// ThreadGroups implements sim.ThreadGrouper: one group per pipeline stage.
func (pl *Pipeline) ThreadGroups() []int {
	return append([]int(nil), pl.StageThreads...)
}

// StageOf returns the stage that thread `local` works in.
func (pl *Pipeline) StageOf(local int) int { return pl.stageOf[local] }

// SetPhaseScale implements PhaseScalable: items handed out from now on
// carry scale× the nominal per-stage work (a workload phase change). Items
// already in flight keep their original size. Scale must be positive.
func (pl *Pipeline) SetPhaseScale(scale float64) {
	if scale <= 0 {
		panic("workload: non-positive phase scale")
	}
	pl.scale = scale
}

func (pl *Pipeline) work(s int) float64 {
	w := pl.StageWork[s]
	if pl.scale != 0 {
		w *= pl.scale
	}
	return w
}

// CloneProgram implements sim.Cloneable: deep-copies the queue occupancy and
// blocked-thread bookkeeping so the clone's dataflow evolves independently.
func (pl *Pipeline) CloneProgram() sim.Program {
	c := *pl
	c.stageOf = append([]int(nil), pl.stageOf...)
	c.queued = append([]int(nil), pl.queued...)
	c.waiting = cloneNested(pl.waiting)
	c.blockedPush = cloneNested(pl.blockedPush)
	return &c
}

func cloneNested(src [][]int) [][]int {
	if src == nil {
		return nil
	}
	out := make([][]int, len(src))
	for i, s := range src {
		out[i] = append([]int(nil), s...)
	}
	return out
}

// Items returns the number of items retired by the final stage.
func (pl *Pipeline) Items() int64 { return pl.items }

// Start implements sim.Program: stage-0 threads pull from the unlimited
// source immediately; all other threads wait for input.
func (pl *Pipeline) Start(p *sim.Process) {
	ns := len(pl.StageThreads)
	if ns == 0 || len(pl.StageWork) != ns {
		panic(fmt.Sprintf("workload: pipeline %q has %d stages and %d work entries",
			pl.AppName, ns, len(pl.StageWork)))
	}
	if pl.QueueCap <= 0 {
		pl.QueueCap = 8
	}
	pl.items = 0
	pl.stageOf = make([]int, 0, pl.NumThreads())
	pl.queued = make([]int, ns)
	pl.waiting = make([][]int, ns)
	pl.blockedPush = make([][]int, ns)
	local := 0
	for s, n := range pl.StageThreads {
		for i := 0; i < n; i++ {
			pl.stageOf = append(pl.stageOf, s)
			if s == 0 {
				p.SetWork(local, pl.work(0))
			} else {
				pl.waiting[s] = append(pl.waiting[s], local)
			}
			local++
		}
	}
}

// UnitDone implements sim.Program: the finished item is delivered
// downstream (blocking the producer if the queue is full), then the thread
// pulls its next input.
func (pl *Pipeline) UnitDone(p *sim.Process, local int) {
	s := pl.stageOf[local]
	if s == len(pl.StageThreads)-1 {
		pl.items++
		p.Beat()
	} else if !pl.push(p, s+1) {
		// Output queue full: the producer parks until a consumer frees a
		// slot, then both the push and this thread's next input resume in
		// drainBlockedPush.
		pl.blockedPush[s+1] = append(pl.blockedPush[s+1], local)
		return
	}
	pl.fetchInput(p, local, s)
}

// push delivers one item into the input of stage s. It prefers handing the
// item directly to a waiting consumer; otherwise it buffers it, and reports
// false if the bounded queue is full.
func (pl *Pipeline) push(p *sim.Process, s int) bool {
	if n := len(pl.waiting[s]); n > 0 {
		w := pl.waiting[s][0]
		pl.waiting[s] = pl.waiting[s][1:]
		p.SetWork(w, pl.work(s))
		return true
	}
	if pl.queued[s] < pl.QueueCap {
		pl.queued[s]++
		return true
	}
	return false
}

// fetchInput gives thread `local` of stage s its next item, or parks it.
func (pl *Pipeline) fetchInput(p *sim.Process, local, s int) {
	if s == 0 {
		p.SetWork(local, pl.work(0)) // unlimited source
		return
	}
	if pl.queued[s] > 0 {
		pl.queued[s]--
		p.SetWork(local, pl.work(s))
		pl.drainBlockedPush(p, s)
		return
	}
	pl.waiting[s] = append(pl.waiting[s], local)
}

// drainBlockedPush resumes producers that were blocked pushing into stage s
// after a queue slot freed up.
func (pl *Pipeline) drainBlockedPush(p *sim.Process, s int) {
	for len(pl.blockedPush[s]) > 0 {
		producer := pl.blockedPush[s][0]
		if !pl.push(p, s) {
			return
		}
		pl.blockedPush[s] = pl.blockedPush[s][1:]
		pl.fetchInput(p, producer, s-1)
	}
}
