package core

import (
	"math"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
)

// SearchParams are the three configurable parameters of the paper's search
// function (Algorithm 2): the sweep reaches from −M to +N around the current
// state in every dimension, bounded by Manhattan distance D.
type SearchParams struct {
	M, N, D int
}

// FreqConstraint restricts how a cluster's frequency may move during a
// search. Single-application HARS always uses FreqFree; MP-HARS's
// interference-aware adaptation (Table 4.3) narrows shared clusters.
type FreqConstraint int

// The frequency-direction constraints.
const (
	FreqFree    FreqConstraint = iota // any level within the sweep range
	FreqIncOnly                       // may only stay or increase
	FreqDecOnly                       // may only stay or decrease
	FreqFixed                         // must stay at the current level
)

// scoreResult builds the SearchResult for one candidate against the hoisted
// current-state throughput.
func scoreResult(e Estimators, curTput, curRate float64, cand hmp.State, tgt heartbeat.Target) SearchResult {
	rate, watts, pp := e.ScoreEval(curTput, curRate, cand, tgt)
	return SearchResult{
		State:    cand,
		Rate:     rate,
		NormPerf: heartbeat.NormalizedPerf(tgt, rate),
		Power:    watts,
		PP:       pp,
	}
}

// Bounds narrows the searchable space, the MP-HARS extension of the search
// function (freeCoreCnt and controllableCluster in Algorithm 3).
type Bounds struct {
	MaxBigCores    int // core-count cap (own cores + free cores)
	MaxLittleCores int
	BigFreq        FreqConstraint
	LittleFreq     FreqConstraint

	// BigLevelCap and LittleLevelCap bound the frequency sweep from above,
	// encoded as cap level + 1 so the zero value means "uncapped" (the
	// platform maximum). MachineBounds fills these from the machine's
	// active DVFS ceilings (thermal capping).
	BigLevelCap    int
	LittleLevelCap int
}

// Unbounded returns the single-application bounds: the whole platform.
func Unbounded(p *hmp.Platform) Bounds {
	return Bounds{
		MaxBigCores:    p.Clusters[hmp.Big].Cores,
		MaxLittleCores: p.Clusters[hmp.Little].Cores,
	}
}

// capLevel applies an encoded level cap (cap level + 1, 0 = uncapped) to a
// cluster's maximum sweepable level.
func capLevel(maxLevel, cap int) int {
	if cap > 0 && cap-1 < maxLevel {
		return cap - 1
	}
	return maxLevel
}

// SearchResult is the outcome of one GetNextSysState invocation.
type SearchResult struct {
	State    hmp.State
	Rate     float64 // estimated heartbeat rate in State
	NormPerf float64
	Power    float64 // estimated watts
	PP       float64 // normalized performance per watt
	Explored int     // candidate states evaluated (drives overhead accounting)
}

// Search is the paper's GetNextSysState (Algorithm 2). It sweeps the
// neighbourhood of current state cs (observed rate curRate), skipping
// candidates farther than prm.D in Manhattan distance, estimates each
// candidate's rate and power, and picks the best according to the paper's
// rule: a state satisfying the target minimum always beats one that does
// not; among satisfying states the highest normalized-performance-per-watt
// wins; among unsatisfying states the highest estimated rate wins. The
// current state competes on equal terms (getBetterState).
func Search(e Estimators, cs hmp.State, curRate float64, tgt heartbeat.Target, prm SearchParams, b Bounds) SearchResult {
	plat := e.Perf.Plat
	// Hoist the current state's evaluation out of the sweep: every
	// candidate's rate estimate divides by the same current throughput.
	curTput := e.Perf.evalCachedPtr(cs).Throughput
	best := SearchResult{Rate: math.Inf(-1), PP: math.Inf(-1)}
	explored := 0

	loB, hiB := sweepRange(cs.BigCores, prm, 0, b.MaxBigCores)
	loL, hiL := sweepRange(cs.LittleCores, prm, 0, b.MaxLittleCores)
	loFB, hiFB := freqRange(cs.BigLevel, prm, capLevel(plat.Clusters[hmp.Big].MaxLevel(), b.BigLevelCap), b.BigFreq)
	loFL, hiFL := freqRange(cs.LittleLevel, prm, capLevel(plat.Clusters[hmp.Little].MaxLevel(), b.LittleLevelCap), b.LittleFreq)

	for i := loB; i <= hiB; i++ {
		for j := loL; j <= hiL; j++ {
			if i+j == 0 {
				continue
			}
			for k := loFB; k <= hiFB; k++ {
				for l := loFL; l <= hiFL; l++ {
					cand := hmp.State{BigCores: i, LittleCores: j, BigLevel: k, LittleLevel: l}
					if hmp.Distance(cand, cs) > prm.D {
						continue
					}
					explored++
					cr := scoreResult(e, curTput, curRate, cand, tgt)
					if better(cr, best, tgt) {
						best = cr
					}
				}
			}
		}
	}
	// getBetterState: make sure the current state competes even when the
	// sweep bounds excluded it (possible under MP-HARS constraints).
	if cs.TotalCores() > 0 {
		// Re-checking cs is free: its metrics are already known, so it does
		// not count as an explored candidate.
		cr := scoreResult(e, curTput, curRate, cs, tgt)
		if better(cr, best, tgt) {
			best = cr
		}
	}
	best.Explored = explored
	return best
}

// better implements the selection rule of Algorithm 2 lines 13–22.
func better(cand, best SearchResult, tgt heartbeat.Target) bool {
	candOK := cand.Rate >= tgt.Min
	bestOK := best.Rate >= tgt.Min
	switch {
	case candOK && bestOK:
		return cand.PP > best.PP
	case candOK && !bestOK:
		return true
	case !candOK && bestOK:
		return false
	default:
		return cand.Rate > best.Rate
	}
}

func sweepRange(cur int, prm SearchParams, lo, hi int) (int, int) {
	a, b := cur-prm.M, cur+prm.N
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b < a {
		b = a
	}
	return a, b
}

func freqRange(cur int, prm SearchParams, maxLevel int, fc FreqConstraint) (int, int) {
	lo, hi := cur-prm.M, cur+prm.N
	switch fc {
	case FreqIncOnly:
		lo = cur
	case FreqDecOnly:
		hi = cur
	case FreqFixed:
		lo, hi = cur, cur
	}
	if lo < 0 {
		lo = 0
	}
	if hi > maxLevel {
		hi = maxLevel
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
