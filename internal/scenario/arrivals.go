package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/workload"
)

// maxStreamApps bounds how many arrivals one stream may expand to when the
// stream declares no cap of its own; maxStreamAppsHard is the largest
// max_apps a stream may declare, and maxArrivalApps bounds the total
// expansion across all streams — like the events path's maxOccurrences,
// these keep a pathological document from hanging or exhausting memory in
// Decode/Validate (which the fuzzer feeds arbitrary JSON).
const (
	maxStreamApps     = 64
	maxStreamAppsHard = 1000
	maxArrivalApps    = 10_000
)

// RateStep is one piece of a traffic trace's piecewise-constant rate
// profile: the stream generates arrivals at per_s mean arrivals per second
// until until_ms (0 on the last step = the end of the run).
type RateStep struct {
	UntilMS int64   `json:"until_ms,omitempty"`
	PerS    float64 `json:"per_s"`
}

// ArrivalStream is a declarative traffic trace: a seeded Poisson arrival
// process with a piecewise-constant rate profile, expanded into concrete
// application arrivals at run time. Each arrival is a copy of the stream's
// application template named "<name>-<i>", optionally pinned to one node
// and departing lifetime_ms after it starts. The same stream and seed
// always expand to the same arrivals, so replays are byte-identical.
type ArrivalStream struct {
	// Name prefixes the generated app names (required, unique among apps
	// and streams).
	Name string `json:"name"`
	// Node pins every generated arrival to one named node (optional).
	Node string `json:"node,omitempty"`
	// Seed drives the arrival draw (default: the stream's index).
	Seed int64 `json:"seed,omitempty"`
	// Rate is the piecewise-constant profile, in ascending until_ms order.
	Rate []RateStep `json:"rate"`
	// MaxApps caps the expansion (default 64); generation stops once the
	// cap is reached.
	MaxApps int `json:"max_apps,omitempty"`
	// LifetimeMS makes every arrival depart that long after it starts
	// (clamped to the run; 0 = runs to the end).
	LifetimeMS int64 `json:"lifetime_ms,omitempty"`

	// The application template, as in AppSpec.
	Bench      string      `json:"bench"`
	Threads    int         `json:"threads,omitempty"`
	TargetFrac float64     `json:"target_frac,omitempty"`
	Target     *TargetSpec `json:"target,omitempty"`
	HBWindow   int         `json:"hb_window,omitempty"`
	InitBig    *int        `json:"init_big,omitempty"`
	InitLittle *int        `json:"init_little,omitempty"`
	SLO        *SLOSpec    `json:"slo,omitempty"`
}

// validateStream checks the stream's own fields (the generated AppSpecs go
// through the regular per-app validation afterwards).
func (st *ArrivalStream) validate(i int, durationMS int64) error {
	if st.Name == "" {
		return fmt.Errorf("scenario: arrival stream %d has no name", i)
	}
	if _, ok := workload.ByShort(st.Bench); !ok {
		return fmt.Errorf("scenario: arrival stream %q: unknown bench %q", st.Name, st.Bench)
	}
	if st.MaxApps < 0 || st.LifetimeMS < 0 || st.Seed < 0 || st.Threads < 0 {
		return fmt.Errorf("scenario: arrival stream %q: negative field", st.Name)
	}
	if st.MaxApps > maxStreamAppsHard {
		return fmt.Errorf("scenario: arrival stream %q: max_apps %d above the %d cap", st.Name, st.MaxApps, maxStreamAppsHard)
	}
	if len(st.Rate) == 0 {
		return fmt.Errorf("scenario: arrival stream %q: no rate profile", st.Name)
	}
	prev := int64(0)
	for j, rs := range st.Rate {
		if rs.PerS < 0 {
			return fmt.Errorf("scenario: arrival stream %q: negative rate %v", st.Name, rs.PerS)
		}
		until := rs.UntilMS
		if until == 0 {
			if j != len(st.Rate)-1 {
				return fmt.Errorf("scenario: arrival stream %q: until_ms 0 only on the last step", st.Name)
			}
			until = durationMS
		}
		if until <= prev || until > durationMS {
			return fmt.Errorf("scenario: arrival stream %q: step %d until_ms %d outside (%d, %d]",
				st.Name, j, rs.UntilMS, prev, durationMS)
		}
		prev = until
	}
	return nil
}

// expand draws the stream's arrivals. A Poisson process with a piecewise-
// constant rate is memoryless, so sampling each step independently with
// its own exponential inter-arrival clock is exact — and keeps every
// step's draws a pure function of the seed and the profile.
func (st *ArrivalStream) expand(idx int, durationMS int64) []AppSpec {
	seed := st.Seed
	if seed == 0 {
		seed = int64(idx + 1)
	}
	maxApps := st.MaxApps
	if maxApps <= 0 {
		maxApps = maxStreamApps
	}
	rng := rand.New(rand.NewSource(seed))
	var out []AppSpec
	from := int64(0)
	for _, rs := range st.Rate {
		until := rs.UntilMS
		if until == 0 {
			until = durationMS
		}
		if rs.PerS > 0 {
			t := float64(from)
			for {
				t += rng.ExpFloat64() / rs.PerS * 1000
				at := int64(t)
				if at >= until || len(out) >= maxApps {
					break
				}
				a := AppSpec{
					Name:       fmt.Sprintf("%s-%d", st.Name, len(out)),
					Bench:      st.Bench,
					Threads:    st.Threads,
					StartMS:    at,
					TargetFrac: st.TargetFrac,
					Target:     st.Target,
					HBWindow:   st.HBWindow,
					InitBig:    st.InitBig,
					InitLittle: st.InitLittle,
					Node:       st.Node,
					SLO:        st.SLO,
				}
				if st.LifetimeMS > 0 {
					if stop := at + st.LifetimeMS; stop < durationMS {
						a.StopMS = stop
					}
				}
				out = append(out, a)
			}
		}
		from = until
		if len(out) >= maxApps {
			break
		}
	}
	return out
}

// expandApps returns the run's full application list: the declared apps
// followed by every stream's expansion, in stream order. The scenario
// document is not mutated.
func (sc *Scenario) expandApps() ([]AppSpec, error) {
	if len(sc.Arrivals) == 0 {
		return sc.Apps, nil
	}
	apps := append([]AppSpec(nil), sc.Apps...)
	total := 0
	for i := range sc.Arrivals {
		st := &sc.Arrivals[i]
		if err := st.validate(i, sc.DurationMS); err != nil {
			return nil, err
		}
		limit := st.MaxApps
		if limit <= 0 {
			limit = maxStreamApps
		}
		if total += limit; total > maxArrivalApps {
			return nil, fmt.Errorf("scenario: arrival streams may expand to more than %d apps", maxArrivalApps)
		}
		apps = append(apps, st.expand(i, sc.DurationMS)...)
	}
	return apps, nil
}
