package core

import (
	"math"
	"testing"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
)

// testModel builds a deterministic linear power model that scales with
// frequency, good enough for search behaviour tests without profiling.
func testModel(p *hmp.Platform) *power.LinearModel {
	lm := &power.LinearModel{}
	coeff := [hmp.NumClusters]float64{hmp.Little: 0.30, hmp.Big: 1.20}
	base := [hmp.NumClusters]float64{hmp.Little: 0.15, hmp.Big: 0.70}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		n := p.Clusters[k].Levels()
		lm.Alpha[k] = make([]float64, n)
		lm.Beta[k] = make([]float64, n)
		lm.R2[k] = make([]float64, n)
		for lv := 0; lv < n; lv++ {
			s := p.FreqScale(k, lv)
			lm.Alpha[k][lv] = coeff[k] * s * s
			lm.Beta[k][lv] = base[k] * s
			lm.R2[k][lv] = 1
		}
	}
	return lm
}

func testEstimators(p *hmp.Platform, threads int) Estimators {
	return NewEstimators(p, threads, testModel(p))
}

func TestEstimateRateScalesWithFrequency(t *testing.T) {
	p := hmp.Default()
	e := testEstimators(p, 4)
	// 4 threads on 4 big cores: rate scales linearly with big frequency.
	cur := hmp.State{BigCores: 4, LittleCores: 0, BigLevel: 0, LittleLevel: 0}
	cand := cur.WithLevel(hmp.Big, 8) // 0.8 → 1.6 GHz
	got := e.Perf.EstimateRate(cur, 2.0, cand)
	if math.Abs(got-4.0) > 1e-9 {
		t.Fatalf("EstimateRate = %v, want 4.0 (2× frequency)", got)
	}
	// Identity: the current state estimates the observed rate.
	if got := e.Perf.EstimateRate(cur, 2.0, cur); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("identity estimate = %v, want 2.0", got)
	}
}

func TestEstimateRateMoreCores(t *testing.T) {
	p := hmp.Default()
	e := testEstimators(p, 8)
	cur := hmp.State{BigCores: 2, LittleCores: 0, BigLevel: 4, LittleLevel: 0}
	cand := cur.WithCores(hmp.Big, 4)
	got := e.Perf.EstimateRate(cur, 1.0, cand)
	if math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("doubling big cores with 8 threads: rate = %v, want 2.0", got)
	}
}

func TestPowerEstimatorUsesUsedCores(t *testing.T) {
	p := hmp.Default()
	e := testEstimators(p, 2)
	// 2 threads, 4+4 cores allocated: only 2 big cores are actually used
	// (Table 3.1), so power must be charged for 2, with the little cluster
	// unused and free.
	st := hmp.State{BigCores: 4, LittleCores: 4, BigLevel: 8, LittleLevel: 5}
	ev := e.Perf.Evaluate(st)
	if ev.CBU != 2 || ev.CLU != 0 {
		t.Fatalf("used cores = (%d, %d), want (2, 0)", ev.CBU, ev.CLU)
	}
	w := e.Power.Estimate(st, ev)
	lm := testModel(p)
	want := lm.Estimate(hmp.Big, 8, 2, 1.0)
	if math.Abs(w-want) > 1e-9 {
		t.Fatalf("power = %v, want %v", w, want)
	}
}

func TestSearchPrefersCheaperSatisfyingState(t *testing.T) {
	p := hmp.Default()
	e := testEstimators(p, 8)
	cs := hmp.MaxState(p)
	// Current rate 4.0 at max state; target 2.0±0.2: massive
	// overperformance. The exhaustive search should find a much cheaper
	// state that still satisfies t.min.
	tgt := heartbeat.Target{Min: 1.8, Avg: 2.0, Max: 2.2}
	res := Search(e, cs, 4.0, tgt, SearchParams{M: 4, N: 4, D: 7}, Unbounded(p))
	if res.Rate < tgt.Min {
		t.Fatalf("result rate %v misses target %v", res.Rate, tgt.Min)
	}
	if res.Power >= 7.0 {
		t.Fatalf("result power %v should be far below max-state power", res.Power)
	}
	if res.State == cs {
		t.Fatal("search should have moved off the max state")
	}
	if hmp.Distance(res.State, cs) > 7 {
		t.Fatalf("result state distance %d > d=7", hmp.Distance(res.State, cs))
	}
	if res.Explored == 0 {
		t.Fatal("no candidates explored")
	}
}

func TestSearchIncrementalOnlyStepsOne(t *testing.T) {
	p := hmp.Default()
	e := testEstimators(p, 8)
	cs := hmp.MaxState(p)
	tgt := heartbeat.Target{Min: 1.8, Avg: 2.0, Max: 2.2}
	// HARS-I overperforming: m=1, n=0, d=1.
	res := Search(e, cs, 4.0, tgt, SearchParams{M: 1, N: 0, D: 1}, Unbounded(p))
	if d := hmp.Distance(res.State, cs); d > 1 {
		t.Fatalf("HARS-I moved distance %d, want ≤ 1", d)
	}
	// The decrement-only sweep must not raise anything.
	if res.State.BigCores > cs.BigCores || res.State.BigLevel > cs.BigLevel {
		t.Fatal("m=1,n=0 must not increase any dimension")
	}
}

func TestSearchUnderperformanceRaises(t *testing.T) {
	p := hmp.Default()
	e := testEstimators(p, 8)
	cs := hmp.State{BigCores: 1, LittleCores: 0, BigLevel: 0, LittleLevel: 0}
	// Rate 0.5 at tiny state; target 2.0: underperforming. n-only sweep.
	tgt := heartbeat.Target{Min: 1.8, Avg: 2.0, Max: 2.2}
	res := Search(e, cs, 0.5, tgt, SearchParams{M: 0, N: 1, D: 1}, Unbounded(p))
	if res.Rate <= 0.5 {
		t.Fatalf("search should raise the estimated rate, got %v", res.Rate)
	}
	if res.State == cs {
		t.Fatal("search should have moved up")
	}
}

func TestSearchPicksBestUnsatisfiableRate(t *testing.T) {
	p := hmp.Default()
	e := testEstimators(p, 8)
	cs := hmp.State{BigCores: 3, LittleCores: 3, BigLevel: 4, LittleLevel: 3}
	// Target far above anything reachable: pick the max-rate state.
	tgt := heartbeat.Target{Min: 900, Avg: 1000, Max: 1100}
	res := Search(e, cs, 1.0, tgt, SearchParams{M: 4, N: 4, D: 7}, Unbounded(p))
	// Estimated best rate within d=7 of cs: strictly higher than current.
	if res.Rate <= 1.0 {
		t.Fatalf("expected rate-maximizing state, got rate %v", res.Rate)
	}
	if res.NormPerf >= 1 {
		t.Fatal("unsatisfiable target can't be met")
	}
}

func TestSearchRespectsBounds(t *testing.T) {
	p := hmp.Default()
	e := testEstimators(p, 8)
	cs := hmp.State{BigCores: 2, LittleCores: 2, BigLevel: 4, LittleLevel: 3}
	tgt := heartbeat.Target{Min: 1.8, Avg: 2.0, Max: 2.2}
	b := Bounds{
		MaxBigCores:    2, // no free big cores
		MaxLittleCores: 3,
		BigFreq:        FreqFixed,
		LittleFreq:     FreqIncOnly,
	}
	res := Search(e, cs, 1.0, tgt, SearchParams{M: 4, N: 4, D: 7}, b)
	if res.State.BigCores > 2 {
		t.Errorf("big cores %d exceed bound 2", res.State.BigCores)
	}
	if res.State.LittleCores > 3 {
		t.Errorf("little cores %d exceed bound 3", res.State.LittleCores)
	}
	if res.State.BigLevel != cs.BigLevel {
		t.Errorf("big level moved despite FreqFixed: %d", res.State.BigLevel)
	}
	if res.State.LittleLevel < cs.LittleLevel {
		t.Errorf("little level decreased despite FreqIncOnly: %d", res.State.LittleLevel)
	}
}

func TestSearchExploredGrowsWithD(t *testing.T) {
	p := hmp.Default()
	e := testEstimators(p, 8)
	cs := hmp.State{BigCores: 2, LittleCores: 2, BigLevel: 4, LittleLevel: 3}
	tgt := heartbeat.Target{Min: 1.8, Avg: 2.0, Max: 2.2}
	prev := 0
	for _, d := range []int{1, 3, 5, 7, 9} {
		res := Search(e, cs, 2.0, tgt, SearchParams{M: 4, N: 4, D: d}, Unbounded(p))
		if res.Explored <= prev {
			t.Fatalf("explored did not grow: d=%d explored=%d prev=%d", d, res.Explored, prev)
		}
		prev = res.Explored
	}
}

func TestSearchNeverReturnsZeroCores(t *testing.T) {
	p := hmp.Default()
	e := testEstimators(p, 8)
	cs := hmp.State{BigCores: 1, LittleCores: 0, BigLevel: 0, LittleLevel: 0}
	tgt := heartbeat.Target{Min: 0.001, Avg: 0.002, Max: 0.003}
	// Hugely overperforming: the search wants to shrink, but can never
	// reach zero total cores.
	res := Search(e, cs, 5.0, tgt, SearchParams{M: 4, N: 4, D: 7}, Unbounded(p))
	if res.State.TotalCores() < 1 {
		t.Fatalf("search returned empty state %+v", res.State)
	}
}
