package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/hmp"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// GenConfig tunes the random-scenario generator. The zero value selects an
// MP-HARS-I scenario with up to 3 applications, 20 s of simulated time, and
// 6 dynamic events.
type GenConfig struct {
	Manager    string // default "mphars-i"
	MaxApps    int    // default 3 (at least 1)
	DurationMS int64  // default 20000
	Events     int    // dynamic events besides arrivals/departures; default 6

	// Thermal closes the thermal loop with the default governor spec.
	// Scripted dvfs_cap events are excluded (the governor owns the
	// ceilings); their slots become workload phase pulses, the load shape
	// that heats and cools the clusters.
	Thermal bool
	// Periodic lets target and phase events repeat via every_ms, producing
	// pulsing load without hand-unrolled event lists.
	Periodic bool
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Manager == "" {
		c.Manager = ManagerMPHARSI
	}
	if c.MaxApps <= 0 {
		c.MaxApps = 3
	}
	if c.DurationMS <= 0 {
		c.DurationMS = 20000
	}
	if c.Events < 0 {
		c.Events = 0
	} else if c.Events == 0 {
		c.Events = 6
	}
	return c
}

// Generate builds a pseudo-random but fully deterministic scenario from a
// seed: the same seed and config always produce the same scenario, and the
// result always passes Validate. Property tests sweep seeds through it.
func Generate(seed int64, cfg GenConfig) *Scenario {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	plat := hmp.Default()
	shorts := workload.Shorts()

	sc := &Scenario{
		Name:          fmt.Sprintf("gen-%d", seed),
		Seed:          seed,
		Manager:       cfg.Manager,
		DurationMS:    cfg.DurationMS,
		SampleEveryMS: 250,
	}
	if cfg.Thermal {
		sc.Thermal = &thermal.Spec{Enabled: true}
	}

	nApps := 1 + rng.Intn(cfg.MaxApps)
	for i := 0; i < nApps; i++ {
		a := AppSpec{
			Name:       fmt.Sprintf("app%d", i),
			Bench:      shorts[rng.Intn(len(shorts))],
			Threads:    4 + 4*rng.Intn(2), // 4 or 8
			TargetFrac: 0.3 + 0.5*rng.Float64(),
			InitBig:    IntPtr(1),
			InitLittle: IntPtr(1),
		}
		if i > 0 {
			a.StartMS = rng.Int63n(cfg.DurationMS / 2)
		}
		// Half the later apps depart before the end.
		if i > 0 && rng.Intn(2) == 0 {
			lo := a.StartMS + cfg.DurationMS/4
			if lo < cfg.DurationMS {
				a.StopMS = lo + rng.Int63n(cfg.DurationMS-lo)
				if a.StopMS <= a.StartMS {
					a.StopMS = 0
				}
			}
		}
		sc.Apps = append(sc.Apps, a)
	}

	// Event times first (sorted), then kinds chosen chronologically while
	// tracking the online set so hotplug never strands the machine.
	times := make([]int64, cfg.Events)
	for i := range times {
		times[i] = 1 + rng.Int63n(cfg.DurationMS-1)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	online := hmp.AllCPUs(plat)
	for _, at := range times {
		ev := Event{AtMS: at}
		switch rng.Intn(4) {
		case 0: // hotplug: prefer taking a core down, bring one back when thin
			cpu := rng.Intn(plat.TotalCores())
			if online.Has(cpu) && online.Count() > 2 {
				on := false
				ev.Kind, ev.CPU, ev.Online = KindHotplug, cpu, &on
				online = online.Clear(cpu)
			} else if !online.Has(cpu) {
				on := true
				ev.Kind, ev.CPU, ev.Online = KindHotplug, cpu, &on
				online = online.Set(cpu)
			} else {
				// Too few cores to take another down: cap (or pulse) instead.
				ev = capEvent(rng, plat, cfg, sc, at)
			}
		case 1:
			ev = capEvent(rng, plat, cfg, sc, at)
		case 2:
			a := &sc.Apps[rng.Intn(len(sc.Apps))]
			ev.Kind, ev.App = KindTarget, a.Name
			ev.Frac = 0.3 + 0.5*rng.Float64()
		default:
			a := &sc.Apps[rng.Intn(len(sc.Apps))]
			ev.Kind, ev.App = KindPhase, a.Name
			ev.Scale = 0.5 + 1.5*rng.Float64()
		}
		if cfg.Periodic && (ev.Kind == KindTarget || ev.Kind == KindPhase) && rng.Intn(3) == 0 {
			ev.EveryMS = 200 + 100*rng.Int63n(8)
			ev.Repeat = 2 + rng.Intn(8)
		}
		sc.Events = append(sc.Events, ev)
	}
	return sc
}

func capEvent(rng *rand.Rand, plat *hmp.Platform, cfg GenConfig, sc *Scenario, at int64) Event {
	if cfg.Thermal {
		// The governor owns the ceilings: generate a workload phase pulse
		// instead, the load shape that actually exercises the thermal loop.
		a := &sc.Apps[rng.Intn(len(sc.Apps))]
		return Event{AtMS: at, Kind: KindPhase, App: a.Name, Scale: 0.5 + 1.5*rng.Float64()}
	}
	k := hmp.ClusterKind(rng.Intn(int(hmp.NumClusters)))
	name := "little"
	if k == hmp.Big {
		name = "big"
	}
	max := plat.Clusters[k].MaxLevel()
	lvl := 1 + rng.Intn(max) // [1, max]: sometimes a real cap, sometimes a restore
	return Event{AtMS: at, Kind: KindDVFSCap, Cluster: name, MaxLevel: lvl}
}
