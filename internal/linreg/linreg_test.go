package linreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFit1DExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x + 0.7
	}
	a, b, err := Fit1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 2.5, 1e-9) || !almostEq(b, 0.7, 1e-9) {
		t.Fatalf("fit = (%v, %v), want (2.5, 0.7)", a, b)
	}
}

func TestFit1DNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, 3.2*x-1.4+rng.NormFloat64()*0.05)
	}
	a, b, err := Fit1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 3.2, 0.02) || !almostEq(b, -1.4, 0.05) {
		t.Fatalf("noisy fit = (%v, %v), want ≈(3.2, -1.4)", a, b)
	}
}

func TestFit1DErrors(t *testing.T) {
	if _, _, err := Fit1D([]float64{1}, []float64{2}); err == nil {
		t.Error("single sample should be degenerate")
	}
	if _, _, err := Fit1D([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should be degenerate")
	}
	if _, _, err := Fit1D([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

// TestFit1DRecoversPlantedLine is a property test: any non-degenerate planted
// line is recovered exactly from noise-free samples.
func TestFit1DRecoversPlantedLine(t *testing.T) {
	f := func(a8, b8 int8, seed int64) bool {
		alpha := float64(a8) / 8
		beta := float64(b8) / 4
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 16)
		ys := make([]float64, 16)
		for i := range xs {
			xs[i] = rng.Float64()*20 - 10
			ys[i] = alpha*xs[i] + beta
		}
		gotA, gotB, err := Fit1D(xs, ys)
		if err != nil {
			// Only acceptable if the xs happened to be (nearly) constant.
			return true
		}
		return almostEq(gotA, alpha, 1e-6) && almostEq(gotB, beta, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitMultiExact(t *testing.T) {
	// y = 2*x0 - 3*x1 + 5
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		r := []float64{rng.Float64() * 4, rng.Float64() * 4}
		x = append(x, r)
		y = append(y, 2*r[0]-3*r[1]+5)
	}
	w, err := FitMulti(x, y, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 3 {
		t.Fatalf("w has %d entries, want 3", len(w))
	}
	if !almostEq(w[0], 2, 1e-8) || !almostEq(w[1], -3, 1e-8) || !almostEq(w[2], 5, 1e-8) {
		t.Fatalf("w = %v, want [2 -3 5]", w)
	}
}

func TestFitMultiNoIntercept(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{2, 4, 6}
	w, err := FitMulti(x, y, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 || !almostEq(w[0], 2, 1e-9) {
		t.Fatalf("w = %v, want [2]", w)
	}
}

func TestFitMultiDegenerate(t *testing.T) {
	// Collinear predictors: x1 = 2*x0.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, err := FitMulti(x, y, false); err == nil {
		t.Error("collinear predictors should be degenerate")
	}
	if _, err := FitMulti(nil, nil, true); err == nil {
		t.Error("empty input should error")
	}
	if _, err := FitMulti([][]float64{{1}}, []float64{1, 2}, false); err == nil {
		t.Error("mismatched rows should error")
	}
	if _, err := FitMulti([][]float64{{1}, {2, 3}}, []float64{1, 2}, false); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// Inputs must be untouched.
	if a[0][0] != 2 || b[0] != 8 {
		t.Error("SolveLinear modified its inputs")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("singular matrix should error")
	}
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("empty system should error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square should error")
	}
}

func TestRSquared(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if r := RSquared(y, y); r != 1 {
		t.Errorf("perfect fit R² = %v, want 1", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := RSquared(y, mean); r != 0 {
		t.Errorf("mean fit R² = %v, want 0", r)
	}
	if !math.IsNaN(RSquared(y, y[:2])) {
		t.Error("mismatched lengths should yield NaN")
	}
	if r := RSquared([]float64{3, 3}, []float64{3, 3}); r != 1 {
		t.Errorf("constant/exact R² = %v, want 1", r)
	}
	if r := RSquared([]float64{3, 3}, []float64{4, 4}); !math.IsInf(r, -1) {
		t.Errorf("constant/miss R² = %v, want -Inf", r)
	}
}

func TestPredict1D(t *testing.T) {
	if Predict1D(2, 1, 3) != 7 {
		t.Error("Predict1D wrong")
	}
}
