package scenario

import (
	"bytes"
	"testing"
)

// TestWakeIndexMatchesScan is the property suite for the scheduler's
// incremental wake index: generated multi-node scenarios with thermal
// loops, SLO'd apps, and seeded fault injection replay through the
// full-scan NextWake reference and the wake index — across the lockstep,
// event-driven, and worker-sharded cores — and every variant must produce
// byte-identical traces and digests. VerifyWake additionally checks the
// two NextWake implementations against each other at every single wake
// computation, so a divergence fails the run even when it would not have
// moved a barrier. The suite runs under -race in CI.
func TestWakeIndexMatchesScan(t *testing.T) {
	policies := []string{"least-loaded", "big-first", "coolest", "slo-aware"}
	maxRate := func(string, int) float64 { return 50 }

	for seed := int64(1); seed <= 4; seed++ {
		placement := policies[(seed-1)%int64(len(policies))]
		sc := Generate(seed+100, GenConfig{
			Nodes:      3,
			MaxApps:    3,
			Events:     5,
			DurationMS: 6000,
			Placement:  placement,
			Thermal:    seed%2 == 0,
			Periodic:   true,
			Faults:     true,
		})
		sc.Checkpoint = &CheckpointSpec{FreezeUS: 30_000, PerMBUS: 1_000, SizeMB: 8}
		for i := range sc.Apps {
			sc.Apps[i].SLO = &SLOSpec{TargetHPS: 20, SlackMS: 150}
		}

		run := func(label string, opts Options) (string, uint64) {
			var buf bytes.Buffer
			opts.Trace = &buf
			opts.MaxRate = maxRate
			opts.Strict = true
			res, err := Run(sc, opts)
			if err != nil {
				t.Fatalf("seed %d (%s, %s): %v", seed, placement, label, err)
			}
			return buf.String(), res.TraceDigest
		}

		refTrace, refDigest := run("lockstep+scan", Options{Lockstep: true, WakeScan: true})
		for _, v := range []struct {
			name string
			opts Options
		}{
			{"lockstep+index", Options{Lockstep: true, VerifyWake: true}},
			{"event+index", Options{VerifyWake: true}},
			{"event+scan", Options{WakeScan: true}},
			{"event-sharded+index", Options{Workers: 4, VerifyWake: true}},
		} {
			trace, digest := run(v.name, v.opts)
			if digest != refDigest {
				t.Errorf("seed %d (%s): %s digest %016x != reference %016x",
					seed, placement, v.name, digest, refDigest)
			}
			if trace != refTrace {
				t.Errorf("seed %d (%s): %s trace diverged (%s)",
					seed, placement, v.name, firstDiff(trace, refTrace))
			}
		}
	}
}
