package core

// This file implements the first extension of the paper's Discussion
// (§3.1.4): replacing the naive workload prediction — "the amount of total
// unit of work is the same as the one observed before the heartbeat
// period" — with a Kalman filter that dynamically predicts the uncertain
// workload "in a more precise manner using educated guesses", as in
// Hoffmann et al.'s POET-style controllers [6].

// WorkloadPredictor estimates the application's per-heartbeat workload (in
// estimated-throughput units per beat) from noisy observations. The runtime
// manager divides the current state's estimated throughput by the predicted
// workload to obtain the base rate its search extrapolates from.
type WorkloadPredictor interface {
	// Observe feeds one workload measurement.
	Observe(workload float64)
	// Predict returns the workload expected over the next period. Before
	// any observation it returns 0, meaning "no prediction".
	Predict() float64
	// Reset clears all state.
	Reset()
}

// LastValuePredictor is the paper's default model: the next period's
// workload equals the last observed one.
type LastValuePredictor struct {
	last float64
	seen bool
}

// Observe implements WorkloadPredictor.
func (p *LastValuePredictor) Observe(w float64) {
	p.last = w
	p.seen = true
}

// Predict implements WorkloadPredictor.
func (p *LastValuePredictor) Predict() float64 {
	if !p.seen {
		return 0
	}
	return p.last
}

// Reset implements WorkloadPredictor.
func (p *LastValuePredictor) Reset() { *p = LastValuePredictor{} }

// KalmanPredictor is a scalar Kalman filter over the workload signal with a
// random-walk process model:
//
//	x_{t+1} = x_t + w,  w ~ N(0, Q)       (workload drifts slowly)
//	z_t     = x_t + v,  v ~ N(0, R)       (rates are noisy measurements)
//
// Q/R trades responsiveness against smoothing: larger Q tracks phase
// changes faster, larger R suppresses heartbeat jitter.
type KalmanPredictor struct {
	// Q is the process-noise variance; R the measurement-noise variance.
	// Zero values select defaults (Q = 1e-4, R = 1e-2, relative to the
	// first observation's magnitude).
	Q, R float64

	x      float64 // state estimate
	p      float64 // estimate covariance
	scale  float64 // magnitude normalization from the first observation
	primed bool
}

func (k *KalmanPredictor) params() (q, r float64) {
	q, r = k.Q, k.R
	if q <= 0 {
		q = 1e-4
	}
	if r <= 0 {
		r = 1e-2
	}
	return q, r
}

// Observe implements WorkloadPredictor.
func (k *KalmanPredictor) Observe(z float64) {
	if !k.primed {
		k.x = z
		k.scale = z
		if k.scale == 0 {
			k.scale = 1
		}
		k.p = 1
		k.primed = true
		return
	}
	q, r := k.params()
	// Normalize noise magnitudes to the signal scale so defaults behave
	// across workloads of very different sizes.
	q *= k.scale * k.scale
	r *= k.scale * k.scale
	// Time update (random walk): x stays, covariance grows.
	k.p += q
	// Measurement update.
	gain := k.p / (k.p + r)
	k.x += gain * (z - k.x)
	k.p *= 1 - gain
}

// Predict implements WorkloadPredictor.
func (k *KalmanPredictor) Predict() float64 {
	if !k.primed {
		return 0
	}
	return k.x
}

// Reset implements WorkloadPredictor.
func (k *KalmanPredictor) Reset() { *k = KalmanPredictor{Q: k.Q, R: k.R} }
